"""Tests for the scenario-fleet driver and its ``llamp fleet`` CLI."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.network.params import CSCS_TESTBED
from repro.parallel import ScenarioFleet, live_shared_segments

L_MAX = 50.0


@pytest.fixture(autouse=True)
def no_leaked_segments():
    before = live_shared_segments()
    yield
    leaked = live_shared_segments() - before
    assert not leaked, f"test leaked shared-memory segments: {sorted(leaked)}"


def _fleet(**overrides):
    kwargs = dict(
        apps=["lulesh"],
        nranks=[2],
        allreduces=["ring"],
        params_grid=[CSCS_TESTBED],
        injectors=[None, "sender_delay"],
        l_max=L_MAX,
        sim_deltas=(0.0, 5.0),
        processes=1,
    )
    kwargs.update(overrides)
    return ScenarioFleet(**kwargs)


class TestScenarioFleet:
    def test_grid_expansion_is_the_full_product(self):
        fleet = _fleet(
            apps=["lulesh", "hpcg"],
            nranks=[2, 4],
            allreduces=["ring", "recursive_doubling"],
            params_grid=[CSCS_TESTBED, CSCS_TESTBED.replace(L=10.0)],
            injectors=[None, "sender_delay", "ideal"],
        )
        scenarios = fleet.scenarios()
        assert len(scenarios) == 2 * 2 * 2 * 2 * 3
        assert len({sc.name for sc in scenarios}) == len(scenarios)
        # deterministic nested-loop order: apps is the outermost axis
        assert scenarios[0].app == "lulesh" and scenarios[-1].app == "hpcg"

    def test_unknown_app_rejected(self):
        with pytest.raises(ValueError, match="unknown applications"):
            _fleet(apps=["not_an_app"])

    def test_run_produces_rows_and_metrics(self):
        result = _fleet().run()
        assert len(result.rows) == 2
        lp_row = next(r for r in result.rows if r["injector"] is None)
        sim_row = next(r for r in result.rows if r["injector"] == "sender_delay")
        for row in (lp_row, sim_row):
            assert row["runtime_us"] > 0
            assert row["lambda_L"] >= 0
            assert 0 <= row["rho_L"] <= 1
            assert row["tolerance_1pct_us"] is not None
        assert "sim_runtime_us" not in lp_row
        assert len(sim_row["sim_runtime_us"]) == 2  # one per sim delta
        assert result.summary["results"]["unique_graphs"] == 1

    def test_shards_and_summary_are_deterministic(self, tmp_path):
        out1, out2 = tmp_path / "run1", tmp_path / "run2"
        r1 = _fleet().run(output_dir=out1)
        r2 = _fleet().run(output_dir=out2)
        assert [p.name for p in r1.shard_paths] == ["FLEET_lulesh.json"]
        assert r1.summary_path.name == "FLEET_summary.json"
        assert r1.summary_path.read_bytes() == r2.summary_path.read_bytes()
        shard = json.loads(r1.shard_paths[0].read_text())
        assert shard["bench"] == "fleet_lulesh"
        assert len(shard["results"]) == 2
        summary = json.loads(r1.summary_path.read_text())
        assert summary["results"]["scenarios"] == 2
        names = [row["scenario"] for row in summary["results"]["rows"]]
        assert names == sorted(names)


class TestFleetCli:
    ARGS = [
        "fleet", "lulesh",
        "--nranks", "2",
        "--allreduce", "ring",
        "--injectors", "none", "sender_delay",
        "--l-max", str(L_MAX),
        "--processes", "1",
    ]

    def test_text_output_and_shards(self, tmp_path, capsys):
        assert main(self.ARGS + ["--output-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "2 scenarios" in out
        assert (tmp_path / "FLEET_lulesh.json").exists()
        assert (tmp_path / "FLEET_summary.json").exists()

    def test_json_output(self, capsys):
        assert main(self.ARGS + ["--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["bench"] == "fleet_summary"
        assert payload["results"]["scenarios"] == 2

    def test_l_max_must_exceed_base_latency(self):
        with pytest.raises(SystemExit, match="l-max"):
            main(["fleet", "lulesh", "--latencies", "100.0", "--l-max", "50.0"])
