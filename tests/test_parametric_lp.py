"""Tests for the shared parametric-envelope engine (``repro.lp.parametric``).

Covers the engine primitives (bound-only updates, warm-start hand-off, the
tangent-envelope search), parity of the refactored ``find_critical_latencies``
and ``llamp_placement`` against faithful copies of the pre-engine
implementations, the cached-tangent ``critical_latency_curve``, and the
incremental placement loop's zero-reassembly guarantee.
"""

import inspect

import numpy as np
import pytest

from repro.core import build_lp, find_critical_latencies, parametric_analysis
from repro.core.critical_latency import critical_latency_curve
from repro.lp import LPSolution, ParametricLP, Tangent
from repro.lp.backends import default_registry
from repro.lp.scipy_backend import solve_highs
from repro.network import ArchitectureGraph, round_robin_mapping
from repro.network.params import LogGPSParams
from repro.placement import llamp_placement, swap_gain_matrix
from repro.placement.algorithm import _swap_gain
from repro.testing import build_random_dag, build_running_example, build_staircase

PARAMS = LogGPSParams(L=0.5, o=0.2, g=0.0, G=0.001)
ZERO_OVERHEAD = LogGPSParams(L=0.0, o=0.0, g=0.0, G=0.0)


# ---------------------------------------------------------------------------
# faithful copies of the pre-engine implementations, used as parity oracles
# ---------------------------------------------------------------------------


def _reference_find_critical_latencies(graph_lp, l_min, l_max, *, step=None):
    """The pre-engine recursive tangent search, verbatim semantics."""
    _REL, _ABS = 1e-7, 1e-9

    def close(a, b):
        return abs(a - b) <= _ABS + _REL * max(abs(a), abs(b), 1.0)

    def probe(L):
        solution = graph_lp.solve_runtime(L=L, backend="highs")
        return Tangent(L=L, value=solution.objective,
                       slope=graph_lp.latency_sensitivity(solution))

    breakpoints = []

    def recurse(lo, hi):
        if close(lo.slope, hi.slope) and close(lo.extrapolate(hi.L), hi.value):
            return
        denom = hi.slope - lo.slope
        if abs(denom) <= _ABS:
            return
        x = (lo.intercept - hi.intercept) / denom
        x = min(max(x, lo.L), hi.L)
        if close(x, lo.L) or close(x, hi.L):
            breakpoints.append(x)
            return
        mid = probe(x)
        if close(mid.value, lo.extrapolate(x)) and close(mid.value, hi.extrapolate(x)):
            breakpoints.append(x)
            return
        recurse(lo, mid)
        recurse(mid, hi)

    recurse(probe(l_min), probe(l_max))
    breakpoints = sorted(set(round(bp, 12) for bp in breakpoints))
    if step is not None and step > 0 and breakpoints:
        coalesced = [breakpoints[0]]
        for bp in breakpoints[1:]:
            if bp - coalesced[-1] >= step:
                coalesced.append(bp)
        breakpoints = coalesced
    return breakpoints


def _reference_placement(graph, params, arch, *, initial_mapping, max_iterations=20,
                         include_gap=True):
    """The pre-engine placement loop: scalar gain scan, one candidate per round."""
    nranks = graph.nranks
    mapping = list(initial_mapping)
    graph_lp = build_lp(graph, params, latency_mode="per_pair",
                        gap_mode="per_pair" if include_gap else "constant")

    def solve_for(m):
        graph_lp.set_pair_latency_bounds(arch.latency_matrix(m))
        if graph_lp.pair_gap:
            graph_lp.set_pair_gap_bounds(arch.gap_matrix(m))
        return graph_lp.model.solve(backend="highs")

    solution = solve_for(mapping)
    best_runtime = solution.objective
    history, swaps = [best_runtime], []
    iterations = 0
    while iterations < max_iterations:
        iterations += 1
        sensitivity_L = graph_lp.pair_latency_sensitivities(solution)
        sensitivity_G = (
            graph_lp.pair_gap_sensitivities(solution) if graph_lp.pair_gap else None
        )
        best_pair, best_gain = None, 0.0
        for i in range(nranks):
            for j in range(i + 1, nranks):
                gain = _swap_gain(i, j, sensitivity_L, sensitivity_G, mapping, arch)
                if gain > best_gain + 1e-9:
                    best_gain, best_pair = gain, (i, j)
        if best_pair is None:
            break
        i, j = best_pair
        candidate = list(mapping)
        candidate[i], candidate[j] = candidate[j], candidate[i]
        candidate_solution = solve_for(candidate)
        if candidate_solution.objective < best_runtime - 1e-9:
            mapping, best_runtime = candidate, candidate_solution.objective
            solution = candidate_solution
            swaps.append(best_pair)
            history.append(best_runtime)
        else:
            break
    return mapping, best_runtime, swaps, history


@pytest.fixture
def counting_backend():
    """A registered backend that counts its solve calls (delegates to highs)."""
    calls = {"n": 0}

    @default_registry.register("_counting", replace=True)
    def _solve(model, *, warm_start=None, **options):
        calls["n"] += 1
        return solve_highs(model, warm_start=warm_start, **options)

    yield calls
    default_registry.unregister("_counting")


# ---------------------------------------------------------------------------
# engine primitives
# ---------------------------------------------------------------------------


class TestParametricLPEngine:
    def test_bound_updates_do_not_touch_structure(self, running_example, paper_params):
        lp = build_lp(running_example, paper_params)
        engine = ParametricLP(lp.model, backend="highs")
        engine.solve()
        structure = lp.model.structure_version
        cache = lp.model._assembled_cache
        for L in (0.1, 0.3, 0.7, 1.5):
            engine.probe(lp.latency, L)
        assert lp.model.structure_version == structure
        assert lp.model._assembled_cache is cache
        assert engine.structure_rebuilds == 0
        assert lp.model.bounds_version > 0

    def test_tangent_envelope_running_example(self, running_example, paper_params):
        lp = build_lp(running_example, paper_params)
        engine = ParametricLP(lp.model, backend="highs")
        result = engine.tangent_envelope(lp.latency, 0.0, 2.0)
        assert result.breakpoints == pytest.approx([0.385], abs=1e-6)
        assert result.num_solves == engine.num_solves <= 5
        # reconstructed values lie on the curve the cold solves sample
        for L in (0.0, 0.2, 0.385, 1.0, 2.0):
            expected = lp.solve_runtime(L=L, backend="highs").objective
            assert result.value(L) == pytest.approx(expected, abs=1e-6)

    def test_segment_tangent_matches_fresh_probe(self, running_example, paper_params):
        lp = build_lp(running_example, paper_params)
        engine = ParametricLP(lp.model, backend="highs")
        result = engine.tangent_envelope(lp.latency, 0.0, 2.0)
        for L in (0.1, 1.0):
            solution = lp.solve_runtime(L=L, backend="highs")
            tangent = result.segment_tangent(L)
            assert tangent.value == pytest.approx(solution.objective, abs=1e-6)
            assert tangent.slope == pytest.approx(lp.latency_sensitivity(solution), abs=1e-6)

    def test_max_solves_enforced(self, running_example, paper_params):
        lp = build_lp(running_example, paper_params)
        engine = ParametricLP(lp.model, backend="highs", max_solves=2)
        engine.solve()
        engine.solve()
        with pytest.raises(RuntimeError, match="exceeded 2 LP solves"):
            engine.solve()

    def test_bulk_lower_bounds_single_revision(self, running_example, paper_params):
        lp = build_lp(running_example, paper_params, latency_mode="per_pair")
        engine = ParametricLP(lp.model, backend="highs")
        variables = list(lp.pair_latency.values())
        before = lp.model.bounds_version
        engine.set_lower_bounds(variables, [1.5] * len(variables))
        assert lp.model.bounds_version == before + 1
        for var in variables:
            assert lp.model.variables[var.index].lb == 1.5

    def test_bulk_lower_bounds_atomic_on_error(self, running_example, paper_params):
        lp = build_lp(running_example, paper_params, latency_mode="per_pair")
        first = next(iter(lp.pair_latency.values()))
        lp.model.set_var_ub(first, 2.0)
        variables = list(lp.pair_latency.values())
        before = lp.model.bounds_version
        original = [lp.model.variables[v.index].lb for v in variables]
        with pytest.raises(ValueError, match="exceeds upper bound"):
            lp.model.set_var_lbs([v.index for v in variables], [5.0] * len(variables))
        # rejected update applied nothing: bounds and revision both untouched
        assert lp.model.bounds_version == before
        assert [lp.model.variables[v.index].lb for v in variables] == original

    def test_warm_start_handed_to_capable_backend(self, running_example, paper_params):
        received = []

        @default_registry.register("_warm", replace=True, supports_warm_start=True)
        def _solve(model, *, warm_start=None, **options):
            received.append(warm_start)
            return solve_highs(model, **options)

        try:
            lp = build_lp(running_example, paper_params)
            engine = ParametricLP(lp.model, backend="_warm")
            first = engine.solve()
            engine.solve()
            assert received[0] is None
            assert received[1] is first
            # highs does not declare warm-start support: nothing handed over
            cold = ParametricLP(lp.model, backend="highs")
            assert cold._hand_warm_start is False
        finally:
            default_registry.unregister("_warm")

    def test_unknown_backend_fails_fast(self, running_example, paper_params):
        lp = build_lp(running_example, paper_params)
        with pytest.raises(ValueError, match="unknown LP backend"):
            ParametricLP(lp.model, backend="nope")

    def test_invalid_interval_rejected(self, running_example, paper_params):
        lp = build_lp(running_example, paper_params)
        engine = ParametricLP(lp.model, backend="highs")
        with pytest.raises(ValueError, match="invalid latency interval"):
            engine.tangent_envelope(lp.latency, 2.0, 1.0)


# ---------------------------------------------------------------------------
# Algorithm 2 parity
# ---------------------------------------------------------------------------


class TestCriticalLatencyParity:
    def test_running_example_pinned(self, running_example, paper_params):
        lp = build_lp(running_example, paper_params)
        assert find_critical_latencies(lp, 0.0, 1.0) == pytest.approx([0.385], abs=1e-6)
        assert find_critical_latencies(lp, 0.2, 0.5) == pytest.approx([0.385], abs=1e-6)

    @pytest.mark.parametrize("seed", range(10))
    def test_random_dags_match_pre_refactor_search(self, seed):
        graph = build_random_dag(seed, nranks=4, rounds=14)
        refactored = find_critical_latencies(build_lp(graph, PARAMS), 0.5, 25.0)
        reference = _reference_find_critical_latencies(build_lp(graph, PARAMS), 0.5, 25.0)
        assert len(refactored) == len(reference)
        assert refactored == pytest.approx(reference, abs=1e-6)

    @pytest.mark.parametrize("seed", range(5))
    def test_random_dags_match_exact_envelope(self, seed):
        graph = build_random_dag(seed, nranks=4, rounds=14)
        found = find_critical_latencies(build_lp(graph, PARAMS), 0.5, 25.0)
        exact = [
            bp for bp in parametric_analysis(
                graph, PARAMS, l_min=0.0, l_max=25.0
            ).critical_latencies()
            if 0.5 < bp < 25.0
        ]
        assert len(found) == len(exact)
        assert found == pytest.approx(exact, abs=1e-6)

    def test_step_coalescing_preserved(self):
        lp = build_lp(build_staircase(6), ZERO_OVERHEAD)
        assert find_critical_latencies(lp, 0.0, 8.0) == pytest.approx(
            [1.0, 2.0, 3.0, 4.0, 5.0], abs=1e-6
        )
        assert find_critical_latencies(lp, 0.0, 8.0, step=2.0) == pytest.approx(
            [1.0, 3.0, 5.0], abs=1e-6
        )

    def test_max_solves_exceeded_raises(self):
        # max_solves guards the LP tangent search; the forward engine never
        # solves, so pin it to the LP engine explicitly
        lp = build_lp(build_staircase(6), ZERO_OVERHEAD)
        with pytest.raises(RuntimeError, match="exceeded 3 LP solves"):
            find_critical_latencies(
                lp, 0.0, 8.0, max_solves=3, envelope_engine="lp"
            )

    def test_per_pair_mode_rejected(self, running_example, paper_params):
        lp = build_lp(running_example, paper_params, latency_mode="per_pair")
        with pytest.raises(ValueError, match="per-pair"):
            find_critical_latencies(lp, 0.0, 1.0)


class TestCurveFromCachedTangents:
    def test_no_extra_solves_for_midpoints(self, counting_backend):
        graph = build_random_dag(3, nranks=4, rounds=14)
        find_critical_latencies(build_lp(graph, PARAMS), 0.5, 25.0, backend="_counting")
        search_solves = counting_backend["n"]

        counting_backend["n"] = 0
        tangents = critical_latency_curve(
            build_lp(graph, PARAMS), 0.5, 25.0, backend="_counting"
        )
        # pre-refactor: search_solves + one extra solve per segment
        assert len(tangents) >= 2
        assert counting_backend["n"] == search_solves

    def test_tangents_match_fresh_probes(self):
        graph = build_random_dag(4, nranks=4, rounds=14)
        lp = build_lp(graph, PARAMS)
        tangents = critical_latency_curve(lp, 0.5, 25.0)
        probe_lp = build_lp(graph, PARAMS)
        for tangent in tangents:
            solution = probe_lp.solve_runtime(L=tangent.L, backend="highs")
            assert tangent.value == pytest.approx(solution.objective, abs=1e-6)
            assert tangent.slope == pytest.approx(
                probe_lp.latency_sensitivity(solution), abs=1e-6
            )
        # λ_L is a non-decreasing step function across the segments
        slopes = [t.slope for t in tangents]
        assert all(b >= a - 1e-9 for a, b in zip(slopes, slopes[1:]))


# ---------------------------------------------------------------------------
# placement parity and incrementality
# ---------------------------------------------------------------------------


def _placement_arch():
    return ArchitectureGraph(num_nodes=3, processes_per_node=2,
                             intra_node_latency=0.3, inter_node_latency=5.0)


class TestPlacementParity:
    @pytest.mark.parametrize("seed", range(10))
    def test_random_dags_match_pre_refactor_loop(self, seed):
        graph = build_random_dag(seed, nranks=6, rounds=16)
        arch = _placement_arch()
        initial = round_robin_mapping(6, arch)
        result = llamp_placement(graph, PARAMS, arch, initial_mapping=initial, top_k=1)
        mapping, runtime, swaps, history = _reference_placement(
            graph, PARAMS, arch, initial_mapping=initial
        )
        assert result.mapping == mapping
        assert result.predicted_runtime == pytest.approx(runtime, abs=1e-6)
        assert result.swaps == swaps
        assert result.history == pytest.approx(history, abs=1e-6)

    def test_running_example_parity(self, running_example, paper_params):
        arch = ArchitectureGraph(num_nodes=2, processes_per_node=1,
                                 intra_node_latency=0.1, inter_node_latency=2.0)
        result = llamp_placement(running_example, paper_params, arch,
                                 initial_mapping=[0, 1], top_k=1)
        mapping, runtime, _, _ = _reference_placement(
            running_example, paper_params, arch, initial_mapping=[0, 1]
        )
        assert result.mapping == mapping
        assert result.predicted_runtime == pytest.approx(runtime, abs=1e-6)

    @pytest.mark.parametrize("seed", range(4))
    def test_top_k_never_worse(self, seed):
        graph = build_random_dag(seed, nranks=6, rounds=16)
        arch = _placement_arch()
        initial = round_robin_mapping(6, arch)
        single = llamp_placement(graph, PARAMS, arch, initial_mapping=initial, top_k=1)
        multi = llamp_placement(graph, PARAMS, arch, initial_mapping=initial, top_k=4)
        assert multi.predicted_runtime <= single.predicted_runtime + 1e-6


class TestPlacementIncremental:
    def test_zero_reassemblies_after_first_solve(self):
        graph = build_random_dag(1, nranks=6, rounds=16)
        arch = _placement_arch()
        lp = build_lp(graph, PARAMS, latency_mode="per_pair", gap_mode="per_pair")
        structure = lp.model.structure_version
        bounds = lp.model.bounds_version
        result = llamp_placement(graph, PARAMS, arch,
                                 initial_mapping=round_robin_mapping(6, arch),
                                 graph_lp=lp)
        assert result.num_reassemblies == 0
        assert result.num_lp_solves >= 1
        assert lp.model.structure_version == structure
        assert lp.model.bounds_version > bounds
        # the CSR lowering was built exactly once and shared across all solves
        cache = lp.model._assembled_cache
        assert cache is not None and cache.structure_version == structure
        llamp_placement(graph, PARAMS, arch, initial_mapping=[0, 0, 1, 1, 2, 2],
                        graph_lp=lp)
        assert lp.model._assembled_cache is cache

    def test_prebuilt_lp_must_be_per_pair(self, running_example, paper_params):
        lp = build_lp(running_example, paper_params)  # global latency mode
        arch = ArchitectureGraph(num_nodes=2, processes_per_node=1)
        with pytest.raises(ValueError, match="per_pair"):
            llamp_placement(running_example, paper_params, arch, graph_lp=lp)

    def test_top_k_validated(self, running_example, paper_params):
        arch = ArchitectureGraph(num_nodes=2, processes_per_node=1)
        with pytest.raises(ValueError, match="top_k"):
            llamp_placement(running_example, paper_params, arch, top_k=0)


class TestSwapGain:
    def _random_inputs(self, seed, nranks=7):
        rng = np.random.default_rng(seed)
        raw = rng.uniform(0.0, 4.0, size=(nranks, nranks))
        sensitivity_L = (raw + raw.T) / 2
        np.fill_diagonal(sensitivity_L, 0.0)
        raw_g = rng.uniform(0.0, 0.5, size=(nranks, nranks))
        sensitivity_G = (raw_g + raw_g.T) / 2
        np.fill_diagonal(sensitivity_G, 0.0)
        inter = rng.uniform(2.0, 9.0, size=(4, 4))
        inter = (inter + inter.T) / 2
        arch = ArchitectureGraph(num_nodes=4, processes_per_node=2,
                                 intra_node_latency=0.25, inter_node_latency=inter)
        mapping = [0, 0, 1, 1, 2, 3, 3][:nranks]
        return sensitivity_L, sensitivity_G, mapping, arch

    @pytest.mark.parametrize("seed", range(5))
    def test_matrix_matches_scalar_reference(self, seed):
        sensitivity_L, sensitivity_G, mapping, arch = self._random_inputs(seed)
        matrix = swap_gain_matrix(sensitivity_L, sensitivity_G, mapping, arch)
        nranks = len(mapping)
        for i in range(nranks):
            for j in range(nranks):
                expected = 0.0 if i == j else _swap_gain(
                    i, j, sensitivity_L, sensitivity_G, mapping, arch
                )
                assert matrix[i, j] == pytest.approx(expected, abs=1e-9)

    def test_matrix_without_gap_sensitivities(self):
        sensitivity_L, _, mapping, arch = self._random_inputs(11)
        matrix = swap_gain_matrix(sensitivity_L, None, mapping, arch)
        assert matrix[0, 2] == pytest.approx(
            _swap_gain(0, 2, sensitivity_L, None, mapping, arch), abs=1e-9
        )

    def test_same_node_pairs_are_zero(self):
        sensitivity_L, sensitivity_G, mapping, arch = self._random_inputs(2)
        matrix = swap_gain_matrix(sensitivity_L, sensitivity_G, mapping, arch)
        assert matrix[0, 1] == 0.0  # ranks 0 and 1 share node 0
        assert np.all(np.diag(matrix) == 0.0)

    def test_asymmetric_inter_latency_rejected(self):
        inter = np.array([[0.0, 2.0, 3.0], [2.0, 0.0, 4.0], [9.0, 4.0, 0.0]])
        with pytest.raises(ValueError, match="symmetric"):
            ArchitectureGraph(num_nodes=3, inter_node_latency=inter)

    def test_invalid_mapping_rejected(self):
        sensitivity_L, _, mapping, arch = self._random_inputs(5)
        bad = list(mapping)
        bad[0] = arch.num_nodes + 3  # node id outside the architecture
        with pytest.raises(ValueError, match="outside the architecture"):
            swap_gain_matrix(sensitivity_L, None, bad, arch)

    def test_volume_parameter_dropped(self):
        """Pin the satellite decision: gains come from the sensitivity
        matrices alone — communication volume only feeds the Scotch-like
        baseline, not Algorithm 3's gain heuristic."""
        assert "volume" not in inspect.signature(swap_gain_matrix).parameters
        assert "volume" not in inspect.signature(_swap_gain).parameters
