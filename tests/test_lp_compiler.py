"""Parity tests: the vectorised LP compiler vs the symbolic Algorithm 1 sweep.

The compiled engine must produce a *bit-compatible* LP structure — the same
variables in the same order and row-equivalent constraints in the same row
order — so that objectives, duals and every reduced-cost sensitivity agree
with the symbolic build, and the parametric machinery (bound-only updates,
the tangent-envelope search, placement) runs unchanged on compiled models.
"""

import numpy as np
import pytest

from repro.core import COMPILED_ENGINE_THRESHOLD, build_lp, find_critical_latencies
from repro.core.parametric import BatchedSweep
from repro.lp.assembler import assemble
from repro.lp.model import LPModel
from repro.network.params import LogGPSParams
from repro.testing import build_random_dag, build_running_example, build_staircase

PARAMS = LogGPSParams(L=1.2, o=0.25, g=0.0, G=0.005)

LATENCY_MODES = ("global", "per_pair", "constant")
GAP_MODES = ("constant", "global", "per_pair")
OVERHEAD_MODES = ("constant", "global")
ALL_MODES = [
    (lm, gm, om)
    for lm in LATENCY_MODES
    for gm in GAP_MODES
    for om in OVERHEAD_MODES
]

#: ≥10 random DAGs (varying shape/rank count) + the two structured graphs.
DAGS = [build_random_dag(seed, nranks=3 + seed % 3, rounds=8 + seed % 5) for seed in range(10)]
GRAPHS = [build_running_example(), build_staircase(4), *DAGS]


def _build_pair(graph, lm, gm, om):
    symbolic = build_lp(
        graph, PARAMS, latency_mode=lm, gap_mode=gm, overhead_mode=om,
        engine="symbolic",
    )
    compiled = build_lp(
        graph, PARAMS, latency_mode=lm, gap_mode=gm, overhead_mode=om,
        engine="compiled",
    )
    return symbolic, compiled


class TestStructuralIdentity:
    @pytest.mark.parametrize("lm,gm,om", ALL_MODES)
    def test_same_variables_and_rows(self, lm, gm, om):
        for graph in GRAPHS:
            symbolic, compiled = _build_pair(graph, lm, gm, om)
            assert [v.name for v in symbolic.model.variables] == [
                v.name for v in compiled.model.variables
            ]
            assert [v.lb for v in symbolic.model.variables] == [
                v.lb for v in compiled.model.variables
            ]
            assert symbolic.model.num_constraints == compiled.model.num_constraints
            assert symbolic.sink_rows == compiled.sink_rows
            assert symbolic.num_messages == compiled.num_messages

            a_sym = assemble(symbolic.model)
            a_comp = assemble(compiled.model)
            A_sym = a_sym.A_ub.copy()
            A_comp = a_comp.A_ub.copy()
            A_sym.sort_indices()
            A_comp.sort_indices()
            assert np.array_equal(A_sym.indptr, A_comp.indptr)
            assert np.array_equal(A_sym.indices, A_comp.indices)
            np.testing.assert_allclose(A_sym.data, A_comp.data, atol=1e-12)
            np.testing.assert_allclose(a_sym.b_ub, a_comp.b_ub, atol=1e-12)
            np.testing.assert_allclose(a_sym.c, a_comp.c, atol=1e-12)

    def test_pair_variable_keys_match(self):
        for graph in DAGS[:4]:
            symbolic, compiled = _build_pair(graph, "per_pair", "per_pair", "constant")
            assert list(symbolic.pair_latency) == list(compiled.pair_latency)
            assert list(symbolic.pair_gap) == list(compiled.pair_gap)
            for key in symbolic.pair_latency:
                assert symbolic.pair_latency[key].index == compiled.pair_latency[key].index


class TestSolutionParity:
    @pytest.mark.parametrize("lm,gm,om", ALL_MODES)
    def test_objective_duals_and_sensitivities(self, lm, gm, om):
        for graph in DAGS:
            symbolic, compiled = _build_pair(graph, lm, gm, om)
            s_sol = symbolic.model.solve(backend="highs")
            c_sol = compiled.model.solve(backend="highs")
            assert c_sol.objective == pytest.approx(s_sol.objective, abs=1e-6)
            np.testing.assert_allclose(s_sol.duals, c_sol.duals, atol=1e-6)
            np.testing.assert_allclose(
                s_sol.reduced_costs, c_sol.reduced_costs, atol=1e-6
            )
            if lm == "global":
                assert compiled.latency_sensitivity(c_sol) == pytest.approx(
                    symbolic.latency_sensitivity(s_sol), abs=1e-6
                )
            if lm == "per_pair":
                np.testing.assert_allclose(
                    symbolic.pair_latency_sensitivities(s_sol),
                    compiled.pair_latency_sensitivities(c_sol),
                    atol=1e-6,
                )
            if gm == "per_pair":
                np.testing.assert_allclose(
                    symbolic.pair_gap_sensitivities(s_sol),
                    compiled.pair_gap_sensitivities(c_sol),
                    atol=1e-6,
                )

    def test_latency_sweep_parity(self):
        for graph in DAGS[:5]:
            symbolic, compiled = _build_pair(graph, "global", "constant", "constant")
            for L in (0.0, 0.7, 2.5, 10.0):
                s = symbolic.solve_runtime(L=L, backend="highs")
                c = compiled.solve_runtime(L=L, backend="highs")
                assert c.objective == pytest.approx(s.objective, abs=1e-6)


class TestCompiledModelProtocol:
    """A model built ``from_arrays`` must satisfy the full LPModel protocol."""

    def test_tangent_envelope_on_compiled_model(self):
        graph = build_staircase(6)
        params = LogGPSParams(L=0.0, o=0.0, g=0.0, G=0.0)
        compiled = build_lp(graph, params, engine="compiled")
        envelope = compiled.tangent_envelope(0.0, 10.0, backend="highs")
        breakpoints = sorted(round(bp, 6) for bp in envelope.breakpoints)
        assert breakpoints == pytest.approx([1.0, 2.0, 3.0, 4.0, 5.0], abs=1e-6)

    def test_find_critical_latencies_engine_knob(self):
        graph = build_staircase(5)
        params = LogGPSParams(L=0.0, o=0.0, g=0.0, G=0.0)
        for engine in ("symbolic", "compiled"):
            latencies = find_critical_latencies(
                graph, 0.0, 10.0, params=params, engine=engine
            )
            assert latencies == pytest.approx([1.0, 2.0, 3.0, 4.0], abs=1e-6)
        with pytest.raises(ValueError):
            find_critical_latencies(graph, 0.0, 10.0)  # graph without params

    def test_batched_sweep_zero_reassemblies(self):
        graph = build_random_dag(3, nranks=4, rounds=10)
        compiled = build_lp(graph, PARAMS, engine="compiled")
        version_before = compiled.model.structure_version
        sweep = BatchedSweep(compiled, l_min=PARAMS.L, l_max=PARAMS.L + 50.0)
        values = sweep.values(np.linspace(PARAMS.L, PARAMS.L + 50.0, 20))
        assert compiled.model.structure_version == version_before
        symbolic = build_lp(graph, PARAMS, engine="symbolic")
        reference = BatchedSweep(symbolic, l_min=PARAMS.L, l_max=PARAMS.L + 50.0)
        np.testing.assert_allclose(
            values, reference.values(np.linspace(PARAMS.L, PARAMS.L + 50.0, 20)),
            atol=1e-6,
        )

    def test_solve_max_latency_materialises_and_restores(self):
        graph = build_random_dag(5, nranks=3, rounds=10)
        symbolic, compiled = _build_pair(graph, "global", "constant", "constant")
        n_rows = compiled.model.num_constraints
        compiled.set_latency_bound(PARAMS.L)
        symbolic.set_latency_bound(PARAMS.L)
        bound = 1.05 * compiled.solve_runtime(backend="highs").objective
        s = symbolic.solve_max_latency(bound, backend="highs")
        c = compiled.solve_max_latency(bound, backend="highs")
        assert c.objective == pytest.approx(s.objective, abs=1e-6)
        assert compiled.model.num_constraints == n_rows
        # and the model still re-solves correctly after the pop
        again = compiled.solve_runtime(L=PARAMS.L, backend="highs")
        assert again.objective == pytest.approx(
            symbolic.solve_runtime(L=PARAMS.L, backend="highs").objective, abs=1e-6
        )

    def test_materialised_constraints_match_assembled_rows(self):
        graph = build_random_dag(7, nranks=3, rounds=8)
        compiled = build_lp(graph, PARAMS, engine="compiled")
        assembled = assemble(compiled.model)
        A = assembled.A_ub.copy()
        A.sort_indices()
        # touching .constraints materialises Constraint objects lazily; the
        # re-lowered dict form must reproduce the pre-lowered arrays exactly
        constraints = compiled.model.constraints
        assert [c.index for c in constraints] == list(range(len(constraints)))
        compiled.model.invalidate()
        relowered = assemble(compiled.model)
        B = relowered.A_ub.copy()
        B.sort_indices()
        assert np.array_equal(A.indptr, B.indptr)
        assert np.array_equal(A.indices, B.indices)
        np.testing.assert_allclose(A.data, B.data, atol=1e-15)
        np.testing.assert_allclose(assembled.b_ub, relowered.b_ub, atol=1e-15)

    def test_tight_constraints_work_on_compiled_model(self):
        graph = build_running_example()
        compiled = build_lp(graph, PARAMS, engine="compiled")
        solution = compiled.solve_runtime(L=PARAMS.L, backend="highs")
        assert len(solution.tight_constraints()) >= 1

    def test_from_arrays_validation(self):
        with pytest.raises(ValueError):
            LPModel.from_arrays(
                var_names=["x"], lb=[1.0], ub=[0.0],
                row_indptr=np.array([0]), row_cols=np.array([]),
                row_vals=np.array([]), row_consts=np.array([]),
            )
        with pytest.raises(ValueError):
            LPModel.from_arrays(
                var_names=["x", "y"], lb=[0.0],
                row_indptr=np.array([0]), row_cols=np.array([]),
                row_vals=np.array([]), row_consts=np.array([]),
            )


class TestEngineSelection:
    def test_auto_threshold(self):
        small = build_running_example()
        lp_small = build_lp(small, PARAMS, engine="auto")
        assert lp_small.model._deferred_rows is None  # symbolic path
        assert small.num_vertices < COMPILED_ENGINE_THRESHOLD
        big = build_random_dag(11, nranks=6, rounds=40)
        assert big.num_vertices >= COMPILED_ENGINE_THRESHOLD
        lp_big = build_lp(big, PARAMS, engine="auto")
        assert lp_big.model._deferred_rows is not None  # compiled, untouched

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            build_lp(build_running_example(), PARAMS, engine="weird")


class TestCompileFromBatches:
    """``compile_lp_from_batches``: op batches → CSR with no frozen graph."""

    @staticmethod
    def _workload():
        from repro.mpi import run_program
        from repro.schedgen.columnar import batches_from_program

        def app(comm):
            for it in range(3):
                comm.compute(1.0)
                comm.allreduce(2048)
                nxt = (comm.rank + 1) % comm.size
                prv = (comm.rank - 1) % comm.size
                req = comm.irecv(prv, 256, tag=it)
                comm.send(nxt, 256, tag=it)
                comm.wait(req)

        program = run_program(app, 4)
        return batches_from_program(program), program.nranks

    @pytest.mark.parametrize("lm,gm", [("global", "constant"), ("per_pair", "per_pair")])
    def test_bit_identical_to_freeze_then_compile(self, lm, gm):
        from repro.lp.compiler import compile_lp, compile_lp_from_batches
        from repro.schedgen.builder import ProtocolConfig
        from repro.schedgen.collectives import CollectiveAlgorithms
        from repro.schedgen.columnar import build_columnar

        batches, nranks = self._workload()
        algorithms = CollectiveAlgorithms()
        protocol = ProtocolConfig.from_params(PARAMS)
        frozen_graph = build_columnar(
            batches, nranks, algorithms=algorithms, protocol=protocol
        )
        frozen = compile_lp(frozen_graph, PARAMS, latency_mode=lm, gap_mode=gm)
        fused = compile_lp_from_batches(
            batches, nranks, PARAMS, latency_mode=lm, gap_mode=gm,
            algorithms=algorithms, protocol=protocol,
        )
        a, b = frozen.model.to_arrays(), fused.model.to_arrays()
        assert a.keys() == b.keys()
        for key in a:
            if isinstance(a[key], np.ndarray):
                np.testing.assert_array_equal(a[key], b[key], err_msg=key)
            else:
                assert a[key] == b[key], key
        f_sol = frozen.model.solve(backend="highs")
        g_sol = fused.model.solve(backend="highs")
        assert g_sol.objective == f_sol.objective
        np.testing.assert_array_equal(g_sol.duals, f_sol.duals)

    def test_analyze_only_graph_attached(self):
        from repro.lp.compiler import compile_lp_from_batches
        from repro.schedgen import build_graph
        from repro.mpi import run_program

        def app(comm):
            comm.compute(1.0)
            comm.allreduce(512)

        program = run_program(app, 4)
        from repro.schedgen.columnar import batches_from_program

        compiled = compile_lp_from_batches(
            batches_from_program(program), program.nranks, PARAMS
        )
        assert compiled.graph is not None
        # digest parity keys fused requests to the frozen cache entries
        from repro.schedgen.builder import ProtocolConfig

        frozen = build_graph(program, protocol=ProtocolConfig.from_params(PARAMS))
        assert compiled.graph.content_digest() == frozen.content_digest()

    def test_defaults_match_explicit_config(self):
        from repro.lp.compiler import compile_lp_from_batches
        from repro.schedgen.builder import ProtocolConfig
        from repro.schedgen.collectives import CollectiveAlgorithms

        batches, nranks = self._workload()
        bare = compile_lp_from_batches(batches, nranks, PARAMS)
        explicit = compile_lp_from_batches(
            batches, nranks, PARAMS,
            algorithms=CollectiveAlgorithms(),
            protocol=ProtocolConfig.from_params(PARAMS),
        )
        assert bare.graph.content_digest() == explicit.graph.content_digest()
        assert (
            bare.model.solve(backend="highs").objective
            == explicit.model.solve(backend="highs").objective
        )
