"""Tests for the execution graph data structure."""

import numpy as np
import pytest

from repro.schedgen.graph import (
    EdgeKind,
    ExecutionGraph,
    GraphBuilder,
    GraphValidationError,
    VertexKind,
)


def small_graph() -> ExecutionGraph:
    b = GraphBuilder(nranks=2)
    c0 = b.add_calc(0, 2.0)
    s = b.add_send(0, 1, 100, tag=3)
    c1 = b.add_calc(0, 1.0)
    b.chain([c0, s, c1])
    c2 = b.add_calc(1, 0.5)
    r = b.add_recv(1, 0, 100, tag=3)
    b.chain([c2, r])
    b.add_comm_edge(s, r)
    return b.freeze()


class TestGraphBuilder:
    def test_vertex_attributes(self):
        g = small_graph()
        assert g.num_vertices == 5
        assert g.kind[1] == VertexKind.SEND
        assert g.size[1] == 100 and g.peer[1] == 1 and g.tag[1] == 3
        assert g.rank[3] == 1

    def test_rank_out_of_range(self):
        b = GraphBuilder(nranks=2)
        with pytest.raises(ValueError):
            b.add_calc(2, 1.0)

    def test_negative_cost_rejected(self):
        b = GraphBuilder(nranks=1)
        with pytest.raises(ValueError):
            b.add_calc(0, -1.0)

    def test_self_dependency_rejected(self):
        b = GraphBuilder(nranks=1)
        v = b.add_calc(0, 1.0)
        with pytest.raises(ValueError):
            b.add_dependency(v, v)

    def test_comm_edge_type_checked(self):
        b = GraphBuilder(nranks=2)
        c = b.add_calc(0, 1.0)
        r = b.add_recv(1, 0, 8)
        with pytest.raises(ValueError, match="not a SEND"):
            b.add_comm_edge(c, r)

    def test_send_peer_range_checked(self):
        b = GraphBuilder(nranks=2)
        with pytest.raises(ValueError):
            b.add_send(0, 5, 8)

    def test_nranks_positive(self):
        with pytest.raises(ValueError):
            GraphBuilder(nranks=0)


class TestExecutionGraph:
    def test_stats(self):
        stats = small_graph().stats()
        assert stats["calc"] == 3 and stats["send"] == 1 and stats["recv"] == 1
        assert stats["comm_edges"] == 1
        assert stats["dep_edges"] == 3

    def test_successors_predecessors(self):
        g = small_graph()
        assert list(g.successors(0)) == [1]
        assert set(g.successors(1)) == {2, 4}  # local successor + comm edge
        assert list(g.predecessors(4)) == [3, 1] or set(g.predecessors(4)) == {1, 3}
        assert g.in_degree(4) == 2
        assert g.out_degree(1) == 2

    def test_sources_and_sinks(self):
        g = small_graph()
        assert set(g.sources()) == {0, 3}
        assert set(g.sinks()) == {2, 4}

    def test_topological_order_is_valid(self):
        g = small_graph()
        order = g.topological_order()
        position = {int(v): i for i, v in enumerate(order)}
        for src, dst, _ in g.edges():
            assert position[src] < position[dst]

    def test_cycle_detection(self):
        b = GraphBuilder(nranks=1)
        a = b.add_calc(0, 1.0)
        c = b.add_calc(0, 1.0)
        b.add_dependency(a, c)
        b.add_dependency(c, a)
        with pytest.raises(GraphValidationError, match="cycle"):
            b.freeze()

    def test_unmatched_send_detected(self):
        b = GraphBuilder(nranks=2)
        b.add_send(0, 1, 8)
        with pytest.raises(GraphValidationError, match="unmatched SEND"):
            b.freeze()

    def test_size_mismatch_detected(self):
        b = GraphBuilder(nranks=2)
        s = b.add_send(0, 1, 8)
        r = b.add_recv(1, 0, 16)
        b.add_comm_edge(s, r)
        with pytest.raises(GraphValidationError, match="size mismatch"):
            b.freeze()

    def test_peer_mismatch_detected(self):
        b = GraphBuilder(nranks=3)
        s = b.add_send(0, 2, 8)
        r = b.add_recv(1, 0, 8)
        b.add_comm_edge(s, r)
        with pytest.raises(GraphValidationError, match="mismatch"):
            b.freeze()

    def test_vertices_of_rank(self):
        g = small_graph()
        assert set(g.vertices_of_rank(0)) == {0, 1, 2}
        assert set(g.vertices_of_rank(1)) == {3, 4}

    def test_message_edges_and_counts(self):
        g = small_graph()
        assert g.num_messages == 1
        assert len(g.message_edges()) == 1
        assert g.num_events == g.num_vertices

    def test_longest_message_chain(self):
        g = small_graph()
        assert g.longest_message_chain() == 1

    def test_longest_message_chain_two_hops(self):
        b = GraphBuilder(nranks=3)
        s0 = b.add_send(0, 1, 8)
        r1 = b.add_recv(1, 0, 8)
        s1 = b.add_send(1, 2, 8)
        r2 = b.add_recv(2, 1, 8)
        b.add_dependency(r1, s1)
        b.add_comm_edge(s0, r1)
        b.add_comm_edge(s1, r2)
        assert b.freeze().longest_message_chain() == 2

    def test_to_networkx(self):
        g = small_graph()
        nxg = g.to_networkx()
        assert nxg.number_of_nodes() == g.num_vertices
        assert nxg.number_of_edges() == g.num_edges
        assert nxg.nodes[1]["kind"] == "SEND"
        assert nxg.graph["nranks"] == 2

    def test_in_edges_iteration(self):
        g = small_graph()
        kinds = {kind for _, _, kind in g.in_edges(4)}
        assert kinds == {EdgeKind.DEP, EdgeKind.COMM}

    def test_empty_graph_rejected(self):
        b = GraphBuilder(nranks=1)
        with pytest.raises(GraphValidationError):
            b.freeze()
