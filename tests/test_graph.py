"""Tests for the execution graph data structure."""

import numpy as np
import pytest

from repro.schedgen.graph import (
    EdgeKind,
    ExecutionGraph,
    GraphBuilder,
    GraphValidationError,
    VertexKind,
)


def small_graph() -> ExecutionGraph:
    b = GraphBuilder(nranks=2)
    c0 = b.add_calc(0, 2.0)
    s = b.add_send(0, 1, 100, tag=3)
    c1 = b.add_calc(0, 1.0)
    b.chain([c0, s, c1])
    c2 = b.add_calc(1, 0.5)
    r = b.add_recv(1, 0, 100, tag=3)
    b.chain([c2, r])
    b.add_comm_edge(s, r)
    return b.freeze()


class TestGraphBuilder:
    def test_vertex_attributes(self):
        g = small_graph()
        assert g.num_vertices == 5
        assert g.kind[1] == VertexKind.SEND
        assert g.size[1] == 100 and g.peer[1] == 1 and g.tag[1] == 3
        assert g.rank[3] == 1

    def test_rank_out_of_range(self):
        b = GraphBuilder(nranks=2)
        with pytest.raises(ValueError):
            b.add_calc(2, 1.0)

    def test_negative_cost_rejected(self):
        b = GraphBuilder(nranks=1)
        with pytest.raises(ValueError):
            b.add_calc(0, -1.0)

    def test_self_dependency_rejected(self):
        b = GraphBuilder(nranks=1)
        v = b.add_calc(0, 1.0)
        with pytest.raises(ValueError):
            b.add_dependency(v, v)

    def test_comm_edge_type_checked(self):
        b = GraphBuilder(nranks=2)
        c = b.add_calc(0, 1.0)
        r = b.add_recv(1, 0, 8)
        with pytest.raises(ValueError, match="not a SEND"):
            b.add_comm_edge(c, r)

    def test_send_peer_range_checked(self):
        b = GraphBuilder(nranks=2)
        with pytest.raises(ValueError):
            b.add_send(0, 5, 8)

    def test_nranks_positive(self):
        with pytest.raises(ValueError):
            GraphBuilder(nranks=0)


class TestBulkBuilderAPI:
    def test_add_vertices_broadcasts_scalars(self):
        b = GraphBuilder(nranks=4)
        vids = b.add_vertices(VertexKind.SEND, np.arange(4), size=8, peer=0, tag=3)
        assert list(vids) == [0, 1, 2, 3]
        g_vids = b.add_vertices(VertexKind.RECV, 0, size=8, peer=np.arange(4), tag=3)
        assert list(g_vids) == [4, 5, 6, 7]
        b.add_comm_edges(vids, g_vids)
        g = b.freeze(validate=False)
        assert g.num_vertices == 8 and g.num_edges == 4
        assert list(g.size) == [8] * 8
        assert list(g.rank[:4]) == [0, 1, 2, 3]
        assert list(g.peer[4:]) == [0, 1, 2, 3]

    def test_add_vertices_count_for_all_scalars(self):
        b = GraphBuilder(nranks=2)
        vids = b.add_vertices(VertexKind.CALC, 0, cost=1.5, count=3)
        assert list(vids) == [0, 1, 2]
        assert b.num_vertices == 3

    def test_add_vertices_requires_length(self):
        b = GraphBuilder(nranks=2)
        with pytest.raises(ValueError, match="count"):
            b.add_vertices(VertexKind.CALC, 0)

    def test_add_vertices_length_mismatch(self):
        b = GraphBuilder(nranks=2)
        with pytest.raises(ValueError, match="length mismatch"):
            b.add_vertices(VertexKind.CALC, np.arange(2), cost=np.zeros(3))

    def test_add_vertices_validation(self):
        b = GraphBuilder(nranks=2)
        with pytest.raises(ValueError, match="rank"):
            b.add_vertices(VertexKind.CALC, np.array([0, 5]))
        with pytest.raises(ValueError, match="cost"):
            b.add_vertices(VertexKind.CALC, np.array([0, 1]), cost=np.array([1.0, -1.0]))
        with pytest.raises(ValueError, match="size"):
            b.add_vertices(VertexKind.SEND, np.array([0, 1]), size=np.array([1, -1]), peer=0)
        with pytest.raises(ValueError, match="peer"):
            b.add_vertices(VertexKind.SEND, np.array([0, 1]), size=8, peer=np.array([0, 9]))
        # CALC rows never range-check the (unused) peer column
        b.add_vertices(VertexKind.CALC, np.array([0, 1]), peer=-1)
        assert b.num_vertices == 2

    def test_add_dependencies_bulk(self):
        b = GraphBuilder(nranks=1)
        vids = b.add_vertices(VertexKind.CALC, 0, cost=1.0, count=4)
        b.add_dependencies(vids[:-1], vids[1:])
        assert b.num_edges == 3
        with pytest.raises(ValueError, match="self-dependency"):
            b.add_dependencies(vids[:1], vids[:1])
        with pytest.raises(ValueError, match="out of range"):
            b.add_dependencies(np.array([0]), np.array([99]))
        with pytest.raises(ValueError, match="length mismatch"):
            b.add_dependencies(vids[:2], vids[:1])

    def test_add_comm_edges_kind_checked(self):
        b = GraphBuilder(nranks=2)
        s = b.add_vertices(VertexKind.SEND, 0, size=8, peer=1, count=1)
        r = b.add_vertices(VertexKind.RECV, 1, size=8, peer=0, count=1)
        c = b.add_vertices(VertexKind.CALC, 0, count=1)
        with pytest.raises(ValueError, match="not a SEND"):
            b.add_comm_edges(c, r)
        with pytest.raises(ValueError, match="not a RECV"):
            b.add_comm_edges(s, c)
        b.add_comm_edges(s, r)
        assert b.num_edges == 1

    def test_bulk_growth_beyond_initial_capacity(self):
        b = GraphBuilder(nranks=1)
        vids = b.add_vertices(VertexKind.CALC, 0, cost=0.5, count=5000)
        b.add_dependencies(vids[:-1], vids[1:])
        g = b.freeze()
        assert g.num_vertices == 5000 and g.num_edges == 4999

    def test_set_label(self):
        b = GraphBuilder(nranks=1)
        vid = b.add_vertices(VertexKind.CALC, 0, count=1)[0]
        b.set_label(int(vid), "wait")
        assert b.freeze().labels == {0: "wait"}
        with pytest.raises(ValueError, match="out of range"):
            b.set_label(5, "nope")

    def test_scalar_and_bulk_paths_equivalent(self):
        scalar = GraphBuilder(nranks=2)
        c = scalar.add_calc(0, 1.0)
        s = scalar.add_send(0, 1, 64, tag=7)
        r = scalar.add_recv(1, 0, 64, tag=7)
        scalar.add_dependency(c, s)
        scalar.add_comm_edge(s, r)
        bulk = GraphBuilder(nranks=2)
        vids = bulk.add_vertices(
            np.array([VertexKind.CALC, VertexKind.SEND, VertexKind.RECV], dtype=np.int8),
            np.array([0, 0, 1]),
            cost=np.array([1.0, 0.0, 0.0]),
            size=np.array([0, 64, 64]),
            peer=np.array([-1, 1, 0]),
            tag=np.array([0, 7, 7]),
        )
        bulk.add_dependencies(vids[:1], vids[1:2])
        bulk.add_comm_edges(vids[1:2], vids[2:3])
        a, b = scalar.freeze(), bulk.freeze()
        for name in ("kind", "rank", "cost", "size", "peer", "tag",
                     "edge_src", "edge_dst", "edge_kind"):
            assert np.array_equal(getattr(a, name), getattr(b, name)), name

    def test_frozen_graph_detached_from_builder(self):
        b = GraphBuilder(nranks=1)
        b.add_calc(0, 1.0)
        g = b.freeze()
        b.add_calc(0, 2.0)
        assert g.num_vertices == 1
        assert b.num_vertices == 2


class TestEdgeArrays:
    def test_edge_arrays_match_edge_iterator(self):
        g = small_graph()
        edge_src, edge_dst, edge_kind = g.edge_arrays()
        listed = list(g.edges())
        assert len(listed) == len(edge_src) == g.num_edges
        for eid, (src, dst, kind) in enumerate(listed):
            assert edge_src[eid] == src
            assert edge_dst[eid] == dst
            assert edge_kind[eid] == int(kind)


class TestExecutionGraph:
    def test_stats(self):
        stats = small_graph().stats()
        assert stats["calc"] == 3 and stats["send"] == 1 and stats["recv"] == 1
        assert stats["comm_edges"] == 1
        assert stats["dep_edges"] == 3

    def test_successors_predecessors(self):
        g = small_graph()
        assert list(g.successors(0)) == [1]
        assert set(g.successors(1)) == {2, 4}  # local successor + comm edge
        assert list(g.predecessors(4)) == [3, 1] or set(g.predecessors(4)) == {1, 3}
        assert g.in_degree(4) == 2
        assert g.out_degree(1) == 2

    def test_sources_and_sinks(self):
        g = small_graph()
        assert set(g.sources()) == {0, 3}
        assert set(g.sinks()) == {2, 4}

    def test_topological_order_is_valid(self):
        g = small_graph()
        order = g.topological_order()
        position = {int(v): i for i, v in enumerate(order)}
        for src, dst, _ in g.edges():
            assert position[src] < position[dst]

    def test_order_contract_level_major_vid_minor(self):
        # the canonical order sorts by longest-path level, then vertex id —
        # the deterministic contract shared by the LP compiler's variable
        # ordering and both simulation engines
        from repro.testing import build_random_dag

        for seed in range(5):
            g = build_random_dag(seed, nranks=4, rounds=10)
            indptr, order = g.topo_levels()
            level = g.level_of()
            np.testing.assert_array_equal(order, g.topological_order())
            assert len(indptr) - 1 == g.num_levels
            # level of a vertex = 1 + max level of its predecessors
            for v in range(g.num_vertices):
                preds = g.predecessors(v)
                expected = int(level[preds].max()) + 1 if len(preds) else 0
                assert level[v] == expected
            # within a level, ascending vertex id; across levels, ascending
            for k in range(g.num_levels):
                chunk = order[indptr[k]: indptr[k + 1]]
                assert np.all(np.diff(chunk) > 0)
                assert np.all(level[chunk] == k)
            # the order is exactly (level, vid)-lexicographic
            np.testing.assert_array_equal(
                order, np.lexsort((np.arange(g.num_vertices), level))
            )

    def test_topo_levels_narrow_and_wide_paths_agree(self):
        # the peeling loop hands off from NumPy to list space on narrow
        # frontiers; both regimes must produce the same structure
        from repro.schedgen import graph as graph_module
        from repro.testing import build_random_dag

        g = build_random_dag(7, nranks=4, rounds=15)
        indptr, order = g.topo_levels()
        rebuilt = ExecutionGraph(
            g.nranks, g.kind, g.rank, g.cost, g.size, g.peer, g.tag,
            g.edge_src, g.edge_dst, g.edge_kind,
        )
        original = graph_module.ExecutionGraph._LIST_PEEL_WIDTH
        graph_module.ExecutionGraph._LIST_PEEL_WIDTH = 1  # pure NumPy peel
        try:
            indptr2, order2 = rebuilt.topo_levels()
        finally:
            graph_module.ExecutionGraph._LIST_PEEL_WIDTH = original
        np.testing.assert_array_equal(indptr, indptr2)
        np.testing.assert_array_equal(order, order2)

    def test_cycle_detection(self):
        b = GraphBuilder(nranks=1)
        a = b.add_calc(0, 1.0)
        c = b.add_calc(0, 1.0)
        b.add_dependency(a, c)
        b.add_dependency(c, a)
        with pytest.raises(GraphValidationError, match="cycle"):
            b.freeze()

    def test_unmatched_send_detected(self):
        b = GraphBuilder(nranks=2)
        b.add_send(0, 1, 8)
        with pytest.raises(GraphValidationError, match="unmatched SEND"):
            b.freeze()

    def test_size_mismatch_detected(self):
        b = GraphBuilder(nranks=2)
        s = b.add_send(0, 1, 8)
        r = b.add_recv(1, 0, 16)
        b.add_comm_edge(s, r)
        with pytest.raises(GraphValidationError, match="size mismatch"):
            b.freeze()

    def test_peer_mismatch_detected(self):
        b = GraphBuilder(nranks=3)
        s = b.add_send(0, 2, 8)
        r = b.add_recv(1, 0, 8)
        b.add_comm_edge(s, r)
        with pytest.raises(GraphValidationError, match="mismatch"):
            b.freeze()

    def test_vertices_of_rank(self):
        g = small_graph()
        assert set(g.vertices_of_rank(0)) == {0, 1, 2}
        assert set(g.vertices_of_rank(1)) == {3, 4}

    def test_message_edges_and_counts(self):
        g = small_graph()
        assert g.num_messages == 1
        assert len(g.message_edges()) == 1
        assert g.num_events == g.num_vertices

    def test_longest_message_chain(self):
        g = small_graph()
        assert g.longest_message_chain() == 1

    def test_longest_message_chain_two_hops(self):
        b = GraphBuilder(nranks=3)
        s0 = b.add_send(0, 1, 8)
        r1 = b.add_recv(1, 0, 8)
        s1 = b.add_send(1, 2, 8)
        r2 = b.add_recv(2, 1, 8)
        b.add_dependency(r1, s1)
        b.add_comm_edge(s0, r1)
        b.add_comm_edge(s1, r2)
        assert b.freeze().longest_message_chain() == 2

    def test_to_networkx(self):
        g = small_graph()
        nxg = g.to_networkx()
        assert nxg.number_of_nodes() == g.num_vertices
        assert nxg.number_of_edges() == g.num_edges
        assert nxg.nodes[1]["kind"] == "SEND"
        assert nxg.graph["nranks"] == 2

    def test_in_edges_iteration(self):
        g = small_graph()
        kinds = {kind for _, _, kind in g.in_edges(4)}
        assert kinds == {EdgeKind.DEP, EdgeKind.COMM}

    def test_empty_graph_rejected(self):
        b = GraphBuilder(nranks=1)
        with pytest.raises(GraphValidationError):
            b.freeze()
