"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.network.params import LogGPSParams
from repro.schedgen.graph import GraphBuilder


@pytest.fixture
def simple_params() -> LogGPSParams:
    """Small, round parameters used by most unit tests."""
    return LogGPSParams(L=1.0, o=0.5, g=0.0, G=0.001, S=256 * 1024, P=2)


@pytest.fixture
def paper_params() -> LogGPSParams:
    """The parameters of the paper's Fig. 4 running example."""
    return LogGPSParams(L=0.0, o=0.0, g=0.0, G=0.005, S=256 * 1024, P=2)


def build_running_example(c0: float = 0.1):
    """The two-rank example of Fig. 4: C0 -> S -> C1 on rank 0, C2 -> R -> C3 on rank 1."""
    builder = GraphBuilder(nranks=2)
    v_c0 = builder.add_calc(0, c0)
    v_s = builder.add_send(0, 1, 4)
    v_c1 = builder.add_calc(0, 1.0)
    builder.chain([v_c0, v_s, v_c1])
    v_c2 = builder.add_calc(1, 0.5)
    v_r = builder.add_recv(1, 0, 4)
    v_c3 = builder.add_calc(1, 1.0)
    builder.chain([v_c2, v_r, v_c3])
    builder.add_comm_edge(v_s, v_r)
    return builder.freeze()


@pytest.fixture
def running_example():
    """Fig. 4c variant (c0 = 0.1 µs): the critical path depends on L."""
    return build_running_example(0.1)


@pytest.fixture
def late_sender_example():
    """Fig. 4b variant (c0 = 1 µs): the communication edge is always critical."""
    return build_running_example(1.0)
