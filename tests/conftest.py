"""Shared fixtures for the test suite.

Graph constructors live in :mod:`repro.testing` — import them from there in
test modules (``conftest`` is not an importable module name: when pytest
collects both ``tests/`` and ``benchmarks/``, ``from conftest import ...``
resolves to whichever conftest was loaded first).
"""

from __future__ import annotations

import pytest

from repro.network.params import LogGPSParams
from repro.testing import build_running_example


@pytest.fixture
def simple_params() -> LogGPSParams:
    """Small, round parameters used by most unit tests."""
    return LogGPSParams(L=1.0, o=0.5, g=0.0, G=0.001, S=256 * 1024, P=2)


@pytest.fixture
def paper_params() -> LogGPSParams:
    """The parameters of the paper's Fig. 4 running example."""
    return LogGPSParams(L=0.0, o=0.0, g=0.0, G=0.005, S=256 * 1024, P=2)


@pytest.fixture
def running_example():
    """Fig. 4c variant (c0 = 0.1 µs): the critical path depends on L."""
    return build_running_example(0.1)


@pytest.fixture
def late_sender_example():
    """Fig. 4b variant (c0 = 1 µs): the communication edge is always critical."""
    return build_running_example(1.0)
