"""Tests for the application skeletons."""

import pytest

from repro import CSCS_TESTBED, LatencyAnalyzer
from repro.apps import (
    ALL_APPS,
    VALIDATION_APPS,
    cartesian_grid,
    cloverleaf,
    hpcg,
    icon,
    lammps,
    lulesh,
    milc,
    namd,
    neighbor_ranks,
    npb,
    openmx,
)
from repro.apps._base import grid_coords, grid_rank
from repro.schedgen import CollectiveAlgorithms

FAST = dict(
    lulesh=dict(iterations=4),
    hpcg=dict(iterations=3),
    milc=dict(trajectories=1, cg_iterations=3),
    icon=dict(steps=4),
    lammps=dict(steps=6),
    openmx=dict(scf_iterations=3),
    cloverleaf=dict(steps=6),
)


class TestGridHelpers:
    @pytest.mark.parametrize("nranks,ndims", [(8, 3), (12, 3), (27, 3), (7, 2), (1, 3), (64, 4)])
    def test_cartesian_grid_product(self, nranks, ndims):
        dims = cartesian_grid(nranks, ndims)
        product = 1
        for d in dims:
            product *= d
        assert product == nranks
        assert len(dims) == ndims
        assert list(dims) == sorted(dims, reverse=True)

    def test_grid_coords_round_trip(self):
        dims = (4, 3, 2)
        for rank in range(24):
            assert grid_rank(grid_coords(rank, dims), dims) == rank

    def test_neighbor_symmetry(self):
        dims = cartesian_grid(12, 3)
        for rank in range(12):
            for neighbor in neighbor_ranks(rank, dims, periodic=True):
                assert rank in neighbor_ranks(neighbor, dims, periodic=True)

    def test_nonperiodic_boundary_has_fewer_neighbors(self):
        dims = (4, 1, 1)
        corner = neighbor_ranks(0, dims, periodic=False)
        middle = neighbor_ranks(1, dims, periodic=False)
        assert len(corner) == 1 and len(middle) == 2

    def test_invalid_grid_args(self):
        with pytest.raises(ValueError):
            cartesian_grid(0, 3)
        with pytest.raises(ValueError):
            cartesian_grid(4, 0)
        with pytest.raises(ValueError):
            grid_rank((5, 0), (4, 2))


@pytest.mark.parametrize("name", sorted(VALIDATION_APPS))
class TestValidationApps:
    def test_program_and_graph_build(self, name):
        module = VALIDATION_APPS[name]
        program = module.program(4, **FAST.get(name, {}))
        assert program.nranks == 4
        graph = module.build(4, params=CSCS_TESTBED, **FAST.get(name, {}))
        graph.validate()
        assert graph.num_messages > 0
        assert graph.nranks == 4

    def test_descriptor_present(self, name):
        module = VALIDATION_APPS[name]
        assert module.DESCRIPTOR.name == name
        assert module.DESCRIPTOR.scaling in ("weak", "strong")

    def test_analyzable(self, name):
        module = VALIDATION_APPS[name]
        graph = module.build(4, params=CSCS_TESTBED, **FAST.get(name, {}))
        analyzer = LatencyAnalyzer(graph, CSCS_TESTBED)
        runtime = analyzer.predict_runtime()
        assert runtime > 0
        assert analyzer.latency_sensitivity() > 0


class TestScalingBehaviour:
    def test_strong_scaling_reduces_per_rank_compute(self):
        small = milc.program(2, trajectories=1, cg_iterations=2)
        large = milc.program(8, trajectories=1, cg_iterations=2)
        assert large.rank(0).total_compute < small.rank(0).total_compute

    def test_weak_scaling_keeps_per_rank_compute(self):
        small = lulesh.program(2, iterations=3)
        large = lulesh.program(8, iterations=3)
        assert large.rank(0).total_compute == pytest.approx(
            small.rank(0).total_compute, rel=1e-6
        )

    def test_latency_tolerance_ordering_matches_paper(self):
        """MILC < LULESH <= HPCG << ICON (Fig. 1 / Fig. 9)."""
        tolerances = {}
        configs = {
            "milc": dict(trajectories=2, cg_iterations=8),
            "lulesh": dict(iterations=10),
            "hpcg": dict(iterations=10),
            "icon": dict(steps=8),
        }
        for name in ("milc", "lulesh", "hpcg", "icon"):
            graph = VALIDATION_APPS[name].build(8, params=CSCS_TESTBED, **configs[name])
            analyzer = LatencyAnalyzer(graph, CSCS_TESTBED)
            tolerances[name] = analyzer.latency_tolerance(0.01, absolute=False)
        assert tolerances["milc"] < tolerances["lulesh"]
        assert tolerances["milc"] < tolerances["hpcg"]
        assert tolerances["icon"] > 3 * tolerances["hpcg"]

    def test_icon_ring_allreduce_is_more_sensitive(self):
        """Fig. 10: the ring allreduce makes ICON much more latency sensitive."""
        rd = icon.build(8, params=CSCS_TESTBED, steps=6)
        ring = icon.build(
            8, params=CSCS_TESTBED, steps=6,
            algorithms=CollectiveAlgorithms(allreduce="ring"),
        )
        lam_rd = LatencyAnalyzer(rd, CSCS_TESTBED).latency_sensitivity()
        lam_ring = LatencyAnalyzer(ring, CSCS_TESTBED).latency_sensitivity()
        assert lam_ring > lam_rd


class TestNPB:
    @pytest.mark.parametrize("kernel", npb.KERNELS)
    def test_all_kernels_build(self, kernel):
        graph = npb.build(4, params=CSCS_TESTBED, kernel=kernel)
        graph.validate()
        assert graph.num_events > 0

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError):
            npb.program(4, kernel="zz")

    def test_ep_has_fewest_messages(self):
        counts = {
            kernel: npb.build(4, params=CSCS_TESTBED, kernel=kernel).num_messages
            for kernel in ("ep", "cg", "lu")
        }
        assert counts["ep"] < counts["cg"]
        assert counts["ep"] < counts["lu"]

    def test_lu_has_long_message_chains(self):
        lu = npb.build_lu(4, params=CSCS_TESTBED, iterations=5)
        ep = npb.build_ep(4, params=CSCS_TESTBED)
        assert lu.longest_message_chain() > ep.longest_message_chain()


class TestNAMD:
    def test_adaptation_increases_overlap(self):
        """Traces recorded at larger ΔL predict flatter latency response (Fig. 12)."""
        base = namd.build(8, params=CSCS_TESTBED, steps=10, recorded_delta_us=0.0)
        adapted = namd.build(8, params=CSCS_TESTBED, steps=10, recorded_delta_us=100.0)
        an_base = LatencyAnalyzer(base, CSCS_TESTBED)
        an_adapted = LatencyAnalyzer(adapted, CSCS_TESTBED)
        # at a large ΔL the adapted schedule hides more latency
        delta = 150.0
        slowdown_base = an_base.predict_runtime(delta) / an_base.baseline_runtime()
        slowdown_adapted = an_adapted.predict_runtime(delta) / an_adapted.baseline_runtime()
        assert slowdown_adapted < slowdown_base

    def test_negative_recorded_delta_rejected(self):
        with pytest.raises(ValueError):
            namd.program(4, recorded_delta_us=-1.0)


class TestRegistry:
    def test_all_apps_registry(self):
        assert set(VALIDATION_APPS).issubset(set(ALL_APPS))
        assert "npb" in ALL_APPS and "namd" in ALL_APPS

    def test_invalid_iterations_rejected(self):
        for name, module in VALIDATION_APPS.items():
            with pytest.raises(ValueError):
                if name == "milc":
                    module.program(4, trajectories=0)
                elif name == "icon":
                    module.program(4, steps=0)
                elif name in ("lammps", "cloverleaf"):
                    module.program(4, steps=0)
                elif name == "openmx":
                    module.program(4, scf_iterations=0)
                else:
                    module.program(4, iterations=0)
