"""Tests for the high-level LatencyAnalyzer API."""

import numpy as np
import pytest

from repro import LatencyAnalyzer
from repro.mpi import run_program
from repro.network.params import LogGPSParams
from repro.schedgen import build_graph

PARAMS = LogGPSParams(L=2.0, o=1.0, g=0.0, G=0.0005)


@pytest.fixture(scope="module")
def small_app_graph():
    def app(comm):
        for it in range(4):
            comm.compute(200.0)
            nxt = (comm.rank + 1) % comm.size
            prv = (comm.rank - 1) % comm.size
            req = comm.irecv(prv, 256, tag=it)
            comm.send(nxt, 256, tag=it)
            comm.wait(req)
            comm.allreduce(8)

    return build_graph(run_program(app, 4))


@pytest.fixture(scope="module")
def analyzer(small_app_graph):
    return LatencyAnalyzer(small_app_graph, PARAMS)


class TestPredictions:
    def test_runtime_increases_with_delta(self, analyzer):
        base = analyzer.predict_runtime(0.0)
        plus = analyzer.predict_runtime(50.0)
        assert plus > base

    def test_negative_delta_rejected(self, analyzer):
        with pytest.raises(ValueError):
            analyzer.predict_runtime(-1.0)

    def test_baseline_runtime_cached(self, analyzer):
        assert analyzer.baseline_runtime() == pytest.approx(analyzer.predict_runtime(0.0))

    def test_latency_sensitivity_positive(self, analyzer):
        lam = analyzer.latency_sensitivity(0.0)
        assert lam > 0
        # the allreduce alone puts log2(4) = 2 messages per iteration on the path
        assert lam >= 4 * 2

    def test_lambda_bounded_by_longest_chain(self, analyzer, small_app_graph):
        lam = analyzer.latency_sensitivity(500.0)
        assert lam <= small_app_graph.longest_message_chain()

    def test_l_ratio_between_zero_and_one(self, analyzer):
        for delta in (0.0, 10.0, 100.0):
            ratio = analyzer.l_ratio(delta)
            assert 0.0 <= ratio <= 1.0

    def test_prediction_matches_simulator(self, analyzer, small_app_graph):
        from repro.simulator import simulate

        for delta in (0.0, 25.0, 75.0):
            predicted = analyzer.predict_runtime(delta)
            measured = simulate(small_app_graph, PARAMS, delta_L=delta).makespan
            assert predicted == pytest.approx(measured, rel=1e-9)


class TestTolerance:
    def test_tolerances_are_monotone_in_degradation(self, analyzer):
        report = analyzer.tolerance_report()
        assert report.tolerance(0.01) <= report.tolerance(0.02) <= report.tolerance(0.05)

    def test_tolerance_exceeds_baseline_latency(self, analyzer):
        report = analyzer.tolerance_report()
        for _, tol in report.tolerances.items():
            assert tol >= PARAMS.L

    def test_delta_tolerance_consistency(self, analyzer):
        report = analyzer.tolerance_report()
        assert report.delta_tolerance(0.05) == pytest.approx(
            report.tolerance(0.05) - PARAMS.L
        )

    def test_runtime_at_tolerance_respects_bound(self, analyzer):
        tol = analyzer.latency_tolerance(0.05)
        runtime = analyzer.predict_runtime(tol - PARAMS.L)
        assert runtime <= 1.05 * analyzer.baseline_runtime() * (1 + 1e-9)

    def test_tolerance_report_rows(self, analyzer):
        rows = analyzer.tolerance_report().as_rows()
        assert [deg for deg, _, _ in rows] == [0.01, 0.02, 0.05]

    def test_negative_degradation_rejected(self, analyzer):
        with pytest.raises(ValueError):
            analyzer.latency_tolerance(-0.01)

    def test_absolute_vs_delta(self, analyzer):
        absolute = analyzer.latency_tolerance(0.02, absolute=True)
        delta = analyzer.latency_tolerance(0.02, absolute=False)
        assert absolute == pytest.approx(delta + PARAMS.L)


class TestCurves:
    def test_sensitivity_curve_shapes(self, analyzer):
        curve = analyzer.sensitivity_curve([0.0, 20.0, 40.0, 80.0])
        assert len(curve.delta_L) == 4
        assert np.all(np.diff(curve.runtime) >= -1e-9)          # non-decreasing
        assert np.all(np.diff(curve.latency_sensitivity) >= -1e-9)  # λ_L non-decreasing
        assert np.all(curve.l_ratio >= 0.0) and np.all(curve.l_ratio <= 1.0)

    def test_curve_rejects_negative(self, analyzer):
        with pytest.raises(ValueError):
            analyzer.sensitivity_curve([-1.0, 0.0])

    def test_curve_as_dict(self, analyzer):
        d = analyzer.sensitivity_curve([0.0, 10.0]).as_dict()
        assert set(d) == {"delta_L", "runtime", "latency_sensitivity", "l_ratio"}

    def test_runtime_is_convex_in_delta(self, analyzer):
        deltas = np.linspace(0.0, 200.0, 9)
        curve = analyzer.sensitivity_curve(deltas)
        second_diff = np.diff(curve.runtime, n=2)
        assert np.all(second_diff >= -1e-6)


class TestCriticalLatenciesAndSummary:
    def test_critical_latencies_sorted_within_interval(self, analyzer):
        points = analyzer.critical_latencies(l_min=PARAMS.L, l_max=500.0)
        assert points == sorted(points)
        for p in points:
            assert PARAMS.L < p < 500.0

    def test_summary_keys(self, analyzer, small_app_graph):
        summary = analyzer.summary()
        assert summary["events"] == small_app_graph.num_events
        assert summary["messages"] == small_app_graph.num_messages
        assert summary["tolerance_1pct_us"] <= summary["tolerance_5pct_us"]

    def test_graph_analysis_agrees_with_lp(self, analyzer):
        cp = analyzer.graph_analysis(0.0)
        assert cp.runtime == pytest.approx(analyzer.predict_runtime(0.0))

    def test_parametric_agrees_with_lp(self, analyzer):
        pa = analyzer.parametric(l_max=300.0)
        for delta in (0.0, 50.0, 150.0):
            assert pa.runtime(PARAMS.L + delta) == pytest.approx(
                analyzer.predict_runtime(delta), rel=1e-9
            )

    def test_bandwidth_sensitivity_requires_flag(self, analyzer, small_app_graph):
        with pytest.raises(ValueError):
            analyzer.bandwidth_sensitivity()
        gap_analyzer = LatencyAnalyzer(small_app_graph, PARAMS, gap_symbolic=True)
        assert gap_analyzer.bandwidth_sensitivity() >= 0.0


class TestFusedEngine:
    """Analyzers built from batch specs (the analyze-only fused pipeline)."""

    @staticmethod
    def _program():
        def app(comm):
            for it in range(3):
                comm.compute(100.0)
                nxt = (comm.rank + 1) % comm.size
                prv = (comm.rank - 1) % comm.size
                req = comm.irecv(prv, 256, tag=it)
                comm.send(nxt, 256, tag=it)
                comm.wait(req)
                comm.allreduce(64)

        return run_program(app, 4)

    def test_from_program_matches_frozen_graph_analyzer(self):
        from repro.schedgen.builder import ProtocolConfig

        program = self._program()
        frozen = LatencyAnalyzer(
            build_graph(program, protocol=ProtocolConfig.from_params(PARAMS)), PARAMS
        )
        fused = LatencyAnalyzer.from_program(program, PARAMS, lp_engine="fused")
        assert fused.baseline_runtime() == pytest.approx(frozen.baseline_runtime())
        assert fused.latency_sensitivity(5.0) == pytest.approx(
            frozen.latency_sensitivity(5.0)
        )
        summary_fused, summary_frozen = fused.summary(), frozen.summary()
        assert summary_fused.keys() == summary_frozen.keys()
        for key, value in summary_frozen.items():
            assert summary_fused[key] == pytest.approx(value), key

    def test_from_batches_matches_from_program(self):
        from repro.schedgen.columnar import batches_from_program

        program = self._program()
        via_program = LatencyAnalyzer.from_program(program, PARAMS)
        via_batches = LatencyAnalyzer.from_batches(
            batches_from_program(program), program.nranks, PARAMS
        )
        assert via_batches.baseline_runtime() == pytest.approx(
            via_program.baseline_runtime()
        )

    def test_materialised_graph_shares_frozen_digest(self):
        from repro.schedgen.builder import ProtocolConfig

        program = self._program()
        fused = LatencyAnalyzer.from_program(program, PARAMS)
        frozen = build_graph(program, protocol=ProtocolConfig.from_params(PARAMS))
        assert fused.graph.content_digest() == frozen.content_digest()

    def test_unknown_lp_engine_rejected(self):
        analyzer = LatencyAnalyzer.from_program(self._program(), PARAMS, lp_engine="warp")
        with pytest.raises(ValueError, match="engine"):
            analyzer.baseline_runtime()
