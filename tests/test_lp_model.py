"""Tests for the LP modelling layer and both solver backends."""

import numpy as np
import pytest

from repro.lp import (
    InfeasibleError,
    LinearExpr,
    LPError,
    LPModel,
    Sense,
    SimplexOptions,
    UnboundedError,
)

BACKENDS = ("highs", "simplex")


class TestLinearExpr:
    def test_variable_arithmetic(self):
        model = LPModel()
        x = model.add_var("x")
        y = model.add_var("y")
        expr = 2 * x + 3 * y + 1.5
        assert expr.coeffs == {x.index: 2.0, y.index: 3.0}
        assert expr.constant == 1.5

    def test_subtraction_and_negation(self):
        model = LPModel()
        x = model.add_var("x")
        y = model.add_var("y")
        expr = (x - y) - 2.0
        assert expr.coeffs == {x.index: 1.0, y.index: -1.0}
        assert expr.constant == -2.0
        neg = -expr
        assert neg.coeffs[x.index] == -1.0 and neg.constant == 2.0

    def test_zero_coefficients_dropped(self):
        model = LPModel()
        x = model.add_var("x")
        expr = x - x
        assert expr.coeffs == {}

    def test_value_evaluation(self):
        model = LPModel()
        x = model.add_var("x")
        y = model.add_var("y")
        expr = 2 * x + y + 1.0
        assert expr.value([3.0, 4.0]) == pytest.approx(11.0)

    def test_scaling_by_non_number_rejected(self):
        model = LPModel()
        x = model.add_var("x")
        with pytest.raises(TypeError):
            x.to_expr() * "two"

    def test_coerce_rejects_junk(self):
        with pytest.raises(TypeError):
            LinearExpr._coerce(object())


class TestModelConstruction:
    def test_constraint_via_comparison(self):
        model = LPModel()
        x = model.add_var("x")
        c = model.add_constraint(x >= 3.0, name="lb")
        assert c.sense == ">="
        assert c.name == "lb"
        assert model.num_constraints == 1

    def test_add_constraint_requires_constraint(self):
        model = LPModel()
        model.add_var("x")
        with pytest.raises(TypeError):
            model.add_constraint(42)

    def test_invalid_bounds_rejected(self):
        model = LPModel()
        with pytest.raises(ValueError):
            model.add_var("x", lb=2.0, ub=1.0)

    def test_variable_by_name(self):
        model = LPModel()
        model.add_var("alpha")
        beta = model.add_var("beta")
        assert model.variable_by_name("beta") is beta
        with pytest.raises(KeyError):
            model.variable_by_name("gamma")

    def test_set_var_lb_checks_ownership(self):
        model_a, model_b = LPModel(), LPModel()
        x = model_a.add_var("x")
        with pytest.raises(ValueError):
            model_b.set_var_lb(x, 1.0)

    def test_constraint_slack_and_violation(self):
        model = LPModel()
        x = model.add_var("x")
        c = model.add_constraint(x >= 2.0)
        assert c.violation([1.0]) == pytest.approx(1.0)
        assert c.violation([3.0]) == 0.0
        assert c.slack([3.0]) == pytest.approx(1.0)


@pytest.mark.parametrize("backend", BACKENDS)
class TestSolvers:
    def test_simple_minimisation(self, backend):
        # min x + y  s.t. x + y >= 4, x >= 1
        model = LPModel()
        x = model.add_var("x", lb=1.0)
        y = model.add_var("y")
        model.add_constraint(x + y >= 4.0)
        model.set_objective(x + y, Sense.MIN)
        solution = model.solve(backend=backend)
        assert solution.objective == pytest.approx(4.0)

    def test_simple_maximisation(self, backend):
        # max x + 2y  s.t. x <= 3, y <= 2
        model = LPModel()
        x = model.add_var("x", ub=3.0)
        y = model.add_var("y", ub=2.0)
        model.set_objective(x + 2 * y, Sense.MAX)
        solution = model.solve(backend=backend)
        assert solution.objective == pytest.approx(3.0 + 4.0)
        assert solution.value(x) == pytest.approx(3.0)
        assert solution.value(y) == pytest.approx(2.0)

    def test_classic_production_problem(self, backend):
        # max 3a + 5b s.t. a <= 4; 2b <= 12; 3a + 2b <= 18  -> optimum 36 at (2, 6)
        model = LPModel()
        a = model.add_var("a")
        b = model.add_var("b")
        model.add_constraint(a.to_expr() <= 4.0)
        model.add_constraint(2 * b <= 12.0)
        model.add_constraint(3 * a + 2 * b <= 18.0)
        model.set_objective(3 * a + 5 * b, Sense.MAX)
        solution = model.solve(backend=backend)
        assert solution.objective == pytest.approx(36.0)
        assert solution.value(a) == pytest.approx(2.0)
        assert solution.value(b) == pytest.approx(6.0)

    def test_infeasible_detected(self, backend):
        model = LPModel()
        x = model.add_var("x", ub=1.0)
        model.add_constraint(x >= 2.0)
        model.set_objective(x, Sense.MIN)
        with pytest.raises(InfeasibleError):
            model.solve(backend=backend)

    def test_unbounded_detected(self, backend):
        model = LPModel()
        x = model.add_var("x")
        model.set_objective(x, Sense.MAX)
        with pytest.raises((UnboundedError, LPError)):
            model.solve(backend=backend)

    def test_reduced_cost_of_lower_bound(self, backend):
        # min t s.t. t >= l + 2, l >= 5  ->  dT/d(lb of l) = 1
        model = LPModel()
        t = model.add_var("t")
        l = model.add_var("l", lb=5.0)
        model.add_constraint(t >= l + 2.0)
        model.set_objective(t, Sense.MIN)
        solution = model.solve(backend=backend)
        assert solution.objective == pytest.approx(7.0)
        assert solution.reduced_cost(l) == pytest.approx(1.0)

    def test_reduced_cost_zero_when_slack(self, backend):
        # min t s.t. t >= 10, t >= l + 2, l >= 1: l's bound is not binding
        model = LPModel()
        t = model.add_var("t")
        l = model.add_var("l", lb=1.0)
        model.add_constraint(t >= 10.0)
        model.add_constraint(t >= l + 2.0)
        model.set_objective(t, Sense.MIN)
        solution = model.solve(backend=backend)
        assert solution.objective == pytest.approx(10.0)
        assert solution.reduced_cost(l) == pytest.approx(0.0, abs=1e-9)

    def test_objective_constant_preserved(self, backend):
        model = LPModel()
        x = model.add_var("x", lb=2.0)
        model.set_objective(x + 10.0, Sense.MIN)
        solution = model.solve(backend=backend)
        assert solution.objective == pytest.approx(12.0)

    def test_tight_constraints(self, backend):
        model = LPModel()
        t = model.add_var("t")
        model.add_constraint(t >= 3.0)
        model.add_constraint(t >= 1.0)
        model.set_objective(t, Sense.MIN)
        solution = model.solve(backend=backend)
        assert 0 in solution.tight_constraints()
        assert 1 not in solution.tight_constraints()

    def test_empty_model_rejected(self, backend):
        model = LPModel()
        with pytest.raises(LPError):
            model.solve(backend=backend)


class TestBackendAgreement:
    def test_random_problems_agree(self):
        rng = np.random.default_rng(42)
        for trial in range(20):
            n, m = 4, 6
            model = LPModel(name=f"random{trial}")
            xs = [model.add_var(f"x{i}", lb=0.0, ub=10.0) for i in range(n)]
            # constraints sum a_i x_i <= b with non-negative coefficients so the
            # problem is always feasible (x = 0) and bounded (upper bounds)
            for _ in range(m):
                coeffs = rng.uniform(0.0, 2.0, size=n)
                expr = LinearExpr({i: float(c) for i, c in enumerate(coeffs)}, 0.0)
                model.add_constraint(expr <= float(rng.uniform(5.0, 20.0)))
            objective = LinearExpr(
                {i: float(c) for i, c in enumerate(rng.uniform(0.1, 1.0, size=n))}, 0.0
            )
            model.set_objective(objective, Sense.MAX)
            highs = model.solve(backend="highs")
            simplex = model.solve(backend="simplex")
            assert highs.objective == pytest.approx(simplex.objective, rel=1e-6, abs=1e-6)

    def test_duals_agree_on_small_problem(self):
        model = LPModel()
        a = model.add_var("a")
        b = model.add_var("b")
        c1 = model.add_constraint(a + b <= 10.0)
        c2 = model.add_constraint(a.to_expr() <= 6.0)
        model.set_objective(2 * a + b, Sense.MAX)
        highs = model.solve(backend="highs")
        simplex = model.solve(backend="simplex")
        assert highs.objective == pytest.approx(simplex.objective)
        assert abs(highs.dual(c1)) == pytest.approx(abs(simplex.dual(c1)), abs=1e-6)
        assert abs(highs.dual(c2)) == pytest.approx(abs(simplex.dual(c2)), abs=1e-6)


class TestSimplexSpecifics:
    def test_options_validation(self):
        with pytest.raises(ValueError):
            SimplexOptions(max_iterations=-5)

    def test_unknown_backend(self):
        model = LPModel()
        model.add_var("x")
        with pytest.raises(ValueError):
            model.solve(backend="gurobi")
