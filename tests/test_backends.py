"""Backend registry, incremental assembler, and cross-backend parity tests."""

import numpy as np
import pytest

from repro.core import build_lp
from repro.lp import (
    LPModel,
    LPSolution,
    Sense,
    Status,
    assemble,
    auto_backend_choice,
    default_registry,
    solve_highs,
    solve_simplex,
)
from repro.lp.backends import BackendRegistry
from repro.network.params import LogGPSParams
from repro.testing import build_random_dag, build_running_example

PAPER_PARAMS = LogGPSParams(L=0.0, o=0.0, g=0.0, G=0.005, S=256 * 1024, P=2)
RANDOM_PARAMS = LogGPSParams(L=1.0, o=0.3, g=0.0, G=0.001)


class TestRegistry:
    def test_default_backends_registered(self):
        assert {"highs", "simplex", "auto"} <= set(default_registry.names())

    def test_unknown_backend_lists_known_names(self):
        model = LPModel()
        model.add_var("x", lb=0.0)
        with pytest.raises(ValueError, match="highs"):
            model.solve(backend="gurobi")

    def test_get_returns_spec_with_capabilities(self):
        spec = default_registry.get("simplex")
        assert spec.supports_ranging
        assert default_registry.get("highs").supports_duals

    def test_register_and_solve_custom_backend(self):
        registry = BackendRegistry()

        @registry.register("constant", description="test stub")
        def solve_constant(model, *, warm_start=None, **options):
            return LPSolution(
                status=Status.OPTIMAL,
                objective=42.0,
                values=np.zeros(model.num_vars),
                backend="constant",
            )

        model = LPModel()
        model.add_var("x")
        solution = registry.solve(model, backend="constant")
        assert solution.objective == 42.0
        assert len(registry) == 1 and "constant" in registry

    def test_duplicate_registration_rejected_unless_replace(self):
        registry = BackendRegistry()

        @registry.register("b")
        def first(model, *, warm_start=None, **options):  # pragma: no cover - stub
            raise NotImplementedError

        with pytest.raises(ValueError, match="already registered"):
            registry.register("b")(first)
        registry.register("b", replace=True)(first)
        registry.unregister("b")
        assert "b" not in registry

    def test_auto_dispatches_by_model_size(self, running_example, paper_params):
        small = build_lp(running_example, paper_params)
        assert auto_backend_choice(small.model) == "simplex"
        assert small.solve_runtime(L=0.5, backend="auto").backend == "simplex"

        big = LPModel()
        for i in range(200):
            big.add_var(f"x{i}", lb=0.0)
        assert auto_backend_choice(big) == "highs"

    def test_auto_respects_backend_specific_options(self, running_example, paper_params):
        lp = build_lp(running_example, paper_params)  # tiny: auto would pick simplex
        solution = lp.solve_runtime(L=0.5, backend="auto", presolve=False)
        assert solution.backend == "highs"  # highs-only option pins the dispatch
        assert solution.objective == pytest.approx(1.615)
        with pytest.raises(ValueError, match="pick one backend"):
            lp.model.solve(backend="auto", presolve=False, options=None)

    def test_auto_avoids_simplex_for_infinite_lower_bounds(self):
        model = LPModel()
        x = model.add_var("x", lb=float("-inf"))
        model.add_ge(x, -5.0)
        model.set_objective(x, Sense.MIN)
        assert auto_backend_choice(model) == "highs"
        assert model.solve(backend="auto").objective == pytest.approx(-5.0)


class TestAssembler:
    def test_assembly_cached_until_structure_changes(self, running_example, paper_params):
        lp = build_lp(running_example, paper_params)
        first = assemble(lp.model)
        assert assemble(lp.model) is first
        lp.model.add_var("extra", lb=0.0)
        assert assemble(lp.model) is not first

    def test_bound_change_keeps_sparse_matrix(self, running_example, paper_params):
        lp = build_lp(running_example, paper_params)
        before = assemble(lp.model)
        matrix = before.A_ub
        lp.set_latency_bound(3.0)
        after = assemble(lp.model)
        assert after is before  # refreshed in place
        assert after.A_ub is matrix  # CSR untouched
        assert after.lb[lp.latency.index] == 3.0

    def test_objective_change_refreshes_c(self, running_example, paper_params):
        lp = build_lp(running_example, paper_params)
        assembled = assemble(lp.model)
        lp.model.set_objective(lp.latency, Sense.MAX)
        refreshed = assemble(lp.model)
        assert refreshed is assembled
        assert refreshed.obj_sign == -1.0
        assert refreshed.c[lp.latency.index] == -1.0

    def test_pop_constraint_invalidates_assembly(self, running_example, paper_params):
        lp = build_lp(running_example, paper_params)
        lp.set_latency_bound(0.0)
        baseline = lp.solve_runtime(L=0.5).objective
        lp.solve_max_latency(2.0)  # adds then pops the runtime-bound row
        assert lp.solve_runtime(L=0.5).objective == pytest.approx(baseline)

    def test_solutions_identical_to_fresh_model(self, running_example, paper_params):
        cached = build_lp(running_example, paper_params)
        for L in (0.0, 0.25, 0.5, 1.0):
            fresh = build_lp(running_example, paper_params)
            assert cached.solve_runtime(L=L).objective == pytest.approx(
                fresh.solve_runtime(L=L).objective, abs=1e-9
            )


def _assert_parity(lp, L: float) -> None:
    highs = lp.solve_runtime(L=L, backend="highs")
    simplex = lp.solve_runtime(L=L, backend="simplex")
    auto = lp.solve_runtime(L=L, backend="auto")

    assert highs.objective == pytest.approx(simplex.objective, abs=1e-6)
    assert highs.objective == pytest.approx(auto.objective, abs=1e-6)
    assert lp.latency_sensitivity(highs) == pytest.approx(
        lp.latency_sensitivity(simplex), abs=1e-6
    )
    assert highs.duals is not None and simplex.duals is not None
    np.testing.assert_allclose(highs.duals, simplex.duals, atol=1e-6)


class TestBackendParity:
    def test_running_example_parity(self, paper_params):
        lp = build_lp(build_running_example(), paper_params)
        for L in (0.0, 0.2, 0.5, 1.0, 5.0):
            _assert_parity(lp, L)

    @pytest.mark.parametrize("seed", range(20))
    def test_random_dag_parity(self, seed):
        graph = build_random_dag(seed)
        lp = build_lp(graph, RANDOM_PARAMS)
        _assert_parity(lp, L=1.0 + 0.37 * seed)

    @pytest.mark.parametrize("seed", range(0, 20, 5))
    def test_random_dag_parity_with_symbolic_gap(self, seed):
        graph = build_random_dag(seed, nranks=4, rounds=8)
        lp = build_lp(graph, RANDOM_PARAMS, gap_mode="global")
        highs = lp.solve_runtime(L=2.0, backend="highs")
        simplex = lp.solve_runtime(L=2.0, backend="simplex")
        assert highs.objective == pytest.approx(simplex.objective, abs=1e-6)
        assert lp.gap_sensitivity(highs) == pytest.approx(
            lp.gap_sensitivity(simplex), abs=1e-6
        )

    def test_direct_backend_functions_agree(self, paper_params):
        lp = build_lp(build_running_example(), paper_params)
        lp.set_latency_bound(0.5)
        assert solve_highs(lp.model).objective == pytest.approx(
            solve_simplex(lp.model).objective, abs=1e-9
        )

    def test_warm_start_accepted_by_all_backends(self, paper_params):
        lp = build_lp(build_running_example(), paper_params)
        reference = lp.solve_runtime(L=0.5)
        for backend in ("highs", "simplex", "auto"):
            warm = lp.model.solve(backend=backend, warm_start=reference)
            assert warm.objective == pytest.approx(reference.objective, abs=1e-9)


class TestHighspyBackend:
    """Optional native-HiGHS backend: gating + (when installed) parity."""

    def test_registration_matches_import_gate(self):
        from repro.lp.highspy_backend import HAVE_HIGHSPY

        assert ("highspy" in default_registry) == HAVE_HIGHSPY

    def test_solve_without_package_raises_clean_error(self):
        from repro.lp import highspy_backend

        if highspy_backend.HAVE_HIGHSPY:
            pytest.skip("highspy installed; the gate error path is unreachable")
        model = LPModel()
        model.add_var("x", lb=0.0)
        with pytest.raises(Exception, match="highspy"):
            highspy_backend.solve_highspy(model)

    @pytest.mark.skipif(
        "highspy" not in default_registry, reason="highspy not installed"
    )
    def test_spec_declares_warm_start(self):
        spec = default_registry.get("highspy")
        assert spec.supports_warm_start
        assert spec.supports_duals

    @pytest.mark.skipif(
        "highspy" not in default_registry, reason="highspy not installed"
    )
    def test_parity_with_scipy_highs(self, paper_params):
        lp = build_lp(build_running_example(), paper_params)
        for L in (0.0, 0.5, 2.0):
            lp.set_latency_bound(L)
            ref = solve_highs(lp.model)
            native = lp.model.solve(backend="highspy")
            assert native.objective == pytest.approx(ref.objective, abs=1e-6)
            np.testing.assert_allclose(native.values, ref.values, atol=1e-6)
            assert native.reduced_costs is not None and ref.reduced_costs is not None
            np.testing.assert_allclose(
                native.reduced_costs, ref.reduced_costs, atol=1e-6
            )
            assert native.duals is not None and ref.duals is not None
            np.testing.assert_allclose(native.duals, ref.duals, atol=1e-6)

    @pytest.mark.skipif(
        "highspy" not in default_registry, reason="highspy not installed"
    )
    def test_warm_start_basis_handoff(self, paper_params):
        lp = build_lp(build_running_example(), paper_params)
        lp.set_latency_bound(0.0)
        cold = lp.model.solve(backend="highspy")
        assert getattr(cold, "_highspy_basis", None) is not None
        lp.set_latency_bound(0.5)
        warm = lp.model.solve(backend="highspy", warm_start=cold)
        ref = solve_highs(lp.model)
        assert warm.objective == pytest.approx(ref.objective, abs=1e-6)
