"""Tests for the schedule generator (program/trace -> execution graph)."""

import math

import pytest

from repro.mpi import run_program, trace_program
from repro.network.params import LogGPSParams
from repro.schedgen import (
    CollectiveAlgorithms,
    ProtocolConfig,
    ScheduleGenerator,
    VertexKind,
    build_graph,
)
from repro.schedgen.builder import UnmatchedMessageError
from repro.core.graph_analysis import analyze_critical_path


PARAMS = LogGPSParams(L=1.0, o=0.5, g=0.0, G=0.001)


def pingpong(iterations: int = 3, size: int = 64):
    def app(comm):
        for it in range(iterations):
            comm.compute(10.0)
            if comm.rank == 0:
                comm.send(1, size, tag=it)
                comm.recv(1, size, tag=1000 + it)
            else:
                comm.recv(0, size, tag=it)
                comm.send(0, size, tag=1000 + it)

    return run_program(app, 2)


class TestPointToPoint:
    def test_blocking_pingpong_structure(self):
        graph = build_graph(pingpong(iterations=1))
        stats = graph.stats()
        assert stats["send"] == 2 and stats["recv"] == 2
        assert stats["comm_edges"] == 2
        assert stats["calc"] == 2

    def test_runtime_of_single_message(self):
        def app(comm):
            if comm.rank == 0:
                comm.send(1, 1, tag=0)
            else:
                comm.recv(0, 1, tag=0)

        graph = build_graph(run_program(app, 2))
        result = analyze_critical_path(graph, PARAMS)
        # o (send) + L + o (recv)
        assert result.runtime == pytest.approx(2 * PARAMS.o + PARAMS.L)

    def test_nonblocking_overlap(self):
        """Computation posted after an irecv must not wait for the message."""

        def app(comm):
            if comm.rank == 0:
                comm.compute(100.0)
                comm.send(1, 1, tag=0)
            else:
                req = comm.irecv(0, 1, tag=0)
                comm.compute(100.0)
                comm.wait(req)

        graph = build_graph(run_program(app, 2))
        result = analyze_critical_path(graph, PARAMS)
        # both ranks compute 100 in parallel; the message arrives while rank 1
        # is still computing, so the total is 100 + o (send posted at 100)
        # ... rank0: 100 + o; message arrives 100 + o + L; rank1 computes until
        # 100 then waits: finishes at 100 + o + L + o
        assert result.runtime == pytest.approx(100.0 + 2 * PARAMS.o + PARAMS.L)

    def test_blocking_recv_does_not_overlap(self):
        def app(comm):
            if comm.rank == 0:
                comm.compute(100.0)
                comm.send(1, 1, tag=0)
            else:
                comm.recv(0, 1, tag=0)
                comm.compute(100.0)

        graph = build_graph(run_program(app, 2))
        result = analyze_critical_path(graph, PARAMS)
        assert result.runtime == pytest.approx(100.0 + 2 * PARAMS.o + PARAMS.L + 100.0)

    def test_sendrecv_expansion(self):
        def app(comm):
            nxt = (comm.rank + 1) % comm.size
            prv = (comm.rank - 1) % comm.size
            comm.sendrecv(nxt, 32, prv, 32)

        graph = build_graph(run_program(app, 4))
        stats = graph.stats()
        assert stats["send"] == 4 and stats["recv"] == 4 and stats["comm_edges"] == 4

    def test_unmatched_messages_raise(self):
        from repro.mpi import Program, ProgramOp, OpKind

        program = Program.empty(2)
        program.rank(0).append(ProgramOp(kind=OpKind.SEND, peer=1, size=8, tag=0))
        # rank 1 never receives
        with pytest.raises(UnmatchedMessageError):
            build_graph(program)

    def test_message_matching_is_fifo(self):
        """Two same-tag messages must match in posting order."""

        def app(comm):
            if comm.rank == 0:
                comm.send(1, 100, tag=0)
                comm.send(1, 200, tag=0)
            else:
                comm.recv(0, 100, tag=0)
                comm.recv(0, 200, tag=0)

        graph = build_graph(run_program(app, 2))
        # sizes of matched pairs must agree, which validate() enforces
        graph.validate()


class TestWaitSemantics:
    def test_wait_join_vertex(self):
        def app(comm):
            if comm.rank == 0:
                comm.send(1, 1, tag=0)
            else:
                req = comm.irecv(0, 1, tag=0)
                comm.compute(5.0)
                comm.wait(req)

        graph = build_graph(run_program(app, 2))
        # rank 1 has: recv vertex, calc(5), wait join (zero-cost calc)
        rank1 = graph.vertices_of_rank(1)
        kinds = [VertexKind(int(graph.kind[v])) for v in rank1]
        assert kinds.count(VertexKind.CALC) == 2
        assert kinds.count(VertexKind.RECV) == 1


class TestCollectiveExpansion:
    @pytest.mark.parametrize("nranks", [2, 4, 8, 16])
    def test_recursive_doubling_allreduce_message_count(self, nranks):
        def app(comm):
            comm.allreduce(64)

        graph = build_graph(run_program(app, nranks))
        # power of two: every rank sends log2(P) messages
        expected = nranks * int(math.log2(nranks))
        assert graph.num_messages == expected

    @pytest.mark.parametrize("nranks", [3, 5, 6, 7])
    def test_recursive_doubling_non_power_of_two(self, nranks):
        def app(comm):
            comm.allreduce(64)

        graph = build_graph(run_program(app, nranks))
        pof2 = 1 << (nranks.bit_length() - 1)
        rem = nranks - pof2
        expected = pof2 * int(math.log2(pof2)) + 2 * rem
        assert graph.num_messages == expected

    @pytest.mark.parametrize("nranks", [2, 4, 8])
    def test_ring_allreduce_message_count(self, nranks):
        def app(comm):
            comm.allreduce(1024)

        graph = build_graph(
            run_program(app, nranks),
            algorithms=CollectiveAlgorithms(allreduce="ring"),
        )
        assert graph.num_messages == 2 * (nranks - 1) * nranks

    def test_ring_allreduce_longer_message_chain(self):
        def app(comm):
            comm.allreduce(1024)

        rd = build_graph(run_program(app, 8))
        ring = build_graph(run_program(app, 8), algorithms=CollectiveAlgorithms(allreduce="ring"))
        assert ring.longest_message_chain() > rd.longest_message_chain()
        assert rd.longest_message_chain() == 3  # log2(8)

    @pytest.mark.parametrize("nranks", [2, 4, 7, 8])
    def test_bcast_binomial_message_count(self, nranks):
        def app(comm):
            comm.bcast(256, root=0)

        graph = build_graph(run_program(app, nranks))
        assert graph.num_messages == nranks - 1

    @pytest.mark.parametrize("nranks", [2, 5, 8])
    def test_reduce_binomial_message_count(self, nranks):
        def app(comm):
            comm.reduce(256, root=0)

        graph = build_graph(run_program(app, nranks))
        assert graph.num_messages == nranks - 1

    @pytest.mark.parametrize("nranks", [2, 4, 8])
    def test_barrier_dissemination_message_count(self, nranks):
        def app(comm):
            comm.barrier()

        graph = build_graph(run_program(app, nranks))
        assert graph.num_messages == nranks * math.ceil(math.log2(nranks))

    @pytest.mark.parametrize("nranks", [2, 4, 6])
    def test_allgather_ring_message_count(self, nranks):
        def app(comm):
            comm.allgather(128)

        graph = build_graph(run_program(app, nranks))
        assert graph.num_messages == nranks * (nranks - 1)

    @pytest.mark.parametrize("nranks", [2, 4, 8])
    def test_alltoall_pairwise_message_count(self, nranks):
        def app(comm):
            comm.alltoall(64)

        graph = build_graph(run_program(app, nranks))
        assert graph.num_messages == nranks * (nranks - 1)

    def test_gather_and_scatter_linear(self):
        def app(comm):
            comm.gather(64, root=2)
            comm.scatter(64, root=1)

        graph = build_graph(run_program(app, 5))
        assert graph.num_messages == 2 * 4

    def test_bcast_nonzero_root(self):
        def app(comm):
            comm.bcast(64, root=3)

        graph = build_graph(run_program(app, 4))
        # the root must only send, never receive
        for v in graph.vertices_of_rank(3):
            assert graph.kind[v] != VertexKind.RECV

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError):
            CollectiveAlgorithms(allreduce="magic")

    def test_with_allreduce_helper(self):
        algos = CollectiveAlgorithms().with_allreduce("ring")
        assert algos.allreduce == "ring"
        assert algos.bcast == "binomial"


class TestRendezvousProtocol:
    def test_large_message_expanded_into_handshake(self):
        def app(comm):
            if comm.rank == 0:
                comm.send(1, 1_000_000, tag=0)
            else:
                comm.recv(0, 1_000_000, tag=0)

        protocol = ProtocolConfig(eager_threshold=256 * 1024)
        graph = build_graph(run_program(app, 2), protocol=protocol)
        # RTS + CTS + DATA = 3 messages
        assert graph.num_messages == 3

    def test_small_message_stays_eager(self):
        def app(comm):
            if comm.rank == 0:
                comm.send(1, 100, tag=0)
            else:
                comm.recv(0, 100, tag=0)

        graph = build_graph(run_program(app, 2), protocol=ProtocolConfig(eager_threshold=256))
        assert graph.num_messages == 1

    def test_rendezvous_expansion_can_be_disabled(self):
        def app(comm):
            if comm.rank == 0:
                comm.send(1, 1_000_000, tag=0)
            else:
                comm.recv(0, 1_000_000, tag=0)

        protocol = ProtocolConfig(eager_threshold=1024, expand_rendezvous=False)
        graph = build_graph(run_program(app, 2), protocol=protocol)
        assert graph.num_messages == 1

    def test_rendezvous_takes_three_latencies(self):
        def app(comm):
            if comm.rank == 0:
                comm.send(1, 2048, tag=0)
            else:
                comm.recv(0, 2048, tag=0)

        params = LogGPSParams(L=10.0, o=0.0, G=0.0, S=1024)
        eager_graph = build_graph(run_program(app, 2),
                                  protocol=ProtocolConfig(eager_threshold=10**9))
        rdv_graph = build_graph(run_program(app, 2), params=params)
        t_eager = analyze_critical_path(eager_graph, params).runtime
        t_rdv = analyze_critical_path(rdv_graph, params).runtime
        assert t_rdv == pytest.approx(t_eager + 2 * params.L)

    def test_protocol_from_params(self):
        params = LogGPSParams(S=4096)
        protocol = ProtocolConfig.from_params(params)
        assert protocol.eager_threshold == 4096


class TestTracePipeline:
    def test_build_from_trace_matches_program(self):
        program = pingpong(iterations=4)
        direct = build_graph(program)
        trace = trace_program(program, PARAMS)
        from_trace = ScheduleGenerator().build_from_trace(trace)
        t_direct = analyze_critical_path(direct, PARAMS).runtime
        t_trace = analyze_critical_path(from_trace, PARAMS).runtime
        assert t_trace == pytest.approx(t_direct, rel=1e-3)

    def test_collective_sequence_mismatch_detected(self):
        from repro.mpi import Program, ProgramOp, OpKind

        program = Program.empty(2)
        program.rank(0).append(ProgramOp(kind=OpKind.ALLREDUCE, size=8))
        program.rank(1).append(ProgramOp(kind=OpKind.BARRIER))
        with pytest.raises(ValueError):
            build_graph(program)
