"""Determinism fixes in the validation sweep: noise seeding and plan reuse.

Covers the :func:`repro.analysis.validation.noise_seed` scheme that replaced
the colliding ``rep * 7919 + point`` arithmetic, and the per-graph
``_LevelPlan`` cache that lets repeated level-engine simulations of the same
``(graph, params)`` pair skip the plan rebuild.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.validation import noise_seed, run_validation_sweep
from repro.network.params import LogGPSParams
from repro.simulator.columnar import _LEVEL_PLAN_CACHE_SIZE, get_level_plan
from repro.simulator.noise import GaussianNoise
from repro.testing import build_random_dag

PARAMS = LogGPSParams(L=1.0, o=0.1, g=0.1, G=0.001, S=1024, P=2)


class TestNoiseSeed:
    def test_deterministic(self):
        a = np.random.default_rng(noise_seed(2, 5)).random(8)
        b = np.random.default_rng(noise_seed(2, 5)).random(8)
        assert np.array_equal(a, b)

    def test_old_collision_pair_now_distinct(self):
        # the arithmetic scheme mapped (rep=0, point=7919) and (rep=1,
        # point=0) to the same seed; the SeedSequence keying must not
        a = np.random.default_rng(noise_seed(0, 7919)).random(8)
        b = np.random.default_rng(noise_seed(1, 0)).random(8)
        assert not np.array_equal(a, b)

    def test_streams_pairwise_independent(self):
        draws = {}
        for rep in range(3):
            for point in range(4):
                key = tuple(np.random.default_rng(noise_seed(rep, point)).random(4))
                assert key not in draws.values()
                draws[(rep, point)] = key

    def test_gaussian_noise_accepts_seed_sequence(self):
        noise = GaussianNoise(sigma=0.1, seed=noise_seed(1, 2))
        noise.reset()
        first = [noise.perturb(1.0) for _ in range(5)]
        noise.reset()
        replay = [noise.perturb(1.0) for _ in range(5)]
        assert first == replay


class TestLevelPlanCache:
    def test_same_params_reuses_plan_instance(self):
        graph = build_random_dag(17)
        first = get_level_plan(graph, PARAMS)
        second = get_level_plan(graph, PARAMS)
        assert second is first
        assert first.reuse_count == 1

    def test_cache_keyed_by_params_digest(self):
        graph = build_random_dag(17)
        a = get_level_plan(graph, PARAMS)
        b = get_level_plan(graph, PARAMS.replace(L=9.0))
        assert b is not a
        assert len(graph._level_plan_cache) == 2

    def test_cache_is_bounded_fifo(self):
        graph = build_random_dag(17)
        plans = [get_level_plan(graph, PARAMS.replace(L=float(i + 1)))
                 for i in range(_LEVEL_PLAN_CACHE_SIZE + 1)]
        assert len(graph._level_plan_cache) == _LEVEL_PLAN_CACHE_SIZE
        # the oldest entry was evicted; re-requesting it builds a new plan
        again = get_level_plan(graph, PARAMS.replace(L=1.0))
        assert again is not plans[0]

    def test_validation_sweep_builds_plan_once(self):
        graph = build_random_dag(23, nranks=4, rounds=15)
        deltas = [0.0, 5.0, 10.0]
        repetitions = 3
        run_validation_sweep(
            graph,
            PARAMS,
            delta_Ls=deltas,
            repetitions=repetitions,
            sim_engine="level",
        )
        # injector deltas are folded in on copies, so every (delta, rep)
        # simulation shares the single (graph, params) plan
        plans = list(graph._level_plan_cache.values())
        assert len(plans) == 1
        assert plans[0].reuse_count == len(deltas) * repetitions - 1


class TestSweepReproducibility:
    def test_identical_runs_bitwise_equal(self):
        graph = build_random_dag(29)
        kwargs = dict(delta_Ls=[0.0, 4.0, 8.0], repetitions=2, sim_engine="level")
        a = run_validation_sweep(graph, PARAMS, **kwargs)
        b = run_validation_sweep(graph, PARAMS, **kwargs)
        assert np.array_equal(a.measured, b.measured)
        assert np.array_equal(a.predicted, b.predicted)

    def test_level_and_legacy_measurements_agree(self):
        graph = build_random_dag(31)
        kwargs = dict(delta_Ls=[0.0, 6.0], repetitions=2)
        level = run_validation_sweep(graph, PARAMS, sim_engine="level", **kwargs)
        legacy = run_validation_sweep(graph, PARAMS, sim_engine="legacy", **kwargs)
        assert level.measured == pytest.approx(legacy.measured, rel=1e-12, abs=1e-9)
