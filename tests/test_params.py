"""Tests for the LogGPS parameter container."""

import pytest

from repro.network.params import CSCS_TESTBED, DEFAULT_PARAMS, PIZ_DAINT, LogGPSParams


def test_defaults_match_paper_cscs_testbed():
    assert CSCS_TESTBED.L == pytest.approx(3.0)
    assert CSCS_TESTBED.G == pytest.approx(0.018e-3)
    assert CSCS_TESTBED.S == 256 * 1024
    assert DEFAULT_PARAMS is CSCS_TESTBED


def test_piz_daint_parameters():
    assert PIZ_DAINT.L == pytest.approx(1.4)
    assert PIZ_DAINT.G == pytest.approx(0.013e-3)


@pytest.mark.parametrize(
    "field, value",
    [("L", -1.0), ("o", -0.1), ("g", -0.1), ("G", -1e-9), ("O", -1.0), ("S", -1), ("P", 0)],
)
def test_negative_values_rejected(field, value):
    with pytest.raises(ValueError):
        LogGPSParams(**{field: value})


def test_transmission_cost_formula():
    params = LogGPSParams(L=2.0, G=0.5)
    assert params.transmission_cost(1) == pytest.approx(2.0)
    assert params.transmission_cost(11) == pytest.approx(2.0 + 10 * 0.5)
    assert params.bandwidth_cost(11) == pytest.approx(5.0)
    assert params.bandwidth_cost(0) == 0.0


def test_transmission_cost_rejects_negative_size():
    with pytest.raises(ValueError):
        CSCS_TESTBED.transmission_cost(-1)


def test_eager_p2p_time():
    params = LogGPSParams(L=2.0, o=1.0, G=0.0)
    assert params.eager_p2p_time(8) == pytest.approx(2 * 1.0 + 2.0)


def test_rendezvous_threshold():
    params = LogGPSParams(S=1000)
    assert not params.uses_rendezvous(1000)
    assert params.uses_rendezvous(1001)


def test_with_latency_and_delta():
    params = LogGPSParams(L=3.0)
    assert params.with_latency(7.0).L == pytest.approx(7.0)
    assert params.with_delta_latency(2.5).L == pytest.approx(5.5)
    # original is unchanged (frozen dataclass)
    assert params.L == pytest.approx(3.0)


def test_with_processes_and_overhead():
    params = LogGPSParams()
    assert params.with_processes(64).P == 64
    assert params.with_overhead(9.0).o == pytest.approx(9.0)


def test_as_dict_and_iter():
    params = LogGPSParams(L=1.0, o=2.0, g=0.5, G=0.25, S=128, P=4)
    d = dict(params)
    assert d == params.as_dict()
    assert d["L"] == 1.0 and d["P"] == 4


def test_replace_generic():
    params = LogGPSParams()
    modified = params.replace(L=9.0, o=1.0)
    assert modified.L == 9.0 and modified.o == 1.0
    assert modified.S == params.S
