"""Tests for the virtual MPI API and rank programs."""

import pytest

from repro.mpi import OpKind, Program, ProgramOp, VirtualComm, run_program
from repro.mpi.program import RankProgram


class TestVirtualComm:
    def test_rank_and_size(self):
        captured = {}

        def app(comm: VirtualComm):
            captured[comm.rank] = comm.size

        run_program(app, 4)
        assert captured == {0: 4, 1: 4, 2: 4, 3: 4}

    def test_compute_recorded(self):
        def app(comm):
            comm.compute(10.0)
            comm.compute(0.0)  # zero compute is dropped

        program = run_program(app, 1)
        ops = program.rank(0).ops
        assert len(ops) == 1
        assert ops[0].kind is OpKind.COMPUTE and ops[0].cost == 10.0

    def test_negative_compute_rejected(self):
        def app(comm):
            comm.compute(-1.0)

        with pytest.raises(ValueError):
            run_program(app, 1)

    def test_send_recv_recorded(self):
        def app(comm):
            if comm.rank == 0:
                comm.send(1, 128, tag=5)
            else:
                comm.recv(0, 128, tag=5)

        program = run_program(app, 2)
        assert program.rank(0)[0].kind is OpKind.SEND
        assert program.rank(1)[0].kind is OpKind.RECV
        assert program.rank(0)[0].size == 128

    def test_peer_out_of_range(self):
        def app(comm):
            comm.send(7, 8)

        with pytest.raises(ValueError):
            run_program(app, 2)

    def test_nonblocking_requires_wait(self):
        def app(comm):
            peer = (comm.rank + 1) % comm.size
            comm.isend(peer, 8)

        with pytest.raises(ValueError, match="never completed"):
            run_program(app, 2)

    def test_wait_unknown_request(self):
        from repro.mpi.api import Request

        def app(comm):
            comm.wait(Request(handle=42, kind=OpKind.IRECV))

        with pytest.raises(ValueError, match="not outstanding"):
            run_program(app, 1)

    def test_waitall_records_all_handles(self):
        def app(comm):
            peer = (comm.rank + 1) % comm.size
            reqs = [comm.irecv(peer, 8, tag=i) for i in range(3)]
            reqs += [comm.isend(peer, 8, tag=i) for i in range(3)]
            comm.waitall(reqs)

        program = run_program(app, 2)
        waitall = [op for op in program.rank(0) if op.kind is OpKind.WAITALL]
        assert len(waitall) == 1
        assert len(waitall[0].requests) == 6

    def test_waitall_empty_is_noop(self):
        def app(comm):
            comm.waitall([])
            comm.compute(1.0)

        program = run_program(app, 1)
        assert len(program.rank(0)) == 1

    def test_collectives_recorded(self):
        def app(comm):
            comm.barrier()
            comm.bcast(100, root=1)
            comm.reduce(100, root=0)
            comm.allreduce(8)
            comm.allgather(64)
            comm.alltoall(32)
            comm.gather(16, root=0)
            comm.scatter(16, root=0)

        program = run_program(app, 2)
        kinds = [op.kind for op in program.rank(0)]
        assert kinds == [
            OpKind.BARRIER, OpKind.BCAST, OpKind.REDUCE, OpKind.ALLREDUCE,
            OpKind.ALLGATHER, OpKind.ALLTOALL, OpKind.GATHER, OpKind.SCATTER,
        ]
        assert program.rank(0)[1].root == 1

    def test_sendrecv_recorded(self):
        def app(comm):
            next_rank = (comm.rank + 1) % comm.size
            prev_rank = (comm.rank - 1) % comm.size
            comm.sendrecv(next_rank, 64, prev_rank, 64, send_tag=1, recv_tag=1)

        program = run_program(app, 3)
        op = program.rank(0)[0]
        assert op.kind is OpKind.SENDRECV
        assert op.peer == 1 and op.recv_peer == 2


class TestProgram:
    def test_validate_detects_mismatched_collectives(self):
        program = Program.empty(2)
        program.rank(0).append(ProgramOp(kind=OpKind.ALLREDUCE, size=8))
        program.rank(1).append(ProgramOp(kind=OpKind.BARRIER))
        with pytest.raises(ValueError, match="collective call sequence"):
            program.validate()

    def test_validate_detects_missing_collective(self):
        program = Program.empty(2)
        program.rank(0).append(ProgramOp(kind=OpKind.ALLREDUCE, size=8))
        with pytest.raises(ValueError):
            program.validate()

    def test_summary(self):
        def app(comm):
            comm.compute(5.0)
            comm.allreduce(8)

        program = run_program(app, 4)
        summary = program.summary()
        assert summary["nranks"] == 4
        assert summary["num_ops"] == 8
        assert summary["total_compute_us"] == pytest.approx(20.0)
        assert summary["count[allreduce]"] == 4

    def test_total_compute_per_rank(self):
        rp = RankProgram(rank=0)
        rp.append(ProgramOp(kind=OpKind.COMPUTE, cost=2.0))
        rp.append(ProgramOp(kind=OpKind.COMPUTE, cost=3.0))
        assert rp.total_compute == pytest.approx(5.0)

    def test_collective_signature(self):
        def app(comm):
            comm.barrier()
            comm.compute(1.0)
            comm.allreduce(8)

        program = run_program(app, 2)
        assert program.rank(0).collective_signature() == [OpKind.BARRIER, OpKind.ALLREDUCE]

    def test_programop_validation(self):
        with pytest.raises(ValueError):
            ProgramOp(kind=OpKind.SEND, peer=-1, size=8)
        with pytest.raises(ValueError):
            ProgramOp(kind=OpKind.COMPUTE, cost=-1.0)
        with pytest.raises(ValueError):
            ProgramOp(kind=OpKind.WAIT)

    def test_empty_program_requires_positive_ranks(self):
        with pytest.raises(ValueError):
            Program.empty(0)
        with pytest.raises(ValueError):
            run_program(lambda comm: None, 0)
