"""Unit tests for the CI benchmark-summary collector."""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "benchmarks"))

from collect_bench_summary import SUMMARY_NAME, _headline_speedup, collect  # noqa: E402


class TestHeadlineSpeedup:
    def test_flat_payload(self):
        assert _headline_speedup({"speedup": 12.5, "cold_s": 1.0}) == 12.5

    def test_nested_per_graph_payload(self):
        payload = {
            "running example": {"speedup": 3.0},
            "LULESH": {"speedup": 40.0, "lp_solves": 3},
        }
        assert _headline_speedup(payload) == 40.0

    def test_list_of_rows(self):
        assert _headline_speedup([{"speedup": 2.0}, {"speedup": 5.5}]) == 5.5

    def test_no_speedup_reported(self):
        assert _headline_speedup({"rrmse_pct": 1.2}) is None


class TestCollect:
    def test_folds_all_records(self, tmp_path, monkeypatch):
        monkeypatch.setenv("GITHUB_SHA", "cafe1234")
        (tmp_path / "BENCH_alpha.json").write_text(
            json.dumps({"bench": "alpha", "peak_rss_mb": 123.5,
                        "results": {"speedup": 7.0}})
        )
        (tmp_path / "BENCH_beta.json").write_text(
            json.dumps({"bench": "beta", "results": {"x": {"speedup": 2.0}}})
        )
        (tmp_path / "BENCH_broken.json").write_text("{not json")
        summary_path = collect(tmp_path)
        assert summary_path == tmp_path / SUMMARY_NAME

        summary = json.loads(summary_path.read_text())
        assert summary["commit"] == "cafe1234"
        rows = {r["file"]: r for r in summary["benchmarks"]}
        assert rows["BENCH_alpha.json"]["headline_speedup"] == 7.0
        assert rows["BENCH_alpha.json"]["peak_rss_mb"] == 123.5
        assert rows["BENCH_beta.json"]["headline_speedup"] == 2.0
        assert rows["BENCH_beta.json"]["peak_rss_mb"] is None  # pre-column record
        assert "error" in rows["BENCH_broken.json"]

        # re-collecting must not ingest the summary itself
        again = json.loads(collect(tmp_path).read_text())
        assert {r["file"] for r in again["benchmarks"]} == {
            "BENCH_alpha.json", "BENCH_beta.json", "BENCH_broken.json",
        }

    def test_commit_falls_back_to_git(self, tmp_path, monkeypatch):
        monkeypatch.delenv("GITHUB_SHA", raising=False)
        summary = json.loads(collect(tmp_path).read_text())
        assert summary["commit"]  # a sha in a git checkout, "unknown" otherwise
        assert summary["benchmarks"] == []
