"""Tests for Algorithm 1 (graph -> LP) using the paper's running example."""

import pytest

from repro.core import analyze_critical_path, build_lp
from repro.core.critical_latency import find_critical_latencies
from repro.network.params import LogGPSParams
from repro.schedgen.graph import GraphBuilder

from repro.testing import build_running_example


class TestRunningExample:
    """Fig. 4 / 5 / 6 of the paper, reproduced quantitatively."""

    def test_fig4b_late_sender_makes_lambda_one(self, late_sender_example, paper_params):
        lp = build_lp(late_sender_example, paper_params)
        solution = lp.solve_runtime(L=0.0)
        # T = L + 2.015 µs with L = 0
        assert solution.objective == pytest.approx(2.015)
        assert lp.latency_sensitivity(solution) == pytest.approx(1.0)

    def test_fig4c_runtime_below_critical_latency(self, running_example, paper_params):
        lp = build_lp(running_example, paper_params)
        solution = lp.solve_runtime(L=0.0)
        assert solution.objective == pytest.approx(1.5)
        assert lp.latency_sensitivity(solution) == pytest.approx(0.0, abs=1e-9)

    def test_fig5_runtime_at_half_microsecond(self, running_example, paper_params):
        lp = build_lp(running_example, paper_params)
        solution = lp.solve_runtime(L=0.5)
        assert solution.objective == pytest.approx(1.615)
        assert lp.latency_sensitivity(solution) == pytest.approx(1.0)

    def test_fig6_latency_tolerance(self, running_example, paper_params):
        lp = build_lp(running_example, paper_params)
        lp.set_latency_bound(0.0)
        solution = lp.solve_max_latency(2.0)
        assert solution.objective == pytest.approx(0.885)

    def test_critical_latency_value(self, running_example, paper_params):
        lp = build_lp(running_example, paper_params)
        latencies = find_critical_latencies(lp, 0.0, 1.0)
        assert len(latencies) == 1
        assert latencies[0] == pytest.approx(0.385, abs=1e-6)

    def test_algorithm2_interval_of_appendix_d(self, running_example, paper_params):
        """Appendix D sweeps [0.2, 0.5] and finds the single breakpoint 0.385."""
        lp = build_lp(running_example, paper_params)
        latencies = find_critical_latencies(lp, 0.2, 0.5)
        assert latencies == pytest.approx([0.385], abs=1e-6)

    def test_max_latency_restores_model(self, running_example, paper_params):
        lp = build_lp(running_example, paper_params)
        n_constraints = lp.model.num_constraints
        lp.set_latency_bound(0.0)
        lp.solve_max_latency(2.0)
        assert lp.model.num_constraints == n_constraints
        # and a subsequent runtime solve still works
        assert lp.solve_runtime(L=0.5).objective == pytest.approx(1.615)


class TestLPStructure:
    def test_lp_size_is_linear_in_graph(self, running_example, paper_params):
        lp = build_lp(running_example, paper_params)
        graph = running_example
        assert lp.model.num_vars <= graph.num_vertices + 2
        assert lp.model.num_constraints <= graph.num_edges + len(graph.sinks())

    def test_constant_latency_mode(self, running_example, paper_params):
        lp = build_lp(running_example, paper_params.with_latency(0.5), latency_mode="constant")
        assert lp.latency is None
        solution = lp.model.solve()
        assert solution.objective == pytest.approx(1.615)

    def test_latency_bound_error_in_per_pair_mode(self, running_example, paper_params):
        lp = build_lp(running_example, paper_params, latency_mode="per_pair")
        with pytest.raises(ValueError):
            lp.set_latency_bound(1.0)
        assert (0, 1) in lp.pair_latency

    def test_invalid_modes_rejected(self, running_example, paper_params):
        with pytest.raises(ValueError):
            build_lp(running_example, paper_params, latency_mode="weird")
        with pytest.raises(ValueError):
            build_lp(running_example, paper_params, gap_mode="weird")
        with pytest.raises(ValueError):
            build_lp(running_example, paper_params, overhead_mode="weird")

    def test_gap_sensitivity_counts_bytes(self, paper_params):
        """λ_G should equal the bytes (minus one per message) on the critical path."""
        builder = GraphBuilder(nranks=2)
        s = builder.add_send(0, 1, 1001)
        r = builder.add_recv(1, 0, 1001)
        builder.add_comm_edge(s, r)
        graph = builder.freeze()
        params = LogGPSParams(L=1.0, o=0.0, G=0.001)
        lp = build_lp(graph, params, gap_mode="global")
        solution = lp.solve_runtime()
        assert lp.gap_sensitivity(solution) == pytest.approx(1000.0)

    def test_overhead_symbolic_mode(self, running_example):
        params = LogGPSParams(L=0.0, o=0.25, G=0.005)
        lp = build_lp(running_example, params, overhead_mode="global")
        solution = lp.solve_runtime(L=0.0)
        reference = analyze_critical_path(running_example, params).runtime
        assert solution.objective == pytest.approx(reference)

    def test_per_pair_latency_sensitivities(self, running_example, paper_params):
        lp = build_lp(running_example, paper_params, latency_mode="per_pair")
        lp.set_pair_latency_bounds({(0, 1): 0.5})
        solution = lp.model.solve()
        matrix = lp.pair_latency_sensitivities(solution)
        assert matrix[0, 1] == pytest.approx(1.0)
        assert matrix[1, 0] == pytest.approx(1.0)
        assert matrix[0, 0] == 0.0


class TestAgainstGraphAnalysis:
    @pytest.mark.parametrize("L", [0.0, 0.1, 0.385, 0.5, 2.0, 10.0])
    def test_lp_equals_forward_pass(self, running_example, paper_params, L):
        lp = build_lp(running_example, paper_params)
        lp_runtime = lp.solve_runtime(L=L).objective
        cp_runtime = analyze_critical_path(running_example, paper_params.with_latency(L)).runtime
        assert lp_runtime == pytest.approx(cp_runtime)

    def test_simplex_backend_agrees(self, running_example, paper_params):
        lp = build_lp(running_example, paper_params)
        highs = lp.solve_runtime(L=0.5, backend="highs")
        simplex = lp.solve_runtime(L=0.5, backend="simplex")
        assert highs.objective == pytest.approx(simplex.objective)
        assert lp.latency_sensitivity(highs) == pytest.approx(lp.latency_sensitivity(simplex))


class TestFusedEngineOption:
    """``build_lp(engine="fused")`` and ``ScheduleBatches`` sources."""

    @staticmethod
    def _program_and_graph(params):
        from repro.mpi import run_program
        from repro.schedgen import build_graph
        from repro.schedgen.builder import ProtocolConfig

        def app(comm):
            for _ in range(2):
                comm.compute(1.0)
                comm.allreduce(512)

        program = run_program(app, 4)
        graph = build_graph(program, protocol=ProtocolConfig.from_params(params))
        return program, graph

    def test_fused_on_frozen_graph_falls_back_to_compiled(self, paper_params):
        import numpy as np

        _, graph = self._program_and_graph(paper_params)
        fused = build_lp(graph, paper_params, engine="fused")
        compiled = build_lp(graph, paper_params, engine="compiled")
        a, b = fused.model.to_arrays(), compiled.model.to_arrays()
        assert a.keys() == b.keys()
        for key in a:
            if isinstance(a[key], np.ndarray):
                np.testing.assert_array_equal(a[key], b[key], err_msg=key)
            else:
                assert a[key] == b[key], key

    def test_schedule_batches_source_matches_frozen_graph(self, paper_params):
        import numpy as np
        from repro.schedgen.columnar import ScheduleBatches

        program, graph = self._program_and_graph(paper_params)
        spec = ScheduleBatches.from_program(program)
        from_spec = build_lp(spec, paper_params)
        from_graph = build_lp(graph, paper_params, engine="compiled")
        a, b = from_spec.model.to_arrays(), from_graph.model.to_arrays()
        for key in a:
            if isinstance(a[key], np.ndarray):
                np.testing.assert_array_equal(a[key], b[key], err_msg=key)
        assert (
            from_spec.solve_runtime(L=1.0, backend="highs").objective
            == from_graph.solve_runtime(L=1.0, backend="highs").objective
        )

    def test_symbolic_reference_runs_on_materialised_spec_graph(self, paper_params):
        # symbolic stays available as the reference engine on the analyze-only
        # graph a spec materialises — same objective as the direct lowering
        from repro.schedgen.columnar import ScheduleBatches

        program, _ = self._program_and_graph(paper_params)
        spec = ScheduleBatches.from_program(program)
        symbolic = build_lp(spec, paper_params, engine="symbolic")
        fused = build_lp(spec, paper_params)
        assert symbolic.solve_runtime(L=1.0).objective == pytest.approx(
            fused.solve_runtime(L=1.0).objective
        )
