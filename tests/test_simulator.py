"""Tests for the LogGOPS discrete-event simulator and the latency injectors."""

import numpy as np
import pytest

from repro.core import analyze_critical_path
from repro.mpi import run_program
from repro.network.params import LogGPSParams
from repro.schedgen import build_graph
from repro.simulator import (
    INJECTOR_NAMES,
    DelayThreadInjector,
    GaussianNoise,
    IdealInjector,
    LogGOPSSimulator,
    NoNoise,
    OSJitterNoise,
    ReceiverProgressInjector,
    SenderDelayInjector,
    make_injector,
    simulate,
    two_message_model,
)

PARAMS = LogGPSParams(L=2.0, o=1.0, g=0.0, G=0.001)


def pingpong_graph(iterations=2, size=100):
    def app(comm):
        for it in range(iterations):
            if comm.rank == 0:
                comm.send(1, size, tag=it)
                comm.recv(1, size, tag=1000 + it)
            else:
                comm.recv(0, size, tag=it)
                comm.send(0, size, tag=1000 + it)

    return build_graph(run_program(app, 2))


def two_send_graph():
    """The Fig. 8 micro-benchmark: two eager sends, receives pre-posted."""

    def app(comm):
        if comm.rank == 0:
            comm.send(1, 1, tag=0)
            comm.send(1, 1, tag=1)
        else:
            r0 = comm.irecv(0, 1, tag=0)
            r1 = comm.irecv(0, 1, tag=1)
            comm.waitall([r0, r1])

    return build_graph(run_program(app, 2))


class TestSimulator:
    def test_pingpong_makespan(self):
        graph = pingpong_graph(iterations=1, size=1)
        result = simulate(graph, PARAMS)
        # two messages in sequence: 2 * (2o + L)
        assert result.makespan == pytest.approx(2 * (2 * PARAMS.o + PARAMS.L))

    def test_matches_graph_analysis_without_gap(self):
        graph = pingpong_graph(iterations=3, size=500)
        sim = simulate(graph, PARAMS)
        cp = analyze_critical_path(graph, PARAMS)
        assert sim.makespan == pytest.approx(cp.runtime)

    def test_delta_latency_shifts_runtime(self):
        graph = pingpong_graph(iterations=2, size=1)
        base = simulate(graph, PARAMS).makespan
        shifted = simulate(graph, PARAMS, delta_L=5.0).makespan
        # 4 sequential messages, each delayed by 5 µs
        assert shifted == pytest.approx(base + 4 * 5.0)

    def test_gap_enforced_between_sends(self):
        params = LogGPSParams(L=0.0, o=0.1, g=5.0, G=0.0)

        def app(comm):
            if comm.rank == 0:
                for i in range(3):
                    comm.send(1, 1, tag=i)
            else:
                for i in range(3):
                    comm.recv(0, 1, tag=i)

        graph = build_graph(run_program(app, 2))
        result = simulate(graph, params)
        # the third send cannot start before 2 * g
        assert result.makespan >= 2 * params.g

    def test_rank_finish_times(self):
        graph = pingpong_graph(iterations=1)
        result = simulate(graph, PARAMS)
        assert len(result.rank_finish) == 2
        assert result.makespan == pytest.approx(result.rank_finish.max())

    def test_injector_and_delta_are_exclusive(self):
        graph = pingpong_graph()
        with pytest.raises(ValueError):
            simulate(graph, PARAMS, delta_L=1.0, injector=IdealInjector(2.0))

    def test_critical_path_extraction(self):
        graph = pingpong_graph(iterations=2)
        result = simulate(graph, PARAMS)
        path = result.critical_path(graph)
        assert len(path) >= 2
        # the path ends at the vertex that finishes last
        assert result.end[path[-1]] == pytest.approx(result.makespan)

    def test_noise_increases_runtime(self):
        def app(comm):
            comm.compute(1000.0)
            comm.allreduce(8)

        graph = build_graph(run_program(app, 4))
        quiet = simulate(graph, PARAMS).makespan
        noisy = LogGOPSSimulator(
            graph, PARAMS, noise=OSJitterNoise(probability=1.0, spike=50.0, seed=1)
        ).run().makespan
        assert noisy > quiet

    def test_gaussian_noise_reproducible(self):
        def app(comm):
            comm.compute(1000.0)

        graph = build_graph(run_program(app, 1))
        noise = GaussianNoise(sigma=0.1, seed=7)
        a = LogGOPSSimulator(graph, PARAMS, noise=noise).run().makespan
        b = LogGOPSSimulator(graph, PARAMS, noise=GaussianNoise(sigma=0.1, seed=7)).run().makespan
        assert a == pytest.approx(b)


class TestInjectors:
    def test_make_injector_names(self):
        for name in INJECTOR_NAMES:
            injector = make_injector(name, 3.0)
            assert injector.delta == 3.0
        with pytest.raises(ValueError):
            make_injector("nope", 1.0)

    def test_ideal_equals_delay_thread_in_simulation(self):
        graph = two_send_graph()
        ideal = simulate(graph, PARAMS, injector=IdealInjector(20.0)).makespan
        delay_thread = simulate(graph, PARAMS, injector=DelayThreadInjector(20.0)).makespan
        assert ideal == pytest.approx(delay_thread)

    def test_sender_delay_overestimates(self):
        graph = two_send_graph()
        ideal = simulate(graph, PARAMS, injector=IdealInjector(20.0)).makespan
        sender = simulate(graph, PARAMS, injector=SenderDelayInjector(20.0)).makespan
        assert sender > ideal

    def test_receiver_progress_overestimates_when_delta_large(self):
        graph = two_send_graph()
        ideal = simulate(graph, PARAMS, injector=IdealInjector(50.0)).makespan
        progress = simulate(graph, PARAMS, injector=ReceiverProgressInjector(50.0)).makespan
        assert progress > ideal

    def test_zero_delta_all_equal(self):
        graph = two_send_graph()
        results = {
            name: simulate(graph, PARAMS, injector=make_injector(name, 0.0)).makespan
            for name in INJECTOR_NAMES
        }
        values = list(results.values())
        assert all(v == pytest.approx(values[0]) for v in values)


class TestTwoMessageModel:
    """Closed-form Fig. 8 outcomes."""

    def test_ideal(self):
        out = two_message_model(PARAMS, delta=10.0, strategy="ideal")
        assert out.sender_finish == pytest.approx(2 * PARAMS.o)
        assert out.receiver_finish == pytest.approx(3 * PARAMS.o + PARAMS.L + 10.0)

    def test_delay_thread_matches_ideal(self):
        ideal = two_message_model(PARAMS, delta=10.0, strategy="ideal")
        ours = two_message_model(PARAMS, delta=10.0, strategy="delay_thread")
        assert ours == ideal

    def test_sender_delay_penalty(self):
        out = two_message_model(PARAMS, delta=10.0, strategy="sender_delay")
        assert out.sender_finish == pytest.approx(2 * PARAMS.o + 2 * 10.0)
        assert out.receiver_finish == pytest.approx(3 * PARAMS.o + PARAMS.L + 2 * 10.0)

    def test_receiver_progress_penalty_when_delta_exceeds_o(self):
        delta = 10.0  # > o = 1.0
        out = two_message_model(PARAMS, delta=delta, strategy="receiver_progress")
        assert out.receiver_finish == pytest.approx(2 * PARAMS.o + PARAMS.L + 2 * delta)

    def test_receiver_progress_ok_when_delta_small(self):
        delta = 0.5  # < o
        out = two_message_model(PARAMS, delta=delta, strategy="receiver_progress")
        ideal = two_message_model(PARAMS, delta=delta, strategy="ideal")
        assert out.receiver_finish == pytest.approx(ideal.receiver_finish)

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            two_message_model(PARAMS, 1.0, "bogus")


class TestNoiseModels:
    def test_no_noise_identity(self):
        assert NoNoise().perturb(5.0) == 5.0

    def test_gaussian_validation(self):
        with pytest.raises(ValueError):
            GaussianNoise(sigma=-0.1)

    def test_jitter_validation(self):
        with pytest.raises(ValueError):
            OSJitterNoise(probability=1.5)
        with pytest.raises(ValueError):
            OSJitterNoise(spike=-1.0)

    def test_jitter_adds_spike(self):
        noise = OSJitterNoise(probability=1.0, spike=7.0, seed=0)
        assert noise.perturb(3.0) == pytest.approx(10.0)

    def test_zero_duration_untouched(self):
        assert GaussianNoise(sigma=0.5).perturb(0.0) == 0.0
        assert OSJitterNoise(probability=1.0).perturb(0.0) == 0.0


class TestCriticalPathRanking:
    """The tightness ranking must include the wire time of messages."""

    def _shadowed_arrival_graph(self):
        # rank 0: CALC(5) -> SEND; rank 1: CALC(8) -> RECV.  With L = 10 and
        # o = G = 0 the send *ends* at 5 (before the rank-1 CALC at 8), but
        # the message *arrives* at 15 — the comm edge is the tight input of
        # the RECV, and a ranking that ignores wire time picks the CALC.
        from repro.schedgen.graph import GraphBuilder

        builder = GraphBuilder(nranks=2)
        c0 = builder.add_calc(0, 5.0)
        s = builder.add_send(0, 1, 1)
        builder.add_dependency(c0, s)
        c1 = builder.add_calc(1, 8.0)
        r = builder.add_recv(1, 0, 1)
        builder.add_dependency(c1, r)
        builder.add_comm_edge(s, r)
        return builder.freeze(), (c0, s, c1, r)

    def test_comm_arrival_beats_later_dependency_end(self):
        graph, (c0, s, c1, r) = self._shadowed_arrival_graph()
        params = LogGPSParams(L=10.0, o=0.0, g=0.0, G=0.0)
        result = simulate(graph, params)
        # end(c1) = 8 > end(s) = 5, but arrival(s) = 15: the path must take
        # the message, not the dependency predecessor
        assert result.end[c1] > result.end[s]
        path = result.critical_path(graph)
        assert path == [c0, s, r]
        assert result.critical_path_messages(graph) == 1

    def test_wire_time_includes_gap_term(self):
        # 1001-byte message: arrival = end(s) + L + 1000 G = 5 + 1 + 10 = 16,
        # still later than the dependency end at 8 even though L alone (6)
        # would lose the ranking
        from repro.schedgen.graph import GraphBuilder

        builder = GraphBuilder(nranks=2)
        c0 = builder.add_calc(0, 5.0)
        s = builder.add_send(0, 1, 1001)
        builder.add_dependency(c0, s)
        c1 = builder.add_calc(1, 8.0)
        r = builder.add_recv(1, 0, 1001)
        builder.add_dependency(c1, r)
        builder.add_comm_edge(s, r)
        graph = builder.freeze()
        params = LogGPSParams(L=1.0, o=0.0, g=0.0, G=0.01)
        result = simulate(graph, params)
        assert result.critical_path(graph) == [c0, s, r]
        assert result.critical_path_messages(graph) == 1

    def test_critical_path_messages_matches_edge_scan(self):
        from repro.schedgen.graph import EdgeKind

        graph = pingpong_graph(iterations=2)
        result = simulate(graph, PARAMS)
        path = result.critical_path(graph)
        pairs = set(zip(path, path[1:]))
        slow = sum(
            1
            for src, dst, kind in graph.edges()
            if kind is EdgeKind.COMM and (src, dst) in pairs
        )
        assert result.critical_path_messages(graph) == slow
        assert slow >= 1

    def test_rank_finish_is_per_rank_maximum(self):
        graph = pingpong_graph(iterations=3)
        result = simulate(graph, PARAMS)
        for r in range(graph.nranks):
            vids = graph.vertices_of_rank(r)
            assert result.rank_finish[r] == pytest.approx(result.end[vids].max())
