"""Tests for the content-addressed artifact layer (:mod:`repro.artifacts`).

Covers the three npz round trips (graphs, LPs, envelopes), the content
digests they are keyed by, the on-disk :class:`ArtifactStore`, and the
cached paths wired through :class:`LatencyAnalyzer.batched_sweep`,
:func:`batched_sweep_graphs` and the ``llamp cache`` CLI.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import CSCS_TESTBED
from repro.artifacts import (
    ArtifactFormatError,
    ArtifactStore,
    combine_digests,
    envelope_key,
    load_envelope,
    load_graph,
    load_lp,
    save_envelope,
    save_graph,
    save_lp,
)
from repro.core import BatchedSweep, LatencyAnalyzer, batched_sweep_graphs, build_lp
from repro.lp.assembler import assembly_counts
from repro.network.params import LogGPSParams
from repro.schedgen.builder import build_graph
from repro.schedgen.graph import ExecutionGraph
from repro.testing import (
    build_random_dag,
    build_random_program,
    build_running_example,
    build_staircase,
)

PARAMS = LogGPSParams(L=1.0, o=0.1, g=0.1, G=0.001, S=1024, P=2)

#: golden digests — these pin the byte-level digest contract; they must only
#: ever change together with a bump of the digest domain prefixes
GOLDEN_GRAPH_DIGEST = "6878605d1a185873a249488aba29e5372915132f94495b55cd46e6d663b3f78c"
GOLDEN_PARAMS_DIGEST = "d4072c2920e5006030a28322a6bc4b183a1002f632b9dbd58285e07b884cfbf2"


def graph_cases() -> list[tuple[str, ExecutionGraph]]:
    return [
        ("running-example", build_running_example()),
        ("staircase", build_staircase(6)),
        ("random-dag", build_random_dag(3)),
        ("random-dag-wide", build_random_dag(11, nranks=5, rounds=25)),
    ]


# ---------------------------------------------------------------------------
# content digests
# ---------------------------------------------------------------------------


class TestContentDigests:
    def test_graph_golden_digest_pinned(self):
        # byte-level contract: if this changes, every existing store on disk
        # silently misses — bump the domain prefix instead of re-pinning
        assert build_running_example().content_digest() == GOLDEN_GRAPH_DIGEST

    def test_params_golden_digest_pinned(self):
        assert CSCS_TESTBED.content_digest() == GOLDEN_PARAMS_DIGEST

    def test_graph_digest_deterministic_across_builds(self):
        assert (
            build_random_dag(7).content_digest()
            == build_random_dag(7).content_digest()
        )

    def test_graph_digest_distinguishes_graphs(self):
        digests = {g.content_digest() for _, g in graph_cases()}
        assert len(digests) == len(graph_cases())

    def test_graph_digest_sensitive_to_cost(self):
        assert (
            build_running_example(c0=0.1).content_digest()
            != build_running_example(c0=0.2).content_digest()
        )

    def test_graph_digest_cached_on_instance(self):
        graph = build_running_example()
        assert graph._content_digest is None
        first = graph.content_digest()
        assert graph._content_digest == first
        assert graph.content_digest() == first

    def test_legacy_and_columnar_builds_hash_identically(self):
        # the deterministic-order contract makes content addressing sound:
        # both construction engines must produce the same digest
        for seed in (0, 1, 2):
            program = build_random_program(seed)
            legacy = build_graph(program, params=PARAMS, builder_engine="legacy")
            columnar = build_graph(program, params=PARAMS, builder_engine="columnar")
            assert legacy.content_digest() == columnar.content_digest()

    def test_params_digest_sensitive_to_every_field(self):
        base = LogGPSParams(L=1.0, o=0.2, g=0.3, G=0.004, S=512, P=4)
        variants = [
            base.replace(L=2.0),
            base.replace(o=0.5),
            base.replace(g=0.6),
            base.replace(G=0.008),
            base.replace(S=1024),
            base.replace(P=8),
        ]
        digests = {p.content_digest() for p in [base, *variants]}
        assert len(digests) == len(variants) + 1

    def test_combine_digests_injective_over_parts(self):
        assert combine_digests("ab", "c") != combine_digests("a", "bc")
        assert combine_digests("a", "b") != combine_digests("a", "b", "")

    def test_envelope_key_ignores_config_order(self):
        graph = build_running_example()
        k1 = envelope_key(graph, PARAMS, l_min=0.0, l_max=5.0, a=1, b=2)
        k2 = envelope_key(graph, PARAMS, l_min=0.0, l_max=5.0, b=2, a=1)
        assert k1 == k2
        assert k1 != envelope_key(graph, PARAMS, l_min=0.0, l_max=6.0, a=1, b=2)


# ---------------------------------------------------------------------------
# graph round trip
# ---------------------------------------------------------------------------


class TestGraphRoundTrip:
    @pytest.mark.parametrize("name,graph", graph_cases(), ids=lambda c: c if isinstance(c, str) else "")
    def test_columns_bit_identical(self, tmp_path, name, graph):
        path = tmp_path / f"{name}.npz"
        save_graph(graph, path)
        loaded = load_graph(path)
        assert loaded.nranks == graph.nranks
        assert loaded.labels == graph.labels
        for column, _ in ExecutionGraph.CONTENT_COLUMNS:
            original = getattr(graph, column)
            restored = getattr(loaded, column)
            assert restored.dtype == original.dtype, column
            assert np.array_equal(restored, original), column

    @pytest.mark.parametrize("name,graph", graph_cases(), ids=lambda c: c if isinstance(c, str) else "")
    def test_digest_preserved(self, tmp_path, name, graph):
        path = tmp_path / f"{name}.npz"
        save_graph(graph, path)
        assert load_graph(path).content_digest() == graph.content_digest()

    def test_same_lp_objective_after_reload(self, tmp_path):
        for name, graph in graph_cases():
            path = tmp_path / f"{name}.npz"
            save_graph(graph, path)
            loaded = load_graph(path)
            original = build_lp(graph, PARAMS).solve_runtime(L=3.0).objective
            restored = build_lp(loaded, PARAMS).solve_runtime(L=3.0).objective
            assert restored == original

    def test_cached_level_structure_restored(self, tmp_path):
        graph = build_random_dag(5)
        graph.topological_order()  # populate the cached views
        assert graph._topo_order is not None and graph._level_indptr is not None
        path = tmp_path / "g.npz"
        save_graph(graph, path)
        loaded = load_graph(path)
        assert loaded._topo_order is not None
        assert np.array_equal(loaded._topo_order, graph._topo_order)
        assert np.array_equal(loaded._level_indptr, graph._level_indptr)

    def test_load_without_level_structure_rederives_lazily(self, tmp_path):
        graph = build_running_example()
        path = tmp_path / "g.npz"
        save_graph(graph, path)
        # strip the stored views to emulate a file saved before they existed
        with np.load(path, allow_pickle=False) as archive:
            arrays = {k: archive[k] for k in archive.files
                      if k not in ("topo_order", "level_indptr")}
        np.savez(path, **arrays)
        loaded = load_graph(path)
        assert loaded._topo_order is None
        # and the lazy derivation still works on the loaded instance
        assert np.array_equal(loaded.topological_order(), graph.topological_order())

    def test_wrong_kind_rejected(self, tmp_path):
        path = tmp_path / "g.npz"
        save_graph(build_running_example(), path)
        with pytest.raises(ArtifactFormatError, match="expected a 'lp'"):
            load_lp(path)
        with pytest.raises(ArtifactFormatError, match="expected a 'envelope'"):
            load_envelope(path)

    def test_not_an_artifact_rejected(self, tmp_path):
        path = tmp_path / "plain.npz"
        np.savez(path, data=np.arange(3))
        with pytest.raises(ArtifactFormatError, match="not a repro artifact"):
            load_graph(path)

    def test_newer_format_version_rejected(self, tmp_path):
        from repro.artifacts.serialize import FORMAT_VERSION

        path = tmp_path / "g.npz"
        save_graph(build_running_example(), path)
        with np.load(path, allow_pickle=False) as archive:
            arrays = {k: archive[k] for k in archive.files}
        arrays["__version__"] = np.int64(FORMAT_VERSION + 1)
        np.savez(path, **arrays)
        with pytest.raises(ArtifactFormatError, match="newer than supported"):
            load_graph(path)


# ---------------------------------------------------------------------------
# LP round trip
# ---------------------------------------------------------------------------


class TestLPRoundTrip:
    @pytest.mark.parametrize("engine", ["symbolic", "compiled"])
    def test_same_solution_after_reload(self, tmp_path, engine):
        graph = build_random_dag(9)
        model = build_lp(graph, PARAMS, latency_mode="global", engine=engine).model
        expected = model.solve(backend="highs").objective
        path = tmp_path / "m.npz"
        save_lp(model, path)
        loaded, meta = load_lp(path)
        assert meta == {}
        assert loaded.num_vars == model.num_vars
        assert [v.name for v in loaded.variables] == [v.name for v in model.variables]
        assert loaded.solve(backend="highs").objective == pytest.approx(
            expected, rel=1e-12
        )

    def test_compiled_rows_round_trip_exactly(self, tmp_path):
        model = build_lp(
            build_random_dag(4), PARAMS, latency_mode="global", engine="compiled"
        ).model
        original = model.to_arrays()
        path = tmp_path / "m.npz"
        save_lp(model, path)
        restored = load_lp(path)[0].to_arrays()
        assert restored["row_sense"] == original["row_sense"]
        for key in ("lb", "ub", "row_indptr", "row_cols", "row_vals", "row_consts"):
            assert np.array_equal(restored[key], original[key]), key

    def test_meta_round_trip(self, tmp_path):
        graph = build_running_example()
        model = build_lp(graph, PARAMS, latency_mode="global").model
        meta = {"graph": graph.content_digest(), "params": PARAMS.content_digest()}
        path = tmp_path / "m.npz"
        save_lp(model, path, meta=meta)
        assert load_lp(path)[1] == meta

    def test_loaded_model_needs_no_assembly(self, tmp_path):
        # from_arrays pre-populates the assembled cache: solving the loaded
        # model must not lower anything at the Python level
        model = build_lp(
            build_random_dag(2), PARAMS, latency_mode="global", engine="compiled"
        ).model
        path = tmp_path / "m.npz"
        save_lp(model, path)
        loaded, _ = load_lp(path)
        before = assembly_counts()
        loaded.solve(backend="highs")
        after = assembly_counts()
        assert after == before


# ---------------------------------------------------------------------------
# envelope round trip
# ---------------------------------------------------------------------------


class TestEnvelopeRoundTrip:
    def test_piecewise_exact(self, tmp_path):
        graph = build_staircase(5)
        sweep = BatchedSweep(
            build_lp(graph, PARAMS, latency_mode="global"), l_min=0.0, l_max=10.0
        )
        envelope = sweep.envelope
        path = tmp_path / "e.npz"
        save_envelope(envelope, path)
        loaded = load_envelope(path)
        assert loaded.lo == envelope.lo and loaded.hi == envelope.hi
        assert [(ln.slope, ln.intercept) for ln in loaded.lines] == [
            (ln.slope, ln.intercept) for ln in envelope.lines
        ]
        xs = np.linspace(0.0, 10.0, 57)
        assert np.array_equal(loaded.sample(xs), envelope.sample(xs))
        assert loaded.breakpoints() == envelope.breakpoints()

    def test_tangent_exact(self, tmp_path):
        graph_lp = build_lp(build_staircase(4), PARAMS, latency_mode="global")
        envelope = graph_lp.tangent_envelope(0.0, 8.0)
        path = tmp_path / "e.npz"
        save_envelope(envelope, path)
        loaded = load_envelope(path)
        assert [(t.L, t.value, t.slope) for t in loaded.tangents] == [
            (t.L, t.value, t.slope) for t in envelope.tangents
        ]
        assert loaded.breakpoints == envelope.breakpoints
        assert (loaded.lo, loaded.hi, loaded.num_solves) == (
            envelope.lo,
            envelope.hi,
            envelope.num_solves,
        )

    def test_sweep_restored_from_envelope_answers_without_model(self, tmp_path):
        graph = build_staircase(4)
        sweep = BatchedSweep(
            build_lp(graph, PARAMS, latency_mode="global"), l_min=0.0, l_max=8.0
        )
        path = tmp_path / "e.npz"
        save_envelope(sweep.envelope, path)
        restored = BatchedSweep.from_envelope(load_envelope(path))
        assert restored.graph_lp is None
        assert restored.num_solves == 0
        xs = np.linspace(0.0, 8.0, 33)
        assert np.array_equal(restored.values(xs), sweep.values(xs))
        with pytest.raises(ValueError, match="restored from a cached envelope"):
            restored._build_envelope()

    def test_unknown_type_rejected(self, tmp_path):
        with pytest.raises(TypeError, match="PiecewiseLinear or TangentEnvelope"):
            save_envelope(object(), tmp_path / "e.npz")


# ---------------------------------------------------------------------------
# the store
# ---------------------------------------------------------------------------


class TestArtifactStore:
    def test_get_or_build_miss_then_hit(self, tmp_path):
        store = ArtifactStore(tmp_path)
        graph = build_running_example()
        key = graph.content_digest()
        builds = []

        def builder():
            builds.append(1)
            return graph

        first = store.get_or_build_graph(key, builder)
        second = store.get_or_build_graph(key, builder)
        assert len(builds) == 1
        assert first.content_digest() == second.content_digest() == key
        assert store.misses["graph"] == 1 and store.hits["graph"] == 1
        assert store.contains("graph", key)

    def test_layout_uses_two_char_fanout(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = "abcdef0123"
        assert store.path_for("graph", key) == tmp_path / "graph" / "ab" / f"{key}.npz"

    def test_bad_key_and_kind_rejected(self, tmp_path):
        store = ArtifactStore(tmp_path)
        with pytest.raises(ValueError, match="hex digest"):
            store.path_for("graph", "../../evil")
        with pytest.raises(ValueError, match="hex digest"):
            store.path_for("graph", "abc")  # too short
        with pytest.raises(ValueError, match="unknown artifact kind"):
            store.path_for("plan", "abcdef")

    def test_corrupt_entry_deleted_and_rebuilt(self, tmp_path):
        store = ArtifactStore(tmp_path)
        graph = build_running_example()
        key = graph.content_digest()
        store.put("graph", key, graph)
        path = store.path_for("graph", key)
        path.write_bytes(b"not an npz archive")
        assert store.get("graph", key) is None
        assert not path.exists()
        rebuilt = store.get_or_build_graph(key, lambda: graph)
        assert rebuilt.content_digest() == key
        assert store.contains("graph", key)

    def test_get_or_build_lp_returns_model_both_paths(self, tmp_path):
        store = ArtifactStore(tmp_path)
        model = build_lp(build_running_example(), PARAMS, latency_mode="global").model
        key = combine_digests("lp", "test")
        cold = store.get_or_build_lp(key, lambda: model)
        warm = store.get_or_build_lp(key, lambda: model)
        assert cold is model
        assert warm.num_vars == model.num_vars  # loaded copy, not a tuple

    def test_stats_and_clear(self, tmp_path):
        store = ArtifactStore(tmp_path)
        graph = build_running_example()
        store.put("graph", graph.content_digest(), graph)
        sweep = BatchedSweep(
            build_lp(graph, PARAMS, latency_mode="global"), l_min=0.0, l_max=5.0
        )
        store.put("envelope", envelope_key(graph, PARAMS, l_min=0.0, l_max=5.0),
                  sweep.envelope)
        stats = store.stats()
        assert stats["kinds"]["graph"]["entries"] == 1
        assert stats["kinds"]["envelope"]["entries"] == 1
        assert stats["total_entries"] == 2
        assert stats["total_bytes"] > 0
        assert store.clear("envelope") == 1
        assert store.stats()["total_entries"] == 1
        assert store.clear() == 1
        assert store.stats()["total_entries"] == 0


# ---------------------------------------------------------------------------
# the cached analyzer path (the PR's acceptance criterion)
# ---------------------------------------------------------------------------


class TestAnalyzerCache:
    def test_repeat_sweep_performs_zero_new_assemblies(self, tmp_path):
        graph = build_random_dag(13)
        xs = np.linspace(PARAMS.L, 50.0, 31)

        cold = LatencyAnalyzer(graph, PARAMS, cache_dir=str(tmp_path))
        cold_values = cold.batched_sweep(l_max=50.0).values(xs)
        assert cold.store.misses["envelope"] == 1

        warm = LatencyAnalyzer(graph, PARAMS, cache_dir=str(tmp_path))
        before = assembly_counts()
        sweep = warm.batched_sweep(l_max=50.0)
        warm_values = sweep.values(xs)
        after = assembly_counts()

        assert after == before  # zero new CSR assemblies, full or rows
        assert warm._lp is None  # the LP was never even built
        assert warm.store.hits["envelope"] == 1
        assert sweep.num_solves == 0
        assert np.array_equal(warm_values, cold_values)

    def test_cache_key_separates_intervals_and_params(self, tmp_path):
        graph = build_running_example()
        analyzer = LatencyAnalyzer(graph, PARAMS, cache_dir=str(tmp_path))
        analyzer.batched_sweep(l_max=5.0)
        analyzer.batched_sweep(l_max=7.0)
        other = LatencyAnalyzer(
            graph, PARAMS.replace(G=0.01), cache_dir=str(tmp_path)
        )
        other.batched_sweep(l_max=5.0)
        assert ArtifactStore(tmp_path).stats()["kinds"]["envelope"]["entries"] == 3

    def test_uncached_analyzer_has_no_store(self):
        analyzer = LatencyAnalyzer(build_running_example(), PARAMS)
        assert analyzer.store is None


class TestBatchedSweepGraphsCache:
    def test_duplicate_graphs_share_one_entry(self, tmp_path):
        graph = build_random_dag(21)
        envelopes = batched_sweep_graphs(
            [graph, build_random_dag(21)], PARAMS,
            l_min=PARAMS.L, l_max=40.0, cache_dir=str(tmp_path),
        )
        store = ArtifactStore(tmp_path)
        assert store.stats()["kinds"]["envelope"]["entries"] == 1
        xs = np.linspace(PARAMS.L, 40.0, 17)
        assert np.array_equal(envelopes[0].sample(xs), envelopes[1].sample(xs))

        # a second run over the same inputs is answered purely from disk
        before = assembly_counts()
        again = batched_sweep_graphs(
            [graph], PARAMS, l_min=PARAMS.L, l_max=40.0, cache_dir=str(tmp_path)
        )
        assert assembly_counts() == before
        assert np.array_equal(again[0].sample(xs), envelopes[0].sample(xs))


# ---------------------------------------------------------------------------
# the CLI
# ---------------------------------------------------------------------------


class TestCacheCLI:
    def test_warm_stats_clear_cycle(self, tmp_path, capsys):
        from repro.cli import main

        store_dir = str(tmp_path / "store")
        assert main(["cache", "warm", "lulesh", "--dir", store_dir,
                     "--nranks", "4", "--l-max", "50", "--json"]) == 0
        warm = json.loads(capsys.readouterr().out)
        assert warm["app"] == "lulesh"
        assert len(warm["graph_key"]) == 64

        assert main(["cache", "stats", "--dir", store_dir, "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["kinds"]["graph"]["entries"] == 1
        assert stats["kinds"]["lp"]["entries"] == 1
        assert stats["kinds"]["envelope"]["entries"] == 1

        # warming again is pure hits: entry counts do not grow
        assert main(["cache", "warm", "lulesh", "--dir", store_dir,
                     "--nranks", "4", "--l-max", "50", "--json"]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--dir", store_dir, "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["total_entries"] == 3

        assert main(["cache", "clear", "--dir", store_dir, "--kind", "lp"]) == 0
        assert "removed 1 entries" in capsys.readouterr().out
        assert main(["cache", "clear", "--dir", store_dir]) == 0
        assert "removed 2 entries" in capsys.readouterr().out

    def test_warm_requires_app(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit, match="application skeleton"):
            main(["cache", "warm", "--dir", str(tmp_path)])

    def test_stats_human_readable(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["cache", "stats", "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "total" in out and "0 entries" in out
