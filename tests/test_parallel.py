"""Tests for :mod:`repro.parallel`: shared graph segments and the sweep pool.

Every test in this module runs under an autouse leak-check fixture: the set
of ``llamp-*`` segments in ``/dev/shm`` must be unchanged after each test,
so any export without a matching unlink — including on error paths — fails
the test that caused it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.artifacts import ArtifactStore
from repro.core.lp_builder import build_lp
from repro.core.parametric import BatchedSweep, batched_sweep_graphs
from repro.network.params import CSCS_TESTBED
from repro.parallel import (
    ScenarioError,
    SharedGraphBuffer,
    SharedGraphRegistry,
    SweepPool,
    SweepTask,
    live_shared_segments,
)
from repro.schedgen.graph import ExecutionGraph
from repro.testing import build_random_dag, build_running_example

PARAMS = CSCS_TESTBED


@pytest.fixture(autouse=True)
def no_leaked_segments():
    before = live_shared_segments()
    yield
    leaked = live_shared_segments() - before
    assert not leaked, f"test leaked shared-memory segments: {sorted(leaked)}"


def _reference_envelope(graph, l_min=0.0, l_max=100.0):
    lp = build_lp(graph, PARAMS, latency_mode="global")
    return BatchedSweep(lp, l_min=l_min, l_max=l_max).envelope


def _task(graph, *, scenario=None, segment=None, params=PARAMS, **overrides):
    kwargs = dict(
        graph_digest=graph.content_digest(),
        params_digest=params.content_digest(),
        l_min=0.0,
        l_max=100.0,
        build_kwargs=(("latency_mode", "global"),),
        params=params,
        scenario=scenario,
        segment=segment,
    )
    kwargs.update(overrides)
    return SweepTask(**kwargs)


class TestSharedGraphBuffer:
    def test_round_trip_preserves_identity(self):
        graph = build_running_example()
        graph.topological_order()  # populate the cached level structure
        buffer = SharedGraphBuffer.export(graph)
        try:
            attached = SharedGraphBuffer.attach(buffer.name)
            try:
                twin = attached.graph
                assert twin.content_digest() == graph.content_digest()
                assert twin.nranks == graph.nranks
                assert twin.labels == graph.labels
                for name, _ in ExecutionGraph.CONTENT_COLUMNS:
                    assert np.array_equal(getattr(twin, name), getattr(graph, name)), name
                # the exported level structure rides along: no re-sort needed
                assert twin._topo_order is not None
                assert np.array_equal(twin.topological_order(), graph.topological_order())
            finally:
                attached.close()
        finally:
            buffer.unlink()

    def test_attached_views_are_zero_copy_and_readonly(self):
        graph = build_running_example()
        buffer = SharedGraphBuffer.export(graph)
        try:
            attached = SharedGraphBuffer.attach(buffer.name)
            try:
                cost = attached.graph.cost
                assert not cost.flags.writeable
                assert not cost.flags.owndata  # a view into the segment
                with pytest.raises(ValueError):
                    cost[0] = 42.0
            finally:
                attached.close()
        finally:
            buffer.unlink()

    def test_attach_unknown_segment(self):
        with pytest.raises(FileNotFoundError):
            SharedGraphBuffer.attach("llamp-does-not-exist")

    def test_attach_rejects_unknown_format(self):
        graph = build_running_example()
        buffer = SharedGraphBuffer.export(graph)
        try:
            header = np.ndarray(8, dtype="<i8", buffer=buffer._shm.buf)
            header[0] = 999
            with pytest.raises(ValueError, match="format"):
                SharedGraphBuffer.attach(buffer.name)
        finally:
            buffer.unlink()

    def test_only_owner_may_unlink(self):
        graph = build_running_example()
        buffer = SharedGraphBuffer.export(graph)
        try:
            attached = SharedGraphBuffer.attach(buffer.name)
            with pytest.raises(RuntimeError, match="exporting process"):
                attached.unlink()
            attached.close()
        finally:
            buffer.unlink()


class TestSharedGraphRegistry:
    def test_refcounted_unlink(self):
        graph = build_running_example()
        registry = SharedGraphRegistry()
        before = live_shared_segments()
        name1 = registry.acquire(graph)
        name2 = registry.acquire(graph)
        assert name1 == name2  # same digest → same segment
        assert len(registry) == 1
        assert live_shared_segments() - before == {name1}
        registry.release(graph.content_digest())
        assert live_shared_segments() - before == {name1}  # one ref remains
        registry.release(graph.content_digest())
        assert live_shared_segments() == before
        assert len(registry) == 0
        registry.close()

    def test_release_unknown_digest(self):
        registry = SharedGraphRegistry()
        with pytest.raises(KeyError):
            registry.release("0" * 64)
        registry.close()

    def test_context_manager_releases_everything(self):
        graph = build_running_example()
        before = live_shared_segments()
        with SharedGraphRegistry() as registry:
            registry.acquire(graph)
            registry.acquire(graph)
            assert live_shared_segments() != before
        assert live_shared_segments() == before


class TestSweepPoolInline:
    """``processes=1`` runs tasks in-process through the same code path."""

    def test_matches_direct_sweep(self):
        graph = build_running_example()
        with SweepPool(1) as pool:
            envelopes = pool.sweep_graphs([graph], PARAMS, l_min=0.0, l_max=100.0)
        assert envelopes[0] == _reference_envelope(graph)

    def test_duplicates_solved_once(self):
        graph = build_running_example()
        tasks = [_task(graph, scenario=f"s{i}") for i in range(4)]
        with SweepPool(1) as pool:
            payloads = pool.run_tasks(tasks, {graph.content_digest(): graph})
        assert len(payloads) == 4
        # duplicates fan out the representative's payload, not a re-solve
        assert all(p is payloads[0] for p in payloads[1:])

    def test_unresolvable_digest_is_a_scenario_error(self):
        graph = build_running_example()
        task = _task(graph, scenario="orphan")
        with SweepPool(1) as pool:
            with pytest.raises(ScenarioError, match="orphan") as excinfo:
                pool.run_tasks([task], {})  # graph not provided anywhere
        assert excinfo.value.exc_type == "LookupError"

    def test_resolves_from_artifact_store(self, tmp_path):
        graph = build_running_example()
        store = ArtifactStore(tmp_path)
        store.put("graph", graph.content_digest(), graph)
        task = _task(graph)
        with SweepPool(1, cache_dir=tmp_path) as pool:
            payloads = pool.run_tasks([task], {})
        assert payloads[0]["envelope"] == _reference_envelope(graph)

    def test_closed_pool_rejects_work(self):
        pool = SweepPool(1)
        pool.close()
        graph = build_running_example()
        with pytest.raises(RuntimeError, match="closed"):
            pool._ensure_pool()


class TestSweepPoolWorkers:
    """Real ``spawn`` workers attached to shared segments."""

    def test_order_restored_and_duplicates_deduped(self):
        g1 = build_running_example()
        g2 = build_random_dag(7, nranks=4, rounds=12)
        graphs = [g1, g2, g1, g2, g1]
        with SweepPool(2) as pool:
            envelopes = pool.sweep_graphs(graphs, PARAMS, l_min=0.0, l_max=100.0)
        assert envelopes[0] == envelopes[2] == envelopes[4]
        assert envelopes[1] == envelopes[3]
        assert envelopes[0] == _reference_envelope(g1)
        assert envelopes[1] == _reference_envelope(g2)

    def test_worker_failure_carries_scenario_and_pool_survives(self):
        graph = build_running_example()
        good = _task(graph, scenario="good")
        bad = _task(
            graph,
            scenario="doomed-scenario",
            build_kwargs=(("latency_mode", "bogus"),),
        )
        graphs = {graph.content_digest(): graph}
        with SweepPool(2) as pool:
            with pytest.raises(ScenarioError, match="doomed-scenario") as excinfo:
                pool.run_tasks([good, bad], graphs)
            assert "bogus" in str(excinfo.value)
            assert excinfo.value.worker_traceback
            # the pool is not poisoned: the next batch still runs
            payloads = pool.run_tasks([good], graphs)
            assert payloads[0]["envelope"] == _reference_envelope(graph)


class TestBatchedSweepGraphsRewired:
    def test_serial_dedupes_without_cache_dir(self, monkeypatch):
        graph = build_running_example()
        calls = []
        import repro.core.parametric as parametric

        real = parametric._sweep_one_graph

        def counting(job):
            calls.append(job)
            return real(job)

        monkeypatch.setattr(parametric, "_sweep_one_graph", counting)
        envelopes = batched_sweep_graphs(
            [graph, graph, graph], PARAMS, l_min=0.0, l_max=100.0
        )
        assert len(calls) == 1  # solved once, fanned out
        assert envelopes[0] is envelopes[1] is envelopes[2]

    def test_pathlike_cache_dir(self, tmp_path):
        graph = build_running_example()
        envelopes = batched_sweep_graphs(
            [graph], PARAMS, l_min=0.0, l_max=100.0, cache_dir=tmp_path
        )
        assert envelopes[0] == _reference_envelope(graph)
        store = ArtifactStore(tmp_path)
        assert len(store.entries("envelope")) == 1

    def test_analyzer_accepts_pathlike_cache_dir(self, tmp_path):
        from repro.core.analyzer import LatencyAnalyzer

        graph = build_running_example()
        analyzer = LatencyAnalyzer(graph, PARAMS, cache_dir=tmp_path)
        assert analyzer.store is not None
        sweep = analyzer.batched_sweep(l_max=100.0)
        assert sweep.value(PARAMS.L) > 0

    def test_analyzer_sweep_many(self):
        from repro.core.analyzer import LatencyAnalyzer

        graph = build_running_example()
        sweeps = LatencyAnalyzer.sweep_many(
            [graph, graph], PARAMS, l_min=0.0, l_max=100.0
        )
        assert len(sweeps) == 2
        assert sweeps[0].num_solves == 0  # restored from a finished envelope
        assert sweeps[0].envelope == _reference_envelope(graph)
