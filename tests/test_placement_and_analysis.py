"""Tests for rank placement (Algorithm 3), baselines, metrics and the
validation harness, the GOAL format and the CLI."""

import numpy as np
import pytest

from repro import CSCS_TESTBED, LatencyAnalyzer
from repro.analysis import (
    ValidationSweep,
    max_relative_error,
    mean_absolute_percentage_error,
    rmse,
    rrmse,
    run_validation_sweep,
)
from repro.apps import icon, lulesh
from repro.cli import main as cli_main
from repro.mpi import run_program
from repro.network import ArchitectureGraph, block_mapping, round_robin_mapping
from repro.network.params import LogGPSParams
from repro.placement import (
    communication_volume_matrix,
    llamp_placement,
    predicted_runtime,
    volume_greedy_placement,
)
from repro.schedgen import build_graph, dumps_goal, loads_goal
from repro.schedgen.goal import GoalFormatError

PARAMS = LogGPSParams(L=3.0, o=2.0, G=0.0001)


def clustered_app_graph(nranks=4):
    """Ranks 2i and 2i+1 talk a lot; across pairs only a little."""

    def app(comm):
        partner = comm.rank ^ 1
        far = (comm.rank + 2) % comm.size
        for it in range(6):
            comm.compute(50.0)
            if partner < comm.size:
                comm.sendrecv(partner, 8192, partner, 8192, send_tag=it, recv_tag=it)
            comm.sendrecv(far, 64, far, 64, send_tag=100 + it, recv_tag=100 + it)

    return build_graph(run_program(app, nranks))


class TestMetrics:
    def test_rmse_and_rrmse(self):
        measured = [10.0, 20.0, 30.0]
        predicted = [11.0, 19.0, 31.0]
        assert rmse(measured, predicted) == pytest.approx(1.0)
        assert rrmse(measured, predicted) == pytest.approx(1.0 / 20.0)

    def test_perfect_prediction(self):
        assert rmse([5.0, 6.0], [5.0, 6.0]) == 0.0
        assert rrmse([5.0, 6.0], [5.0, 6.0]) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            rmse([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            rmse([], [])

    def test_mape_and_max_error(self):
        assert mean_absolute_percentage_error([10.0, 10.0], [9.0, 11.0]) == pytest.approx(0.1)
        assert max_relative_error([10.0, 10.0], [9.0, 12.0]) == pytest.approx(0.2)
        with pytest.raises(ValueError):
            mean_absolute_percentage_error([0.0], [1.0])


class TestValidationSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        graph = lulesh.build(4, params=CSCS_TESTBED, iterations=5)
        return run_validation_sweep(
            graph, CSCS_TESTBED, app="lulesh", delta_Ls=[0.0, 30.0, 60.0], repetitions=1,
        )

    def test_rrmse_below_two_percent(self, sweep):
        """The paper's headline accuracy claim, on our simulator ground truth."""
        assert sweep.rrmse < 0.02

    def test_rows_and_summary(self, sweep):
        rows = sweep.rows()
        assert len(rows) == 3
        assert rows[0]["delta_L_us"] == 0.0
        summary = sweep.summary()
        assert summary["app"] == "lulesh"
        assert summary["tol_1pct_us"] <= summary["tol_5pct_us"]

    def test_measured_increases_with_delta(self, sweep):
        assert sweep.measured[-1] > sweep.measured[0]

    def test_negative_delta_rejected(self):
        graph = lulesh.build(2, params=CSCS_TESTBED, iterations=2)
        with pytest.raises(ValueError):
            run_validation_sweep(graph, CSCS_TESTBED, delta_Ls=[-1.0])

    def test_noisy_measurement_still_accurate(self):
        graph = lulesh.build(2, params=CSCS_TESTBED, iterations=3)
        sweep = run_validation_sweep(
            graph, CSCS_TESTBED, delta_Ls=[0.0, 50.0], noise_sigma=0.01, repetitions=2
        )
        assert sweep.rrmse < 0.05


class TestPlacement:
    @pytest.fixture(scope="class")
    def arch(self):
        return ArchitectureGraph(num_nodes=2, processes_per_node=2,
                                 intra_node_latency=0.3, inter_node_latency=5.0)

    def test_volume_matrix_symmetric(self):
        graph = clustered_app_graph()
        volume = communication_volume_matrix(graph)
        assert np.allclose(volume, volume.T)
        assert volume[0, 1] > volume[0, 2]

    def test_volume_greedy_collocates_heavy_pairs(self, arch):
        graph = clustered_app_graph()
        mapping = volume_greedy_placement(graph, arch)
        assert mapping[0] == mapping[1]
        assert mapping[2] == mapping[3]

    def test_predicted_runtime_prefers_good_mapping(self, arch):
        graph = clustered_app_graph()
        good = predicted_runtime(graph, PARAMS, arch, [0, 0, 1, 1])
        bad = predicted_runtime(graph, PARAMS, arch, [0, 1, 0, 1])
        assert good < bad

    def test_llamp_placement_improves_bad_initial_mapping(self, arch):
        graph = clustered_app_graph()
        result = llamp_placement(graph, PARAMS, arch, initial_mapping=[0, 1, 0, 1],
                                 max_iterations=6)
        assert result.predicted_runtime <= result.initial_runtime
        assert result.improvement >= 0.0
        assert len(result.history) >= 1

    def test_llamp_placement_keeps_good_mapping(self, arch):
        graph = clustered_app_graph()
        result = llamp_placement(graph, PARAMS, arch, initial_mapping=[0, 0, 1, 1],
                                 max_iterations=4)
        assert result.predicted_runtime <= result.initial_runtime * (1 + 1e-9)

    def test_capacity_respected(self, arch):
        graph = clustered_app_graph()
        with pytest.raises(ValueError):
            volume_greedy_placement(clustered_app_graph(8), arch)
        with pytest.raises(ValueError):
            llamp_placement(graph, PARAMS, arch, initial_mapping=[0, 0, 1])


class TestGoalFormat:
    def test_round_trip(self):
        graph = lulesh.build(2, params=CSCS_TESTBED, iterations=2)
        text = dumps_goal(graph)
        restored = loads_goal(text)
        assert restored.num_vertices == graph.num_vertices
        assert restored.num_messages == graph.num_messages
        # runtimes agree up to the 1 ns rounding of GOAL calc costs
        a = LatencyAnalyzer(graph, CSCS_TESTBED).predict_runtime()
        b = LatencyAnalyzer(restored, CSCS_TESTBED).predict_runtime()
        assert b == pytest.approx(a, rel=1e-4)

    def test_files(self, tmp_path):
        from repro.schedgen import dump_goal, load_goal

        graph = lulesh.build(2, params=CSCS_TESTBED, iterations=1)
        path = tmp_path / "schedule.goal"
        dump_goal(graph, path)
        assert load_goal(path).num_vertices == graph.num_vertices

    def test_malformed_input_rejected(self):
        with pytest.raises(GoalFormatError):
            loads_goal("this is not goal")
        with pytest.raises(GoalFormatError):
            loads_goal("num_ranks 1\nrank 0 {\n  l1: dance 5\n}\n")
        with pytest.raises(GoalFormatError):
            loads_goal("num_ranks 2\nrank 0 {\n  l1: send 8b to 1 tag 0\n}\nrank 1 {\n}\n")


class TestCLI:
    def test_analyze_json(self, capsys):
        assert cli_main(["analyze", "lulesh", "--nranks", "2", "--json"]) == 0
        out = capsys.readouterr().out
        assert '"lambda_L"' in out

    def test_analyze_human(self, capsys):
        assert cli_main(["analyze", "icon", "--nranks", "2"]) == 0
        assert "latency tolerance" in capsys.readouterr().out

    def test_sweep(self, capsys):
        assert cli_main(["sweep", "lulesh", "--nranks", "2", "--points", "3",
                         "--max-delta", "40"]) == 0
        assert "RRMSE" in capsys.readouterr().out

    def test_trace_and_goal_outputs(self, tmp_path, capsys):
        trace_file = tmp_path / "app.trace"
        goal_file = tmp_path / "app.goal"
        assert cli_main(["trace", "lulesh", "--nranks", "2", "--output", str(trace_file)]) == 0
        assert cli_main(["goal", "lulesh", "--nranks", "2", "--output", str(goal_file)]) == 0
        assert trace_file.exists() and goal_file.exists()

    def test_analyze_lp_engine_fused_matches_compiled(self, capsys):
        import json

        assert cli_main(["--lp-engine", "fused", "analyze", "lulesh",
                         "--nranks", "2", "--json"]) == 0
        fused = json.loads(capsys.readouterr().out)
        assert cli_main(["--lp-engine", "compiled", "analyze", "lulesh",
                         "--nranks", "2", "--json"]) == 0
        compiled = json.loads(capsys.readouterr().out)
        assert fused.keys() == compiled.keys()
        for key, value in compiled.items():
            assert fused[key] == pytest.approx(value), key

    def test_ring_allreduce_option(self, capsys):
        assert cli_main(["analyze", "icon", "--nranks", "4", "--allreduce", "ring",
                         "--json"]) == 0

    def test_place_json(self, capsys):
        import json

        assert cli_main(["place", "lulesh", "--nranks", "4", "--nodes", "2",
                         "--initial", "round_robin", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["mapping"]) == 4
        assert payload["lp_reassemblies"] == 0
        assert payload["predicted_runtime_us"] <= payload["initial_runtime_us"] * (1 + 1e-9)

    def test_place_human(self, capsys):
        assert cli_main(["place", "icon", "--nranks", "4", "--nodes", "2"]) == 0
        out = capsys.readouterr().out
        assert "refined mapping" in out and "LP solves" in out

    def test_place_rejects_unknown_backend(self):
        with pytest.raises(SystemExit):
            cli_main(["place", "lulesh", "--nranks", "2", "--backend", "nope"])
