"""Streaming (out-of-core) ingestion: bit-identity with the monolithic paths.

The contract under test is exact: for any valid input,
:func:`repro.schedgen.streaming.batches_from_trace_chunked` must produce the
same column bytes — and therefore the same fused-graph ``content_digest()``
— as ``batches_from_trace(load_trace(...))`` for **every** chunk size,
including sizes that split a rendezvous triple, a waitall group, or a
compute-gap pair across block boundaries.  Likewise
:func:`~repro.schedgen.streaming.load_goal_chunked` must reproduce
:func:`~repro.schedgen.goal.load_goal` byte-for-byte, with or without
memory-mapped builder columns, and the memory-mapped artifact loads of
:mod:`repro.artifacts` must preserve digests while holding no file
descriptors open.
"""

from __future__ import annotations

import io
import os
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.artifacts.serialize import load_graph, save_graph
from repro.artifacts.store import ArtifactStore
from repro.mpi.tracer import trace_program
from repro.network.params import LogGPSParams
from repro.schedgen import (
    ChunkedBatches,
    batches_from_trace_chunked,
    load_goal,
    load_goal_chunked,
)
from repro.schedgen.columnar import ScheduleBatches, batches_from_trace
from repro.schedgen.goal import dumps_goal
from repro.schedgen.graph import GraphBuilder
from repro.schedgen.streaming import resolve_chunk_size
from repro.testing import build_random_program, build_running_example
from repro.trace.format import TraceFormatError, dumps_trace, loads_trace

PARAMS = LogGPSParams()

BATCH_COLUMNS = (
    "kind", "cost", "peer", "size", "tag", "root",
    "request", "recv_peer", "recv_size", "recv_tag",
)


def _trace_text(seed: int, **kwargs) -> str:
    program = build_random_program(seed, **kwargs)
    return dumps_trace(trace_program(program, PARAMS))


def _assert_batches_equal(mono, chunked: ChunkedBatches, context: str) -> None:
    assert chunked.nranks == len(mono), context
    for rank in range(len(mono)):
        a, b = mono[rank], chunked[rank]
        for name in BATCH_COLUMNS:
            np.testing.assert_array_equal(
                getattr(a, name), getattr(b, name),
                err_msg=f"{context}: rank {rank} column {name}",
            )
        assert a.requests == b.requests, f"{context}: rank {rank} requests"


class TestTraceChunkedParity:
    @pytest.mark.parametrize("chunk_size", [1, 2, 3, 7, 64, "auto"])
    def test_bitwise_column_parity(self, chunk_size):
        # chunk sizes 1-3 guarantee block boundaries inside rendezvous
        # triples, waitall groups and compute-gap pairs
        text = _trace_text(0)
        mono = batches_from_trace(loads_trace(text))
        chunked = batches_from_trace_chunked(io.StringIO(text), chunk_size=chunk_size)
        _assert_batches_equal(mono, chunked, f"chunk_size={chunk_size}")

    def test_min_compute_parity(self):
        text = _trace_text(1)
        mono = batches_from_trace(loads_trace(text), min_compute=5.0)
        chunked = batches_from_trace_chunked(
            io.StringIO(text), min_compute=5.0, chunk_size=3
        )
        _assert_batches_equal(mono, chunked, "min_compute=5.0")

    def test_fused_graph_digest_parity(self):
        text = _trace_text(2)
        mono = batches_from_trace(loads_trace(text))
        chunked = batches_from_trace_chunked(io.StringIO(text), chunk_size=5)
        digest_mono = ScheduleBatches(mono, len(mono)).content_digest(PARAMS)
        digest_chunked = ScheduleBatches(
            chunked, chunked.nranks
        ).content_digest(PARAMS)
        assert digest_mono == digest_chunked

    def test_reads_from_path(self, tmp_path):
        text = _trace_text(3)
        path = tmp_path / "app.trace"
        path.write_text(text)
        mono = batches_from_trace(loads_trace(text))
        chunked = batches_from_trace_chunked(path, chunk_size=4)
        _assert_batches_equal(mono, chunked, "path input")

    def test_meta_round_trip(self):
        text = _trace_text(0)
        # inject a meta line with an escaped value after the header
        lines = text.split("\n")
        lines.insert(1, "# meta app=weird\\nvalue")
        chunked = batches_from_trace_chunked(io.StringIO("\n".join(lines)))
        assert chunked.meta == {"app": "weird\nvalue"}

    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        nranks=st.integers(min_value=2, max_value=5),
        rounds=st.integers(min_value=1, max_value=10),
        chunk_size=st.integers(min_value=1, max_value=97),
    )
    def test_property_digest_identical(self, seed, nranks, rounds, chunk_size):
        # random programs exercise eager and rendezvous protocols, waitall
        # groups and sendrecv; every chunk size must yield the same digest
        program = build_random_program(seed, nranks=nranks, rounds=rounds)
        text = dumps_trace(trace_program(program, PARAMS))
        mono = batches_from_trace(loads_trace(text))
        chunked = batches_from_trace_chunked(io.StringIO(text), chunk_size=chunk_size)
        _assert_batches_equal(mono, chunked, f"seed={seed} chunk={chunk_size}")
        digest_mono = ScheduleBatches(mono, len(mono)).content_digest(PARAMS)
        digest_chunked = ScheduleBatches(
            chunked, chunked.nranks
        ).content_digest(PARAMS)
        assert digest_mono == digest_chunked


class TestTraceChunkedSpill:
    def test_spill_parity_and_flag(self, tmp_path):
        text = _trace_text(4)
        mono = batches_from_trace(loads_trace(text))
        chunked = batches_from_trace_chunked(
            io.StringIO(text), chunk_size=4,
            spill_dir=tmp_path, spill_threshold_bytes=64,
        )
        assert chunked.spilled
        assert isinstance(chunked[0].kind, np.memmap)
        _assert_batches_equal(mono, chunked, "spilled")
        chunked.close()

    def test_below_threshold_stays_in_ram(self, tmp_path):
        text = _trace_text(4)
        chunked = batches_from_trace_chunked(
            io.StringIO(text), spill_dir=tmp_path,
            spill_threshold_bytes=1 << 30,
        )
        assert not chunked.spilled
        assert not isinstance(chunked[0].kind, np.memmap)


class TestTraceChunkedErrors:
    def test_missing_header(self):
        with pytest.raises(TraceFormatError, match="missing header"):
            batches_from_trace_chunked(io.StringIO("not a trace\n"))

    def test_unknown_operation(self):
        text = "# llamp-trace v1\n@rank 0\nMPI_Bogus:0:1\n"
        with pytest.raises(TraceFormatError, match="unknown MPI operation"):
            batches_from_trace_chunked(io.StringIO(text))

    def test_non_monotonic_records(self):
        text = (
            "# llamp-trace v1\n@rank 0\n"
            "MPI_Send:10.0:11.0:peer=1:size=8\n"
            "MPI_Recv:5.0:6.0:peer=1:size=8\n"
        )
        with pytest.raises(ValueError, match="before the previous call ended"):
            batches_from_trace_chunked(io.StringIO(text), chunk_size=1)

    def test_dangling_request(self):
        text = (
            "# llamp-trace v1\n@rank 0\n"
            "MPI_Isend:0.0:1.0:peer=1:size=8:request=3\n"
        )
        with pytest.raises(ValueError, match="requests never completed"):
            batches_from_trace_chunked(io.StringIO(text))

    def test_wait_on_unknown_request(self):
        text = "# llamp-trace v1\n@rank 0\nMPI_Wait:0.0:1.0:request=9\n"
        with pytest.raises(ValueError, match="MPI_Wait on unknown request 9"):
            batches_from_trace_chunked(io.StringIO(text))

    def test_duplicate_rank_header(self):
        text = "# llamp-trace v1\n@rank 0\n@rank 0\n"
        with pytest.raises(TraceFormatError, match="duplicate '@rank 0'"):
            batches_from_trace_chunked(io.StringIO(text))

    def test_non_consecutive_ranks(self):
        text = "# llamp-trace v1\n@rank 0\n@rank 2\n"
        with pytest.raises(ValueError, match="found rank 2 at position 1"):
            batches_from_trace_chunked(io.StringIO(text))

    def test_chunk_size_validation(self):
        assert resolve_chunk_size("auto") == resolve_chunk_size(None)
        assert resolve_chunk_size("17") == 17
        with pytest.raises(ValueError, match="chunk_size"):
            resolve_chunk_size(0)


class TestChunkedBatchesSequence:
    def test_sequence_protocol(self):
        text = _trace_text(5)
        chunked = batches_from_trace_chunked(io.StringIO(text), chunk_size=8)
        assert len(chunked) == chunked.nranks
        assert len(list(chunked)) == chunked.nranks
        assert len(chunked[-1].kind) == len(chunked[chunked.nranks - 1].kind)
        with pytest.raises(IndexError):
            chunked[chunked.nranks]
        with pytest.raises(TypeError):
            chunked[0:2]


class TestGoalChunkedParity:
    @pytest.mark.parametrize("chunk_size", [1, 2, 5, "auto"])
    def test_digest_parity(self, chunk_size):
        text = dumps_goal(build_running_example())
        mono = load_goal(io.StringIO(text))
        chunked = load_goal_chunked(io.StringIO(text), chunk_size=chunk_size)
        assert chunked.content_digest() == mono.content_digest()

    def test_mmap_builder_digest_parity(self, tmp_path):
        text = dumps_goal(build_running_example())
        mono = load_goal(io.StringIO(text))
        chunked = load_goal_chunked(io.StringIO(text), chunk_size=2,
                                    mmap_dir=tmp_path)
        assert chunked.content_digest() == mono.content_digest()
        assert isinstance(chunked.kind, np.memmap)

    def test_reads_from_path(self, tmp_path):
        text = dumps_goal(build_running_example())
        path = tmp_path / "app.goal"
        path.write_text(text)
        mono = load_goal(io.StringIO(text))
        assert load_goal_chunked(path).content_digest() == mono.content_digest()

    def test_validate_rejects_bad_input(self):
        from repro.schedgen.goal import GoalFormatError

        with pytest.raises(GoalFormatError, match="num_ranks"):
            load_goal_chunked(io.StringIO("rank 0 {\n}\n"))
        # unmatched send must be rejected exactly like the monolithic reader
        bad = "num_ranks 2\nrank 0 {\n  l1: send 8b to 1 tag 0\n}\n"
        with pytest.raises(GoalFormatError, match="unmatched send/recv"):
            load_goal_chunked(io.StringIO(bad))


class TestMmapGraphBuilder:
    def test_digest_parity_with_ram_builder(self, tmp_path):
        def build(mmap_dir):
            builder = GraphBuilder(nranks=2, mmap_dir=mmap_dir)
            # enough vertices to force several growth reallocations
            ranks = np.arange(300) % 2
            builder.add_vertices(0, ranks.astype(np.int8) * 0, cost=1.0,
                                 count=300)
            builder.add_dependencies(np.arange(299), np.arange(1, 300))
            return builder.freeze(validate=True)

        ram = build(None)
        mapped = build(tmp_path)
        assert ram.content_digest() == mapped.content_digest()


class TestArtifactMmapLoads:
    def test_mmap_load_graph_digest_parity(self, tmp_path):
        graph = build_running_example()
        graph.topological_order()  # persist the level structure too
        path = tmp_path / "g.npz"
        save_graph(graph, path)
        plain = load_graph(path)
        mapped = load_graph(path, mmap_mode="r")
        assert plain.content_digest() == mapped.content_digest()
        assert isinstance(mapped.kind, np.memmap)
        np.testing.assert_array_equal(mapped._topo_order, plain._topo_order)

    def test_mmap_mode_validation(self, tmp_path):
        with pytest.raises(ValueError, match="mmap_mode"):
            load_graph(tmp_path / "missing.npz", mmap_mode="r+")
        with pytest.raises(ValueError, match="graph_mmap_mode"):
            ArtifactStore(tmp_path, graph_mmap_mode="w")

    def test_store_mmap_loads_leak_no_fds(self, tmp_path):
        graph = build_running_example()
        store = ArtifactStore(tmp_path, graph_mmap_mode="r")
        key = graph.content_digest()
        store.put("graph", key, graph)

        def open_fds() -> int:
            return len(os.listdir("/proc/self/fd"))

        if not Path("/proc/self/fd").is_dir():
            pytest.skip("needs /proc")
        baseline = None
        for i in range(40):
            loaded = store.get("graph", key)
            assert loaded is not None
            assert loaded.content_digest() == key
            if i == 4:  # settle warm-up allocations first
                baseline = open_fds()
        assert open_fds() <= baseline
