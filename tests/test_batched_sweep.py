"""Tests for the batched L-sweep engine (``BatchedSweep``)."""

import numpy as np
import pytest

from repro import CSCS_TESTBED
from repro.core import (
    BatchedSweep,
    EnvelopeOverflowError,
    LatencyAnalyzer,
    batched_sweep_graphs,
    build_lp,
    parametric_analysis,
)
from repro.network.params import LogGPSParams
from repro.testing import build_random_dag, build_running_example, build_staircase

ZERO_OVERHEAD = LogGPSParams(L=0.0, o=0.0, g=0.0, G=0.0)


def cold_values(graph, params, Ls):
    lp = build_lp(graph, params)
    return np.array(
        [lp.solve_runtime(L=float(L), backend="highs").objective for L in Ls]
    )


class TestBatchedSweep:
    def test_matches_cold_solves_on_running_example(self, running_example, paper_params):
        sweep = BatchedSweep(build_lp(running_example, paper_params), l_min=0.0, l_max=2.0)
        Ls = np.linspace(0.0, 2.0, 100)
        np.testing.assert_allclose(
            sweep.values(Ls), cold_values(running_example, paper_params, Ls), atol=1e-6
        )
        assert sweep.num_solves < 10

    def test_breakpoints_match_parametric_engine(self, running_example, paper_params):
        sweep = BatchedSweep(build_lp(running_example, paper_params), l_min=0.0, l_max=2.0)
        reference = parametric_analysis(
            running_example, paper_params, l_min=0.0, l_max=2.0
        ).critical_latencies()
        assert sweep.breakpoints() == pytest.approx(reference, abs=1e-6)
        assert sweep.breakpoints() == pytest.approx([0.385], abs=1e-6)

    def test_staircase_breakpoints_and_values(self):
        k = 6
        graph = build_staircase(k)
        sweep = BatchedSweep(build_lp(graph, ZERO_OVERHEAD), l_min=0.0, l_max=float(k + 2))
        assert sweep.breakpoints() == pytest.approx(list(range(1, k)), abs=1e-6)
        Ls = np.linspace(0.0, k + 2, 80)
        np.testing.assert_allclose(
            sweep.values(Ls), cold_values(graph, ZERO_OVERHEAD, Ls), atol=1e-6
        )

    def test_sensitivities_match_lp_away_from_breakpoints(self, running_example, paper_params):
        sweep = BatchedSweep(build_lp(running_example, paper_params), l_min=0.0, l_max=2.0)
        lp = build_lp(running_example, paper_params)
        for L in (0.1, 0.2, 0.5, 1.0, 1.7):
            solution = lp.solve_runtime(L=L)
            assert sweep.slope(L) == pytest.approx(
                lp.latency_sensitivity(solution), abs=1e-6
            )

    @pytest.mark.parametrize("seed", range(6))
    def test_random_dags_match_cold_solves(self, seed):
        graph = build_random_dag(seed, nranks=4, rounds=12)
        params = LogGPSParams(L=0.5, o=0.2, g=0.0, G=0.001)
        sweep = BatchedSweep(build_lp(graph, params), l_min=0.5, l_max=20.0)
        Ls = np.linspace(0.5, 20.0, 40)
        np.testing.assert_allclose(
            sweep.values(Ls), cold_values(graph, params, Ls), atol=1e-6
        )

    def test_fig01_tolerance_zone_parameters(self):
        """The CSCS testbed configuration used by the Fig. 1 sweeps."""
        from repro.apps import lulesh

        graph = lulesh.build(4, params=CSCS_TESTBED, iterations=2)
        lp = build_lp(graph, CSCS_TESTBED)
        l_max = CSCS_TESTBED.L + 300.0
        sweep = BatchedSweep(lp, l_min=CSCS_TESTBED.L, l_max=l_max)
        Ls = CSCS_TESTBED.L + np.linspace(0.0, 100.0, 20)
        np.testing.assert_allclose(
            sweep.values(Ls), cold_values(graph, CSCS_TESTBED, Ls), atol=1e-6
        )
        # latency tolerance from the envelope == dedicated max-l LP
        baseline = sweep.value(CSCS_TESTBED.L)
        bound = 1.05 * baseline
        lp_reference = build_lp(graph, CSCS_TESTBED)
        lp_reference.set_latency_bound(CSCS_TESTBED.L)
        expected = lp_reference.solve_max_latency(bound).objective
        assert sweep.latency_tolerance(bound) == pytest.approx(expected, rel=1e-6)

    def test_envelope_overflow_raised(self):
        lp = build_lp(build_staircase(6), ZERO_OVERHEAD)
        sweep = BatchedSweep(lp, l_min=0.0, l_max=10.0, max_pieces=3)
        with pytest.raises(EnvelopeOverflowError):
            sweep.envelope

    def test_requires_global_latency_mode(self, running_example, paper_params):
        lp = build_lp(running_example, paper_params, latency_mode="per_pair")
        with pytest.raises(ValueError, match="global"):
            BatchedSweep(lp)

    def test_invalid_interval_rejected(self, running_example, paper_params):
        lp = build_lp(running_example, paper_params)
        with pytest.raises(ValueError):
            BatchedSweep(lp, l_min=2.0, l_max=1.0)


class TestVectorisedSlopes:
    """``PiecewiseLinear.slopes`` is parity-pinned against the scalar path."""

    def _assert_parity(self, envelope, xs):
        scalar = np.array([envelope.slope(float(x)) for x in xs])
        np.testing.assert_array_equal(envelope.slopes(xs), scalar)

    def test_staircase_including_exact_breakpoints(self):
        k = 6
        sweep = BatchedSweep(
            build_lp(build_staircase(k), ZERO_OVERHEAD), l_min=0.0, l_max=float(k + 2)
        )
        envelope = sweep.envelope
        bps = envelope.breakpoints()
        assert len(bps) == k - 1
        xs = np.concatenate([
            np.linspace(0.0, k + 2, 101),
            np.array(bps),
            np.array(bps) - 1e-12,  # within the scalar tolerance from the left
            np.array(bps) + 1e-12,
        ])
        self._assert_parity(envelope, xs)

    @pytest.mark.parametrize("seed", range(4))
    def test_random_dags(self, seed):
        graph = build_random_dag(seed, nranks=4, rounds=12)
        params = LogGPSParams(L=0.5, o=0.2, g=0.0, G=0.001)
        envelope = BatchedSweep(build_lp(graph, params), l_min=0.5, l_max=20.0).envelope
        xs = np.concatenate([np.linspace(0.5, 20.0, 77), np.array(envelope.breakpoints())])
        self._assert_parity(envelope, xs)

    def test_sensitivities_uses_the_vectorised_path(self, running_example, paper_params):
        sweep = BatchedSweep(build_lp(running_example, paper_params), l_min=0.0, l_max=2.0)
        Ls = np.linspace(0.0, 2.0, 50)
        np.testing.assert_array_equal(
            sweep.sensitivities(Ls), sweep.envelope.slopes(Ls)
        )

    def test_single_line_envelope(self):
        from repro.core.parametric import Line, PiecewiseLinear

        env = PiecewiseLinear(lines=[Line(2.0, 1.0)], lo=0.0, hi=10.0)
        self._assert_parity(env, np.linspace(0.0, 10.0, 11))


class TestBatchedSweepGraphs:
    def test_serial_and_parallel_agree(self, paper_params):
        graphs = [build_running_example(0.1), build_running_example(1.0), build_staircase(4)]
        serial = batched_sweep_graphs(graphs, ZERO_OVERHEAD, l_min=0.0, l_max=5.0)
        parallel = batched_sweep_graphs(
            graphs, ZERO_OVERHEAD, l_min=0.0, l_max=5.0, processes=2
        )
        Ls = np.linspace(0.0, 5.0, 30)
        for env_serial, env_parallel in zip(serial, parallel):
            np.testing.assert_allclose(
                env_serial.sample(Ls), env_parallel.sample(Ls), atol=1e-12
            )


    def test_schedule_batches_spec_accepted_serially(self):
        from repro.mpi import run_program
        from repro.schedgen import build_graph
        from repro.schedgen.builder import ProtocolConfig
        from repro.schedgen.columnar import ScheduleBatches

        def app(comm):
            for _ in range(2):
                comm.compute(5.0)
                comm.allreduce(1024)

        program = run_program(app, 4)
        params = LogGPSParams(L=1.0, o=0.5, g=0.0, G=0.001)
        graph = build_graph(program, protocol=ProtocolConfig.from_params(params))
        spec = ScheduleBatches.from_program(program)
        env_graph, env_spec = batched_sweep_graphs(
            [graph, spec], params, l_min=0.0, l_max=50.0
        )
        Ls = np.linspace(0.0, 50.0, 20)
        np.testing.assert_allclose(env_spec.sample(Ls), env_graph.sample(Ls), atol=1e-12)


class TestAnalyzerIntegration:
    def test_batched_engine_matches_lp_engine(self, running_example, paper_params):
        deltas = np.linspace(0.0, 2.0, 25)
        lp_curve = LatencyAnalyzer(running_example, paper_params).sensitivity_curve(deltas)
        batched_curve = LatencyAnalyzer(running_example, paper_params).sensitivity_curve(
            deltas, engine="batched"
        )
        np.testing.assert_allclose(batched_curve.runtime, lp_curve.runtime, atol=1e-6)
        np.testing.assert_allclose(batched_curve.l_ratio, lp_curve.l_ratio, atol=1e-6)

    def test_empty_sweep_matches_lp_engine(self, running_example, paper_params):
        analyzer = LatencyAnalyzer(running_example, paper_params)
        curve = analyzer.sensitivity_curve([], engine="batched")
        assert curve.runtime.size == 0
        assert curve.l_ratio.size == 0

    def test_unknown_engine_rejected(self, running_example, paper_params):
        analyzer = LatencyAnalyzer(running_example, paper_params)
        with pytest.raises(ValueError, match="engine"):
            analyzer.sensitivity_curve([0.0, 1.0], engine="warp")

    def test_batched_sweep_helper_defaults_to_baseline_latency(self):
        graph = build_running_example()
        params = LogGPSParams(L=0.25, o=0.0, g=0.0, G=0.005)
        sweep = LatencyAnalyzer(graph, params).batched_sweep(l_max=2.0)
        assert sweep.l_min == 0.25
        assert sweep.value(0.5) == pytest.approx(1.615)
