"""Tests for topologies, the HLogGP architecture graph and Netgauge fitting."""

import numpy as np
import pytest

from repro.network import (
    CSCS_TESTBED,
    ArchitectureGraph,
    Dragonfly,
    FatTree,
    WireLatencyModel,
    block_mapping,
    fit_loggp,
    measure,
    random_mapping,
    round_robin_mapping,
)
from repro.network.params import LogGPSParams
from repro.units import NS


class TestFatTree:
    def test_paper_configuration_capacity(self):
        ft = FatTree(k=16)
        assert ft.num_nodes == 16**3 // 4 == 1024
        assert ft.nodes_per_pod == 64

    def test_hop_counts(self):
        ft = FatTree(k=4)  # 16 nodes, 2 per edge switch, 4 per pod
        assert ft.hops(0, 0) == 0
        assert ft.hops(0, 1) == 1    # same edge switch
        assert ft.hops(0, 2) == 3    # same pod
        assert ft.hops(0, 5) == 5    # different pod

    def test_invalid_radix(self):
        with pytest.raises(ValueError):
            FatTree(k=3)
        with pytest.raises(ValueError):
            FatTree(k=4, tiers=2)

    def test_node_range_checked(self):
        with pytest.raises(ValueError):
            FatTree(k=4).hops(0, 99)


class TestDragonfly:
    def test_paper_configuration_capacity(self):
        df = Dragonfly(g=8, a=4, p=8)
        assert df.num_nodes == 256
        assert df.nodes_per_group == 32

    def test_hop_counts(self):
        df = Dragonfly(g=2, a=2, p=2)
        assert df.hops(0, 1) == 1   # same switch
        assert df.hops(0, 2) == 2   # same group
        assert df.hops(0, 4) == 3   # other group

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            Dragonfly(g=0, a=4, p=8)


class TestWireLatencyModel:
    def test_latency_formula(self):
        model = WireLatencyModel(wire_latency=0.274, switch_latency=0.108)
        assert model.latency(0) == pytest.approx(0.274)
        assert model.latency(3) == pytest.approx(4 * 0.274 + 3 * 0.108)
        with pytest.raises(ValueError):
            model.latency(-1)

    def test_dragonfly_has_lower_average_latency_than_fat_tree(self):
        """The Fig. 11 observation: fewer average hops under Dragonfly."""
        model = WireLatencyModel()
        ft = FatTree(k=16)
        df = Dragonfly(g=8, a=4, p=8)
        assert model.average_latency(df, 256) < model.average_latency(ft, 256)

    def test_pair_matrix_symmetric(self):
        model = WireLatencyModel()
        matrix = model.pair_latency_matrix(Dragonfly(g=2, a=2, p=2))
        assert np.allclose(matrix, matrix.T)
        assert np.all(np.diag(matrix) == 0)

    def test_requesting_too_many_nodes(self):
        with pytest.raises(ValueError):
            WireLatencyModel().pair_latency_matrix(Dragonfly(g=2, a=2, p=2), nodes=100)

    def test_with_wire_latency(self):
        model = WireLatencyModel().with_wire_latency(0.5)
        assert model.wire_latency == 0.5


class TestArchitectureGraph:
    def make_arch(self):
        return ArchitectureGraph(num_nodes=4, processes_per_node=2,
                                 intra_node_latency=0.3, inter_node_latency=3.0)

    def test_capacity_and_latencies(self):
        arch = self.make_arch()
        assert arch.capacity == 8
        assert arch.node_latency(1, 1) == pytest.approx(0.3)
        assert arch.node_latency(0, 2) == pytest.approx(3.0)
        assert arch.node_gap(0, 0) < arch.node_gap(0, 1)

    def test_latency_matrix_from_mapping(self):
        arch = self.make_arch()
        mapping = [0, 0, 1, 1]
        matrix = arch.latency_matrix(mapping)
        assert matrix[0, 1] == pytest.approx(0.3)
        assert matrix[0, 2] == pytest.approx(3.0)
        assert np.allclose(matrix, matrix.T)

    def test_overloaded_node_rejected(self):
        arch = self.make_arch()
        with pytest.raises(ValueError):
            arch.latency_matrix([0, 0, 0, 1])

    def test_from_topology(self):
        arch = ArchitectureGraph.from_topology(Dragonfly(g=2, a=2, p=2), num_nodes=4,
                                               processes_per_node=1)
        assert isinstance(arch.inter_node_latency, np.ndarray)
        assert arch.node_latency(0, 1) > arch.intra_node_latency

    def test_matrix_shape_checked(self):
        with pytest.raises(ValueError):
            ArchitectureGraph(num_nodes=4, inter_node_latency=np.zeros((2, 2)))

    def test_mappings(self):
        arch = self.make_arch()
        assert block_mapping(8, arch) == [0, 0, 1, 1, 2, 2, 3, 3]
        assert round_robin_mapping(8, arch) == [0, 1, 2, 3, 0, 1, 2, 3]
        rnd = random_mapping(8, arch, seed=3)
        assert sorted(rnd) == [0, 0, 1, 1, 2, 2, 3, 3]

    def test_mapping_capacity_checked(self):
        arch = self.make_arch()
        with pytest.raises(ValueError):
            block_mapping(9, arch)
        with pytest.raises(ValueError):
            round_robin_mapping(9, arch)
        with pytest.raises(ValueError):
            random_mapping(9, arch)


class TestNetgauge:
    def test_fit_recovers_linear_model(self):
        sizes = [1, 100, 1000, 10000]
        times = [5.0 + (s - 1) * 0.002 for s in sizes]
        fitted = fit_loggp(sizes, times)
        assert fitted.L == pytest.approx(5.0, abs=1e-9)
        assert fitted.G == pytest.approx(0.002, abs=1e-12)

    def test_fit_requires_two_samples(self):
        with pytest.raises(ValueError):
            fit_loggp([8], [1.0])

    def test_measure_recovers_simulator_parameters(self):
        params = LogGPSParams(L=3.0, o=5.0, G=0.018 * NS, S=256 * 1024)
        fitted = measure(params, sizes=(1, 1024, 8192, 65536), repetitions=4)
        assert fitted.L == pytest.approx(params.L, rel=1e-6)
        assert fitted.G == pytest.approx(params.G, rel=1e-6)

    def test_measure_with_different_latency(self):
        params = CSCS_TESTBED.with_latency(10.0)
        fitted = measure(params, sizes=(1, 4096, 32768), repetitions=2)
        assert fitted.L == pytest.approx(10.0, rel=1e-6)

    def test_pingpong_rejects_bad_size(self):
        from repro.network.netgauge import pingpong_times

        with pytest.raises(ValueError):
            pingpong_times(CSCS_TESTBED, [0])
