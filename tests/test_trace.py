"""Tests for trace records and the liballprof-like text format."""

import io

import pytest

from repro.trace import (
    MPIOp,
    RankTrace,
    Trace,
    TraceFormatError,
    TraceRecord,
    dump_trace,
    dumps_trace,
    load_trace,
    loads_trace,
)


def make_simple_trace() -> Trace:
    trace = Trace.empty(2, app="unit-test")
    trace.add_record(0, TraceRecord(op=MPIOp.INIT, tstart=0.0, tend=1.0))
    trace.add_record(0, TraceRecord(op=MPIOp.ISEND, tstart=2.0, tend=2.5, peer=1,
                                    size=64, tag=7, request=0))
    trace.add_record(0, TraceRecord(op=MPIOp.WAIT, tstart=2.5, tend=3.0, request=0))
    trace.add_record(0, TraceRecord(op=MPIOp.ALLREDUCE, tstart=3.0, tend=9.0, size=8,
                                    comm_size=2))
    trace.add_record(0, TraceRecord(op=MPIOp.FINALIZE, tstart=9.0, tend=9.5))
    trace.add_record(1, TraceRecord(op=MPIOp.INIT, tstart=0.0, tend=1.0))
    trace.add_record(1, TraceRecord(op=MPIOp.RECV, tstart=1.0, tend=4.0, peer=0,
                                    size=64, tag=7))
    trace.add_record(1, TraceRecord(op=MPIOp.ALLREDUCE, tstart=4.0, tend=9.0, size=8,
                                    comm_size=2))
    trace.add_record(1, TraceRecord(op=MPIOp.FINALIZE, tstart=9.0, tend=9.5))
    return trace


class TestTraceRecord:
    def test_duration(self):
        rec = TraceRecord(op=MPIOp.SEND, tstart=1.0, tend=3.5, peer=0)
        assert rec.duration == pytest.approx(2.5)

    def test_end_before_start_rejected(self):
        with pytest.raises(ValueError):
            TraceRecord(op=MPIOp.SEND, tstart=2.0, tend=1.0, peer=0)

    def test_p2p_requires_peer(self):
        with pytest.raises(ValueError):
            TraceRecord(op=MPIOp.RECV, tstart=0.0, tend=1.0)

    def test_collective_requires_comm_size(self):
        with pytest.raises(ValueError):
            TraceRecord(op=MPIOp.ALLREDUCE, tstart=0.0, tend=1.0, size=8)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            TraceRecord(op=MPIOp.SEND, tstart=0.0, tend=1.0, peer=1, size=-4)

    def test_classification_flags(self):
        send = TraceRecord(op=MPIOp.ISEND, tstart=0, tend=1, peer=1, request=0)
        coll = TraceRecord(op=MPIOp.BARRIER, tstart=0, tend=1, comm_size=4)
        info = TraceRecord(op=MPIOp.COMM_RANK, tstart=0, tend=0)
        assert send.is_p2p and send.is_nonblocking and not send.is_collective
        assert coll.is_collective and not coll.is_p2p
        assert info.is_noop


class TestRankTrace:
    def test_append_enforces_monotonic_time(self):
        rt = RankTrace(rank=0)
        rt.append(TraceRecord(op=MPIOp.INIT, tstart=0.0, tend=2.0))
        with pytest.raises(ValueError):
            rt.append(TraceRecord(op=MPIOp.BARRIER, tstart=1.0, tend=3.0, comm_size=2))

    def test_duration_and_len(self):
        rt = RankTrace(rank=0)
        assert rt.duration == 0.0
        rt.append(TraceRecord(op=MPIOp.INIT, tstart=1.0, tend=2.0))
        rt.append(TraceRecord(op=MPIOp.FINALIZE, tstart=5.0, tend=6.0))
        assert len(rt) == 2
        assert rt.duration == pytest.approx(5.0)

    def test_negative_rank_rejected(self):
        with pytest.raises(ValueError):
            RankTrace(rank=-1)


class TestTraceValidation:
    def test_valid_trace_passes(self):
        make_simple_trace().validate()

    def test_peer_out_of_range(self):
        trace = Trace.empty(2)
        trace.add_record(0, TraceRecord(op=MPIOp.SEND, tstart=0, tend=1, peer=5))
        with pytest.raises(ValueError, match="out of range"):
            trace.validate()

    def test_wait_on_unknown_request(self):
        trace = Trace.empty(1)
        trace.add_record(0, TraceRecord(op=MPIOp.WAIT, tstart=0, tend=1, request=3))
        with pytest.raises(ValueError, match="unknown request"):
            trace.validate()

    def test_dangling_request(self):
        trace = Trace.empty(1)
        trace.add_record(0, TraceRecord(op=MPIOp.IRECV, tstart=0, tend=1, peer=0, request=1))
        with pytest.raises(ValueError, match="never completed"):
            trace.validate()

    def test_summary_counts(self):
        summary = make_simple_trace().summary()
        assert summary["nranks"] == 2
        assert summary["num_records"] == 9
        assert summary["count[MPI_Allreduce]"] == 2
        assert summary["bytes_sent"] == 64

    def test_rank_accessor_bounds(self):
        trace = make_simple_trace()
        with pytest.raises(IndexError):
            trace.rank(2)


class TestTraceFormat:
    def test_round_trip_string(self):
        trace = make_simple_trace()
        text = dumps_trace(trace)
        parsed = loads_trace(text)
        assert parsed.nranks == trace.nranks
        assert parsed.num_records == trace.num_records
        assert parsed.meta == trace.meta
        for original, restored in zip(trace.ranks, parsed.ranks):
            for a, b in zip(original, restored):
                assert a.op is b.op
                assert a.tstart == pytest.approx(b.tstart, abs=1e-5)
                assert a.peer == b.peer and a.size == b.size and a.tag == b.tag

    def test_round_trip_file(self, tmp_path):
        trace = make_simple_trace()
        path = tmp_path / "trace.txt"
        dump_trace(trace, path)
        parsed = load_trace(path)
        assert parsed.num_records == trace.num_records

    def test_round_trip_stream(self):
        trace = make_simple_trace()
        buffer = io.StringIO()
        dump_trace(trace, buffer)
        buffer.seek(0)
        parsed = load_trace(buffer)
        assert parsed.num_records == trace.num_records

    def test_missing_header_rejected(self):
        with pytest.raises(TraceFormatError, match="header"):
            loads_trace("@rank 0\nMPI_Init:0:1\n")

    def test_unknown_operation_rejected(self):
        text = "# llamp-trace v1\n@rank 0\nMPI_Bogus:0:1\n"
        with pytest.raises(TraceFormatError, match="unknown MPI operation"):
            loads_trace(text)

    def test_unknown_field_rejected(self):
        text = "# llamp-trace v1\n@rank 0\nMPI_Send:0:1:peer=0:bogus=1\n"
        with pytest.raises(TraceFormatError, match="unknown field"):
            loads_trace(text)

    def test_record_before_rank_header_rejected(self):
        text = "# llamp-trace v1\nMPI_Init:0:1\n"
        with pytest.raises(TraceFormatError, match="before any"):
            loads_trace(text)

    def test_bad_timestamps_rejected(self):
        text = "# llamp-trace v1\n@rank 0\nMPI_Init:zero:1\n"
        with pytest.raises(TraceFormatError, match="bad timestamps"):
            loads_trace(text)

    def test_meta_lines_round_trip(self):
        trace = Trace.empty(1, experiment="fig9", scale="8")
        trace.add_record(0, TraceRecord(op=MPIOp.INIT, tstart=0, tend=1))
        parsed = loads_trace(dumps_trace(trace))
        assert parsed.meta == {"experiment": "fig9", "scale": "8"}


class TestLosslessFormat:
    """The dump→load round trip is exact: every float bit and meta byte."""

    def test_timestamps_beyond_fixed_precision(self):
        trace = Trace.empty(1)
        t0 = 0.1 + 0.2            # 0.30000000000000004 — not exact in %.6f
        t1 = 1.2345678901234567
        trace.add_record(0, TraceRecord(op=MPIOp.INIT, tstart=t0, tend=t1))
        rec = loads_trace(dumps_trace(trace)).rank(0)[0]
        assert rec.tstart == t0 and rec.tend == t1

    def test_meta_value_with_newlines_and_backslashes(self):
        meta = {"note": "line1\nline2\r\\raw\\", "cmd": "a=b=c"}
        trace = Trace(ranks=[RankTrace(rank=0)], meta=meta)
        assert loads_trace(dumps_trace(trace)).meta == meta

    def test_meta_value_whitespace_preserved(self):
        meta = {"pad": "  spaced out  ", "tab": "\tlead"}
        trace = Trace(ranks=[RankTrace(rank=0)], meta=meta)
        assert loads_trace(dumps_trace(trace)).meta == meta

    def test_meta_value_exotic_line_boundaries(self):
        # NEL / LS / PS are line boundaries for str.splitlines() but plain
        # characters for the format, which delimits lines with '\n' only
        meta = {"odd": "a\x85b c d"}
        trace = Trace(ranks=[RankTrace(rank=0)], meta=meta)
        assert loads_trace(dumps_trace(trace)).meta == meta

    def test_unrepresentable_meta_key_rejected_at_dump(self):
        for key in ("", "a=b", "a\nb", " padded "):
            trace = Trace(ranks=[RankTrace(rank=0)], meta={key: "v"})
            with pytest.raises(TraceFormatError, match="not representable"):
                dumps_trace(trace)

    def test_duplicate_meta_key_rejected_at_load(self):
        text = "# llamp-trace v1\n# meta k=1\n# meta k=2\n@rank 0\n"
        with pytest.raises(TraceFormatError, match="duplicate meta key"):
            loads_trace(text)

    def test_duplicate_rank_header_rejected(self):
        text = ("# llamp-trace v1\n@rank 0\nMPI_Init:0:1\n"
                "@rank 0\nMPI_Finalize:2:3\n")
        with pytest.raises(TraceFormatError, match="duplicate '@rank 0'"):
            loads_trace(text)

    def test_dangling_or_unknown_escape_rejected(self):
        with pytest.raises(TraceFormatError, match="dangling escape"):
            loads_trace("# llamp-trace v1\n# meta k=v\\\n@rank 0\n")
        with pytest.raises(TraceFormatError, match="unknown escape"):
            loads_trace("# llamp-trace v1\n# meta k=v\\x\n@rank 0\n")


try:
    from hypothesis import given, settings, strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is a tier-1 dependency
    HAVE_HYPOTHESIS = False


if HAVE_HYPOTHESIS:
    _META_KEYS = st.from_regex(r"[A-Za-z][A-Za-z0-9_.\-]{0,11}", fullmatch=True)
    _META_VALUES = st.text(max_size=40)
    _TIMES = st.floats(min_value=0.0, max_value=1e12,
                       allow_nan=False, allow_infinity=False)

    @st.composite
    def random_traces(draw) -> Trace:
        """Random valid traces: per-rank monotonic records + arbitrary meta."""
        nranks = draw(st.integers(1, 3))
        meta = draw(st.dictionaries(_META_KEYS, _META_VALUES, max_size=4))
        ranks = []
        for rank in range(nranks):
            n = draw(st.integers(0, 5))
            stamps = sorted(draw(st.lists(_TIMES, min_size=2 * n, max_size=2 * n)))
            rank_trace = RankTrace(rank=rank)
            for i in range(n):
                t0, t1 = stamps[2 * i], stamps[2 * i + 1]
                kind = draw(st.sampled_from(
                    ["init", "send", "recv", "barrier", "allreduce"]))
                if kind == "init":
                    rec = TraceRecord(op=MPIOp.INIT, tstart=t0, tend=t1)
                elif kind in ("send", "recv"):
                    rec = TraceRecord(
                        op=MPIOp.SEND if kind == "send" else MPIOp.RECV,
                        tstart=t0, tend=t1,
                        peer=draw(st.integers(0, nranks - 1)),
                        size=draw(st.integers(0, 1 << 20)),
                        tag=draw(st.integers(0, 999)),
                    )
                elif kind == "barrier":
                    rec = TraceRecord(op=MPIOp.BARRIER, tstart=t0, tend=t1,
                                      comm_size=draw(st.integers(2, 64)))
                else:
                    rec = TraceRecord(op=MPIOp.ALLREDUCE, tstart=t0, tend=t1,
                                      size=draw(st.integers(0, 1 << 20)),
                                      comm_size=draw(st.integers(2, 64)))
                rank_trace.append(rec)
            ranks.append(rank_trace)
        return Trace(ranks=ranks, meta=meta)

    class TestRoundTripProperty:
        @given(trace=random_traces())
        @settings(max_examples=150, deadline=None)
        def test_dump_load_is_identity(self, trace):
            parsed = loads_trace(dumps_trace(trace))
            assert parsed.meta == trace.meta
            assert parsed.nranks == trace.nranks
            for original, restored in zip(trace.ranks, parsed.ranks):
                assert restored.rank == original.rank
                assert list(restored) == list(original)
