"""Unit tests for the benchmark JSON emitter (:mod:`benchmarks._bench_utils`)."""

from __future__ import annotations

import json
import sys
from pathlib import Path

import numpy as np
import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "benchmarks"))

from _bench_utils import _json_default, emit_json, peak_rss_mb  # noqa: E402


class TestJsonDefault:
    def test_numpy_bool_serialises_as_json_bool(self):
        # np.bool_ is not an np.integer subclass; without the explicit branch
        # json.dump raises (or an int() fallback would change the JSON type)
        assert _json_default(np.bool_(True)) is True
        assert _json_default(np.bool_(False)) is False

    def test_numpy_scalars_and_arrays(self):
        assert _json_default(np.int64(7)) == 7
        assert _json_default(np.float64(0.5)) == 0.5
        assert _json_default(np.arange(3)) == [0, 1, 2]

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError, match="cannot serialise"):
            _json_default(object())

    def test_emit_json_round_trips_numpy_bools(self, tmp_path, monkeypatch):
        monkeypatch.setenv("BENCH_OUTPUT_DIR", str(tmp_path))
        path = emit_json("unit", {"ok": np.bool_(True), "speedup": np.float64(12.5)})
        record = json.loads(Path(path).read_text())
        assert record["bench"] == "unit"
        assert record["results"] == {"ok": True, "speedup": 12.5}

    def test_emit_json_records_peak_rss(self, tmp_path, monkeypatch):
        # the memory column lives beside "results", never inside the payload
        monkeypatch.setenv("BENCH_OUTPUT_DIR", str(tmp_path))
        record = json.loads(Path(emit_json("mem", {"x": 1})).read_text())
        assert "peak_rss_mb" in record
        assert record["peak_rss_mb"] is None or record["peak_rss_mb"] > 0
        assert record["results"] == {"x": 1}


class TestPeakRss:
    def test_positive_and_monotone(self):
        first = peak_rss_mb()
        if first is None:  # platform without /proc or resource
            return
        assert first > 0
        ballast = np.ones(4 * 1024 * 1024, dtype=np.uint8)  # 4 MiB dirty pages
        ballast[::4096] = 1
        second = peak_rss_mb()
        assert second is not None and second >= first
