"""Parity suite: the columnar schedule-generation engine vs the legacy one.

The contract is *bit identity*: for any program or trace, the columnar
engine must produce exactly the frozen graph the op-by-op engine produces —
same vertex ids and attribute columns, same edge order, same labels.  The
suite sweeps every collective algorithm, rendezvous on/off, random
point-to-point programs and trace-driven builds, and checks LP-objective
agreement through the compiled graph→LP engine on top.
"""

import numpy as np
import pytest

from repro.core.lp_builder import COMPILED_ENGINE_THRESHOLD, build_lp
from repro.mpi import run_program, trace_program
from repro.mpi.program import OpKind, Program, ProgramOp
from repro.network.params import LogGPSParams
from repro.schedgen import (
    COLLECTIVE_TAG_BASE,
    RENDEZVOUS_TAG_BASE,
    USER_TAG_LIMIT,
    CollectiveAlgorithms,
    ProtocolConfig,
    ScheduleGenerator,
    build_graph,
    resolve_builder_engine,
)
from repro.schedgen.builder import UnmatchedMessageError
from repro.schedgen.collectives import COLLECTIVE_TAG_LIMIT, next_collective_tag
from repro.testing import build_random_program

PARAMS = LogGPSParams(L=1.0, o=0.5, g=0.0, G=0.001)

_ARRAYS = ("kind", "rank", "cost", "size", "peer", "tag",
           "edge_src", "edge_dst", "edge_kind")


def assert_identical(legacy, columnar):
    """Bit-identity of two frozen graphs: columns, edge order, labels."""
    assert legacy.nranks == columnar.nranks
    for name in _ARRAYS:
        expected, actual = getattr(legacy, name), getattr(columnar, name)
        assert expected.dtype == actual.dtype, name
        assert np.array_equal(expected, actual), f"{name} differs"
    assert legacy.labels == columnar.labels


def both_engines(program, **kwargs):
    legacy = build_graph(program, builder_engine="legacy", **kwargs)
    columnar = build_graph(program, builder_engine="columnar", **kwargs)
    assert_identical(legacy, columnar)
    return legacy, columnar


class TestCollectiveParity:
    @pytest.mark.parametrize("nranks", [2, 3, 4, 5, 8, 16])
    @pytest.mark.parametrize("allreduce", ["recursive_doubling", "ring", "reduce_bcast"])
    def test_allreduce(self, nranks, allreduce):
        def app(comm):
            comm.compute(1.0)
            comm.allreduce(4096)
            comm.compute(0.5)
            comm.allreduce(128)

        both_engines(
            run_program(app, nranks),
            algorithms=CollectiveAlgorithms(allreduce=allreduce),
        )

    @pytest.mark.parametrize("nranks", [2, 3, 5, 8])
    @pytest.mark.parametrize(
        "algorithms",
        [
            CollectiveAlgorithms(),
            CollectiveAlgorithms(bcast="linear", allgather="recursive_doubling"),
        ],
    )
    def test_every_collective(self, nranks, algorithms):
        def app(comm):
            comm.compute(2.0)
            comm.bcast(256, root=comm.size - 1)
            comm.reduce(128, root=0)
            comm.allreduce(64)
            comm.allgather(64)
            comm.alltoall(32)
            comm.gather(64, root=0)
            comm.scatter(64, root=comm.size - 1)
            comm.barrier()

        both_engines(run_program(app, nranks), algorithms=algorithms)

    def test_single_rank_degenerates(self):
        program = Program.empty(1)
        program.rank(0).append(ProgramOp(kind=OpKind.COMPUTE, cost=1.0))
        program.rank(0).append(ProgramOp(kind=OpKind.ALLREDUCE, size=64))
        program.rank(0).append(ProgramOp(kind=OpKind.COMPUTE, cost=2.0))
        both_engines(program)

    def test_collective_sequence_mismatch_detected(self):
        program = Program.empty(2)
        program.rank(0).append(ProgramOp(kind=OpKind.ALLREDUCE, size=8))
        program.rank(1).append(ProgramOp(kind=OpKind.BARRIER))
        with pytest.raises(ValueError):
            build_graph(program, builder_engine="columnar")

    def test_collective_count_mismatch_detected(self):
        program = Program.empty(2)
        program.rank(0).append(ProgramOp(kind=OpKind.BARRIER))
        with pytest.raises(ValueError, match="collectives"):
            build_graph(program, builder_engine="columnar")


_PROTOCOLS = [
    None,
    ProtocolConfig(eager_threshold=1024),
    ProtocolConfig(eager_threshold=1024, expand_rendezvous=False),
    ProtocolConfig(eager_threshold=6000),
]


class TestPointToPointParity:
    @pytest.mark.parametrize("nranks", [2, 3, 4])
    @pytest.mark.parametrize("protocol", _PROTOCOLS)
    def test_blocking_and_nonblocking(self, nranks, protocol):
        def app(comm):
            for i in range(3):
                comm.compute(1.0)
                if comm.rank == 0:
                    comm.send(1, 5000, tag=i)
                    comm.recv(1, 64, tag=100 + i)
                elif comm.rank == 1:
                    comm.recv(0, 5000, tag=i)
                    comm.send(0, 64, tag=100 + i)
            r = comm.irecv((comm.rank + 1) % comm.size, 9000, tag=50)
            s = comm.isend((comm.rank - 1) % comm.size, 9000, tag=50)
            comm.compute(3.0)
            comm.waitall([r, s])

        both_engines(run_program(app, nranks), protocol=protocol)

    @pytest.mark.parametrize("protocol", _PROTOCOLS)
    def test_sendrecv_ring(self, protocol):
        # asymmetric sizes keep at most one rendezvous half per rank pair
        # (the legacy blocking sendrecv expansion deadlocks otherwise)
        def app(comm):
            sizes = [7000 if r % 2 == 0 else 300 for r in range(comm.size)]
            comm.sendrecv(
                (comm.rank + 1) % comm.size, sizes[comm.rank],
                (comm.rank - 1) % comm.size, sizes[(comm.rank - 1) % comm.size],
                send_tag=60, recv_tag=60,
            )

        both_engines(run_program(app, 4), protocol=protocol)

    def test_wait_immediately_after_isend(self):
        # the wait join's frontier already is the request target: the
        # duplicate edge must be suppressed identically in both engines
        def app(comm):
            peer = (comm.rank + 1) % comm.size
            prev = (comm.rank - 1) % comm.size
            r = comm.irecv(prev, 64, tag=1)
            s = comm.isend(peer, 64, tag=1)
            comm.wait(s)
            comm.wait(r)

        both_engines(run_program(app, 2))

    @pytest.mark.parametrize("seed", range(10))
    def test_random_programs(self, seed):
        program = build_random_program(seed, nranks=4, rounds=15)
        for protocol in (None, ProtocolConfig(eager_threshold=8192)):
            both_engines(program, protocol=protocol)

    def test_wait_on_unknown_request_raises_in_both(self):
        program = Program.empty(2)
        program.ranks[0].ops.append(ProgramOp(kind=OpKind.WAIT, request=7))
        for engine in ("legacy", "columnar"):
            with pytest.raises(ValueError, match="request"):
                build_graph(program, builder_engine=engine)

    def test_nonblocking_without_request_raises_in_both(self):
        # request defaults to -1; both engines must reject it, regardless of
        # the workload-size-driven auto policy
        program = Program.empty(2)
        program.ranks[0].ops.append(ProgramOp(kind=OpKind.ISEND, peer=1, size=8))
        program.ranks[0].ops.append(ProgramOp(kind=OpKind.WAITALL, requests=(-1,)))
        program.ranks[1].ops.append(ProgramOp(kind=OpKind.RECV, peer=0, size=8))
        for engine in ("legacy", "columnar"):
            with pytest.raises(ValueError, match="without request"):
                build_graph(program, builder_engine=engine)

    def test_request_reuse_raises_in_both(self):
        program = Program.empty(2)
        program.ranks[0].ops.append(ProgramOp(kind=OpKind.ISEND, peer=1, size=8, request=1))
        program.ranks[0].ops.append(ProgramOp(kind=OpKind.ISEND, peer=1, size=8, request=1))
        program.ranks[0].ops.append(ProgramOp(kind=OpKind.WAITALL, requests=(1,)))
        program.ranks[1].ops.append(ProgramOp(kind=OpKind.RECV, peer=0, size=8))
        program.ranks[1].ops.append(ProgramOp(kind=OpKind.RECV, peer=0, size=8))
        for engine in ("legacy", "columnar"):
            with pytest.raises(ValueError, match="reused"):
                build_graph(program, builder_engine=engine)

    def test_never_completed_request_raises_in_both(self):
        program = Program.empty(2)
        program.ranks[0].ops.append(ProgramOp(kind=OpKind.ISEND, peer=1, size=8, request=1))
        program.ranks[1].ops.append(ProgramOp(kind=OpKind.RECV, peer=0, size=8))
        for engine in ("legacy", "columnar"):
            with pytest.raises(ValueError, match="never completed"):
                build_graph(program, builder_engine=engine)

    def test_unmatched_messages_raise_in_both(self):
        program = Program.empty(2)
        program.rank(0).append(ProgramOp(kind=OpKind.SEND, peer=1, size=8, tag=0))
        for engine in ("legacy", "columnar"):
            with pytest.raises(UnmatchedMessageError):
                build_graph(program, builder_engine=engine)


class TestTraceParity:
    def _trace(self, nranks):
        def app(comm):
            for i in range(3):
                comm.compute(5.0)
                comm.allreduce(2048)
                peer = (comm.rank + 1) % comm.size
                prev = (comm.rank - 1) % comm.size
                r = comm.irecv(prev, 512, tag=i)
                s = comm.isend(peer, 512, tag=i)
                comm.compute(0.5)
                comm.waitall([r, s])
                if comm.rank == 0:
                    comm.send(1, 3000, tag=40 + i)
                elif comm.rank == 1:
                    comm.recv(0, 3000, tag=40 + i)

        return trace_program(run_program(app, nranks), PARAMS)

    @pytest.mark.parametrize("nranks", [2, 4, 5])
    @pytest.mark.parametrize(
        "protocol", [None, ProtocolConfig(eager_threshold=1024)]
    )
    def test_trace_builds_bit_identical(self, nranks, protocol):
        trace = self._trace(nranks)
        legacy = ScheduleGenerator(
            protocol=protocol, builder_engine="legacy"
        ).build_from_trace(trace)
        columnar = ScheduleGenerator(
            protocol=protocol, builder_engine="columnar"
        ).build_from_trace(trace)
        assert_identical(legacy, columnar)

    def test_min_compute_filter_matches(self):
        trace = self._trace(4)
        legacy = ScheduleGenerator(builder_engine="legacy").build_from_trace(
            trace, min_compute=1.0
        )
        columnar = ScheduleGenerator(builder_engine="columnar").build_from_trace(
            trace, min_compute=1.0
        )
        assert_identical(legacy, columnar)


class TestLPObjectiveAgreement:
    def test_compiled_lp_identical_objective(self):
        def app(comm):
            for i in range(4):
                comm.compute(1.0)
                comm.allreduce(2048)

        program = run_program(app, 8)
        legacy, columnar = both_engines(program)
        obj = {}
        for name, graph in (("legacy", legacy), ("columnar", columnar)):
            lp = build_lp(graph, PARAMS, engine="compiled")
            obj[name] = lp.solve_runtime(backend="highs").objective
        assert obj["legacy"] == pytest.approx(obj["columnar"], abs=1e-9)

    def test_random_program_compiled_vs_symbolic(self):
        program = build_random_program(3, nranks=3, rounds=10)
        _, columnar = both_engines(program)
        compiled = build_lp(columnar, PARAMS, engine="compiled")
        symbolic = build_lp(columnar, PARAMS, engine="symbolic")
        assert compiled.solve_runtime(backend="highs").objective == pytest.approx(
            symbolic.solve_runtime(backend="highs").objective, abs=1e-9
        )


class TestEnginePolicy:
    def test_auto_threshold_mirrors_lp_engine(self):
        assert resolve_builder_engine("auto", COMPILED_ENGINE_THRESHOLD - 1) == "legacy"
        assert resolve_builder_engine("auto", COMPILED_ENGINE_THRESHOLD) == "columnar"
        assert resolve_builder_engine("legacy", 10**9) == "legacy"
        assert resolve_builder_engine("columnar", 0) == "columnar"

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="builder engine"):
            resolve_builder_engine("magic", 10)
        with pytest.raises(ValueError, match="builder engine"):
            ScheduleGenerator(builder_engine="magic")
        program = Program.empty(2)
        program.rank(0).append(ProgramOp(kind=OpKind.BARRIER))
        program.rank(1).append(ProgramOp(kind=OpKind.BARRIER))
        with pytest.raises(ValueError, match="builder engine"):
            build_graph(program, builder_engine="magic")

    def test_auto_default_is_bit_identical_across_threshold(self):
        def small(comm):
            comm.barrier()

        def large(comm):
            for i in range(40):
                comm.compute(1.0)
                comm.allreduce(64)

        for app, nranks in ((small, 2), (large, 4)):
            program = run_program(app, nranks)
            auto = build_graph(program)
            legacy, _ = both_engines(program)
            assert_identical(legacy, auto)


class TestTagHygiene:
    @pytest.mark.parametrize("engine", ["legacy", "columnar"])
    @pytest.mark.parametrize("bad_tag", [-1, USER_TAG_LIMIT, USER_TAG_LIMIT + 5])
    def test_out_of_range_user_tag_rejected(self, engine, bad_tag):
        program = Program.empty(2)
        program.rank(0).append(ProgramOp(kind=OpKind.SEND, peer=1, size=8, tag=bad_tag))
        program.rank(1).append(ProgramOp(kind=OpKind.RECV, peer=0, size=8, tag=bad_tag))
        with pytest.raises(ValueError, match="user tag"):
            build_graph(program, builder_engine=engine)

    @pytest.mark.parametrize("engine", ["legacy", "columnar"])
    def test_sendrecv_recv_tag_checked(self, engine):
        program = Program.empty(2)
        for rank in range(2):
            program.rank(rank).append(ProgramOp(
                kind=OpKind.SENDRECV, peer=1 - rank, size=8, tag=0,
                recv_peer=1 - rank, recv_size=8, recv_tag=USER_TAG_LIMIT,
            ))
        with pytest.raises(ValueError, match="user tag"):
            build_graph(program, builder_engine=engine)

    @pytest.mark.parametrize("engine", ["legacy", "columnar"])
    def test_largest_user_tag_cannot_collide(self, engine):
        """The largest legal user tag keeps all synthetic tags in their regions."""
        tag = USER_TAG_LIMIT - 1

        def app(comm):
            if comm.rank == 0:
                comm.send(1, 1_000_000, tag=tag)
            else:
                comm.recv(0, 1_000_000, tag=tag)
            comm.allreduce(64)

        graph = build_graph(
            run_program(app, 2),
            protocol=ProtocolConfig(eager_threshold=1024),
            builder_engine=engine,
        )
        tags = np.asarray(graph.tag)
        user = tags[tags < USER_TAG_LIMIT]
        collective = tags[(tags >= COLLECTIVE_TAG_BASE) & (tags < COLLECTIVE_TAG_LIMIT)]
        rendezvous = tags[tags >= RENDEZVOUS_TAG_BASE]
        assert len(user) + len(collective) + len(rendezvous) == len(tags)
        assert rendezvous.max() < 2 * COLLECTIVE_TAG_BASE
        # the rendezvous handshake of the largest user tag stays above the
        # collective region even after the allreduce consumed its tag block
        assert rendezvous.min() >= RENDEZVOUS_TAG_BASE > collective.max()

    def test_regions_are_disjoint_by_construction(self):
        assert USER_TAG_LIMIT <= COLLECTIVE_TAG_BASE
        assert COLLECTIVE_TAG_LIMIT == RENDEZVOUS_TAG_BASE
        assert RENDEZVOUS_TAG_BASE + 4 * USER_TAG_LIMIT <= 2 * COLLECTIVE_TAG_BASE

    def test_collective_tag_space_exhaustion_raises(self):
        cursor = COLLECTIVE_TAG_LIMIT - 8
        with pytest.raises(ValueError, match="tag space exhausted"):
            next_collective_tag(cursor, nranks=64)

    def test_collective_tag_allocation_advances(self):
        tag, cursor = next_collective_tag(COLLECTIVE_TAG_BASE, nranks=8)
        assert tag == COLLECTIVE_TAG_BASE
        assert cursor == COLLECTIVE_TAG_BASE + 4 * 8 + 16


class TestGoalColumnarIngestion:
    def test_round_trip_preserves_graph(self):
        from repro.schedgen import dumps_goal, loads_goal

        def app(comm):
            comm.compute(1.0)
            comm.allreduce(256)
            if comm.rank == 0:
                comm.send(1, 64, tag=3)
            elif comm.rank == 1:
                comm.recv(0, 64, tag=3)

        graph = build_graph(run_program(app, 4))
        text = dumps_goal(graph)
        assert dumps_goal(loads_goal(text)) == text

    def test_unterminated_rank_block_rejected(self):
        from repro.schedgen import GoalFormatError, loads_goal

        with pytest.raises(GoalFormatError, match="unterminated"):
            loads_goal("num_ranks 1\n\nrank 0 {\n  l1: calc 100\n  l2: calc 200")

    def test_rank_header_inside_open_block_rejected(self):
        from repro.schedgen import GoalFormatError, loads_goal

        with pytest.raises(GoalFormatError, match="not closed"):
            loads_goal("num_ranks 2\n\nrank 0 {\n  l1: calc 100\nrank 1 {\n}\n")


class TestFusedBuild:
    """The analyze-only fused path vs freeze-then-validate.

    ``build_columnar_fused`` must attach a graph whose identity columns,
    labels, level structure and content digest are bit-identical to the
    frozen ones, with the levels coming from the chain-condensed engine
    instead of the frontier peel.
    """

    @staticmethod
    def _program(nranks=4):
        def app(comm):
            for it in range(3):
                chain = 40 if comm.rank == 0 else 2
                for _ in range(chain):
                    comm.compute(0.5)
                comm.allreduce(4096)
                nxt = (comm.rank + 1) % comm.size
                prv = (comm.rank - 1) % comm.size
                req = comm.irecv(prv, 128, tag=it)
                comm.send(nxt, 128, tag=it)
                comm.wait(req)

        return run_program(app, nranks)

    @staticmethod
    def _pair(program):
        from repro.schedgen.columnar import (
            batches_from_program,
            build_columnar,
            build_columnar_fused,
        )

        algorithms = CollectiveAlgorithms()
        protocol = ProtocolConfig.from_params(PARAMS)
        batches = batches_from_program(program)
        frozen = build_columnar(
            batches, program.nranks, algorithms=algorithms, protocol=protocol
        )
        fused = build_columnar_fused(
            batches, program.nranks, algorithms=algorithms, protocol=protocol
        )
        return frozen, fused

    def test_columns_and_digest_bit_identical(self):
        frozen, fused = self._pair(self._program())
        assert_identical(frozen, fused)
        assert fused.content_digest() == frozen.content_digest()

    def test_condensed_levels_match_frontier_peel(self):
        frozen, fused = self._pair(self._program())
        indptr, order = frozen.topo_levels()
        f_indptr, f_order = fused.topo_levels()
        assert np.array_equal(indptr, f_indptr)
        assert np.array_equal(order, f_order)

    def test_chain_condensed_levels_on_random_programs(self):
        from repro.schedgen.graph import chain_condensed_levels

        for seed in range(8):
            graph = build_graph(build_random_program(seed, nranks=4))
            indptr, order = graph.topo_levels()
            c_indptr, c_order = chain_condensed_levels(graph)
            assert np.array_equal(indptr, c_indptr), seed
            assert np.array_equal(order, c_order), seed

    def test_chain_condensed_levels_on_deep_contiguous_chain(self):
        # the run-collapse seed's home turf: one rank-0 chain of contiguous
        # vertex ids, everyone else nearly idle, levels ≈ vertices
        from repro.schedgen.graph import chain_condensed_levels

        def app(comm):
            for _ in range(2):
                chain = 500 if comm.rank == 0 else 1
                for _ in range(chain):
                    comm.compute(0.5)
                comm.allreduce(64)

        graph = build_graph(run_program(app, 4))
        indptr, order = graph.topo_levels()
        c_indptr, c_order = chain_condensed_levels(graph)
        assert np.array_equal(indptr, c_indptr)
        assert np.array_equal(order, c_order)

    def test_chain_condensed_levels_detect_merge_cycle(self):
        # the condensed engine is no general cycle detector, but a cycle
        # through merge points must still surface as an undrained wave
        from repro.schedgen import GraphValidationError
        from repro.schedgen.graph import (
            ExecutionGraph,
            VertexKind,
            EdgeKind,
            chain_condensed_levels,
        )

        n = 3
        columns = {
            "kind": np.full(n, int(VertexKind.CALC), dtype=np.int8),
            "rank": np.zeros(n, dtype=np.int32),
            "cost": np.ones(n, dtype=np.float64),
            "size": np.zeros(n, dtype=np.int64),
            "peer": np.full(n, -1, dtype=np.int32),
            "tag": np.zeros(n, dtype=np.int64),
            # 0 and 1 are mutual merge points (in-degree 2), fed by source 2
            "edge_src": np.array([2, 1, 2, 0], dtype=np.int64),
            "edge_dst": np.array([0, 0, 1, 1], dtype=np.int64),
            "edge_kind": np.full(4, int(EdgeKind.DEP), dtype=np.int8),
        }
        graph = ExecutionGraph.from_columns(1, columns, validate=False)
        with pytest.raises(GraphValidationError, match="cycle"):
            chain_condensed_levels(graph)


class TestScheduleBatches:
    def test_graph_cached_per_protocol(self):
        from repro.schedgen.columnar import ScheduleBatches

        program = TestFusedBuild._program()
        spec = ScheduleBatches.from_program(program)
        first = spec.graph_for(PARAMS)
        assert spec.graph_for(PARAMS) is first
        # a different eager threshold is a different protocol: fresh graph
        other = LogGPSParams(L=1.0, o=0.5, g=0.0, G=0.001, S=64)
        assert spec.graph_for(other) is not first

    def test_digest_equals_frozen_graph(self):
        from repro.schedgen.columnar import ScheduleBatches

        program = TestFusedBuild._program()
        frozen, _ = TestFusedBuild._pair(program)
        spec = ScheduleBatches.from_program(program)
        assert spec.content_digest(PARAMS) == frozen.content_digest()

    def test_explicit_protocol_wins(self):
        from repro.schedgen.columnar import ScheduleBatches

        protocol = ProtocolConfig(eager_threshold=64, expand_rendezvous=True)
        program = TestFusedBuild._program()
        spec = ScheduleBatches.from_program(program, protocol=protocol)
        assert spec.resolve_protocol(PARAMS) is protocol
        # the 128-byte ring messages go rendezvous under the 64-byte
        # threshold, so this schedule differs from the eager one
        eager = ScheduleBatches.from_program(program)
        assert spec.content_digest(PARAMS) != eager.content_digest(PARAMS)

    def test_mismatched_batch_count_rejected(self):
        from repro.schedgen.columnar import ScheduleBatches, batches_from_program

        program = TestFusedBuild._program()
        spec = ScheduleBatches(batches_from_program(program), nranks=7)
        with pytest.raises(ValueError, match="batches"):
            spec.graph_for(PARAMS)
