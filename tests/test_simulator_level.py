"""Parity suite: the level-synchronous simulation engine vs the legacy walk.

The contract is *timestamp identity* (atol 1e-9; in practice bit-exact):
for any graph, injector and noise model, the level engine
(:mod:`repro.simulator.columnar`) must produce the per-vertex start/end
times, makespan and per-rank finish times of the per-vertex legacy
simulator.  The suite sweeps every injector × noise model over random DAGs
and every collective algorithm, pins the batched ``simulate_sweep`` against
per-point runs, and anchors the engine against the LP oracle through the
``forward_pass == LP optimum`` property.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import analyze_critical_path, build_lp
from repro.core.graph_analysis import forward_pass
from repro.mpi import run_program
from repro.network.params import LogGPSParams
from repro.schedgen import CollectiveAlgorithms, build_graph
from repro.schedgen.graph import GraphBuilder
from repro.simulator import (
    INJECTOR_NAMES,
    GaussianNoise,
    LogGOPSSimulator,
    NoNoise,
    OSJitterNoise,
    ReceiverProgressInjector,
    make_injector,
    resolve_sim_engine,
    simulate,
    simulate_sweep,
)
from repro.testing import build_random_dag

PARAMS = LogGPSParams(L=2.0, o=1.0, g=0.7, G=0.001)

NOISE_FACTORIES = {
    "none": lambda: NoNoise(),
    "gaussian": lambda: GaussianNoise(sigma=0.05, seed=11),
    "jitter": lambda: OSJitterNoise(probability=0.25, spike=13.0, seed=7),
}


def assert_identical(a, b):
    assert a.makespan == pytest.approx(b.makespan, abs=1e-9)
    np.testing.assert_allclose(a.start, b.start, atol=1e-9)
    np.testing.assert_allclose(a.end, b.end, atol=1e-9)
    np.testing.assert_allclose(a.rank_finish, b.rank_finish, atol=1e-9)


def both_engines(graph, params=PARAMS, *, injector_name="ideal", delta=7.0,
                 noise_name="none"):
    legacy = simulate(
        graph, params, injector=make_injector(injector_name, delta),
        noise=NOISE_FACTORIES[noise_name](), sim_engine="legacy",
    )
    level = simulate(
        graph, params, injector=make_injector(injector_name, delta),
        noise=NOISE_FACTORIES[noise_name](), sim_engine="level",
    )
    assert_identical(legacy, level)
    return legacy, level


class TestEngineParity:
    @pytest.mark.parametrize("injector_name", INJECTOR_NAMES)
    @pytest.mark.parametrize("noise_name", sorted(NOISE_FACTORIES))
    @pytest.mark.parametrize("seed", range(4))
    def test_random_dags(self, injector_name, noise_name, seed):
        graph = build_random_dag(seed, nranks=4, rounds=12)
        both_engines(graph, injector_name=injector_name, noise_name=noise_name)

    @pytest.mark.parametrize("injector_name", INJECTOR_NAMES)
    @pytest.mark.parametrize(
        "allreduce", ["recursive_doubling", "ring", "reduce_bcast"]
    )
    def test_collective_algorithms(self, injector_name, allreduce):
        def app(comm):
            for _ in range(3):
                comm.compute(1.0)
                comm.allreduce(4096)

        graph = build_graph(
            run_program(app, 8),
            algorithms=CollectiveAlgorithms(allreduce=allreduce),
        )
        both_engines(graph, injector_name=injector_name, noise_name="gaussian")

    @pytest.mark.parametrize("injector_name", INJECTOR_NAMES)
    def test_every_collective(self, injector_name):
        def app(comm):
            comm.compute(2.0)
            comm.bcast(256, root=comm.size - 1)
            comm.reduce(128, root=0)
            comm.allreduce(64)
            comm.allgather(64)
            comm.alltoall(32)
            comm.barrier()

        graph = build_graph(run_program(app, 5))
        both_engines(graph, injector_name=injector_name, noise_name="jitter")

    def test_nonblocking_program(self):
        def app(comm):
            nxt = (comm.rank + 1) % comm.size
            prv = (comm.rank - 1) % comm.size
            for i in range(4):
                r = comm.irecv(prv, 512, tag=i)
                s = comm.isend(nxt, 512, tag=i)
                comm.compute(1.5)
                comm.waitall([r, s])

        graph = build_graph(run_program(app, 6))
        for injector_name in INJECTOR_NAMES:
            both_engines(graph, injector_name=injector_name)

    def test_same_level_sends_serialise_on_the_nic(self):
        # two unchained sends of one rank share a level: the NIC gap must
        # serialise them in vertex-id order in both engines
        builder = GraphBuilder(nranks=2)
        s0 = builder.add_send(0, 1, 64, tag=0)
        s1 = builder.add_send(0, 1, 64, tag=1)
        r0 = builder.add_recv(1, 0, 64, tag=0)
        r1 = builder.add_recv(1, 0, 64, tag=1)
        builder.add_comm_edge(s0, r0)
        builder.add_comm_edge(s1, r1)
        graph = builder.freeze()
        params = LogGPSParams(L=1.0, o=0.2, g=5.0, G=0.0)
        legacy, level = both_engines(graph, params, delta=0.0)
        # the second send waited for the gap
        assert level.start[s1] == pytest.approx(legacy.start[s0] + params.g)

    def test_same_level_messages_share_one_progress_thread(self):
        # two messages for one rank arriving in the same level: strategy C
        # serialises them through the rank's single progress thread, in the
        # shared deterministic (vertex-id) order
        builder = GraphBuilder(nranks=3)
        s0 = builder.add_send(0, 2, 8, tag=0)
        s1 = builder.add_send(1, 2, 8, tag=1)
        r0 = builder.add_recv(2, 0, 8, tag=0)
        r1 = builder.add_recv(2, 1, 8, tag=1)
        builder.add_comm_edge(s0, r0)
        builder.add_comm_edge(s1, r1)
        graph = builder.freeze()
        legacy, level = both_engines(
            graph, injector_name="receiver_progress", delta=9.0
        )
        # the second release queued behind the first: 2 * delta apart
        assert level.end[r1] - level.end[r0] == pytest.approx(9.0)

    def test_track_nic_false_matches_forward_pass(self):
        graph = build_random_dag(3, nranks=3, rounds=10)
        completion = forward_pass(graph, PARAMS)
        cp = analyze_critical_path(graph, PARAMS)
        assert cp.runtime == pytest.approx(float(completion.max()))


class TestSweepParity:
    DELTAS = (0.0, 3.0, 11.0, 40.0)

    @pytest.mark.parametrize("injector_name", INJECTOR_NAMES)
    @pytest.mark.parametrize("noise_name", sorted(NOISE_FACTORIES))
    def test_sweep_equals_per_point(self, injector_name, noise_name):
        graph = build_random_dag(1, nranks=4, rounds=12)
        sweep = simulate_sweep(
            graph, PARAMS, self.DELTAS, injector=injector_name,
            noise=NOISE_FACTORIES[noise_name](),
        )
        for i, delta in enumerate(self.DELTAS):
            point = simulate(
                graph, PARAMS, injector=make_injector(injector_name, delta),
                noise=NOISE_FACTORIES[noise_name](), sim_engine="legacy",
            )
            assert sweep.makespan[i] == pytest.approx(point.makespan, abs=1e-9)
            np.testing.assert_allclose(
                sweep.rank_finish[i], point.rank_finish, atol=1e-9
            )

    def test_sweep_legacy_engine_matches(self):
        graph = build_random_dag(2, nranks=3, rounds=8)
        level = simulate_sweep(graph, PARAMS, self.DELTAS)
        legacy = simulate_sweep(graph, PARAMS, self.DELTAS, sim_engine="legacy")
        np.testing.assert_allclose(level.makespan, legacy.makespan, atol=1e-9)
        assert level.runtimes is level.makespan

    def test_sweep_rejects_unknown_names(self):
        graph = build_random_dag(0)
        with pytest.raises(ValueError, match="unknown injector"):
            simulate_sweep(graph, PARAMS, [0.0], injector="nope")
        with pytest.raises(ValueError, match="unknown sim_engine"):
            simulate_sweep(graph, PARAMS, [0.0], sim_engine="nope")

    def test_empty_delta_list(self):
        graph = build_random_dag(0)
        sweep = simulate_sweep(graph, PARAMS, [])
        assert sweep.makespan.shape == (0,)


class TestEnginePolicy:
    def test_auto_threshold_mirrors_lp_engine(self):
        from repro.core.lp_builder import COMPILED_ENGINE_THRESHOLD

        assert resolve_sim_engine("auto", COMPILED_ENGINE_THRESHOLD - 1) == "legacy"
        assert resolve_sim_engine("auto", COMPILED_ENGINE_THRESHOLD) == "level"
        assert resolve_sim_engine("legacy", 10**9) == "legacy"
        assert resolve_sim_engine("level", 0) == "level"

    def test_unknown_engine_rejected(self):
        graph = build_random_dag(0)
        with pytest.raises(ValueError, match="sim engine"):
            simulate(graph, PARAMS, sim_engine="magic")

    def test_auto_is_identical_across_threshold(self):
        def small(comm):
            comm.barrier()

        def large(comm):
            for _ in range(20):
                comm.compute(1.0)
                comm.allreduce(64)

        for app, nranks in ((small, 2), (large, 4)):
            graph = build_graph(run_program(app, nranks))
            auto = simulate(graph, PARAMS)
            legacy = simulate(graph, PARAMS, sim_engine="legacy")
            assert_identical(auto, legacy)


class TestBatchProtocols:
    def test_receiver_progress_batch_equals_scalar_sequence(self):
        ranks = np.array([0, 1, 0, 0, 2, 1, 0], dtype=np.int64)
        arrivals = np.array([5.0, 1.0, 2.0, 9.0, 4.0, 1.5, 9.0])
        batch = ReceiverProgressInjector(3.0)
        scalar = ReceiverProgressInjector(3.0)
        got = batch.release_times(ranks, arrivals)
        expected = [
            scalar.release_time(int(r), float(a)) for r, a in zip(ranks, arrivals)
        ]
        np.testing.assert_allclose(got, expected)
        assert batch._busy_until == scalar._busy_until

    @pytest.mark.parametrize("noise_name", ["gaussian", "jitter"])
    def test_perturb_many_is_stream_equivalent(self, noise_name):
        durations = np.array([1.0, 0.0, 2.5, -1.0, 3.0, 0.0, 7.0])
        batch = NOISE_FACTORIES[noise_name]()
        scalar = NOISE_FACTORIES[noise_name]()
        got = batch.perturb_many(durations)
        expected = [scalar.perturb(float(d)) for d in durations]
        np.testing.assert_allclose(got, expected)

    def test_scalar_only_protocols_still_work(self):
        # third-party injectors/noise models that implement only the scalar
        # protocol run through the level engine's adapter shims
        class ScalarInjector:
            delta = 2.0

            def reset(self):
                pass

            def send_extra_delay(self, src_rank):
                return 0.5

            def release_time(self, dst_rank, arrival):
                return arrival + self.delta

        class ScalarNoise:
            def reset(self):
                pass

            def perturb(self, duration):
                return duration * 2.0

        graph = build_random_dag(4, nranks=3, rounds=8)
        legacy = simulate(
            graph, PARAMS, injector=ScalarInjector(), noise=ScalarNoise(),
            sim_engine="legacy",
        )
        level = simulate(
            graph, PARAMS, injector=ScalarInjector(), noise=ScalarNoise(),
            sim_engine="level",
        )
        assert_identical(legacy, level)


class TestNoiseResetRegression:
    """``reset()`` must re-seed: back-to-back runs are reproducible."""

    @pytest.mark.parametrize("noise_name", ["gaussian", "jitter"])
    @pytest.mark.parametrize("engine", ["legacy", "level"])
    def test_back_to_back_runs_identical(self, noise_name, engine):
        graph = build_random_dag(5, nranks=3, rounds=10)
        noise = NOISE_FACTORIES[noise_name]()
        first = simulate(graph, PARAMS, noise=noise, sim_engine=engine)
        second = simulate(graph, PARAMS, noise=noise, sim_engine=engine)
        assert first.makespan == pytest.approx(second.makespan, abs=0.0)
        np.testing.assert_array_equal(first.end, second.end)

    def test_simulator_object_reuse_reproducible(self):
        graph = build_random_dag(6, nranks=3, rounds=10)
        sim = LogGOPSSimulator(
            graph, PARAMS, noise=OSJitterNoise(probability=0.5, spike=5.0, seed=3)
        )
        assert sim.run().makespan == pytest.approx(sim.run().makespan, abs=0.0)


class TestCriticalPathTies:
    def test_tie_breaks_to_lowest_edge_id(self):
        # two predecessors finish at exactly the same time: the backtrack
        # must pick the one reached through the lowest edge id
        builder = GraphBuilder(nranks=2)
        a = builder.add_calc(0, 5.0)
        b = builder.add_calc(1, 5.0)
        join = builder.add_calc(0, 1.0)
        builder.add_dependency(a, join)   # edge 0
        builder.add_dependency(b, join)   # edge 1
        graph = builder.freeze()
        params = LogGPSParams(L=0.0, o=0.0, g=0.0, G=0.0)
        result = simulate(graph, params, sim_engine="legacy")
        assert result.end[a] == result.end[b]
        assert result.critical_path(graph) == [a, join]

    def test_comm_tie_breaks_to_lowest_edge_id(self):
        # two messages arriving at the same instant at one join
        builder = GraphBuilder(nranks=3)
        s0 = builder.add_send(0, 2, 8, tag=0)
        s1 = builder.add_send(1, 2, 8, tag=1)
        r0 = builder.add_recv(2, 0, 8, tag=0)
        r1 = builder.add_recv(2, 1, 8, tag=1)
        join = builder.add_calc(2, 1.0)
        builder.add_comm_edge(s0, r0)
        builder.add_comm_edge(s1, r1)
        builder.add_dependency(r0, join)
        builder.add_dependency(r1, join)
        graph = builder.freeze()
        params = LogGPSParams(L=3.0, o=0.5, g=0.0, G=0.0)
        result = simulate(graph, params, sim_engine="legacy")
        assert result.end[r0] == result.end[r1]
        path = result.critical_path(graph)
        assert path == [s0, r0, join]
        assert result.critical_path_messages(graph) == 1


# ---------------------------------------------------------------------------
# LP-oracle anchor (Hypothesis): the level engine *is* the forward pass
# ---------------------------------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    L=st.floats(min_value=0.0, max_value=20.0),
    o=st.floats(min_value=0.0, max_value=5.0),
)
def test_level_engine_forward_pass_equals_lp_optimum(seed, L, o):
    graph = build_random_dag(seed, nranks=3, rounds=8)
    params = LogGPSParams(L=L, o=o, g=0.0, G=0.001)
    completion = forward_pass(graph, params)
    lp_runtime = build_lp(graph, params).solve_runtime().objective
    assert float(completion.max()) == pytest.approx(lp_runtime, rel=1e-7, abs=1e-7)
    # and the level engine with the NIC resource active agrees when g = 0
    # only through the per-rank program-order chains — pin full parity too
    level = simulate(graph, params, sim_engine="level")
    legacy = simulate(graph, params, sim_engine="legacy")
    np.testing.assert_allclose(level.end, legacy.end, atol=1e-9)


class TestSweepGrid:
    """The 2-D ``(injector × ΔL)`` grid vs the per-injector sweep loop."""

    DELTAS = np.array([0.0, 3.0, 11.0, 40.0])

    @staticmethod
    def _graph(nranks=4):
        def app(comm):
            for it in range(3):
                comm.compute(20.0)
                nxt = (comm.rank + 1) % comm.size
                prv = (comm.rank - 1) % comm.size
                req = comm.irecv(prv, 512, tag=it)
                comm.send(nxt, 512, tag=it)
                comm.wait(req)
                comm.allreduce(256)

        return build_graph(run_program(app, nranks))

    def test_rows_match_per_injector_sweeps(self):
        from repro.simulator import simulate_sweep_grid

        graph = self._graph()
        grid = simulate_sweep_grid(
            graph, PARAMS, self.DELTAS, injectors=INJECTOR_NAMES
        )
        for i, name in enumerate(INJECTOR_NAMES):
            sweep = simulate_sweep(graph, PARAMS, self.DELTAS, injector=name)
            np.testing.assert_array_equal(grid.makespan[i], sweep.makespan, err_msg=name)
            np.testing.assert_array_equal(
                grid.rank_finish[i], sweep.rank_finish, err_msg=name
            )

    def test_sweep_slice_round_trips(self):
        from repro.simulator import simulate_sweep_grid

        graph = self._graph()
        grid = simulate_sweep_grid(
            graph, PARAMS, self.DELTAS, injectors=("ideal", "sender_delay")
        )
        sweep = grid.sweep("sender_delay")
        assert sweep.injector == "sender_delay"
        np.testing.assert_array_equal(sweep.deltas, self.DELTAS)
        np.testing.assert_array_equal(sweep.makespan, grid.makespan[1])

    def test_uniform_latency_matrix_matches_scalar_latency(self):
        from repro.simulator import simulate_sweep_grid

        graph = self._graph()
        matrix = np.full((graph.nranks, graph.nranks), PARAMS.L)
        scalar = simulate_sweep_grid(graph, PARAMS, self.DELTAS)
        matrixed = simulate_sweep_grid(
            graph, PARAMS, self.DELTAS, latency_matrices=matrix
        )
        np.testing.assert_allclose(matrixed.makespan, scalar.makespan, atol=1e-9)
        np.testing.assert_allclose(matrixed.rank_finish, scalar.rank_finish, atol=1e-9)

    def test_per_point_matrices_equal_wire_deltas(self):
        # point k simulated under base latency L + DELTAS[k] must equal the
        # ideal injector sweeping DELTAS over the scalar L
        from repro.simulator import simulate_sweep_grid

        graph = self._graph()
        P = graph.nranks
        stack = np.stack(
            [np.full((P, P), PARAMS.L + d) for d in self.DELTAS]
        )
        per_point = simulate_sweep_grid(
            graph, PARAMS, np.zeros(len(self.DELTAS)), latency_matrices=stack
        )
        swept = simulate_sweep_grid(graph, PARAMS, self.DELTAS)
        np.testing.assert_allclose(per_point.makespan, swept.makespan, atol=1e-9)

    def test_track_nic_false_matches_forward_pass(self):
        from repro.simulator import simulate_sweep_grid

        graph = self._graph()
        grid = simulate_sweep_grid(
            graph, PARAMS, [0.0], injectors=("ideal",), track_nic=False
        )
        completion = forward_pass(graph, PARAMS)
        assert grid.makespan[0, 0] == pytest.approx(float(completion.max()), abs=1e-9)

    def test_unknown_injector_rejected(self):
        from repro.simulator import simulate_sweep_grid

        with pytest.raises(ValueError, match="injector"):
            simulate_sweep_grid(self._graph(), PARAMS, [0.0], injectors=("warp",))

    def test_bad_matrix_shape_rejected(self):
        from repro.simulator import simulate_sweep_grid

        graph = self._graph()
        with pytest.raises(ValueError, match="latency_matrices"):
            simulate_sweep_grid(
                graph, PARAMS, [0.0, 1.0], latency_matrices=np.zeros((2, 3))
            )

    def test_empty_grid_shapes(self):
        from repro.simulator import simulate_sweep_grid

        graph = self._graph()
        grid = simulate_sweep_grid(graph, PARAMS, [], injectors=INJECTOR_NAMES)
        assert grid.makespan.shape == (len(INJECTOR_NAMES), 0)
        assert grid.rank_finish.shape == (len(INJECTOR_NAMES), 0, graph.nranks)
