"""Tests for unit conversion helpers."""

import pytest

from repro import units


def test_constants_are_consistent():
    assert units.US == 1.0
    assert units.NS == pytest.approx(1e-3)
    assert units.MS == pytest.approx(1e3)
    assert units.SEC == pytest.approx(1e6)
    assert units.MIB == 1024 * units.KIB
    assert units.GIB == 1024 * units.MIB


def test_us_seconds_round_trip():
    assert units.us_to_seconds(2_500_000.0) == pytest.approx(2.5)
    assert units.seconds_to_us(2.5) == pytest.approx(2_500_000.0)
    assert units.seconds_to_us(units.us_to_seconds(123.456)) == pytest.approx(123.456)


def test_bandwidth_to_gap_56gbit():
    gap = units.bandwidth_to_gap(56.0)
    # 56 Gbit/s = 7 GB/s -> 1/7e9 s per byte ~ 0.000143 ns/B
    assert gap == pytest.approx(0.143 * units.NS, rel=1e-3)


def test_gap_to_bandwidth_round_trip():
    for bw in (1.0, 10.0, 56.0, 100.0, 400.0):
        assert units.gap_to_bandwidth(units.bandwidth_to_gap(bw)) == pytest.approx(bw)


def test_bandwidth_to_gap_rejects_non_positive():
    with pytest.raises(ValueError):
        units.bandwidth_to_gap(0.0)
    with pytest.raises(ValueError):
        units.gap_to_bandwidth(-1.0)
