"""Tests for the single-traversal forward envelope engine.

The contract under test: ``forward_envelope`` produces the *identical*
``PiecewiseLinear`` envelope — values, slopes and breakpoints to 1e-6 —
as the :class:`ParametricLP` tangent search, whenever the affinity
contract documented in ``src/repro/lp/README.md`` ("Envelope engines")
holds.  Non-affine LPs (per-pair HLogGP variables, moved symbolic
bounds) must make ``envelope_engine="forward"`` raise and
``envelope_engine="auto"`` fall back to the LP oracle silently.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.artifacts import ArtifactStore
from repro.core import (
    ENVELOPE_ENGINES,
    BatchedSweep,
    EnvelopeOverflowError,
    LatencyAnalyzer,
    batched_sweep_graphs,
    build_lp,
    critical_latency_curve,
    find_critical_latencies,
    forward_envelope,
    forward_incompatibility,
    parametric_analysis,
    resolve_envelope_engine,
)
from repro.core.envelope import forward_supports_modes
from repro.network.params import LogGPSParams
from repro.schedgen import build_graph
from repro.testing import (
    build_random_dag,
    build_random_program,
    build_running_example,
    build_staircase,
)

PARAMS = LogGPSParams(L=1.0, o=0.1, g=0.0, G=0.001)
ZERO_OVERHEAD = LogGPSParams(L=1.0, o=0.0, g=0.0, G=0.0)


def assert_envelopes_identical(actual, expected, *, atol=1e-6):
    """Same piece count, and per-piece slopes/intercepts/values agree."""
    assert len(actual.lines) == len(expected.lines)
    for a, b in zip(actual.lines, expected.lines):
        assert a.slope == pytest.approx(b.slope, abs=atol)
        assert a.intercept == pytest.approx(b.intercept, abs=atol)
    xs = np.linspace(actual.lo, actual.hi, 97)
    np.testing.assert_allclose(actual.sample(xs), expected.sample(xs), atol=atol)
    np.testing.assert_allclose(
        actual.breakpoints(), expected.breakpoints(), atol=atol
    )


def assert_envelopes_equivalent(actual, expected, *, atol=1e-6):
    """Pointwise parity, robust to solver-noise degeneracies.

    The LP oracle may keep a zero-width piece when two path costs tie to
    within solver noise (~1e-15); the forward engine resolves the tie
    exactly and drops it.  The *functions* still agree everywhere, so the
    adversarial (Hypothesis) property checks values on a dense grid plus
    extra samples bracketing every breakpoint of either envelope, and
    requires each forward breakpoint to appear among the LP breakpoints.
    """
    bps = sorted(set(actual.breakpoints()) | set(expected.breakpoints()))
    xs = np.linspace(actual.lo, actual.hi, 197)
    near = np.array([b + d for b in bps for d in (-1e-4, 0.0, 1e-4)])
    xs = np.clip(np.concatenate([xs, near]), actual.lo, actual.hi)
    np.testing.assert_allclose(
        actual.sample(xs), expected.sample(xs), atol=atol, rtol=1e-9
    )
    expected_bps = np.asarray(expected.breakpoints())
    for b in actual.breakpoints():
        assert np.any(np.abs(expected_bps - b) <= atol), (
            f"forward breakpoint {b} missing from LP breakpoints {expected_bps}"
        )


def lp_envelope(graph, params, *, l_min=0.0, l_max=100.0, **build_kwargs):
    sweep = BatchedSweep(
        build_lp(graph, params, latency_mode="global", **build_kwargs),
        l_min=l_min,
        l_max=l_max,
        envelope_engine="lp",
    )
    envelope = sweep.envelope
    assert sweep.num_solves > 0  # the oracle really solved LPs
    return envelope


# ---------------------------------------------------------------------------
# exact parity with the ParametricLP oracle
# ---------------------------------------------------------------------------


class TestForwardParity:
    def test_running_example_matches_lp_and_parametric(self):
        graph = build_running_example()
        forward = forward_envelope(graph, PARAMS, l_min=0.0, l_max=50.0)
        assert_envelopes_identical(forward, lp_envelope(graph, PARAMS, l_max=50.0))
        analysis = parametric_analysis(graph, PARAMS, l_min=0.0, l_max=50.0)
        assert_envelopes_identical(forward, analysis.envelope)

    def test_staircase_has_exact_breakpoints(self):
        k = 6
        graph = build_staircase(k)
        forward = forward_envelope(graph, ZERO_OVERHEAD, l_min=0.0, l_max=float(k + 2))
        assert len(forward.lines) == k
        np.testing.assert_allclose(
            forward.breakpoints(), np.arange(1.0, float(k)), atol=1e-9
        )
        assert_envelopes_identical(
            forward, lp_envelope(graph, ZERO_OVERHEAD, l_max=float(k + 2))
        )

    @pytest.mark.parametrize("seed", range(5))
    def test_random_dags_match_lp(self, seed):
        graph = build_random_dag(seed, nranks=4, rounds=12)
        forward = forward_envelope(graph, PARAMS, l_min=0.0, l_max=100.0)
        assert_envelopes_identical(forward, lp_envelope(graph, PARAMS))

    @pytest.mark.parametrize("seed", range(3))
    def test_random_programs_match_lp(self, seed):
        graph = build_graph(build_random_program(seed))
        forward = forward_envelope(graph, PARAMS, l_min=0.0, l_max=100.0)
        assert_envelopes_identical(forward, lp_envelope(graph, PARAMS))

    @pytest.mark.parametrize("gap_mode", ["constant", "global"])
    @pytest.mark.parametrize("overhead_mode", ["constant", "global"])
    def test_symbolic_gap_and_overhead_modes_stay_affine(
        self, gap_mode, overhead_mode
    ):
        # symbolic gap/overhead variables sit at their params lower bounds at
        # the optimum, so the forward fold is still exact
        graph = build_random_dag(7, nranks=3, rounds=8)
        lp = build_lp(
            graph,
            PARAMS,
            latency_mode="global",
            gap_mode=gap_mode,
            overhead_mode=overhead_mode,
        )
        assert forward_incompatibility(lp) is None
        forward = BatchedSweep(
            lp, l_min=0.0, l_max=100.0, envelope_engine="forward"
        ).envelope
        assert_envelopes_identical(
            forward,
            lp_envelope(
                graph, PARAMS, gap_mode=gap_mode, overhead_mode=overhead_mode
            ),
        )


@st.composite
def program_graphs(draw):
    seed = draw(st.integers(min_value=0, max_value=2**16))
    if draw(st.booleans()):
        return build_graph(
            build_random_program(seed, nranks=draw(st.integers(2, 4)), rounds=8)
        )
    return build_random_dag(seed, nranks=draw(st.integers(2, 4)), rounds=8)


@st.composite
def affine_params(draw):
    return LogGPSParams(
        L=draw(st.floats(min_value=0.0, max_value=20.0)),
        o=draw(st.floats(min_value=0.0, max_value=5.0)),
        g=0.0,
        G=draw(st.floats(min_value=0.0, max_value=0.01)),
    )


@settings(max_examples=25, deadline=None)
@given(
    graph=program_graphs(),
    params=affine_params(),
    gap_mode=st.sampled_from(["constant", "global"]),
    overhead_mode=st.sampled_from(["constant", "global"]),
)
def test_forward_equals_lp_property(graph, params, gap_mode, overhead_mode):
    """Hypothesis: forward envelope == ParametricLP envelope on every affine LP."""
    forward = forward_envelope(graph, params, l_min=0.0, l_max=100.0)
    expected = lp_envelope(
        graph, params, gap_mode=gap_mode, overhead_mode=overhead_mode
    )
    assert_envelopes_equivalent(forward, expected)


# ---------------------------------------------------------------------------
# fallback on non-affine LPs
# ---------------------------------------------------------------------------


class TestNonAffineFallback:
    def test_per_pair_gap_auto_falls_back_to_lp(self):
        graph = build_random_dag(3)
        lp = build_lp(graph, PARAMS, latency_mode="global", gap_mode="per_pair")
        reason = forward_incompatibility(lp)
        assert reason is not None and "per-pair" in reason
        assert resolve_envelope_engine("auto", lp) == "lp"
        sweep = BatchedSweep(lp, l_min=0.0, l_max=50.0, envelope_engine="auto")
        sweep.envelope
        assert sweep.num_solves > 0  # the oracle ran

    def test_per_pair_gap_explicit_forward_raises(self):
        graph = build_random_dag(3)
        lp = build_lp(graph, PARAMS, latency_mode="global", gap_mode="per_pair")
        with pytest.raises(ValueError, match="envelope_engine='forward'"):
            resolve_envelope_engine("forward", lp)

    def test_per_pair_latency_mode_is_incompatible(self):
        graph = build_random_dag(3)
        lp = build_lp(graph, PARAMS, latency_mode="per_pair")
        reason = forward_incompatibility(lp)
        assert reason is not None and "latency" in reason

    def test_moved_gap_bound_breaks_affinity(self):
        graph = build_random_dag(3)
        lp = build_lp(graph, PARAMS, latency_mode="global", gap_mode="global")
        assert forward_incompatibility(lp) is None
        lp.set_gap_bound(PARAMS.G + 1.0)
        reason = forward_incompatibility(lp)
        assert reason is not None and "gap lower bound" in reason
        assert resolve_envelope_engine("auto", lp) == "lp"

    def test_moved_overhead_bound_breaks_affinity(self):
        graph = build_random_dag(3)
        lp = build_lp(
            graph, PARAMS, latency_mode="global", overhead_mode="global"
        )
        lp.set_overhead_bound(PARAMS.o + 0.5)
        reason = forward_incompatibility(lp)
        assert reason is not None and "overhead lower bound" in reason

    def test_unknown_engine_name_rejected_everywhere(self):
        graph = build_running_example()
        lp = build_lp(graph, PARAMS, latency_mode="global")
        with pytest.raises(ValueError, match="unknown envelope_engine"):
            resolve_envelope_engine("simplex", lp)
        with pytest.raises(ValueError, match="unknown envelope_engine"):
            BatchedSweep(lp, envelope_engine="simplex")
        with pytest.raises(ValueError, match="unknown envelope_engine"):
            LatencyAnalyzer(graph, PARAMS, envelope_engine="simplex")

    def test_forward_supports_modes_matches_build_knobs(self):
        assert forward_supports_modes({})
        assert forward_supports_modes({"gap_mode": "global"})
        assert not forward_supports_modes({"gap_mode": "per_pair"})
        assert not forward_supports_modes({"latency_mode": "per_pair"})
        assert not forward_supports_modes({"mystery_knob": 1})
        assert "auto" in ENVELOPE_ENGINES and "lp" in ENVELOPE_ENGINES


# ---------------------------------------------------------------------------
# interval validation (pinned message) and overflow
# ---------------------------------------------------------------------------


class TestValidation:
    @pytest.mark.parametrize("lo,hi", [(5.0, 5.0), (5.0, 1.0), (-1.0, 10.0)])
    def test_critical_latency_interval_validated_up_front(self, lo, hi):
        graph = build_running_example()
        with pytest.raises(
            ValueError, match=r"require 0 <= l_min < l_max"
        ):
            find_critical_latencies(graph, lo, hi, params=PARAMS)
        with pytest.raises(
            ValueError, match=r"invalid latency interval"
        ):
            critical_latency_curve(graph, lo, hi, params=PARAMS)

    def test_forward_envelope_interval_validated(self):
        with pytest.raises(ValueError, match="invalid latency interval"):
            forward_envelope(build_running_example(), PARAMS, l_min=3.0, l_max=3.0)

    def test_max_pieces_overflow_raises(self):
        graph = build_staircase(8)
        with pytest.raises(EnvelopeOverflowError, match="narrow the latency"):
            forward_envelope(graph, ZERO_OVERHEAD, l_min=0.0, l_max=20.0, max_pieces=3)


# ---------------------------------------------------------------------------
# critical latencies and curves through the forward engine
# ---------------------------------------------------------------------------


class TestCriticalLatencies:
    def test_breakpoints_match_lp_engine(self):
        graph = build_staircase(5)
        lp = build_lp(graph, ZERO_OVERHEAD, latency_mode="global")
        fw = find_critical_latencies(lp, 0.0, 8.0, envelope_engine="forward")
        ref = find_critical_latencies(lp, 0.0, 8.0, envelope_engine="lp")
        np.testing.assert_allclose(fw, ref, atol=1e-6)
        np.testing.assert_allclose(fw, [1.0, 2.0, 3.0, 4.0], atol=1e-9)

    def test_graph_input_needs_no_lp(self):
        # an ExecutionGraph plus params goes straight to the forward pass
        graph = build_staircase(4)
        points = find_critical_latencies(graph, 0.0, 8.0, params=ZERO_OVERHEAD)
        np.testing.assert_allclose(points, [1.0, 2.0, 3.0], atol=1e-9)
        with pytest.raises(ValueError, match="params"):
            find_critical_latencies(graph, 0.0, 8.0)

    def test_curve_tangents_match_lp_engine(self):
        graph = build_random_dag(11)
        lp = build_lp(graph, PARAMS, latency_mode="global")
        fw = critical_latency_curve(lp, 0.0, 60.0, envelope_engine="forward")
        ref = critical_latency_curve(lp, 0.0, 60.0, envelope_engine="lp")
        assert len(fw) == len(ref)
        for a, b in zip(fw, ref):
            assert a.slope == pytest.approx(b.slope, abs=1e-6)
            assert a.value == pytest.approx(b.value, abs=1e-6)

    def test_analyzer_forward_engine_never_builds_lp(self):
        graph = build_staircase(4)
        analyzer = LatencyAnalyzer(graph, ZERO_OVERHEAD, envelope_engine="forward")
        points = analyzer.critical_latencies(0.0, 8.0)
        np.testing.assert_allclose(points, [1.0, 2.0, 3.0], atol=1e-9)
        assert analyzer._lp is None  # no LP was ever assembled


# ---------------------------------------------------------------------------
# engines share artifact-store envelope entries
# ---------------------------------------------------------------------------


class TestSharedArtifacts:
    def test_envelope_cached_by_one_engine_serves_the_other(self, tmp_path):
        graph = build_random_dag(17)
        cold = LatencyAnalyzer(
            graph, PARAMS, envelope_engine="lp", cache_dir=str(tmp_path)
        )
        cold_sweep = cold.batched_sweep(l_max=50.0)
        assert cold.store.misses["envelope"] == 1
        assert cold_sweep.num_solves > 0

        warm = LatencyAnalyzer(
            graph, PARAMS, envelope_engine="forward", cache_dir=str(tmp_path)
        )
        warm_sweep = warm.batched_sweep(l_max=50.0)
        assert warm.store.hits["envelope"] == 1
        assert warm_sweep.num_solves == 0  # answered from disk, no engine ran
        xs = np.linspace(PARAMS.L, 50.0, 31)
        np.testing.assert_array_equal(
            warm_sweep.values(xs), cold_sweep.values(xs)
        )

    def test_batched_sweep_graphs_engines_agree_serial_and_parallel(self):
        graphs = [build_random_dag(s) for s in (1, 2)]
        by_engine = {
            engine: batched_sweep_graphs(
                graphs, PARAMS, l_max=80.0, envelope_engine=engine
            )
            for engine in ("forward", "lp")
        }
        for fw, ref in zip(by_engine["forward"], by_engine["lp"]):
            assert_envelopes_identical(fw, ref)
        parallel = batched_sweep_graphs(
            graphs, PARAMS, l_max=80.0, processes=2, envelope_engine="forward"
        )
        for fw, ref in zip(parallel, by_engine["lp"]):
            assert_envelopes_identical(fw, ref)

    def test_store_key_is_engine_free(self, tmp_path):
        store = ArtifactStore(tmp_path)
        graph = build_random_dag(19)
        serial = batched_sweep_graphs(
            [graph], PARAMS, l_max=40.0, cache_dir=tmp_path,
            envelope_engine="forward",
        )
        assert store.stats()["kinds"]["envelope"]["entries"] == 1
        again = batched_sweep_graphs(
            [graph], PARAMS, l_max=40.0, cache_dir=tmp_path,
            envelope_engine="lp",
        )
        # still one entry: the LP run hit the forward run's artifact
        assert store.stats()["kinds"]["envelope"]["entries"] == 1
        assert_envelopes_identical(again[0], serial[0])


# ---------------------------------------------------------------------------
# fleet + CLI threading
# ---------------------------------------------------------------------------


class TestFleetAndCli:
    def test_fleet_forward_engine_matches_default(self):
        from repro.network.params import CSCS_TESTBED
        from repro.parallel import ScenarioFleet

        def rows(engine):
            fleet = ScenarioFleet(
                apps=["lulesh"],
                nranks=[2],
                allreduces=["ring"],
                params_grid=[CSCS_TESTBED],
                injectors=[None, "sender_delay"],
                l_max=50.0,
                sim_deltas=(0.0, 5.0),
                processes=1,
                envelope_engine=engine,
            )
            return fleet.run().rows

        default, forward = rows("auto"), rows("forward")
        assert len(default) == len(forward) == 2
        for a, b in zip(default, forward):
            assert a["runtime_us"] == pytest.approx(b["runtime_us"], abs=1e-6)
            assert a["lambda_L"] == pytest.approx(b["lambda_L"], abs=1e-9)
            # injector simulation rides along unchanged: injectors perturb
            # the simulator, never the envelope
            assert a.get("sim_runtime_us") == b.get("sim_runtime_us")

    def test_cli_exposes_envelope_engine_flag(self, capsys):
        from repro.cli import main

        assert main(["--envelope-engine", "forward", "analyze",
                     "lulesh", "--nranks", "2", "--json"]) == 0
        forward_out = capsys.readouterr().out
        assert main(["--envelope-engine", "lp", "analyze",
                     "lulesh", "--nranks", "2", "--json"]) == 0
        lp_out = capsys.readouterr().out
        assert forward_out == lp_out
        with pytest.raises(SystemExit):
            main(["--envelope-engine", "bogus", "analyze", "lulesh"])
