"""Tests for the exact parametric critical-path engine."""

import numpy as np
import pytest

from repro.core import analyze_critical_path, build_lp, parametric_analysis
from repro.core.parametric import Line, PiecewiseLinear, _upper_envelope
from repro.network.params import LogGPSParams
from repro.schedgen.graph import GraphBuilder


class TestUpperEnvelope:
    def test_single_line(self):
        env = _upper_envelope([Line(1.0, 2.0)], 0.0, 10.0)
        assert env == [Line(1.0, 2.0)]

    def test_dominated_line_removed(self):
        # same slope, lower intercept is dominated
        env = _upper_envelope([Line(1.0, 2.0), Line(1.0, 1.0)], 0.0, 10.0)
        assert env == [Line(1.0, 2.0)]

    def test_crossing_lines_kept(self):
        env = _upper_envelope([Line(0.0, 5.0), Line(1.0, 0.0)], 0.0, 10.0)
        assert len(env) == 2

    def test_line_outside_domain_dropped(self):
        # the steep line only wins beyond x = 100, outside the domain
        env = _upper_envelope([Line(0.0, 100.0), Line(1.0, 0.0)], 0.0, 10.0)
        assert env == [Line(0.0, 100.0)]

    def test_middle_line_dominated_by_neighbours(self):
        # line b is below max(a, c) everywhere
        a, b, c = Line(0.0, 10.0), Line(1.0, 0.0), Line(2.0, -5.0)
        env = _upper_envelope([a, b, c], 0.0, 100.0)
        assert b not in env

    def test_envelope_matches_bruteforce(self):
        rng = np.random.default_rng(3)
        lines = [Line(float(s), float(c)) for s, c in
                 zip(rng.integers(0, 6, 15), rng.uniform(-5, 5, 15))]
        env = _upper_envelope(lines, 0.0, 20.0)
        xs = np.linspace(0.0, 20.0, 101)
        for x in xs:
            full = max(line(x) for line in lines)
            kept = max(line(x) for line in env)
            assert kept == pytest.approx(full, abs=1e-9)


class TestPiecewiseLinear:
    def make_pw(self):
        return PiecewiseLinear(lines=[Line(0.0, 1.5), Line(1.0, 1.115)], lo=0.0, hi=10.0)

    def test_value_and_slope(self):
        pw = self.make_pw()
        assert pw.value(0.0) == pytest.approx(1.5)
        assert pw.value(1.0) == pytest.approx(2.115)
        assert pw.slope(0.0) == 0.0
        assert pw.slope(1.0) == 1.0

    def test_breakpoints(self):
        assert self.make_pw().breakpoints() == pytest.approx([0.385])

    def test_slope_at_breakpoint_is_from_above(self):
        assert self.make_pw().slope(0.385) == pytest.approx(1.0)

    def test_segment_of(self):
        pw = self.make_pw()
        lo, hi = pw.segment_of(0.1)
        assert lo == 0.0 and hi == pytest.approx(0.385)
        lo, hi = pw.segment_of(5.0)
        assert lo == pytest.approx(0.385) and hi == 10.0

    def test_solve_for_value(self):
        pw = self.make_pw()
        assert pw.solve_for_value(2.0) == pytest.approx(0.885)
        assert pw.solve_for_value(100.0) == pytest.approx(10.0)  # clamped to hi
        with pytest.raises(ValueError):
            pw.solve_for_value(1.0)  # below the runtime at lo

    def test_sample_vectorised(self):
        pw = self.make_pw()
        xs = [0.0, 0.385, 1.0]
        values = pw.sample(xs)
        assert values == pytest.approx([pw.value(x) for x in xs])

    def test_needs_at_least_one_line(self):
        with pytest.raises(ValueError):
            PiecewiseLinear(lines=[], lo=0.0, hi=1.0)


class TestParametricAnalysis:
    def test_running_example(self, running_example, paper_params):
        analysis = parametric_analysis(running_example, paper_params, l_min=0.0, l_max=5.0)
        assert analysis.runtime(0.0) == pytest.approx(1.5)
        assert analysis.runtime(0.5) == pytest.approx(1.615)
        assert analysis.latency_sensitivity(0.5) == pytest.approx(1.0)
        assert analysis.critical_latencies() == pytest.approx([0.385])
        assert analysis.latency_tolerance(2.0 / 1.5 - 1.0, baseline_L=0.0) == pytest.approx(0.885)

    def test_feasibility_range(self, running_example, paper_params):
        analysis = parametric_analysis(running_example, paper_params, l_min=0.0, l_max=5.0)
        lo, hi = analysis.feasibility_range(0.2)
        assert lo == 0.0 and hi == pytest.approx(0.385)

    def test_l_ratio_increases_with_latency(self, running_example, paper_params):
        analysis = parametric_analysis(running_example, paper_params, l_min=0.0, l_max=5.0)
        assert analysis.l_ratio(0.1) == 0.0
        assert analysis.l_ratio(1.0) > 0.0
        assert analysis.l_ratio(4.0) > analysis.l_ratio(1.0)

    def test_invalid_interval_rejected(self, running_example, paper_params):
        with pytest.raises(ValueError):
            parametric_analysis(running_example, paper_params, l_min=5.0, l_max=1.0)
        analysis = parametric_analysis(running_example, paper_params)
        with pytest.raises(ValueError):
            analysis.latency_tolerance(-0.1)

    @pytest.mark.parametrize("L", [0.0, 0.25, 0.5, 1.0, 3.0, 7.5])
    def test_matches_lp_and_forward_pass(self, running_example, paper_params, L):
        analysis = parametric_analysis(running_example, paper_params, l_min=0.0, l_max=10.0)
        lp = build_lp(running_example, paper_params)
        cp = analyze_critical_path(running_example, paper_params.with_latency(L))
        assert analysis.runtime(L) == pytest.approx(lp.solve_runtime(L=L).objective)
        assert analysis.runtime(L) == pytest.approx(cp.runtime)

    def test_chain_of_messages_slope_counts_messages(self):
        """A chain of k dependent messages must have slope k for large L."""
        k = 4
        builder = GraphBuilder(nranks=2)
        prev = {0: -1, 1: -1}

        def add(rank, vid):
            if prev[rank] >= 0:
                builder.add_dependency(prev[rank], vid)
            prev[rank] = vid

        for i in range(k):
            src, dst = i % 2, (i + 1) % 2
            s = builder.add_send(src, dst, 8, tag=i)
            r = builder.add_recv(dst, src, 8, tag=i)
            add(src, s)
            add(dst, r)
            builder.add_comm_edge(s, r)
        graph = builder.freeze()
        params = LogGPSParams(L=1.0, o=0.1, G=0.0)
        analysis = parametric_analysis(graph, params, l_min=0.0, l_max=100.0)
        assert analysis.latency_sensitivity(50.0) == pytest.approx(k)
