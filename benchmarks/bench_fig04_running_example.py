"""Figures 4, 5, 6 and 16 — the two-rank running example.

These figures develop the paper's method on a toy graph: two ranks, one
message, computation before and after.  The quantitative targets are exact:

* late sender (Fig. 4b): ``T = L + 2.015 µs`` and ``λ_L = 1``;
* reduced pre-compute (Fig. 4c): critical latency ``L_c = 0.385 µs``;
* Fig. 5: ``T(0.5 µs) = 1.615 µs``;
* Fig. 6: the maximum ``L`` with ``T ≤ 2 µs`` is ``0.885 µs``;
* Fig. 16 (Appendix D): sweeping ``[0.2, 0.5]`` finds the breakpoint 0.385.
"""

from __future__ import annotations

import pytest

from repro.core import build_lp, find_critical_latencies, parametric_analysis
from repro.network.params import LogGPSParams
from repro.schedgen.graph import GraphBuilder

from _bench_utils import emit_json, print_header, print_rows

PARAMS = LogGPSParams(L=0.0, o=0.0, g=0.0, G=0.005, S=256 * 1024, P=2)


def build_example(c0: float):
    builder = GraphBuilder(nranks=2)
    v0 = builder.add_calc(0, c0)
    s = builder.add_send(0, 1, 4)
    v1 = builder.add_calc(0, 1.0)
    builder.chain([v0, s, v1])
    v2 = builder.add_calc(1, 0.5)
    r = builder.add_recv(1, 0, 4)
    v3 = builder.add_calc(1, 1.0)
    builder.chain([v2, r, v3])
    builder.add_comm_edge(s, r)
    return builder.freeze()


def _analyse():
    graph = build_example(0.1)
    late = build_example(1.0)
    lp = build_lp(graph, PARAMS)
    lp_late = build_lp(late, PARAMS)
    out = {}
    out["late_T0"] = lp_late.solve_runtime(L=0.0).objective
    sol_late = lp_late.solve_runtime(L=0.0)
    out["late_lambda"] = lp_late.latency_sensitivity(sol_late)
    sol_half = lp.solve_runtime(L=0.5)
    out["T_half"] = sol_half.objective
    out["lambda_half"] = lp.latency_sensitivity(sol_half)
    lp.set_latency_bound(0.0)
    out["tolerance_2us"] = lp.solve_max_latency(2.0).objective
    out["critical"] = find_critical_latencies(lp, 0.0, 1.0)
    out["critical_appendix_d"] = find_critical_latencies(lp, 0.2, 0.5)
    pa = parametric_analysis(graph, PARAMS, l_min=0.0, l_max=2.0)
    out["parametric_breakpoints"] = pa.critical_latencies()
    out["T_curve"] = [(L, pa.runtime(L), pa.latency_sensitivity(L))
                      for L in (0.0, 0.2, 0.385, 0.5, 1.0)]
    return out


def test_fig04_running_example(run_once):
    out = run_once(_analyse)

    print_header("Figures 4/5/6/16 — running example")
    print_rows(["quantity", "paper", "reproduced"], [
        ["T with late sender (L=0)            [µs]", 2.015, out["late_T0"]],
        ["λ_L with late sender", 1.0, out["late_lambda"]],
        ["T(L = 0.5 µs)                       [µs]", 1.615, out["T_half"]],
        ["λ_L at L = 0.5 µs", 1.0, out["lambda_half"]],
        ["critical latency L_c                [µs]", 0.385, out["critical"][0]],
        ["max L with T ≤ 2 µs                 [µs]", 0.885, out["tolerance_2us"]],
    ])
    print("\nT(L) and λ_L(L) from the parametric engine:")
    print_rows(["L [µs]", "T [µs]", "λ_L"], [list(row) for row in out["T_curve"]])

    emit_json("fig04_running_example", out)

    assert out["late_T0"] == pytest.approx(2.015)
    assert out["late_lambda"] == pytest.approx(1.0)
    assert out["T_half"] == pytest.approx(1.615)
    assert out["tolerance_2us"] == pytest.approx(0.885)
    assert out["critical"] == pytest.approx([0.385], abs=1e-6)
    assert out["critical_appendix_d"] == pytest.approx([0.385], abs=1e-6)
    assert out["parametric_breakpoints"] == pytest.approx([0.385], abs=1e-9)
