"""Batched LP sweep engine vs per-point cold solves (acceptance criterion).

A 100-point latency sweep of the Fig. 4 running example must be at least 3×
faster through :class:`~repro.core.parametric.BatchedSweep` than through 100
independent cold ``solve_highs`` calls, with identical results to 1e-6.  The
batched engine assembles the LP once and reconstructs the exact
piecewise-linear ``T(L)`` curve from O(#breakpoints) solves, so the speedup
grows with the sweep density (typically 20–50× here, with ~3 LP solves
instead of 100).

A larger LULESH graph is also reported so the win is shown off the toy
example too.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro import CSCS_TESTBED
from repro.core import BatchedSweep, build_lp
from repro.network.params import LogGPSParams
from repro.testing import build_running_example

from _bench_utils import emit_json, print_header, print_rows

POINTS = 100
PAPER_PARAMS = LogGPSParams(L=0.0, o=0.0, g=0.0, G=0.005, S=256 * 1024, P=2)


def _compare(graph, params, l_min: float, l_max: float):
    Ls = np.linspace(l_min, l_max, POINTS)

    cold_lp = build_lp(graph, params)
    t0 = time.perf_counter()
    cold = np.array(
        [cold_lp.solve_runtime(L=float(L), backend="highs").objective for L in Ls]
    )
    cold_time = time.perf_counter() - t0

    batched_lp = build_lp(graph, params)
    t0 = time.perf_counter()
    sweep = BatchedSweep(batched_lp, l_min=l_min, l_max=l_max)
    batched = sweep.values(Ls)
    batched_time = time.perf_counter() - t0

    return {
        "cold_s": cold_time,
        "batched_s": batched_time,
        "speedup": cold_time / batched_time,
        "lp_solves": sweep.num_solves,
        "max_diff": float(np.abs(batched - cold).max()),
    }


def _run():
    from repro.apps import lulesh

    results = {}
    results["running example (Fig. 4)"] = _compare(
        build_running_example(), PAPER_PARAMS, 0.0, 2.0
    )
    results["LULESH (4 ranks, 2 iters)"] = _compare(
        lulesh.build(4, params=CSCS_TESTBED, iterations=2),
        CSCS_TESTBED,
        CSCS_TESTBED.L,
        CSCS_TESTBED.L + 200.0,
    )
    return results


def test_batched_sweep_speedup(run_once):
    results = run_once(_run)

    print_header(f"Batched sweep engine — {POINTS}-point L-sweep vs cold solves")
    print_rows(
        ["graph", "cold [s]", "batched [s]", "speedup", "LP solves", "max |Δ|"],
        [
            [name, r["cold_s"], r["batched_s"], r["speedup"], r["lp_solves"], r["max_diff"]]
            for name, r in results.items()
        ],
    )

    emit_json("batched_sweep", results)

    toy = results["running example (Fig. 4)"]
    assert toy["max_diff"] < 1e-6
    assert toy["speedup"] >= 3.0, f"batched sweep only {toy['speedup']:.1f}x faster"
    assert toy["lp_solves"] < POINTS / 2

    lulesh_result = results["LULESH (4 ranks, 2 iters)"]
    assert lulesh_result["max_diff"] < 1e-6
    # looser than the toy example: per-solve cost dominates on larger graphs,
    # so the win is bounded by solves-saved rather than assembly-saved
    assert lulesh_result["speedup"] >= 2.0
