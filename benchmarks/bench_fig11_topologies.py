"""Figure 11 — impact of the fat-tree vs dragonfly topology on ICON.

The paper replaces the end-to-end latency with the wire/switch model
``(h + 1) l_wire + h d_switch``, sweeps the per-wire latency from 274 ns to
424 ns (the anticipated FEC-induced increase), and finds that (a) Dragonfly
tolerates marginally more wire latency thanks to its lower average hop count
and (b) both topologies are insensitive to the sweep — the per-wire latency
must grow beyond ~3000 ns before ICON loses 1 %.
"""

from __future__ import annotations

import numpy as np

from repro import CSCS_TESTBED, LatencyAnalyzer
from repro.apps import icon
from repro.network import Dragonfly, FatTree, WireLatencyModel
from repro.network.topology import DEFAULT_SWITCH_LATENCY, DEFAULT_WIRE_LATENCY
from repro.simulator import simulate_sweep_grid

from _bench_utils import emit_json, print_header, print_rows

NRANKS = 16
STEPS = 8
WIRE_SWEEP = np.linspace(0.274, 0.424, 4)  # µs (274 ns … 424 ns)

TOPOLOGIES = {
    "Fat Tree (k=16)": FatTree(k=16),
    "Dragonfly (8,4,8)": Dragonfly(g=8, a=4, p=8),
}


def _effective_latency(topology, wire_latency: float) -> float:
    """Average end-to-end latency over the first NRANKS densely packed nodes."""
    model = WireLatencyModel(wire_latency=wire_latency, switch_latency=DEFAULT_SWITCH_LATENCY)
    return model.average_latency(topology, NRANKS)


def _run():
    graph = icon.build(NRANKS, params=CSCS_TESTBED, steps=STEPS)
    results = {}
    for name, topology in TOPOLOGIES.items():
        runtimes = []
        for wire in WIRE_SWEEP:
            params = CSCS_TESTBED.with_latency(_effective_latency(topology, float(wire)))
            runtimes.append(LatencyAnalyzer(graph, params).predict_runtime())

        # Simulated curve: every wire point gets its own per-pair HLogGP
        # latency matrix, and the whole sweep is ONE graph traversal
        # (ΔL = 0 per point; latency_matrices carries the wire sweep).
        matrices = np.stack([
            WireLatencyModel(
                wire_latency=float(wire), switch_latency=DEFAULT_SWITCH_LATENCY
            ).pair_latency_matrix(topology, NRANKS)
            for wire in WIRE_SWEEP
        ])
        grid = simulate_sweep_grid(
            graph, CSCS_TESTBED, np.zeros(len(WIRE_SWEEP)), latency_matrices=matrices
        )
        sim_runtimes = grid.makespan[0]

        # Result identity: the fused sweep must reproduce the per-wire-point
        # looped traversals bit-for-bit.
        for k in range(len(WIRE_SWEEP)):
            point = simulate_sweep_grid(
                graph, CSCS_TESTBED, [0.0], latency_matrices=matrices[k : k + 1]
            )
            np.testing.assert_array_equal(sim_runtimes[k], point.makespan[0, 0])
            np.testing.assert_array_equal(grid.rank_finish[0, k], point.rank_finish[0, 0])
        # wire-latency tolerance: largest wire latency keeping the runtime
        # within 1 % of the 274 ns baseline, found on the analytic curve
        base_params = CSCS_TESTBED.with_latency(_effective_latency(topology, 0.274))
        analyzer = LatencyAnalyzer(graph, base_params)
        tol_L = analyzer.latency_tolerance(0.01)  # tolerance on the end-to-end latency
        avg_hops = np.mean([
            topology.hops(a, b) for a in range(NRANKS) for b in range(NRANKS) if a != b
        ])
        # invert the wire model: L = (h+1) l_wire + h d_switch with h = avg hops
        wire_tolerance = (tol_L - avg_hops * DEFAULT_SWITCH_LATENCY) / (avg_hops + 1.0)
        results[name] = {
            "runtimes": np.asarray(runtimes),
            "sim_runtimes": np.asarray(sim_runtimes),
            "avg_hops": float(avg_hops),
            "wire_tolerance_ns": wire_tolerance * 1e3,
        }
    return results


def test_fig11_topologies(run_once):
    results = run_once(_run)

    print_header("Figure 11 — ICON runtime vs per-wire latency (fat tree vs dragonfly)")
    rows = []
    for i, wire in enumerate(WIRE_SWEEP):
        rows.append([wire * 1e3] + [results[name]["runtimes"][i] / 1e6 for name in TOPOLOGIES])
    print_rows(["wire latency [ns]"] + [f"{name} [s]" for name in TOPOLOGIES], rows)
    print()
    print_rows(
        ["topology", "avg hops", "1% wire-latency tolerance [ns]"],
        [[name, results[name]["avg_hops"], results[name]["wire_tolerance_ns"]]
         for name in TOPOLOGIES],
    )

    emit_json("fig11_topologies", results)

    ft = results["Fat Tree (k=16)"]
    df = results["Dragonfly (8,4,8)"]
    # dragonfly has fewer average hops, hence slightly better wire-latency tolerance
    assert df["avg_hops"] < ft["avg_hops"]
    assert df["wire_tolerance_ns"] > ft["wire_tolerance_ns"]
    # both topologies are unaffected by the anticipated FEC-induced increase:
    # the runtime changes by far less than 1 % across the sweep …
    for name in TOPOLOGIES:
        runtimes = results[name]["runtimes"]
        assert (runtimes[-1] - runtimes[0]) / runtimes[0] < 0.01
    # … because the tolerable per-wire latency is far above the swept range
    for name in TOPOLOGIES:
        assert results[name]["wire_tolerance_ns"] > 1000.0
    # the per-pair simulated curve (one fused traversal per topology) agrees
    # on the headline: both topologies are insensitive to the FEC increase
    for name in TOPOLOGIES:
        sim = results[name]["sim_runtimes"]
        assert sim[0] > 0.0
        assert (sim[-1] - sim[0]) / sim[0] < 0.01
