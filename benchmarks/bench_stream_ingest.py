"""Out-of-core ingestion: streaming trace→batches vs the monolithic reader.

The monolithic path (``load_trace`` → ``batches_from_trace``) materialises
one Python ``TraceRecord`` object per call before columnarising — several
hundred bytes of boxes and pointers for 80 bytes of payload — so its peak
RSS is O(schedule).  The chunked reader
(:func:`repro.schedgen.streaming.batches_from_trace_chunked`) parses
fixed-size record blocks straight into column chunks and spills completed
columns to disk-backed memmaps, so its peak during ingestion is
O(chunk), independent of the trace length.

Both paths are measured in **subprocesses** (one pipeline each) that report
their own ``VmHWM`` delta over a post-import baseline — peak RSS is a
process-lifetime high-water mark, so sharing a process would let either
path inherit the other's peak.  Each child then builds the fused execution
graph and reports its ``content_digest()``, pinning the streaming path
bit-identical to the monolithic one on the exact bytes the artifact cache
keys on.

The second tier is the million-rank stress run: a synthetic ring/halo trace
(``$BENCH_STREAM_INGEST_RANKS`` ranks, default 1 000 000; CI reduces it) is
streamed through chunked ingestion into a disk-backed fused graph, LP
compile and one forward-pass objective — the full analyze-only pipeline —
inside a fixed memory budget that would be blown several times over by the
per-record object overhead of the monolithic reader at that scale.

Acceptance criteria:

* streaming and monolithic ingestion produce the **same graph content
  digest** (bit-identical columns);
* the streaming path's ingestion peak-RSS delta is at least **4× lower**
  than the monolithic reader's on the same trace;
* the million-rank ring trace runs trace→batches→graph→LP→objective inside
  the scaled memory budget.
"""

from __future__ import annotations

import json
import os
import shutil
import subprocess
import sys
import tempfile
import time

from _bench_utils import emit_json, print_header, print_rows

# A/B tier: enough records that per-record Python-object overhead dominates
# the monolithic reader's footprint, small enough to parse in seconds.
AB_RANKS = 64
AB_ITERATIONS = int(os.environ.get("BENCH_STREAM_INGEST_AB_ITERATIONS", "3000"))
AB_CHUNK_RECORDS = 8192
AB_SPILL_BYTES = 4 << 20
MIN_RSS_RATIO = 4.0

# stress tier: ring/halo at (by default) one million ranks, chunked only.
STRESS_RANKS = int(os.environ.get("BENCH_STREAM_INGEST_RANKS", "1000000"))
# dirty graph columns + LP compile temporaries measure ~1.1 KiB per rank at
# 100k ranks; 4 KiB/rank plus a flat floor is comfortable headroom without
# admitting a per-record-object reader (~2.5 KiB of boxes per rank extra).
STRESS_BUDGET_MB = 512.0 + STRESS_RANKS * 4096.0 / (1 << 20)

MESSAGE_BYTES = 8  # below the rendezvous threshold: no cross-ring dep chain


def _write_ring_trace(path: str, nranks: int, iterations: int) -> int:
    """Stream a synthetic ring trace to ``path``; returns the record count.

    Per rank and iteration: a compute gap, a send to the next rank and a
    receive from the previous one — the halo-exchange skeleton.  Written
    incrementally so generation itself stays O(1) in the trace length.
    """
    records = 0
    with open(path, "w", encoding="utf-8", buffering=1 << 20) as fh:
        fh.write("# llamp-trace v1\n")
        fh.write("# meta app=ring-halo\n")
        for rank in range(nranks):
            fh.write(f"@rank {rank}\n")
            succ = (rank + 1) % nranks
            pred = (rank - 1) % nranks
            t = 0.0
            for _ in range(iterations):
                fh.write(
                    f"MPI_Send:{t + 1.0:.6f}:{t + 1.5:.6f}"
                    f":peer={succ}:size={MESSAGE_BYTES}:tag=1\n"
                )
                fh.write(
                    f"MPI_Recv:{t + 2.5:.6f}:{t + 3.0:.6f}"
                    f":peer={pred}:size={MESSAGE_BYTES}:tag=1\n"
                )
                t += 3.0
                records += 2
    return records


_CHILD_PRELUDE = r"""
import json, os, sys, tempfile, shutil

def vmhwm_mb():
    with open("/proc/self/status") as fh:
        for line in fh:
            if line.startswith("VmHWM:"):
                return float(line.split()[1]) / 1024.0
    raise RuntimeError("VmHWM not found")

trace_path = os.environ["BENCH_TRACE_PATH"]
work_dir = tempfile.mkdtemp(prefix="bench-stream-")
try:
    from repro.network.params import LogGPSParams
    from repro.schedgen.columnar import ScheduleBatches, batches_from_trace

    params = LogGPSParams()
    baseline_mb = vmhwm_mb()
"""

_CHILD_EPILOGUE = r"""
    print(json.dumps(out))
finally:
    shutil.rmtree(work_dir, ignore_errors=True)
"""

# Monolithic: TraceRecord objects + in-RAM columns; digest via fused graph.
_CHILD_MONOLITHIC = _CHILD_PRELUDE + r"""
    from repro.trace.format import load_trace

    trace = load_trace(trace_path)
    batches = batches_from_trace(trace)
    ingest_delta_mb = vmhwm_mb() - baseline_mb
    nranks = trace.nranks
    del trace
    spec = ScheduleBatches(batches, nranks)
    out = {
        "path": "monolithic",
        "records": sum(len(b) for b in batches),
        "ingest_delta_mb": ingest_delta_mb,
        "digest": spec.content_digest(params),
        "total_delta_mb": vmhwm_mb() - baseline_mb,
    }
""" + _CHILD_EPILOGUE

# Chunked: column blocks spilled to memmaps; fused graph is disk-backed too.
_CHILD_CHUNKED = _CHILD_PRELUDE + r"""
    from repro.schedgen.streaming import batches_from_trace_chunked

    batches = batches_from_trace_chunked(
        trace_path,
        chunk_size=int(os.environ["BENCH_CHUNK_RECORDS"]),
        spill_dir=work_dir,
        spill_threshold_bytes=int(os.environ["BENCH_SPILL_BYTES"]),
    )
    ingest_delta_mb = vmhwm_mb() - baseline_mb
    spec = ScheduleBatches(batches, batches.nranks, mmap_dir=work_dir)
    out = {
        "path": "chunked",
        "records": batches.num_rows,
        "spilled": batches.spilled,
        "ingest_delta_mb": ingest_delta_mb,
        "digest": spec.content_digest(params),
        "total_delta_mb": vmhwm_mb() - baseline_mb,
    }
""" + _CHILD_EPILOGUE

# Stress: the full chunked analyze-only pipeline at million-rank scale.
_CHILD_STRESS = _CHILD_PRELUDE + r"""
    import time

    from repro.core.envelope import forward_envelope
    from repro.lp import compile_lp
    from repro.schedgen.builder import ProtocolConfig
    from repro.schedgen.collectives import CollectiveAlgorithms
    from repro.schedgen.columnar import build_columnar_fused
    from repro.schedgen.streaming import batches_from_trace_chunked
    from repro.simulator import simulate

    t0 = time.perf_counter()
    batches = batches_from_trace_chunked(trace_path, spill_dir=work_dir)
    ingest_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    graph = build_columnar_fused(
        batches,
        batches.nranks,
        algorithms=CollectiveAlgorithms(),
        protocol=ProtocolConfig.from_params(params),
        mmap_dir=work_dir,
    )
    graph_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    compiled = compile_lp(graph, params)
    lp_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    objective_us = simulate(graph, params).makespan
    sim_s = time.perf_counter() - t0

    # the full exact T(L) envelope — not just one objective — must fit the
    # same memory budget: the forward engine traverses the mmap-backed
    # level structure once and never assembles an LP model
    t0 = time.perf_counter()
    envelope = forward_envelope(graph, params, l_min=0.0, l_max=1000.0)
    envelope_s = time.perf_counter() - t0

    out = {
        "path": "stress",
        "records": batches.num_rows,
        "spilled": batches.spilled,
        "nranks": batches.nranks,
        "vertices": graph.num_vertices,
        "edges": graph.num_edges,
        "lp_variables": len(compiled.model.variables),
        "objective_us": objective_us,
        "ingest_s": ingest_s,
        "graph_s": graph_s,
        "lp_s": lp_s,
        "sim_s": sim_s,
        "envelope_s": envelope_s,
        "envelope_pieces": len(envelope.lines),
        "envelope_value_at_L_us": envelope.value(params.L),
        "peak_delta_mb": vmhwm_mb() - baseline_mb,
    }
""" + _CHILD_EPILOGUE


def _run_child(code: str, trace_path: str, **env_extra: str) -> dict:
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    env["BENCH_TRACE_PATH"] = trace_path
    env.update(env_extra)
    proc = subprocess.run(
        [sys.executable, "-c", code],
        env=env,
        capture_output=True,
        text=True,
        check=False,
    )
    if proc.returncode != 0:
        raise RuntimeError(f"bench child failed:\n{proc.stderr}")
    return json.loads(proc.stdout.splitlines()[-1])


def _run():
    work = tempfile.mkdtemp(prefix="bench-stream-ingest-")
    try:
        # --- A/B tier: monolithic vs chunked on the same trace -------------
        ab_trace = os.path.join(work, "ab.trace")
        ab_records = _write_ring_trace(ab_trace, AB_RANKS, AB_ITERATIONS)
        mono = _run_child(_CHILD_MONOLITHIC, ab_trace)
        chunked = _run_child(
            _CHILD_CHUNKED,
            ab_trace,
            BENCH_CHUNK_RECORDS=str(AB_CHUNK_RECORDS),
            BENCH_SPILL_BYTES=str(AB_SPILL_BYTES),
        )
        # rows include the compute ops synthesised from inter-record gaps,
        # so compare the two paths to each other, not to the raw line count
        assert mono["records"] == chunked["records"]
        # guard the ratio against a ~0 MB denominator on tiny runs
        rss_ratio = mono["ingest_delta_mb"] / max(chunked["ingest_delta_mb"], 1.0)

        # --- stress tier: chunked-only pipeline at million-rank scale ------
        stress_trace = os.path.join(work, "stress.trace")
        t0 = time.perf_counter()
        stress_records = _write_ring_trace(stress_trace, STRESS_RANKS, 1)
        generate_s = time.perf_counter() - t0
        stress = _run_child(_CHILD_STRESS, stress_trace)
        assert stress["records"] >= stress_records

        return {
            "ab_ranks": AB_RANKS,
            "ab_records": ab_records,
            "monolithic_ingest_mb": mono["ingest_delta_mb"],
            "monolithic_total_mb": mono["total_delta_mb"],
            "chunked_ingest_mb": chunked["ingest_delta_mb"],
            "chunked_total_mb": chunked["total_delta_mb"],
            "chunked_spilled": chunked["spilled"],
            "rss_ratio": rss_ratio,
            "digest_match": mono["digest"] == chunked["digest"],
            "digest": mono["digest"],
            "chunked_digest": chunked["digest"],
            "stress_ranks": STRESS_RANKS,
            "stress_budget_mb": STRESS_BUDGET_MB,
            "stress_generate_s": generate_s,
            **{f"stress_{k}": v for k, v in stress.items() if k != "path"},
        }
    finally:
        shutil.rmtree(work, ignore_errors=True)


def test_stream_ingest_memory(run_once):
    results = run_once(_run)

    print_header(
        f"Streaming trace ingestion — {results['ab_records']} records, "
        f"{results['ab_ranks']} ranks (peak-RSS delta over import baseline)"
    )
    print_rows(
        ["path", "ingest [MB]", "pipeline [MB]", "ratio"],
        [
            [
                "monolithic (records→batches)",
                results["monolithic_ingest_mb"],
                results["monolithic_total_mb"],
                1.0,
            ],
            [
                "chunked (blocks→spilled columns)",
                results["chunked_ingest_mb"],
                results["chunked_total_mb"],
                results["rss_ratio"],
            ],
        ],
    )
    print(
        f"\ncontent digest match: {results['digest_match']} "
        f"({results['digest'][:16]}…)"
    )
    print_header(
        f"Million-rank stress — {results['stress_ranks']} ranks ring/halo, "
        f"chunked → mmap graph → LP → objective"
    )
    print_rows(
        ["stage", "time [s]"],
        [
            ["generate trace", results["stress_generate_s"]],
            ["chunked ingest", results["stress_ingest_s"]],
            ["fused graph (mmap)", results["stress_graph_s"]],
            ["LP compile", results["stress_lp_s"]],
            ["forward-pass objective", results["stress_sim_s"]],
            ["exact T(L) envelope", results["stress_envelope_s"]],
        ],
    )
    print(
        f"\n{results['stress_vertices']} vertices / {results['stress_edges']} "
        f"edges, objective {results['stress_objective_us']:.1f} us, "
        f"T(L) envelope {results['stress_envelope_pieces']} pieces, "
        f"peak {results['stress_peak_delta_mb']:.0f} MB "
        f"(budget {results['stress_budget_mb']:.0f} MB)"
    )
    emit_json("stream_ingest", results)

    assert results["digest_match"], (
        "chunked ingestion diverged from the monolithic reader: "
        f"{results['digest']} != {results['chunked_digest']}"
    )
    assert results["rss_ratio"] >= MIN_RSS_RATIO, (
        f"streaming ingestion only {results['rss_ratio']:.2f}x below the "
        f"monolithic reader's peak RSS"
    )
    assert results["stress_peak_delta_mb"] <= results["stress_budget_mb"], (
        f"stress pipeline peaked at {results['stress_peak_delta_mb']:.0f} MB, "
        f"over the {results['stress_budget_mb']:.0f} MB budget"
    )
    # a full envelope, not a single point, within the same budget: evaluated
    # at the baseline latency it must reproduce the simulated objective
    assert results["stress_envelope_pieces"] >= 1
    objective = results["stress_objective_us"]
    at_baseline = results["stress_envelope_value_at_L_us"]
    assert abs(at_baseline - objective) <= 1e-6 * max(1.0, abs(objective)), (
        f"envelope T(L) = {at_baseline} diverges from the simulated "
        f"objective {objective}"
    )
