"""Incremental vs cold rank placement (Algorithm 3) on a 64-rank DAG.

The placement loop solves the same per-pair LP once per candidate mapping.
The cold loop — the pre-engine implementation — re-scans all O(P³) swap
gains with a Python triple loop and pushes bounds through per-variable dict
updates each iteration; the incremental loop shares one
:class:`repro.lp.parametric.ParametricLP` (one CSR assembly, bound-only
updates) and evaluates the gain scan as dense matrix products.

Both must agree exactly — same final mapping, same predicted runtime, same
swap sequence — while the incremental loop is required to be ≥5× faster.
"""

from __future__ import annotations

import time

from repro.core import build_lp
from repro.network import ArchitectureGraph, random_mapping
from repro.network.params import LogGPSParams
from repro.placement import llamp_placement
from repro.placement.algorithm import _swap_gain
from repro.testing import build_random_dag

from _bench_utils import emit_json, print_header, print_rows

NRANKS = 64
NODES = 16
ROUNDS = 96
SEED = 0
MAX_ITERATIONS = 30
PARAMS = LogGPSParams(L=0.5, o=0.2, g=0.0, G=0.001)
MIN_SPEEDUP = 5.0


def _cold_placement(graph, params, arch, initial_mapping, max_iterations):
    """The pre-engine loop: scalar gain scan + dict-based bound updates."""
    nranks = graph.nranks
    mapping = list(initial_mapping)
    graph_lp = build_lp(graph, params, latency_mode="per_pair", gap_mode="per_pair")

    def solve_for(candidate):
        graph_lp.set_pair_latency_bounds(arch.latency_matrix(candidate))
        if graph_lp.pair_gap:
            graph_lp.set_pair_gap_bounds(arch.gap_matrix(candidate))
        return graph_lp.model.solve(backend="highs")

    solution = solve_for(mapping)
    best_runtime = solution.objective
    swaps = []
    iterations = 0
    while iterations < max_iterations:
        iterations += 1
        sensitivity_L = graph_lp.pair_latency_sensitivities(solution)
        sensitivity_G = (
            graph_lp.pair_gap_sensitivities(solution) if graph_lp.pair_gap else None
        )
        best_pair, best_gain = None, 0.0
        for i in range(nranks):
            for j in range(i + 1, nranks):
                gain = _swap_gain(i, j, sensitivity_L, sensitivity_G, mapping, arch)
                if gain > best_gain + 1e-9:
                    best_gain, best_pair = gain, (i, j)
        if best_pair is None:
            break
        i, j = best_pair
        candidate = list(mapping)
        candidate[i], candidate[j] = candidate[j], candidate[i]
        candidate_solution = solve_for(candidate)
        if candidate_solution.objective < best_runtime - 1e-9:
            mapping, best_runtime = candidate, candidate_solution.objective
            solution = candidate_solution
            swaps.append(best_pair)
        else:
            break
    return mapping, best_runtime, swaps


def _run():
    graph = build_random_dag(SEED, nranks=NRANKS, rounds=ROUNDS)
    arch = ArchitectureGraph(num_nodes=NODES, processes_per_node=NRANKS // NODES,
                             intra_node_latency=0.3, inter_node_latency=5.0)
    initial = random_mapping(NRANKS, arch, seed=1)

    start = time.perf_counter()
    incremental = llamp_placement(
        graph, PARAMS, arch, initial_mapping=initial,
        max_iterations=MAX_ITERATIONS, top_k=1,
    )
    incremental_s = time.perf_counter() - start

    start = time.perf_counter()
    cold_mapping, cold_runtime, cold_swaps = _cold_placement(
        graph, PARAMS, arch, initial, MAX_ITERATIONS
    )
    cold_s = time.perf_counter() - start

    return incremental, incremental_s, cold_mapping, cold_runtime, cold_swaps, cold_s


def test_placement_incremental_vs_cold(run_once):
    incremental, incremental_s, cold_mapping, cold_runtime, cold_swaps, cold_s = (
        run_once(_run)
    )
    speedup = cold_s / incremental_s

    print_header(f"Rank placement, cold vs incremental — random DAG "
                 f"({NRANKS} ranks on {NODES} nodes, {ROUNDS} rounds)")
    print_rows(
        ["loop", "wall time [s]", "swaps", "runtime [µs]"],
        [
            ["cold (pre-engine)", cold_s, len(cold_swaps), cold_runtime],
            ["incremental (ParametricLP)", incremental_s, len(incremental.swaps),
             incremental.predicted_runtime],
        ],
    )
    print(f"\nspeedup             : {speedup:.1f}x (required: ≥{MIN_SPEEDUP:.0f}x)")
    print(f"improvement          : {incremental.improvement * 100:.2f}% over the "
          f"initial mapping in {incremental.iterations} iterations")
    print(f"LP solves            : {incremental.num_lp_solves} on one assembled model "
          f"({incremental.num_reassemblies} re-assemblies)")

    emit_json("placement_incremental", {
        "cold_s": cold_s,
        "incremental_s": incremental_s,
        "speedup": speedup,
        "swaps": len(incremental.swaps),
        "lp_solves": incremental.num_lp_solves,
        "reassemblies": incremental.num_reassemblies,
        "predicted_runtime_us": incremental.predicted_runtime,
    })

    # identical trajectory: same final mapping, runtime and swap sequence
    assert incremental.mapping == cold_mapping
    assert abs(incremental.predicted_runtime - cold_runtime) <= 1e-6
    assert incremental.swaps == cold_swaps
    # the loop really was incremental …
    assert incremental.num_reassemblies == 0
    assert len(incremental.swaps) >= 5, "instance must exercise several iterations"
    # … and at least 5x faster than the cold loop
    assert speedup >= MIN_SPEEDUP
