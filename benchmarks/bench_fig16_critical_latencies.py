"""Figure 16 / Algorithm 2 — critical latencies within an interval.

Beyond the toy example (covered in ``bench_fig04_running_example``), this
benchmark sweeps an application graph and cross-checks the LP-based
breakpoint search (our Algorithm 2 equivalent) against the exact parametric
envelope: both must find the same critical latencies, and λ_L must be
constant between consecutive breakpoints.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import CSCS_TESTBED
from repro.apps import lulesh
from repro.core import build_lp, find_critical_latencies, parametric_analysis
from repro.core.critical_latency import critical_latency_curve

from _bench_utils import emit_json, print_header, print_rows

NRANKS = 8
ITERATIONS = 4
L_MIN, L_MAX = CSCS_TESTBED.L, 400.0


def _run():
    graph = lulesh.build(NRANKS, params=CSCS_TESTBED, iterations=ITERATIONS)
    lp = build_lp(graph, CSCS_TESTBED)
    lp_breakpoints = find_critical_latencies(lp, L_MIN, L_MAX)
    parametric = parametric_analysis(graph, CSCS_TESTBED, l_min=0.0, l_max=L_MAX)
    exact_breakpoints = [b for b in parametric.critical_latencies() if L_MIN < b < L_MAX]
    tangents = critical_latency_curve(lp, L_MIN, L_MAX)
    return lp_breakpoints, exact_breakpoints, tangents, parametric


def test_fig16_critical_latencies(run_once):
    lp_breakpoints, exact_breakpoints, tangents, parametric = run_once(_run)

    print_header("Algorithm 2 / Fig. 16 — critical latencies of LULESH "
                 f"({NRANKS} ranks) in [{L_MIN}, {L_MAX}] µs")
    print(f"LP-based search found   : {[round(b, 3) for b in lp_breakpoints]}")
    print(f"parametric engine found : {[round(b, 3) for b in exact_breakpoints]}")
    print("\nλ_L per segment (probed at segment mid-points):")
    print_rows(["segment mid L [µs]", "T [µs]", "λ_L"],
               [[t.L, t.value, t.slope] for t in tangents])

    emit_json("fig16_critical_latencies", {
        "lp_breakpoints_us": list(lp_breakpoints),
        "exact_breakpoints_us": list(exact_breakpoints),
        "segments": [{"L_us": t.L, "T_us": t.value, "lambda_L": t.slope}
                     for t in tangents],
    })

    # every breakpoint the LP search reports must be a genuine breakpoint of
    # the exact envelope (the envelope may additionally contain breakpoints
    # whose runtime effect is below the LP search's numerical tolerance)
    assert lp_breakpoints, "the interval must contain at least one critical latency"
    for a in lp_breakpoints:
        assert min(abs(a - b) for b in exact_breakpoints) < 1.0
    # λ_L is a non-decreasing step function across the segments
    slopes = [t.slope for t in tangents]
    assert all(b >= a - 1e-9 for a, b in zip(slopes, slopes[1:]))
    # and matches the parametric slope inside each segment
    for t in tangents:
        assert t.slope == pytest.approx(parametric.envelope.slope(t.L), abs=1e-6)
    # the two methods agree on T(L) across the whole interval
    for L in np.linspace(L_MIN, L_MAX, 7):
        assert parametric.envelope.value(L) == pytest.approx(
            parametric.envelope.value(L), rel=1e-9)
