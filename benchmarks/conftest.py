"""Shared fixtures for the benchmark harnesses.

Every file under ``benchmarks/`` regenerates one table or figure of the
paper: it prints the corresponding rows/series (measured on this machine and
at laptop scale) and asserts the *qualitative shape* the paper reports (who
wins, orderings, crossovers).  Run them with::

    pytest benchmarks/ --benchmark-only

Scales are reduced with respect to the paper (8–27 ranks, tens of
iterations) so the whole suite completes in a few minutes; every benchmark
exposes its scale knobs at the top of its file.

Printing helpers live in :mod:`_bench_utils` (not here): ``conftest`` is not
an importable module name — when pytest collects both ``tests/`` and
``benchmarks/``, whichever conftest loads first shadows the other.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run the measured callable exactly once (no statistical repetitions)."""

    def runner(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
