"""Shared helpers for the benchmark harnesses.

Every file under ``benchmarks/`` regenerates one table or figure of the
paper: it prints the corresponding rows/series (measured on this machine and
at laptop scale) and asserts the *qualitative shape* the paper reports (who
wins, orderings, crossovers).  Run them with::

    pytest benchmarks/ --benchmark-only

Scales are reduced with respect to the paper (8–27 ranks, tens of
iterations) so the whole suite completes in a few minutes; every benchmark
exposes its scale knobs at the top of its file.
"""

from __future__ import annotations

import pytest


def print_header(title: str) -> None:
    print()
    print("=" * 78)
    print(title)
    print("=" * 78)


def print_rows(headers: list[str], rows: list[list]) -> None:
    widths = [max(len(str(h)), max((len(_fmt(r[i])) for r in rows), default=0))
              for i, h in enumerate(headers)]
    print("  ".join(str(h).rjust(w) for h, w in zip(headers, widths)))
    for row in rows:
        print("  ".join(_fmt(v).rjust(w) for v, w in zip(row, widths)))


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


@pytest.fixture
def run_once(benchmark):
    """Run the measured callable exactly once (no statistical repetitions)."""

    def runner(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
