"""Table I / Figure 7 — runtime of the LP analysis vs the LogGOPS simulator.

The paper sweeps the network latency from 3 µs to 13 µs in 1 µs steps and
measures how long (a) LLAMP with Gurobi and (b) LogGOPSim take to produce the
runtime predictions for the NPB kernels, LULESH and LAMMPS.  Here the same
sweep runs against our HiGHS-based LP pipeline and our discrete-event
simulator.  The quantitative claim to check is the *shape*: the LP analysis
(which additionally yields λ_L, tolerances and critical latencies) stays
within a small factor of — and is usually faster per evaluation point than —
re-simulating, and the gap does not close as the graphs grow.

Appendix E's LP-generation overhead (seconds per million vertices) is
reported as well.
"""

from __future__ import annotations

import time

import numpy as np

from repro import CSCS_TESTBED
from repro.apps import lammps, lulesh, npb
from repro.core.lp_builder import build_lp
from repro.simulator import simulate_sweep

from _bench_utils import emit_json, print_header, print_rows

NRANKS = 8
SWEEP = [3.0 + i for i in range(0, 11, 2)]  # 3..13 µs, 2 µs steps (scaled down)

WORKLOADS = {
    "NPB BT": lambda: npb.build_bt(NRANKS, params=CSCS_TESTBED, iterations=12),
    "NPB CG": lambda: npb.build_cg(NRANKS, params=CSCS_TESTBED, iterations=20),
    "NPB EP": lambda: npb.build_ep(NRANKS, params=CSCS_TESTBED),
    "NPB FT": lambda: npb.build_ft(NRANKS, params=CSCS_TESTBED, iterations=4),
    "NPB LU": lambda: npb.build_lu(NRANKS, params=CSCS_TESTBED, iterations=10),
    "NPB MG": lambda: npb.build_mg(NRANKS, params=CSCS_TESTBED, vcycles=6),
    "NPB SP": lambda: npb.build_sp(NRANKS, params=CSCS_TESTBED, iterations=15),
    "LULESH": lambda: lulesh.build(NRANKS, params=CSCS_TESTBED, iterations=15),
    "LAMMPS": lambda: lammps.build(NRANKS, params=CSCS_TESTBED, steps=20),
}


def _run_table():
    rows = []
    for name, factory in WORKLOADS.items():
        graph = factory()

        t0 = time.perf_counter()
        lp = build_lp(graph, CSCS_TESTBED)
        build_time = time.perf_counter() - t0

        t0 = time.perf_counter()
        lp_runtimes = [lp.solve_runtime(L=L).objective for L in SWEEP]
        lp_time = time.perf_counter() - t0

        # the simulator sweep runs as ONE batched level-synchronous pass
        # (every ΔL point advances per level; adding ΔL on the wire equals
        # raising the base latency to L under the ideal injector)
        t0 = time.perf_counter()
        sim_runtimes = simulate_sweep(
            graph, CSCS_TESTBED, [L - CSCS_TESTBED.L for L in SWEEP]
        ).makespan
        sim_time = time.perf_counter() - t0

        agreement = float(np.max(np.abs(np.array(lp_runtimes) - np.array(sim_runtimes))
                                 / np.array(sim_runtimes)))
        rows.append({
            "app": name,
            "events": graph.num_events,
            "build_s": build_time,
            "llamp_s": lp_time,
            "sim_s": sim_time,
            "agreement": agreement,
        })
    return rows


def test_table1_solver_vs_simulator(run_once):
    rows = run_once(_run_table)

    print_header("Table I / Fig. 7 — LP analysis vs LogGOPS simulation "
                 f"({len(SWEEP)}-point latency sweep, {NRANKS} ranks)")
    print_rows(
        ["app", "events", "LP build [s]", "LLAMP sweep [s]", "simulator sweep [s]",
         "ratio sim/LLAMP", "max rel. diff"],
        [[r["app"], r["events"], r["build_s"], r["llamp_s"], r["sim_s"],
          r["sim_s"] / max(r["llamp_s"], 1e-9), r["agreement"]] for r in rows],
    )
    per_million = [r["build_s"] / max(r["events"], 1) * 1e6 for r in rows]
    print(f"\nLP generation overhead: {np.mean(per_million):.1f} s per million vertices "
          "(paper: < 15 s per million, Appendix E)")

    emit_json("table1_solver_vs_simulator", rows)

    # both pipelines must agree on the predicted runtimes (same model)
    for r in rows:
        assert r["agreement"] < 1e-6, r
    # the analysis must remain competitive with re-simulation across the board:
    # in the paper the solver wins by >6x; we only assert it is not an order of
    # magnitude slower at any size, and that the sweep finishes.
    for r in rows:
        assert r["llamp_s"] < 10 * r["sim_s"] + 1.0, r
