"""Figure 8 — latency-injection strategies and the distortion they introduce.

Two back-to-back eager sends with pre-posted receives.  Strategy A (ideal,
ΔL on the wire) and strategy D (the paper's progress+delay-thread injector)
must agree; strategy B (sender-side delay, Underwood et al.) delays the
sender and doubles the effective injection; strategy C (single receiver
progress thread) serialises the delays once ΔL exceeds the overhead ``o``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import CSCS_TESTBED
from repro.mpi import run_program
from repro.schedgen import build_graph
from repro.simulator import (
    INJECTOR_NAMES,
    make_injector,
    simulate,
    simulate_sweep,
    simulate_sweep_grid,
    two_message_model,
)

from _bench_utils import emit_json, print_header, print_rows

DELTAS = [0.0, 5.0, 20.0, 50.0]


def _two_send_graph():
    def app(comm):
        if comm.rank == 0:
            comm.send(1, 1, tag=0)
            comm.send(1, 1, tag=1)
        else:
            r0 = comm.irecv(0, 1, tag=0)
            r1 = comm.irecv(0, 1, tag=1)
            comm.waitall([r0, r1])

    return build_graph(run_program(app, 2))


def _run():
    graph = _two_send_graph()
    analytic = {
        (name, delta): two_message_model(CSCS_TESTBED, delta, name)
        for name in INJECTOR_NAMES for delta in DELTAS
    }
    # All four strategies over the whole ΔL axis in ONE graph traversal.
    grid = simulate_sweep_grid(graph, CSCS_TESTBED, DELTAS, injectors=INJECTOR_NAMES)
    simulated = {
        (name, delta): float(grid.makespan[i, k])
        for i, name in enumerate(INJECTOR_NAMES)
        for k, delta in enumerate(DELTAS)
    }

    # Result identity: the single-traversal grid must reproduce the
    # per-injector sweep loop bit-for-bit …
    for i, name in enumerate(INJECTOR_NAMES):
        loop = simulate_sweep(graph, CSCS_TESTBED, DELTAS, injector=name)
        np.testing.assert_array_equal(grid.makespan[i], loop.makespan)
        np.testing.assert_array_equal(grid.rank_finish[i], loop.rank_finish)
    # … and the per-point scalar simulator to solver precision.
    for (name, delta), makespan in simulated.items():
        point = simulate(graph, CSCS_TESTBED, injector=make_injector(name, delta))
        assert makespan == pytest.approx(point.makespan, abs=1e-9)
    return analytic, simulated


def test_fig08_injector_strategies(run_once):
    analytic, simulated = run_once(_run)

    print_header("Figure 8 — receiver completion time t_R1 [µs] per injection strategy")
    rows = []
    for delta in DELTAS:
        rows.append([delta] + [analytic[(name, delta)].receiver_finish for name in INJECTOR_NAMES])
    print_rows(["ΔL [µs]"] + list(INJECTOR_NAMES), rows)

    print("\nsimulated makespans of the same micro-benchmark [µs]:")
    rows = []
    for delta in DELTAS:
        rows.append([delta] + [simulated[(name, delta)] for name in INJECTOR_NAMES])
    print_rows(["ΔL [µs]"] + list(INJECTOR_NAMES), rows)

    emit_json("fig08_injector", {
        "receiver_finish_us": {
            f"{name}@{delta}": analytic[(name, delta)].receiver_finish
            for name in INJECTOR_NAMES for delta in DELTAS
        },
        "simulated_makespan_us": {
            f"{name}@{delta}": simulated[(name, delta)]
            for name in INJECTOR_NAMES for delta in DELTAS
        },
    })

    for delta in DELTAS:
        ideal = analytic[("ideal", delta)]
        ours = analytic[("delay_thread", delta)]
        sender = analytic[("sender_delay", delta)]
        progress = analytic[("receiver_progress", delta)]
        # D reproduces A exactly
        assert ours.receiver_finish == pytest.approx(ideal.receiver_finish)
        if delta > 0:
            # B doubles the injected latency seen by the receiver
            assert sender.receiver_finish == pytest.approx(
                ideal.receiver_finish + delta)
            # and delays the sender
            assert sender.sender_finish > ideal.sender_finish
        if delta > CSCS_TESTBED.o:
            # C serialises the delays once ΔL > o
            assert progress.receiver_finish > ideal.receiver_finish
    # the simulator implements the same policies
    for delta in DELTAS:
        assert simulated[("ideal", delta)] == pytest.approx(simulated[("delay_thread", delta)])
        if delta > 0:
            assert simulated[("sender_delay", delta)] > simulated[("ideal", delta)]
