"""Shared printing helpers for the benchmark harnesses.

Kept out of ``conftest.py`` on purpose: ``conftest`` is not a safe import
target (both ``tests/`` and ``benchmarks/`` have one, and whichever pytest
loads first wins the ``conftest`` module name).  Benchmark modules import
from ``_bench_utils`` instead, which is unique on ``sys.path``.
"""

from __future__ import annotations


def print_header(title: str) -> None:
    print()
    print("=" * 78)
    print(title)
    print("=" * 78)


def print_rows(headers: list[str], rows: list[list]) -> None:
    widths = [max(len(str(h)), max((len(_fmt(r[i])) for r in rows), default=0))
              for i, h in enumerate(headers)]
    print("  ".join(str(h).rjust(w) for h, w in zip(headers, widths)))
    for row in rows:
        print("  ".join(_fmt(v).rjust(w) for v, w in zip(row, widths)))


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
