"""Shared printing/recording helpers for the benchmark harnesses.

Kept out of ``conftest.py`` on purpose: ``conftest`` is not a safe import
target (both ``tests/`` and ``benchmarks/`` have one, and whichever pytest
loads first wins the ``conftest`` module name).  Benchmark modules import
from ``_bench_utils`` instead, which is unique on ``sys.path``.

Every benchmark records its headline numbers with :func:`emit_json`, which
writes ``BENCH_<name>.json`` (to ``$BENCH_OUTPUT_DIR``, default the current
working directory) so the performance trajectory is machine-readable across
PRs and CI runs.
"""

from __future__ import annotations

import json
import os


def peak_rss_mb() -> float | None:
    """Peak resident-set size of this process so far, in MiB.

    Prefers ``VmHWM`` from ``/proc/self/status`` (Linux high-water mark),
    falling back to ``resource.getrusage`` (``ru_maxrss`` is KiB on Linux,
    bytes on macOS).  Returns ``None`` when neither source is available so
    records stay portable.
    """
    try:
        with open("/proc/self/status") as fh:
            for line in fh:
                if line.startswith("VmHWM:"):
                    return float(line.split()[1]) / 1024.0
    except OSError:
        pass
    try:
        import resource
        import sys

        ru_maxrss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        divisor = 1024.0 * 1024.0 if sys.platform == "darwin" else 1024.0
        return float(ru_maxrss) / divisor
    except (ImportError, OSError, ValueError):
        return None


def print_header(title: str) -> None:
    print()
    print("=" * 78)
    print(title)
    print("=" * 78)


def print_rows(headers: list[str], rows: list[list]) -> None:
    widths = [max(len(str(h)), max((len(_fmt(r[i])) for r in rows), default=0))
              for i, h in enumerate(headers)]
    print("  ".join(str(h).rjust(w) for h, w in zip(headers, widths)))
    for row in rows:
        print("  ".join(_fmt(v).rjust(w) for v, w in zip(row, widths)))


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def _json_default(value):
    """Coerce NumPy scalars/arrays so benchmark payloads serialise as-is."""
    import numpy as np

    # np.bool_ first: it is not an np.integer subclass, and int() would
    # silently change its JSON type anyway
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    raise TypeError(f"cannot serialise {type(value).__name__} in a benchmark record")


def emit_json(name: str, payload) -> str:
    """Write the machine-readable record ``BENCH_<name>.json`` and return its path.

    ``payload`` is any JSON-serialisable structure (NumPy scalars and arrays
    are coerced); ``$BENCH_OUTPUT_DIR`` overrides the output directory.
    Every record also carries ``peak_rss_mb`` — the process peak RSS at emit
    time — as a top-level sibling of ``results`` so the summary collector
    can build a memory column without touching benchmark payloads.
    """
    out_dir = os.environ.get("BENCH_OUTPUT_DIR", ".")
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, f"BENCH_{name}.json")
    record = {"bench": name, "peak_rss_mb": peak_rss_mb(), "results": payload}
    with open(path, "w") as fh:
        json.dump(record, fh, indent=2, default=_json_default)
        fh.write("\n")
    print(f"[bench] wrote {path}")
    return path
