"""Figure 10 — ICON with recursive-doubling vs ring allreduce.

Schedgen substitutes the allreduce algorithm; the ring algorithm creates
``2(P-1)`` dependent messages per reduction instead of ``log2 P``, which
makes ICON markedly more latency sensitive.  At the paper's largest scale the
ring variant tolerates ~4x less latency and its ρ_L roughly doubles.
"""

from __future__ import annotations

import numpy as np

from repro import CSCS_TESTBED, LatencyAnalyzer
from repro.apps import icon
from repro.schedgen import CollectiveAlgorithms

from _bench_utils import emit_json, print_header, print_rows

SCALES = (8, 16)
STEPS = 8
DELTAS = np.linspace(0.0, 100.0, 5)


def _run():
    results = {}
    for nranks in SCALES:
        for algorithm in ("recursive_doubling", "ring"):
            graph = icon.build(
                nranks, params=CSCS_TESTBED, steps=STEPS,
                algorithms=CollectiveAlgorithms(allreduce=algorithm),
            )
            analyzer = LatencyAnalyzer(graph, CSCS_TESTBED)
            curve = analyzer.sensitivity_curve(DELTAS)
            report = analyzer.tolerance_report()
            results[(nranks, algorithm)] = {
                "tol5": report.delta_tolerance(0.05),
                "tol1": report.delta_tolerance(0.01),
                "lambda": curve.latency_sensitivity,
                "rho": curve.l_ratio,
                "runtime": curve.runtime,
            }
    return results


def test_fig10_collective_algorithms(run_once):
    results = run_once(_run)

    print_header("Figure 10 — ICON: recursive doubling vs ring allreduce")
    rows = []
    for (nranks, algorithm), data in results.items():
        rows.append([
            nranks, algorithm, data["tol1"], data["tol5"],
            float(data["lambda"][0]), float(data["lambda"][-1]),
            float(data["rho"][-1]) * 100.0,
        ])
    print_rows(["ranks", "allreduce", "1% tol [µs]", "5% tol [µs]",
                "λ_L(ΔL=0)", f"λ_L(ΔL={DELTAS[-1]:.0f})", "ρ_L at max ΔL [%]"], rows)

    emit_json("fig10_collectives", {
        f"{nranks}/{algorithm}": data for (nranks, algorithm), data in results.items()
    })

    for nranks in SCALES:
        rd = results[(nranks, "recursive_doubling")]
        ring = results[(nranks, "ring")]
        # the ring algorithm is substantially more latency sensitive …
        assert ring["lambda"][-1] > rd["lambda"][-1]
        # … and tolerates several times less added latency
        assert rd["tol5"] > 2 * ring["tol5"]
        # its latency share of the critical path is larger
        assert ring["rho"][-1] > rd["rho"][-1]
    # the effect intensifies with scale: the tolerance ratio grows
    ratio_small = (results[(SCALES[0], "recursive_doubling")]["tol5"]
                   / results[(SCALES[0], "ring")]["tol5"])
    ratio_large = (results[(SCALES[1], "recursive_doubling")]["tol5"]
                   / results[(SCALES[1], "ring")]["tol5"])
    assert ratio_large > ratio_small * 0.8
