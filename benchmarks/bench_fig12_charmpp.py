"""Figure 12 — NAMD on a charm++-style adaptive runtime.

The paper records NAMD traces at several injected latencies and shows that
each trace predicts the runtime best around the latency at which it was
recorded, because charm++ adapts its schedule (more overlap) when the network
is slower.  The skeleton's ``recorded_delta_us`` knob reproduces that
adaptation; the shape to verify is that a trace recorded at a high ΔL
predicts a *flatter* latency response than one recorded at ΔL = 0, and that
the measured (simulated) runtime of the adapted schedule at high ΔL is lower.
"""

from __future__ import annotations

import numpy as np

from repro import CSCS_TESTBED, LatencyAnalyzer
from repro.apps import namd
from repro.simulator import simulate_sweep

from _bench_utils import emit_json, print_header, print_rows

NRANKS = 8
STEPS = 20
RECORDED_AT = (0.0, 50.0, 150.0)
EVAL_DELTAS = np.linspace(0.0, 300.0, 5)


def _run():
    results = {}
    for recorded in RECORDED_AT:
        graph = namd.build(NRANKS, params=CSCS_TESTBED, steps=STEPS,
                           recorded_delta_us=recorded)
        analyzer = LatencyAnalyzer(graph, CSCS_TESTBED)
        predicted = [analyzer.predict_runtime(d) for d in EVAL_DELTAS]
        # one batched level-synchronous pass simulates the whole ΔL sweep
        measured = simulate_sweep(graph, CSCS_TESTBED, EVAL_DELTAS).makespan
        results[recorded] = {
            "predicted": np.asarray(predicted),
            "measured": measured,
        }
    return results


def test_fig12_charmpp_adaptation(run_once):
    results = run_once(_run)

    print_header("Figure 12 — NAMD/charm++: traces recorded at different ΔL")
    rows = []
    for i, delta in enumerate(EVAL_DELTAS):
        row = [delta]
        for recorded in RECORDED_AT:
            row.append(results[recorded]["predicted"][i] / 1e6)
        rows.append(row)
    print_rows(["eval ΔL [µs]"] + [f"trace@{r:.0f}µs [s]" for r in RECORDED_AT], rows)

    slowdowns = {}
    for recorded, data in results.items():
        slowdowns[recorded] = data["predicted"][-1] / data["predicted"][0]
        # prediction matches the replayed schedule it was built from
        assert np.allclose(data["predicted"], data["measured"], rtol=1e-9)
    print("\nslowdown at ΔL = 200 µs relative to ΔL = 0, per recording point:")
    print_rows(["recorded at [µs]", "slowdown"],
               [[r, slowdowns[r]] for r in RECORDED_AT])

    emit_json("fig12_charmpp", {
        f"trace@{recorded}": data for recorded, data in results.items()
    })

    # the schedule recorded under higher latency hides more of it
    assert slowdowns[RECORDED_AT[2]] < slowdowns[RECORDED_AT[1]] < slowdowns[RECORDED_AT[0]]
    # at high ΔL the adapted schedule is genuinely faster, despite its overhead
    assert (results[RECORDED_AT[2]]["measured"][-1]
            < results[RECORDED_AT[0]]["measured"][-1])
