"""Shared-memory scenario fleet vs the pickling pool (acceptance criterion).

The legacy multi-process sweep pickled every :class:`ExecutionGraph` into
every pool task: a duplicated-graph fleet of J scenarios over U unique
graphs costs J full serialisations *and* J full LP sweeps.  The
:class:`~repro.parallel.SweepPool` ships each unique graph once as
shared-memory columns (workers attach zero-copy views) and dedupes the
batch by content digest, so the same fleet costs U sweeps and zero pickles.

Acceptance criterion: on a fleet of ``DUPLICATES`` copies of each of two
64-rank ring-allreduce schedules, the shared-memory fleet must be at least
**5×** faster end-to-end than the pickling pool, with **bit-identical**
envelopes, **zero** leaked ``/dev/shm`` segments after the run, and
per-worker peak RSS no worse than ~the pickling pool's (the shared path maps
the same pages instead of holding private unpickled copies).
"""

from __future__ import annotations

import multiprocessing
import resource
import time

from repro.core.parametric import _sweep_one_graph
from repro.mpi import run_program
from repro.network.params import LogGPSParams
from repro.parallel import SweepPool, SweepTask, live_shared_segments
from repro.schedgen import CollectiveAlgorithms, build_graph

from _bench_utils import emit_json, print_header, print_rows

NRANKS = 64
ITERATIONS = 8
MESSAGE_BYTES = (64 * 1024, 32 * 1024)  # two unique graphs
DUPLICATES = 12                          # scenarios per unique graph
L_MIN, L_MAX = 1.0, 3.0
# pinned worker count: both paths use the same pool size, so the measured
# ratio isolates the protocol difference (pickling + duplicate solves vs
# shared columns + digest dedupe) instead of the host's core count
PROCESSES = 2
MIN_SPEEDUP = 5.0
RSS_SLACK = 1.25

PARAMS = LogGPSParams(L=1.0, o=0.5, g=0.0, G=0.001)
BUILD_KWARGS = {"latency_mode": "global"}


def _build_graphs():
    graphs = []
    for message_bytes in MESSAGE_BYTES:

        def app(comm, _bytes=message_bytes):
            for _ in range(ITERATIONS):
                comm.compute(1.0)
                comm.allreduce(_bytes)

        program = run_program(app, NRANKS)
        graphs.append(
            build_graph(program, algorithms=CollectiveAlgorithms(allreduce="ring"))
        )
    return graphs


def _pickling_job(job):
    """The legacy path: the whole graph arrives pickled inside the task."""
    envelope = _sweep_one_graph(job)
    return envelope, int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


def _run_pickling_pool(fleet):
    # both paths pin envelope_engine="lp": this benchmark isolates the
    # transport cost (pickled graphs vs shared columns), so the per-task
    # compute must stay identical and engine-independent
    jobs = [
        (graph, PARAMS, L_MIN, L_MAX, "auto", 50_000, None, "lp", BUILD_KWARGS)
        for graph in fleet
    ]
    start = time.perf_counter()
    ctx = multiprocessing.get_context("spawn")
    with ctx.Pool(PROCESSES) as pool:
        out = pool.map(_pickling_job, jobs)
    elapsed = time.perf_counter() - start
    envelopes = [envelope for envelope, _ in out]
    return elapsed, envelopes, max(rss for _, rss in out)


def _run_shared_fleet(fleet):
    digests = [graph.content_digest() for graph in fleet]
    by_digest = dict(zip(digests, fleet))
    tasks = [
        SweepTask(
            graph_digest=digest,
            params_digest=PARAMS.content_digest(),
            l_min=L_MIN,
            l_max=L_MAX,
            backend="auto",
            max_pieces=50_000,
            build_kwargs=tuple(sorted(BUILD_KWARGS.items())),
            envelope_engine="lp",
            params=PARAMS,
            scenario=f"fleet[{i}]",
        )
        for i, digest in enumerate(digests)
    ]
    start = time.perf_counter()
    with SweepPool(PROCESSES) as pool:
        payloads = pool.run_tasks(tasks, by_digest)
    elapsed = time.perf_counter() - start
    envelopes = [payload["envelope"] for payload in payloads]
    return elapsed, envelopes, max(p["worker_rss_kb"] for p in payloads)


def _run():
    segments_before = live_shared_segments()
    graphs = _build_graphs()
    # the duplicated-graph fleet: every unique schedule appears DUPLICATES times
    fleet = [graphs[i % len(graphs)] for i in range(len(graphs) * DUPLICATES)]

    pickling_s, pickling_envelopes, pickling_rss = _run_pickling_pool(fleet)
    shared_s, shared_envelopes, shared_rss = _run_shared_fleet(fleet)

    return {
        "nranks": NRANKS,
        "vertices": graphs[0].num_vertices,
        "unique_graphs": len(graphs),
        "fleet_size": len(fleet),
        "processes": PROCESSES,
        "pickling_s": pickling_s,
        "shared_s": shared_s,
        "speedup": pickling_s / shared_s,
        "pickling_worker_rss_kb": pickling_rss,
        "shared_worker_rss_kb": shared_rss,
        "bit_identical": shared_envelopes == pickling_envelopes,
        "leaked_segments": sorted(live_shared_segments() - segments_before),
    }


def test_shared_fleet_speedup(run_once):
    results = run_once(_run)

    print_header(
        f"Shared-memory scenario fleet — {results['fleet_size']} scenarios over "
        f"{results['unique_graphs']} unique {NRANKS}-rank ring-allreduce graphs"
    )
    print_rows(
        ["path", "wall [s]", "worker RSS [MB]"],
        [
            ["pickling pool", results["pickling_s"], results["pickling_worker_rss_kb"] / 1024],
            ["shared fleet", results["shared_s"], results["shared_worker_rss_kb"] / 1024],
        ],
    )
    print(f"speedup: {results['speedup']:.1f}x  "
          f"(bit-identical: {results['bit_identical']}, "
          f"leaked segments: {len(results['leaked_segments'])})")

    emit_json("shared_fleet", results)

    assert results["bit_identical"], "shared fleet envelopes differ from the pickling pool"
    assert not results["leaked_segments"], (
        f"leaked shared-memory segments: {results['leaked_segments']}"
    )
    assert results["speedup"] >= MIN_SPEEDUP, (
        f"shared fleet only {results['speedup']:.1f}x faster than the pickling pool"
    )
    assert results["shared_worker_rss_kb"] <= results["pickling_worker_rss_kb"] * RSS_SLACK, (
        "shared-fleet worker RSS grew versus the pickling pool: "
        f"{results['shared_worker_rss_kb']} kB vs {results['pickling_worker_rss_kb']} kB"
    )
