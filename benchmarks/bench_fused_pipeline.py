"""Fused analyze-only pipeline: op batches → CSR direct vs freeze-then-compile.

The analyze-only path (``llamp analyze``: program in, objective/λ out) never
needs a frozen, validated ``ExecutionGraph`` — it only needs the CSR arrays
the LP compiler reads.  ``compile_lp_from_batches`` therefore attaches a
zero-copy graph over the schedule builder's column buffers and computes the
topological levels by chain condensation (run collapse + pointer jumping
over single-predecessor chains) instead of the generic frontier peel,
skipping the freeze copies and the structural validation pass entirely —
while emitting a **bit-identical** LP.

The LP workload is a 64-rank allreduce schedule with a long straggler
compute chain on rank 0 — the shape the frozen path is worst at (levels ≈
vertices, so the per-level frontier peel degenerates to a per-vertex list
walk) and the chain-condensed engine is built for (the chain collapses in
one O(n) pass).  Both timed paths start from the same ``RankOpBatch``
columns: the program→batches conversion is shared verbatim by both
pipelines, so it is hoisted out of the ratio and reported separately
(``batches_s``; program-inclusive totals are in the JSON too).

Acceptance criteria:

* batches→objective, the fused pipeline is at least **3×** faster than
  freeze-then-compile on the straggler allreduce schedule, with identical
  LP structure, objective, duals and graph content digest;
* the 2-D ``(injector × ΔL)`` sweep grid traverses the Fig. 8 strategy grid
  in one pass at least **1.4×** faster than the per-injector sweep loop,
  bit-identically (on a balanced allreduce schedule — the simulator bench
  shape, not the straggler chain).
"""

from __future__ import annotations

import gc
import time

import numpy as np

from repro.lp import compile_lp, compile_lp_from_batches
from repro.mpi import run_program
from repro.network.params import CSCS_TESTBED
from repro.schedgen.builder import ProtocolConfig
from repro.schedgen.collectives import CollectiveAlgorithms
from repro.schedgen.columnar import (
    batches_from_program,
    build_columnar,
    build_columnar_fused,
)
from repro.simulator import INJECTOR_NAMES, simulate_sweep, simulate_sweep_grid

from _bench_utils import emit_json, print_header, print_rows

NRANKS = 64
STRAGGLER_ITERATIONS = 2
STRAGGLER_CHAIN_OPS = 100_000
GRID_ITERATIONS = 24
GRID_CHAIN_OPS = 40
MESSAGE_BYTES = 32 * 1024
MIN_SPEEDUP = 3.0
GRID_DELTAS = np.linspace(0.0, 50.0, 8)
MIN_GRID_SPEEDUP = 1.4


def _straggler_program():
    """Rank 0 carries a deep compute chain; everyone joins the allreduces."""

    def app(comm):
        for _ in range(STRAGGLER_ITERATIONS):
            chain = STRAGGLER_CHAIN_OPS if comm.rank == 0 else 4
            for _ in range(chain):
                comm.compute(0.5)
            comm.allreduce(MESSAGE_BYTES)

    return run_program(app, NRANKS)


def _grid_program():
    """Balanced allreduce iterations — the simulator benchmark shape."""

    def app(comm):
        for _ in range(GRID_ITERATIONS):
            for _ in range(GRID_CHAIN_OPS):
                comm.compute(0.5)
            comm.allreduce(MESSAGE_BYTES)

    return run_program(app, NRANKS)


def _time(fn, reps: int):
    """Best-of-``reps`` wall time with the GC paused during the window.

    Noise (scheduler preemption, GC pauses) only ever *adds* time, so the
    minimum over repetitions is the stable estimator for a ratio pin.
    """
    fn()  # warm-up (imports, allocator)
    best = float("inf")
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(reps):
            t0 = time.perf_counter()
            out = fn()
            best = min(best, time.perf_counter() - t0)
    finally:
        if gc_was_enabled:
            gc.enable()
    return best, out


def _run():
    algorithms = CollectiveAlgorithms()
    protocol = ProtocolConfig.from_params(CSCS_TESTBED)
    program = _straggler_program()

    # The program→batches conversion is byte-for-byte the same work on both
    # paths, so it runs once up front; its cost is reported alongside the
    # ratio (and folded into the program-inclusive totals below).
    batches_s, batches = _time(lambda: batches_from_program(program), reps=3)

    def frozen_path():
        graph = build_columnar(
            batches, NRANKS, algorithms=algorithms, protocol=protocol
        )
        compiled = compile_lp(graph, CSCS_TESTBED)
        return graph, compiled, compiled.model.solve(backend="highs")

    def fused_path():
        compiled = compile_lp_from_batches(
            batches, NRANKS, CSCS_TESTBED, algorithms=algorithms, protocol=protocol
        )
        return compiled.graph, compiled, compiled.model.solve(backend="highs")

    frozen_s, (frozen_graph, frozen_lp, frozen_sol) = _time(frozen_path, reps=3)
    fused_s, (fused_graph, fused_lp, fused_sol) = _time(fused_path, reps=3)

    # bit-identity: same CSR arrays, same solution, same content digest
    frozen_arrays = frozen_lp.model.to_arrays()
    fused_arrays = fused_lp.model.to_arrays()
    assert frozen_arrays.keys() == fused_arrays.keys()
    for key in frozen_arrays:
        a, b = fused_arrays[key], frozen_arrays[key]
        if isinstance(a, np.ndarray):
            np.testing.assert_array_equal(a, b, err_msg=key)
        else:
            assert a == b, key
    assert fused_sol.objective == frozen_sol.objective
    np.testing.assert_array_equal(fused_sol.duals, frozen_sol.duals)
    assert fused_graph.content_digest() == frozen_graph.content_digest()

    # Fig. 8 grid: all four strategies in one traversal vs the sweep loop
    grid_graph = build_columnar_fused(
        batches_from_program(_grid_program()),
        NRANKS,
        algorithms=algorithms,
        protocol=protocol,
    )

    def grid_pass():
        return simulate_sweep_grid(
            grid_graph, CSCS_TESTBED, GRID_DELTAS, injectors=INJECTOR_NAMES
        )

    def looped_pass():
        return [
            simulate_sweep(grid_graph, CSCS_TESTBED, GRID_DELTAS, injector=name)
            for name in INJECTOR_NAMES
        ]

    grid_s, grid = _time(grid_pass, reps=3)
    looped_s, looped = _time(looped_pass, reps=3)
    for i, sweep in enumerate(looped):
        np.testing.assert_array_equal(grid.makespan[i], sweep.makespan)
        np.testing.assert_array_equal(grid.rank_finish[i], sweep.rank_finish)

    return {
        "vertices": fused_graph.num_vertices,
        "edges": fused_graph.num_edges,
        "num_levels": fused_graph.num_levels,
        "batches_s": batches_s,
        "frozen_s": frozen_s,
        "fused_s": fused_s,
        "speedup": frozen_s / fused_s,
        "frozen_total_s": batches_s + frozen_s,
        "fused_total_s": batches_s + fused_s,
        "total_speedup": (batches_s + frozen_s) / (batches_s + fused_s),
        "objective_us": fused_sol.objective,
        "grid_vertices": grid_graph.num_vertices,
        "grid_points": int(len(INJECTOR_NAMES) * len(GRID_DELTAS)),
        "grid_s": grid_s,
        "looped_s": looped_s,
        "grid_speedup": looped_s / grid_s,
    }


def test_fused_pipeline_speedup(run_once):
    results = run_once(_run)

    print_header(
        f"Fused analyze-only pipeline — {NRANKS}-rank straggler allreduce, "
        f"{results['vertices']} vertices / {results['num_levels']} levels "
        f"(shared program→batches: {results['batches_s'] * 1e3:.1f} ms)"
    )
    print_rows(
        ["path", "batches→objective [ms]", "speedup"],
        [
            ["freeze-then-compile", results["frozen_s"] * 1e3, 1.0],
            ["fused (batches→CSR)", results["fused_s"] * 1e3, results["speedup"]],
        ],
    )
    print(
        f"\nprogram-inclusive: {results['frozen_total_s'] * 1e3:.1f} ms → "
        f"{results['fused_total_s'] * 1e3:.1f} ms "
        f"({results['total_speedup']:.2f}x)"
    )
    print(
        f"\nFig. 8 grid ({results['grid_points']} points, "
        f"{results['grid_vertices']} vertices, one traversal):"
    )
    print_rows(
        ["path", "time [ms]", "speedup"],
        [
            ["per-injector sweep loop", results["looped_s"] * 1e3, 1.0],
            ["2-D sweep grid", results["grid_s"] * 1e3, results["grid_speedup"]],
        ],
    )
    emit_json("fused_pipeline", results)

    assert results["speedup"] >= MIN_SPEEDUP, (
        f"fused pipeline only {results['speedup']:.2f}x faster than "
        f"freeze-then-compile"
    )
    assert results["grid_speedup"] >= MIN_GRID_SPEEDUP, (
        f"2-D grid only {results['grid_speedup']:.2f}x faster than the "
        f"per-injector loop"
    )
