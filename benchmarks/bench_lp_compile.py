"""Graph→LP construction: vectorised compiler vs the symbolic Algorithm 1 sweep.

PRs 1–2 made *solving* incremental (cached CSR assembly + the parametric
envelope engine), so on large schedules model *construction* became the
end-to-end bottleneck: the symbolic builder walks the DAG vertex by vertex
in Python, allocating a dict-backed ``LinearExpr`` per vertex.  The compiled
engine (``repro.lp.compiler``) lowers the frozen graph straight to CSR with
NumPy — in-degree classification, pointer-jumped chain compression, rows
only at merge points and sinks.

Acceptance criterion: on a ≥10k-vertex collective schedule the compiled
build must be at least **20×** faster than the symbolic build, with the
solved objective and duals agreeing to 1e-6 (the LP structure is identical,
so this is a sanity check rather than a tolerance).
"""

from __future__ import annotations

import time

import numpy as np

from repro.core import build_lp
from repro.mpi import run_program
from repro.network.params import CSCS_TESTBED
from repro.schedgen import build_graph

from _bench_utils import emit_json, print_header, print_rows

NRANKS = 16
ITERATIONS = 72
MESSAGE_BYTES = 64 * 1024
MIN_VERTICES = 10_000
MIN_SPEEDUP = 20.0


def collective_schedule():
    """An iterated allreduce schedule (the paper's collective workload shape)."""

    def app(comm):
        for _ in range(ITERATIONS):
            comm.compute(5.0)
            comm.allreduce(MESSAGE_BYTES)

    return build_graph(run_program(app, NRANKS))


def _time_build(graph, engine: str, reps: int) -> tuple[float, object]:
    lp = build_lp(graph, CSCS_TESTBED, engine=engine)  # warm graph caches
    t0 = time.perf_counter()
    for _ in range(reps):
        lp = build_lp(graph, CSCS_TESTBED, engine=engine)
    return (time.perf_counter() - t0) / reps, lp


def _run():
    graph = collective_schedule()
    symbolic_s, symbolic_lp = _time_build(graph, "symbolic", reps=1)
    compiled_s, compiled_lp = _time_build(graph, "compiled", reps=5)

    s_sol = symbolic_lp.solve_runtime(backend="highs")
    c_sol = compiled_lp.solve_runtime(backend="highs")
    return {
        "vertices": graph.num_vertices,
        "edges": graph.num_edges,
        "messages": graph.num_messages,
        "symbolic_s": symbolic_s,
        "compiled_s": compiled_s,
        "speedup": symbolic_s / compiled_s,
        "objective_symbolic_us": s_sol.objective,
        "objective_compiled_us": c_sol.objective,
        "objective_diff": abs(s_sol.objective - c_sol.objective),
        "max_dual_diff": float(np.abs(s_sol.duals - c_sol.duals).max()),
    }


def test_compiled_build_speedup(run_once):
    results = run_once(_run)

    print_header(
        f"Graph→LP compiler — {NRANKS}-rank allreduce schedule, "
        f"{results['vertices']} vertices / {results['messages']} messages"
    )
    print_rows(
        ["engine", "build [ms]", "speedup"],
        [
            ["symbolic", results["symbolic_s"] * 1e3, 1.0],
            ["compiled", results["compiled_s"] * 1e3, results["speedup"]],
        ],
    )
    emit_json("lp_compile", results)

    assert results["vertices"] >= MIN_VERTICES
    assert results["objective_diff"] < 1e-6
    assert results["max_dual_diff"] < 1e-6
    assert results["speedup"] >= MIN_SPEEDUP, (
        f"compiled build only {results['speedup']:.1f}x faster than symbolic"
    )
