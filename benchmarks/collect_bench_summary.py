"""Collect every ``BENCH_*.json`` record into one ``BENCH_summary.json``.

Each benchmark writes its own machine-readable record via
:func:`_bench_utils.emit_json`.  This script (run as the last benchmark step
in CI) folds them into a single summary — one row per benchmark with its
headline speedup, plus the commit the numbers were measured at — so the
performance trajectory across PRs is one artifact download, not a dozen.

Usage::

    python benchmarks/collect_bench_summary.py [output_dir]

``output_dir`` defaults to ``$BENCH_OUTPUT_DIR`` or the current directory
(the same place ``emit_json`` writes to).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

SUMMARY_NAME = "BENCH_summary.json"


def _headline_speedup(payload: object) -> float | None:
    """The largest value found under a ``speedup``-ish key, recursively.

    Benchmark payloads are heterogeneous (flat dicts, per-graph dicts,
    lists of rows); the headline number is the best speedup the benchmark
    demonstrated.  Returns ``None`` when the record reports no speedup.
    """
    found: list[float] = []

    def walk(node: object) -> None:
        if isinstance(node, dict):
            for key, value in node.items():
                if "speedup" in str(key).lower() and isinstance(value, (int, float)):
                    found.append(float(value))
                else:
                    walk(value)
        elif isinstance(node, list):
            for item in node:
                walk(item)

    walk(payload)
    return max(found) if found else None


def _commit() -> str:
    sha = os.environ.get("GITHUB_SHA")
    if sha:
        return sha
    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def collect(out_dir: str | Path | None = None) -> Path:
    """Fold all ``BENCH_*.json`` records in ``out_dir`` into the summary.

    Returns the path of the written ``BENCH_summary.json``.  Unreadable
    records are reported as ``{"error": ...}`` rows rather than aborting
    the collection.
    """
    out_dir = Path(out_dir if out_dir is not None
                   else os.environ.get("BENCH_OUTPUT_DIR", "."))
    rows = []
    for path in sorted(out_dir.glob("BENCH_*.json")):
        if path.name == SUMMARY_NAME:
            continue
        try:
            record = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            rows.append({"file": path.name, "error": str(exc)})
            continue
        rows.append({
            "file": path.name,
            "name": record.get("bench", path.stem.removeprefix("BENCH_")),
            "headline_speedup": _headline_speedup(record.get("results")),
            "peak_rss_mb": record.get("peak_rss_mb"),
        })

    summary_path = out_dir / SUMMARY_NAME
    with open(summary_path, "w") as fh:
        json.dump({"commit": _commit(), "benchmarks": rows}, fh, indent=2)
        fh.write("\n")
    print(f"[bench] wrote {summary_path} ({len(rows)} records)")
    return summary_path


if __name__ == "__main__":
    collect(sys.argv[1] if len(sys.argv) > 1 else None)
