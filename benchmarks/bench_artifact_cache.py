"""Artifact-store envelope reuse vs a cold pipeline run (acceptance criterion).

A repeated ``T(L)`` sweep answered from the content-addressed
:class:`~repro.artifacts.ArtifactStore` must be at least 10× faster than the
cold path (graph → LP build → CSR assembly → tangent-envelope solves): the
store hit deserialises one small npz and wraps it in
:meth:`BatchedSweep.from_envelope`, performing zero LP assemblies and zero
solves.  This is the persist-once/serve-many shape the service layer of
ROADMAP item 1 builds on — overlapping (app × network) requests mostly hit
the store.
"""

from __future__ import annotations

import time

import numpy as np

from repro import CSCS_TESTBED
from repro.core import LatencyAnalyzer
from repro.lp.assembler import assembly_counts

from _bench_utils import emit_json, print_header, print_rows

NRANKS = 8
ITERATIONS = 16
L_MAX = CSCS_TESTBED.L + 500.0
POINTS = 200
MIN_SPEEDUP = 10.0


def _run(cache_dir: str):
    from repro.apps import lulesh

    graph = lulesh.build(NRANKS, params=CSCS_TESTBED, iterations=ITERATIONS)
    Ls = np.linspace(CSCS_TESTBED.L, L_MAX, POINTS)

    # cold: full pipeline, no store
    t0 = time.perf_counter()
    cold_analyzer = LatencyAnalyzer(graph, CSCS_TESTBED)
    cold_sweep = cold_analyzer.batched_sweep(l_max=L_MAX)
    cold_values = cold_sweep.values(Ls)
    cold_s = time.perf_counter() - t0

    # populate the store once (graph digest is cached on the instance, so
    # hash time is not double-counted below)
    LatencyAnalyzer(graph, CSCS_TESTBED, cache_dir=cache_dir).batched_sweep(l_max=L_MAX)

    # warm: a fresh analyzer answering the same sweep from the store.
    # Best of three repeats — the hit path is ~1 ms, so a single scheduler
    # or page-cache hiccup would otherwise dominate the measurement.
    before = assembly_counts()
    warm_s = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        warm_analyzer = LatencyAnalyzer(graph, CSCS_TESTBED, cache_dir=cache_dir)
        warm_sweep = warm_analyzer.batched_sweep(l_max=L_MAX)
        warm_values = warm_sweep.values(Ls)
        warm_s = min(warm_s, time.perf_counter() - t0)
    after = assembly_counts()

    return {
        "events": graph.num_events,
        "cold_s": cold_s,
        "warm_s": warm_s,
        "speedup": cold_s / warm_s,
        "cold_lp_solves": cold_sweep.num_solves,
        "warm_lp_solves": warm_sweep.num_solves,
        "new_assemblies": sum(after.values()) - sum(before.values()),
        "identical": bool(np.array_equal(warm_values, cold_values)),
    }


def test_artifact_cache_speedup(run_once, tmp_path):
    results = run_once(_run, str(tmp_path / "store"))

    print_header(
        f"Artifact store — LULESH ({NRANKS} ranks) {POINTS}-point sweep, "
        "cold pipeline vs store hit"
    )
    print_rows(
        ["events", "cold [s]", "warm [s]", "speedup", "cold solves",
         "warm solves", "new assemblies"],
        [[results["events"], results["cold_s"], results["warm_s"],
          results["speedup"], results["cold_lp_solves"],
          results["warm_lp_solves"], results["new_assemblies"]]],
    )
    emit_json("artifact_cache", results)

    assert results["identical"], "store hit must reproduce the cold curve exactly"
    assert results["warm_lp_solves"] == 0
    assert results["new_assemblies"] == 0
    assert results["speedup"] >= MIN_SPEEDUP, (
        f"envelope reuse speedup {results['speedup']:.1f}x below {MIN_SPEEDUP}x"
    )
