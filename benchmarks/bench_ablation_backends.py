"""Ablation — solver backends and analysis methods (DESIGN.md §4).

Compares, on the same execution graph, the three ways this reproduction can
obtain ``T(ΔL)`` and ``λ_L``:

* the LP with the HiGHS backend (the default; reproduces the paper's method),
* the LP with the self-contained dense simplex (small graphs only),
* the plain forward-pass graph analysis (one fixed configuration per pass),
* the exact parametric envelope (whole curve at once).

All four must agree numerically; the benchmark reports their runtimes.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro import CSCS_TESTBED
from repro.apps import lulesh
from repro.core import analyze_critical_path, build_lp, parametric_analysis

from _bench_utils import emit_json, print_header, print_rows

DELTAS = [0.0, 20.0, 60.0]


def _run():
    small = lulesh.build(4, params=CSCS_TESTBED, iterations=2)
    timings: dict[str, float] = {}
    values: dict[str, list[float]] = {}

    lp = build_lp(small, CSCS_TESTBED)
    t0 = time.perf_counter()
    values["highs"] = [lp.solve_runtime(L=CSCS_TESTBED.L + d, backend="highs").objective
                       for d in DELTAS]
    timings["highs"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    values["simplex"] = [lp.solve_runtime(L=CSCS_TESTBED.L + d, backend="simplex").objective
                         for d in DELTAS]
    timings["simplex"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    values["graph"] = [analyze_critical_path(small, CSCS_TESTBED.with_delta_latency(d)).runtime
                       for d in DELTAS]
    timings["graph"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    pa = parametric_analysis(small, CSCS_TESTBED, l_min=0.0, l_max=200.0)
    values["parametric"] = [pa.runtime(CSCS_TESTBED.L + d) for d in DELTAS]
    timings["parametric"] = time.perf_counter() - t0

    return timings, values


def test_ablation_backends(run_once):
    timings, values = run_once(_run)

    print_header("Ablation — analysis back ends on LULESH (4 ranks, 2 iterations)")
    print_rows(["method", "sweep time [s]"] + [f"T(ΔL={d:.0f}) [µs]" for d in DELTAS],
               [[name, timings[name]] + list(values[name]) for name in values])

    emit_json("ablation_backends", {"timings_s": timings, "values_us": values})

    reference = values["highs"]
    for name, series in values.items():
        assert np.allclose(series, reference, rtol=1e-6), name


def test_ablation_protocol(run_once):
    """Eager-threshold ablation: forcing rendezvous adds two latencies per message."""
    from repro.apps import lammps
    from repro.schedgen import ProtocolConfig
    from repro import LatencyAnalyzer

    def run():
        results = {}
        for label, threshold in (("eager (S=256 KiB)", 256 * 1024), ("rendezvous (S=1 KiB)", 1024)):
            graph = lammps.build(
                4, params=CSCS_TESTBED, steps=6,
                protocol=ProtocolConfig(eager_threshold=threshold),
            )
            analyzer = LatencyAnalyzer(graph, CSCS_TESTBED)
            results[label] = {
                "runtime": analyzer.predict_runtime(),
                "lambda": analyzer.latency_sensitivity(),
                "messages": graph.num_messages,
            }
        return results

    results = run_once(run)
    print_header("Ablation — eager vs rendezvous protocol threshold (LAMMPS, 4 ranks)")
    print_rows(["protocol", "messages", "runtime [s]", "λ_L"],
               [[k, v["messages"], v["runtime"] / 1e6, v["lambda"]] for k, v in results.items()])

    emit_json("ablation_protocol", results)

    eager = results["eager (S=256 KiB)"]
    rdv = results["rendezvous (S=1 KiB)"]
    assert rdv["messages"] > eager["messages"]
    assert rdv["runtime"] > eager["runtime"]
    assert rdv["lambda"] >= eager["lambda"]
