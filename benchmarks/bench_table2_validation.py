"""Table II — per-application validation summary (o, events, RMSE, RRMSE).

The paper reports, for every evaluated application and scale, the overhead
``o`` it measured, the number of events in the execution graph, and the RMSE
/ RRMSE between measured and predicted runtimes (all RRMSE < 2 %).  This
benchmark regenerates that table for every application skeleton at one scale.
"""

from __future__ import annotations

import numpy as np

from repro import CSCS_TESTBED
from repro.analysis import run_validation_sweep
from repro.apps import VALIDATION_APPS

from _bench_utils import emit_json, print_header, print_rows

NRANKS = 8
KNOBS = {
    "lulesh": dict(iterations=12),
    "hpcg": dict(iterations=8),
    "milc": dict(trajectories=2, cg_iterations=8),
    "icon": dict(steps=8),
    "lammps": dict(steps=20),
    "openmx": dict(scf_iterations=8),
    "cloverleaf": dict(steps=20),
}
#: per-application overheads measured in the paper (Table II, 8-node column)
PAPER_OVERHEADS = {
    "lulesh": 5.0, "hpcg": 5.6, "milc": 6.0, "icon": 20.0,
    "lammps": 32.4, "openmx": 15.6, "cloverleaf": 6.1,
}


def _run():
    results = {}
    for name, module in VALIDATION_APPS.items():
        params = CSCS_TESTBED.with_overhead(PAPER_OVERHEADS[name])
        graph = module.build(NRANKS, params=params, **KNOBS[name])
        results[name] = run_validation_sweep(
            graph, params, app=name, delta_Ls=np.linspace(0, 100, 5), repetitions=1
        )
    return results


def test_table2_validation(run_once):
    results = run_once(_run)

    print_header("Table II — validation results (8 ranks, paper-measured o per app)")
    rows = []
    for name, sweep in results.items():
        rows.append([
            name,
            PAPER_OVERHEADS[name],
            sweep.num_events,
            sweep.rmse / 1e6,
            sweep.rrmse * 100.0,
        ])
    print_rows(["application", "o [µs]", "events", "RMSE [s]", "RRMSE %"], rows)

    emit_json("table2_validation", {
        name: {
            "overhead_us": PAPER_OVERHEADS[name],
            "events": sweep.num_events,
            "rmse_us": sweep.rmse,
            "rrmse": sweep.rrmse,
        }
        for name, sweep in results.items()
    })

    for name, sweep in results.items():
        assert sweep.rrmse < 0.02, (name, sweep.rrmse)
        assert sweep.num_events > 100
