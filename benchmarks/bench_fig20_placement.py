"""Figure 20 — rank placement: block vs LLAMP (Algorithm 3) vs a Scotch-like
volume-based baseline, on ICON.

The paper's preliminary result: the sensitivity-guided placement gives a
small (sub-1 %) improvement over the block mapping on ICON, while the
volume-only baseline is slightly worse.  The shape to verify here is that the
LLAMP placement never degrades the predicted runtime and that all three
mappings stay within a few percent of each other on this already
well-balanced application.
"""

from __future__ import annotations

from repro import PIZ_DAINT
from repro.apps import icon
from repro.network import ArchitectureGraph, block_mapping
from repro.placement import llamp_placement, predicted_runtime, volume_greedy_placement

from _bench_utils import emit_json, print_header, print_rows

NRANKS = 8
NODES = 4
STEPS = 6


def _run():
    params = PIZ_DAINT
    graph = icon.build(NRANKS, params=params, steps=STEPS)
    arch = ArchitectureGraph(
        num_nodes=NODES,
        processes_per_node=NRANKS // NODES,
        intra_node_latency=0.3,
        inter_node_latency=params.L,
    )
    block = block_mapping(NRANKS, arch)
    scotch_like = volume_greedy_placement(graph, arch)
    llamp = llamp_placement(graph, params, arch, initial_mapping=block, max_iterations=6)

    runtimes = {
        "block (default)": predicted_runtime(graph, params, arch, block),
        "LLAMP (Alg. 3)": llamp.predicted_runtime,
        "Scotch-like (volume)": predicted_runtime(graph, params, arch, scotch_like),
    }
    return runtimes, llamp, block, scotch_like


def test_fig20_rank_placement(run_once):
    runtimes, llamp, block, scotch_like = run_once(_run)

    print_header(f"Figure 20 — ICON rank placement ({NRANKS} ranks on {NODES} nodes)")
    baseline = runtimes["block (default)"]
    print_rows(
        ["mapping", "predicted runtime [s]", "vs block [%]"],
        [[name, value / 1e6, (value - baseline) / baseline * 100.0]
         for name, value in runtimes.items()],
    )
    print(f"\nLLAMP placement swaps applied: {llamp.swaps or 'none'}")
    print(f"block mapping      : {block}")
    print(f"LLAMP mapping      : {llamp.mapping}")
    print(f"volume-greedy map  : {scotch_like}")

    emit_json("fig20_placement", {
        "runtimes_us": runtimes,
        "llamp_mapping": list(llamp.mapping),
        "block_mapping": list(block),
        "volume_greedy_mapping": list(scotch_like),
        "swaps": [list(swap) for swap in llamp.swaps],
    })

    # the LLAMP placement never degrades the predicted runtime …
    assert runtimes["LLAMP (Alg. 3)"] <= baseline * (1 + 1e-9)
    # … and, as in the paper, all mappings are within a few percent of each
    # other for this well-balanced application
    for value in runtimes.values():
        assert abs(value - baseline) / baseline < 0.05
