"""Schedule→graph construction: columnar engine vs the op-by-op legacy path.

PR 3 made graph→LP lowering vectorised, which left *building* the execution
graph as the end-to-end bottleneck on large schedules: the legacy engine
emits one vertex per builder call and matches sends to receives with a
per-vertex queue scan in Python.  The columnar engine
(:mod:`repro.schedgen.columnar`) emits whole collective rounds and whole
point-to-point segments as index arithmetic through the bulk builder APIs
and matches messages with two lexicographic sorts.

Acceptance criterion: on the 64-rank allreduce schedule the columnar build
must be at least **10×** faster than the legacy build, with the frozen
graphs **bit-identical** (same vertex ids, attribute columns and edge
order).  The trace-driven build (liballprof-style ingestion through
``build_from_trace``) is measured as well.
"""

from __future__ import annotations

import time

import numpy as np

from repro.mpi import run_program, trace_program
from repro.network.params import LogGPSParams
from repro.schedgen import CollectiveAlgorithms, ScheduleGenerator, build_graph

from _bench_utils import emit_json, print_header, print_rows

NRANKS = 64
RING_ITERATIONS = 12
RD_ITERATIONS = 120
TRACE_ITERATIONS = 30
MESSAGE_BYTES = 64 * 1024
MIN_SPEEDUP = 10.0          # headline: the ring allreduce schedule
MIN_SPEEDUP_SECONDARY = 4.0  # recursive doubling + trace ingestion

PARAMS = LogGPSParams(L=1.0, o=0.5, g=0.0, G=0.001)

_ARRAYS = ("kind", "rank", "cost", "size", "peer", "tag",
           "edge_src", "edge_dst", "edge_kind")


def _assert_identical(legacy, columnar) -> None:
    for name in _ARRAYS:
        assert np.array_equal(getattr(legacy, name), getattr(columnar, name)), name
    assert legacy.labels == columnar.labels


def _allreduce_program(iterations: int):
    def app(comm):
        for _ in range(iterations):
            comm.compute(1.0)
            comm.allreduce(MESSAGE_BYTES)

    return run_program(app, NRANKS)


def _traced_schedule():
    """A trace with collectives, blocking and non-blocking p2p traffic."""

    def app(comm):
        for i in range(TRACE_ITERATIONS):
            comm.compute(1.0)
            comm.allreduce(2048)
            r = comm.irecv((comm.rank - 1) % comm.size, 512, tag=i)
            s = comm.isend((comm.rank + 1) % comm.size, 512, tag=i)
            comm.compute(0.5)
            comm.waitall([r, s])

    return trace_program(run_program(app, NRANKS), PARAMS)


def _time_program_build(program, algorithms, engine: str, reps: int):
    best = float("inf")
    graph = None
    for _ in range(reps):
        start = time.perf_counter()
        graph = build_graph(program, algorithms=algorithms, builder_engine=engine)
        best = min(best, time.perf_counter() - start)
    return best, graph


def _time_trace_build(trace, engine: str, reps: int):
    generator = ScheduleGenerator(builder_engine=engine)
    best = float("inf")
    graph = None
    for _ in range(reps):
        start = time.perf_counter()
        graph = generator.build_from_trace(trace)
        best = min(best, time.perf_counter() - start)
    return best, graph


def _run():
    results = {}

    ring = CollectiveAlgorithms(allreduce="ring")
    program = _allreduce_program(RING_ITERATIONS)
    legacy_s, legacy_graph = _time_program_build(program, ring, "legacy", reps=1)
    columnar_s, columnar_graph = _time_program_build(program, ring, "columnar", reps=3)
    _assert_identical(legacy_graph, columnar_graph)
    results["ring"] = {
        "vertices": legacy_graph.num_vertices,
        "edges": legacy_graph.num_edges,
        "legacy_s": legacy_s,
        "columnar_s": columnar_s,
        "speedup": legacy_s / columnar_s,
    }

    program = _allreduce_program(RD_ITERATIONS)
    legacy_s, legacy_graph = _time_program_build(program, None, "legacy", reps=1)
    columnar_s, columnar_graph = _time_program_build(program, None, "columnar", reps=3)
    _assert_identical(legacy_graph, columnar_graph)
    results["recursive_doubling"] = {
        "vertices": legacy_graph.num_vertices,
        "edges": legacy_graph.num_edges,
        "legacy_s": legacy_s,
        "columnar_s": columnar_s,
        "speedup": legacy_s / columnar_s,
    }

    trace = _traced_schedule()
    legacy_s, legacy_graph = _time_trace_build(trace, "legacy", reps=1)
    columnar_s, columnar_graph = _time_trace_build(trace, "columnar", reps=3)
    _assert_identical(legacy_graph, columnar_graph)
    results["trace"] = {
        "records": trace.num_records,
        "vertices": legacy_graph.num_vertices,
        "edges": legacy_graph.num_edges,
        "legacy_s": legacy_s,
        "columnar_s": columnar_s,
        "speedup": legacy_s / columnar_s,
    }
    return results


def test_columnar_build_speedup(run_once):
    results = run_once(_run)

    print_header(
        f"Schedule→graph construction — {NRANKS}-rank allreduce schedules "
        "(columnar vs legacy, bit-identical graphs)"
    )
    print_rows(
        ["schedule", "vertices", "legacy [ms]", "columnar [ms]", "speedup"],
        [
            [
                name,
                entry["vertices"],
                entry["legacy_s"] * 1e3,
                entry["columnar_s"] * 1e3,
                entry["speedup"],
            ]
            for name, entry in results.items()
        ],
    )
    emit_json("graph_build", results)

    assert results["ring"]["speedup"] >= MIN_SPEEDUP, (
        f"columnar build only {results['ring']['speedup']:.1f}x faster than "
        f"legacy on the ring allreduce schedule"
    )
    for name in ("recursive_doubling", "trace"):
        assert results[name]["speedup"] >= MIN_SPEEDUP_SECONDARY, (
            f"columnar build only {results[name]['speedup']:.1f}x faster on {name}"
        )
