"""LogGOPS simulation — level-synchronous engine vs the per-vertex walk.

The paper's headline comparison (Table I / Fig. 7) pits the LP solver
against LogGOPSim-style re-simulation, and every validation sweep re-runs
the simulator once per latency point.  The level engine
(:mod:`repro.simulator.columnar`) processes whole topological levels as
array passes, and :func:`~repro.simulator.columnar.simulate_sweep` advances
*all* ΔL points of a sweep per level in one 2-D pass.

Acceptance criteria: on the 64-rank ring-allreduce schedule the level
engine must be at least **10×** faster than the legacy walk with
**identical timestamps** (atol 1e-9; bit-exact here), and the batched sweep
must beat per-point legacy re-simulation by a larger factor again.
"""

from __future__ import annotations

import time

import numpy as np

from repro.mpi import run_program
from repro.network.params import LogGPSParams
from repro.schedgen import CollectiveAlgorithms, build_graph
from repro.simulator import simulate, simulate_sweep

from _bench_utils import emit_json, print_header, print_rows

NRANKS = 64
ITERATIONS = 12
MESSAGE_BYTES = 64 * 1024
SWEEP_DELTAS = np.linspace(0.0, 20.0, 4)
MIN_SPEEDUP = 10.0        # single run, level vs legacy
MIN_SWEEP_SPEEDUP = 10.0  # batched sweep vs per-point legacy re-simulation

PARAMS = LogGPSParams(L=1.0, o=0.5, g=0.0, G=0.001)


def _schedule():
    def app(comm):
        for _ in range(ITERATIONS):
            comm.compute(1.0)
            comm.allreduce(MESSAGE_BYTES)

    return build_graph(
        run_program(app, NRANKS), algorithms=CollectiveAlgorithms(allreduce="ring")
    )


def _time(func, reps: int):
    best = float("inf")
    value = None
    for _ in range(reps):
        start = time.perf_counter()
        value = func()
        best = min(best, time.perf_counter() - start)
    return best, value


def _run():
    graph = _schedule()

    legacy_s, legacy = _time(lambda: simulate(graph, PARAMS, sim_engine="legacy"), 1)
    level_s, level = _time(lambda: simulate(graph, PARAMS, sim_engine="level"), 3)
    identical = bool(
        np.allclose(legacy.start, level.start, atol=1e-9)
        and np.allclose(legacy.end, level.end, atol=1e-9)
        and abs(legacy.makespan - level.makespan) <= 1e-9
    )

    sweep_s, sweep = _time(
        lambda: simulate_sweep(graph, PARAMS, SWEEP_DELTAS), 3
    )
    per_point_s, per_point = _time(
        lambda: simulate_sweep(graph, PARAMS, SWEEP_DELTAS, sim_engine="legacy"), 1
    )
    sweep_identical = bool(
        np.allclose(sweep.makespan, per_point.makespan, atol=1e-9)
    )

    return {
        "vertices": graph.num_vertices,
        "edges": graph.num_edges,
        "levels": graph.num_levels,
        "legacy_s": legacy_s,
        "level_s": level_s,
        "speedup": legacy_s / level_s,
        "identical": identical,
        "sweep_points": len(SWEEP_DELTAS),
        "sweep_s": sweep_s,
        "per_point_s": per_point_s,
        "sweep_speedup": per_point_s / sweep_s,
        "sweep_identical": sweep_identical,
        "makespan_us": legacy.makespan,
    }


def test_level_engine_speedup(run_once):
    results = run_once(_run)

    print_header(
        f"LogGOPS simulation — {NRANKS}-rank ring allreduce "
        f"({results['vertices']} vertices, {results['levels']} levels)"
    )
    print_rows(
        ["mode", "legacy [ms]", "level [ms]", "speedup", "identical"],
        [
            [
                "single run",
                results["legacy_s"] * 1e3,
                results["level_s"] * 1e3,
                results["speedup"],
                results["identical"],
            ],
            [
                f"{results['sweep_points']}-point sweep",
                results["per_point_s"] * 1e3,
                results["sweep_s"] * 1e3,
                results["sweep_speedup"],
                results["sweep_identical"],
            ],
        ],
    )

    emit_json("simulate", results)

    assert results["identical"], "engines disagree on timestamps"
    assert results["sweep_identical"], "sweep disagrees with per-point runs"
    assert results["speedup"] >= MIN_SPEEDUP, results
    assert results["sweep_speedup"] >= MIN_SWEEP_SPEEDUP, results
