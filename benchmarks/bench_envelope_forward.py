"""Forward envelope engine vs the ParametricLP tangent search (acceptance).

The single-traversal forward engine must produce the *identical*
``PiecewiseLinear`` envelope ``T(L)`` as the LP tangent search — same piece
count, slopes, intercepts and breakpoints to 1e-6 — at least 10× faster
end-to-end on a Fig. 16-scale sweep workload.  "End-to-end" counts what each
engine actually needs: the LP path pays ``build_lp`` + the per-tangent HiGHS
solves, the forward path traverses the cached level structure once and never
assembles a model.

The Fig. 4 running example is reported for parity (its graph is far too
small for the traversal win to show); the headline speedup is pinned on the
largest LULESH workload.
"""

from __future__ import annotations

import time

import numpy as np

from repro import CSCS_TESTBED
from repro.core import BatchedSweep, build_lp, forward_envelope
from repro.network.params import LogGPSParams
from repro.testing import build_running_example

from _bench_utils import emit_json, print_header, print_rows

PAPER_PARAMS = LogGPSParams(L=0.0, o=0.0, g=0.0, G=0.005, S=256 * 1024, P=2)
#: LULESH scale for the headline pin — large enough that the per-breakpoint
#: LP solves dominate (≥10× requires roughly 200+ ranks; 343 ranks measures
#: ~18× here, leaving margin for slow CI hosts)
HEADLINE_RANKS = 343
HEADLINE_ITERATIONS = 10
SPEEDUP_FLOOR = 10.0


def _compare(graph, params, l_min: float, l_max: float):
    t0 = time.perf_counter()
    lp = build_lp(graph, params, latency_mode="global")
    sweep = BatchedSweep(lp, l_min=l_min, l_max=l_max, envelope_engine="lp")
    lp_env = sweep.envelope
    lp_time = time.perf_counter() - t0

    t0 = time.perf_counter()
    fw_env = forward_envelope(graph, params, l_min=l_min, l_max=l_max)
    fw_time = time.perf_counter() - t0

    assert len(fw_env.lines) == len(lp_env.lines)
    slope_diff = max(
        abs(a.slope - b.slope) for a, b in zip(fw_env.lines, lp_env.lines)
    )
    xs = np.linspace(l_min, l_max, 257)
    value_diff = float(np.abs(fw_env.sample(xs) - lp_env.sample(xs)).max())
    bp_diff = float(
        np.abs(
            np.asarray(fw_env.breakpoints()) - np.asarray(lp_env.breakpoints())
        ).max()
    ) if lp_env.breakpoints() else 0.0

    return {
        "vertices": graph.num_vertices,
        "lp_s": lp_time,
        "forward_s": fw_time,
        "speedup": lp_time / fw_time,
        "lp_solves": sweep.num_solves,
        "pieces": len(fw_env.lines),
        "max_slope_diff": slope_diff,
        "max_value_diff": value_diff,
        "max_breakpoint_diff": bp_diff,
    }


def _run():
    from repro.apps import lulesh

    results = {}
    results["running example (Fig. 4)"] = _compare(
        build_running_example(), PAPER_PARAMS, 0.0, 2.0
    )
    for nranks in (27, HEADLINE_RANKS):
        graph = lulesh.build(
            nranks, params=CSCS_TESTBED, iterations=HEADLINE_ITERATIONS
        )
        results[f"LULESH ({nranks} ranks, {HEADLINE_ITERATIONS} iters)"] = _compare(
            graph, CSCS_TESTBED, CSCS_TESTBED.L, 400.0
        )
    results["speedup"] = results[
        f"LULESH ({HEADLINE_RANKS} ranks, {HEADLINE_ITERATIONS} iters)"
    ]["speedup"]
    return results


def test_forward_envelope_speedup(run_once):
    results = run_once(_run)

    print_header("Forward envelope engine vs ParametricLP tangent search")
    print_rows(
        ["workload", "vertices", "LP [s]", "forward [s]", "speedup",
         "LP solves", "pieces", "max |Δ value|"],
        [
            [name, r["vertices"], r["lp_s"], r["forward_s"], r["speedup"],
             r["lp_solves"], r["pieces"], r["max_value_diff"]]
            for name, r in results.items()
            if isinstance(r, dict)
        ],
    )

    emit_json("envelope_forward", results)

    for name, r in results.items():
        if not isinstance(r, dict):
            continue
        # identical envelopes: the forward pass is exact, not approximate
        assert r["max_value_diff"] < 1e-6, name
        assert r["max_slope_diff"] < 1e-6, name
        assert r["max_breakpoint_diff"] < 1e-6, name
        assert r["lp_solves"] > 0, name  # the oracle really ran

    headline = results[
        f"LULESH ({HEADLINE_RANKS} ranks, {HEADLINE_ITERATIONS} iters)"
    ]
    assert headline["speedup"] >= SPEEDUP_FLOOR, (
        f"forward engine only {headline['speedup']:.1f}x faster than the "
        f"LP tangent search (floor {SPEEDUP_FLOOR}x)"
    )
