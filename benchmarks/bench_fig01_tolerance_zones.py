"""Figure 1 — latency-tolerance zones of MILC, LULESH and ICON.

The paper's headline figure shows, for three applications, the measured and
predicted runtime as the injected latency grows, together with the maximum
latency each application tolerates before losing 1 %, 2 % and 5 % of its
performance.  The qualitative shape to reproduce: MILC tolerates the least
latency (tens of µs), LULESH sits in the middle, ICON tolerates by far the
most (hundreds of µs).
"""

from __future__ import annotations

import numpy as np

from repro import CSCS_TESTBED
from repro.analysis import run_validation_sweep
from repro.apps import icon, lulesh, milc

from _bench_utils import emit_json, print_header, print_rows

NRANKS = 8
CONFIGS = {
    "MILC": (milc.build, dict(trajectories=3, cg_iterations=10)),
    "LULESH": (lulesh.build, dict(iterations=20)),
    "ICON": (icon.build, dict(steps=12)),
}
DELTAS = {
    "MILC": np.linspace(0, 100, 6),
    "LULESH": np.linspace(0, 100, 6),
    "ICON": np.linspace(0, 1000, 6),
}


def _run_all():
    results = {}
    for name, (builder, knobs) in CONFIGS.items():
        graph = builder(NRANKS, params=CSCS_TESTBED, **knobs)
        results[name] = run_validation_sweep(
            graph, CSCS_TESTBED, app=name, delta_Ls=DELTAS[name], repetitions=1
        )
    return results


def test_fig01_tolerance_zones(run_once):
    results = run_once(_run_all)

    print_header("Figure 1 — latency tolerance zones (ΔL in µs over the base latency)")
    rows = []
    for name, sweep in results.items():
        rows.append([
            name,
            sweep.tolerance.delta_tolerance(0.01),
            sweep.tolerance.delta_tolerance(0.02),
            sweep.tolerance.delta_tolerance(0.05),
            sweep.rrmse * 100.0,
        ])
    print_rows(["app", "1% tol", "2% tol", "5% tol", "RRMSE %"], rows)

    for name, sweep in results.items():
        print(f"\n{name}: measured vs predicted runtime [s]")
        print_rows(
            ["ΔL [µs]", "measured", "predicted"],
            [[r["delta_L_us"], r["measured_us"] / 1e6, r["predicted_us"] / 1e6]
             for r in sweep.rows()],
        )

    emit_json("fig01_tolerance_zones", {
        name: {
            "tol1_us": sweep.tolerance.delta_tolerance(0.01),
            "tol2_us": sweep.tolerance.delta_tolerance(0.02),
            "tol5_us": sweep.tolerance.delta_tolerance(0.05),
            "rrmse": sweep.rrmse,
        }
        for name, sweep in results.items()
    })

    tol = {name: sweep.tolerance.delta_tolerance(0.01) for name, sweep in results.items()}
    # the paper's ordering: MILC << LULESH << ICON
    assert tol["MILC"] < tol["LULESH"] < tol["ICON"]
    assert tol["ICON"] > 5 * tol["MILC"]
    # prediction accuracy: relative error below 2 %
    for sweep in results.values():
        assert sweep.rrmse < 0.02
