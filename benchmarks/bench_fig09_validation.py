"""Figure 9 — measured vs predicted runtime, λ_L and ρ_L for four applications
at two scales each (the paper uses three scales; the third is reproduced at
reduced size to keep the benchmark quick).

Shape to reproduce: RRMSE below 2 % everywhere; λ_L grows (weakly) with ΔL;
under weak scaling (LULESH, HPCG) the tolerance stays roughly stable with the
rank count, under strong scaling (MILC, ICON) it shrinks.
"""

from __future__ import annotations

import numpy as np

from repro import CSCS_TESTBED
from repro.analysis import run_validation_sweep
from repro.apps import hpcg, icon, lulesh, milc

from _bench_utils import emit_json, print_header, print_rows

SCALES = (8, 16)
CONFIGS = {
    "LULESH": (lulesh.build, dict(iterations=12), np.linspace(0, 100, 6)),
    "HPCG": (hpcg.build, dict(iterations=8), np.linspace(0, 100, 6)),
    "MILC": (milc.build, dict(trajectories=2, cg_iterations=8), np.linspace(0, 100, 6)),
    "ICON": (icon.build, dict(steps=8), np.linspace(0, 1000, 6)),
}


def _run():
    sweeps = {}
    for name, (builder, knobs, deltas) in CONFIGS.items():
        for nranks in SCALES:
            graph = builder(nranks, params=CSCS_TESTBED, **knobs)
            sweeps[(name, nranks)] = run_validation_sweep(
                graph, CSCS_TESTBED, app=name, delta_Ls=deltas, repetitions=1
            )
    return sweeps


def test_fig09_validation(run_once):
    sweeps = run_once(_run)

    print_header("Figure 9 — validation across applications and scales")
    summary_rows = []
    for (name, nranks), sweep in sweeps.items():
        summary_rows.append([
            name, nranks, sweep.num_events,
            sweep.rrmse * 100.0,
            sweep.tolerance.delta_tolerance(0.01),
            sweep.tolerance.delta_tolerance(0.02),
            sweep.tolerance.delta_tolerance(0.05),
        ])
    print_rows(["app", "ranks", "events", "RRMSE %", "1% tol", "2% tol", "5% tol"],
               summary_rows)

    for (name, nranks), sweep in sweeps.items():
        print(f"\n{name} @ {nranks} ranks — runtime [s], λ_L and ρ_L vs ΔL")
        print_rows(
            ["ΔL [µs]", "measured", "predicted", "λ_L", "ρ_L %"],
            [[r["delta_L_us"], r["measured_us"] / 1e6, r["predicted_us"] / 1e6,
              r["lambda_L"], r["rho_L"] * 100] for r in sweep.rows()],
        )

    emit_json("fig09_validation", [
        {
            "app": name,
            "nranks": nranks,
            "events": sweep.num_events,
            "rrmse": sweep.rrmse,
            "tol1_us": sweep.tolerance.delta_tolerance(0.01),
        }
        for (name, nranks), sweep in sweeps.items()
    ])

    for (name, nranks), sweep in sweeps.items():
        # headline accuracy claim
        assert sweep.rrmse < 0.02, (name, nranks, sweep.rrmse)
        # λ_L is a non-decreasing step function of ΔL
        assert np.all(np.diff(sweep.latency_sensitivity) >= -1e-9)

    # strong scaling shrinks the tolerance (MILC, ICON); weak scaling keeps the
    # order of magnitude (LULESH, HPCG)
    for strong in ("MILC", "ICON"):
        assert (sweeps[(strong, SCALES[1])].tolerance.delta_tolerance(0.01)
                < sweeps[(strong, SCALES[0])].tolerance.delta_tolerance(0.01))
    for weak in ("LULESH", "HPCG"):
        small = sweeps[(weak, SCALES[0])].tolerance.delta_tolerance(0.01)
        large = sweeps[(weak, SCALES[1])].tolerance.delta_tolerance(0.01)
        assert large > 0.3 * small
