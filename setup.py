"""Setuptools shim.

The canonical build configuration lives in ``pyproject.toml``; this file only
exists so that ``python setup.py develop`` keeps working on minimal,
offline environments that lack the ``wheel`` package required for PEP 660
editable installs.
"""

from setuptools import setup

setup()
