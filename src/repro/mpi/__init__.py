"""Virtual MPI runtime: programming API, rank programs, and the tracer."""

from .api import Request, VirtualComm, run_program
from .program import COLLECTIVE_KINDS, OpKind, Program, ProgramOp, RankProgram
from .tracer import TraceDeadlockError, collective_duration, trace_program

__all__ = [
    "VirtualComm",
    "Request",
    "run_program",
    "Program",
    "RankProgram",
    "ProgramOp",
    "OpKind",
    "COLLECTIVE_KINDS",
    "trace_program",
    "collective_duration",
    "TraceDeadlockError",
]
