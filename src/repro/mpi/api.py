"""Virtual MPI programming interface.

Application skeletons in :mod:`repro.apps` are written against this API,
which mirrors the subset of MPI that liballprof traces.  The API does not
move any data — it *records* the communication/computation structure of the
application into a :class:`repro.mpi.program.Program`, which Schedgen then
turns into an execution graph.

Example
-------
A two-rank ping-pong::

    from repro.mpi import run_program

    def pingpong(comm):
        for _ in range(10):
            comm.compute(5.0)                 # 5 microseconds of work
            if comm.rank == 0:
                comm.send(1, size=8, tag=0)
                comm.recv(1, size=8, tag=1)
            else:
                comm.recv(0, size=8, tag=0)
                comm.send(0, size=8, tag=1)

    program = run_program(pingpong, nranks=2)

Because ranks are executed one after another (rank functions must not depend
on message *contents*), the runtime is deterministic and needs no actual
message passing.  This is the key substitution documented in DESIGN.md: the
paper traces real MPI applications, we trace skeletons with explicit compute.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from .program import OpKind, Program, ProgramOp, RankProgram

__all__ = ["Request", "VirtualComm", "run_program"]


@dataclass(frozen=True)
class Request:
    """Handle returned by non-blocking operations."""

    handle: int
    kind: OpKind

    def __int__(self) -> int:  # pragma: no cover - trivial
        return self.handle


class VirtualComm:
    """Recorder for one rank of a virtual MPI program.

    All sizes are in bytes and all compute durations in microseconds.
    """

    def __init__(self, rank: int, size: int, rank_program: RankProgram) -> None:
        if not 0 <= rank < size:
            raise ValueError(f"rank {rank} out of range [0, {size})")
        self._rank = rank
        self._size = size
        self._program = rank_program
        self._next_request = 0
        self._pending: set[int] = set()

    # -- introspection -------------------------------------------------------

    @property
    def rank(self) -> int:
        """This process's rank (``MPI_Comm_rank``)."""
        return self._rank

    @property
    def size(self) -> int:
        """Number of ranks in the communicator (``MPI_Comm_size``)."""
        return self._size

    # -- computation ---------------------------------------------------------

    def compute(self, duration_us: float) -> None:
        """Record ``duration_us`` microseconds of local computation."""
        if duration_us < 0:
            raise ValueError(f"compute duration must be non-negative, got {duration_us}")
        if duration_us == 0:
            return
        self._program.append(ProgramOp(kind=OpKind.COMPUTE, cost=float(duration_us)))

    # -- blocking point-to-point ----------------------------------------------

    def send(self, dest: int, size: int, tag: int = 0) -> None:
        """Blocking standard send (``MPI_Send``)."""
        self._check_peer(dest)
        self._program.append(ProgramOp(kind=OpKind.SEND, peer=dest, size=size, tag=tag))

    def recv(self, source: int, size: int, tag: int = 0) -> None:
        """Blocking receive (``MPI_Recv``)."""
        self._check_peer(source)
        self._program.append(ProgramOp(kind=OpKind.RECV, peer=source, size=size, tag=tag))

    def sendrecv(
        self,
        dest: int,
        send_size: int,
        source: int,
        recv_size: int,
        *,
        send_tag: int = 0,
        recv_tag: int = 0,
    ) -> None:
        """Combined send/receive (``MPI_Sendrecv``)."""
        self._check_peer(dest)
        self._check_peer(source)
        self._program.append(
            ProgramOp(
                kind=OpKind.SENDRECV,
                peer=dest,
                size=send_size,
                tag=send_tag,
                recv_peer=source,
                recv_size=recv_size,
                recv_tag=recv_tag,
            )
        )

    # -- non-blocking point-to-point -------------------------------------------

    def isend(self, dest: int, size: int, tag: int = 0) -> Request:
        """Non-blocking send (``MPI_Isend``); complete it with :meth:`wait`."""
        self._check_peer(dest)
        handle = self._new_request()
        self._program.append(
            ProgramOp(kind=OpKind.ISEND, peer=dest, size=size, tag=tag, request=handle)
        )
        return Request(handle=handle, kind=OpKind.ISEND)

    def irecv(self, source: int, size: int, tag: int = 0) -> Request:
        """Non-blocking receive (``MPI_Irecv``); complete it with :meth:`wait`."""
        self._check_peer(source)
        handle = self._new_request()
        self._program.append(
            ProgramOp(kind=OpKind.IRECV, peer=source, size=size, tag=tag, request=handle)
        )
        return Request(handle=handle, kind=OpKind.IRECV)

    def wait(self, request: Request) -> None:
        """Wait for a single outstanding request (``MPI_Wait``)."""
        self._complete(request.handle)
        self._program.append(ProgramOp(kind=OpKind.WAIT, request=request.handle))

    def waitall(self, requests: Sequence[Request]) -> None:
        """Wait for a set of outstanding requests (``MPI_Waitall``)."""
        if not requests:
            return
        handles = []
        for request in requests:
            self._complete(request.handle)
            handles.append(request.handle)
        self._program.append(ProgramOp(kind=OpKind.WAITALL, requests=tuple(handles)))

    # -- collectives -----------------------------------------------------------

    def barrier(self) -> None:
        """``MPI_Barrier`` over all ranks."""
        self._program.append(ProgramOp(kind=OpKind.BARRIER, size=1))

    def bcast(self, size: int, root: int = 0) -> None:
        """``MPI_Bcast`` of ``size`` bytes from ``root``."""
        self._check_peer(root)
        self._program.append(ProgramOp(kind=OpKind.BCAST, size=size, root=root))

    def reduce(self, size: int, root: int = 0) -> None:
        """``MPI_Reduce`` of ``size`` bytes to ``root``."""
        self._check_peer(root)
        self._program.append(ProgramOp(kind=OpKind.REDUCE, size=size, root=root))

    def allreduce(self, size: int) -> None:
        """``MPI_Allreduce`` of ``size`` bytes."""
        self._program.append(ProgramOp(kind=OpKind.ALLREDUCE, size=size))

    def gather(self, size: int, root: int = 0) -> None:
        """``MPI_Gather``: every rank contributes ``size`` bytes to ``root``."""
        self._check_peer(root)
        self._program.append(ProgramOp(kind=OpKind.GATHER, size=size, root=root))

    def scatter(self, size: int, root: int = 0) -> None:
        """``MPI_Scatter``: ``root`` sends ``size`` bytes to every rank."""
        self._check_peer(root)
        self._program.append(ProgramOp(kind=OpKind.SCATTER, size=size, root=root))

    def allgather(self, size: int) -> None:
        """``MPI_Allgather``: every rank contributes ``size`` bytes."""
        self._program.append(ProgramOp(kind=OpKind.ALLGATHER, size=size))

    def alltoall(self, size: int) -> None:
        """``MPI_Alltoall`` with a per-peer payload of ``size`` bytes."""
        self._program.append(ProgramOp(kind=OpKind.ALLTOALL, size=size))

    # -- internals -------------------------------------------------------------

    def _check_peer(self, peer: int) -> None:
        if not 0 <= peer < self._size:
            raise ValueError(f"peer rank {peer} out of range [0, {self._size})")

    def _new_request(self) -> int:
        handle = self._next_request
        self._next_request += 1
        self._pending.add(handle)
        return handle

    def _complete(self, handle: int) -> None:
        if handle not in self._pending:
            raise ValueError(f"rank {self._rank}: request {handle} is not outstanding")
        self._pending.discard(handle)

    def finish(self) -> None:
        """Check that no request is left outstanding at program end."""
        if self._pending:
            raise ValueError(
                f"rank {self._rank}: requests never completed: {sorted(self._pending)}"
            )


def run_program(
    rank_function: Callable[[VirtualComm], None],
    nranks: int,
    **meta: str,
) -> Program:
    """Execute ``rank_function`` once per rank and return the recorded program.

    ``rank_function`` receives a :class:`VirtualComm` whose :attr:`~VirtualComm.rank`
    and :attr:`~VirtualComm.size` identify the process.  It must be a pure
    function of those two values (it cannot depend on message contents).
    """
    if nranks < 1:
        raise ValueError(f"nranks must be >= 1, got {nranks}")
    program = Program.empty(nranks, **meta)
    for rank in range(nranks):
        comm = VirtualComm(rank, nranks, program.rank(rank))
        rank_function(comm)
        comm.finish()
    program.validate()
    return program
