"""liballprof-style tracing of virtual MPI programs.

The tracer replays a :class:`repro.mpi.program.Program` with blocking MPI
semantics under a baseline LogGPS configuration and records one timestamped
:class:`~repro.trace.records.TraceRecord` per MPI call — exactly the artifact
liballprof produces on a real cluster.  The resulting trace can be written to
disk (:mod:`repro.trace.format`), re-parsed, and fed to Schedgen
(:meth:`repro.schedgen.ScheduleGenerator.build_from_trace`), closing the loop
of the paper's Fig. 2 pipeline.

The replay engine is intentionally simpler than the full LogGOPS simulator:
it models blocking progress per rank with eager point-to-point messages and
analytic collective durations.  Its only purpose is to stamp realistic
timestamps — the downstream analysis re-derives computation intervals from
the *gaps* between the calls, which by construction equal the skeleton's
explicit compute.
"""

from __future__ import annotations

import math
from collections import defaultdict, deque
from dataclasses import dataclass

from ..network.params import LogGPSParams
from ..trace.records import MPIOp, Trace, TraceRecord
from .program import KIND_TO_MPI, OpKind, Program, ProgramOp

__all__ = ["trace_program", "collective_duration", "TraceDeadlockError"]


class TraceDeadlockError(RuntimeError):
    """Raised when the replay cannot make progress (mismatched program)."""


def collective_duration(kind: OpKind, nranks: int, size: int, params: LogGPSParams) -> float:
    """Analytic duration of a collective operation used for trace timestamps.

    These are the textbook LogGP cost formulas for the default algorithms
    (binomial trees / recursive doubling / ring allgather / pairwise
    alltoall).  They only influence the *timestamps inside* the traced
    collective call; the execution-graph analysis later replaces the
    collective with an explicit point-to-point algorithm anyway.
    """
    if nranks < 2:
        return 0.0
    o, L, G = params.o, params.L, params.G
    log_p = math.ceil(math.log2(nranks))
    eager = lambda s: 2 * o + L + max(s - 1, 0) * G  # noqa: E731 - local shorthand
    if kind is OpKind.BARRIER:
        return log_p * eager(1)
    if kind in (OpKind.BCAST, OpKind.REDUCE):
        return log_p * eager(size)
    if kind is OpKind.ALLREDUCE:
        return log_p * eager(size)
    if kind is OpKind.ALLGATHER:
        return (nranks - 1) * eager(size)
    if kind is OpKind.ALLTOALL:
        return (nranks - 1) * eager(size)
    if kind in (OpKind.GATHER, OpKind.SCATTER):
        return log_p * eager(size)
    raise ValueError(f"{kind} is not a collective operation")


@dataclass
class _Message:
    """An eager message in flight during the replay."""

    arrival: float


def trace_program(
    program: Program,
    params: LogGPSParams,
    *,
    init_cost: float = 1.0,
    finalize_cost: float = 1.0,
) -> Trace:
    """Replay ``program`` and return a timestamped liballprof-style trace."""
    program.validate()
    nranks = program.nranks
    o, L, G = params.o, params.L, params.G

    clocks = [0.0] * nranks
    pcs = [0] * nranks
    rank_programs = program.ranks
    trace = Trace.empty(nranks, **program.meta)

    # message mailboxes keyed by (src, dst, tag): FIFO of arrival times
    mailbox: dict[tuple[int, int, int], deque[_Message]] = defaultdict(deque)
    # outstanding non-blocking requests per rank: handle -> ("send"|"recv", key, post_time)
    pending: list[dict[int, tuple[str, tuple[int, int, int], float]]] = [
        {} for _ in range(nranks)
    ]
    # collective rendezvous bookkeeping: index of next collective per rank and
    # entry times of ranks already waiting at that collective
    collective_entries: dict[int, dict[int, float]] = defaultdict(dict)
    collective_index = [0] * nranks
    # sendrecv operations whose send half has already been posted (per rank,
    # keyed by program counter) so a blocked retry does not enqueue it twice
    sendrecv_posted: list[set[int]] = [set() for _ in range(nranks)]

    # MPI_Init records
    for rank in range(nranks):
        trace.add_record(rank, TraceRecord(op=MPIOp.INIT, tstart=0.0, tend=init_cost))
        clocks[rank] = init_cost

    def eager_arrival(send_start: float, size: int) -> float:
        return send_start + o + L + max(size - 1, 0) * G

    def try_progress(rank: int) -> bool:
        """Execute the next op of ``rank`` if possible; return True on progress."""
        rp = rank_programs[rank]
        if pcs[rank] >= len(rp):
            return False
        op = rp[pcs[rank]]
        now = clocks[rank]

        if op.kind is OpKind.COMPUTE:
            clocks[rank] = now + op.cost
            pcs[rank] += 1
            return True

        if op.kind in (OpKind.SEND, OpKind.ISEND):
            key = (rank, op.peer, op.tag)
            mailbox[key].append(_Message(arrival=eager_arrival(now, op.size)))
            tend = now + o
            record = TraceRecord(
                op=KIND_TO_MPI[op.kind],
                tstart=now,
                tend=tend,
                peer=op.peer,
                size=op.size,
                tag=op.tag,
                request=op.request if op.kind is OpKind.ISEND else -1,
            )
            trace.add_record(rank, record)
            if op.kind is OpKind.ISEND:
                pending[rank][op.request] = ("send", key, tend)
            clocks[rank] = tend
            pcs[rank] += 1
            return True

        if op.kind is OpKind.RECV:
            key = (op.peer, rank, op.tag)
            if not mailbox[key]:
                return False
            message = mailbox[key].popleft()
            tend = max(now, message.arrival) + o
            trace.add_record(
                rank,
                TraceRecord(
                    op=MPIOp.RECV,
                    tstart=now,
                    tend=tend,
                    peer=op.peer,
                    size=op.size,
                    tag=op.tag,
                ),
            )
            clocks[rank] = tend
            pcs[rank] += 1
            return True

        if op.kind is OpKind.IRECV:
            key = (op.peer, rank, op.tag)
            tend = now  # posting a receive is (nearly) free
            trace.add_record(
                rank,
                TraceRecord(
                    op=MPIOp.IRECV,
                    tstart=now,
                    tend=tend,
                    peer=op.peer,
                    size=op.size,
                    tag=op.tag,
                    request=op.request,
                ),
            )
            pending[rank][op.request] = ("recv", key, now)
            clocks[rank] = tend
            pcs[rank] += 1
            return True

        if op.kind in (OpKind.WAIT, OpKind.WAITALL):
            handles = [op.request] if op.kind is OpKind.WAIT else list(op.requests)
            completion = now
            for handle in handles:
                if handle not in pending[rank]:
                    raise TraceDeadlockError(
                        f"rank {rank}: wait on unknown request {handle}"
                    )
                direction, key, _post = pending[rank][handle]
                if direction == "recv":
                    if not mailbox[key]:
                        return False
            # all receives have matching messages in flight: consume them
            for handle in handles:
                direction, key, _post = pending[rank].pop(handle)
                if direction == "recv":
                    message = mailbox[key].popleft()
                    completion = max(completion, message.arrival) + o
            tend = max(completion, now)
            trace.add_record(
                rank,
                TraceRecord(
                    op=MPIOp.WAIT if op.kind is OpKind.WAIT else MPIOp.WAITALL,
                    tstart=now,
                    tend=tend,
                    request=op.request if op.kind is OpKind.WAIT else -1,
                    requests=tuple(op.requests) if op.kind is OpKind.WAITALL else (),
                ),
            )
            clocks[rank] = tend
            pcs[rank] += 1
            return True

        if op.kind is OpKind.SENDRECV:
            send_key = (rank, op.peer, op.tag)
            recv_key = (op.recv_peer, rank, op.recv_tag)
            if pcs[rank] not in sendrecv_posted[rank]:
                mailbox[send_key].append(_Message(arrival=eager_arrival(now, op.size)))
                sendrecv_posted[rank].add(pcs[rank])
            if not mailbox[recv_key]:
                # the send half stays posted; retry the receive half later
                return False
            message = mailbox[recv_key].popleft()
            sendrecv_posted[rank].discard(pcs[rank])
            tend = max(now + o, message.arrival) + o
            trace.add_record(
                rank,
                TraceRecord(
                    op=MPIOp.SENDRECV,
                    tstart=now,
                    tend=tend,
                    peer=op.peer,
                    size=op.size,
                    tag=op.tag,
                    recv_peer=op.recv_peer,
                    recv_size=op.recv_size,
                    recv_tag=op.recv_tag,
                ),
            )
            clocks[rank] = tend
            pcs[rank] += 1
            return True

        if op.is_collective:
            index = collective_index[rank]
            entries = collective_entries[index]
            entries[rank] = now
            if len(entries) < nranks:
                return False
            # all ranks have arrived: everyone leaves at the same time
            duration = collective_duration(op.kind, nranks, op.size, params)
            leave = max(entries.values()) + duration
            for member in range(nranks):
                member_op = rank_programs[member][pcs[member]]
                trace.add_record(
                    member,
                    TraceRecord(
                        op=KIND_TO_MPI[member_op.kind],
                        tstart=entries[member],
                        tend=leave,
                        peer=member_op.root if member_op.root else -1,
                        size=member_op.size,
                        comm_size=nranks,
                    ),
                )
                clocks[member] = leave
                pcs[member] += 1
                collective_index[member] += 1
            return True

        raise ValueError(f"unsupported operation {op.kind} during tracing")

    # round-robin scheduling loop
    total_ops = program.num_ops
    executed = 0
    stalled_rounds = 0
    while any(pcs[r] < len(rank_programs[r]) for r in range(nranks)):
        progressed = False
        for rank in range(nranks):
            while pcs[rank] < len(rank_programs[rank]) and try_progress(rank):
                progressed = True
                executed += 1
        if not progressed:
            stalled_rounds += 1
            if stalled_rounds > 2:
                blocked = {
                    r: str(rank_programs[r][pcs[r]].kind)
                    for r in range(nranks)
                    if pcs[r] < len(rank_programs[r])
                }
                raise TraceDeadlockError(
                    f"replay deadlocked after {executed}/{total_ops} operations; "
                    f"blocked ranks: {blocked}"
                )
        else:
            stalled_rounds = 0

    # MPI_Finalize is not synchronising: each rank records it at its own clock,
    # so the gap before it reflects the rank's trailing computation.
    for rank in range(nranks):
        trace.add_record(
            rank,
            TraceRecord(
                op=MPIOp.FINALIZE, tstart=clocks[rank], tend=clocks[rank] + finalize_cost
            ),
        )
    trace.validate()
    return trace
