"""Rank programs: the un-timestamped operation scripts of an MPI application.

The paper's pipeline is ``application --liballprof--> trace --Schedgen-->
execution graph``.  In this reproduction the applications are *skeletons*
written against a virtual MPI API (:mod:`repro.mpi.api`), and what they
produce is a :class:`Program`: for every rank, an ordered list of operations
with *explicit* computation intervals (since the skeleton knows how long it
computes, there is no need to infer it from timestamp gaps).

Two conversions close the loop with the paper's artifacts:

* :func:`repro.mpi.tracer.trace_program` turns a :class:`Program` into a
  timestamped :class:`repro.trace.Trace` (liballprof-style) by replaying it
  through the LogGOPS simulator at trace-time network parameters;
* :func:`Program.from_trace` reconstructs a :class:`Program` from such a
  trace by inferring computation from the gaps between consecutive MPI calls
  (exactly what Schedgen does, Section II-A / Fig. 3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator, Sequence

from ..trace.records import COLLECTIVE_OPS, MPIOp, Trace

__all__ = [
    "OpKind",
    "ProgramOp",
    "RankProgram",
    "Program",
    "COLLECTIVE_KINDS",
    "MPI_TO_KIND",
    "KIND_TO_MPI",
]


class OpKind(str, enum.Enum):
    """Operations that can appear in a rank program."""

    COMPUTE = "compute"
    SEND = "send"
    RECV = "recv"
    ISEND = "isend"
    IRECV = "irecv"
    WAIT = "wait"
    WAITALL = "waitall"
    SENDRECV = "sendrecv"
    BARRIER = "barrier"
    BCAST = "bcast"
    REDUCE = "reduce"
    ALLREDUCE = "allreduce"
    GATHER = "gather"
    SCATTER = "scatter"
    ALLGATHER = "allgather"
    ALLTOALL = "alltoall"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


#: collective operation kinds (must appear in the same order on every rank)
COLLECTIVE_KINDS = frozenset(
    {
        OpKind.BARRIER,
        OpKind.BCAST,
        OpKind.REDUCE,
        OpKind.ALLREDUCE,
        OpKind.GATHER,
        OpKind.SCATTER,
        OpKind.ALLGATHER,
        OpKind.ALLTOALL,
    }
)

#: traced MPI call → program operation kind (shared with the columnar trace
#: ingestion of :mod:`repro.schedgen.columnar`)
MPI_TO_KIND: dict[MPIOp, OpKind] = {
    MPIOp.SEND: OpKind.SEND,
    MPIOp.RECV: OpKind.RECV,
    MPIOp.ISEND: OpKind.ISEND,
    MPIOp.IRECV: OpKind.IRECV,
    MPIOp.WAIT: OpKind.WAIT,
    MPIOp.WAITALL: OpKind.WAITALL,
    MPIOp.SENDRECV: OpKind.SENDRECV,
    MPIOp.BARRIER: OpKind.BARRIER,
    MPIOp.BCAST: OpKind.BCAST,
    MPIOp.REDUCE: OpKind.REDUCE,
    MPIOp.ALLREDUCE: OpKind.ALLREDUCE,
    MPIOp.GATHER: OpKind.GATHER,
    MPIOp.SCATTER: OpKind.SCATTER,
    MPIOp.ALLGATHER: OpKind.ALLGATHER,
    MPIOp.ALLTOALL: OpKind.ALLTOALL,
}

KIND_TO_MPI: dict[OpKind, MPIOp] = {v: k for k, v in MPI_TO_KIND.items()}


@dataclass(frozen=True)
class ProgramOp:
    """One operation in a rank program.

    ``cost`` is only meaningful for :attr:`OpKind.COMPUTE`; ``peer``/``size``/
    ``tag`` for point-to-point operations; ``root``/``size``/``comm_size``
    for collectives; ``request``/``requests`` for non-blocking completion.
    ``recv_*`` hold the receive half of a ``sendrecv``.
    """

    kind: OpKind
    cost: float = 0.0
    peer: int = -1
    size: int = 0
    tag: int = 0
    root: int = 0
    request: int = -1
    requests: tuple[int, ...] = ()
    recv_peer: int = -1
    recv_size: int = 0
    recv_tag: int = 0

    def __post_init__(self) -> None:
        if self.cost < 0:
            raise ValueError(f"{self.kind}: negative compute cost {self.cost}")
        if self.size < 0 or self.recv_size < 0:
            raise ValueError(f"{self.kind}: negative message size")
        if self.kind in (OpKind.SEND, OpKind.RECV, OpKind.ISEND, OpKind.IRECV, OpKind.SENDRECV):
            if self.peer < 0:
                raise ValueError(f"{self.kind}: point-to-point operation requires a peer")
        if self.kind is OpKind.WAIT and self.request < 0:
            raise ValueError("wait requires a request handle")

    @property
    def is_collective(self) -> bool:
        return self.kind in COLLECTIVE_KINDS

    @property
    def is_p2p(self) -> bool:
        return self.kind in (
            OpKind.SEND,
            OpKind.RECV,
            OpKind.ISEND,
            OpKind.IRECV,
            OpKind.SENDRECV,
        )


@dataclass
class RankProgram:
    """The ordered operation script of one rank."""

    rank: int
    ops: list[ProgramOp] = field(default_factory=list)

    def append(self, op: ProgramOp) -> None:
        self.ops.append(op)

    def __len__(self) -> int:
        return len(self.ops)

    def __iter__(self) -> Iterator[ProgramOp]:
        return iter(self.ops)

    def __getitem__(self, idx: int) -> ProgramOp:
        return self.ops[idx]

    @property
    def total_compute(self) -> float:
        """Sum of explicit compute costs, in microseconds."""
        return sum(op.cost for op in self.ops if op.kind is OpKind.COMPUTE)

    def collective_signature(self) -> list[OpKind]:
        """Kinds of the collectives in program order (for cross-rank checks)."""
        return [op.kind for op in self.ops if op.is_collective]


@dataclass
class Program:
    """A complete application: one :class:`RankProgram` per rank."""

    ranks: list[RankProgram] = field(default_factory=list)
    meta: dict[str, str] = field(default_factory=dict)

    @classmethod
    def empty(cls, nranks: int, **meta: str) -> "Program":
        if nranks < 1:
            raise ValueError(f"nranks must be >= 1, got {nranks}")
        return cls(ranks=[RankProgram(rank=r) for r in range(nranks)], meta=dict(meta))

    @property
    def nranks(self) -> int:
        return len(self.ranks)

    @property
    def num_ops(self) -> int:
        return sum(len(r) for r in self.ranks)

    def rank(self, rank: int) -> RankProgram:
        if not 0 <= rank < self.nranks:
            raise IndexError(f"rank {rank} out of range [0, {self.nranks})")
        return self.ranks[rank]

    def __iter__(self) -> Iterator[RankProgram]:
        return iter(self.ranks)

    def validate(self) -> None:
        """Check cross-rank consistency of collectives and request usage."""
        signature = self.ranks[0].collective_signature() if self.ranks else []
        for rp in self.ranks:
            if rp.collective_signature() != signature:
                raise ValueError(
                    f"rank {rp.rank}: collective call sequence differs from rank 0"
                )
            pending: set[int] = set()
            for op in rp:
                if op.is_p2p and not 0 <= op.peer < self.nranks:
                    raise ValueError(f"rank {rp.rank}: peer {op.peer} out of range")
                if op.kind in (OpKind.ISEND, OpKind.IRECV):
                    if op.request < 0:
                        raise ValueError(f"rank {rp.rank}: {op.kind} without request")
                    if op.request in pending:
                        raise ValueError(
                            f"rank {rp.rank}: request {op.request} reused before completion"
                        )
                    pending.add(op.request)
                elif op.kind is OpKind.WAIT:
                    if op.request not in pending:
                        raise ValueError(
                            f"rank {rp.rank}: wait on unknown request {op.request}"
                        )
                    pending.discard(op.request)
                elif op.kind is OpKind.WAITALL:
                    for req in op.requests:
                        if req not in pending:
                            raise ValueError(
                                f"rank {rp.rank}: waitall on unknown request {req}"
                            )
                        pending.discard(req)
            if pending:
                raise ValueError(f"rank {rp.rank}: requests never completed: {sorted(pending)}")

    # -- conversions ----------------------------------------------------------

    @classmethod
    def from_trace(cls, trace: Trace, *, min_compute: float = 0.0) -> "Program":
        """Reconstruct a program from a timestamped trace.

        The computation between two consecutive MPI calls on a rank is the gap
        between the end of the first and the start of the second, exactly as
        Schedgen infers it (Fig. 3 of the paper).  Gaps below ``min_compute``
        microseconds are dropped.
        """
        program = cls.empty(trace.nranks, **trace.meta)
        for rank_trace in trace:
            rp = program.rank(rank_trace.rank)
            prev_end: float | None = None
            for rec in rank_trace:
                if rec.op is MPIOp.INIT or rec.is_noop:
                    prev_end = rec.tend
                    continue
                if prev_end is not None:
                    gap = rec.tstart - prev_end
                    if gap > min_compute:
                        rp.append(ProgramOp(kind=OpKind.COMPUTE, cost=gap))
                if rec.op is MPIOp.FINALIZE:
                    # computation between the last MPI call and MPI_Finalize has
                    # been accounted for above; the call itself adds no vertex
                    prev_end = rec.tend
                    continue
                kind = MPI_TO_KIND.get(rec.op)
                if kind is None:
                    raise ValueError(f"cannot convert trace record {rec.op} to a program op")
                is_coll = rec.op in COLLECTIVE_OPS
                rp.append(
                    ProgramOp(
                        kind=kind,
                        peer=-1 if is_coll else rec.peer,
                        size=rec.size,
                        tag=rec.tag,
                        root=max(rec.peer, 0) if is_coll else 0,
                        request=rec.request,
                        requests=rec.requests,
                        recv_peer=rec.recv_peer,
                        recv_size=rec.recv_size,
                        recv_tag=rec.recv_tag,
                    )
                )
                prev_end = rec.tend
        program.validate()
        return program

    def summary(self) -> dict[str, float]:
        """Aggregate statistics (op counts, total compute, bytes sent)."""
        counts: dict[str, int] = {}
        total_compute = 0.0
        bytes_sent = 0
        for rp in self.ranks:
            for op in rp:
                counts[op.kind.value] = counts.get(op.kind.value, 0) + 1
                if op.kind is OpKind.COMPUTE:
                    total_compute += op.cost
                if op.kind in (OpKind.SEND, OpKind.ISEND, OpKind.SENDRECV):
                    bytes_sent += op.size
        return {
            "nranks": self.nranks,
            "num_ops": self.num_ops,
            "total_compute_us": total_compute,
            "bytes_sent": bytes_sent,
            **{f"count[{k}]": v for k, v in sorted(counts.items())},
        }
