"""Graph-construction helpers shared by the test suite and the benchmarks.

Importable as ``repro.testing`` so that test modules never have to reach
into a ``conftest.py`` (whose module name is ambiguous when both ``tests/``
and ``benchmarks/`` are collected in one pytest run).
"""

from __future__ import annotations

import numpy as np

from .schedgen.graph import ExecutionGraph, GraphBuilder

__all__ = [
    "build_running_example",
    "build_staircase",
    "build_random_dag",
    "build_random_program",
]


def build_running_example(c0: float = 0.1) -> ExecutionGraph:
    """The two-rank example of Fig. 4: C0 -> S -> C1 on rank 0, C2 -> R -> C3 on rank 1."""
    builder = GraphBuilder(nranks=2)
    v_c0 = builder.add_calc(0, c0)
    v_s = builder.add_send(0, 1, 4)
    v_c1 = builder.add_calc(0, 1.0)
    builder.chain([v_c0, v_s, v_c1])
    v_c2 = builder.add_calc(1, 0.5)
    v_r = builder.add_recv(1, 0, 4)
    v_c3 = builder.add_calc(1, 1.0)
    builder.chain([v_c2, v_r, v_c3])
    builder.add_comm_edge(v_s, v_r)
    return builder.freeze()


def build_staircase(k: int) -> ExecutionGraph:
    """A graph whose ``T(L)`` envelope has exactly ``k`` linear segments.

    Branch ``i`` (for ``i = 1..k``) is an independent chain of ``i``
    dependent messages bouncing between two ranks, followed by a computation
    of ``sum(i..k-1)`` µs.  With ``o = G = 0`` branch ``i`` contributes the
    line ``i·L + C_i``, and consecutive lines intersect at ``L = i`` — so the
    envelope has breakpoints at ``1, 2, ..., k-1``.
    """
    if k < 1:
        raise ValueError(f"need at least one branch, got {k}")
    builder = GraphBuilder(nranks=2)
    for i in range(1, k + 1):
        tail = None
        for m in range(i):
            src, dst = m % 2, (m + 1) % 2
            s = builder.add_send(src, dst, 1, tag=i * 1000 + m)
            r = builder.add_recv(dst, src, 1, tag=i * 1000 + m)
            if tail is not None:
                builder.add_dependency(tail, s)
            builder.add_comm_edge(s, r)
            tail = r
        intercept = float(sum(range(i, k)))
        calc = builder.add_calc(i % 2, intercept)
        builder.add_dependency(tail, calc)
    return builder.freeze()


def build_random_dag(seed: int, *, nranks: int = 3, rounds: int = 10) -> ExecutionGraph:
    """A random valid execution DAG: per-rank program order + matched messages.

    Every round appends random-cost computations to a subset of the ranks and
    one point-to-point message between a random rank pair.  Vertices are only
    wired to earlier vertices, so the result is acyclic by construction, and
    continuous random costs make degenerate (tied) critical paths improbable
    — which keeps backend comparisons of duals and sensitivities meaningful.
    """
    rng = np.random.default_rng(seed)
    builder = GraphBuilder(nranks=nranks)
    last: list[int | None] = [None] * nranks

    def append(rank: int, vid: int) -> None:
        if last[rank] is not None:
            builder.add_dependency(last[rank], vid)
        last[rank] = vid

    for i in range(rounds):
        for rank in range(nranks):
            if rng.random() < 0.7:
                append(rank, builder.add_calc(rank, float(rng.uniform(0.05, 2.0))))
        src, dst = (int(r) for r in rng.choice(nranks, size=2, replace=False))
        size = int(rng.integers(1, 2048))
        s = builder.add_send(src, dst, size, tag=i)
        r = builder.add_recv(dst, src, size, tag=i)
        append(src, s)
        append(dst, r)
        builder.add_comm_edge(s, r)
    return builder.freeze()


def build_random_program(
    seed: int,
    *,
    nranks: int = 4,
    rounds: int = 12,
    big_size: int = 8192,
    big_probability: float = 0.3,
):
    """A random valid point-to-point :class:`~repro.mpi.program.Program`.

    Used by the builder-engine parity suite: every round appends random
    computation, then one randomly shaped exchange between a random rank
    pair — blocking send/recv, a non-blocking isend/irecv pair closed by
    ``wait``/``waitall``, or a same-size ``sendrecv`` swap.  Message sizes
    exceed ``big_size`` with probability ``big_probability``, so the same
    program exercises both the eager path and (under a small rendezvous
    threshold) the handshake expansion.  The program passes
    ``Program.validate()`` by construction.
    """
    from .mpi.program import OpKind, Program, ProgramOp

    if nranks < 2:
        raise ValueError(f"need at least two ranks, got {nranks}")
    rng = np.random.default_rng(seed)
    program = Program.empty(nranks)
    next_request = [0] * nranks

    def size() -> int:
        if rng.random() < big_probability:
            return int(rng.integers(big_size + 1, 4 * big_size))
        return int(rng.integers(1, 1024))

    for round_index in range(rounds):
        for rank in range(nranks):
            if rng.random() < 0.6:
                program.rank(rank).append(
                    ProgramOp(kind=OpKind.COMPUTE, cost=float(rng.uniform(0.05, 2.0)))
                )
        a, b = (int(r) for r in rng.choice(nranks, size=2, replace=False))
        tag = round_index
        shape = rng.random()
        if shape < 0.4:
            payload = size()
            program.rank(a).append(
                ProgramOp(kind=OpKind.SEND, peer=b, size=payload, tag=tag)
            )
            program.rank(b).append(
                ProgramOp(kind=OpKind.RECV, peer=a, size=payload, tag=tag)
            )
        elif shape < 0.8:
            payload = size()
            send_req = next_request[a]
            next_request[a] += 1
            recv_req = next_request[b]
            next_request[b] += 1
            program.rank(a).append(
                ProgramOp(kind=OpKind.ISEND, peer=b, size=payload, tag=tag, request=send_req)
            )
            program.rank(b).append(
                ProgramOp(kind=OpKind.IRECV, peer=a, size=payload, tag=tag, request=recv_req)
            )
            if rng.random() < 0.5:
                program.rank(b).append(
                    ProgramOp(kind=OpKind.COMPUTE, cost=float(rng.uniform(0.05, 1.0)))
                )
            program.rank(a).append(ProgramOp(kind=OpKind.WAIT, request=send_req))
            program.rank(b).append(
                ProgramOp(kind=OpKind.WAITALL, requests=(recv_req,))
            )
        else:
            # same-size swap: a sendrecv on both ranks (one eager half keeps
            # the blocking handshake expansion acyclic, so stay below the
            # rendezvous threshold on one side)
            payload = int(rng.integers(1, 1024))
            program.rank(a).append(
                ProgramOp(
                    kind=OpKind.SENDRECV, peer=b, size=payload, tag=tag,
                    recv_peer=b, recv_size=payload, recv_tag=tag,
                )
            )
            program.rank(b).append(
                ProgramOp(
                    kind=OpKind.SENDRECV, peer=a, size=payload, tag=tag,
                    recv_peer=a, recv_size=payload, recv_tag=tag,
                )
            )
    program.validate()
    return program
