"""Canonical units used throughout the package.

All durations are expressed in **microseconds** (``float``) and all message
sizes in **bytes** (``int``).  The constants below convert the usual HPC
notation into the canonical unit so code can be written close to the paper,
e.g. ``L = 3.0 * US`` or ``G = 0.018 * NS_PER_BYTE``.
"""

from __future__ import annotations

#: one nanosecond, in microseconds
NS: float = 1e-3
#: one microsecond (the canonical unit)
US: float = 1.0
#: one millisecond, in microseconds
MS: float = 1e3
#: one second, in microseconds
SEC: float = 1e6

#: gap-per-byte expressed in nanoseconds per byte (``G`` in LogGP papers)
NS_PER_BYTE: float = NS
#: gap-per-byte expressed in microseconds per byte
US_PER_BYTE: float = US

#: one kibibyte
KIB: int = 1024
#: one mebibyte
MIB: int = 1024 * 1024
#: one gibibyte
GIB: int = 1024 * 1024 * 1024


def us_to_seconds(value_us: float) -> float:
    """Convert a duration in microseconds to seconds."""
    return value_us / SEC


def seconds_to_us(value_s: float) -> float:
    """Convert a duration in seconds to microseconds."""
    return value_s * SEC


def bandwidth_to_gap(bandwidth_gbit_s: float) -> float:
    """Convert a link bandwidth in Gbit/s into the LogGP ``G`` parameter.

    ``G`` is the gap per byte, i.e. the inverse of the bandwidth, expressed in
    microseconds per byte.

    >>> round(bandwidth_to_gap(56.0), 9)   # ConnectX-3 56 Gbit/s
    1.43e-07
    """
    if bandwidth_gbit_s <= 0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth_gbit_s}")
    bytes_per_us = bandwidth_gbit_s * 1e9 / 8.0 / 1e6
    return 1.0 / bytes_per_us


def gap_to_bandwidth(gap_us_per_byte: float) -> float:
    """Convert the LogGP ``G`` parameter back into a bandwidth in Gbit/s."""
    if gap_us_per_byte <= 0:
        raise ValueError(f"gap must be positive, got {gap_us_per_byte}")
    bytes_per_us = 1.0 / gap_us_per_byte
    return bytes_per_us * 1e6 * 8.0 / 1e9
