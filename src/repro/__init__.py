"""repro — a from-scratch Python reproduction of the LLAMP toolchain.

LLAMP (Shen et al., SC 2024) assesses the network-latency sensitivity and
tolerance of MPI applications by converting LogGPS execution graphs into
linear programs.  This package re-implements the complete toolchain plus all
of its substrates: virtual MPI tracing, the Schedgen schedule generator with
collective expansion, the LogGOPS discrete-event simulator, latency-injection
strategies, network topologies, application skeletons, and the LP analysis
core.

Quick start::

    from repro import LatencyAnalyzer, CSCS_TESTBED
    from repro.apps import lulesh

    graph = lulesh.build(nranks=8, params=CSCS_TESTBED)
    analyzer = LatencyAnalyzer(graph, CSCS_TESTBED)
    report = analyzer.tolerance_report()
    print(report.as_rows())
"""

from .core import (
    GraphLP,
    LatencyAnalyzer,
    ParametricAnalysis,
    SensitivityCurve,
    ToleranceReport,
    analyze_critical_path,
    build_lp,
    find_critical_latencies,
    parametric_analysis,
)
from .mpi import Program, VirtualComm, run_program, trace_program
from .network import CSCS_TESTBED, DEFAULT_PARAMS, PIZ_DAINT, LogGPSParams
from .schedgen import (
    CollectiveAlgorithms,
    ExecutionGraph,
    ProtocolConfig,
    ScheduleGenerator,
    build_graph,
)
from .parallel import ScenarioFleet, SweepPool
from .simulator import LogGOPSSimulator, SimulationResult, simulate

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core analysis
    "LatencyAnalyzer",
    "SensitivityCurve",
    "ToleranceReport",
    "GraphLP",
    "build_lp",
    "ParametricAnalysis",
    "parametric_analysis",
    "analyze_critical_path",
    "find_critical_latencies",
    # network parameters
    "LogGPSParams",
    "CSCS_TESTBED",
    "PIZ_DAINT",
    "DEFAULT_PARAMS",
    # programs, traces, graphs
    "VirtualComm",
    "Program",
    "run_program",
    "trace_program",
    "ScheduleGenerator",
    "CollectiveAlgorithms",
    "ProtocolConfig",
    "ExecutionGraph",
    "build_graph",
    # simulation
    "LogGOPSSimulator",
    "SimulationResult",
    "simulate",
    # multi-process fleets
    "SweepPool",
    "ScenarioFleet",
]
