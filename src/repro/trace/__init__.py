"""liballprof-style MPI traces: in-memory records and text serialisation."""

from .format import TraceFormatError, dump_trace, dumps_trace, load_trace, loads_trace
from .records import (
    COLLECTIVE_OPS,
    NONBLOCKING_OPS,
    P2P_OPS,
    MPIOp,
    RankTrace,
    Trace,
    TraceRecord,
)

__all__ = [
    "MPIOp",
    "TraceRecord",
    "RankTrace",
    "Trace",
    "P2P_OPS",
    "COLLECTIVE_OPS",
    "NONBLOCKING_OPS",
    "dump_trace",
    "dumps_trace",
    "load_trace",
    "loads_trace",
    "TraceFormatError",
]
