"""Trace records in the style of ``liballprof``.

The LLAMP toolchain starts from per-rank MPI traces: a sequence of MPI calls
with start and end timestamps plus the call arguments that matter for
scheduling (peer, message size, tag, communicator size, request handles).
Computation is *not* recorded; the schedule generator infers it from the gap
between the end of one MPI call and the start of the next (Section II-A,
Fig. 3).

This module defines the in-memory representation.  :mod:`repro.trace.format`
provides the ``liballprof``-like text serialisation, and
:mod:`repro.mpi.tracer` produces these records from virtual MPI programs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

import numpy as np

__all__ = [
    "MPIOp",
    "MPI_OP_CODE",
    "TraceRecord",
    "TraceColumns",
    "RankTrace",
    "Trace",
    "P2P_OPS",
    "COLLECTIVE_OPS",
    "NONBLOCKING_OPS",
]


class MPIOp(str, enum.Enum):
    """MPI operations understood by the toolchain."""

    INIT = "MPI_Init"
    FINALIZE = "MPI_Finalize"
    SEND = "MPI_Send"
    RECV = "MPI_Recv"
    ISEND = "MPI_Isend"
    IRECV = "MPI_Irecv"
    WAIT = "MPI_Wait"
    WAITALL = "MPI_Waitall"
    SENDRECV = "MPI_Sendrecv"
    BARRIER = "MPI_Barrier"
    BCAST = "MPI_Bcast"
    REDUCE = "MPI_Reduce"
    ALLREDUCE = "MPI_Allreduce"
    GATHER = "MPI_Gather"
    SCATTER = "MPI_Scatter"
    ALLGATHER = "MPI_Allgather"
    ALLTOALL = "MPI_Alltoall"
    COMM_SIZE = "MPI_Comm_size"
    COMM_RANK = "MPI_Comm_rank"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


#: point-to-point operations
P2P_OPS = frozenset(
    {MPIOp.SEND, MPIOp.RECV, MPIOp.ISEND, MPIOp.IRECV, MPIOp.SENDRECV}
)

#: collective operations (expanded to point-to-point algorithms by schedgen)
COLLECTIVE_OPS = frozenset(
    {
        MPIOp.BARRIER,
        MPIOp.BCAST,
        MPIOp.REDUCE,
        MPIOp.ALLREDUCE,
        MPIOp.GATHER,
        MPIOp.SCATTER,
        MPIOp.ALLGATHER,
        MPIOp.ALLTOALL,
    }
)

#: non-blocking operations that create a request
NONBLOCKING_OPS = frozenset({MPIOp.ISEND, MPIOp.IRECV})

#: operations that neither move data nor synchronise (zero-cost bookkeeping)
_NOOP_OPS = frozenset({MPIOp.COMM_SIZE, MPIOp.COMM_RANK})

#: stable integer code of every MPI operation (array representation used by
#: :meth:`RankTrace.columns` and the columnar schedule generator)
MPI_OP_CODE: dict[MPIOp, int] = {op: index for index, op in enumerate(MPIOp)}


@dataclass(frozen=True)
class TraceRecord:
    """One traced MPI call on one rank.

    Attributes
    ----------
    op:
        The MPI operation.
    tstart, tend:
        Start / end timestamps in microseconds since ``MPI_Init`` returned
        on rank 0.  ``tend >= tstart``.
    peer:
        Peer rank for point-to-point operations; root rank for rooted
        collectives; ``-1`` otherwise.
    size:
        Payload size in bytes (per-peer size for all-to-all style
        collectives).
    tag:
        MPI tag for point-to-point operations, ``0`` otherwise.
    comm_size:
        Communicator size for collective operations; ``0`` otherwise.
    request:
        Request handle produced by a non-blocking call, or consumed by
        ``MPI_Wait``.  ``-1`` when unused.
    requests:
        Request handles consumed by ``MPI_Waitall``.
    recv_peer, recv_size, recv_tag:
        The receive half of ``MPI_Sendrecv``.
    """

    op: MPIOp
    tstart: float
    tend: float
    peer: int = -1
    size: int = 0
    tag: int = 0
    comm_size: int = 0
    request: int = -1
    requests: tuple[int, ...] = ()
    recv_peer: int = -1
    recv_size: int = 0
    recv_tag: int = 0

    def __post_init__(self) -> None:
        if self.tend < self.tstart:
            raise ValueError(
                f"{self.op}: end timestamp {self.tend} precedes start {self.tstart}"
            )
        if self.size < 0 or self.recv_size < 0:
            raise ValueError(f"{self.op}: negative message size")
        if self.op in P2P_OPS and self.peer < 0:
            raise ValueError(f"{self.op}: point-to-point operation requires a peer rank")
        if self.op in COLLECTIVE_OPS and self.comm_size < 2:
            raise ValueError(f"{self.op}: collective requires comm_size >= 2")

    @property
    def duration(self) -> float:
        """Time spent inside the MPI call, in microseconds."""
        return self.tend - self.tstart

    @property
    def is_p2p(self) -> bool:
        return self.op in P2P_OPS

    @property
    def is_collective(self) -> bool:
        return self.op in COLLECTIVE_OPS

    @property
    def is_nonblocking(self) -> bool:
        return self.op in NONBLOCKING_OPS

    @property
    def is_noop(self) -> bool:
        """True for bookkeeping calls that do not appear in execution graphs."""
        return self.op in _NOOP_OPS


@dataclass(frozen=True)
class TraceColumns:
    """One rank's trace as parallel columns (record order preserved).

    ``code`` holds :data:`MPI_OP_CODE` values; the remaining arrays mirror
    the :class:`TraceRecord` fields.  ``requests`` stays a plain list because
    ``MPI_Waitall`` consumes a variable number of handles per record.  This
    is the zero-conversion entry point of the columnar schedule generator
    (:func:`repro.schedgen.columnar.batches_from_trace`): the trace is
    columnarised once and never turned into per-op objects.
    """

    code: np.ndarray
    tstart: np.ndarray
    tend: np.ndarray
    peer: np.ndarray
    size: np.ndarray
    tag: np.ndarray
    comm_size: np.ndarray
    request: np.ndarray
    recv_peer: np.ndarray
    recv_size: np.ndarray
    recv_tag: np.ndarray
    requests: list[tuple[int, ...]]

    def __len__(self) -> int:
        return len(self.code)


@dataclass
class RankTrace:
    """The trace of a single MPI rank: an ordered list of records."""

    rank: int
    records: list[TraceRecord] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise ValueError(f"rank must be non-negative, got {self.rank}")

    def append(self, record: TraceRecord) -> None:
        """Append a record, enforcing monotonically non-decreasing start times."""
        if self.records and record.tstart < self.records[-1].tend - 1e-9:
            raise ValueError(
                f"rank {self.rank}: record {record.op} starts at {record.tstart} "
                f"before the previous call ended at {self.records[-1].tend}"
            )
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def __getitem__(self, idx: int) -> TraceRecord:
        return self.records[idx]

    @property
    def duration(self) -> float:
        """Wall-clock span covered by this rank's trace."""
        if not self.records:
            return 0.0
        return self.records[-1].tend - self.records[0].tstart

    def columns(self) -> TraceColumns:
        """Columnarise this rank's records into a :class:`TraceColumns`.

        One pass over the record objects; everything downstream (compute-gap
        inference, op mapping, segment splitting) then runs as array
        arithmetic.
        """
        n = len(self.records)
        code = np.empty(n, dtype=np.int16)
        tstart = np.empty(n, dtype=np.float64)
        tend = np.empty(n, dtype=np.float64)
        peer = np.empty(n, dtype=np.int64)
        size = np.empty(n, dtype=np.int64)
        tag = np.empty(n, dtype=np.int64)
        comm_size = np.empty(n, dtype=np.int64)
        request = np.empty(n, dtype=np.int64)
        recv_peer = np.empty(n, dtype=np.int64)
        recv_size = np.empty(n, dtype=np.int64)
        recv_tag = np.empty(n, dtype=np.int64)
        requests: list[tuple[int, ...]] = []
        op_code = MPI_OP_CODE
        for index, record in enumerate(self.records):
            code[index] = op_code[record.op]
            tstart[index] = record.tstart
            tend[index] = record.tend
            peer[index] = record.peer
            size[index] = record.size
            tag[index] = record.tag
            comm_size[index] = record.comm_size
            request[index] = record.request
            recv_peer[index] = record.recv_peer
            recv_size[index] = record.recv_size
            recv_tag[index] = record.recv_tag
            requests.append(record.requests)
        return TraceColumns(
            code=code, tstart=tstart, tend=tend, peer=peer, size=size, tag=tag,
            comm_size=comm_size, request=request, recv_peer=recv_peer,
            recv_size=recv_size, recv_tag=recv_tag, requests=requests,
        )


@dataclass
class Trace:
    """A complete application trace: one :class:`RankTrace` per rank."""

    ranks: list[RankTrace] = field(default_factory=list)
    meta: dict[str, str] = field(default_factory=dict)

    @classmethod
    def empty(cls, nranks: int, **meta: str) -> "Trace":
        """Create a trace with ``nranks`` empty per-rank traces."""
        if nranks < 1:
            raise ValueError(f"nranks must be >= 1, got {nranks}")
        return cls(ranks=[RankTrace(rank=r) for r in range(nranks)], meta=dict(meta))

    @property
    def nranks(self) -> int:
        return len(self.ranks)

    @property
    def num_records(self) -> int:
        return sum(len(r) for r in self.ranks)

    def rank(self, rank: int) -> RankTrace:
        """Return the trace of a single rank."""
        if not 0 <= rank < self.nranks:
            raise IndexError(f"rank {rank} out of range [0, {self.nranks})")
        return self.ranks[rank]

    def add_record(self, rank: int, record: TraceRecord) -> None:
        """Append ``record`` to the trace of ``rank``."""
        self.rank(rank).append(record)

    def __iter__(self) -> Iterator[RankTrace]:
        return iter(self.ranks)

    def validate(self) -> None:
        """Run structural sanity checks on the whole trace.

        Checks that rank indices are consecutive, peers are within range, and
        every non-blocking request is eventually waited on exactly once.
        """
        for expected, rank_trace in enumerate(self.ranks):
            if rank_trace.rank != expected:
                raise ValueError(
                    f"rank traces must be ordered by rank; found rank "
                    f"{rank_trace.rank} at position {expected}"
                )
            pending: set[int] = set()
            for rec in rank_trace:
                if rec.is_p2p and not 0 <= rec.peer < self.nranks:
                    raise ValueError(
                        f"rank {expected}: {rec.op} peer {rec.peer} out of range"
                    )
                if rec.op is MPIOp.SENDRECV and not 0 <= rec.recv_peer < self.nranks:
                    raise ValueError(
                        f"rank {expected}: MPI_Sendrecv recv peer {rec.recv_peer} out of range"
                    )
                if rec.is_nonblocking:
                    if rec.request < 0:
                        raise ValueError(
                            f"rank {expected}: {rec.op} without a request handle"
                        )
                    if rec.request in pending:
                        raise ValueError(
                            f"rank {expected}: request {rec.request} reused before wait"
                        )
                    pending.add(rec.request)
                elif rec.op is MPIOp.WAIT:
                    if rec.request not in pending:
                        raise ValueError(
                            f"rank {expected}: MPI_Wait on unknown request {rec.request}"
                        )
                    pending.discard(rec.request)
                elif rec.op is MPIOp.WAITALL:
                    for req in rec.requests:
                        if req not in pending:
                            raise ValueError(
                                f"rank {expected}: MPI_Waitall on unknown request {req}"
                            )
                        pending.discard(req)
            if pending:
                raise ValueError(
                    f"rank {expected}: requests never completed: {sorted(pending)}"
                )

    def summary(self) -> dict[str, float]:
        """Aggregate statistics used in reports and tests."""
        ops: dict[str, int] = {}
        bytes_sent = 0
        for rank_trace in self.ranks:
            for rec in rank_trace:
                ops[rec.op.value] = ops.get(rec.op.value, 0) + 1
                if rec.op in (MPIOp.SEND, MPIOp.ISEND, MPIOp.SENDRECV):
                    bytes_sent += rec.size
        return {
            "nranks": self.nranks,
            "num_records": self.num_records,
            "bytes_sent": bytes_sent,
            **{f"count[{k}]": v for k, v in sorted(ops.items())},
        }
