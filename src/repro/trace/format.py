"""Text serialisation of traces, modelled after ``liballprof``.

The original tracer writes one file per rank; each line records one MPI call
as colon-separated fields starting with the operation name, the start
timestamp and the end timestamp, followed by call-specific arguments
(Fig. 2 of the paper shows e.g. ``MPI_Irecv:1547003:0:3500:15:1:1:5:6:1547032``).

Our format keeps that spirit but is self-describing and lossless with respect
to :class:`repro.trace.records.TraceRecord`:

```
# llamp-trace v1
# meta key=value
@rank 0
MPI_Init:0.000:1.200
MPI_Isend:1.200:1.450:peer=1:size=4096:tag=7:request=0
MPI_Wait:1.450:1.500:request=0
MPI_Allreduce:1.500:9.100:size=8:comm_size=128
MPI_Finalize:9.100:9.200
@rank 1
...
```

Timestamps are microseconds, written with fixed precision when that is
exact and with full ``repr`` precision otherwise, so ``load(dump(trace))``
reproduces every float bit-for-bit.  Meta values are escaped
(``\\`` / newline / carriage return), so any string survives the round
trip; meta keys that cannot be represented unambiguously (empty, containing
``=`` or line breaks, surrounded by whitespace) are rejected at dump time.
Unknown keys, duplicate ``@rank`` headers and duplicate meta keys are
rejected so format drift is caught early.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Iterable, TextIO

from .records import MPIOp, RankTrace, Trace, TraceRecord

__all__ = [
    "dump_trace",
    "dumps_trace",
    "load_trace",
    "loads_trace",
    "TraceFormatError",
]

_HEADER = "# llamp-trace v1"
_TIME_PRECISION = 6

_INT_FIELDS = {
    "peer",
    "size",
    "tag",
    "comm_size",
    "request",
    "recv_peer",
    "recv_size",
    "recv_tag",
}


class TraceFormatError(ValueError):
    """Raised when a trace file cannot be parsed or is not representable."""


def _format_time(t: float) -> str:
    """Fixed-precision when exact, full ``repr`` otherwise (lossless)."""
    fixed = f"{t:.{_TIME_PRECISION}f}"
    return fixed if float(fixed) == t else repr(t)


_META_ESCAPES = {"\\": "\\\\", "\n": "\\n", "\r": "\\r"}
_META_UNESCAPES = {"\\": "\\", "n": "\n", "r": "\r"}


def _escape_meta_value(value: str) -> str:
    for raw, escaped in _META_ESCAPES.items():
        value = value.replace(raw, escaped)
    return value


def _unescape_meta_value(text: str, lineno: int) -> str:
    if "\\" not in text:
        return text
    out: list[str] = []
    i = 0
    while i < len(text):
        ch = text[i]
        if ch != "\\":
            out.append(ch)
            i += 1
            continue
        if i + 1 >= len(text):
            raise TraceFormatError(f"line {lineno}: dangling escape in meta value")
        mapped = _META_UNESCAPES.get(text[i + 1])
        if mapped is None:
            raise TraceFormatError(
                f"line {lineno}: unknown escape '\\{text[i + 1]}' in meta value"
            )
        out.append(mapped)
        i += 2
    return "".join(out)


def _check_meta_key(key: str) -> None:
    if not key or key != key.strip() or any(ch in key for ch in "=\n\r"):
        raise TraceFormatError(
            f"meta key {key!r} is not representable: keys must be non-empty, "
            "free of '=' and line breaks, and carry no surrounding whitespace"
        )


def _format_record(rec: TraceRecord) -> str:
    parts = [
        rec.op.value,
        _format_time(rec.tstart),
        _format_time(rec.tend),
    ]
    if rec.peer >= 0:
        parts.append(f"peer={rec.peer}")
    if rec.size:
        parts.append(f"size={rec.size}")
    if rec.tag:
        parts.append(f"tag={rec.tag}")
    if rec.comm_size:
        parts.append(f"comm_size={rec.comm_size}")
    if rec.request >= 0:
        parts.append(f"request={rec.request}")
    if rec.requests:
        parts.append("requests=" + ",".join(str(r) for r in rec.requests))
    if rec.recv_peer >= 0:
        parts.append(f"recv_peer={rec.recv_peer}")
    if rec.recv_size:
        parts.append(f"recv_size={rec.recv_size}")
    if rec.recv_tag:
        parts.append(f"recv_tag={rec.recv_tag}")
    return ":".join(parts)


def _parse_record(line: str, lineno: int) -> TraceRecord:
    fields = line.split(":")
    if len(fields) < 3:
        raise TraceFormatError(f"line {lineno}: expected at least op:tstart:tend, got {line!r}")
    op_name, tstart_s, tend_s, *rest = fields
    try:
        op = MPIOp(op_name)
    except ValueError as exc:
        raise TraceFormatError(f"line {lineno}: unknown MPI operation {op_name!r}") from exc
    try:
        tstart = float(tstart_s)
        tend = float(tend_s)
    except ValueError as exc:
        raise TraceFormatError(f"line {lineno}: bad timestamps {tstart_s!r}/{tend_s!r}") from exc

    kwargs: dict[str, object] = {}
    for item in rest:
        if "=" not in item:
            raise TraceFormatError(f"line {lineno}: malformed field {item!r}")
        key, value = item.split("=", 1)
        if key == "requests":
            kwargs[key] = tuple(int(v) for v in value.split(",") if v)
        elif key in _INT_FIELDS:
            kwargs[key] = int(value)
        else:
            raise TraceFormatError(f"line {lineno}: unknown field {key!r}")
    try:
        return TraceRecord(op=op, tstart=tstart, tend=tend, **kwargs)  # type: ignore[arg-type]
    except (TypeError, ValueError) as exc:
        raise TraceFormatError(f"line {lineno}: {exc}") from exc


def dump_trace(trace: Trace, destination: str | Path | TextIO) -> None:
    """Write ``trace`` to a file path or text stream."""
    if isinstance(destination, (str, Path)):
        with open(destination, "w", encoding="utf-8") as handle:
            _write(trace, handle)
    else:
        _write(trace, destination)


def dumps_trace(trace: Trace) -> str:
    """Serialise ``trace`` to a string."""
    buffer = io.StringIO()
    _write(trace, buffer)
    return buffer.getvalue()


def _write(trace: Trace, handle: TextIO) -> None:
    handle.write(_HEADER + "\n")
    for key, value in sorted(trace.meta.items()):
        _check_meta_key(key)
        handle.write(f"# meta {key}={_escape_meta_value(value)}\n")
    for rank_trace in trace.ranks:
        handle.write(f"@rank {rank_trace.rank}\n")
        for rec in rank_trace:
            handle.write(_format_record(rec) + "\n")


def load_trace(source: str | Path | TextIO) -> Trace:
    """Read a trace from a file path or text stream."""
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as handle:
            return _read(handle)
    return _read(source)


def loads_trace(text: str) -> Trace:
    """Parse a trace from a string produced by :func:`dumps_trace`."""
    return _read(io.StringIO(text))


def _read(handle: TextIO) -> Trace:
    # split on real newlines only: str.splitlines() would also break on
    # exotic boundaries (NEL, U+2028, ...) that are legal inside meta values
    lines = handle.read().split("\n")
    if not lines or lines[0].strip() != _HEADER:
        raise TraceFormatError(f"missing header {_HEADER!r}")

    meta: dict[str, str] = {}
    rank_traces: list[RankTrace] = []
    current: RankTrace | None = None

    seen_ranks: set[int] = set()
    for lineno, raw in enumerate(lines[1:], start=2):
        if raw.startswith("# meta "):
            # parsed from the raw line: meta values keep their exact bytes
            # (leading/trailing whitespace included) and are unescaped below
            body = raw[len("# meta "):]
            if "=" not in body:
                raise TraceFormatError(f"line {lineno}: malformed meta line {raw!r}")
            key, value = body.split("=", 1)
            _check_meta_key(key)
            if key in meta:
                raise TraceFormatError(f"line {lineno}: duplicate meta key {key!r}")
            meta[key] = _unescape_meta_value(value, lineno)
            continue
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            continue
        if line.startswith("@rank "):
            try:
                rank = int(line[len("@rank "):])
            except ValueError as exc:
                raise TraceFormatError(f"line {lineno}: bad rank header {line!r}") from exc
            if rank in seen_ranks:
                raise TraceFormatError(
                    f"line {lineno}: duplicate '@rank {rank}' header"
                )
            seen_ranks.add(rank)
            current = RankTrace(rank=rank)
            rank_traces.append(current)
            continue
        if current is None:
            raise TraceFormatError(f"line {lineno}: record before any '@rank' header")
        current.append(_parse_record(line, lineno))

    rank_traces.sort(key=lambda rt: rt.rank)
    trace = Trace(ranks=rank_traces, meta=meta)
    trace.validate()
    return trace
