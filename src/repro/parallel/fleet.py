"""Scenario-fleet driver: parameter grids over the shared-memory pool.

A *fleet* is the cross product of application skeletons, rank counts,
collective algorithms, LogGPS parameter points and latency injectors.  The
driver expands the grid into :class:`Scenario` records, builds each distinct
``(app, nranks, algorithm, params)`` graph exactly once, and runs the whole
fleet through one persistent :class:`~repro.parallel.SweepPool` — graphs
travel to the workers as shared-memory columns, scenarios as digest tuples,
and duplicate scenarios (same graph digest + sweep spec) are solved once.

Results are written BENCH-style: one ``FLEET_<app>.json`` shard per
application plus a single deterministic ``FLEET_summary.json`` merging every
scenario row (sorted by scenario name, keys sorted), so repeated runs of the
same fleet produce byte-identical summaries.  Exposed as ``llamp fleet`` in
the CLI.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from ..network.params import LogGPSParams
from ..schedgen.collectives import CollectiveAlgorithms
from .pool import SweepPool, SweepTask

__all__ = ["Scenario", "FleetResult", "ScenarioFleet"]

#: degradation levels reported per scenario (the paper's 1/2/5 %)
DEGRADATIONS = (0.01, 0.02, 0.05)


@dataclass(frozen=True)
class Scenario:
    """One point of the fleet grid."""

    app: str
    nranks: int
    allreduce: str
    params: LogGPSParams
    injector: str | None = None  # None = LP-only, no simulated points

    @property
    def name(self) -> str:
        inj = self.injector or "lp"
        return (
            f"{self.app}:r{self.nranks}:{self.allreduce}:"
            f"L{self.params.L:g}:{inj}"
        )


@dataclass
class FleetResult:
    """Per-scenario rows plus the merged summary and any written shards."""

    rows: list[dict]
    summary: dict
    shard_paths: list[Path]
    summary_path: Path | None


class ScenarioFleet:
    """Expand a scenario grid and run it across a :class:`SweepPool`.

    Parameters mirror the grid axes: every combination of ``apps`` ×
    ``nranks`` × ``allreduces`` × ``params_grid`` × ``injectors`` becomes one
    scenario.  ``injectors`` may contain ``None`` (LP-only scenario) and any
    name from :data:`repro.simulator.injector.INJECTOR_NAMES`; scenarios with
    an injector additionally simulate the graph at ``sim_deltas`` added
    latencies.
    """

    def __init__(
        self,
        apps: Sequence[str],
        *,
        nranks: Sequence[int] = (8,),
        allreduces: Sequence[str] = ("ring",),
        params_grid: Sequence[LogGPSParams],
        injectors: Sequence[str | None] = (None,),
        l_min: float | None = None,
        l_max: float = 1_000.0,
        sim_deltas: Sequence[float] = (0.0, 10.0),
        backend: str = "auto",
        builder_engine: str = "auto",
        envelope_engine: str = "auto",
        max_pieces: int = 50_000,
        processes: int | None = None,
        cache_dir: str | os.PathLike | None = None,
    ) -> None:
        from ..apps import ALL_APPS
        from ..core.envelope import _check_engine_name

        _check_engine_name(envelope_engine)

        unknown = [app for app in apps if app not in ALL_APPS]
        if unknown:
            raise ValueError(
                f"unknown applications {unknown}; choose from {sorted(ALL_APPS)}"
            )
        if not params_grid:
            raise ValueError("params_grid must contain at least one LogGPSParams")
        self.apps = list(apps)
        self.nranks = [int(n) for n in nranks]
        self.allreduces = list(allreduces)
        self.params_grid = list(params_grid)
        self.injectors = list(injectors)
        self.l_min = l_min
        self.l_max = float(l_max)
        self.sim_deltas = tuple(float(d) for d in sim_deltas)
        self.backend = backend
        self.builder_engine = builder_engine
        self.envelope_engine = envelope_engine
        self.max_pieces = int(max_pieces)
        self.processes = processes
        self.cache_dir = cache_dir

    # -- grid ----------------------------------------------------------------

    def scenarios(self) -> list[Scenario]:
        """The expanded grid in deterministic (nested-loop) order."""
        grid = []
        for app in self.apps:
            for n in self.nranks:
                for algo in self.allreduces:
                    for params in self.params_grid:
                        for injector in self.injectors:
                            grid.append(Scenario(app, n, algo, params, injector))
        return grid

    # -- execution ------------------------------------------------------------

    def _build_graphs(self, scenarios: Sequence[Scenario]):
        """One graph per distinct ``(app, nranks, algorithm, params)``."""
        from ..apps import ALL_APPS

        graph_of: dict[tuple, object] = {}
        digest_of: dict[tuple, str] = {}
        for sc in scenarios:
            key = (sc.app, sc.nranks, sc.allreduce, sc.params.content_digest())
            if key in graph_of:
                continue
            graph = ALL_APPS[sc.app].build(
                sc.nranks,
                params=sc.params,
                algorithms=CollectiveAlgorithms(allreduce=sc.allreduce),
                builder_engine=self.builder_engine,
            )
            graph_of[key] = graph
            digest_of[key] = graph.content_digest()
        graphs = {digest_of[key]: graph for key, graph in graph_of.items()}
        return graphs, digest_of

    def run(self, output_dir: str | os.PathLike | None = None) -> FleetResult:
        """Run every scenario; optionally write shards + summary JSON."""
        scenarios = self.scenarios()
        graphs, digest_of = self._build_graphs(scenarios)

        tasks = []
        for sc in scenarios:
            key = (sc.app, sc.nranks, sc.allreduce, sc.params.content_digest())
            lo = sc.params.L if self.l_min is None else float(self.l_min)
            sim = None
            if sc.injector is not None:
                sim = (sc.injector, self.sim_deltas)
            tasks.append(
                SweepTask(
                    graph_digest=digest_of[key],
                    params_digest=sc.params.content_digest(),
                    l_min=lo,
                    l_max=self.l_max,
                    backend=self.backend,
                    max_pieces=self.max_pieces,
                    build_kwargs=(("latency_mode", "global"),),
                    sim=sim,
                    envelope_engine=self.envelope_engine,
                    params=sc.params,
                    scenario=sc.name,
                )
            )

        with SweepPool(self.processes, cache_dir=self.cache_dir) as pool:
            payloads = pool.run_tasks(tasks, graphs)

        rows = [
            self._row(sc, task, payload)
            for sc, task, payload in zip(scenarios, tasks, payloads)
        ]
        summary = {
            "bench": "fleet_summary",
            "results": {
                "scenarios": len(rows),
                "apps": sorted(set(self.apps)),
                "unique_graphs": len(graphs),
                "l_max_us": self.l_max,
                "rows": sorted(rows, key=lambda r: r["scenario"]),
            },
        }

        shard_paths: list[Path] = []
        summary_path: Path | None = None
        if output_dir is not None:
            out = Path(os.fspath(output_dir))
            out.mkdir(parents=True, exist_ok=True)
            for app in sorted(set(self.apps)):
                shard = {
                    "bench": f"fleet_{app}",
                    "results": [r for r in rows if r["app"] == app],
                }
                path = out / f"FLEET_{app}.json"
                path.write_text(json.dumps(shard, indent=2, sort_keys=True) + "\n")
                shard_paths.append(path)
            summary_path = out / "FLEET_summary.json"
            summary_path.write_text(
                json.dumps(summary, indent=2, sort_keys=True) + "\n"
            )
        return FleetResult(
            rows=rows,
            summary=summary,
            shard_paths=shard_paths,
            summary_path=summary_path,
        )

    # -- metrics ---------------------------------------------------------------

    @staticmethod
    def _row(scenario: Scenario, task: SweepTask, payload: dict) -> dict:
        envelope = payload["envelope"]
        L0 = max(float(scenario.params.L), float(envelope.lo))
        runtime = envelope.value(L0)
        lam = envelope.slope(L0)
        row = {
            "scenario": scenario.name,
            "app": scenario.app,
            "nranks": scenario.nranks,
            "allreduce": scenario.allreduce,
            "L_us": scenario.params.L,
            "injector": scenario.injector,
            "graph_digest": task.graph_digest,
            "runtime_us": runtime,
            "lambda_L": lam,
            "rho_L": (L0 * lam / runtime) if runtime > 0 else 0.0,
            "critical_latencies": len(envelope.breakpoints()),
            "worker_pid": payload["worker_pid"],
            "worker_rss_kb": payload["worker_rss_kb"],
        }
        for deg in DEGRADATIONS:
            label = f"tolerance_{int(deg * 100)}pct_us"
            try:
                row[label] = envelope.solve_for_value((1.0 + deg) * runtime)
            except ValueError:
                row[label] = None
        if payload["sim_runtimes"] is not None:
            row["sim_delta_L_us"] = list(task.sim[1])
            row["sim_runtime_us"] = payload["sim_runtimes"]
        return row
