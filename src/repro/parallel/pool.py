"""A persistent worker pool sweeping scenarios over shared graph columns.

The legacy multi-process path (``batched_sweep_graphs(processes=...)``
before this package existed) pickled each whole :class:`ExecutionGraph`
into every pool task, so serialisation dominated wall-clock on trace-scale
schedules and memory doubled per worker.  :class:`SweepPool` replaces that
with a **digest-addressed** protocol:

* tasks carry ``(graph_digest, params_digest, sweep spec)`` — never the
  graph.  Workers resolve the graph digest in three steps: their local
  attach-cache, the shared-memory segment exported by the parent
  (:mod:`repro.parallel.shm`, zero-copy), and finally a shared
  :class:`~repro.artifacts.ArtifactStore` (disk).  An unresolvable digest
  is an error, never a silent rebuild.
* duplicate scenarios inside one batch (same digests + same sweep spec) are
  **solved once**: the representative task runs, and the result fans out to
  every duplicate on collect.
* unique tasks are dispatched **largest graph first** through
  ``imap_unordered`` so the slowest solve starts earliest; input order is
  restored on collect.
* a worker exception never poisons or deadlocks the pool: the failure —
  with the failing scenario's identity and the worker traceback — travels
  back as an ordinary result and is re-raised in the parent as
  :class:`ScenarioError` after the batch drains.

The pool is persistent (one ``spawn`` of the workers amortised over any
number of batches) and a context manager; exiting tears down the workers
and unlinks every exported segment deterministically.
"""

from __future__ import annotations

import os
import traceback
from dataclasses import dataclass, field
from typing import Sequence

from ..artifacts import ArtifactStore, envelope_key_from_digests
from ..network.params import LogGPSParams
from ..schedgen.graph import ExecutionGraph
from .shm import SharedGraphBuffer, SharedGraphRegistry

__all__ = ["SweepTask", "ScenarioError", "SweepPool"]


@dataclass(frozen=True)
class SweepTask:
    """One digest-addressed scenario: an envelope sweep, optionally plus
    simulated points.

    ``segment`` and ``params`` are resolution *hints* (the live shm segment
    name and the tiny parameter record); the identity of the task is the
    digest pair plus the sweep configuration.  ``scenario`` is an opaque
    label attached to failures so the caller can tell *which* scenario died.
    """

    graph_digest: str
    params_digest: str
    l_min: float
    l_max: float
    backend: str = "auto"
    max_pieces: int = 50_000
    build_kwargs: tuple[tuple[str, object], ...] = ()
    sim: tuple[str, tuple[float, ...]] | None = None  # (injector, deltas)
    envelope_engine: str = "auto"
    segment: str | None = field(default=None, compare=False)
    params: LogGPSParams | None = field(default=None, compare=False)
    scenario: str | None = field(default=None, compare=False)

    def dedupe_key(self) -> tuple:
        """Two tasks with equal keys produce bit-identical results.

        The ``envelope_engine`` is part of this key (conservatively — the
        engines agree to well below solver tolerance, but bit-identity is
        only claimed within one engine), yet *not* of :meth:`store_key`:
        cached envelopes are shared across engines.
        """
        return (
            self.graph_digest, self.params_digest, self.l_min, self.l_max,
            self.backend, self.max_pieces, self.build_kwargs, self.sim,
            self.envelope_engine,
        )

    def store_key(self) -> str:
        """The :class:`ArtifactStore` envelope key of this task's sweep."""
        return envelope_key_from_digests(
            self.graph_digest,
            self.params_digest,
            l_min=self.l_min,
            l_max=self.l_max,
            max_pieces=self.max_pieces,
            **dict(self.build_kwargs),
        )


class ScenarioError(RuntimeError):
    """A scenario failed inside a pool worker.

    Carries the failing scenario's identity (:attr:`scenario`), the original
    exception type/message and the full worker traceback — the pool itself
    survives and later batches keep working.
    """

    def __init__(self, scenario: str, exc_type: str, exc_msg: str, tb_text: str):
        super().__init__(
            f"scenario {scenario} failed in a pool worker with "
            f"{exc_type}: {exc_msg}\n--- worker traceback ---\n{tb_text}"
        )
        self.scenario = scenario
        self.exc_type = exc_type
        self.exc_msg = exc_msg
        self.worker_traceback = tb_text


# ---------------------------------------------------------------------------
# worker side
# ---------------------------------------------------------------------------

#: worker-local state: the shared store and the digest-keyed attach cache
_WORKER: dict[str, object] = {}

#: attached segments kept alive per worker; oldest evicted beyond this
_MAX_ATTACHED = 16


def _init_worker(cache_dir: str | None) -> None:
    _WORKER["store"] = ArtifactStore(cache_dir) if cache_dir is not None else None
    _WORKER["graphs"] = {}   # digest -> ExecutionGraph (from any source)
    _WORKER["buffers"] = {}  # digest -> SharedGraphBuffer (attach cache)


def _resolve_graph(task: SweepTask) -> ExecutionGraph:
    """Digest-resolution protocol: attach cache → shm segment → store."""
    if not _WORKER:  # in-process execution (no initializer ran)
        _init_worker(None)
    graphs: dict = _WORKER["graphs"]
    graph = graphs.get(task.graph_digest)
    if graph is not None:
        return graph
    if task.segment is not None:
        buffers: dict = _WORKER["buffers"]
        if len(buffers) >= _MAX_ATTACHED:
            oldest = next(iter(buffers))
            graphs.pop(oldest, None)
            buffers.pop(oldest).close()
        buffer = SharedGraphBuffer.attach(task.segment, digest=task.graph_digest)
        buffers[task.graph_digest] = buffer
        graphs[task.graph_digest] = buffer.graph
        return buffer.graph
    store: ArtifactStore | None = _WORKER["store"]
    if store is not None:
        graph = store.get("graph", task.graph_digest)
        if graph is not None:
            graphs[task.graph_digest] = graph
            return graph
    raise LookupError(
        f"graph digest {task.graph_digest[:12]}… is not resolvable: no shared "
        "segment was attached to the task and the artifact store has no entry"
    )


def _execute_task(task: SweepTask) -> dict:
    """Run one scenario against the resolved graph; returns the payload."""
    import resource

    from ..core.lp_builder import build_lp
    from ..core.parametric import BatchedSweep

    graph = _resolve_graph(task)
    if task.params is None:
        raise LookupError(
            f"params digest {task.params_digest[:12]}… carries no parameter "
            "record to solve with"
        )

    def build():
        from ..core.envelope import forward_envelope, forward_supports_modes

        build_kwargs = dict(task.build_kwargs)
        if task.envelope_engine != "lp" and forward_supports_modes(build_kwargs):
            # forward-compatible modes on a fresh build: skip the LP entirely
            return forward_envelope(
                graph,
                task.params,
                l_min=task.l_min,
                l_max=task.l_max,
                max_pieces=task.max_pieces,
            )
        graph_lp = build_lp(graph, task.params, **build_kwargs)
        sweep = BatchedSweep(
            graph_lp,
            l_min=task.l_min,
            l_max=task.l_max,
            backend=task.backend,
            max_pieces=task.max_pieces,
            envelope_engine=task.envelope_engine,
        )
        return sweep.envelope

    store: ArtifactStore | None = _WORKER.get("store")
    if store is not None:
        envelope = store.get_or_build_envelope(task.store_key(), build)
    else:
        envelope = build()

    sim_runtimes = None
    if task.sim is not None:
        from ..simulator.columnar import simulate_sweep

        injector, deltas = task.sim
        sim_runtimes = simulate_sweep(
            graph, task.params, list(deltas), injector=injector
        ).makespan.tolist()

    return {
        "envelope": envelope,
        "sim_runtimes": sim_runtimes,
        "worker_pid": os.getpid(),
        "worker_rss_kb": int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss),
    }


def _run_task(job: tuple[int, SweepTask]) -> tuple[int, bool, object]:
    """Top-level pool target: never raises (failures travel as results)."""
    slot, task = job
    try:
        return slot, True, _execute_task(task)
    except BaseException as exc:  # noqa: BLE001 - forwarded to the parent
        scenario = task.scenario or (
            f"(graph {task.graph_digest[:12]}…, params {task.params_digest[:12]}…)"
        )
        return slot, False, (
            scenario, type(exc).__name__, str(exc), traceback.format_exc()
        )


# ---------------------------------------------------------------------------
# parent side
# ---------------------------------------------------------------------------


class SweepPool:
    """Persistent ``spawn`` worker pool over shared graph columns.

    Parameters
    ----------
    processes:
        Worker count; defaults to ``os.cpu_count()``.  ``processes <= 1``
        (or ``0``) runs every task inline in this process — same code path,
        no pool, no shared memory.
    cache_dir:
        Optional :class:`~repro.artifacts.ArtifactStore` directory shared by
        all workers (accepts any path-like).  Workers both resolve graph
        digests against it (fallback behind shared memory) and serve/persist
        envelopes through it.
    """

    def __init__(
        self,
        processes: int | None = None,
        *,
        cache_dir: str | os.PathLike | None = None,
    ) -> None:
        self.processes = os.cpu_count() or 1 if processes is None else int(processes)
        self.cache_dir = None if cache_dir is None else os.fspath(cache_dir)
        self.registry = SharedGraphRegistry()
        self._pool = None
        self._closed = False

    # -- pool lifecycle ------------------------------------------------------

    @property
    def uses_workers(self) -> bool:
        return self.processes > 1

    def _ensure_pool(self):
        if self._closed:
            raise RuntimeError("SweepPool is closed")
        if self._pool is None:
            import multiprocessing

            # spawn, never fork: fork duplicates threaded-BLAS state and the
            # parent's shm mappings into workers (platform-dependent hangs)
            ctx = multiprocessing.get_context("spawn")
            self._pool = ctx.Pool(
                self.processes,
                initializer=_init_worker,
                initargs=(self.cache_dir,),
            )
        return self._pool

    def close(self) -> None:
        """Tear down the workers and unlink every exported segment."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
        self.registry.close()
        self._closed = True

    def __enter__(self) -> "SweepPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- execution -----------------------------------------------------------

    def run_tasks(
        self,
        tasks: Sequence[SweepTask],
        graphs: dict[str, ExecutionGraph] | None = None,
    ) -> list[dict]:
        """Execute ``tasks`` and return one payload dict per task, in order.

        ``graphs`` maps graph digests to the frozen graphs this batch needs;
        with workers active they are exported to shared memory for the
        duration of the batch (ref-counted, unlinked afterwards).  Tasks
        whose digest is absent must be resolvable from the shared store.
        Duplicate tasks are solved once; any worker failure is re-raised as
        :class:`ScenarioError` (lowest task index wins deterministically)
        after the batch has drained — the pool survives.
        """
        if not tasks:
            return []
        graphs = graphs or {}

        # dedupe: first occurrence of each key is the representative
        representatives: dict[tuple, int] = {}
        slot_of_task: list[int] = []
        unique: list[SweepTask] = []
        for task in tasks:
            key = task.dedupe_key()
            slot = representatives.get(key)
            if slot is None:
                slot = len(unique)
                representatives[key] = slot
                unique.append(task)
            slot_of_task.append(slot)

        if not self.uses_workers:
            payloads = [self._run_inline(task, graphs) for task in unique]
            return [payloads[slot] for slot in slot_of_task]

        pool = self._ensure_pool()
        exported: list[str] = []
        try:
            resolved: list[SweepTask] = []
            for task in unique:
                graph = graphs.get(task.graph_digest)
                if graph is not None:
                    segment = self.registry.acquire(graph)
                    exported.append(task.graph_digest)
                    task = _with_segment(task, segment)
                resolved.append(task)

            # dispatch largest graph first so the longest solve starts first
            order = sorted(
                range(len(resolved)),
                key=lambda slot: -self._task_size(resolved[slot], graphs),
            )
            payloads: list[dict | None] = [None] * len(resolved)
            failures: list[tuple[int, tuple]] = []
            jobs = [(slot, resolved[slot]) for slot in order]
            for slot, ok, payload in pool.imap_unordered(_run_task, jobs, chunksize=1):
                if ok:
                    payloads[slot] = payload
                else:
                    failures.append((slot, payload))
            if failures:
                slot, (scenario, exc_type, exc_msg, tb_text) = min(failures)
                raise ScenarioError(scenario, exc_type, exc_msg, tb_text)
            return [payloads[slot] for slot in slot_of_task]
        finally:
            for digest in exported:
                self.registry.release(digest)

    @staticmethod
    def _task_size(task: SweepTask, graphs: dict[str, ExecutionGraph]) -> int:
        graph = graphs.get(task.graph_digest)
        return graph.num_vertices if graph is not None else 0

    def _run_inline(self, task: SweepTask, graphs: dict[str, ExecutionGraph]) -> dict:
        """The no-worker path: same execution code, local resolution."""
        state_before = dict(_WORKER)
        _init_worker(self.cache_dir)
        _WORKER["graphs"].update(graphs)
        try:
            slot, ok, payload = _run_task((0, task))
            if not ok:
                scenario, exc_type, exc_msg, tb_text = payload
                raise ScenarioError(scenario, exc_type, exc_msg, tb_text)
            return payload
        finally:
            _WORKER.clear()
            _WORKER.update(state_before)

    # -- conveniences --------------------------------------------------------

    def sweep_graphs(
        self,
        graphs: Sequence[ExecutionGraph],
        params: LogGPSParams,
        *,
        l_min: float = 0.0,
        l_max: float = 10_000.0,
        backend: str = "auto",
        max_pieces: int = 50_000,
        envelope_engine: str = "auto",
        **build_kwargs,
    ) -> list:
        """One exact ``T(L)`` envelope per graph (duplicates solved once).

        The digest-addressed, zero-copy equivalent of the serial
        :func:`~repro.core.parametric.batched_sweep_graphs` loop.
        """
        params_digest = params.content_digest()
        by_digest = {graph.content_digest(): graph for graph in graphs}
        build_items = tuple(sorted(build_kwargs.items()))
        tasks = [
            SweepTask(
                graph_digest=graph.content_digest(),
                params_digest=params_digest,
                l_min=float(l_min),
                l_max=float(l_max),
                backend=backend,
                max_pieces=int(max_pieces),
                build_kwargs=build_items,
                envelope_engine=envelope_engine,
                params=params,
                scenario=f"graph[{i}] {graph.content_digest()[:12]}…",
            )
            for i, graph in enumerate(graphs)
        ]
        payloads = self.run_tasks(tasks, by_digest)
        return [payload["envelope"] for payload in payloads]


def _with_segment(task: SweepTask, segment: str) -> SweepTask:
    from dataclasses import replace

    return replace(task, segment=segment)
