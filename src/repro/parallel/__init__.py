"""Zero-copy multi-process execution of scenario fleets.

The package splits into three layers (see ``README.md`` here):

* :mod:`.shm` — :class:`SharedGraphBuffer` exports a frozen
  :class:`~repro.schedgen.graph.ExecutionGraph`'s identity columns (plus the
  cached level structure and labels) into one POSIX shared-memory segment,
  keyed by its content digest; workers attach read-only NumPy views with no
  copy and no pickling.  :class:`SharedGraphRegistry` ref-counts the
  exported segments and unlinks them deterministically.
* :mod:`.pool` — :class:`SweepPool`, a persistent ``spawn`` worker pool
  whose tasks are ``(graph_digest, params_digest, sweep spec)`` tuples;
  duplicate digests inside a batch are solved once, failures surface as
  :class:`ScenarioError` with the scenario identity attached.
* :mod:`.fleet` — :class:`ScenarioFleet`, the grid driver behind
  ``llamp fleet``: expands (app × ranks × algorithm × params × injector)
  grids, runs them across the pool and writes per-app shards plus one
  deterministic merged summary.
"""

from .fleet import FleetResult, Scenario, ScenarioFleet
from .pool import ScenarioError, SweepPool, SweepTask
from .shm import (
    SEGMENT_PREFIX,
    SharedGraphBuffer,
    SharedGraphRegistry,
    live_shared_segments,
)

__all__ = [
    "SEGMENT_PREFIX",
    "SharedGraphBuffer",
    "SharedGraphRegistry",
    "live_shared_segments",
    "SweepTask",
    "SweepPool",
    "ScenarioError",
    "Scenario",
    "ScenarioFleet",
    "FleetResult",
]
