"""Zero-copy sharing of frozen :class:`ExecutionGraph`\\ s across processes.

A frozen graph is a handful of immutable NumPy columns (see
:attr:`ExecutionGraph.CONTENT_COLUMNS`), which makes it an ideal candidate
for :mod:`multiprocessing.shared_memory`: the parent packs the identity
columns — plus the cached level structure and the labels — into **one**
POSIX shared-memory segment, and every worker attaches read-only NumPy
views over the same physical pages.  Nothing is pickled, nothing is copied;
a 25 MB trace-scale graph costs one ``memcpy`` in the parent and zero bytes
per worker.

Segment layout (all sections 8-byte aligned, fixed order)::

    header   int64[8]   [format, nranks, nv, ne, n_labels, label_bytes,
                         has_levels, n_levels]
    columns  the nine identity columns in CONTENT_COLUMNS order, canonical
             little-endian dtypes
    labels   label_vids int64[n_labels], label_offsets int64[n_labels + 1],
             utf-8 blob uint8[label_bytes]
    levels   (only when has_levels) topo_order int64[nv],
             level_indptr int64[n_levels + 1]

Lifecycle contract:

* the **exporting** process owns the segment.  Ownership is managed by the
  ref-counted :class:`SharedGraphRegistry` — every :meth:`~
  SharedGraphRegistry.acquire` must be paired with a :meth:`~
  SharedGraphRegistry.release`, and the segment is unlinked deterministically
  when the count reaches zero.  A context manager plus an ``atexit`` hook
  guarantee no ``/dev/shm`` blocks outlive the process even on error paths.
* **attaching** processes only ever :meth:`SharedGraphBuffer.close` their
  mapping; they never unlink.  Attaching suppresses ``resource_tracker``
  registration (the tracker is shared across the spawn tree and keyed by
  name) so a worker exiting while the parent still serves the graph neither
  unlinks it early nor clobbers the owner's tracker entry.
* unlinking removes the name; existing worker mappings stay valid until
  closed (POSIX semantics), so a long-lived worker cache never observes a
  dangling view.
"""

from __future__ import annotations

import atexit
import os
import secrets
from multiprocessing import resource_tracker, shared_memory
from typing import Iterator

import numpy as np

from ..schedgen.graph import ExecutionGraph

__all__ = [
    "SEGMENT_PREFIX",
    "SharedGraphBuffer",
    "SharedGraphRegistry",
    "live_shared_segments",
]

#: every segment created by this module is named ``llamp-<digest16>-<token>``
SEGMENT_PREFIX = "llamp-"

#: bumped whenever the segment layout changes incompatibly
_SEGMENT_FORMAT = 1

_HEADER_WORDS = 8


def _align8(offset: int) -> int:
    return (offset + 7) & ~7


def _section_specs(
    nv: int, ne: int, n_labels: int, label_bytes: int, has_levels: bool, n_levels: int
) -> Iterator[tuple[str, str, int]]:
    """Yield ``(name, dtype, count)`` for every section after the header."""
    sizes = {"kind": nv, "rank": nv, "cost": nv, "size": nv, "peer": nv, "tag": nv,
             "edge_src": ne, "edge_dst": ne, "edge_kind": ne}
    for name, dtype in ExecutionGraph.CONTENT_COLUMNS:
        yield name, dtype, sizes[name]
    yield "label_vids", "<i8", n_labels
    yield "label_offsets", "<i8", n_labels + 1
    yield "label_blob", "u1", label_bytes
    if has_levels:
        yield "topo_order", "<i8", nv
        yield "level_indptr", "<i8", n_levels + 1


def _layout(
    nv: int, ne: int, n_labels: int, label_bytes: int, has_levels: bool, n_levels: int
) -> tuple[dict[str, tuple[str, int, int]], int]:
    """Compute ``{name: (dtype, count, offset)}`` and the total byte size."""
    offset = _HEADER_WORDS * 8
    table: dict[str, tuple[str, int, int]] = {}
    for name, dtype, count in _section_specs(
        nv, ne, n_labels, label_bytes, has_levels, n_levels
    ):
        offset = _align8(offset)
        table[name] = (dtype, count, offset)
        offset += count * np.dtype(dtype).itemsize
    return table, max(offset, _HEADER_WORDS * 8 + 8)


def _encode_labels(labels: dict[int, str]) -> tuple[np.ndarray, np.ndarray, bytes]:
    vids = np.array(sorted(labels), dtype=np.int64)
    encoded = [labels[int(v)].encode("utf-8") for v in vids]
    offsets = np.zeros(len(vids) + 1, dtype=np.int64)
    if encoded:
        offsets[1:] = np.cumsum([len(b) for b in encoded])
    return vids, offsets, b"".join(encoded)


class SharedGraphBuffer:
    """One exported or attached shared-memory segment holding a graph.

    Use :meth:`export` in the owning process and :meth:`attach` in workers;
    :attr:`graph` is the zero-copy :class:`ExecutionGraph` whose identity
    columns are read-only views into the segment.  The buffer keeps the
    underlying :class:`~multiprocessing.shared_memory.SharedMemory` object
    alive — dropping the buffer while the graph views are still in use is a
    use-after-free, so cache the buffer, not the graph.
    """

    __slots__ = ("name", "digest", "graph", "owner", "_shm", "__weakref__")

    def __init__(
        self, name: str, digest: str, graph: ExecutionGraph, shm, owner: bool
    ) -> None:
        self.name = name
        self.digest = digest
        self.graph = graph
        self.owner = owner
        self._shm = shm

    # -- construction --------------------------------------------------------

    @classmethod
    def export(cls, graph: ExecutionGraph) -> "SharedGraphBuffer":
        """Copy ``graph``'s identity columns into a fresh shared segment.

        The cached level structure is exported when already computed (so
        workers skip the topological sort), and the segment records the
        graph's :meth:`~ExecutionGraph.content_digest` identity.
        """
        digest = graph.content_digest()
        nv, ne = graph.num_vertices, graph.num_edges
        vids, offsets, blob = _encode_labels(graph.labels)
        has_levels = graph._topo_order is not None and graph._level_indptr is not None
        n_levels = len(graph._level_indptr) - 1 if has_levels else 0
        table, total = _layout(nv, ne, len(vids), len(blob), has_levels, n_levels)

        shm = None
        while shm is None:
            name = f"{SEGMENT_PREFIX}{digest[:16]}-{secrets.token_hex(4)}"
            try:
                shm = shared_memory.SharedMemory(name=name, create=True, size=total)
            except FileExistsError:  # pragma: no cover - 32-bit token collision
                continue

        header = np.ndarray(_HEADER_WORDS, dtype="<i8", buffer=shm.buf)
        header[:] = (
            _SEGMENT_FORMAT, graph.nranks, nv, ne,
            len(vids), len(blob), int(has_levels), n_levels,
        )
        sections: dict[str, np.ndarray] = {
            name_: np.ndarray(count, dtype=dtype, buffer=shm.buf, offset=off)
            for name_, (dtype, count, off) in table.items()
        }
        for col_name, _ in ExecutionGraph.CONTENT_COLUMNS:
            sections[col_name][:] = getattr(graph, col_name)
        sections["label_vids"][:] = vids
        sections["label_offsets"][:] = offsets
        if blob:
            sections["label_blob"][:] = np.frombuffer(blob, dtype=np.uint8)
        if has_levels:
            sections["topo_order"][:] = graph._topo_order
            sections["level_indptr"][:] = graph._level_indptr
        return cls(shm.name, digest, graph, shm, owner=True)

    @classmethod
    def attach(cls, name: str, *, digest: str | None = None) -> "SharedGraphBuffer":
        """Map an exported segment and rebuild the graph over zero-copy views.

        The identity columns of the returned graph are read-only views into
        the shared pages; only derived data (the CSR adjacency) is allocated
        locally.  The mapping is never registered with the
        ``resource_tracker`` — attachers never own the segment, so the
        tracker must not unlink it when this process exits.
        """
        # CPython (3.11) registers with the resource tracker on attach too.
        # The tracker is shared across the spawn tree and keyed by name, so an
        # attacher must not touch its entry at all: registering and then
        # unregistering would erase the *owner's* registration (the cache is a
        # set), making the owner's later unlink fail inside the tracker.
        # Suppress registration for the duration of the attach instead.
        registered = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            shm = shared_memory.SharedMemory(name=name, create=False)
        finally:
            resource_tracker.register = registered
        try:
            header = np.ndarray(_HEADER_WORDS, dtype="<i8", buffer=shm.buf)
            fmt, nranks, nv, ne, n_labels, label_bytes, has_levels, n_levels = (
                int(x) for x in header
            )
            if fmt != _SEGMENT_FORMAT:
                raise ValueError(
                    f"shared graph segment {name!r} has format {fmt}, "
                    f"expected {_SEGMENT_FORMAT}"
                )
            table, _ = _layout(
                nv, ne, n_labels, label_bytes, bool(has_levels), n_levels
            )

            def view(section: str) -> np.ndarray:
                dtype, count, off = table[section]
                arr = np.ndarray(count, dtype=dtype, buffer=shm.buf, offset=off)
                arr.flags.writeable = False
                return arr

            columns = {
                col: view(col) for col, _ in ExecutionGraph.CONTENT_COLUMNS
            }
            vids = view("label_vids")
            offsets = view("label_offsets")
            blob = view("label_blob")
            labels = {
                int(vid): bytes(blob[offsets[i]: offsets[i + 1]]).decode("utf-8")
                for i, vid in enumerate(vids)
            }
            graph = ExecutionGraph.from_columns(
                nranks,
                columns,
                labels=labels,
                topo_order=view("topo_order") if has_levels else None,
                level_indptr=view("level_indptr") if has_levels else None,
                content_digest=digest,
            )
        except BaseException:
            shm.close()
            raise
        return cls(shm.name, digest or graph.content_digest(), graph, shm, owner=False)

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Drop this process's mapping (views become invalid)."""
        if self._shm is not None:
            self._shm.close()
            self._shm = None
            self.graph = None

    def unlink(self) -> None:
        """Remove the segment name (owner only); existing mappings survive."""
        if not self.owner:
            raise RuntimeError("only the exporting process may unlink a segment")
        shm = self._shm
        if shm is None:
            return
        self._shm = None
        self.graph = None
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass
        shm.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        role = "owner" if self.owner else "attached"
        return f"SharedGraphBuffer({self.name!r}, {role}, digest={self.digest[:12]}…)"


class SharedGraphRegistry:
    """Ref-counted, digest-keyed ownership of exported graph segments.

    ``acquire(graph)`` exports the graph on first use and bumps a reference
    count on repeats; ``release(digest)`` decrements and **unlinks the
    segment deterministically at zero** — there is no garbage-collection
    window during which a dead segment lingers in ``/dev/shm``.  The
    registry is also a context manager (release-all on exit) and registers
    an ``atexit`` hook as a backstop for error paths that skip both.
    """

    def __init__(self) -> None:
        self._entries: dict[str, list] = {}  # digest -> [buffer, refcount]
        atexit.register(self.release_all)

    def acquire(self, graph: ExecutionGraph) -> str:
        """Export ``graph`` (or re-reference an existing export); return the
        segment name workers attach to."""
        digest = graph.content_digest()
        entry = self._entries.get(digest)
        if entry is None:
            entry = [SharedGraphBuffer.export(graph), 0]
            self._entries[digest] = entry
        entry[1] += 1
        return entry[0].name

    def release(self, digest: str) -> None:
        """Drop one reference; unlink the segment when none remain."""
        entry = self._entries.get(digest)
        if entry is None:
            raise KeyError(f"digest {digest[:12]}… is not registered")
        entry[1] -= 1
        if entry[1] <= 0:
            del self._entries[digest]
            entry[0].unlink()

    def release_all(self) -> None:
        """Unlink every live segment regardless of reference counts."""
        entries, self._entries = self._entries, {}
        for buffer, _ in entries.values():
            try:
                buffer.unlink()
            except Exception:  # pragma: no cover - best-effort cleanup
                pass

    def segment_of(self, digest: str) -> str | None:
        """The live segment name for ``digest`` (``None`` when not exported)."""
        entry = self._entries.get(digest)
        return entry[0].name if entry is not None else None

    def live(self) -> dict[str, str]:
        """Digest → segment name of every currently exported graph."""
        return {digest: entry[0].name for digest, entry in self._entries.items()}

    def close(self) -> None:
        self.release_all()
        atexit.unregister(self.release_all)

    def __enter__(self) -> "SharedGraphRegistry":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __len__(self) -> int:
        return len(self._entries)


def live_shared_segments() -> set[str]:
    """Names of all ``llamp-*`` shared-memory segments visible on this host.

    Scans ``/dev/shm`` (POSIX); returns an empty set on platforms without
    it.  Used by the leak-check test fixture and the benchmark post-run
    check: after every pool/fleet run the set must be unchanged.
    """
    try:
        entries = os.listdir("/dev/shm")
    except (FileNotFoundError, NotADirectoryError, PermissionError):
        return set()
    return {entry for entry in entries if entry.startswith(SEGMENT_PREFIX)}
