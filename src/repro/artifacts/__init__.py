"""Content-addressed persistence of the pipeline's frozen artifacts.

``repro.artifacts`` is the persist-once/serve-many layer named by ROADMAP
item 1: single-file ``.npz`` round trips for frozen execution graphs,
assembled LPs and exact ``T(L)`` envelopes (:mod:`.serialize`), plus an
on-disk :class:`ArtifactStore` keyed by the content digests of the inputs
(:mod:`.store`).  See ``README.md`` in this package for the format and the
digest contract.
"""

from .serialize import (
    FORMAT_VERSION,
    ArtifactFormatError,
    load_envelope,
    load_graph,
    load_lp,
    save_envelope,
    save_graph,
    save_lp,
)
from .store import (
    ArtifactStore,
    combine_digests,
    envelope_key,
    envelope_key_from_digests,
)

__all__ = [
    "FORMAT_VERSION",
    "ArtifactFormatError",
    "save_graph",
    "load_graph",
    "save_lp",
    "load_lp",
    "save_envelope",
    "load_envelope",
    "ArtifactStore",
    "combine_digests",
    "envelope_key",
    "envelope_key_from_digests",
]
