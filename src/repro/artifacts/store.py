"""A content-addressed on-disk store for the pipeline's frozen artifacts.

Every expensive artifact (frozen graph, assembled LP, tangent envelope) is
immutable and a deterministic function of its inputs, so it can be keyed by
the sha256 digests of those inputs (:meth:`ExecutionGraph.content_digest`,
:meth:`LogGPSParams.content_digest`) and rebuilt at most once per key —
the persist-once/serve-many shape the service layer mounts directly.

Layout::

    <root>/<kind>/<key[:2]>/<key>.npz

with ``kind`` one of ``graph`` / ``lp`` / ``envelope`` and ``key`` a hex
digest (the two-character fan-out keeps directories small).  Writes are
atomic (tempfile + :func:`os.replace`), so concurrent workers racing on the
same key at worst both build and one replace wins — never a torn file.
Corrupt or truncated entries are deleted and rebuilt transparently.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
from pathlib import Path
from typing import Callable

from .serialize import (
    load_envelope,
    load_graph,
    load_lp,
    save_envelope,
    save_graph,
    save_lp,
)

__all__ = [
    "ArtifactStore",
    "combine_digests",
    "envelope_key",
    "envelope_key_from_digests",
]

_HEX = set("0123456789abcdef")


def combine_digests(*parts: object) -> str:
    """Derive one sha256 cache key from several digest/config components.

    Each part is hashed behind a separator so the combination is injective
    over the part list (no concatenation ambiguity).
    """
    h = hashlib.sha256(b"repro:artifact-key:v1\0")
    for part in parts:
        h.update(str(part).encode("utf-8"))
        h.update(b"\0")
    return h.hexdigest()


def envelope_key(graph, params, *, l_min: float, l_max: float, **config: object) -> str:
    """The cache key of one exact ``T(L)`` envelope.

    Combines the graph and parameter content digests with the swept interval
    and any extra configuration that changes the produced curve
    (``gap_symbolic``, ``max_pieces``, LP build modes, …), sorted by name so
    keyword order is irrelevant.
    """
    return envelope_key_from_digests(
        graph.content_digest(),
        params.content_digest(),
        l_min=l_min,
        l_max=l_max,
        **config,
    )


def envelope_key_from_digests(
    graph_digest: str, params_digest: str, *, l_min: float, l_max: float,
    **config: object,
) -> str:
    """:func:`envelope_key` for callers that hold only the content digests.

    Pool workers resolve scenarios by ``(graph_digest, params_digest)``
    without ever materialising the graph, yet must address the same store
    entries the in-process path writes — both key builders therefore share
    this digest-level implementation.
    """
    parts: list[object] = [
        "envelope",
        graph_digest,
        params_digest,
        repr(float(l_min)),
        repr(float(l_max)),
    ]
    for name in sorted(config):
        parts.append(name)
        parts.append(repr(config[name]))
    return combine_digests(*parts)


class ArtifactStore:
    """Content-addressed ``get_or_build`` cache over :mod:`.serialize`.

    The store is safe to share between processes (atomic writes, reads of
    complete files only); the hit/miss counters are process-local.
    """

    KINDS = ("graph", "lp", "envelope")

    _SAVERS: dict[str, Callable] = {
        "graph": save_graph,
        "lp": save_lp,
        "envelope": save_envelope,
    }
    _LOADERS: dict[str, Callable] = {
        "graph": load_graph,
        "lp": load_lp,
        "envelope": load_envelope,
    }

    def __init__(
        self, root: str | Path, *, graph_mmap_mode: str | None = None
    ) -> None:
        if graph_mmap_mode not in (None, "r"):
            raise ValueError(
                f"graph_mmap_mode must be None or 'r', got {graph_mmap_mode!r}"
            )
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.graph_mmap_mode = graph_mmap_mode
        self.hits: dict[str, int] = {kind: 0 for kind in self.KINDS}
        self.misses: dict[str, int] = {kind: 0 for kind in self.KINDS}

    # -- addressing ---------------------------------------------------------

    def path_for(self, kind: str, key: str) -> Path:
        """The on-disk path of entry ``(kind, key)`` (whether it exists or not)."""
        self._check_kind(kind)
        key = str(key)
        if len(key) < 6 or not set(key) <= _HEX:
            raise ValueError(f"artifact key must be a hex digest, got {key!r}")
        return self.root / kind / key[:2] / f"{key}.npz"

    def contains(self, kind: str, key: str) -> bool:
        return self.path_for(kind, key).exists()

    def _check_kind(self, kind: str) -> None:
        if kind not in self.KINDS:
            raise ValueError(f"unknown artifact kind {kind!r}; expected one of {self.KINDS}")

    # -- read/write ---------------------------------------------------------

    def _atomic_save(self, kind: str, path: Path, obj: object) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        os.close(fd)
        try:
            self._SAVERS[kind](obj, tmp)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    def get(self, kind: str, key: str):
        """Load entry ``(kind, key)`` or return ``None`` (miss or corrupt).

        A corrupt entry is deleted so the next :meth:`get_or_build` rebuilds
        it.  Counters are not touched — use :meth:`get_or_build` for the
        counted path.
        """
        path = self.path_for(kind, key)
        if not path.exists():
            return None
        try:
            if kind == "graph" and self.graph_mmap_mode is not None:
                # zero-copy columns over the stored archive; every load is
                # context-managed or fd-free, so a long-lived fleet pool
                # serving thousands of gets never accumulates descriptors
                return self._LOADERS[kind](path, mmap_mode=self.graph_mmap_mode)
            return self._LOADERS[kind](path)
        except Exception:
            path.unlink(missing_ok=True)
            return None

    def put(self, kind: str, key: str, obj: object) -> Path:
        """Store ``obj`` under ``(kind, key)`` unconditionally (atomic)."""
        path = self.path_for(kind, key)
        self._atomic_save(kind, path, obj)
        return path

    def get_or_build(self, kind: str, key: str, builder: Callable[[], object]):
        """Return the cached entry for ``key``, building and storing on miss."""
        cached = self.get(kind, key)
        if cached is not None:
            self.hits[kind] += 1
            return cached
        obj = builder()
        self.misses[kind] += 1
        self._atomic_save(kind, self.path_for(kind, key), obj)
        return obj

    # typed conveniences (fixed kind, precise return types for callers)

    def get_or_build_graph(self, key: str, builder: Callable[[], object]):
        return self.get_or_build("graph", key, builder)

    def get_or_build_lp(self, key: str, builder: Callable[[], object]):
        """``builder`` returns an :class:`LPModel`; the cached load returns
        ``(model, meta)`` like :func:`repro.artifacts.load_lp` — use
        :meth:`get`/:meth:`put` directly to control ``meta``."""
        cached = self.get("lp", key)
        if cached is not None:
            self.hits["lp"] += 1
            return cached[0]
        model = builder()
        self.misses["lp"] += 1
        self._atomic_save("lp", self.path_for("lp", key), model)
        return model

    def get_or_build_envelope(self, key: str, builder: Callable[[], object]):
        return self.get_or_build("envelope", key, builder)

    # -- maintenance --------------------------------------------------------

    def entries(self, kind: str | None = None) -> list[Path]:
        """All stored entry files, optionally restricted to one kind."""
        kinds = self.KINDS if kind is None else (kind,)
        found: list[Path] = []
        for k in kinds:
            self._check_kind(k)
            base = self.root / k
            if base.is_dir():
                found.extend(sorted(base.glob("*/*.npz")))
        return found

    def stats(self) -> dict[str, object]:
        """Per-kind entry counts/sizes plus this process's hit/miss counters."""
        kinds = {}
        for kind in self.KINDS:
            files = self.entries(kind)
            kinds[kind] = {
                "entries": len(files),
                "bytes": sum(f.stat().st_size for f in files),
                "hits": self.hits[kind],
                "misses": self.misses[kind],
            }
        return {
            "root": str(self.root),
            "kinds": kinds,
            "total_entries": sum(k["entries"] for k in kinds.values()),
            "total_bytes": sum(k["bytes"] for k in kinds.values()),
        }

    def clear(self, kind: str | None = None) -> int:
        """Delete stored entries (all kinds by default); returns the count."""
        files = self.entries(kind)
        for path in files:
            path.unlink(missing_ok=True)
        return len(files)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ArtifactStore(root={str(self.root)!r})"
