"""Single-file ``.npz`` serialisation of the pipeline's frozen artifacts.

Three artifact kinds are covered, each persisted as one NumPy ``.npz``
archive with a self-describing ``__artifact__`` tag and a format version:

* **graphs** — the identity columns of a frozen
  :class:`~repro.schedgen.graph.ExecutionGraph` (vertex kind/rank/cost/
  size/peer/tag, the dep/comm edge arrays, labels, ``nranks``), plus any
  already-computed level structure so the load path restores the cached
  views instead of re-deriving them;
* **LPs** — the canonical CSR rows, bounds and variable names of an
  :class:`~repro.lp.model.LPModel` (via :meth:`LPModel.to_arrays`) together
  with the objective, sense and optional string metadata;
* **envelopes** — the exact ``T(L)`` curve of a latency sweep, either as a
  :class:`~repro.core.parametric.PiecewiseLinear` (slopes + intercepts) or
  as a raw :class:`~repro.lp.parametric.TangentEnvelope` (tangent probes +
  discovered breakpoints).

Loads never re-run validation: every artifact was validated when it was
first built, and the formats store the already-frozen canonical columns.
``allow_pickle`` stays off on both ends — the formats are pure arrays.
"""

from __future__ import annotations

import io
import zipfile
from pathlib import Path

import numpy as np

from ..core.parametric import Line, PiecewiseLinear
from ..lp.model import LPModel, LinearExpr, Sense
from ..lp.parametric import Tangent, TangentEnvelope
from ..schedgen.graph import ExecutionGraph

__all__ = [
    "FORMAT_VERSION",
    "ArtifactFormatError",
    "save_graph",
    "load_graph",
    "save_lp",
    "load_lp",
    "save_envelope",
    "load_envelope",
]

#: bumped whenever any of the npz layouts changes incompatibly
FORMAT_VERSION = 1


class ArtifactFormatError(ValueError):
    """Raised when an artifact file has the wrong kind or an unknown version."""


def _save_npz(path: str | Path, arrays: dict[str, np.ndarray | int | float | str]) -> Path:
    """Write ``arrays`` to exactly ``path`` (no implicit ``.npz`` suffix)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    buffer = io.BytesIO()
    np.savez(buffer, **arrays)
    path.write_bytes(buffer.getvalue())
    return path


def _mmap_npz_members(path: Path, names: list[str]) -> dict[str, np.ndarray]:
    """Map selected ``.npy`` members of an uncompressed npz straight from disk.

    ``np.load`` silently ignores ``mmap_mode`` for npz archives, so zero-copy
    loads need the member offsets resolved by hand: ``np.savez`` stores
    members with ``ZIP_STORED`` (no compression), which means each member's
    npy stream sits contiguously in the file and an ``np.memmap`` with the
    right offset aliases it directly — no read, no copy, and **no retained
    file descriptor** (the mapping outlives the fd, which NumPy closes once
    the pages are mapped).

    The data offset comes from the member's *local* zip header — its name
    and extra-field lengths can legally differ from the central directory's,
    so the 30-byte local header is re-read rather than trusted from
    ``ZipInfo``.
    """
    arrays: dict[str, np.ndarray] = {}
    with zipfile.ZipFile(path) as archive, open(path, "rb") as fh:
        for name in names:
            info = archive.getinfo(f"{name}.npy")
            if info.compress_type != zipfile.ZIP_STORED:
                raise ArtifactFormatError(
                    f"{path}: member {name!r} is compressed; cannot memory-map"
                )
            fh.seek(info.header_offset)
            local = fh.read(30)
            if local[:4] != b"PK\x03\x04":
                raise ArtifactFormatError(
                    f"{path}: corrupt local header for member {name!r}"
                )
            name_len = int.from_bytes(local[26:28], "little")
            extra_len = int.from_bytes(local[28:30], "little")
            fh.seek(info.header_offset + 30 + name_len + extra_len)
            version = np.lib.format.read_magic(fh)
            if version == (1, 0):
                shape, fortran, dtype = np.lib.format.read_array_header_1_0(fh)
            elif version == (2, 0):
                shape, fortran, dtype = np.lib.format.read_array_header_2_0(fh)
            else:  # pragma: no cover - savez never writes 3.0 for these dtypes
                raise ArtifactFormatError(
                    f"{path}: member {name!r} has unsupported npy version {version}"
                )
            if dtype.hasobject:  # pragma: no cover - formats are pure arrays
                raise ArtifactFormatError(
                    f"{path}: member {name!r} holds objects; cannot memory-map"
                )
            arrays[name] = np.memmap(
                path, dtype=dtype, mode="r", offset=fh.tell(), shape=shape,
                order="F" if fortran else "C",
            )
    return arrays


def _check_kind(archive: np.lib.npyio.NpzFile, path: Path, expected: str) -> None:
    try:
        kind = str(archive["__artifact__"][()])
        version = int(archive["__version__"][()])
    except KeyError as exc:
        raise ArtifactFormatError(f"{path}: not a repro artifact file") from exc
    if kind != expected:
        raise ArtifactFormatError(
            f"{path}: expected a {expected!r} artifact, found {kind!r}"
        )
    if version > FORMAT_VERSION:
        raise ArtifactFormatError(
            f"{path}: format version {version} is newer than supported "
            f"({FORMAT_VERSION})"
        )


# ---------------------------------------------------------------------------
# execution graphs
# ---------------------------------------------------------------------------


def save_graph(graph: ExecutionGraph, path: str | Path) -> Path:
    """Persist a frozen :class:`ExecutionGraph` to ``path`` (one ``.npz``).

    All identity columns (see :attr:`ExecutionGraph.CONTENT_COLUMNS`) are
    stored verbatim, so the round trip is bit-identical and preserves
    :meth:`~ExecutionGraph.content_digest`.  If the level structure has
    already been computed it is stored too, and :func:`load_graph` restores
    it instead of re-deriving it.
    """
    arrays: dict[str, object] = {
        "__artifact__": "graph",
        "__version__": FORMAT_VERSION,
        "nranks": np.int64(graph.nranks),
    }
    arrays.update(graph.identity_columns())
    label_vids = np.array(sorted(graph.labels), dtype=np.int64)
    arrays["label_vids"] = label_vids
    arrays["label_text"] = np.array(
        [graph.labels[int(v)] for v in label_vids], dtype=np.str_
    )
    if graph._topo_order is not None and graph._level_indptr is not None:
        arrays["topo_order"] = graph._topo_order
        arrays["level_indptr"] = graph._level_indptr
    return _save_npz(path, arrays)


def load_graph(path: str | Path, *, mmap_mode: str | None = None) -> ExecutionGraph:
    """Reconstruct an :class:`ExecutionGraph` written by :func:`save_graph`.

    No validation runs (the graph was validated before it was frozen and
    saved); the CSR adjacency is rebuilt deterministically from the edge
    columns, and a stored level structure is re-attached to the cached-view
    slots so e.g. :meth:`~ExecutionGraph.topological_order` is free.

    With ``mmap_mode="r"`` the identity columns (and any stored level
    structure) are attached **zero-copy** as read-only memory maps over the
    archive file (see :func:`_mmap_npz_members`): loading a multi-gigabyte
    graph touches only the pages a consumer actually reads, and no file
    descriptor stays open.  Small metadata (labels, ``nranks``) is still
    read eagerly.  The column bytes — and therefore
    :meth:`~ExecutionGraph.content_digest` — are identical either way.
    """
    if mmap_mode not in (None, "r"):
        raise ValueError(f"mmap_mode must be None or 'r', got {mmap_mode!r}")
    path = Path(path)
    with np.load(path, allow_pickle=False) as archive:
        _check_kind(archive, path, "graph")
        nranks = int(archive["nranks"][()])
        labels = {
            int(vid): str(text)
            for vid, text in zip(archive["label_vids"], archive["label_text"])
        }
        has_levels = "topo_order" in archive.files and "level_indptr" in archive.files
        if mmap_mode is None:
            columns = {
                name: archive[name].copy()
                for name, _ in ExecutionGraph.CONTENT_COLUMNS
            }
            topo_order = archive["topo_order"].copy() if has_levels else None
            level_indptr = archive["level_indptr"].copy() if has_levels else None
    if mmap_mode == "r":
        wanted = [name for name, _ in ExecutionGraph.CONTENT_COLUMNS]
        if has_levels:
            wanted += ["topo_order", "level_indptr"]
        mapped = _mmap_npz_members(path, wanted)
        columns = {name: mapped[name] for name, _ in ExecutionGraph.CONTENT_COLUMNS}
        topo_order = mapped["topo_order"] if has_levels else None
        level_indptr = mapped["level_indptr"] if has_levels else None
    return ExecutionGraph.from_columns(
        nranks,
        columns,
        labels=labels,
        topo_order=topo_order,
        level_indptr=level_indptr,
    )


# ---------------------------------------------------------------------------
# assembled LPs
# ---------------------------------------------------------------------------


def save_lp(
    model: LPModel, path: str | Path, *, meta: dict[str, str] | None = None
) -> Path:
    """Persist an :class:`LPModel` (rows, bounds, names, objective) to ``path``.

    ``meta`` is an optional flat string→string mapping stored alongside the
    model (e.g. the graph/params digests the LP was compiled from);
    :func:`load_lp` returns it unchanged.
    """
    arrays = model.to_arrays()
    obj_cols = np.array(sorted(model.objective.coeffs), dtype=np.int64)
    obj_vals = np.array(
        [model.objective.coeffs[int(c)] for c in obj_cols], dtype=np.float64
    )
    meta = dict(meta or {})
    payload: dict[str, object] = {
        "__artifact__": "lp",
        "__version__": FORMAT_VERSION,
        "name": np.str_(arrays["name"]),
        "var_names": np.array(arrays["var_names"], dtype=np.str_),
        "lb": arrays["lb"],
        "ub": arrays["ub"],
        "row_indptr": arrays["row_indptr"],
        "row_cols": arrays["row_cols"],
        "row_vals": arrays["row_vals"],
        "row_consts": arrays["row_consts"],
        "row_sense": np.str_(arrays["row_sense"]),
        "obj_cols": obj_cols,
        "obj_vals": obj_vals,
        "obj_const": np.float64(model.objective.constant),
        "obj_sense": np.str_(model.sense.value),
        "meta_keys": np.array(sorted(meta), dtype=np.str_),
        "meta_vals": np.array([meta[k] for k in sorted(meta)], dtype=np.str_),
    }
    return _save_npz(path, payload)


def load_lp(path: str | Path) -> tuple[LPModel, dict[str, str]]:
    """Reconstruct ``(model, meta)`` from a file written by :func:`save_lp`.

    The model comes back through :meth:`LPModel.from_arrays`, so its
    assembled cache is pre-populated and the first solve performs no
    Python-level lowering.
    """
    path = Path(path)
    with np.load(path, allow_pickle=False) as archive:
        _check_kind(archive, path, "lp")
        model = LPModel.from_arrays(
            name=str(archive["name"][()]),
            var_names=[str(v) for v in archive["var_names"]],
            lb=archive["lb"],
            ub=archive["ub"],
            row_indptr=archive["row_indptr"],
            row_cols=archive["row_cols"],
            row_vals=archive["row_vals"],
            row_consts=archive["row_consts"],
            row_sense=str(archive["row_sense"][()]),
        )
        objective = LinearExpr(
            {
                int(c): float(v)
                for c, v in zip(archive["obj_cols"], archive["obj_vals"])
            },
            float(archive["obj_const"][()]),
        )
        model.set_objective(objective, Sense(str(archive["obj_sense"][()])))
        meta = {
            str(k): str(v)
            for k, v in zip(archive["meta_keys"], archive["meta_vals"])
        }
    return model, meta


# ---------------------------------------------------------------------------
# latency envelopes
# ---------------------------------------------------------------------------


def save_envelope(
    envelope: PiecewiseLinear | TangentEnvelope, path: str | Path
) -> Path:
    """Persist an exact ``T(L)`` envelope to ``path``.

    Accepts either representation used by the pipeline: the reconstructed
    :class:`PiecewiseLinear` curve of a :class:`~repro.core.parametric.
    BatchedSweep`, or the raw :class:`TangentEnvelope` returned by the
    tangent search.  The file records which one it holds and
    :func:`load_envelope` returns the same type.
    """
    if isinstance(envelope, PiecewiseLinear):
        payload: dict[str, object] = {
            "__artifact__": "envelope",
            "__version__": FORMAT_VERSION,
            "envelope_kind": np.str_("piecewise"),
            "slopes": np.array([ln.slope for ln in envelope.lines], dtype=np.float64),
            "intercepts": np.array(
                [ln.intercept for ln in envelope.lines], dtype=np.float64
            ),
            "lo": np.float64(envelope.lo),
            "hi": np.float64(envelope.hi),
        }
    elif isinstance(envelope, TangentEnvelope):
        payload = {
            "__artifact__": "envelope",
            "__version__": FORMAT_VERSION,
            "envelope_kind": np.str_("tangent"),
            "tangent_L": np.array([t.L for t in envelope.tangents], dtype=np.float64),
            "tangent_value": np.array(
                [t.value for t in envelope.tangents], dtype=np.float64
            ),
            "tangent_slope": np.array(
                [t.slope for t in envelope.tangents], dtype=np.float64
            ),
            "breakpoints": np.asarray(envelope.breakpoints, dtype=np.float64),
            "lo": np.float64(envelope.lo),
            "hi": np.float64(envelope.hi),
            "num_solves": np.int64(envelope.num_solves),
        }
    else:
        raise TypeError(
            "save_envelope expects a PiecewiseLinear or TangentEnvelope, "
            f"got {type(envelope).__name__}"
        )
    return _save_npz(path, payload)


def load_envelope(path: str | Path) -> PiecewiseLinear | TangentEnvelope:
    """Reconstruct an envelope written by :func:`save_envelope`."""
    path = Path(path)
    with np.load(path, allow_pickle=False) as archive:
        _check_kind(archive, path, "envelope")
        kind = str(archive["envelope_kind"][()])
        if kind == "piecewise":
            lines = [
                Line(float(s), float(i))
                for s, i in zip(archive["slopes"], archive["intercepts"])
            ]
            return PiecewiseLinear(
                lines=lines,
                lo=float(archive["lo"][()]),
                hi=float(archive["hi"][()]),
            )
        if kind == "tangent":
            tangents = [
                Tangent(float(L), float(v), float(s))
                for L, v, s in zip(
                    archive["tangent_L"],
                    archive["tangent_value"],
                    archive["tangent_slope"],
                )
            ]
            return TangentEnvelope(
                tangents=tangents,
                breakpoints=[float(b) for b in archive["breakpoints"]],
                lo=float(archive["lo"][()]),
                hi=float(archive["hi"][()]),
                num_solves=int(archive["num_solves"][()]),
            )
    raise ArtifactFormatError(f"{path}: unknown envelope kind {kind!r}")
