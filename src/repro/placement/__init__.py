"""Rank placement (Appendix J of the paper)."""

from .algorithm import PlacementResult, llamp_placement, predicted_runtime
from .baselines import volume_greedy_placement, communication_volume_matrix

__all__ = [
    "PlacementResult",
    "llamp_placement",
    "predicted_runtime",
    "volume_greedy_placement",
    "communication_volume_matrix",
]
