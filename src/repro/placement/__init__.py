"""Rank placement (Appendix J of the paper)."""

from .algorithm import PlacementResult, llamp_placement, predicted_runtime, swap_gain_matrix
from .baselines import volume_greedy_placement, communication_volume_matrix

__all__ = [
    "PlacementResult",
    "llamp_placement",
    "predicted_runtime",
    "swap_gain_matrix",
    "volume_greedy_placement",
    "communication_volume_matrix",
]
