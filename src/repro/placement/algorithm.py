"""LLAMP's sensitivity-guided rank placement (Algorithm 3, Appendix J).

The algorithm iteratively refines a process mapping ``π`` (rank → node):

1. build the heterogeneous (per-pair) LP of the execution graph and assign
   the lower bounds of every ``l_{i,j}`` / ``G_{i,j}`` variable from the
   architecture graph and the current mapping;
2. solve it — the objective value is the predicted runtime under ``π`` and
   the reduced costs of the pairwise variables form the latency/bandwidth
   sensitivity matrices ``D_L`` and ``D_G`` (how many critical-path messages
   and bytes each pair carries);
3. evaluate the *gain* of swapping every pair of ranks — moving
   heavily-communicating, high-sensitivity pairs closer together — and apply
   the best verified swap;
4. stop when no positive-gain swap exists or the predicted runtime stops
   improving.

Because the objective value *is* the predicted runtime, the algorithm can
verify each swap exactly instead of trusting the heuristic gain — precisely
the property the paper highlights.

The loop is *incremental*: the per-pair LP is lowered to CSR once and every
candidate mapping is evaluated through bound-only updates on a shared
:class:`~repro.lp.parametric.ParametricLP` (zero re-assemblies after the
first solve), the O(P³) swap-gain scan is a handful of dense matrix
products (:func:`swap_gain_matrix`), and up to ``top_k`` candidate swaps
are verified per iteration — the first one the LP confirms is applied, so
a misleading heuristic leader no longer ends the search prematurely.

The gain is intentionally *not* weighted by communication volume: the
pairwise sensitivities ``λ_L^{i,j}`` / ``λ_G^{i,j}`` already count the
critical-path messages and bytes of each pair, which is the paper's core
argument against volume-based mappers (the volume matrix is what the
Scotch-like baseline in :mod:`repro.placement.baselines` consumes instead).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..core.lp_builder import GraphLP, build_lp
from ..lp.parametric import ParametricLP
from ..network.hloggp import ArchitectureGraph, block_mapping
from ..network.params import LogGPSParams
from ..schedgen.graph import ExecutionGraph

__all__ = ["PlacementResult", "llamp_placement", "predicted_runtime", "swap_gain_matrix"]

#: Minimum heuristic gain / LP improvement considered significant (µs).
_GAIN_EPS = 1e-9


@dataclass
class PlacementResult:
    """Outcome of the placement search."""

    mapping: list[int]
    predicted_runtime: float
    initial_runtime: float
    iterations: int
    swaps: list[tuple[int, int]] = field(default_factory=list)
    history: list[float] = field(default_factory=list)
    num_lp_solves: int = 0
    num_reassemblies: int = 0

    @property
    def improvement(self) -> float:
        """Relative runtime improvement over the initial mapping."""
        if self.initial_runtime <= 0:
            return 0.0
        return 1.0 - self.predicted_runtime / self.initial_runtime


def _solve_for_mapping(graph_lp: GraphLP, arch: ArchitectureGraph, mapping: Sequence[int],
                       backend: str):
    graph_lp.set_pair_latency_bounds(arch.latency_matrix(mapping))
    if graph_lp.pair_gap:
        graph_lp.set_pair_gap_bounds(arch.gap_matrix(mapping))
    return graph_lp.model.solve(backend=backend)


def predicted_runtime(
    graph: ExecutionGraph,
    params: LogGPSParams,
    arch: ArchitectureGraph,
    mapping: Sequence[int],
    *,
    backend: str = "highs",
    include_gap: bool = True,
    graph_lp: GraphLP | None = None,
    lp_engine: str = "auto",
) -> float:
    """Predicted runtime of ``graph`` under a given process mapping.

    Pass a prebuilt per-pair ``graph_lp`` to reuse one assembled model
    across several mappings (bound-only updates, no re-assembly);
    ``lp_engine`` selects the LP construction engine otherwise.
    """
    if graph_lp is None:
        graph_lp = build_lp(
            graph,
            params,
            latency_mode="per_pair",
            gap_mode="per_pair" if include_gap else "constant",
            engine=lp_engine,
        )
    elif not graph_lp.pair_latency:
        raise ValueError("predicted_runtime needs a GraphLP built with latency_mode='per_pair'")
    solution = _solve_for_mapping(graph_lp, arch, mapping, backend)
    return solution.objective


def _swap_gain(
    i: int,
    j: int,
    sensitivity_L: np.ndarray,
    sensitivity_G: np.ndarray | None,
    mapping: Sequence[int],
    arch: ArchitectureGraph,
) -> float:
    """Heuristic gain (µs) of swapping ranks ``i`` and ``j``.

    The gain sums, over every partner ``k``, the change in latency cost
    ``λ_L^{·,k} · ΔL`` (and bandwidth cost when available) caused by moving
    each of the two ranks to the other's node.  Scalar reference of
    :func:`swap_gain_matrix`; the search loop uses the vectorised form.
    """
    node_i, node_j = mapping[i], mapping[j]
    if node_i == node_j:
        return 0.0
    gain = 0.0
    nranks = len(mapping)
    for k in range(nranks):
        if k == i or k == j:
            continue
        node_k = mapping[k]
        # rank i moves from node_i to node_j
        gain += sensitivity_L[i, k] * (
            arch.node_latency(node_i, node_k) - arch.node_latency(node_j, node_k)
        )
        # rank j moves from node_j to node_i
        gain += sensitivity_L[j, k] * (
            arch.node_latency(node_j, node_k) - arch.node_latency(node_i, node_k)
        )
        if sensitivity_G is not None:
            gain += sensitivity_G[i, k] * (
                arch.node_gap(node_i, node_k) - arch.node_gap(node_j, node_k)
            )
            gain += sensitivity_G[j, k] * (
                arch.node_gap(node_j, node_k) - arch.node_gap(node_i, node_k)
            )
    return gain


def _pairwise_gain(
    sensitivity: np.ndarray, node_matrix: np.ndarray, intra: float, ranks: np.ndarray
) -> np.ndarray:
    """Vectorised ``Σ_k S[·,k]·Δcost`` for one cost matrix (latency or gap).

    With ``pair[i,k] = cost(node(i), node(k))`` and ``d = diag(S @ pair)``,
    the full-sum gain of swapping ``i`` and ``j`` is
    ``d_i − (S @ pair)[i,j] + d_j − (S @ pair)[j,i]``; the two ``k ∈ {i, j}``
    terms the scalar definition excludes both equal
    ``S[i,j]·(pair[i,j] − intra)`` and are subtracted afterwards.
    """
    S = np.array(sensitivity, dtype=np.float64)
    np.fill_diagonal(S, 0.0)
    pair = node_matrix[np.ix_(ranks, ranks)]
    A = S @ pair
    d = np.diag(A)
    gain = d[:, None] + d[None, :] - A - A.T
    gain -= 2.0 * S * (pair - intra)
    return gain


def swap_gain_matrix(
    sensitivity_L: np.ndarray,
    sensitivity_G: np.ndarray | None,
    mapping: Sequence[int],
    arch: ArchitectureGraph,
) -> np.ndarray:
    """Heuristic gain (µs) of every rank swap, as one dense ``P × P`` matrix.

    ``matrix[i, j]`` equals :func:`_swap_gain` for the pair ``(i, j)``;
    same-node pairs (and the diagonal) are zero.  Replaces the O(P³)
    Python triple loop with a few dense matrix products.
    """
    ranks = np.asarray(arch._check_mapping(mapping), dtype=np.intp)
    gain = _pairwise_gain(
        sensitivity_L, arch.node_latency_matrix(), float(arch.intra_node_latency), ranks
    )
    if sensitivity_G is not None:
        gain += _pairwise_gain(
            sensitivity_G, arch.node_gap_matrix(), float(arch.intra_node_gap), ranks
        )
    gain[ranks[:, None] == ranks[None, :]] = 0.0
    return gain


def _rank_candidates(gain_matrix: np.ndarray, top_k: int) -> list[tuple[int, int]]:
    """Up to ``top_k`` candidate swaps, best heuristic gain first.

    The leading candidate replicates the historical sequential scan (a later
    pair must beat the incumbent by more than ``_GAIN_EPS``), so single-
    candidate searches are reproducible against the pre-engine implementation.
    """
    nranks = gain_matrix.shape[0]
    iu, ju = np.triu_indices(nranks, k=1)
    gains = gain_matrix[iu, ju]

    best_idx, best_gain = -1, 0.0
    for idx, gain in enumerate(gains.tolist()):
        if gain > best_gain + _GAIN_EPS:
            best_gain, best_idx = gain, idx
    if best_idx < 0:
        return []

    chosen = [best_idx]
    if top_k > 1:
        for idx in np.argsort(-gains, kind="stable"):
            idx = int(idx)
            if gains[idx] <= _GAIN_EPS:
                break  # descending order: every later gain fails too
            if idx == best_idx:
                continue
            chosen.append(idx)
            if len(chosen) >= top_k:
                break
    return [(int(iu[idx]), int(ju[idx])) for idx in chosen]


def llamp_placement(
    graph: ExecutionGraph,
    params: LogGPSParams,
    arch: ArchitectureGraph,
    *,
    initial_mapping: Sequence[int] | None = None,
    max_iterations: int = 20,
    backend: str = "highs",
    include_gap: bool = True,
    top_k: int = 4,
    graph_lp: GraphLP | None = None,
    lp_engine: str = "auto",
) -> PlacementResult:
    """Run Algorithm 3 and return the refined mapping.

    ``initial_mapping`` defaults to the block mapping (the paper's baseline).
    The per-pair LP is assembled once; every candidate swap is evaluated
    through bound-only updates on a shared :class:`ParametricLP`, and up to
    ``top_k`` candidates (by heuristic gain) are LP-verified per iteration —
    the first confirmed improvement is applied.  ``top_k=1`` reproduces the
    classic best-candidate-or-stop behaviour.  Pass a prebuilt per-pair
    ``graph_lp`` to share one assembled model across several searches;
    ``lp_engine`` selects the LP construction engine otherwise.
    """
    if top_k < 1:
        raise ValueError(f"top_k must be >= 1, got {top_k}")
    nranks = graph.nranks
    mapping = list(initial_mapping) if initial_mapping is not None else block_mapping(nranks, arch)
    if len(mapping) != nranks:
        raise ValueError(f"mapping has {len(mapping)} entries for {nranks} ranks")

    if graph_lp is None:
        graph_lp = build_lp(
            graph,
            params,
            latency_mode="per_pair",
            gap_mode="per_pair" if include_gap else "constant",
            engine=lp_engine,
        )
    elif not graph_lp.pair_latency:
        raise ValueError("llamp_placement needs a GraphLP built with latency_mode='per_pair'")

    engine = ParametricLP(graph_lp.model, backend=backend)
    lat_keys = list(graph_lp.pair_latency)
    lat_vars = [graph_lp.pair_latency[key].index for key in lat_keys]
    lat_rows = np.array([key[0] for key in lat_keys], dtype=np.intp)
    lat_cols = np.array([key[1] for key in lat_keys], dtype=np.intp)
    gap_keys = list(graph_lp.pair_gap)
    gap_vars = [graph_lp.pair_gap[key].index for key in gap_keys]
    gap_rows = np.array([key[0] for key in gap_keys], dtype=np.intp)
    gap_cols = np.array([key[1] for key in gap_keys], dtype=np.intp)

    # the architecture is immutable for the whole search: build the node
    # matrices once and gather per candidate instead of rebuilding them
    # inside every solve (validity is checked once — candidates are
    # permutations of the validated initial mapping)
    arch._check_mapping(mapping)
    node_lat = arch.node_latency_matrix()
    node_gap = arch.node_gap_matrix() if gap_keys else None

    def solve_mapping(candidate: Sequence[int]):
        ranks = np.asarray(candidate, dtype=np.intp)
        lat = node_lat[np.ix_(ranks, ranks)]
        np.fill_diagonal(lat, 0.0)
        engine.set_lower_bounds(lat_vars, lat[lat_rows, lat_cols])
        if gap_keys:
            gap = node_gap[np.ix_(ranks, ranks)]
            np.fill_diagonal(gap, 0.0)
            engine.set_lower_bounds(gap_vars, gap[gap_rows, gap_cols])
        return engine.solve()

    solution = solve_mapping(mapping)
    best_runtime = solution.objective
    initial_runtime = best_runtime
    history = [best_runtime]
    swaps: list[tuple[int, int]] = []

    iterations = 0
    while iterations < max_iterations:
        iterations += 1
        sensitivity_L = graph_lp.pair_latency_sensitivities(solution)
        sensitivity_G = (
            graph_lp.pair_gap_sensitivities(solution) if graph_lp.pair_gap else None
        )
        gains = swap_gain_matrix(sensitivity_L, sensitivity_G, mapping, arch)

        improved = False
        for i, j in _rank_candidates(gains, top_k):
            candidate = list(mapping)
            candidate[i], candidate[j] = candidate[j], candidate[i]
            candidate_solution = solve_mapping(candidate)
            if candidate_solution.objective < best_runtime - _GAIN_EPS:
                mapping = candidate
                best_runtime = candidate_solution.objective
                solution = candidate_solution
                swaps.append((i, j))
                history.append(best_runtime)
                improved = True
                break
        if not improved:
            # the LP verdict overrides the heuristic gains: stop refining
            break

    return PlacementResult(
        mapping=mapping,
        predicted_runtime=best_runtime,
        initial_runtime=initial_runtime,
        iterations=iterations,
        swaps=swaps,
        history=history,
        num_lp_solves=engine.num_solves,
        num_reassemblies=engine.structure_rebuilds,
    )
