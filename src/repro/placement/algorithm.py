"""LLAMP's sensitivity-guided rank placement (Algorithm 3, Appendix J).

The algorithm iteratively refines a process mapping ``π`` (rank → node):

1. build the heterogeneous (per-pair) LP of the execution graph and assign
   the lower bounds of every ``l_{i,j}`` / ``G_{i,j}`` variable from the
   architecture graph and the current mapping;
2. solve it — the objective value is the predicted runtime under ``π`` and
   the reduced costs of the pairwise variables form the latency/bandwidth
   sensitivity matrices ``D_L`` and ``D_G`` (how many critical-path messages
   and bytes each pair carries);
3. evaluate the *gain* of swapping every pair of ranks — moving
   heavily-communicating, high-sensitivity pairs closer together — and apply
   the best swap;
4. stop when no positive-gain swap exists or the predicted runtime stops
   improving.

Because the objective value *is* the predicted runtime, the algorithm can
verify each swap exactly instead of trusting the heuristic gain — precisely
the property the paper highlights.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..core.lp_builder import build_lp
from ..network.hloggp import ArchitectureGraph, block_mapping
from ..network.params import LogGPSParams
from ..schedgen.graph import ExecutionGraph

__all__ = ["PlacementResult", "llamp_placement", "predicted_runtime"]


@dataclass
class PlacementResult:
    """Outcome of the placement search."""

    mapping: list[int]
    predicted_runtime: float
    initial_runtime: float
    iterations: int
    swaps: list[tuple[int, int]] = field(default_factory=list)
    history: list[float] = field(default_factory=list)

    @property
    def improvement(self) -> float:
        """Relative runtime improvement over the initial mapping."""
        if self.initial_runtime <= 0:
            return 0.0
        return 1.0 - self.predicted_runtime / self.initial_runtime


def _solve_for_mapping(graph_lp, arch: ArchitectureGraph, mapping: Sequence[int],
                       backend: str):
    graph_lp.set_pair_latency_bounds(arch.latency_matrix(mapping))
    if graph_lp.pair_gap:
        graph_lp.set_pair_gap_bounds(arch.gap_matrix(mapping))
    return graph_lp.model.solve(backend=backend)


def predicted_runtime(
    graph: ExecutionGraph,
    params: LogGPSParams,
    arch: ArchitectureGraph,
    mapping: Sequence[int],
    *,
    backend: str = "highs",
    include_gap: bool = True,
) -> float:
    """Predicted runtime of ``graph`` under a given process mapping."""
    graph_lp = build_lp(
        graph,
        params,
        latency_mode="per_pair",
        gap_mode="per_pair" if include_gap else "constant",
    )
    solution = _solve_for_mapping(graph_lp, arch, mapping, backend)
    return solution.objective


def _swap_gain(
    i: int,
    j: int,
    sensitivity_L: np.ndarray,
    sensitivity_G: np.ndarray | None,
    volume: np.ndarray,
    mapping: Sequence[int],
    arch: ArchitectureGraph,
) -> float:
    """Heuristic gain (µs) of swapping ranks ``i`` and ``j``.

    The gain sums, over every partner ``k``, the change in latency cost
    ``λ_L^{·,k} · ΔL`` (and bandwidth cost when available) caused by moving
    each of the two ranks to the other's node.
    """
    node_i, node_j = mapping[i], mapping[j]
    if node_i == node_j:
        return 0.0
    gain = 0.0
    nranks = len(mapping)
    for k in range(nranks):
        if k == i or k == j:
            continue
        node_k = mapping[k]
        # rank i moves from node_i to node_j
        gain += sensitivity_L[i, k] * (
            arch.node_latency(node_i, node_k) - arch.node_latency(node_j, node_k)
        )
        # rank j moves from node_j to node_i
        gain += sensitivity_L[j, k] * (
            arch.node_latency(node_j, node_k) - arch.node_latency(node_i, node_k)
        )
        if sensitivity_G is not None:
            gain += sensitivity_G[i, k] * (
                arch.node_gap(node_i, node_k) - arch.node_gap(node_j, node_k)
            )
            gain += sensitivity_G[j, k] * (
                arch.node_gap(node_j, node_k) - arch.node_gap(node_i, node_k)
            )
    return gain


def llamp_placement(
    graph: ExecutionGraph,
    params: LogGPSParams,
    arch: ArchitectureGraph,
    *,
    initial_mapping: Sequence[int] | None = None,
    max_iterations: int = 20,
    backend: str = "highs",
    include_gap: bool = True,
) -> PlacementResult:
    """Run Algorithm 3 and return the refined mapping.

    ``initial_mapping`` defaults to the block mapping (the paper's baseline).
    """
    nranks = graph.nranks
    mapping = list(initial_mapping) if initial_mapping is not None else block_mapping(nranks, arch)
    if len(mapping) != nranks:
        raise ValueError(f"mapping has {len(mapping)} entries for {nranks} ranks")

    from .baselines import communication_volume_matrix

    volume = communication_volume_matrix(graph)
    graph_lp = build_lp(
        graph,
        params,
        latency_mode="per_pair",
        gap_mode="per_pair" if include_gap else "constant",
    )

    solution = _solve_for_mapping(graph_lp, arch, mapping, backend)
    best_runtime = solution.objective
    initial_runtime = best_runtime
    history = [best_runtime]
    swaps: list[tuple[int, int]] = []

    iterations = 0
    while iterations < max_iterations:
        iterations += 1
        sensitivity_L = graph_lp.pair_latency_sensitivities(solution)
        sensitivity_G = (
            graph_lp.pair_gap_sensitivities(solution) if graph_lp.pair_gap else None
        )

        best_pair: tuple[int, int] | None = None
        best_gain = 0.0
        for i in range(nranks):
            for j in range(i + 1, nranks):
                gain = _swap_gain(i, j, sensitivity_L, sensitivity_G, volume, mapping, arch)
                if gain > best_gain + 1e-9:
                    best_gain = gain
                    best_pair = (i, j)
        if best_pair is None:
            break

        i, j = best_pair
        candidate = list(mapping)
        candidate[i], candidate[j] = candidate[j], candidate[i]
        candidate_solution = _solve_for_mapping(graph_lp, arch, candidate, backend)
        if candidate_solution.objective < best_runtime - 1e-9:
            mapping = candidate
            best_runtime = candidate_solution.objective
            solution = candidate_solution
            swaps.append(best_pair)
            history.append(best_runtime)
        else:
            # the LP verdict overrides the heuristic gain: stop refining
            break

    return PlacementResult(
        mapping=mapping,
        predicted_runtime=best_runtime,
        initial_runtime=initial_runtime,
        iterations=iterations,
        swaps=swaps,
        history=history,
    )
