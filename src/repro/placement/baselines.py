"""Baseline process mappings for the rank-placement study (Fig. 20).

The paper compares its sensitivity-guided placement against MPI's default
*block* mapping and against Scotch, which partitions the communication
*volume* graph (bytes exchanged between rank pairs) without regard to
temporal behaviour.  ``volume_greedy_placement`` reproduces that
volume-only strategy with a greedy clustering heuristic: repeatedly pick the
heaviest-communicating unplaced rank and co-locate it with the node that
already hosts its strongest partners.
"""

from __future__ import annotations

import numpy as np

from ..network.hloggp import ArchitectureGraph
from ..schedgen.graph import EdgeKind, ExecutionGraph

__all__ = ["communication_volume_matrix", "volume_greedy_placement"]


def communication_volume_matrix(graph: ExecutionGraph) -> np.ndarray:
    """Bytes exchanged between every pair of ranks (symmetric matrix).

    This is exactly the profile that volume-based mappers such as Scotch or
    MPIPP consume.
    """
    nranks = graph.nranks
    volume = np.zeros((nranks, nranks), dtype=np.float64)
    comm_edges = graph.message_edges()
    for eid in comm_edges:
        src = int(graph.rank[graph.edge_src[eid]])
        dst = int(graph.rank[graph.edge_dst[eid]])
        size = float(graph.size[graph.edge_dst[eid]])
        volume[src, dst] += size
        volume[dst, src] += size
    return volume


def volume_greedy_placement(graph: ExecutionGraph, arch: ArchitectureGraph) -> list[int]:
    """Scotch-like placement: cluster ranks by pairwise traffic volume.

    Greedy heuristic: process ranks in order of decreasing total traffic; for
    each rank choose the node (with free slots) that maximises the volume
    exchanged with ranks already placed there.
    """
    nranks = graph.nranks
    if nranks > arch.capacity:
        raise ValueError(f"{nranks} ranks exceed the machine capacity {arch.capacity}")
    volume = communication_volume_matrix(graph)
    order = list(np.argsort(-volume.sum(axis=1), kind="stable"))

    mapping = [-1] * nranks
    free_slots = [arch.processes_per_node] * arch.num_nodes
    node_members: list[list[int]] = [[] for _ in range(arch.num_nodes)]

    for rank in order:
        rank = int(rank)
        best_node, best_score = -1, -1.0
        for node in range(arch.num_nodes):
            if free_slots[node] == 0:
                continue
            score = float(sum(volume[rank, member] for member in node_members[node]))
            if score > best_score + 1e-12 or best_node < 0:
                best_node, best_score = node, score
        mapping[rank] = best_node
        free_slots[best_node] -= 1
        node_members[best_node].append(rank)
    return mapping
