"""Netgauge-style measurement of LogGPS parameters.

The paper measures ``L``, ``o``, ``G`` and ``S`` with Netgauge on the target
cluster and feeds the values into LLAMP.  Since this reproduction has no
physical network, the "cluster" is the LogGOPS simulator itself: this module
runs the classic ping-pong / flood micro-benchmarks against a two-rank
simulated system and fits the LogGP parameters back out of the measured
round-trip times.  Besides closing the measure-then-model loop of Fig. 2, it
provides an end-to-end consistency check — the fitted parameters must agree
with the parameters the simulator was configured with (tested in
``tests/test_netgauge.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..mpi.api import VirtualComm, run_program
from ..schedgen.builder import ProtocolConfig, build_graph
from ..simulator.loggops import simulate
from .params import LogGPSParams

__all__ = ["MeasuredParams", "pingpong_times", "fit_loggp", "measure"]


@dataclass(frozen=True)
class MeasuredParams:
    """Result of a parameter-fitting run."""

    L: float
    o: float
    G: float
    samples: int

    def as_params(self, template: LogGPSParams) -> LogGPSParams:
        """Fold the fitted values into an existing configuration."""
        return template.replace(L=self.L, o=self.o, G=self.G)


def _pingpong_program(size: int, repetitions: int):
    def rank_fn(comm: VirtualComm) -> None:
        for rep in range(repetitions):
            if comm.rank == 0:
                comm.send(1, size, tag=rep)
                comm.recv(1, size, tag=repetitions + rep)
            else:
                comm.recv(0, size, tag=rep)
                comm.send(0, size, tag=repetitions + rep)

    return rank_fn


def pingpong_times(
    params: LogGPSParams, sizes: Sequence[int], *, repetitions: int = 10
) -> np.ndarray:
    """Average one-way time (µs) of a ping-pong for each message size.

    The experiment is executed on the LogGOPS simulator; on a real system the
    same loop would run over MPI (this is exactly what Netgauge's ``logp``
    module measures).
    """
    results = np.zeros(len(sizes), dtype=np.float64)
    protocol = ProtocolConfig.from_params(params, expand_rendezvous=False)
    for i, size in enumerate(sizes):
        if size < 1:
            raise ValueError(f"message size must be >= 1, got {size}")
        program = run_program(_pingpong_program(int(size), repetitions), 2)
        graph = build_graph(program, protocol=protocol)
        result = simulate(graph, params)
        results[i] = result.makespan / (2.0 * repetitions)
    return results


def fit_loggp(sizes: Sequence[int], one_way_times: Sequence[float]) -> MeasuredParams:
    """Fit ``L``, ``o`` and ``G`` from one-way times of eager messages.

    Under LogGP a one-way eager transfer of ``s`` bytes between two idle
    processes costs ``2o + L + (s - 1) G``: a linear model in ``s``.  The
    slope of an ordinary least-squares fit gives ``G``; the intercept gives
    ``2o + L - G``.  Separating ``o`` from ``L`` requires an independent
    overhead measurement (Netgauge uses a CPU-bound loop); we follow its
    convention of attributing the intercept to ``L`` once the caller's known
    ``o`` is subtracted — :func:`measure` handles that bookkeeping.
    """
    sizes_arr = np.asarray(sizes, dtype=np.float64)
    times = np.asarray(one_way_times, dtype=np.float64)
    if sizes_arr.shape != times.shape or sizes_arr.size < 2:
        raise ValueError("need at least two (size, time) samples of equal length")
    slope, intercept = np.polyfit(sizes_arr - 1.0, times, deg=1)
    G = max(float(slope), 0.0)
    return MeasuredParams(L=float(intercept), o=0.0, G=G, samples=int(sizes_arr.size))


def measure(
    params: LogGPSParams,
    *,
    sizes: Sequence[int] = (1, 512, 1024, 4096, 16384, 65536),
    repetitions: int = 10,
) -> MeasuredParams:
    """Run the ping-pong sweep on the simulator and return fitted parameters.

    The known per-message overhead of the simulated MPI stack (``params.o``)
    is subtracted from the fitted intercept, mirroring how Netgauge separates
    host overhead from wire latency.
    """
    times = pingpong_times(params, sizes, repetitions=repetitions)
    raw = fit_loggp(sizes, times)
    L = max(raw.L - 2.0 * params.o, 0.0)
    return MeasuredParams(L=L, o=params.o, G=raw.G, samples=raw.samples)
