"""Network topologies: fat tree and dragonfly hop-count models.

Section IV-2 of the paper analyses how the network topology influences
ICON's wire-latency tolerance by replacing the end-to-end latency of every
message with ``(h + 1) · l_wire + h · d_switch``, where ``h`` is the number
of switch hops between the two endpoints.  This module provides the two
topologies the paper compares — a three-tier fat tree with radix ``k`` and a
Dragonfly ``(g, a, p)`` — exposing

* the node capacity,
* the hop count between any two nodes (assuming minimal routing and densely
  packed node placement, exactly as in the paper), and
* the per-pair latency matrix obtained from the wire/switch latency model,

which plugs directly into the per-pair (HLogGP) LP mode of
:func:`repro.core.lp_builder.build_lp` or into the simpler "effective global
latency" analysis used by the Fig. 11 benchmark.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Protocol

import numpy as np

from ..units import NS

__all__ = [
    "Topology",
    "FatTree",
    "Dragonfly",
    "WireLatencyModel",
    "DEFAULT_WIRE_LATENCY",
    "DEFAULT_SWITCH_LATENCY",
]

#: defaults from Zambre et al. as used in Section IV-2: 274 ns per wire,
#: 108 ns per switch traversal
DEFAULT_WIRE_LATENCY = 274 * NS
DEFAULT_SWITCH_LATENCY = 108 * NS


class Topology(Protocol):
    """Minimal interface every topology implements."""

    @property
    def num_nodes(self) -> int:
        """Number of compute endpoints the topology can host."""

    def hops(self, a: int, b: int) -> int:
        """Number of switches traversed between nodes ``a`` and ``b``."""


@dataclass(frozen=True)
class WireLatencyModel:
    """End-to-end latency from hop counts: ``(h + 1) · l_wire + h · d_switch``."""

    wire_latency: float = DEFAULT_WIRE_LATENCY
    switch_latency: float = DEFAULT_SWITCH_LATENCY

    def latency(self, hops: int) -> float:
        if hops < 0:
            raise ValueError(f"hop count must be non-negative, got {hops}")
        return (hops + 1) * self.wire_latency + hops * self.switch_latency

    def pair_latency_matrix(self, topology: Topology, nodes: int | None = None) -> np.ndarray:
        """Dense matrix of end-to-end latencies between the first ``nodes`` nodes."""
        n = topology.num_nodes if nodes is None else nodes
        if n > topology.num_nodes:
            raise ValueError(
                f"requested {n} nodes but the topology only hosts {topology.num_nodes}"
            )
        matrix = np.zeros((n, n), dtype=np.float64)
        for a in range(n):
            for b in range(a + 1, n):
                value = self.latency(topology.hops(a, b))
                matrix[a, b] = value
                matrix[b, a] = value
        return matrix

    def average_latency(self, topology: Topology, nodes: int | None = None) -> float:
        """Mean end-to-end latency over all distinct node pairs."""
        n = topology.num_nodes if nodes is None else nodes
        matrix = self.pair_latency_matrix(topology, n)
        if n < 2:
            return self.latency(0)
        upper = matrix[np.triu_indices(n, k=1)]
        return float(upper.mean())

    def with_wire_latency(self, wire_latency: float) -> "WireLatencyModel":
        return WireLatencyModel(wire_latency=wire_latency, switch_latency=self.switch_latency)


@dataclass(frozen=True)
class FatTree:
    """Three-tier fat tree with switch radix ``k`` (Al-Fares et al.).

    Nodes are packed densely: ``k/2`` nodes per edge switch, ``k/2`` edge
    switches per pod, ``k`` pods — ``k³/4`` nodes in total.  Minimal routing
    crosses 1 switch within an edge switch, 3 within a pod and 5 across pods.
    """

    k: int = 16
    tiers: int = 3

    def __post_init__(self) -> None:
        if self.k < 2 or self.k % 2:
            raise ValueError(f"fat tree radix must be an even integer >= 2, got {self.k}")
        if self.tiers != 3:
            raise ValueError("only three-tier fat trees are supported")

    @property
    def nodes_per_edge_switch(self) -> int:
        return self.k // 2

    @property
    def nodes_per_pod(self) -> int:
        return (self.k // 2) ** 2

    @property
    def num_pods(self) -> int:
        return self.k

    @property
    def num_nodes(self) -> int:
        return self.k**3 // 4

    def hops(self, a: int, b: int) -> int:
        self._check(a)
        self._check(b)
        if a == b:
            return 0
        if a // self.nodes_per_edge_switch == b // self.nodes_per_edge_switch:
            return 1  # same edge switch
        if a // self.nodes_per_pod == b // self.nodes_per_pod:
            return 3  # same pod: edge -> aggregation -> edge
        return 5  # across pods: edge -> aggregation -> core -> aggregation -> edge

    def _check(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"node {node} out of range [0, {self.num_nodes})")


@dataclass(frozen=True)
class Dragonfly:
    """Dragonfly topology with ``g`` groups, ``a`` switches per group and
    ``p`` nodes per switch (Kim et al.).

    Minimal routing: 1 switch within a switch, 2 within a group (local link),
    and at most ``l + 1 + l'`` switches across groups; with densely packed
    nodes and the paper's assumption of minimal routing we use 1 / 2 / 3 hops
    for same-switch / same-group / cross-group traffic respectively
    (local – global – local).
    """

    g: int = 8
    a: int = 4
    p: int = 8

    def __post_init__(self) -> None:
        if self.g < 1 or self.a < 1 or self.p < 1:
            raise ValueError("g, a and p must all be >= 1")

    @property
    def nodes_per_switch(self) -> int:
        return self.p

    @property
    def nodes_per_group(self) -> int:
        return self.a * self.p

    @property
    def num_groups(self) -> int:
        return self.g

    @property
    def num_nodes(self) -> int:
        return self.g * self.a * self.p

    def hops(self, a: int, b: int) -> int:
        self._check(a)
        self._check(b)
        if a == b:
            return 0
        if a // self.nodes_per_switch == b // self.nodes_per_switch:
            return 1  # same switch
        if a // self.nodes_per_group == b // self.nodes_per_group:
            return 2  # same group, one local link
        return 3  # source switch -> global link -> destination switch

    def _check(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"node {node} out of range [0, {self.num_nodes})")
