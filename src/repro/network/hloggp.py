"""Heterogeneous LogGP (HLogGP) support — Appendix I of the paper.

The homogeneous LogGPS model assumes a single latency/bandwidth between any
two processes.  For process-mapping questions that is too coarse:
intra-node communication is much cheaper than inter-node communication, and
different node pairs may be different distances apart in the network.  The
paper redefines ``L`` and ``G`` as symmetric ``P × P`` matrices (a simplified
HLogGP model) and reads pairwise sensitivities ``λ_L^{i,j}`` off the reduced
costs of the per-pair decision variables.

This module provides :class:`ArchitectureGraph` — the ``Φ`` of Equation 7: a
description of the machine (which node hosts how many processes, what the
intra-node and topology-dependent inter-node latencies are) — and helpers to
derive the per-pair lower-bound matrices for a given process mapping ``π``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..units import NS, US
from .params import LogGPSParams
from .topology import Topology, WireLatencyModel

__all__ = ["ArchitectureGraph", "block_mapping", "round_robin_mapping", "random_mapping"]


@dataclass
class ArchitectureGraph:
    """The architecture topology graph ``Φ``: nodes, their latencies, and capacity.

    Attributes
    ----------
    num_nodes:
        Number of compute nodes.
    processes_per_node:
        How many MPI ranks each node hosts.
    intra_node_latency:
        Latency between two ranks on the same node (shared memory), µs.
    inter_node_latency:
        Either a scalar (uniform network) or a ``num_nodes × num_nodes``
        matrix of per-node-pair latencies (e.g. produced by
        :meth:`repro.network.topology.WireLatencyModel.pair_latency_matrix`).
    intra_node_gap / inter_node_gap:
        Per-byte gaps for the two cases.
    """

    num_nodes: int
    processes_per_node: int = 1
    intra_node_latency: float = 0.3 * US
    inter_node_latency: float | np.ndarray = 3.0 * US
    intra_node_gap: float = 0.0005 * NS
    inter_node_gap: float = 0.018 * NS

    def __post_init__(self) -> None:
        if self.num_nodes < 1 or self.processes_per_node < 1:
            raise ValueError("num_nodes and processes_per_node must be >= 1")
        if isinstance(self.inter_node_latency, np.ndarray):
            expected = (self.num_nodes, self.num_nodes)
            if self.inter_node_latency.shape != expected:
                raise ValueError(
                    f"inter_node_latency matrix must have shape {expected}, "
                    f"got {self.inter_node_latency.shape}"
                )
            # per-pair LP variables model unordered rank pairs, so a direction-
            # dependent latency is meaningless (and the vectorised swap gains
            # rely on symmetry)
            if not np.allclose(self.inter_node_latency, self.inter_node_latency.T):
                raise ValueError("inter_node_latency matrix must be symmetric")

    @classmethod
    def from_topology(
        cls,
        topology: Topology,
        num_nodes: int,
        *,
        processes_per_node: int = 1,
        wire_model: WireLatencyModel | None = None,
        intra_node_latency: float = 0.3 * US,
        intra_node_gap: float = 0.0005 * NS,
        inter_node_gap: float = 0.018 * NS,
    ) -> "ArchitectureGraph":
        """Build the architecture graph from a network topology."""
        model = wire_model or WireLatencyModel()
        matrix = model.pair_latency_matrix(topology, num_nodes)
        return cls(
            num_nodes=num_nodes,
            processes_per_node=processes_per_node,
            intra_node_latency=intra_node_latency,
            inter_node_latency=matrix,
            intra_node_gap=intra_node_gap,
            inter_node_gap=inter_node_gap,
        )

    # -- capacity ----------------------------------------------------------------

    @property
    def capacity(self) -> int:
        """Total number of ranks the machine can host."""
        return self.num_nodes * self.processes_per_node

    def node_latency(self, node_a: int, node_b: int) -> float:
        """Latency between two *nodes* (intra-node when they are equal)."""
        if node_a == node_b:
            return self.intra_node_latency
        if isinstance(self.inter_node_latency, np.ndarray):
            return float(self.inter_node_latency[node_a, node_b])
        return float(self.inter_node_latency)

    def node_gap(self, node_a: int, node_b: int) -> float:
        """Per-byte gap between two nodes."""
        return self.intra_node_gap if node_a == node_b else self.inter_node_gap

    # -- node matrices ----------------------------------------------------------

    def node_latency_matrix(self) -> np.ndarray:
        """``N × N`` node-to-node latency matrix (intra-node on the diagonal)."""
        if isinstance(self.inter_node_latency, np.ndarray):
            matrix = np.array(self.inter_node_latency, dtype=np.float64)
        else:
            matrix = np.full(
                (self.num_nodes, self.num_nodes), float(self.inter_node_latency)
            )
        np.fill_diagonal(matrix, self.intra_node_latency)
        return matrix

    def node_gap_matrix(self) -> np.ndarray:
        """``N × N`` node-to-node per-byte gap matrix (intra-node on the diagonal)."""
        matrix = np.full((self.num_nodes, self.num_nodes), float(self.inter_node_gap))
        np.fill_diagonal(matrix, self.intra_node_gap)
        return matrix

    # -- per-rank matrices ----------------------------------------------------------

    def latency_matrix(self, mapping: Sequence[int]) -> np.ndarray:
        """``P × P`` latency matrix for a process mapping ``π`` (rank → node)."""
        ranks = np.asarray(self._check_mapping(mapping), dtype=np.intp)
        matrix = self.node_latency_matrix()[np.ix_(ranks, ranks)]
        np.fill_diagonal(matrix, 0.0)
        return matrix

    def gap_matrix(self, mapping: Sequence[int]) -> np.ndarray:
        """``P × P`` per-byte gap matrix for a process mapping."""
        ranks = np.asarray(self._check_mapping(mapping), dtype=np.intp)
        matrix = self.node_gap_matrix()[np.ix_(ranks, ranks)]
        np.fill_diagonal(matrix, 0.0)
        return matrix

    def _check_mapping(self, mapping: Sequence[int]) -> list[int]:
        mapping = [int(node) for node in mapping]
        counts = np.bincount(mapping, minlength=self.num_nodes)
        if len(counts) > self.num_nodes:
            raise ValueError("mapping references a node outside the architecture")
        if np.any(counts > self.processes_per_node):
            overloaded = int(np.argmax(counts))
            raise ValueError(
                f"node {overloaded} hosts {counts[overloaded]} ranks but only "
                f"{self.processes_per_node} slots are available"
            )
        return mapping


def block_mapping(nranks: int, arch: ArchitectureGraph) -> list[int]:
    """The MPI default: consecutive ranks fill one node before the next."""
    if nranks > arch.capacity:
        raise ValueError(f"{nranks} ranks exceed the machine capacity {arch.capacity}")
    return [rank // arch.processes_per_node for rank in range(nranks)]


def round_robin_mapping(nranks: int, arch: ArchitectureGraph) -> list[int]:
    """Cyclic placement: rank ``r`` goes to node ``r mod num_nodes``."""
    if nranks > arch.capacity:
        raise ValueError(f"{nranks} ranks exceed the machine capacity {arch.capacity}")
    return [rank % arch.num_nodes for rank in range(nranks)]


def random_mapping(nranks: int, arch: ArchitectureGraph, *, seed: int = 0) -> list[int]:
    """A random (capacity-respecting) placement, useful as a baseline."""
    if nranks > arch.capacity:
        raise ValueError(f"{nranks} ranks exceed the machine capacity {arch.capacity}")
    slots = [node for node in range(arch.num_nodes) for _ in range(arch.processes_per_node)]
    rng = np.random.default_rng(seed)
    rng.shuffle(slots)
    return [int(slots[rank]) for rank in range(nranks)]
