"""LogGPS network parameter sets.

The LogGPS model (Ino et al., PPoPP'01) extends LogGP with an explicit
synchronisation threshold ``S``: messages larger than ``S`` bytes use the
rendezvous protocol, smaller ones are sent eagerly.  The parameters are:

========  =============================================================
``L``     maximum network latency between two processes [µs]
``o``     CPU overhead per message (send or receive side) [µs]
``g``     gap between two consecutive messages on the same NIC [µs]
``G``     gap per byte (inverse bandwidth) [µs/byte]
``O``     CPU overhead per byte [µs/byte] (commonly negligible; LogGPS
          drops it, and so does LLAMP)
``S``     rendezvous / eager protocol threshold [bytes]
``P``     number of processes
========  =============================================================

Two presets mirror the clusters used in the paper: the 188-node CSCS
validation test bed (Section III-B) and Piz Daint (Section IV).
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass, field, replace
from typing import Iterator, Mapping

from ..units import KIB, NS, US

__all__ = [
    "LogGPSParams",
    "CSCS_TESTBED",
    "PIZ_DAINT",
    "DEFAULT_PARAMS",
]


@dataclass(frozen=True)
class LogGPSParams:
    """A single, homogeneous LogGPS parameter configuration ``θ``.

    All times are in microseconds; ``G`` and ``O`` are in microseconds per
    byte; ``S`` is in bytes.
    """

    L: float = 3.0 * US
    o: float = 5.0 * US
    g: float = 0.0 * US
    G: float = 0.018 * NS
    O: float = 0.0
    S: int = 256 * KIB
    P: int = 2

    def __post_init__(self) -> None:
        if self.L < 0:
            raise ValueError(f"L must be non-negative, got {self.L}")
        if self.o < 0:
            raise ValueError(f"o must be non-negative, got {self.o}")
        if self.g < 0:
            raise ValueError(f"g must be non-negative, got {self.g}")
        if self.G < 0:
            raise ValueError(f"G must be non-negative, got {self.G}")
        if self.O < 0:
            raise ValueError(f"O must be non-negative, got {self.O}")
        if self.S < 0:
            raise ValueError(f"S must be non-negative, got {self.S}")
        if self.P < 1:
            raise ValueError(f"P must be at least 1, got {self.P}")

    # -- derived quantities -------------------------------------------------

    def transmission_cost(self, size: int) -> float:
        """Wire time for a message of ``size`` bytes: ``L + (s - 1) * G``."""
        if size < 0:
            raise ValueError(f"message size must be non-negative, got {size}")
        return self.L + max(size - 1, 0) * self.G

    def bandwidth_cost(self, size: int) -> float:
        """Serialisation term only: ``(s - 1) * G``."""
        if size < 0:
            raise ValueError(f"message size must be non-negative, got {size}")
        return max(size - 1, 0) * self.G

    def uses_rendezvous(self, size: int) -> bool:
        """Return ``True`` if a message of ``size`` bytes uses rendezvous."""
        return size > self.S

    def eager_p2p_time(self, size: int) -> float:
        """End-to-end time of one eager point-to-point message.

        Sender overhead + wire + receiver overhead, assuming both sides are
        ready (the textbook LogGP ping time ``2o + L + (s-1)G``).
        """
        return 2.0 * self.o + self.transmission_cost(size)

    # -- convenience --------------------------------------------------------

    def with_latency(self, L: float) -> "LogGPSParams":
        """Return a copy with a different network latency ``L``."""
        return replace(self, L=L)

    def with_delta_latency(self, delta_L: float) -> "LogGPSParams":
        """Return a copy with ``delta_L`` *added* to the base latency."""
        return replace(self, L=self.L + delta_L)

    def with_processes(self, P: int) -> "LogGPSParams":
        """Return a copy for a different process count."""
        return replace(self, P=P)

    def with_overhead(self, o: float) -> "LogGPSParams":
        """Return a copy with a different per-message CPU overhead ``o``."""
        return replace(self, o=o)

    def replace(self, **kwargs: float) -> "LogGPSParams":
        """Generic :func:`dataclasses.replace` wrapper."""
        return replace(self, **kwargs)

    def content_digest(self) -> str:
        """A stable sha256 hex digest of the parameter configuration.

        The digest covers every field as packed little-endian binary
        (float64 for ``L``/``o``/``g``/``G``/``O``, int64 for ``S``/``P``)
        behind a versioned domain prefix, so equal configurations hash
        identically across processes and sessions.  Used as one half of the
        :mod:`repro.artifacts` cache keys.
        """
        payload = struct.pack(
            "<5dqq", self.L, self.o, self.g, self.G, self.O, int(self.S), int(self.P)
        )
        return hashlib.sha256(b"repro:loggps-params:v1\0" + payload).hexdigest()

    def as_dict(self) -> Mapping[str, float]:
        """Return the configuration as a plain dictionary."""
        return {
            "L": self.L,
            "o": self.o,
            "g": self.g,
            "G": self.G,
            "O": self.O,
            "S": self.S,
            "P": self.P,
        }

    def __iter__(self) -> Iterator[tuple[str, float]]:
        return iter(self.as_dict().items())


#: Parameters measured with Netgauge on the 188-node CSCS validation test bed
#: (Section III-B): L = 3.0 µs, G = 0.018 ns/B, S = 256 KiB.  ``o`` varies per
#: application in the paper (Table II); 5 µs is the LULESH/HPCG value.
CSCS_TESTBED = LogGPSParams(L=3.0 * US, o=5.0 * US, g=0.0, G=0.018 * NS, S=256 * KIB)

#: Parameters measured on Piz Daint for the ICON case study (Section IV):
#: L = 1.4 µs, G = 0.013 ns/B, S = 256 KiB, o between 6.03 and 8.5 µs.
PIZ_DAINT = LogGPSParams(L=1.4 * US, o=8.5 * US, g=0.0, G=0.013 * NS, S=256 * KIB)

#: Default parameter set used when the caller does not specify one.
DEFAULT_PARAMS = CSCS_TESTBED
