"""Network models: LogGPS parameters, measurement, topologies, HLogGP."""

from .hloggp import ArchitectureGraph, block_mapping, random_mapping, round_robin_mapping
from .netgauge import MeasuredParams, fit_loggp, measure, pingpong_times
from .params import CSCS_TESTBED, DEFAULT_PARAMS, PIZ_DAINT, LogGPSParams
from .topology import (
    DEFAULT_SWITCH_LATENCY,
    DEFAULT_WIRE_LATENCY,
    Dragonfly,
    FatTree,
    WireLatencyModel,
)

__all__ = [
    "LogGPSParams",
    "CSCS_TESTBED",
    "PIZ_DAINT",
    "DEFAULT_PARAMS",
    "FatTree",
    "Dragonfly",
    "WireLatencyModel",
    "DEFAULT_WIRE_LATENCY",
    "DEFAULT_SWITCH_LATENCY",
    "ArchitectureGraph",
    "block_mapping",
    "round_robin_mapping",
    "random_mapping",
    "MeasuredParams",
    "measure",
    "fit_loggp",
    "pingpong_times",
]
