"""Validation metrics and experiment harnesses."""

from .metrics import max_relative_error, mean_absolute_percentage_error, rmse, rrmse
from .validation import ValidationSweep, run_validation_sweep

__all__ = [
    "rmse",
    "rrmse",
    "mean_absolute_percentage_error",
    "max_relative_error",
    "ValidationSweep",
    "run_validation_sweep",
]
