"""Validation harness: measured-vs-predicted runtime sweeps (Fig. 9 / Table II).

On the real cluster the paper injects latency with its delay-thread injector,
measures the application runtime, and compares against LLAMP's prediction.
In this reproduction the *measurement* is the LogGOPS discrete-event
simulator (optionally with noise and a non-ideal injector) and the
*prediction* is the LP pipeline — two independent code paths over the same
execution graph, so agreement is meaningful and the RRMSE statistics of the
paper can be recomputed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..core.analyzer import LatencyAnalyzer, ToleranceReport
from ..network.params import LogGPSParams
from ..schedgen.graph import ExecutionGraph
from ..simulator.injector import make_injector
from ..simulator.loggops import simulate
from ..simulator.noise import GaussianNoise, NoiseModel, NoNoise
from .metrics import rmse, rrmse

__all__ = ["ValidationSweep", "run_validation_sweep", "noise_seed"]

#: domain constant separating the validation sweep's noise streams from any
#: other SeedSequence user in the package
_NOISE_SEED_BASE = 7919


def noise_seed(rep: int, point: int) -> np.random.SeedSequence:
    """The noise seed of repetition ``rep`` at sweep point ``point``.

    A :class:`numpy.random.SeedSequence` keyed by the full ``(base, rep,
    point)`` tuple: every (repetition, point) pair gets a provably distinct,
    well-mixed stream.  The previous arithmetic scheme ``rep * 7919 +
    point`` collided as soon as a sweep had ≥ 7919 ΔL points (e.g. ``(rep=0,
    point=7919)`` vs ``(rep=1, point=0)``), silently reusing "independent"
    noise between repetitions.
    """
    return np.random.SeedSequence((_NOISE_SEED_BASE, int(rep), int(point)))


@dataclass
class ValidationSweep:
    """Result of a measured-vs-predicted ΔL sweep for one application/scale."""

    app: str
    nranks: int
    num_events: int
    delta_L: np.ndarray
    measured: np.ndarray
    predicted: np.ndarray
    latency_sensitivity: np.ndarray
    l_ratio: np.ndarray
    tolerance: ToleranceReport

    @property
    def rmse(self) -> float:
        """RMSE between measured and predicted runtimes (µs)."""
        return rmse(self.measured, self.predicted)

    @property
    def rrmse(self) -> float:
        """Relative RMSE (fraction; multiply by 100 for Table II percentages)."""
        return rrmse(self.measured, self.predicted)

    def rows(self) -> list[dict[str, float]]:
        """One dictionary per ΔL sample (used by the benchmark printers)."""
        return [
            {
                "delta_L_us": float(d),
                "measured_us": float(m),
                "predicted_us": float(p),
                "lambda_L": float(lam),
                "rho_L": float(rho),
            }
            for d, m, p, lam, rho in zip(
                self.delta_L, self.measured, self.predicted,
                self.latency_sensitivity, self.l_ratio,
            )
        ]

    def summary(self) -> dict[str, float]:
        return {
            "app": self.app,
            "nranks": self.nranks,
            "events": self.num_events,
            "rmse_s": self.rmse / 1e6,
            "rrmse_pct": self.rrmse * 100.0,
            "tol_1pct_us": self.tolerance.delta_tolerance(0.01),
            "tol_2pct_us": self.tolerance.delta_tolerance(0.02),
            "tol_5pct_us": self.tolerance.delta_tolerance(0.05),
        }


def run_validation_sweep(
    graph: ExecutionGraph,
    params: LogGPSParams,
    *,
    app: str = "",
    delta_Ls: Sequence[float] | None = None,
    injector: str = "delay_thread",
    noise: NoiseModel | None = None,
    noise_sigma: float = 0.002,
    repetitions: int = 1,
    backend: str = "highs",
    lp_engine: str = "auto",
    sim_engine: str = "auto",
) -> ValidationSweep:
    """Sweep ΔL, measuring with the simulator and predicting with the LP.

    ``repetitions`` simulated runs per ΔL are averaged (the paper averages
    10 real runs); by default a small Gaussian compute noise makes the
    measurement realistically non-deterministic.  ``lp_engine`` selects the
    LP construction engine (symbolic sweep vs the vectorised compiler) and
    ``sim_engine`` the simulation engine (the per-vertex legacy walk vs the
    level-synchronous vectorised engine; both are timestamp-identical).
    """
    deltas = np.asarray(
        sorted(set(float(d) for d in (delta_Ls if delta_Ls is not None else np.linspace(0, 100, 11)))),
        dtype=np.float64,
    )
    if np.any(deltas < 0):
        raise ValueError("delta_L values must be non-negative")

    analyzer = LatencyAnalyzer(graph, params, backend=backend, lp_engine=lp_engine)
    curve = analyzer.sensitivity_curve(deltas)
    tolerance = analyzer.tolerance_report()

    measured = np.zeros_like(deltas)
    for i, delta in enumerate(deltas):
        samples = []
        for rep in range(max(repetitions, 1)):
            run_noise: NoiseModel
            if noise is not None:
                run_noise = noise
            elif noise_sigma > 0:
                run_noise = GaussianNoise(sigma=noise_sigma, seed=noise_seed(rep, i))
            else:
                run_noise = NoNoise()
            result = simulate(
                graph,
                params,
                injector=make_injector(injector, float(delta)),
                noise=run_noise,
                sim_engine=sim_engine,
            )
            samples.append(result.makespan)
        measured[i] = float(np.mean(samples))

    return ValidationSweep(
        app=app,
        nranks=graph.nranks,
        num_events=graph.num_events,
        delta_L=deltas,
        measured=measured,
        predicted=curve.runtime,
        latency_sensitivity=curve.latency_sensitivity,
        l_ratio=curve.l_ratio,
        tolerance=tolerance,
    )
