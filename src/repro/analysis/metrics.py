"""Error metrics used in the paper's validation (RMSE / RRMSE).

The paper reports the root-mean-square error and the *relative* RMSE
(RRMSE, Despotovic et al.) between measured and predicted runtimes across a
ΔL sweep, with values consistently below 2 % (Section III-C, Table II).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["rmse", "rrmse", "mean_absolute_percentage_error", "max_relative_error"]


def _validate(measured: Sequence[float], predicted: Sequence[float]) -> tuple[np.ndarray, np.ndarray]:
    m = np.asarray(measured, dtype=np.float64)
    p = np.asarray(predicted, dtype=np.float64)
    if m.shape != p.shape:
        raise ValueError(f"shape mismatch: measured {m.shape} vs predicted {p.shape}")
    if m.size == 0:
        raise ValueError("need at least one sample")
    return m, p


def rmse(measured: Sequence[float], predicted: Sequence[float]) -> float:
    """Root-mean-square error, in the same unit as the inputs."""
    m, p = _validate(measured, predicted)
    return float(np.sqrt(np.mean((m - p) ** 2)))


def rrmse(measured: Sequence[float], predicted: Sequence[float]) -> float:
    """Relative RMSE: RMSE normalised by the mean measured value.

    Returned as a fraction (multiply by 100 for the percentages quoted in
    Fig. 9 / Table II).
    """
    m, p = _validate(measured, predicted)
    mean = float(np.mean(m))
    if mean == 0:
        raise ValueError("mean of the measured values is zero")
    return rmse(m, p) / abs(mean)


def mean_absolute_percentage_error(measured: Sequence[float], predicted: Sequence[float]) -> float:
    """MAPE as a fraction (useful as an alternative accuracy summary)."""
    m, p = _validate(measured, predicted)
    if np.any(m == 0):
        raise ValueError("measured values must be non-zero for MAPE")
    return float(np.mean(np.abs((m - p) / m)))


def max_relative_error(measured: Sequence[float], predicted: Sequence[float]) -> float:
    """Worst-case relative error over the sweep, as a fraction."""
    m, p = _validate(measured, predicted)
    if np.any(m == 0):
        raise ValueError("measured values must be non-zero")
    return float(np.max(np.abs((m - p) / m)))
