"""Critical latencies: where the critical path (and ``λ_L``) changes.

Section II-B defines the *critical latency* ``L_c`` as a value of the network
latency at which the critical path of the execution graph switches, i.e. a
breakpoint of the piecewise-linear convex function ``T(L)``.  Algorithm 2 of
the paper sweeps an interval ``[L_min, L_max]`` from above, repeatedly
solving the LP and jumping to the lower end of the current basis's
feasibility range (Gurobi's ``SALBLow``).

The open-source HiGHS backend does not expose ranging information, so the
breakpoints are recovered with the shared tangent-envelope search of
:class:`repro.lp.parametric.ParametricLP` — ``O(#breakpoints)`` LP solves on
one assembled model, the same complexity class as Algorithm 2 with exact
ranging and strictly better than a fixed ``step`` sweep.  A ``step``
argument is still accepted for compatibility with the paper's interface:
when given, breakpoints closer than ``step`` are coalesced.

With ``envelope_engine="forward"`` (or ``"auto"``, whenever the affinity
contract of ``src/repro/lp/README.md`` holds) the breakpoints come from the
single-traversal line propagation of :mod:`repro.core.envelope` instead —
the same exact curve with zero LP solves.

Both functions here are thin wrappers; the searches themselves live in
:mod:`repro.lp.parametric` / :mod:`repro.core.envelope` and are shared with
:class:`repro.core.parametric.BatchedSweep`.
"""

from __future__ import annotations

from ..lp.parametric import Tangent, TangentEnvelope
from ..network.params import LogGPSParams
from ..schedgen.graph import ExecutionGraph
from .lp_builder import GraphLP, build_lp

__all__ = ["Tangent", "find_critical_latencies", "critical_latency_curve"]


def _validate_interval(l_min: float, l_max: float) -> None:
    """Reject a bad sweep interval up front, before any LP or traversal.

    Pinned by tests: a reversed/empty/negative interval must fail here with
    this message, never part-way through a tangent search.
    """
    if l_min < 0 or l_max <= l_min:
        raise ValueError(
            f"invalid latency interval [{l_min}, {l_max}]: "
            "require 0 <= l_min < l_max"
        )


def _as_graph_lp(
    graph_lp: GraphLP | ExecutionGraph,
    params: LogGPSParams | None,
    engine: str,
) -> GraphLP:
    """Accept either a prebuilt :class:`GraphLP` or a raw execution graph.

    Passing an :class:`ExecutionGraph` (plus ``params``) builds the LP on the
    fly through the selected construction ``engine`` — the knob that picks
    between the symbolic per-vertex sweep and the vectorised compiler of
    :mod:`repro.lp.compiler`.
    """
    if isinstance(graph_lp, ExecutionGraph):
        if params is None:
            raise ValueError(
                "passing an ExecutionGraph requires the params= keyword"
            )
        return build_lp(graph_lp, params, latency_mode="global", engine=engine)
    return graph_lp


def _collect_breakpoints(breakpoints, step: float | None) -> list[float]:
    collected = sorted(set(round(bp, 12) for bp in breakpoints))
    if step is not None and step > 0 and collected:
        coalesced = [collected[0]]
        for bp in collected[1:]:
            if bp - coalesced[-1] >= step:
                coalesced.append(bp)
        collected = coalesced
    return collected


def _forward_piecewise(
    graph_lp: GraphLP | ExecutionGraph,
    params: LogGPSParams | None,
    engine: str,
    envelope_engine: str,
    l_min: float,
    l_max: float,
):
    """The envelope as a :class:`PiecewiseLinear` when the forward engine
    applies, else ``None`` (caller falls back to the tangent search).

    A raw :class:`ExecutionGraph` under ``"auto"``/``"forward"`` never
    builds an LP at all; a prebuilt :class:`GraphLP` goes through
    :func:`~repro.core.envelope.resolve_envelope_engine` so the affinity
    contract is honoured (and violations raise for ``"forward"``).
    """
    from .envelope import _check_engine_name, forward_envelope, resolve_envelope_engine

    _check_engine_name(envelope_engine)
    if envelope_engine == "lp":
        return None
    if isinstance(graph_lp, ExecutionGraph):
        if params is None:
            raise ValueError(
                "passing an ExecutionGraph requires the params= keyword"
            )
        return forward_envelope(graph_lp, params, l_min=l_min, l_max=l_max)
    if resolve_envelope_engine(envelope_engine, graph_lp) == "forward":
        return forward_envelope(
            graph_lp.graph, graph_lp.params, l_min=l_min, l_max=l_max
        )
    return None


def find_critical_latencies(
    graph_lp: GraphLP | ExecutionGraph,
    l_min: float,
    l_max: float,
    *,
    backend: str = "highs",
    step: float | None = None,
    max_solves: int = 10_000,
    params: LogGPSParams | None = None,
    engine: str = "auto",
    envelope_engine: str = "auto",
) -> list[float]:
    """All critical latencies of ``graph_lp`` inside ``[l_min, l_max]``.

    ``step``, when given, coalesces breakpoints closer than ``step`` (the
    resolution knob of the paper's Algorithm 2); ``max_solves`` bounds the
    number of LP solves.  ``graph_lp`` may also be a raw
    :class:`~repro.schedgen.graph.ExecutionGraph` together with ``params=``;
    the LP is then built through the selected construction ``engine``.
    ``envelope_engine`` picks how the envelope is recovered — the forward
    line propagation (no LP solves) or the LP tangent search; both return
    the identical breakpoints.
    """
    _validate_interval(l_min, l_max)
    piecewise = _forward_piecewise(
        graph_lp, params, engine, envelope_engine, l_min, l_max
    )
    if piecewise is not None:
        return _collect_breakpoints(piecewise.breakpoints(), step)
    graph_lp = _as_graph_lp(graph_lp, params, engine)
    result = graph_lp.tangent_envelope(l_min, l_max, backend=backend, max_solves=max_solves)
    return _collect_breakpoints(result.breakpoints, step)


def critical_latency_curve(
    graph_lp: GraphLP | ExecutionGraph,
    l_min: float,
    l_max: float,
    *,
    backend: str = "highs",
    max_solves: int = 10_000,
    params: LogGPSParams | None = None,
    engine: str = "auto",
    envelope_engine: str = "auto",
) -> list[Tangent]:
    """Tangents of ``T(L)`` on every linear segment of ``[l_min, l_max]``.

    Returns one :class:`Tangent` per segment (anchored at the segment
    mid-point), which is enough to reconstruct the exact ``T(L)`` curve and
    the step function ``λ_L(L)`` over the interval.  The segment tangents are
    served from the cache of the single envelope search — no additional LP
    solves at the segment mid-points.  Accepts a raw execution graph (plus
    ``params=`` / ``engine=``) like :func:`find_critical_latencies`, and the
    same ``envelope_engine`` knob.
    """
    _validate_interval(l_min, l_max)
    piecewise = _forward_piecewise(
        graph_lp, params, engine, envelope_engine, l_min, l_max
    )
    if piecewise is not None:
        points = _collect_breakpoints(piecewise.breakpoints(), None)
        boundaries = [l_min, *points, l_max]
        return [
            Tangent(
                L=0.5 * (lo + hi),
                value=piecewise.value(0.5 * (lo + hi)),
                slope=piecewise.slope(0.5 * (lo + hi)),
            )
            for lo, hi in zip(boundaries, boundaries[1:])
        ]
    graph_lp = _as_graph_lp(graph_lp, params, engine)
    result = graph_lp.tangent_envelope(l_min, l_max, backend=backend, max_solves=max_solves)
    points = _collect_breakpoints(result.breakpoints, None)
    boundaries = [l_min, *points, l_max]
    return [
        result.segment_tangent(0.5 * (lo + hi))
        for lo, hi in zip(boundaries, boundaries[1:])
    ]
