"""Critical latencies: where the critical path (and ``λ_L``) changes.

Section II-B defines the *critical latency* ``L_c`` as a value of the network
latency at which the critical path of the execution graph switches, i.e. a
breakpoint of the piecewise-linear convex function ``T(L)``.  Algorithm 2 of
the paper sweeps an interval ``[L_min, L_max]`` from above, repeatedly
solving the LP and jumping to the lower end of the current basis's
feasibility range (Gurobi's ``SALBLow``).

The open-source HiGHS backend does not expose ranging information, so this
module recovers the same set of breakpoints with tangent-line probing, which
relies only on the two facts Algorithm 2 also exploits — ``T(L)`` is convex
piecewise linear, and each LP solve yields the tangent (value ``T`` and slope
``λ_L``) at the probed point:

* solve at both interval ends to obtain two tangents;
* if the tangents coincide, there is no breakpoint in between;
* otherwise their intersection ``x`` either lies on the curve (then ``x`` is
  the unique breakpoint in the open interval) or strictly below it (then
  recurse on ``[lo, x]`` and ``[x, hi]``).

The number of LP solves is ``O(number of breakpoints)`` — the same complexity
class as Algorithm 2 with exact ranging, and strictly better than a fixed
``step`` sweep.  A ``step`` argument is still accepted for compatibility with
the paper's interface: when given, breakpoints closer than ``step`` are
coalesced.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from .lp_builder import GraphLP

__all__ = ["Tangent", "find_critical_latencies", "critical_latency_curve"]

_REL_TOL = 1e-7
_ABS_TOL = 1e-9


@dataclass(frozen=True)
class Tangent:
    """The tangent of ``T(L)`` at one probed latency: value and slope."""

    L: float
    value: float
    slope: float

    @property
    def intercept(self) -> float:
        return self.value - self.slope * self.L

    def extrapolate(self, x: float) -> float:
        return self.value + self.slope * (x - self.L)


def _probe(graph_lp: GraphLP, L: float, backend: str) -> Tangent:
    solution = graph_lp.solve_runtime(L=L, backend=backend)
    lam = graph_lp.latency_sensitivity(solution)
    return Tangent(L=L, value=solution.objective, slope=lam)


def _close(a: float, b: float) -> bool:
    return abs(a - b) <= _ABS_TOL + _REL_TOL * max(abs(a), abs(b), 1.0)


def find_critical_latencies(
    graph_lp: GraphLP,
    l_min: float,
    l_max: float,
    *,
    backend: str = "highs",
    step: float | None = None,
    max_solves: int = 10_000,
) -> list[float]:
    """All critical latencies of ``graph_lp`` inside ``[l_min, l_max]``.

    ``step``, when given, coalesces breakpoints closer than ``step`` (the
    resolution knob of the paper's Algorithm 2); ``max_solves`` bounds the
    number of LP solves.
    """
    if l_min < 0 or l_max <= l_min:
        raise ValueError(f"invalid latency interval [{l_min}, {l_max}]")

    solves = 0

    def probe(L: float) -> Tangent:
        nonlocal solves
        solves += 1
        if solves > max_solves:
            raise RuntimeError(f"exceeded {max_solves} LP solves while sweeping latencies")
        return _probe(graph_lp, L, backend)

    breakpoints: list[float] = []

    def recurse(lo: Tangent, hi: Tangent) -> None:
        if _close(lo.slope, hi.slope) and _close(lo.extrapolate(hi.L), hi.value):
            return
        # intersection of the two tangents
        denom = hi.slope - lo.slope
        if abs(denom) <= _ABS_TOL:
            # same slope but different lines cannot happen for a convex
            # function probed on the same curve; treat as no breakpoint.
            return
        x = (lo.intercept - hi.intercept) / denom
        x = min(max(x, lo.L), hi.L)
        if _close(x, lo.L) or _close(x, hi.L):
            # numerical corner: the breakpoint coincides with an endpoint
            breakpoints.append(x)
            return
        mid = probe(x)
        if _close(mid.value, lo.extrapolate(x)) and _close(mid.value, hi.extrapolate(x)):
            breakpoints.append(x)
            return
        recurse(lo, mid)
        recurse(mid, hi)

    low = probe(l_min)
    high = probe(l_max)
    recurse(low, high)

    breakpoints = sorted(set(round(bp, 12) for bp in breakpoints))
    if step is not None and step > 0 and breakpoints:
        coalesced = [breakpoints[0]]
        for bp in breakpoints[1:]:
            if bp - coalesced[-1] >= step:
                coalesced.append(bp)
        breakpoints = coalesced
    return breakpoints


def critical_latency_curve(
    graph_lp: GraphLP,
    l_min: float,
    l_max: float,
    *,
    backend: str = "highs",
) -> list[Tangent]:
    """Tangents of ``T(L)`` on every linear segment of ``[l_min, l_max]``.

    Returns one :class:`Tangent` per segment (probed at the segment
    mid-point), which is enough to reconstruct the exact ``T(L)`` curve and
    the step function ``λ_L(L)`` over the interval.
    """
    points = find_critical_latencies(graph_lp, l_min, l_max, backend=backend)
    boundaries = [l_min, *points, l_max]
    tangents = []
    for lo, hi in zip(boundaries, boundaries[1:]):
        mid = 0.5 * (lo + hi)
        tangents.append(_probe(graph_lp, mid, backend))
    return tangents
