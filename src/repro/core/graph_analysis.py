"""Conventional critical-path analysis of execution graphs.

This is the first of the two "conventional graph analysis approaches"
discussed in Section II-C: traverse the graph once to assign completion
timestamps for a fixed LogGPS configuration ``θ``, then traverse it backwards
to extract the critical path and the metrics defined on it (number of
messages → ``λ_L``, bytes → ``λ_G``).  It serves three purposes in this
reproduction:

* an independent oracle for the LP builder (the forward-pass makespan must
  equal the LP optimum — tested with Hypothesis on random DAGs);
* the baseline whose need for parameter sweeps motivates the LP approach;
* a fast way to obtain a single runtime estimate without a solver.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..network.params import LogGPSParams
from ..schedgen.graph import EdgeKind, ExecutionGraph, VertexKind

__all__ = ["CriticalPathResult", "analyze_critical_path", "forward_pass"]


@dataclass
class CriticalPathResult:
    """Outcome of a critical-path analysis for one fixed configuration."""

    runtime: float
    completion: np.ndarray
    path: list[int]
    messages_on_path: int
    bytes_on_path: int
    compute_on_path: float
    overhead_on_path: float
    latency_on_path: float

    @property
    def latency_sensitivity(self) -> float:
        """``λ_L`` at this configuration: messages along the critical path."""
        return float(self.messages_on_path)

    @property
    def l_ratio(self) -> float:
        """Fraction of the critical path spent in network latency.

        The paper calls this the *L ratio* ``ρ_L`` and plots it as a
        percentage (Fig. 9 / Fig. 10).  Note that the formula printed in
        Section II-D1 (``T / (L · λ_L)``) is inverted with respect to the
        plotted quantity; we follow the plots and the prose ("what fraction of
        the critical path's execution time is due to network latency").
        """
        if self.runtime <= 0:
            return 0.0
        return self.latency_on_path / self.runtime


def _edge_cost(graph: ExecutionGraph, params: LogGPSParams, dst: int, kind: EdgeKind) -> float:
    if kind is EdgeKind.COMM:
        return params.L + max(int(graph.size[dst]) - 1, 0) * params.G
    return 0.0


def _vertex_cost(graph: ExecutionGraph, params: LogGPSParams, v: int) -> float:
    if graph.kind[v] == VertexKind.CALC:
        return float(graph.cost[v])
    return params.o


def forward_pass(graph: ExecutionGraph, params: LogGPSParams) -> np.ndarray:
    """Completion time of every vertex under configuration ``params``.

    Identical semantics to the LP of Algorithm 1: the makespan is
    ``completion.max()``.

    This is a thin wrapper over the level-synchronous vectorised simulation
    engine (:func:`repro.simulator.columnar.simulate_level`) with the ideal
    injector, no noise and no NIC-gap resource — the configuration in which
    the simulator's timestamps *are* the conventional forward pass.  The
    Hypothesis property test pinning ``forward_pass == LP optimum`` on
    random DAGs therefore anchors the level engine against the LP oracle.
    """
    from ..simulator.columnar import simulate_level
    from ..simulator.injector import IdealInjector
    from ..simulator.noise import NoNoise

    result = simulate_level(
        graph, params, IdealInjector(0.0), NoNoise(), track_nic=False
    )
    return result.end


def analyze_critical_path(graph: ExecutionGraph, params: LogGPSParams) -> CriticalPathResult:
    """Two-pass analysis: forward timestamps, backward critical-path walk."""
    completion = forward_pass(graph, params)
    runtime = float(completion.max()) if len(completion) else 0.0

    # backward pass: start from the vertex that finishes last and repeatedly
    # follow the predecessor whose contribution is tight.
    eps = 1e-7
    v = int(np.argmax(completion))
    path = [v]
    messages = 0
    bytes_on_path = 0
    compute = 0.0
    overhead = 0.0
    latency = 0.0

    while True:
        if graph.kind[v] == VertexKind.CALC:
            compute += float(graph.cost[v])
        else:
            overhead += params.o
        ready = completion[v] - _vertex_cost(graph, params, v)
        chosen: tuple[int, EdgeKind] | None = None
        for src, _, kind in graph.in_edges(v):
            candidate = completion[src] + _edge_cost(graph, params, v, kind)
            if abs(candidate - ready) <= eps * max(1.0, abs(ready)):
                # prefer communication edges on ties so that λ_L is the
                # *largest* message count among equivalent critical paths,
                # matching the LP's reduced cost at a breakpoint from above
                if chosen is None or (kind is EdgeKind.COMM and chosen[1] is EdgeKind.DEP):
                    chosen = (src, kind)
        if chosen is None:
            break
        src, kind = chosen
        if kind is EdgeKind.COMM:
            messages += 1
            bytes_on_path += int(graph.size[v])
            latency += params.L
        path.append(src)
        v = src

    path.reverse()
    return CriticalPathResult(
        runtime=runtime,
        completion=completion,
        path=path,
        messages_on_path=messages,
        bytes_on_path=bytes_on_path,
        compute_on_path=compute,
        overhead_on_path=overhead,
        latency_on_path=latency,
    )
