"""Conventional critical-path analysis of execution graphs.

This is the first of the two "conventional graph analysis approaches"
discussed in Section II-C: traverse the graph once to assign completion
timestamps for a fixed LogGPS configuration ``θ``, then traverse it backwards
to extract the critical path and the metrics defined on it (number of
messages → ``λ_L``, bytes → ``λ_G``).  It serves three purposes in this
reproduction:

* an independent oracle for the LP builder (the forward-pass makespan must
  equal the LP optimum — tested with Hypothesis on random DAGs);
* the baseline whose need for parameter sweeps motivates the LP approach;
* a fast way to obtain a single runtime estimate without a solver.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..network.params import LogGPSParams
from ..schedgen.graph import EdgeKind, ExecutionGraph, VertexKind

__all__ = ["CriticalPathResult", "analyze_critical_path", "forward_pass"]


@dataclass
class CriticalPathResult:
    """Outcome of a critical-path analysis for one fixed configuration."""

    runtime: float
    completion: np.ndarray
    path: list[int]
    messages_on_path: int
    bytes_on_path: int
    compute_on_path: float
    overhead_on_path: float
    latency_on_path: float

    @property
    def latency_sensitivity(self) -> float:
        """``λ_L`` at this configuration: messages along the critical path."""
        return float(self.messages_on_path)

    @property
    def l_ratio(self) -> float:
        """Fraction of the critical path spent in network latency.

        The paper calls this the *L ratio* ``ρ_L`` and plots it as a
        percentage (Fig. 9 / Fig. 10).  Note that the formula printed in
        Section II-D1 (``T / (L · λ_L)``) is inverted with respect to the
        plotted quantity; we follow the plots and the prose ("what fraction of
        the critical path's execution time is due to network latency").
        """
        if self.runtime <= 0:
            return 0.0
        return self.latency_on_path / self.runtime


def _edge_cost(graph: ExecutionGraph, params: LogGPSParams, dst: int, kind: EdgeKind) -> float:
    if kind is EdgeKind.COMM:
        return params.L + max(int(graph.size[dst]) - 1, 0) * params.G
    return 0.0


def _vertex_cost(graph: ExecutionGraph, params: LogGPSParams, v: int) -> float:
    if graph.kind[v] == VertexKind.CALC:
        return float(graph.cost[v])
    return params.o


def forward_pass(graph: ExecutionGraph, params: LogGPSParams) -> np.ndarray:
    """Completion time of every vertex under configuration ``params``.

    Identical semantics to the LP of Algorithm 1 (and to the LogGOPS
    simulator with ``g = 0`` and no injector): the makespan is
    ``completion.max()``.

    Edge and vertex costs are precomputed as arrays through
    :meth:`~repro.schedgen.graph.ExecutionGraph.edge_arrays`; the sweep
    itself runs over plain lists (NumPy scalar indexing would dominate the
    per-edge work on trace-scale graphs).
    """
    n = graph.num_vertices
    edge_src, edge_dst, edge_kind = graph.edge_arrays()
    comm = edge_kind == int(EdgeKind.COMM)
    edge_cost = np.where(
        comm,
        params.L + np.maximum(graph.size[edge_dst] - 1, 0) * params.G,
        0.0,
    )
    vertex_cost = np.where(
        graph.kind == int(VertexKind.CALC), graph.cost, params.o
    )

    completion = [0.0] * n
    sources = edge_src.tolist()
    costs = edge_cost.tolist()
    vcosts = vertex_cost.tolist()
    indptr = graph._pred_indptr.tolist()
    pred_edges = graph._pred_edges.tolist()
    for v in graph.topological_order().tolist():
        ready = 0.0
        for pos in range(indptr[v], indptr[v + 1]):
            eid = pred_edges[pos]
            candidate = completion[sources[eid]] + costs[eid]
            if candidate > ready:
                ready = candidate
        completion[v] = ready + vcosts[v]
    return np.asarray(completion, dtype=np.float64)


def analyze_critical_path(graph: ExecutionGraph, params: LogGPSParams) -> CriticalPathResult:
    """Two-pass analysis: forward timestamps, backward critical-path walk."""
    completion = forward_pass(graph, params)
    runtime = float(completion.max()) if len(completion) else 0.0

    # backward pass: start from the vertex that finishes last and repeatedly
    # follow the predecessor whose contribution is tight.
    eps = 1e-7
    v = int(np.argmax(completion))
    path = [v]
    messages = 0
    bytes_on_path = 0
    compute = 0.0
    overhead = 0.0
    latency = 0.0

    while True:
        if graph.kind[v] == VertexKind.CALC:
            compute += float(graph.cost[v])
        else:
            overhead += params.o
        ready = completion[v] - _vertex_cost(graph, params, v)
        chosen: tuple[int, EdgeKind] | None = None
        for src, _, kind in graph.in_edges(v):
            candidate = completion[src] + _edge_cost(graph, params, v, kind)
            if abs(candidate - ready) <= eps * max(1.0, abs(ready)):
                # prefer communication edges on ties so that λ_L is the
                # *largest* message count among equivalent critical paths,
                # matching the LP's reduced cost at a breakpoint from above
                if chosen is None or (kind is EdgeKind.COMM and chosen[1] is EdgeKind.DEP):
                    chosen = (src, kind)
        if chosen is None:
            break
        src, kind = chosen
        if kind is EdgeKind.COMM:
            messages += 1
            bytes_on_path += int(graph.size[v])
            latency += params.L
        path.append(src)
        v = src

    path.reverse()
    return CriticalPathResult(
        runtime=runtime,
        completion=completion,
        path=path,
        messages_on_path=messages,
        bytes_on_path=bytes_on_path,
        compute_on_path=compute,
        overhead_on_path=overhead,
        latency_on_path=latency,
    )
