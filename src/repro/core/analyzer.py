"""The LLAMP analyzer: the high-level public API of this package.

:class:`LatencyAnalyzer` wraps an execution graph and a LogGPS configuration
and exposes every metric the paper derives from the generated LP:

* predicted runtime ``T`` for any added latency ΔL (Section II-C);
* network latency sensitivity ``λ_L`` (reduced cost of ``l``, Section II-D1);
* the L ratio ``ρ_L`` (fraction of the critical path spent in latency);
* network latency tolerance — the largest ``L`` that keeps the runtime within
  x % of the baseline (Section II-D2, directly via ``max l`` LPs);
* all critical latencies in an interval (Algorithm 2);
* bandwidth sensitivity ``λ_G`` (Section II-B1);
* full sensitivity curves over a ΔL sweep (the lower panels of Fig. 9/10).

Typical use::

    from repro import LatencyAnalyzer, CSCS_TESTBED
    from repro.apps import lulesh

    graph = lulesh.build(nranks=8, params=CSCS_TESTBED)
    analyzer = LatencyAnalyzer(graph, CSCS_TESTBED)
    print(analyzer.predict_runtime())                 # seconds of predicted runtime
    print(analyzer.latency_tolerance(0.01))           # 1% latency tolerance in µs
    print(analyzer.latency_sensitivity(delta_L=10.0)) # λ_L at +10 µs
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from ..network.params import LogGPSParams
from ..schedgen.graph import ExecutionGraph
from .critical_latency import critical_latency_curve, find_critical_latencies
from .graph_analysis import CriticalPathResult, analyze_critical_path
from .lp_builder import GraphLP, build_lp
from .parametric import BatchedSweep, ParametricAnalysis, parametric_analysis

__all__ = ["SensitivityCurve", "ToleranceReport", "LatencyAnalyzer"]


@dataclass
class SensitivityCurve:
    """Runtime, ``λ_L`` and ``ρ_L`` sampled over a ΔL sweep."""

    delta_L: np.ndarray
    runtime: np.ndarray
    latency_sensitivity: np.ndarray
    l_ratio: np.ndarray

    def as_dict(self) -> dict[str, list[float]]:
        return {
            "delta_L": self.delta_L.tolist(),
            "runtime": self.runtime.tolist(),
            "latency_sensitivity": self.latency_sensitivity.tolist(),
            "l_ratio": self.l_ratio.tolist(),
        }


@dataclass
class ToleranceReport:
    """Latency tolerances at the paper's standard degradation levels."""

    baseline_runtime: float
    baseline_latency: float
    tolerances: dict[float, float]

    def tolerance(self, degradation: float) -> float:
        """Absolute tolerable latency L for a given degradation level."""
        return self.tolerances[degradation]

    def delta_tolerance(self, degradation: float) -> float:
        """Tolerable *added* latency ΔL over the baseline network latency."""
        return self.tolerances[degradation] - self.baseline_latency

    def as_rows(self) -> list[tuple[float, float, float]]:
        """Rows of (degradation, L, ΔL), sorted by degradation."""
        return [
            (deg, tol, tol - self.baseline_latency)
            for deg, tol in sorted(self.tolerances.items())
        ]


class LatencyAnalyzer:
    """Analyse the network-latency behaviour of one execution graph."""

    #: degradation levels highlighted throughout the paper (Fig. 1 / Fig. 9)
    DEFAULT_DEGRADATIONS = (0.01, 0.02, 0.05)

    def __init__(
        self,
        graph: ExecutionGraph,
        params: LogGPSParams,
        *,
        backend: str = "highs",
        gap_symbolic: bool = False,
        lp_engine: str = "auto",
        sim_engine: str = "auto",
        envelope_engine: str = "auto",
        cache_dir: str | os.PathLike | None = None,
    ) -> None:
        from ..schedgen.columnar import ScheduleBatches
        from .envelope import _check_engine_name

        _check_engine_name(envelope_engine)

        if isinstance(graph, ScheduleBatches):
            # fused analyze-only path: keep the batch spec; the execution
            # graph is only materialised (zero-copy, never frozen) if a
            # graph-consuming method is actually called
            self._schedule = graph
            self._graph: ExecutionGraph | None = None
        else:
            self._schedule = None
            self._graph = graph
        self.params = params
        self.backend = backend
        self._gap_symbolic = gap_symbolic
        self.lp_engine = lp_engine
        self.sim_engine = sim_engine
        self.envelope_engine = envelope_engine
        self._lp: GraphLP | None = None
        self._baseline_runtime: float | None = None
        self._store = None
        if cache_dir is not None:
            from ..artifacts import ArtifactStore

            self._store = ArtifactStore(cache_dir)

    @classmethod
    def from_program(cls, program, params: LogGPSParams, *, algorithms=None,
                     protocol=None, **kwargs) -> "LatencyAnalyzer":
        """Analyze ``program`` end-to-end on the fused pipeline.

        The program is columnarised once
        (:func:`~repro.schedgen.columnar.batches_from_program`) and held as a
        :class:`~repro.schedgen.columnar.ScheduleBatches` spec; the LP is
        lowered batches → CSR directly, and a (zero-copy, analyze-only)
        execution graph only exists if something graph-shaped is requested.
        """
        from ..schedgen.columnar import ScheduleBatches

        spec = ScheduleBatches.from_program(
            program, algorithms=algorithms, protocol=protocol
        )
        return cls(spec, params, **kwargs)

    @classmethod
    def from_batches(cls, batches, nranks: int, params: LogGPSParams, *,
                     algorithms=None, protocol=None, mmap_dir=None,
                     **kwargs) -> "LatencyAnalyzer":
        """Analyze columnar :class:`~repro.schedgen.columnar.RankOpBatch`
        arrays on the fused pipeline (see :meth:`from_program`).

        ``mmap_dir`` disk-backs the fused graph's columns (out-of-core
        analyze path); the caller owns the directory for the analyzer's
        lifetime."""
        from ..schedgen.columnar import ScheduleBatches

        spec = ScheduleBatches(
            batches, nranks, algorithms=algorithms, protocol=protocol,
            mmap_dir=mmap_dir,
        )
        return cls(spec, params, **kwargs)

    @property
    def graph(self) -> ExecutionGraph:
        """The execution graph under analysis.

        For analyzers built from batch specs the graph is materialised on
        first access through the fused builder (zero-copy columns, condensed
        levels, digest identical to the frozen build) and cached.
        """
        if self._graph is None:
            self._graph = self._schedule.graph_for(self.params)
        return self._graph

    @graph.setter
    def graph(self, value: ExecutionGraph) -> None:
        self._graph = value

    @property
    def store(self):
        """The :class:`~repro.artifacts.ArtifactStore` behind ``cache_dir``
        (``None`` when caching is off)."""
        return self._store

    # -- lazily built artefacts -------------------------------------------------

    @property
    def lp(self) -> GraphLP:
        """The generated LP (built on first use, then cached and re-solved)."""
        if self._lp is None:
            source = self._schedule if self._schedule is not None else self.graph
            self._lp = build_lp(
                source,
                self.params,
                latency_mode="global",
                gap_mode="global" if self._gap_symbolic else "constant",
                engine=self.lp_engine,
            )
        return self._lp

    def graph_analysis(self, delta_L: float = 0.0) -> CriticalPathResult:
        """The conventional two-pass critical path analysis (baseline method)."""
        return analyze_critical_path(self.graph, self.params.with_delta_latency(delta_L))

    def simulate(self, delta_L: float = 0.0, *, injector=None, noise=None):
        """One LogGOPS simulation run (the "measured" side of the paper's
        validation), on the engine selected by ``sim_engine``.

        ``delta_L`` and an explicit ``injector`` are mutually exclusive,
        exactly as in :func:`repro.simulator.simulate`.
        """
        from ..simulator.loggops import simulate

        return simulate(
            self.graph,
            self.params,
            delta_L=delta_L,
            injector=injector,
            noise=noise,
            sim_engine=self.sim_engine,
        )

    def simulated_sweep(self, delta_Ls, *, injector: str = "ideal", noise=None):
        """Simulated makespans over a ΔL sweep in one batched level pass.

        Uses :func:`repro.simulator.columnar.simulate_sweep`: every level of
        the graph advances all sweep points at once (one 2-D array pass), so
        the whole sweep costs a single traversal.  ``sim_engine="legacy"``
        falls back to one per-point run per ΔL.
        """
        from ..simulator.columnar import simulate_sweep
        from ..simulator.loggops import resolve_sim_engine

        engine = resolve_sim_engine(self.sim_engine, self.graph.num_vertices)
        return simulate_sweep(
            self.graph,
            self.params,
            delta_Ls,
            injector=injector,
            noise=noise,
            sim_engine=engine,
        )

    def parametric(self, l_min: float = 0.0, l_max: float = 10_000.0) -> ParametricAnalysis:
        """The exact piecewise-linear ``T(L)`` curve on ``[l_min, l_max]``."""
        return parametric_analysis(self.graph, self.params, l_min=l_min, l_max=l_max)

    def batched_sweep(
        self, l_min: float | None = None, l_max: float = 10_000.0, **kwargs
    ) -> BatchedSweep:
        """A :class:`BatchedSweep` over the cached LP (assembled once).

        ``l_min`` defaults to the baseline latency.  The sweep reconstructs
        the exact ``T(L)`` curve from ``O(#breakpoints)`` LP solves instead
        of one cold solve per sweep point.

        With ``cache_dir=`` set on the analyzer, the envelope is served from
        the content-addressed :class:`~repro.artifacts.ArtifactStore`: on a
        hit the returned sweep wraps the stored curve and never builds,
        assembles or solves the LP at all (zero new CSR assemblies); on a
        miss the envelope is built once and persisted for the next caller.
        Store keys are engine-free — an envelope warmed with one
        ``envelope_engine`` is a hit for the other, since both compute the
        identical curve.
        """
        lo = self.params.L if l_min is None else l_min
        kwargs.setdefault("backend", self.backend)
        kwargs.setdefault("envelope_engine", self.envelope_engine)
        if self._store is None:
            return BatchedSweep(self.lp, l_min=lo, l_max=l_max, **kwargs)
        from ..artifacts import envelope_key

        key = envelope_key(
            self.graph,
            self.params,
            l_min=lo,
            l_max=l_max,
            gap_symbolic=self._gap_symbolic,
            lp_engine=self.lp_engine,
            **{
                k: v
                for k, v in kwargs.items()
                if k not in ("backend", "envelope_engine")
            },
        )
        cached = self._store.get("envelope", key)
        if cached is not None:
            self._store.hits["envelope"] += 1
            return BatchedSweep.from_envelope(cached)
        sweep = BatchedSweep(self.lp, l_min=lo, l_max=l_max, **kwargs)
        self._store.misses["envelope"] += 1
        self._store.put("envelope", key, sweep.envelope)
        return sweep

    @classmethod
    def sweep_many(
        cls,
        graphs: Sequence[ExecutionGraph],
        params: LogGPSParams,
        *,
        l_min: float | None = None,
        l_max: float = 10_000.0,
        backend: str = "auto",
        max_pieces: int = 50_000,
        processes: int | None = None,
        cache_dir: str | os.PathLike | None = None,
        envelope_engine: str = "auto",
        **build_kwargs,
    ) -> list[BatchedSweep]:
        """One :class:`BatchedSweep` per graph, via the shared-memory pool.

        The many-graph counterpart of :meth:`batched_sweep`: graphs are
        deduplicated by content digest, and with ``processes > 1`` the unique
        ones fan out over a :class:`~repro.parallel.SweepPool` of ``spawn``
        workers that attach the graph columns zero-copy instead of unpickling
        private copies.  Every returned sweep wraps a finished envelope
        (``num_solves == 0`` in this process).
        """
        from .parametric import batched_sweep_graphs

        lo = params.L if l_min is None else l_min
        envelopes = batched_sweep_graphs(
            graphs,
            params,
            l_min=lo,
            l_max=l_max,
            backend=backend,
            max_pieces=max_pieces,
            processes=processes,
            cache_dir=cache_dir,
            envelope_engine=envelope_engine,
            **build_kwargs,
        )
        return [BatchedSweep.from_envelope(envelope) for envelope in envelopes]

    # -- core metrics -------------------------------------------------------------

    def predict_runtime(self, delta_L: float = 0.0) -> float:
        """Predicted runtime (µs) with ``delta_L`` µs of added network latency."""
        if delta_L < 0:
            raise ValueError(f"delta_L must be non-negative, got {delta_L}")
        solution = self.lp.solve_runtime(L=self.params.L + delta_L, backend=self.backend)
        return solution.objective

    def baseline_runtime(self) -> float:
        """Predicted runtime at the baseline latency (cached)."""
        if self._baseline_runtime is None:
            self._baseline_runtime = self.predict_runtime(0.0)
        return self._baseline_runtime

    def latency_sensitivity(self, delta_L: float = 0.0) -> float:
        """``λ_L = ∂T/∂L`` at the given added latency (messages on the critical path)."""
        solution = self.lp.solve_runtime(L=self.params.L + delta_L, backend=self.backend)
        return self.lp.latency_sensitivity(solution)

    def l_ratio(self, delta_L: float = 0.0) -> float:
        """``ρ_L``: fraction of the predicted runtime attributable to network latency."""
        L = self.params.L + delta_L
        solution = self.lp.solve_runtime(L=L, backend=self.backend)
        runtime = solution.objective
        if runtime <= 0:
            return 0.0
        return L * self.lp.latency_sensitivity(solution) / runtime

    def bandwidth_sensitivity(self, delta_L: float = 0.0) -> float:
        """``λ_G = ∂T/∂G``: bytes (minus one per message) on the critical path."""
        if not self._gap_symbolic:
            raise ValueError(
                "build the analyzer with gap_symbolic=True to query bandwidth sensitivity"
            )
        solution = self.lp.solve_runtime(L=self.params.L + delta_L, backend=self.backend)
        return self.lp.gap_sensitivity(solution)

    # -- tolerance -----------------------------------------------------------------

    def latency_tolerance(self, degradation: float, *, absolute: bool = True) -> float:
        """Largest latency keeping the runtime within ``(1+degradation)·T₀``.

        ``absolute=True`` returns the total tolerable latency ``L`` (as in
        Fig. 1); ``absolute=False`` returns the tolerable *added* latency ΔL.
        """
        if degradation < 0:
            raise ValueError(f"degradation must be non-negative, got {degradation}")
        bound = (1.0 + degradation) * self.baseline_runtime()
        # reset the latency lower bound to the baseline before maximising
        self.lp.set_latency_bound(self.params.L)
        solution = self.lp.solve_max_latency(bound, backend=self.backend)
        tolerance = solution.objective
        return tolerance if absolute else tolerance - self.params.L

    def tolerance_report(
        self, degradations: Sequence[float] | None = None
    ) -> ToleranceReport:
        """Latency tolerances at several degradation levels (default 1/2/5 %)."""
        degradations = tuple(degradations or self.DEFAULT_DEGRADATIONS)
        tolerances = {deg: self.latency_tolerance(deg) for deg in degradations}
        return ToleranceReport(
            baseline_runtime=self.baseline_runtime(),
            baseline_latency=self.params.L,
            tolerances=tolerances,
        )

    # -- curves and sweeps ------------------------------------------------------------

    def sensitivity_curve(
        self, delta_Ls: Iterable[float], *, engine: str = "lp"
    ) -> SensitivityCurve:
        """Sample runtime, ``λ_L`` and ``ρ_L`` over a ΔL sweep (Fig. 9 lower panels).

        ``engine="lp"`` cold-solves one LP per point (the paper's method);
        ``engine="batched"`` reconstructs the exact ``T(L)`` envelope with
        ``O(#breakpoints)`` solves and evaluates every point from it — same
        values, far fewer solver calls on dense sweeps.
        """
        deltas = np.asarray(sorted(set(float(d) for d in delta_Ls)), dtype=np.float64)
        if np.any(deltas < 0):
            raise ValueError("delta_L values must be non-negative")
        if engine not in ("lp", "batched"):
            raise ValueError(f"unknown sweep engine {engine!r}; expected 'lp' or 'batched'")
        Ls = self.params.L + deltas
        runtimes = np.zeros_like(deltas)
        lambdas = np.zeros_like(deltas)
        if engine == "batched" and deltas.size:
            span = float(Ls.max()) - float(Ls.min())
            sweep = self.batched_sweep(
                l_min=float(Ls.min()), l_max=float(Ls.max()) + max(span, 1.0) * 1e-9
            )
            runtimes = sweep.values(Ls)
            lambdas = sweep.sensitivities(Ls)
        else:
            for i, L in enumerate(Ls):
                solution = self.lp.solve_runtime(L=float(L), backend=self.backend)
                runtimes[i] = solution.objective
                lambdas[i] = self.lp.latency_sensitivity(solution)
        with np.errstate(divide="ignore", invalid="ignore"):
            rhos = np.where(runtimes > 0, Ls * lambdas / runtimes, 0.0)
        return SensitivityCurve(
            delta_L=deltas, runtime=runtimes, latency_sensitivity=lambdas, l_ratio=rhos
        )

    def critical_latencies(
        self, l_min: float | None = None, l_max: float = 1_000.0, *, step: float | None = None
    ) -> list[float]:
        """Critical latencies in ``[l_min, l_max]`` (Algorithm 2)."""
        lo = self.params.L if l_min is None else l_min
        if self.envelope_engine != "lp" and self._lp is None:
            # forward engine on the raw graph: no LP is ever assembled
            return find_critical_latencies(
                self.graph, lo, l_max, step=step, params=self.params,
                envelope_engine=self.envelope_engine,
            )
        return find_critical_latencies(
            self.lp, lo, l_max, backend=self.backend, step=step,
            envelope_engine=self.envelope_engine,
        )

    def critical_latency_curve(self, l_min: float | None = None, l_max: float = 1_000.0):
        """One :class:`~repro.lp.parametric.Tangent` per linear segment of ``T(L)``.

        Runs the shared tangent-envelope search once on the cached LP; the
        per-segment tangents are reconstructed from its cache without any
        additional LP solves at the segment mid-points.
        """
        lo = self.params.L if l_min is None else l_min
        if self.envelope_engine != "lp" and self._lp is None:
            return critical_latency_curve(
                self.graph, lo, l_max, params=self.params,
                envelope_engine=self.envelope_engine,
            )
        return critical_latency_curve(
            self.lp, lo, l_max, backend=self.backend,
            envelope_engine=self.envelope_engine,
        )

    # -- reporting ----------------------------------------------------------------------

    def summary(self) -> dict[str, float]:
        """One-line summary used by the CLI and the examples."""
        report = self.tolerance_report()
        lam = self.latency_sensitivity()
        return {
            "nranks": self.graph.nranks,
            "events": self.graph.num_events,
            "messages": self.graph.num_messages,
            "runtime_us": report.baseline_runtime,
            "lambda_L": lam,
            "rho_L": self.l_ratio(),
            "tolerance_1pct_us": report.tolerance(0.01),
            "tolerance_2pct_us": report.tolerance(0.02),
            "tolerance_5pct_us": report.tolerance(0.05),
        }
