"""Exact parametric critical-path analysis: the full ``T(L)`` curve at once.

Equation 3 of the paper writes the runtime of an MPI program under LogGPS as

.. math:: T(L) = \\max_i (a_i L + C_i)

where each term corresponds to one path through the execution graph
(``a_i`` = number of communication edges, ``C_i`` = all other costs).  The
paper notes that materialising this expression by dynamic programming is
intractable in their C++ implementation; here we implement it with an
*upper-envelope* representation — per vertex we only keep the lines that are
maximal somewhere in the latency interval of interest — which makes the
computation exact and, for the graph sizes used in this reproduction, fast.

The resulting :class:`PiecewiseLinear` envelope directly yields every
quantity LLAMP otherwise extracts from LP re-solves:

* ``T(L)``                      — :meth:`PiecewiseLinear.value`;
* ``λ_L(L)``                    — :meth:`PiecewiseLinear.slope`;
* all critical latencies        — :meth:`PiecewiseLinear.breakpoints`;
* the x% latency tolerance      — :meth:`ParametricAnalysis.latency_tolerance`;
* the feasibility range of a
  given ``L`` (Gurobi's ranging) — :meth:`PiecewiseLinear.segment_of`.

It is used as an independent cross-check of the LP pipeline in the test
suite and by Algorithm 2's range queries when the LP backend cannot provide
ranging information.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..lp.parametric import EnvelopeOverflowError, ParametricLP
from ..network.params import LogGPSParams
from ..schedgen.graph import EdgeKind, ExecutionGraph, VertexKind

__all__ = [
    "Line",
    "PiecewiseLinear",
    "ParametricAnalysis",
    "parametric_analysis",
    "EnvelopeOverflowError",
    "BatchedSweep",
    "batched_sweep_graphs",
]


@dataclass(frozen=True)
class Line:
    """A line ``f(L) = slope * L + intercept``; the slope counts messages."""

    slope: float
    intercept: float

    def __call__(self, x: float) -> float:
        return self.slope * x + self.intercept

    def shifted(self, slope_delta: float, intercept_delta: float) -> "Line":
        return Line(self.slope + slope_delta, self.intercept + intercept_delta)


def _upper_envelope(lines: Sequence[Line], lo: float, hi: float) -> list[Line]:
    """Keep only the lines that are maximal somewhere in ``[lo, hi]``."""
    if not lines:
        return []
    # group by slope, keeping the largest intercept
    best: dict[float, float] = {}
    for line in lines:
        previous = best.get(line.slope)
        if previous is None or line.intercept > previous:
            best[line.slope] = line.intercept
    ordered = [Line(slope, intercept) for slope, intercept in sorted(best.items())]
    if len(ordered) == 1:
        return ordered

    hull: list[Line] = []
    for line in ordered:
        while hull:
            last = hull[-1]
            if len(hull) == 1:
                # `last` is dominated on [lo, hi] iff the new (steeper) line is
                # already above it at lo
                if line(lo) >= last(lo):
                    hull.pop()
                    continue
                break
            prev = hull[-2]
            # intersection of `prev` and `line`
            x_new = (line.intercept - prev.intercept) / (prev.slope - line.slope)
            x_old = (last.intercept - prev.intercept) / (prev.slope - last.slope)
            if x_new <= x_old:
                hull.pop()
                continue
            break
        hull.append(line)

    # clip to the domain: drop pieces whose validity interval misses [lo, hi]
    clipped: list[Line] = []
    for idx, line in enumerate(hull):
        start = lo if idx == 0 else _intersection(hull[idx - 1], line)
        end = hi if idx == len(hull) - 1 else _intersection(line, hull[idx + 1])
        if end < lo - 1e-15 or start > hi + 1e-15:
            continue
        clipped.append(line)
    return clipped if clipped else [max(hull, key=lambda ln: ln(lo))]


def _intersection(a: Line, b: Line) -> float:
    return (b.intercept - a.intercept) / (a.slope - b.slope)


@dataclass
class PiecewiseLinear:
    """A convex, non-decreasing piecewise-linear function of the latency ``L``."""

    lines: list[Line]
    lo: float
    hi: float

    def __post_init__(self) -> None:
        if not self.lines:
            raise ValueError("a piecewise-linear function needs at least one line")
        self.lines = sorted(self.lines, key=lambda ln: ln.slope)
        self._hull_cache: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None

    # -- evaluation ------------------------------------------------------------

    def value(self, x: float) -> float:
        """``T(x)`` — the maximum over all pieces."""
        return max(line(x) for line in self.lines)

    def slope(self, x: float) -> float:
        """``λ_L`` at ``x`` — the slope of the active piece.

        At a breakpoint the slope from *above* is returned (the larger one),
        matching the convention of the reduced cost when approached from the
        right.
        """
        best_value = self.value(x)
        best_slope = 0.0
        for line in self.lines:
            if abs(line(x) - best_value) <= 1e-9 * max(1.0, abs(best_value)) + 1e-12:
                best_slope = max(best_slope, line.slope)
        return best_slope

    def _hull_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Cached ``(slopes, intercepts, breakpoints)`` arrays of the hull.

        The breakpoints are the *unclamped* intersections of consecutive
        pieces (strictly increasing by the hull construction), so a single
        ``searchsorted`` maps any ``x`` to its active piece.
        """
        if self._hull_cache is None:
            slopes = np.array([ln.slope for ln in self.lines], dtype=np.float64)
            intercepts = np.array([ln.intercept for ln in self.lines], dtype=np.float64)
            bps = np.array(
                [_intersection(a, b) for a, b in zip(self.lines, self.lines[1:])],
                dtype=np.float64,
            )
            self._hull_cache = (slopes, intercepts, bps)
        return self._hull_cache

    def slopes(self, xs: Iterable[float]) -> np.ndarray:
        """Vectorised :meth:`slope` over a sweep of latencies.

        One ``np.searchsorted`` against the cached breakpoints locates the
        active piece of every query, then indices are bumped rightwards while
        the next piece ties within the scalar path's tolerance — reproducing
        the slope-from-above convention (and its tolerance) bit for bit.
        """
        xs = np.asarray(list(xs), dtype=np.float64)
        slopes, intercepts, bps = self._hull_arrays()
        idx = np.searchsorted(bps, xs, side="right")
        best = slopes[idx] * xs + intercepts[idx]
        tol = 1e-9 * np.maximum(1.0, np.abs(best)) + 1e-12
        n = len(slopes)
        while True:
            nxt = np.minimum(idx + 1, n - 1)
            cand = slopes[nxt] * xs + intercepts[nxt]
            bump = (idx + 1 < n) & (np.abs(cand - best) <= tol)
            if not bump.any():
                break
            idx = np.where(bump, idx + 1, idx)
        return np.maximum(slopes[idx], 0.0)

    def breakpoints(self) -> list[float]:
        """The critical latencies inside ``(lo, hi)`` where the slope changes."""
        points = []
        for a, b in zip(self.lines, self.lines[1:]):
            x = _intersection(a, b)
            if self.lo < x < self.hi:
                points.append(x)
        return points

    def segment_of(self, x: float) -> tuple[float, float]:
        """Feasibility range ``[L_fl, L_fu]`` of ``x``: the active segment."""
        best_value = self.value(x)
        active = max(
            (line for line in self.lines
             if abs(line(x) - best_value) <= 1e-9 * max(1.0, abs(best_value)) + 1e-12),
            key=lambda ln: ln.slope,
        )
        idx = self.lines.index(active)
        lower = self.lo if idx == 0 else _intersection(self.lines[idx - 1], active)
        upper = self.hi if idx == len(self.lines) - 1 else _intersection(active, self.lines[idx + 1])
        return (lower, upper)

    def solve_for_value(self, target: float) -> float:
        """Largest ``x`` in ``[lo, hi]`` with ``value(x) <= target``.

        Used for the latency-tolerance query.  Returns ``hi`` if the whole
        interval satisfies the bound and raises if even ``lo`` violates it.
        """
        if self.value(self.lo) > target + 1e-12:
            raise ValueError(
                f"runtime bound {target} is below the runtime at L={self.lo}"
            )
        if self.value(self.hi) <= target:
            return self.hi
        # the active piece at the crossing has positive slope
        best = self.lo
        for line in self.lines:
            if line.slope <= 0:
                continue
            x = (target - line.intercept) / line.slope
            if x < self.lo:
                continue
            x = min(x, self.hi)
            if self.value(x) <= target + 1e-9 * max(1.0, abs(target)):
                best = max(best, x)
        return best

    def sample(self, xs: Iterable[float]) -> np.ndarray:
        """Vectorised evaluation over a sequence of latencies."""
        xs = np.asarray(list(xs), dtype=np.float64)
        slopes = np.array([line.slope for line in self.lines])
        intercepts = np.array([line.intercept for line in self.lines])
        return (xs[:, None] * slopes[None, :] + intercepts[None, :]).max(axis=1)


@dataclass
class ParametricAnalysis:
    """The full parametric picture of one execution graph."""

    envelope: PiecewiseLinear
    params: LogGPSParams
    graph: ExecutionGraph

    def runtime(self, L: float | None = None) -> float:
        """``T(L)``; defaults to the baseline latency of ``params``."""
        return self.envelope.value(self.params.L if L is None else L)

    def latency_sensitivity(self, L: float | None = None) -> float:
        """``λ_L`` at ``L``."""
        return self.envelope.slope(self.params.L if L is None else L)

    def l_ratio(self, L: float | None = None) -> float:
        """``ρ_L``: fraction of the critical path attributable to latency."""
        x = self.params.L if L is None else L
        t = self.envelope.value(x)
        if t <= 0:
            return 0.0
        return x * self.envelope.slope(x) / t

    def critical_latencies(self) -> list[float]:
        """All critical latencies in the analysed interval."""
        return self.envelope.breakpoints()

    def latency_tolerance(self, degradation: float, baseline_L: float | None = None) -> float:
        """Maximum ``L`` keeping the runtime within ``(1 + degradation)·T(L₀)``."""
        if degradation < 0:
            raise ValueError(f"degradation must be non-negative, got {degradation}")
        base = self.params.L if baseline_L is None else baseline_L
        bound = (1.0 + degradation) * self.envelope.value(base)
        return self.envelope.solve_for_value(bound)

    def feasibility_range(self, L: float | None = None) -> tuple[float, float]:
        """The range of ``L`` over which the critical path does not change."""
        return self.envelope.segment_of(self.params.L if L is None else L)


def parametric_analysis(
    graph: ExecutionGraph,
    params: LogGPSParams,
    *,
    l_min: float = 0.0,
    l_max: float = 10_000.0,
    max_pieces: int = 50_000,
) -> ParametricAnalysis:
    """Compute the exact ``T(L)`` envelope of ``graph`` on ``[l_min, l_max]``.

    All other LogGPS parameters are taken from ``params``.  ``max_pieces``
    guards against pathological envelope growth (an
    :class:`EnvelopeOverflowError` is raised instead of silently degrading).
    """
    if l_min < 0 or l_max <= l_min:
        raise ValueError(f"invalid latency interval [{l_min}, {l_max}]")

    o, G = params.o, params.G
    envelopes: dict[int, list[Line]] = {}

    for v in graph.topological_order():
        v = int(v)
        cost = float(graph.cost[v]) if graph.kind[v] == VertexKind.CALC else o
        incoming = list(graph.in_edges(v))
        if not incoming:
            envelopes[v] = [Line(0.0, cost)]
            continue
        merged: list[Line] = []
        for src, _, kind in incoming:
            if kind is EdgeKind.COMM:
                slope_delta = 1.0
                intercept_delta = max(int(graph.size[v]) - 1, 0) * G + cost
            else:
                slope_delta = 0.0
                intercept_delta = cost
            merged.extend(
                line.shifted(slope_delta, intercept_delta) for line in envelopes[src]
            )
        env = _upper_envelope(merged, l_min, l_max)
        if len(env) > max_pieces:
            raise EnvelopeOverflowError(
                f"envelope at vertex {v} has {len(env)} pieces (> {max_pieces}); "
                "narrow the latency interval or raise max_pieces"
            )
        envelopes[v] = env

    terminal: list[Line] = []
    for sink in graph.sinks():
        terminal.extend(envelopes[int(sink)])
    final = _upper_envelope(terminal, l_min, l_max)
    envelope = PiecewiseLinear(lines=final, lo=l_min, hi=l_max)
    return ParametricAnalysis(envelope=envelope, params=params, graph=graph)


# ---------------------------------------------------------------------------
# batched LP sweeps
# ---------------------------------------------------------------------------


class BatchedSweep:
    """Reuse one assembled LP across a whole latency sweep.

    The cold path solves an independent LP per ``(graph, L)`` point: each
    solve re-lowers the model and cold-starts the solver.  ``BatchedSweep``
    exploits two structural facts instead:

    1. only the lower bound of the latency variable changes between sweep
       points, so the CSR lowering (:mod:`repro.lp.assembler`) is built once
       per graph and every re-solve just refreshes the bounds vector;
    2. ``T(L)`` is convex piecewise linear, and each solve at ``L`` returns
       the *tangent* of the curve — the value ``T(L)`` and the slope ``λ_L``
       (reduced cost of ``l``).  The previous vertex therefore remains
       optimal until the sweep crosses a breakpoint: recursing on tangent
       intersections discovers every linear segment with
       ``O(#breakpoints)`` LP solves, after which any number of sweep points
       is evaluated from the reconstructed envelope without touching the
       solver again.

    The result is exact (not an approximation): every returned value lies on
    the same piecewise-linear curve the per-point cold solves sample.

    Parameters
    ----------
    graph_lp:
        A :class:`~repro.core.lp_builder.GraphLP` built with
        ``latency_mode="global"``.
    l_min, l_max:
        The latency interval swept.
    backend:
        Backend name from the default registry (``"auto"`` picks the dense
        simplex for tiny models, HiGHS otherwise).
    max_pieces:
        Guard against pathological envelope growth: discovering more than
        this many linear segments raises :class:`EnvelopeOverflowError`.
    max_solves:
        Hard bound on the number of LP solves.
    envelope_engine:
        ``"forward"`` computes the envelope with the single-traversal line
        propagation of :mod:`repro.core.envelope` (no LP solves at all),
        ``"lp"`` forces the tangent search, and ``"auto"`` (default) picks
        the forward pass whenever it is exact for this LP and falls back to
        the tangent search otherwise.  Both engines return the identical
        curve — see the affinity contract in ``src/repro/lp/README.md``.
    """

    def __init__(
        self,
        graph_lp,
        *,
        l_min: float = 0.0,
        l_max: float = 10_000.0,
        backend: str = "auto",
        max_pieces: int = 50_000,
        max_solves: int = 10_000,
        envelope_engine: str = "auto",
    ) -> None:
        from .envelope import _check_engine_name

        if graph_lp.latency is None:
            raise ValueError(
                "BatchedSweep requires a GraphLP built with latency_mode='global'"
            )
        if l_min < 0 or l_max <= l_min:
            raise ValueError(f"invalid latency interval [{l_min}, {l_max}]")
        if max_pieces < 1:
            raise ValueError(f"max_pieces must be positive, got {max_pieces}")
        _check_engine_name(envelope_engine)
        self.graph_lp = graph_lp
        self.l_min = float(l_min)
        self.l_max = float(l_max)
        self.backend = backend
        self.max_pieces = max_pieces
        self.max_solves = max_solves
        self.envelope_engine = envelope_engine
        self.num_solves = 0
        self._envelope: PiecewiseLinear | None = None

    @classmethod
    def from_envelope(cls, envelope: PiecewiseLinear) -> "BatchedSweep":
        """Wrap an already-built envelope (e.g. loaded from an artifact store).

        The returned sweep answers every query from the envelope without a
        model: ``graph_lp`` is ``None``, ``num_solves`` is 0 and no LP is
        ever assembled or solved.
        """
        sweep = cls.__new__(cls)
        sweep.graph_lp = None
        sweep.l_min = float(envelope.lo)
        sweep.l_max = float(envelope.hi)
        sweep.backend = "cached"
        sweep.max_pieces = max(len(envelope.lines), 1)
        sweep.max_solves = 0
        sweep.envelope_engine = "cached"
        sweep.num_solves = 0
        sweep._envelope = envelope
        return sweep

    # -- envelope construction -------------------------------------------------

    def _build_envelope(self) -> PiecewiseLinear:
        if self.graph_lp is None:
            raise ValueError(
                "this BatchedSweep was restored from a cached envelope and "
                "has no model to solve"
            )
        from .envelope import forward_envelope, resolve_envelope_engine

        if resolve_envelope_engine(self.envelope_engine, self.graph_lp) == "forward":
            # single-traversal line propagation: exact, zero LP solves
            return forward_envelope(
                self.graph_lp.graph,
                self.graph_lp.params,
                l_min=self.l_min,
                l_max=self.l_max,
                max_pieces=self.max_pieces,
            )
        # the tangent-probing search is the shared ParametricLP engine; this
        # class only owns the geometric reconstruction of the envelope
        engine = ParametricLP(
            self.graph_lp.model, backend=self.backend, max_solves=self.max_solves
        )
        try:
            result = self.graph_lp.tangent_envelope(
                self.l_min, self.l_max, max_pieces=self.max_pieces, engine=engine
            )
        finally:
            # keep the solve count observable even when the search overflows
            self.num_solves = engine.num_solves

        lines = [Line(t.slope, t.intercept) for t in result.tangents]
        env = _upper_envelope(lines, self.l_min, self.l_max)
        if len(env) > self.max_pieces:
            raise EnvelopeOverflowError(
                f"latency sweep envelope has {len(env)} pieces (> {self.max_pieces})"
            )
        return PiecewiseLinear(lines=env, lo=self.l_min, hi=self.l_max)

    @property
    def envelope(self) -> PiecewiseLinear:
        """The exact ``T(L)`` curve on ``[l_min, l_max]`` (built lazily)."""
        if self._envelope is None:
            self._envelope = self._build_envelope()
        return self._envelope

    # -- queries -----------------------------------------------------------------

    def value(self, L: float) -> float:
        """``T(L)``."""
        return self.envelope.value(L)

    def slope(self, L: float) -> float:
        """``λ_L`` at ``L`` (slope from above at breakpoints)."""
        return self.envelope.slope(L)

    def values(self, Ls: Iterable[float]) -> np.ndarray:
        """Vectorised ``T`` over a sweep of latencies."""
        return self.envelope.sample(Ls)

    def sensitivities(self, Ls: Iterable[float]) -> np.ndarray:
        """``λ_L`` over a sweep of latencies (vectorised; see
        :meth:`PiecewiseLinear.slopes`)."""
        return self.envelope.slopes(Ls)

    def breakpoints(self) -> list[float]:
        """All critical latencies inside ``(l_min, l_max)``."""
        return self.envelope.breakpoints()

    def latency_tolerance(self, runtime_bound: float) -> float:
        """Largest ``L`` in the interval with ``T(L) <= runtime_bound``."""
        return self.envelope.solve_for_value(runtime_bound)


def _sweep_one_graph(job) -> PiecewiseLinear:
    (graph, params, l_min, l_max, backend, max_pieces, cache_dir,
     envelope_engine, build_kwargs) = job

    def build() -> PiecewiseLinear:
        from .envelope import forward_envelope, forward_supports_modes

        if envelope_engine != "lp" and forward_supports_modes(build_kwargs):
            # a fresh LP in these modes is always forward-compatible, so the
            # forward pass can skip the LP assembly altogether
            return forward_envelope(
                graph, params, l_min=l_min, l_max=l_max, max_pieces=max_pieces
            )
        from .lp_builder import build_lp

        graph_lp = build_lp(graph, params, **build_kwargs)
        sweep = BatchedSweep(
            graph_lp,
            l_min=l_min,
            l_max=l_max,
            backend=backend,
            max_pieces=max_pieces,
            envelope_engine=envelope_engine,
        )
        return sweep.envelope

    if cache_dir is None:
        return build()
    from ..artifacts import ArtifactStore, envelope_key

    store = ArtifactStore(cache_dir)
    # deliberately engine-free: both engines produce the identical curve, so
    # cached entries are shared across envelope_engine choices
    key = envelope_key(
        graph, params, l_min=l_min, l_max=l_max, max_pieces=max_pieces, **build_kwargs
    )
    return store.get_or_build_envelope(key, build)


def batched_sweep_graphs(
    graphs: Sequence[ExecutionGraph],
    params: LogGPSParams,
    *,
    l_min: float = 0.0,
    l_max: float = 10_000.0,
    backend: str = "auto",
    max_pieces: int = 50_000,
    processes: int | None = None,
    cache_dir: str | os.PathLike | None = None,
    envelope_engine: str = "auto",
    **build_kwargs,
) -> list[PiecewiseLinear]:
    """Batched sweeps of several independent graphs, optionally in parallel.

    Returns one exact ``T(L)`` envelope per graph.  Graphs are deduplicated
    by :meth:`~repro.schedgen.graph.ExecutionGraph.content_digest` before any
    LP is assembled — duplicates are solved once and the envelope is fanned
    out — whether or not a cache directory is configured.

    ``processes > 1`` fans the unique graphs out over a persistent
    :class:`~repro.parallel.SweepPool` of ``spawn`` workers: the graph
    columns are exported once into shared memory and workers attach
    zero-copy views instead of unpickling a private copy per task.  Anything
    else runs serially in-process.

    ``cache_dir`` (any path-like) points all paths at a shared
    :class:`~repro.artifacts.ArtifactStore`: each envelope is keyed by the
    graph/params content digests plus the sweep configuration, so repeated
    runs are answered from disk instead of re-building and re-assembling the
    LP.  The store's writes are atomic, so pool workers may race on a key
    safely.

    ``envelope_engine`` selects how each envelope is computed (see
    :class:`BatchedSweep`); cache keys are engine-free, so entries warmed by
    one engine are reused by the other.
    """
    from .envelope import _check_engine_name

    _check_engine_name(envelope_engine)
    cache_dir = None if cache_dir is None else os.fspath(cache_dir)
    from ..schedgen.columnar import ScheduleBatches

    # batch-column entries (fused callers) are materialised through the
    # zero-copy fused builder — never frozen — and then flow through the
    # digest dedupe / cache / pool machinery unchanged, since the fused
    # graph's content digest equals the frozen one's
    graphs = [
        graph.graph_for(params) if isinstance(graph, ScheduleBatches) else graph
        for graph in graphs
    ]
    if processes is not None and processes > 1 and len(graphs) > 1:
        from ..parallel.pool import SweepPool

        with SweepPool(min(processes, len(graphs)), cache_dir=cache_dir) as pool:
            return pool.sweep_graphs(
                graphs,
                params,
                l_min=l_min,
                l_max=l_max,
                backend=backend,
                max_pieces=max_pieces,
                envelope_engine=envelope_engine,
                **build_kwargs,
            )

    by_digest: dict[str, PiecewiseLinear] = {}
    envelopes: list[PiecewiseLinear] = []
    for graph in graphs:
        digest = graph.content_digest()
        envelope = by_digest.get(digest)
        if envelope is None:
            envelope = _sweep_one_graph(
                (graph, params, l_min, l_max, backend, max_pieces, cache_dir,
                 envelope_engine, build_kwargs)
            )
            by_digest[digest] = envelope
        envelopes.append(envelope)
    return envelopes
