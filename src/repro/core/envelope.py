"""Single-traversal exact ``T(L)`` envelopes: convex line-set propagation.

Every edge cost of the LogGPS LP is *affine in the latency* ``L`` — a
communication edge costs ``l + (size-1)·G`` and everything else is a
constant — so the makespan ``T(L)`` is the upper envelope of per-path lines
``a_i·L + C_i`` (``a_i`` = number of messages on path ``i``).  The tangent
search of :class:`~repro.lp.parametric.ParametricLP` recovers that envelope
with one LP solve per breakpoint; this module computes the *same* curve in a
single vectorised traversal of the chain-condensed level structure, with no
LP assembly and no solver at all.

The pass mirrors the condensation of :mod:`repro.lp.compiler` exactly:

1. per-vertex cost deltas (CALC durations, the constant overhead ``o`` and
   the per-message ``G`` byte cost folded in) are accumulated from every
   vertex back to its *anchor* — the nearest source or merge point — with
   the compiler's own :func:`~repro.lp.compiler._pointer_jump`;
2. convex hulls of ``(slope, intercept)`` lines are maintained **only at
   merge points** (an affine shift preserves the hull property along a
   chain, so chain vertices never materialise one).  Hulls live in one
   pooled array pair indexed by ``(start, len)`` per anchor; slot 0 holds
   the shared ``(0, 0)`` line of every source anchor;
3. merge points are processed level-synchronously (the same level grouping
   the simulator batches on): all rows of one level concatenate their
   predecessor hulls plus per-edge affine shifts into one segmented array
   and a single vectorised segmented upper-hull pass reduces them;
4. the sink completions are merged the same way into the final
   :class:`~repro.core.parametric.PiecewiseLinear` envelope.

Because hulls only keep lines that are maximal somewhere in ``[lo, hi]``,
the per-vertex state stays at most ``#breakpoints + 1`` lines — the paper's
own envelope bound — and dead hulls are compacted away once the last level
referencing them has been processed, so the pass runs inside the same fixed
memory budget as the streaming compile/simulate pipeline at million-rank
scale.

The result is numerically identical (well below the 1e-6 contract) to the
LP tangent envelope: at the LP optimum every symbolic variable other than
``l`` sits at its lower bound (= the ``params`` value), so folding those
bounds as constants reproduces the optimal objective for every ``L``.  The
engine therefore requires the **affinity contract** documented in
``src/repro/lp/README.md``: a global latency variable, no per-pair HLogGP
variables, and gap/overhead bounds that still equal ``params`` — anything
else falls back to the :class:`~repro.lp.parametric.ParametricLP` oracle
(``envelope_engine="auto"``) or raises (``envelope_engine="forward"``).
Artifact-store envelope keys deliberately exclude the engine choice, so
cached entries are shared across engines (see
:mod:`repro.artifacts.store`).
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..lp.parametric import EnvelopeOverflowError
from ..network.params import LogGPSParams
from ..schedgen.graph import EdgeKind, ExecutionGraph, VertexKind

__all__ = [
    "ENVELOPE_ENGINES",
    "forward_envelope",
    "forward_incompatibility",
    "resolve_envelope_engine",
    "forward_supports_modes",
]

#: the accepted values of every ``envelope_engine=`` knob.
ENVELOPE_ENGINES = ("auto", "forward", "lp")

#: iterations of the simultaneous neighbour-elimination before the segmented
#: hull falls back to the sequential per-segment stack scan.  Each pass
#: removes every interior line strictly below its neighbours' crossing, so
#: alternating-dominated inputs halve per pass; the cap only triggers on
#: adversarial stack-shaped inputs.
_MAX_HULL_PASSES = 50

#: pool compaction threshold: dead hull lines are garbage-collected once the
#: pool grows beyond this many entries *and* less than half of it is live.
_COMPACT_MIN_POOL = 4096

#: per-merge line sets at most this large skip the convex reduction inside
#: the level loop (slope dedup alone bounds them); larger sets always get
#: the full hull + domain clip, which keeps state linear at scale.
_REDUCE_SKIP = 8

#: below this vertex count the liveness/compaction bookkeeping costs more
#: than the pool it could reclaim, so it is skipped entirely.
_GC_MIN_VERTICES = 65_536


def _interval_error(l_min: float, l_max: float) -> ValueError:
    return ValueError(
        f"invalid latency interval [{l_min}, {l_max}]: "
        "require 0 <= l_min < l_max"
    )


# ---------------------------------------------------------------------------
# engine resolution / affinity contract
# ---------------------------------------------------------------------------


def _check_engine_name(engine: str) -> None:
    if engine not in ENVELOPE_ENGINES:
        raise ValueError(
            f"unknown envelope_engine {engine!r}; "
            f"expected one of {ENVELOPE_ENGINES}"
        )


def forward_incompatibility(graph_lp) -> str | None:
    """Why the forward engine cannot reproduce this LP's envelope.

    Returns ``None`` when the forward pass is exact for ``graph_lp`` —
    i.e. the LP satisfies the affinity contract (``T(L)`` depends on the
    single global latency variable only, every other symbolic bound still
    equals its ``params`` value).  Otherwise returns a human-readable
    reason, used verbatim in the ``envelope_engine="forward"`` error and to
    drive the ``"auto"`` fallback to the :class:`ParametricLP` oracle.
    """
    if graph_lp.latency is None:
        return (
            "the LP has no global latency variable "
            "(per-pair or constant latency mode)"
        )
    if graph_lp.pair_latency or graph_lp.pair_gap:
        return (
            "per-pair HLogGP variables break the single-parameter affinity "
            "in L"
        )
    if getattr(graph_lp, "graph", None) is None:
        return "the LP carries no execution graph to traverse"
    params = graph_lp.params
    gap = graph_lp.gap
    if gap is not None:
        lb = graph_lp.model.variables[gap.index].lb
        if lb != params.G:
            return (
                f"the gap lower bound ({lb}) was moved away from "
                f"params.G ({params.G})"
            )
    overhead = graph_lp.overhead
    if overhead is not None:
        lb = graph_lp.model.variables[overhead.index].lb
        if lb != params.o:
            return (
                f"the overhead lower bound ({lb}) was moved away from "
                f"params.o ({params.o})"
            )
    return None


def resolve_envelope_engine(engine: str, graph_lp) -> str:
    """Resolve an ``envelope_engine`` request against one :class:`GraphLP`.

    ``"lp"`` always resolves to itself; ``"forward"`` raises a
    :class:`ValueError` naming the violated affinity condition when the
    forward pass would not be exact; ``"auto"`` picks the forward pass when
    it is exact and silently falls back to the LP oracle otherwise.
    """
    _check_engine_name(engine)
    if engine == "lp":
        return "lp"
    reason = forward_incompatibility(graph_lp)
    if reason is None:
        return "forward"
    if engine == "forward":
        raise ValueError(
            f"envelope_engine='forward' cannot analyse this LP: {reason}; "
            "use envelope_engine='lp' or 'auto'"
        )
    return "lp"


def forward_supports_modes(build_kwargs: Mapping[str, object]) -> bool:
    """Whether a *fresh* ``build_lp(graph, params, **build_kwargs)`` would be
    forward-compatible.

    Lets sweep jobs skip the LP build entirely: a freshly built LP has every
    symbolic lower bound at its ``params`` value, so the affinity contract
    reduces to the mode knobs alone.  Unknown keywords conservatively
    disqualify the shortcut (the LP path will surface any real error).
    """
    known = {"latency_mode", "gap_mode", "overhead_mode", "name", "engine"}
    if any(key not in known for key in build_kwargs):
        return False
    return (
        build_kwargs.get("latency_mode", "global") == "global"
        and build_kwargs.get("gap_mode", "constant") in ("constant", "global")
        and build_kwargs.get("overhead_mode", "constant") in ("constant", "global")
    )


# ---------------------------------------------------------------------------
# vectorised segmented upper hulls
# ---------------------------------------------------------------------------


def _sequential_hulls(
    seg: np.ndarray, slope: np.ndarray, intercept: np.ndarray,
    lo: float, hi: float,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-segment stack-scan fallback (exact, Python loop per segment)."""
    from .parametric import Line, _upper_envelope

    out_seg: list[np.ndarray] = []
    out_slope: list[float] = []
    out_intercept: list[float] = []
    bounds = np.concatenate(
        [[0], np.flatnonzero(np.diff(seg)) + 1, [len(seg)]]
    )
    for a, b in zip(bounds[:-1], bounds[1:]):
        hull = _upper_envelope(
            [Line(float(s), float(c)) for s, c in zip(slope[a:b], intercept[a:b])],
            lo, hi,
        )
        out_seg.append(np.full(len(hull), seg[a], dtype=np.int64))
        out_slope.extend(line.slope for line in hull)
        out_intercept.extend(line.intercept for line in hull)
    return (
        np.concatenate(out_seg) if out_seg else seg,
        np.asarray(out_slope, dtype=np.float64),
        np.asarray(out_intercept, dtype=np.float64),
    )


def _drop_invisible_pieces(lines: list) -> list:
    """Drop hull pieces the LP tangent search could never discover.

    Many paths concurrent through (almost) one point produce exact hull
    pieces of near-zero validity width.  The
    :class:`~repro.lp.parametric.ParametricLP` search stops refining once a
    midpoint probe lies on both neighbouring tangents within its ``_close``
    tolerance, so such pieces never appear in the oracle's envelope.
    Applying the same tolerance here keeps the two engines structurally
    identical (same piece count and breakpoints), not just pointwise equal:
    an interior line is dropped when its maximum improvement over its
    neighbours — attained where the neighbours cross — is within the bound.
    """
    from ..lp.parametric import _ABS_TOL, _REL_TOL

    if len(lines) <= 2:
        return lines
    kept = [lines[0]]
    for line in lines[1:]:
        while len(kept) >= 2:
            prev, top = kept[-2], kept[-1]
            x = (line.intercept - prev.intercept) / (prev.slope - line.slope)
            crossing = prev.slope * x + prev.intercept
            improvement = top.slope * x + top.intercept - crossing
            if improvement <= _ABS_TOL + _REL_TOL * max(abs(crossing), 1.0):
                kept.pop()
            else:
                break
        kept.append(line)
    return kept


def _segmented_hulls(
    seg: np.ndarray, slope: np.ndarray, intercept: np.ndarray,
    lo: float, hi: float,
    *,
    reduce_over: int = 0,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Upper hull of every segment at once, clipped to ``[lo, hi]``.

    ``seg`` need not be sorted.  Returns ``(seg, slope, intercept)`` sorted
    by ``(seg, slope)`` with, per segment, exactly the lines of the convex
    upper envelope that are maximal somewhere in ``[lo, hi]`` (plus, in rare
    float-tie cases, lines touching the envelope at a single point — the
    callers' final :func:`~repro.core.parametric._upper_envelope` cleanup
    removes those from the returned curve).

    When ``reduce_over`` is positive and no segment holds more than that
    many lines after the slope dedup, the convex reduction and domain clip
    are skipped: keeping slope-deduplicated but not-yet-convex line sets is
    sound (the pointwise maximum is unchanged — that is all downstream
    levels consume), and for the small hulls that dominate real sweeps the
    dedup alone already bounds the set, so the extra passes are pure
    overhead.  Large segments always get the full reduction, which is what
    keeps the pooled state linear at million-rank scale.

    The reduction is a simultaneous neighbour elimination: a line is dropped
    when it lies *strictly* below the crossing of its two same-segment
    neighbours.  Strictness makes simultaneous removal safe — at any ``x``
    the highest removed line is strictly below one of its witnesses, and
    that witness cannot itself be removed at ``x`` — so the pointwise
    maximum is preserved by every pass.
    """
    if len(seg) == 0:
        return seg, slope, intercept
    order = np.lexsort((intercept, slope, seg))
    seg, slope, intercept = seg[order], slope[order], intercept[order]
    # slope-dedup: keep the largest intercept per (seg, slope) — the last of
    # each group under the lexsort above
    if len(seg) > 1:
        keep = np.empty(len(seg), dtype=bool)
        keep[-1] = True
        keep[:-1] = (seg[1:] != seg[:-1]) | (slope[1:] != slope[:-1])
        seg, slope, intercept = seg[keep], slope[keep], intercept[keep]

    if reduce_over > 0 and len(seg) <= reduce_over * max(
        1, int(seg[-1]) - int(seg[0]) + 1
    ):
        # cheap upper bound first: if even `#segments * reduce_over` lines
        # are not present, no segment can exceed the threshold
        return seg, slope, intercept
    if reduce_over > 0:
        lens = np.bincount(seg - seg[0])
        if int(lens.max(initial=0)) <= reduce_over:
            return seg, slope, intercept

    passes = 0
    while len(seg) >= 3:
        interior = (seg[1:-1] == seg[:-2]) & (seg[1:-1] == seg[2:])
        if not interior.any():
            break
        denom = slope[2:] - slope[:-2]  # > 0 wherever `interior` holds
        with np.errstate(divide="ignore", invalid="ignore"):
            x = (intercept[:-2] - intercept[2:]) / denom
            below = interior & (
                slope[1:-1] * x + intercept[1:-1]
                < slope[:-2] * x + intercept[:-2]
            )
        if not below.any():
            break
        if passes >= _MAX_HULL_PASSES:
            return _sequential_hulls(seg, slope, intercept, lo, hi)
        keep = np.ones(len(seg), dtype=bool)
        keep[1:-1] = ~below
        seg, slope, intercept = seg[keep], slope[keep], intercept[keep]
        passes += 1

    # domain clip: drop pieces whose validity interval misses [lo, hi]; the
    # piece containing `lo` always survives, so no segment empties out
    n = len(seg)
    if n > 1:
        same_prev = np.zeros(n, dtype=bool)
        same_prev[1:] = seg[1:] == seg[:-1]
        x_prev = np.full(n, -np.inf)
        idx = np.flatnonzero(same_prev)
        x_prev[idx] = (intercept[idx - 1] - intercept[idx]) / (
            slope[idx] - slope[idx - 1]
        )
        x_next = np.full(n, np.inf)
        x_next[idx - 1] = x_prev[idx]
        keep = (x_prev <= hi + 1e-15) & (x_next >= lo - 1e-15)
        seg, slope, intercept = seg[keep], slope[keep], intercept[keep]
    return seg, slope, intercept


# ---------------------------------------------------------------------------
# the forward pass
# ---------------------------------------------------------------------------


class _HullPool:
    """Pooled hull storage: ``(slope, intercept)`` runs addressed per anchor.

    Slot 0 is the shared ``(0, 0)`` line every source anchor points at, so
    sources cost no storage at all.  ``compact`` garbage-collects hulls of
    merge anchors whose last referencing level has passed.
    """

    def __init__(self, n: int) -> None:
        self.start = np.zeros(n, dtype=np.int64)
        self.length = np.ones(n, dtype=np.int64)
        self.slope = np.zeros(256, dtype=np.float64)
        self.intercept = np.zeros(256, dtype=np.float64)
        self.used = 1
        self.live = 1

    def gather(self, anchors: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Expand the hull runs of ``anchors``: returns ``(rep, idx, lens)``
        with ``rep`` mapping every expanded line back to its anchor position."""
        lens = self.length[anchors]
        total = int(lens.sum())
        offsets = np.arange(total, dtype=np.int64) - np.repeat(
            np.cumsum(lens) - lens, lens
        )
        idx = np.repeat(self.start[anchors], lens) + offsets
        rep = np.repeat(np.arange(len(anchors), dtype=np.int64), lens)
        return rep, idx, lens

    def append(self, vertices: np.ndarray, lens: np.ndarray,
               slope: np.ndarray, intercept: np.ndarray) -> None:
        need = self.used + len(slope)
        if need > len(self.slope):
            capacity = max(need, 2 * len(self.slope))
            self.slope = np.concatenate(
                [self.slope, np.empty(capacity - len(self.slope))]
            )
            self.intercept = np.concatenate(
                [self.intercept, np.empty(capacity - len(self.intercept))]
            )
        self.slope[self.used:need] = slope
        self.intercept[self.used:need] = intercept
        self.start[vertices] = self.used + np.concatenate(
            [[0], np.cumsum(lens[:-1])]
        )
        self.length[vertices] = lens
        self.used = need
        self.live += int(lens.sum())

    def retire(self, vertices: np.ndarray) -> None:
        """Mark the hulls of ``vertices`` dead (storage reclaimed on compact)."""
        if len(vertices):
            self.live -= int(self.length[vertices].sum())

    def compact(self, alive: np.ndarray) -> None:
        """Rewrite the pool to hold only slot 0 plus the hulls of ``alive``."""
        if self.used <= _COMPACT_MIN_POOL or 2 * self.live >= self.used:
            return
        rep, idx, lens = self.gather(alive)
        total = int(lens.sum())
        capacity = max(256, 2 * (total + 1))
        slope = np.empty(capacity)
        intercept = np.empty(capacity)
        slope[0] = 0.0
        intercept[0] = 0.0
        slope[1:total + 1] = self.slope[idx]
        intercept[1:total + 1] = self.intercept[idx]
        self.start[alive] = 1 + np.concatenate([[0], np.cumsum(lens[:-1])])
        self.slope = slope
        self.intercept = intercept
        self.used = total + 1
        self.live = total + 1


def forward_envelope(
    graph: ExecutionGraph,
    params: LogGPSParams,
    *,
    l_min: float = 0.0,
    l_max: float = 10_000.0,
    max_pieces: int = 50_000,
):
    """The exact ``T(L)`` envelope of ``graph`` on ``[l_min, l_max]``,
    computed in one level-synchronous traversal (no LP, no solver).

    All LogGPS parameters other than the latency are folded from ``params``
    as constants, exactly as the LP bakes them into its constraint constants
    (and as the optimum pins every symbolic bound).  Numerically identical
    to ``BatchedSweep(build_lp(graph, params), ...).envelope`` whenever the
    affinity contract holds — see this module's docstring and
    ``src/repro/lp/README.md``.

    ``max_pieces`` bounds the hull size at every vertex *and* of the final
    envelope; overflow raises :class:`EnvelopeOverflowError` like the other
    parametric engines.
    """
    if l_min < 0 or l_max <= l_min:
        raise _interval_error(l_min, l_max)
    if max_pieces < 1:
        raise ValueError(f"max_pieces must be positive, got {max_pieces}")
    lo, hi = float(l_min), float(l_max)

    from ..lp.compiler import _anchors, _pointer_jump
    from .parametric import Line, PiecewiseLinear, _upper_envelope

    n = graph.num_vertices
    m = graph.num_edges
    cost = graph.cost
    size = graph.size
    edge_src = graph.edge_src
    edge_dst = graph.edge_dst

    indeg = graph.in_degrees()
    topo_pos = graph.topo_positions()
    parent = graph.chain_parent()
    chain_eid = graph.chain_in_edge()
    is_comm_edge = np.asarray(graph.edge_kind) == int(EdgeKind.COMM)
    if m:
        bw_edge = size[edge_dst].astype(np.float64)
        bw_edge -= 1.0
        np.maximum(bw_edge, 0.0, out=bw_edge)
    else:
        bw_edge = np.zeros(0)

    # per-vertex deltas with everything but L folded constant, then chain
    # compression back to each anchor — the compiler's own machinery
    calc = np.asarray(graph.kind) == int(VertexKind.CALC)
    d_const = np.where(calc, cost, params.o)
    d_l = np.zeros(n, dtype=np.float64)
    chain_vertices = np.flatnonzero(chain_eid >= 0)
    chain_edges = chain_eid[chain_vertices]
    comm_chain = is_comm_edge[chain_edges] if m else np.zeros(0, dtype=bool)
    cv = chain_vertices[comm_chain]
    cv_eid = chain_edges[comm_chain]
    d_l[cv] = 1.0
    d_const[cv] += params.G * bw_edge[cv_eid]

    channels = [np.append(d_const, 0.0), np.append(d_l, 0.0)]
    _pointer_jump(n, parent, channels, None)
    anchor = _anchors(n, parent)
    acc_const, acc_l = channels

    # rows: one per (merge vertex, in-edge), exactly the compiled LP's layout
    merges = graph.merge_points()
    merges = merges[np.argsort(topo_pos[merges], kind="stable")]
    level = graph.level_of()
    mlevel = level[merges]  # non-decreasing: the order contract is level-major
    counts = indeg[merges].astype(np.int64)
    row_ptr = np.zeros(len(merges) + 1, dtype=np.int64)
    np.cumsum(counts, out=row_ptr[1:])
    total = int(row_ptr[-1])
    if total:
        local = np.arange(total, dtype=np.int64) - np.repeat(row_ptr[:-1], counts)
        merge_eids = graph._pred_edges[
            np.repeat(graph._pred_indptr[merges], counts) + local
        ]
        row_u = edge_src[merge_eids]
        e_comm = is_comm_edge[merge_eids]
        row_slope = acc_l[row_u] + e_comm
        row_const = acc_const[row_u] + params.G * np.where(
            e_comm, bw_edge[merge_eids], 0.0
        )
        row_anchor = anchor[row_u]
    else:
        row_slope = row_const = np.zeros(0)
        row_anchor = np.zeros(0, dtype=np.int64)

    sinks = np.asarray(graph.sinks(), dtype=np.int64)
    sink_anchor = anchor[sinks]

    # liveness: the last level whose rows reference each anchor's hull
    infinity = np.int64(graph.num_levels + 1)
    last_use = np.full(n, -1, dtype=np.int64)
    if total:
        np.maximum.at(last_use, row_anchor, np.repeat(mlevel, counts))
    last_use[sink_anchor] = infinity

    pool = _HullPool(n)
    overflow_hint = "narrow the latency interval or raise max_pieces"

    # liveness bookkeeping pays for itself only when the pool can outgrow the
    # graph; small sweeps skip it and keep every hull until the end
    gc = n >= _GC_MIN_VERTICES
    if gc and len(merges):
        death_order = np.argsort(last_use[merges], kind="stable")
        death_levels = last_use[merges][death_order]
        death_pos = 0
        alive_mask = np.zeros(len(merges), dtype=bool)
    reduce_over = min(_REDUCE_SKIP, max_pieces)

    if len(merges):
        bounds = np.concatenate(
            [[0], np.flatnonzero(np.diff(mlevel)) + 1, [len(merges)]]
        )
        for g0, g1 in zip(bounds[:-1], bounds[1:]):
            current_level = int(mlevel[g0])
            r0, r1 = int(row_ptr[g0]), int(row_ptr[g1])
            rep, idx, _ = pool.gather(row_anchor[r0:r1])
            seg_of_row = (
                np.repeat(np.arange(g0, g1, dtype=np.int64), counts[g0:g1]) - g0
            )
            line_seg = seg_of_row[rep]
            line_slope = pool.slope[idx] + row_slope[r0:r1][rep]
            line_intercept = pool.intercept[idx] + row_const[r0:r1][rep]
            hseg, hslope, hintercept = _segmented_hulls(
                line_seg, line_slope, line_intercept, lo, hi,
                reduce_over=reduce_over,
            )
            new_lens = np.bincount(hseg, minlength=g1 - g0)
            widest = int(new_lens.max(initial=0))
            if widest > max_pieces:
                vertex = int(merges[g0 + int(np.argmax(new_lens))])
                raise EnvelopeOverflowError(
                    f"envelope at vertex {vertex} has {widest} pieces "
                    f"(> {max_pieces}); {overflow_hint}"
                )
            group = merges[g0:g1]
            pool.append(group, new_lens, hslope, hintercept)
            if gc:
                # hulls whose last referencing level just ran are dead;
                # compact once more than half the pool is garbage
                alive_mask[g0:g1] = True
                end = int(
                    np.searchsorted(death_levels, current_level, side="right")
                )
                if end > death_pos:
                    dying = death_order[death_pos:end]
                    alive_mask[dying] = False
                    pool.retire(merges[dying])
                    death_pos = end
                    pool.compact(merges[alive_mask])

    # final reduction: every sink's completion is its anchor hull shifted by
    # the chain-compressed costs — one more segmented hull, one segment
    rep, idx, _ = pool.gather(sink_anchor)
    final_slope = pool.slope[idx] + acc_l[sinks][rep]
    final_intercept = pool.intercept[idx] + acc_const[sinks][rep]
    _, hslope, hintercept = _segmented_hulls(
        np.zeros(len(final_slope), dtype=np.int64), final_slope,
        final_intercept, lo, hi,
    )
    # the exact sequential pass also removes float-tie degenerate pieces, so
    # the returned curve is structurally identical to the LP path's
    final = _upper_envelope(
        [Line(float(s), float(c)) for s, c in zip(hslope, hintercept)], lo, hi
    )
    final = _drop_invisible_pieces(final)
    if len(final) > max_pieces:
        raise EnvelopeOverflowError(
            f"latency sweep envelope has {len(final)} pieces "
            f"(> {max_pieces}); {overflow_hint}"
        )
    return PiecewiseLinear(lines=final, lo=lo, hi=hi)
