"""Execution graph → linear program (Algorithm 1 of the paper).

The conversion walks the execution graph in topological order and maintains,
for every vertex ``v``, an affine expression ``T(v)`` for its completion time
in terms of the symbolic LogGPS parameters (by default only the latency
``l``; optionally also the per-byte gap ``G`` and the overhead ``o``) and of
the auxiliary ``y`` variables introduced at merge points:

* a vertex with a single predecessor ``u`` reached through edge ``e``
  completes at ``T(u) + edge_cost(e) + vertex_cost(v)``;
* a vertex with several predecessors introduces a fresh variable ``y_v``
  constrained by ``y_v >= T(u) + edge_cost(e)`` for every incoming edge, and
  completes at ``y_v + vertex_cost(v)``;
* a final variable ``t`` dominates the completion of every sink vertex and is
  minimised.

Under the (default) eager protocol the cost of a communication edge carrying
``s`` bytes is ``l + (s - 1) · G``; vertices of kind ``SEND``/``RECV`` cost
one overhead ``o`` each; ``CALC`` vertices cost their recorded duration.
Rendezvous messages have already been expanded into eager handshakes by the
schedule generator (see :mod:`repro.schedgen.builder`).

Heterogeneous networks (Appendix I) are supported through
``latency_mode="per_pair"`` / ``gap_mode="per_pair"``: every unordered rank
pair that communicates gets its own ``l_{i,j}`` / ``G_{i,j}`` decision
variable, whose reduced cost after optimisation is the pairwise sensitivity
``λ_L^{i,j}`` used by the rank-placement algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from ..lp.model import Constraint, LinearExpr, LPModel, LPSolution, Sense, Variable
from ..network.params import LogGPSParams
from ..schedgen.graph import EdgeKind, ExecutionGraph, VertexKind

__all__ = ["GraphLP", "build_lp", "COMPILED_ENGINE_THRESHOLD"]

#: Graph size (vertices) above which ``engine="auto"`` picks the vectorised
#: compiler.  The measured crossover is ≈ 40 vertices; the threshold sits
#: deliberately above it so toy graphs keep the simpler symbolic path even
#: on slower hardware (both engines are < 1 ms there either way).
COMPILED_ENGINE_THRESHOLD = 64


def _pair_key(i: int, j: int) -> tuple[int, int]:
    return (i, j) if i <= j else (j, i)


@dataclass
class GraphLP:
    """The LP generated from an execution graph, plus its decision variables.

    Attributes
    ----------
    model:
        The underlying :class:`~repro.lp.model.LPModel` (objective: minimise
        the makespan variable ``t``).
    t:
        The makespan variable.
    latency:
        The global latency variable ``l`` (``None`` in per-pair mode).
    gap:
        The global per-byte gap variable (``None`` unless requested).
    overhead:
        The overhead variable ``o`` (``None`` unless requested).
    pair_latency / pair_gap:
        Per-pair decision variables keyed by the unordered rank pair.
    params:
        The LogGPS configuration whose non-symbolic entries were baked into
        the constraint constants.
    """

    model: LPModel
    graph: ExecutionGraph
    params: LogGPSParams
    t: Variable
    latency: Variable | None = None
    gap: Variable | None = None
    overhead: Variable | None = None
    pair_latency: dict[tuple[int, int], Variable] = field(default_factory=dict)
    pair_gap: dict[tuple[int, int], Variable] = field(default_factory=dict)
    sink_rows: list[int] = field(default_factory=list)
    num_messages: int = 0

    @property
    def sink_constraints(self) -> list[Constraint]:
        """The ``t >= completion(sink)`` rows (materialised on demand)."""
        constraints = self.model.constraints
        return [constraints[index] for index in self.sink_rows]

    # -- bound management -----------------------------------------------------

    def set_latency_bound(self, L: float) -> None:
        """Constrain ``l >= L`` (the paper adds this row before each solve)."""
        if self.latency is None:
            raise ValueError("this LP was built in per-pair latency mode")
        self.latency = self.model.set_var_lb(self.latency, L)

    def set_pair_latency_bounds(self, matrix: Mapping[tuple[int, int], float] | np.ndarray) -> None:
        """Assign lower bounds to every per-pair latency variable."""
        if not self.pair_latency:
            raise ValueError("this LP was not built in per-pair latency mode")
        for (i, j), var in self.pair_latency.items():
            if isinstance(matrix, np.ndarray):
                bound = float(matrix[i, j])
            else:
                bound = float(matrix[_pair_key(i, j)])
            self.pair_latency[(i, j)] = self.model.set_var_lb(var, bound)

    def set_pair_gap_bounds(self, matrix: Mapping[tuple[int, int], float] | np.ndarray) -> None:
        """Assign lower bounds to every per-pair gap variable."""
        if not self.pair_gap:
            raise ValueError("this LP was not built with per-pair gap variables")
        for (i, j), var in self.pair_gap.items():
            if isinstance(matrix, np.ndarray):
                bound = float(matrix[i, j])
            else:
                bound = float(matrix[_pair_key(i, j)])
            self.pair_gap[(i, j)] = self.model.set_var_lb(var, bound)

    def set_gap_bound(self, G: float) -> None:
        """Constrain the symbolic per-byte gap from below."""
        if self.gap is None:
            raise ValueError("this LP was not built with a symbolic gap variable")
        self.gap = self.model.set_var_lb(self.gap, G)

    def set_overhead_bound(self, o: float) -> None:
        """Constrain the symbolic overhead from below."""
        if self.overhead is None:
            raise ValueError("this LP was not built with a symbolic overhead variable")
        self.overhead = self.model.set_var_lb(self.overhead, o)

    # -- solving convenience ----------------------------------------------------

    def solve_runtime(
        self, L: float | None = None, backend: str = "highs", **options: object
    ) -> LPSolution:
        """Minimise the makespan, optionally after setting ``l >= L``.

        ``options`` are forwarded to the backend (e.g. ``warm_start=``).
        """
        if L is not None:
            self.set_latency_bound(L)
        self._set_min_objective()
        return self.model.solve(backend=backend, **options)

    def solve_max_latency(
        self, runtime_bound: float, backend: str = "highs", **options: object
    ) -> LPSolution:
        """Maximise ``l`` subject to ``t <= runtime_bound`` (Section II-D2).

        The additional runtime constraint is removed again after solving so
        the object can be reused.
        """
        if self.latency is None:
            raise ValueError("latency tolerance requires the global latency variable")
        bound_constraint = self.model.add_le(
            self.t.to_expr(), runtime_bound, name="runtime_bound"
        )
        self.model.set_objective(self.latency, Sense.MAX)
        try:
            solution = self.model.solve(backend=backend, **options)
        finally:
            self.model.pop_constraint()
            self._renumber_constraints()
            self._set_min_objective()
        return solution

    def tangent_envelope(
        self,
        l_min: float,
        l_max: float,
        *,
        backend: str = "highs",
        max_solves: int = 10_000,
        max_pieces: int | None = None,
        engine=None,
    ):
        """Run the shared tangent-envelope search over the latency variable.

        Returns the :class:`~repro.lp.parametric.TangentEnvelope` of
        ``T(L)`` on ``[l_min, l_max]`` — the single entry point used by
        Algorithm 2 (:mod:`repro.core.critical_latency`) and the batched
        sweep engine.  Keeps the engine hand-off (objective reset, latency
        variable re-sync after the bound-moving probes) in one place.
        Callers that need solve counts even when the search raises can pass
        their own :class:`~repro.lp.parametric.ParametricLP` as ``engine``
        (``backend``/``max_solves`` are then ignored).
        """
        if self.latency is None:
            raise ValueError("this LP was built in per-pair latency mode")
        from ..lp.parametric import ParametricLP

        self._set_min_objective()
        if engine is None:
            engine = ParametricLP(self.model, backend=backend, max_solves=max_solves)
        try:
            return engine.tangent_envelope(
                self.latency, l_min, l_max, max_pieces=max_pieces
            )
        finally:
            # the probes moved the latency lower bound; re-sync the handle
            self.latency = self.model.variables[self.latency.index]

    def _set_min_objective(self) -> None:
        # no-op when already minimising t: set_objective bumps the model's
        # objective revision, which would force the assembler to rebuild the
        # objective vector on every solve of a sweep
        model = self.model
        if (
            model.sense is Sense.MIN
            and model.objective.constant == 0.0
            and model.objective.coeffs == {self.t.index: 1.0}
        ):
            return
        model.set_objective(self.t, Sense.MIN)

    def _renumber_constraints(self) -> None:
        for index, constraint in enumerate(self.model.constraints):
            constraint.index = index

    # -- derived metrics ----------------------------------------------------------

    def latency_sensitivity(self, solution: LPSolution) -> float:
        """``λ_L``: the reduced cost of the latency variable (Section II-D1)."""
        if self.latency is None:
            raise ValueError("global latency variable not present")
        return solution.reduced_cost(self.latency)

    def gap_sensitivity(self, solution: LPSolution) -> float:
        """``λ_G``: the reduced cost of the per-byte gap variable."""
        if self.gap is None:
            raise ValueError("gap variable not present")
        return solution.reduced_cost(self.gap)

    def pair_latency_sensitivities(self, solution: LPSolution) -> np.ndarray:
        """Matrix of pairwise latency sensitivities ``λ_L^{i,j}`` (Appendix I)."""
        n = self.graph.nranks
        matrix = np.zeros((n, n), dtype=np.float64)
        for (i, j), var in self.pair_latency.items():
            value = solution.reduced_cost(var)
            matrix[i, j] = value
            matrix[j, i] = value
        return matrix

    def pair_gap_sensitivities(self, solution: LPSolution) -> np.ndarray:
        """Matrix of pairwise bandwidth sensitivities ``λ_G^{i,j}``."""
        n = self.graph.nranks
        matrix = np.zeros((n, n), dtype=np.float64)
        for (i, j), var in self.pair_gap.items():
            value = solution.reduced_cost(var)
            matrix[i, j] = value
            matrix[j, i] = value
        return matrix


def build_lp(
    graph: ExecutionGraph,
    params: LogGPSParams,
    *,
    latency_mode: str = "global",
    gap_mode: str = "constant",
    overhead_mode: str = "constant",
    name: str = "llamp",
    engine: str = "auto",
) -> GraphLP:
    """Convert ``graph`` into a :class:`GraphLP` under configuration ``params``.

    Parameters
    ----------
    latency_mode:
        ``"global"`` — one symbolic variable ``l`` shared by every message
        (lower-bounded by ``params.L``); ``"per_pair"`` — one variable per
        communicating rank pair (HLogGP, Appendix I); ``"constant"`` — bake
        ``params.L`` into the constants (no latency variable).
    gap_mode:
        ``"constant"`` (default), ``"global"`` or ``"per_pair"`` for the
        per-byte gap ``G``.
    overhead_mode:
        ``"constant"`` (default) or ``"global"`` for the per-message CPU
        overhead ``o``.
    engine:
        ``"symbolic"`` — the per-vertex topological sweep (Algorithm 1 as
        written in the paper); ``"compiled"`` — the vectorised lowering of
        :mod:`repro.lp.compiler`, which emits the same LP structure directly
        as CSR arrays; ``"fused"`` — the analyze-only batch path: ``graph``
        is a :class:`~repro.schedgen.columnar.ScheduleBatches` spec whose op
        batches are lowered straight to CSR over a zero-copy, never-frozen
        execution graph (bit-identical output); ``"auto"`` (default) —
        fused whenever the input is a batch spec (the graph was never
        requested, so the frozen round-trip is pure overhead), otherwise
        compiled for graphs with at least :data:`COMPILED_ENGINE_THRESHOLD`
        vertices and symbolic below.
    """
    if latency_mode not in ("global", "per_pair", "constant"):
        raise ValueError(f"unknown latency_mode {latency_mode!r}")
    if gap_mode not in ("constant", "global", "per_pair"):
        raise ValueError(f"unknown gap_mode {gap_mode!r}")
    if overhead_mode not in ("constant", "global"):
        raise ValueError(f"unknown overhead_mode {overhead_mode!r}")
    if engine not in ("auto", "symbolic", "compiled", "fused"):
        raise ValueError(f"unknown engine {engine!r}")
    from ..schedgen.columnar import ScheduleBatches

    if isinstance(graph, ScheduleBatches):
        # batch-spec input: materialise the analyze-only graph (zero-copy,
        # cached on the spec) and prefer the direct CSR lowering — symbolic
        # remains available as the reference on the same graph
        graph = graph.graph_for(params)
        if engine in ("auto", "fused"):
            engine = "compiled"
    elif engine == "fused":
        # an already-built graph cannot skip its own construction; the CSR
        # emission is the same either way
        engine = "compiled"
    if engine == "auto":
        engine = (
            "compiled"
            if graph.num_vertices >= COMPILED_ENGINE_THRESHOLD
            else "symbolic"
        )

    if engine == "compiled":
        from ..lp.compiler import compile_lp

        compiled = compile_lp(
            graph,
            params,
            latency_mode=latency_mode,
            gap_mode=gap_mode,
            overhead_mode=overhead_mode,
            name=name,
        )
        return GraphLP(
            model=compiled.model,
            graph=graph,
            params=params,
            t=compiled.t,
            latency=compiled.latency,
            gap=compiled.gap,
            overhead=compiled.overhead,
            pair_latency=compiled.pair_latency,
            pair_gap=compiled.pair_gap,
            sink_rows=compiled.sink_rows,
            num_messages=compiled.num_messages,
        )

    model = LPModel(name=name)
    t_var = model.add_var("t", lb=0.0)

    latency_var: Variable | None = None
    gap_var: Variable | None = None
    overhead_var: Variable | None = None
    pair_latency: dict[tuple[int, int], Variable] = {}
    pair_gap: dict[tuple[int, int], Variable] = {}

    if latency_mode == "global":
        latency_var = model.add_var("l", lb=params.L)
    if gap_mode == "global":
        gap_var = model.add_var("G", lb=params.G)
    if overhead_mode == "global":
        overhead_var = model.add_var("o", lb=params.o)

    def pair_latency_var(i: int, j: int) -> Variable:
        key = _pair_key(i, j)
        if key not in pair_latency:
            pair_latency[key] = model.add_var(f"l_{key[0]}_{key[1]}", lb=params.L)
        return pair_latency[key]

    def pair_gap_var(i: int, j: int) -> Variable:
        key = _pair_key(i, j)
        if key not in pair_gap:
            pair_gap[key] = model.add_var(f"G_{key[0]}_{key[1]}", lb=params.G)
        return pair_gap[key]

    def overhead_expr() -> LinearExpr:
        if overhead_var is not None:
            return overhead_var.to_expr()
        return LinearExpr({}, params.o)

    def vertex_cost(v: int) -> LinearExpr:
        k = graph.kind[v]
        if k == VertexKind.CALC:
            return LinearExpr({}, float(graph.cost[v]))
        return overhead_expr()

    def comm_edge_cost(src: int, dst: int) -> LinearExpr:
        size = int(graph.size[dst])
        bandwidth_bytes = max(size - 1, 0)
        i, j = int(graph.rank[src]), int(graph.rank[dst])
        expr = LinearExpr()
        if latency_mode == "global":
            expr = expr + latency_var
        elif latency_mode == "per_pair":
            expr = expr + pair_latency_var(i, j)
        else:
            expr = expr + params.L
        if bandwidth_bytes:
            if gap_mode == "global":
                expr = expr + gap_var * float(bandwidth_bytes)
            elif gap_mode == "per_pair":
                expr = expr + pair_gap_var(i, j) * float(bandwidth_bytes)
            else:
                expr = expr + params.G * bandwidth_bytes
        return expr

    # topological sweep (Algorithm 1)
    completion: dict[int, LinearExpr] = {}
    num_messages = 0
    for v in graph.topological_order():
        v = int(v)
        incoming = list(graph.in_edges(v))
        if not incoming:
            completion[v] = vertex_cost(v)
            continue
        contributions: list[LinearExpr] = []
        for src, _, kind in incoming:
            base = completion[src]
            if kind is EdgeKind.COMM:
                num_messages += 1
                contributions.append(base + comm_edge_cost(src, v))
            else:
                contributions.append(base)
        if len(contributions) == 1:
            completion[v] = contributions[0] + vertex_cost(v)
        else:
            y = model.add_var(f"y{v}", lb=0.0)
            for contribution in contributions:
                model.add_constraint(y.to_expr() >= contribution)
            completion[v] = y.to_expr() + vertex_cost(v)

    sink_rows = []
    for sink in graph.sinks():
        constraint = model.add_constraint(t_var.to_expr() >= completion[int(sink)])
        sink_rows.append(constraint.index)

    model.set_objective(t_var, Sense.MIN)

    return GraphLP(
        model=model,
        graph=graph,
        params=params,
        t=t_var,
        latency=latency_var,
        gap=gap_var,
        overhead=overhead_var,
        pair_latency=pair_latency,
        pair_gap=pair_gap,
        sink_rows=sink_rows,
        num_messages=num_messages,
    )
