"""LLAMP core: LP generation, sensitivity/tolerance analysis, parametric engine."""

from .analyzer import LatencyAnalyzer, SensitivityCurve, ToleranceReport
from .critical_latency import Tangent, critical_latency_curve, find_critical_latencies
from .envelope import (
    ENVELOPE_ENGINES,
    forward_envelope,
    forward_incompatibility,
    resolve_envelope_engine,
)
from .graph_analysis import CriticalPathResult, analyze_critical_path, forward_pass
from .lp_builder import COMPILED_ENGINE_THRESHOLD, GraphLP, build_lp
from .parametric import (
    BatchedSweep,
    EnvelopeOverflowError,
    Line,
    ParametricAnalysis,
    PiecewiseLinear,
    batched_sweep_graphs,
    parametric_analysis,
)

__all__ = [
    "LatencyAnalyzer",
    "SensitivityCurve",
    "ToleranceReport",
    "GraphLP",
    "build_lp",
    "COMPILED_ENGINE_THRESHOLD",
    "CriticalPathResult",
    "analyze_critical_path",
    "forward_pass",
    "ParametricAnalysis",
    "PiecewiseLinear",
    "Line",
    "parametric_analysis",
    "BatchedSweep",
    "batched_sweep_graphs",
    "EnvelopeOverflowError",
    "find_critical_latencies",
    "critical_latency_curve",
    "Tangent",
    "ENVELOPE_ENGINES",
    "forward_envelope",
    "forward_incompatibility",
    "resolve_envelope_engine",
]
