"""MILC ``su3_rmd`` skeleton (MIMD Lattice Computation, lattice QCD).

``su3_rmd`` evolves an SU(3) gauge field with a molecular-dynamics
trajectory whose inner loop is a conjugate-gradient solve of the staggered
Dirac operator.  Communication-wise each CG iteration applies the
nearest-neighbour stencil on a 4-D lattice (eight neighbours) and reduces a
residual norm — which puts an ``MPI_Allreduce`` between every pair of
stencil applications and makes MILC the *least* latency-tolerant application
in the paper (Fig. 1, Fig. 9).

The paper runs MILC under *strong scaling* on a fixed ``16⁴`` lattice: the
per-rank computation shrinks with the rank count while the number of
dependent messages per iteration stays, so the latency tolerance drops
sharply at scale — this skeleton divides the fixed global volume among the
ranks to reproduce that trend.
"""

from __future__ import annotations

from ..mpi.api import VirtualComm, run_program
from ..mpi.program import Program
from ._base import AppDescriptor, cartesian_grid, halo_exchange, make_build, neighbor_ranks

__all__ = ["DESCRIPTOR", "program", "build"]

DESCRIPTOR = AppDescriptor(
    name="milc",
    full_name="MILC su3_rmd lattice QCD",
    scaling="strong",
    domains="lattice quantum chromodynamics",
)

#: microseconds of fermion-force / Dslash computation per lattice site and CG iteration
_COMPUTE_PER_SITE = 0.30
#: bytes moved per boundary site (SU(3) vector of 3 complex doubles)
_BYTES_PER_BOUNDARY_SITE = 48


def program(
    nranks: int,
    *,
    trajectories: int = 4,
    cg_iterations: int = 18,
    lattice_extent: int = 16,
    compute_per_site: float = _COMPUTE_PER_SITE,
) -> Program:
    """Record the MILC ``su3_rmd`` skeleton.

    ``lattice_extent`` is the global 4-D lattice edge (16 in the paper's
    ``16x16x16x16.chlat`` input); the global volume is divided among the
    ranks (strong scaling).  Each trajectory runs ``cg_iterations`` CG steps;
    every CG step is a 4-D halo exchange followed by a residual allreduce.
    """
    if trajectories < 1 or cg_iterations < 1:
        raise ValueError("trajectories and cg_iterations must be >= 1")
    dims = cartesian_grid(nranks, 4)
    global_volume = lattice_extent**4
    local_volume = max(global_volume // nranks, 1)
    # surface sites of the local 4-D sub-lattice (approximate: 8 faces of
    # volume^(3/4) sites each)
    face_sites = max(int(round(local_volume ** 0.75)), 1)
    halo_bytes = face_sites * _BYTES_PER_BOUNDARY_SITE
    cg_compute = local_volume * compute_per_site

    def rank_fn(comm: VirtualComm) -> None:
        neighbors = neighbor_ranks(comm.rank, dims, periodic=True)
        tag = 0
        for _traj in range(trajectories):
            # gauge-field update between solves
            comm.compute(cg_compute * 2.0)
            for _cg in range(cg_iterations):
                halo_exchange(
                    comm,
                    neighbors,
                    halo_bytes,
                    tag=tag,
                    overlap_compute=cg_compute * 0.3,
                )
                comm.compute(cg_compute * 0.7)
                comm.allreduce(8)  # residual norm
                tag += 1
            # trajectory-level plaquette measurement
            comm.allreduce(64)

    return run_program(rank_fn, nranks, app="milc", scaling=DESCRIPTOR.scaling)


build = make_build(program)
