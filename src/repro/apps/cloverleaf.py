"""CloverLeaf skeleton (2-D structured compressible Euler hydrodynamics).

CloverLeaf advances the compressible Euler equations on a 2-D staggered
grid.  Per time step the skeleton runs the PdV / flux / advection kernels,
exchanges one- and two-deep halos with the four face neighbours of a 2-D
process grid, and reduces the global time-step and field summaries.

CloverLeaf appears in Table II of the paper (128 processes, 162 K events).
"""

from __future__ import annotations

from ..mpi.api import VirtualComm, run_program
from ..mpi.program import Program
from ._base import AppDescriptor, cartesian_grid, halo_exchange, make_build, neighbor_ranks

__all__ = ["DESCRIPTOR", "program", "build"]

DESCRIPTOR = AppDescriptor(
    name="cloverleaf",
    full_name="CloverLeaf 2-D hydrodynamics mini-app",
    scaling="weak",
    domains="hydrodynamics",
)


def program(
    nranks: int,
    *,
    steps: int = 50,
    compute_per_step: float = 4500.0,
    halo_bytes: int = 12_288,
    summary_every: int = 10,
) -> Program:
    """Record the CloverLeaf skeleton (weak scaling, fixed tile per rank)."""
    if steps < 1:
        raise ValueError("steps must be >= 1")
    dims = cartesian_grid(nranks, 2)

    def rank_fn(comm: VirtualComm) -> None:
        neighbors = neighbor_ranks(comm.rank, dims, periodic=False)
        tag = 0
        for step in range(steps):
            # PdV + acceleration kernels, halo for velocity fields
            halo_exchange(comm, neighbors, halo_bytes, tag=tag,
                          overlap_compute=compute_per_step * 0.25)
            comm.compute(compute_per_step * 0.35)
            tag += 1
            # advection sweep, halo for energy/density fields
            halo_exchange(comm, neighbors, halo_bytes // 2, tag=tag,
                          overlap_compute=compute_per_step * 0.15)
            comm.compute(compute_per_step * 0.25)
            tag += 1
            comm.allreduce(8)  # time-step control
            if (step + 1) % summary_every == 0:
                comm.allreduce(56)  # field summary

    return run_program(rank_fn, nranks, app="cloverleaf", scaling=DESCRIPTOR.scaling)


build = make_build(program)
