"""HPCG skeleton (High Performance Conjugate Gradients benchmark).

HPCG runs a preconditioned conjugate-gradient solver on a 27-point stencil
with a multigrid V-cycle preconditioner.  Per CG iteration the skeleton

1. exchanges halos for the fine-level SpMV (six neighbours, posted
   non-blocking and overlapped with the local sparse matrix-vector product),
2. descends a small multigrid hierarchy, exchanging progressively smaller
   halos with less computation to hide them,
3. performs the dot-product ``MPI_Allreduce`` reductions of the CG update.

The paper runs HPCG under weak scaling (``48³`` rows per rank); its latency
tolerance even *improves* at scale thanks to communication/computation
overlap (Section III-C) — the generous ``overlap_fraction`` default models
exactly that property.
"""

from __future__ import annotations

from ..mpi.api import VirtualComm, run_program
from ..mpi.program import Program
from ._base import AppDescriptor, cartesian_grid, halo_exchange, make_build, neighbor_ranks

__all__ = ["DESCRIPTOR", "program", "build"]

DESCRIPTOR = AppDescriptor(
    name="hpcg",
    full_name="HPCG conjugate-gradient benchmark",
    scaling="weak",
    domains="sparse linear algebra",
)


def program(
    nranks: int,
    *,
    iterations: int = 45,
    local_dim: int = 48,
    compute_per_iteration: float = 6500.0,
    mg_levels: int = 3,
    overlap_fraction: float = 0.5,
    dot_products_per_iteration: int = 1,
) -> Program:
    """Record the HPCG skeleton.

    ``local_dim`` is the per-rank sub-grid edge (48 in the paper's runs);
    the fine-level halo is ``local_dim² · 8`` bytes and each multigrid level
    halves the edge.  ``dot_products_per_iteration`` controls how many 8-byte
    allreduces land on the critical path per CG iteration (HPCG fuses its
    dot products; use 2 or 3 for an unfused ablation).
    """
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    if mg_levels < 1:
        raise ValueError("mg_levels must be >= 1")
    dims = cartesian_grid(nranks, 3)
    fine_halo = local_dim * local_dim * 8

    # split the per-iteration compute between the fine SpMV and the MG levels
    spmv_compute = compute_per_iteration * 0.55
    mg_compute_total = compute_per_iteration - spmv_compute

    def rank_fn(comm: VirtualComm) -> None:
        neighbors = neighbor_ranks(comm.rank, dims, periodic=False)
        for it in range(iterations):
            # fine-level SpMV with overlapped halo
            halo_exchange(
                comm,
                neighbors,
                fine_halo,
                tag=it * (mg_levels + 1),
                overlap_compute=spmv_compute * overlap_fraction,
            )
            comm.compute(spmv_compute * (1.0 - overlap_fraction))
            # multigrid V-cycle: coarser levels, smaller halos, less compute
            level_compute = mg_compute_total / mg_levels
            for level in range(1, mg_levels):
                level_dim = max(local_dim >> level, 2)
                halo_exchange(
                    comm,
                    neighbors,
                    level_dim * level_dim * 8,
                    tag=it * (mg_levels + 1) + level,
                    overlap_compute=level_compute * overlap_fraction,
                )
                comm.compute(level_compute * (1.0 - overlap_fraction))
            comm.compute(level_compute)
            # CG dot products
            for _ in range(dot_products_per_iteration):
                comm.allreduce(8)

    return run_program(rank_fn, nranks, app="hpcg", scaling=DESCRIPTOR.scaling)


build = make_build(program)
