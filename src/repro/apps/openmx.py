"""OpenMX skeleton (density-functional theory, bulk diamond DIA64_DC example).

OpenMX solves the Kohn–Sham equations with localised orbitals.  Per SCF
(self-consistent field) iteration the skeleton

1. computes the local Hamiltonian/overlap contributions,
2. broadcasts updated density-matrix blocks from the root,
3. exchanges orbital coefficients with a ring of neighbours (divide-and-
   conquer partitioning of atoms),
4. reduces total-energy contributions and the charge-mixing residual with
   two ``MPI_Allreduce`` calls.

OpenMX appears in Table II of the paper (128 and 512 processes); the
skeleton preserves its collective-heavy character.
"""

from __future__ import annotations

from ..mpi.api import VirtualComm, run_program
from ..mpi.program import Program
from ._base import AppDescriptor, make_build

__all__ = ["DESCRIPTOR", "program", "build"]

DESCRIPTOR = AppDescriptor(
    name="openmx",
    full_name="OpenMX DFT (bulk diamond DIA64_DC)",
    scaling="strong",
    domains="electronic structure",
)


def program(
    nranks: int,
    *,
    scf_iterations: int = 18,
    global_compute_per_iteration: float = 120_000.0,
    bcast_bytes: int = 65_536,
    exchange_bytes: int = 16_384,
    reduce_bytes: int = 1_024,
) -> Program:
    """Record the OpenMX SCF skeleton (strong scaling)."""
    if scf_iterations < 1:
        raise ValueError("scf_iterations must be >= 1")
    compute = global_compute_per_iteration / nranks

    def rank_fn(comm: VirtualComm) -> None:
        ring_next = (comm.rank + 1) % comm.size
        ring_prev = (comm.rank - 1) % comm.size
        for it in range(scf_iterations):
            comm.compute(compute * 0.5)
            comm.bcast(bcast_bytes, root=0)
            comm.compute(compute * 0.3)
            if comm.size > 1:
                comm.sendrecv(ring_next, exchange_bytes, ring_prev, exchange_bytes,
                              send_tag=it, recv_tag=it)
            comm.compute(compute * 0.2)
            comm.allreduce(reduce_bytes)   # Hamiltonian / energy terms
            comm.allreduce(8)              # charge-mixing residual

    return run_program(rank_fn, nranks, app="openmx", scaling=DESCRIPTOR.scaling)


build = make_build(program)
