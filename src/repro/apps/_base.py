"""Shared infrastructure for the application skeletons.

Every application module exposes two functions:

``program(nranks, **knobs) -> Program``
    the communication/computation skeleton recorded through the virtual MPI
    API;
``build(nranks, params, **knobs) -> ExecutionGraph``
    convenience wrapper that also runs Schedgen with the given collective
    algorithms / protocol configuration.

The skeletons reproduce the *structure* of the paper's applications — which
neighbours talk to each other, how often collectives interleave with
point-to-point traffic, how much computation can overlap a transfer — with
computation costs calibrated so that the latency-tolerance orderings of the
paper (MILC ≪ LULESH < HPCG ≪ ICON) are preserved at laptop-friendly graph
sizes.  See DESIGN.md for the substitution rationale.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

from ..mpi.api import VirtualComm, run_program
from ..mpi.program import Program
from ..network.params import LogGPSParams
from ..schedgen.builder import ProtocolConfig, build_graph
from ..schedgen.collectives import CollectiveAlgorithms
from ..schedgen.graph import ExecutionGraph

__all__ = [
    "AppDescriptor",
    "cartesian_grid",
    "grid_coords",
    "grid_rank",
    "neighbor_ranks",
    "halo_exchange",
    "make_build",
]


@dataclass(frozen=True)
class AppDescriptor:
    """Metadata attached to every application skeleton."""

    name: str
    full_name: str
    scaling: str  # "weak" or "strong"
    domains: str


def cartesian_grid(nranks: int, ndims: int) -> tuple[int, ...]:
    """Factor ``nranks`` into a near-cubic ``ndims``-dimensional grid.

    Mirrors ``MPI_Dims_create``: the factors are as balanced as possible and
    sorted in non-increasing order.
    """
    if nranks < 1:
        raise ValueError(f"nranks must be >= 1, got {nranks}")
    if ndims < 1:
        raise ValueError(f"ndims must be >= 1, got {ndims}")
    dims = [1] * ndims
    remaining = nranks
    # repeatedly strip the smallest prime factor and assign it to the
    # currently smallest dimension
    factors: list[int] = []
    n = remaining
    f = 2
    while f * f <= n:
        while n % f == 0:
            factors.append(f)
            n //= f
        f += 1
    if n > 1:
        factors.append(n)
    for factor in sorted(factors, reverse=True):
        dims[dims.index(min(dims))] *= factor
    dims.sort(reverse=True)
    return tuple(dims)


def grid_coords(rank: int, dims: Sequence[int]) -> tuple[int, ...]:
    """Coordinates of ``rank`` in a row-major Cartesian grid."""
    coords = []
    remainder = rank
    for dim in reversed(dims):
        coords.append(remainder % dim)
        remainder //= dim
    return tuple(reversed(coords))


def grid_rank(coords: Sequence[int], dims: Sequence[int]) -> int:
    """Rank of the process at ``coords`` in a row-major Cartesian grid."""
    rank = 0
    for coord, dim in zip(coords, dims):
        if not 0 <= coord < dim:
            raise ValueError(f"coordinate {coord} out of range for dimension {dim}")
        rank = rank * dim + coord
    return rank


def neighbor_ranks(rank: int, dims: Sequence[int], *, periodic: bool = True) -> list[int]:
    """Face neighbours (±1 in every dimension) of ``rank`` on the grid."""
    coords = grid_coords(rank, dims)
    neighbors: list[int] = []
    for axis, dim in enumerate(dims):
        if dim == 1:
            continue
        for direction in (-1, +1):
            shifted = list(coords)
            value = coords[axis] + direction
            if periodic:
                value %= dim
            elif not 0 <= value < dim:
                continue
            shifted[axis] = value
            neighbor = grid_rank(shifted, dims)
            if neighbor != rank:
                neighbors.append(neighbor)
    return neighbors


def halo_exchange(
    comm: VirtualComm,
    neighbors: Sequence[int],
    message_size: int,
    *,
    tag: int,
    overlap_compute: float = 0.0,
) -> None:
    """Non-blocking halo exchange with every neighbour.

    Receives are posted first, sends follow, an optional slice of computation
    overlaps the transfers, and a single ``MPI_Waitall`` closes the phase —
    the canonical pattern of stencil codes (and the one whose overlap LLAMP
    quantifies through the flatness of the ``λ_L`` curve).
    """
    if not neighbors:
        if overlap_compute > 0:
            comm.compute(overlap_compute)
        return
    recvs = [comm.irecv(peer, message_size, tag=tag) for peer in neighbors]
    sends = [comm.isend(peer, message_size, tag=tag) for peer in neighbors]
    if overlap_compute > 0:
        comm.compute(overlap_compute)
    comm.waitall(recvs + sends)


def make_build(
    program_factory: Callable[..., Program]
) -> Callable[..., ExecutionGraph]:
    """Create the standard ``build(nranks, params, ...)`` wrapper for an app."""

    def build(
        nranks: int,
        params: LogGPSParams | None = None,
        *,
        algorithms: CollectiveAlgorithms | None = None,
        protocol: ProtocolConfig | None = None,
        builder_engine: str = "auto",
        **knobs,
    ) -> ExecutionGraph:
        program = program_factory(nranks, **knobs)
        return build_graph(
            program,
            algorithms=algorithms,
            protocol=protocol,
            params=params,
            builder_engine=builder_engine,
        )

    build.__doc__ = (
        "Build the execution graph of this application.\n\n"
        "Parameters are forwarded to the application's ``program`` factory; "
        "``params``/``algorithms``/``protocol`` configure Schedgen "
        "(collective algorithm selection and the eager/rendezvous threshold) "
        "and ``builder_engine`` picks the graph-construction path "
        "(``auto``/``legacy``/``columnar``)."
    )
    return build
