"""LULESH skeleton (Livermore Unstructured Lagrangian Explicit Shock Hydro).

LULESH advances an explicit hydrodynamics time loop on a 3-D structured
domain.  Per time step the proxy app

1. computes the Lagrangian nodal/element kinematics,
2. exchanges face halos with its (up to six) neighbours in the 3-D
   process grid — posted non-blocking, partially overlapped with the
   element-centred computation,
3. performs one 8-byte ``MPI_Allreduce`` to agree on the next time-step
   increment (the Courant/ hydro constraint).

The paper runs LULESH under *weak scaling* (``-s 16`` elements per rank,
1000 iterations); this skeleton keeps the per-rank problem size fixed, too,
so the latency tolerance stays roughly constant as ranks are added
(Section III-C).
"""

from __future__ import annotations

from ..mpi.api import VirtualComm, run_program
from ..mpi.program import Program
from ._base import AppDescriptor, cartesian_grid, halo_exchange, make_build, neighbor_ranks

__all__ = ["DESCRIPTOR", "program", "build"]

DESCRIPTOR = AppDescriptor(
    name="lulesh",
    full_name="LULESH 2.0 explicit shock hydrodynamics proxy",
    scaling="weak",
    domains="hydrodynamics",
)

#: bytes per element field exchanged across a face (3 fields of 8 bytes)
_BYTES_PER_FACE_ELEMENT = 24


def program(
    nranks: int,
    *,
    iterations: int = 40,
    side: int = 16,
    compute_per_iteration: float = 5200.0,
    overlap_fraction: float = 0.012,
    post_compute: float = 300.0,
) -> Program:
    """Record the LULESH skeleton.

    Parameters
    ----------
    iterations:
        Number of time steps (the paper uses 1000; the default keeps graphs
        laptop-sized — scale it up for paper-sized experiments).
    side:
        Elements per rank per dimension (``-s`` in LULESH); sets the halo
        message size ``side² · 24`` bytes.
    compute_per_iteration:
        Microseconds of element/nodal computation per time step and rank.
    overlap_fraction:
        Fraction of the per-step computation that can overlap the halo
        exchange (LULESH overlaps force computation with the nodal halo).
    post_compute:
        Microseconds of computation after the halo completes (EOS update)
        before the time-step allreduce.
    """
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    if side < 2:
        raise ValueError("side must be >= 2")
    dims = cartesian_grid(nranks, 3)
    face_bytes = side * side * _BYTES_PER_FACE_ELEMENT
    overlap = compute_per_iteration * overlap_fraction
    main_compute = compute_per_iteration - overlap - post_compute
    if main_compute < 0:
        raise ValueError("compute_per_iteration too small for the requested overlap")

    def rank_fn(comm: VirtualComm) -> None:
        neighbors = neighbor_ranks(comm.rank, dims, periodic=False)
        for it in range(iterations):
            comm.compute(main_compute)
            halo_exchange(
                comm,
                neighbors,
                face_bytes,
                tag=it,
                overlap_compute=overlap,
            )
            comm.compute(post_compute)
            comm.allreduce(8)  # global time-step constraint

    return run_program(rank_fn, nranks, app="lulesh", scaling=DESCRIPTOR.scaling)


build = make_build(program)
