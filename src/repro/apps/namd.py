"""NAMD / charm++-style skeleton with latency-adaptive overdecomposition.

Section VI of the paper (Fig. 12) examines NAMD, whose charm++ runtime
*dynamically* reschedules work: when traced under a higher injected latency,
the recorded schedule already overlaps more communication, so a trace taken
at ΔL = x µs predicts the application's behaviour around that latency much
better than a trace taken at ΔL = 0.

A static trace cannot capture the adaptation itself, but it can capture its
*result*.  This skeleton therefore takes the latency at which the trace is
(virtually) recorded as an input: the higher ``recorded_delta_us``, the more
of the per-step computation the runtime migrates in front of the waits
(larger overlap window), at the price of a small scheduling overhead.  The
Fig. 12 benchmark records the skeleton at several ΔL values and shows that
each trace is most accurate near its own recording point — the qualitative
message of the paper's figure.
"""

from __future__ import annotations

from ..mpi.api import VirtualComm, run_program
from ..mpi.program import Program
from ._base import AppDescriptor, cartesian_grid, halo_exchange, make_build, neighbor_ranks

__all__ = ["DESCRIPTOR", "program", "build"]

DESCRIPTOR = AppDescriptor(
    name="namd",
    full_name="NAMD molecular dynamics on a charm++-style adaptive runtime",
    scaling="weak",
    domains="molecular dynamics (dynamically scheduled)",
)


def program(
    nranks: int,
    *,
    steps: int = 50,
    compute_per_step: float = 1000.0,
    patch_bytes: int = 20_000,
    recorded_delta_us: float = 0.0,
    base_overlap_fraction: float = 0.05,
    adaptation_rate: float = 0.002,
    scheduling_overhead: float = 8.0,
) -> Program:
    """Record the NAMD skeleton as it would appear when traced at a given ΔL.

    ``recorded_delta_us`` is the injected latency active while the trace was
    recorded; the runtime responds by enlarging the overlap window by
    ``adaptation_rate`` per microsecond (clamped at 85 % of the step) and by
    paying ``scheduling_overhead`` µs of additional object-migration work per
    step.
    """
    if steps < 1:
        raise ValueError("steps must be >= 1")
    if recorded_delta_us < 0:
        raise ValueError("recorded_delta_us must be non-negative")
    dims = cartesian_grid(nranks, 3)
    overlap_fraction = min(
        0.85, base_overlap_fraction + adaptation_rate * recorded_delta_us
    )
    overhead = scheduling_overhead if recorded_delta_us > 0 else 0.0

    def rank_fn(comm: VirtualComm) -> None:
        neighbors = neighbor_ranks(comm.rank, dims, periodic=True)
        tag = 0
        for step in range(steps):
            # patch-boundary forces: the adaptive runtime moves an increasing
            # share of the compute in front of the waits
            halo_exchange(
                comm,
                neighbors,
                patch_bytes,
                tag=tag,
                overlap_compute=compute_per_step * overlap_fraction,
            )
            comm.compute(compute_per_step * (1.0 - overlap_fraction) + overhead)
            tag += 1
            if (step + 1) % 10 == 0:
                comm.allreduce(48)  # energy output

    return run_program(rank_fn, nranks, app="namd", scaling=DESCRIPTOR.scaling)


build = make_build(program)
