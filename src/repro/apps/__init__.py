"""Application skeletons reproducing the communication structure of the
applications evaluated in the paper.

Every module exposes ``program(nranks, **knobs) -> Program`` and
``build(nranks, params=None, algorithms=None, protocol=None, **knobs) ->
ExecutionGraph``; ``DESCRIPTOR`` carries the name / scaling mode used by the
benchmark harnesses.

=================  ======================================  ================
module             application                             paper appearance
=================  ======================================  ================
``lulesh``         LULESH 2.0 shock hydrodynamics          Figs. 1, 7, 9; Tables I, II
``hpcg``           HPCG conjugate gradients                Fig. 9; Table II
``milc``           MILC su3_rmd lattice QCD                Figs. 1, 9; Table II
``icon``           ICON weather & climate model            Figs. 1, 9, 10, 11, 20; Table II
``lammps``         LAMMPS EAM molecular dynamics           Fig. 7; Tables I, II
``npb``            NAS Parallel Benchmarks (7 kernels)     Fig. 7; Table I
``openmx``         OpenMX density-functional theory        Table II
``cloverleaf``     CloverLeaf hydrodynamics mini-app       Table II
``namd``           NAMD on a charm++-style runtime         Fig. 12
=================  ======================================  ================
"""

from . import cloverleaf, hpcg, icon, lammps, lulesh, milc, namd, npb, openmx
from ._base import AppDescriptor, cartesian_grid, halo_exchange, neighbor_ranks

#: the applications of the paper's validation section (Fig. 9 / Table II)
VALIDATION_APPS = {
    "lulesh": lulesh,
    "hpcg": hpcg,
    "milc": milc,
    "icon": icon,
    "lammps": lammps,
    "openmx": openmx,
    "cloverleaf": cloverleaf,
}

#: every application module by name
ALL_APPS = {
    **VALIDATION_APPS,
    "npb": npb,
    "namd": namd,
}

__all__ = [
    "AppDescriptor",
    "cartesian_grid",
    "neighbor_ranks",
    "halo_exchange",
    "VALIDATION_APPS",
    "ALL_APPS",
    "lulesh",
    "hpcg",
    "milc",
    "icon",
    "lammps",
    "npb",
    "openmx",
    "cloverleaf",
    "namd",
]
