"""NAS Parallel Benchmarks skeletons (BT, CG, EP, FT, LU, MG, SP).

The NPB kernels appear in the paper's Table I / Fig. 7, which compares the
runtime of LLAMP's LP solve against LogGOPSim across execution graphs of very
different sizes and communication structures.  The skeletons below reproduce
the *communication structure* of each kernel (what matters for that
comparison and for the latency analysis); problem-class constants are scaled
down so the whole suite stays laptop-sized.

=====  ===============================================================
BT/SP  alternating-direction implicit solvers: three sweep phases per
       iteration, each exchanging faces with the two neighbours of the
       corresponding dimension of a 3-D process grid
CG     conjugate gradient on an unstructured matrix: row/column exchanges
       plus two dot-product allreduces per iteration
EP     embarrassingly parallel: pure computation with a final reduction
FT     3-D FFT: one global transpose (``MPI_Alltoall``) per iteration
LU     pipelined SSOR wavefront: long chains of small dependent messages
MG     multigrid V-cycle: halo exchanges whose size shrinks with the level
=====  ===============================================================
"""

from __future__ import annotations

from ..mpi.api import VirtualComm, run_program
from ..mpi.program import Program
from ._base import AppDescriptor, cartesian_grid, grid_coords, grid_rank, halo_exchange, make_build, neighbor_ranks

__all__ = [
    "KERNELS",
    "program_bt",
    "program_cg",
    "program_ep",
    "program_ft",
    "program_lu",
    "program_mg",
    "program_sp",
    "build_bt",
    "build_cg",
    "build_ep",
    "build_ft",
    "build_lu",
    "build_mg",
    "build_sp",
    "program",
    "build",
]

DESCRIPTOR = AppDescriptor(
    name="npb",
    full_name="NAS Parallel Benchmarks (class-scaled skeletons)",
    scaling="strong",
    domains="CFD kernels",
)


def _sweep_exchange(comm: VirtualComm, dims, axis: int, size: int, tag: int,
                    compute: float) -> None:
    """One ADI sweep phase: exchange with the ±1 neighbours along ``axis``."""
    coords = grid_coords(comm.rank, dims)
    requests = []
    for direction in (-1, +1):
        if dims[axis] == 1:
            continue
        shifted = list(coords)
        shifted[axis] = (coords[axis] + direction) % dims[axis]
        peer = grid_rank(shifted, dims)
        if peer == comm.rank:
            continue
        requests.append(comm.irecv(peer, size, tag=tag))
        requests.append(comm.isend(peer, size, tag=tag))
    comm.compute(compute)
    if requests:
        comm.waitall(requests)


# ---------------------------------------------------------------------------
# BT / SP — ADI solvers
# ---------------------------------------------------------------------------

def _program_adi(nranks: int, *, iterations: int, compute_per_iteration: float,
                 face_bytes: int, name: str) -> Program:
    dims = cartesian_grid(nranks, 3)
    per_phase = compute_per_iteration / 3.0

    def rank_fn(comm: VirtualComm) -> None:
        tag = 0
        for _ in range(iterations):
            for axis in range(3):
                _sweep_exchange(comm, dims, axis, face_bytes, tag, per_phase)
                tag += 1
            comm.allreduce(40)  # residual norms

    return run_program(rank_fn, nranks, app=name, scaling="strong")


def program_bt(nranks: int, *, iterations: int = 30,
               compute_per_iteration: float = 9000.0, face_bytes: int = 20_000) -> Program:
    """NPB BT: block-tridiagonal ADI solver."""
    return _program_adi(
        nranks, iterations=iterations, compute_per_iteration=compute_per_iteration,
        face_bytes=face_bytes, name="npb_bt",
    )


def program_sp(nranks: int, *, iterations: int = 40,
               compute_per_iteration: float = 6000.0, face_bytes: int = 14_000) -> Program:
    """NPB SP: scalar-pentadiagonal ADI solver."""
    return _program_adi(
        nranks, iterations=iterations, compute_per_iteration=compute_per_iteration,
        face_bytes=face_bytes, name="npb_sp",
    )


# ---------------------------------------------------------------------------
# CG — conjugate gradient
# ---------------------------------------------------------------------------

def program_cg(nranks: int, *, iterations: int = 50,
               compute_per_iteration: float = 4000.0, exchange_bytes: int = 56_000) -> Program:
    """NPB CG: sparse matrix-vector products on a 2-D processor grid."""
    def rank_fn(comm: VirtualComm) -> None:
        # vector-exchange partner: pair adjacent ranks (an involution, so every
        # send has a matching receive on the partner)
        partner = comm.rank ^ 1
        if partner >= comm.size:
            partner = comm.rank
        ring_next = (comm.rank + 1) % comm.size
        ring_prev = (comm.rank - 1) % comm.size
        for it in range(iterations):
            comm.compute(compute_per_iteration * 0.7)
            if partner != comm.rank:
                comm.sendrecv(partner, exchange_bytes, partner, exchange_bytes,
                              send_tag=it, recv_tag=it)
            if comm.size > 1:
                comm.sendrecv(ring_next, exchange_bytes // 2, ring_prev,
                              exchange_bytes // 2, send_tag=10_000 + it, recv_tag=10_000 + it)
            comm.compute(compute_per_iteration * 0.3)
            comm.allreduce(8)   # rho
            comm.allreduce(8)   # alpha / norm

    return run_program(rank_fn, nranks, app="npb_cg", scaling="strong")


# ---------------------------------------------------------------------------
# EP — embarrassingly parallel
# ---------------------------------------------------------------------------

def program_ep(nranks: int, *, compute_total: float = 250_000.0, chunks: int = 8) -> Program:
    """NPB EP: random-number generation with a final reduction only."""

    def rank_fn(comm: VirtualComm) -> None:
        per_chunk = compute_total / chunks
        for _ in range(chunks):
            comm.compute(per_chunk)
        comm.allreduce(80)   # Gaussian pair counts
        comm.allreduce(16)   # sums
        comm.allreduce(8)    # verification value

    return run_program(rank_fn, nranks, app="npb_ep", scaling="strong")


# ---------------------------------------------------------------------------
# FT — 3-D FFT
# ---------------------------------------------------------------------------

def program_ft(nranks: int, *, iterations: int = 8,
               compute_per_iteration: float = 30_000.0, transpose_bytes: int = 64_000) -> Program:
    """NPB FT: per iteration one global transpose (alltoall) plus local FFTs.

    ``transpose_bytes`` is the per-peer payload of the alltoall.
    """

    def rank_fn(comm: VirtualComm) -> None:
        for _ in range(iterations):
            comm.compute(compute_per_iteration * 0.6)
            comm.alltoall(max(transpose_bytes // max(comm.size, 1), 64))
            comm.compute(compute_per_iteration * 0.4)
            comm.allreduce(16)  # checksum

    return run_program(rank_fn, nranks, app="npb_ft", scaling="strong")


# ---------------------------------------------------------------------------
# LU — pipelined SSOR
# ---------------------------------------------------------------------------

def program_lu(nranks: int, *, iterations: int = 25,
               compute_per_iteration: float = 5000.0, pencil_bytes: int = 4000) -> Program:
    """NPB LU: wavefront sweeps with chains of small dependent messages.

    Each iteration performs a lower-triangular sweep (receive from the
    north/west neighbours, compute, send to the south/east neighbours) and
    the mirrored upper-triangular sweep, producing the long message chains
    that make LU communication-bound and its execution graph deep.
    """
    dims = cartesian_grid(nranks, 2)
    blocks = 4  # pipeline depth per sweep
    per_block = compute_per_iteration / (2.0 * blocks)

    def rank_fn(comm: VirtualComm) -> None:
        coords = grid_coords(comm.rank, dims)
        north = grid_rank(((coords[0] - 1) % dims[0], coords[1]), dims) if dims[0] > 1 else -1
        south = grid_rank(((coords[0] + 1) % dims[0], coords[1]), dims) if dims[0] > 1 else -1
        west = grid_rank((coords[0], (coords[1] - 1) % dims[1]), dims) if dims[1] > 1 else -1
        east = grid_rank((coords[0], (coords[1] + 1) % dims[1]), dims) if dims[1] > 1 else -1
        tag = 0
        for _ in range(iterations):
            # lower sweep: wavefront travels from (0, 0) to (P-1, P-1)
            for _block in range(blocks):
                if north >= 0 and coords[0] > 0:
                    comm.recv(north, pencil_bytes, tag=tag)
                if west >= 0 and coords[1] > 0:
                    comm.recv(west, pencil_bytes, tag=tag + 1)
                comm.compute(per_block)
                if south >= 0 and coords[0] < dims[0] - 1:
                    comm.send(south, pencil_bytes, tag=tag)
                if east >= 0 and coords[1] < dims[1] - 1:
                    comm.send(east, pencil_bytes, tag=tag + 1)
            tag += 2
            # upper sweep: wavefront travels back
            for _block in range(blocks):
                if south >= 0 and coords[0] < dims[0] - 1:
                    comm.recv(south, pencil_bytes, tag=tag)
                if east >= 0 and coords[1] < dims[1] - 1:
                    comm.recv(east, pencil_bytes, tag=tag + 1)
                comm.compute(per_block)
                if north >= 0 and coords[0] > 0:
                    comm.send(north, pencil_bytes, tag=tag)
                if west >= 0 and coords[1] > 0:
                    comm.send(west, pencil_bytes, tag=tag + 1)
            tag += 2
            comm.allreduce(40)  # residual

    return run_program(rank_fn, nranks, app="npb_lu", scaling="strong")


# ---------------------------------------------------------------------------
# MG — multigrid
# ---------------------------------------------------------------------------

def program_mg(nranks: int, *, vcycles: int = 12, levels: int = 4,
               compute_per_cycle: float = 12_000.0, fine_halo_bytes: int = 33_000) -> Program:
    """NPB MG: V-cycles whose halo size shrinks by 4x per level."""
    dims = cartesian_grid(nranks, 3)
    per_level = compute_per_cycle / (2 * levels)

    def rank_fn(comm: VirtualComm) -> None:
        neighbors = neighbor_ranks(comm.rank, dims, periodic=True)
        tag = 0
        for _ in range(vcycles):
            # down the hierarchy
            for level in range(levels):
                size = max(fine_halo_bytes >> (2 * level), 64)
                halo_exchange(comm, neighbors, size, tag=tag, overlap_compute=per_level * 0.3)
                comm.compute(per_level * 0.7)
                tag += 1
            # back up
            for level in reversed(range(levels)):
                size = max(fine_halo_bytes >> (2 * level), 64)
                halo_exchange(comm, neighbors, size, tag=tag, overlap_compute=per_level * 0.3)
                comm.compute(per_level * 0.7)
                tag += 1
            comm.allreduce(8)  # norm

    return run_program(rank_fn, nranks, app="npb_mg", scaling="strong")


# ---------------------------------------------------------------------------
# dispatch helpers
# ---------------------------------------------------------------------------

KERNELS = ("bt", "cg", "ep", "ft", "lu", "mg", "sp")

_PROGRAMS = {
    "bt": program_bt,
    "cg": program_cg,
    "ep": program_ep,
    "ft": program_ft,
    "lu": program_lu,
    "mg": program_mg,
    "sp": program_sp,
}


def program(nranks: int, *, kernel: str = "cg", **knobs) -> Program:
    """Record one NPB kernel by name (one of :data:`KERNELS`)."""
    if kernel not in _PROGRAMS:
        raise ValueError(f"unknown NPB kernel {kernel!r}; expected one of {KERNELS}")
    return _PROGRAMS[kernel](nranks, **knobs)


build = make_build(program)
build_bt = make_build(program_bt)
build_cg = make_build(program_cg)
build_ep = make_build(program_ep)
build_ft = make_build(program_ft)
build_lu = make_build(program_lu)
build_mg = make_build(program_mg)
build_sp = make_build(program_sp)
