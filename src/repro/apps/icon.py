"""ICON skeleton (Icosahedral Nonhydrostatic Weather and Climate Model).

ICON's nonhydrostatic dynamical core advances the equations of motion on an
icosahedral grid.  Per model time step the skeleton

1. runs the (large) dynamical-core computation for its block of grid cells,
2. exchanges halo cells with its grid neighbours — ICON overlaps this well,
3. every few steps performs small global reductions (diagnostics, CFL/
   stability checks) through ``MPI_Allreduce``.

Large per-step computation plus sparse collectives make ICON by far the most
latency-tolerant application in the paper (over 650 µs before a 1 %
slowdown, Fig. 1).  ICON is evaluated under *strong scaling* (fixed R02B04
grid), so the per-rank compute shrinks — and with it the tolerance — as
ranks are added (Fig. 9, bottom row).

The allreduce algorithm is the knob of the paper's first case study
(Fig. 10): pass ``algorithms=CollectiveAlgorithms(allreduce="ring")`` to
:func:`build` to reproduce the comparison.
"""

from __future__ import annotations

from ..mpi.api import VirtualComm, run_program
from ..mpi.program import Program
from ._base import AppDescriptor, cartesian_grid, halo_exchange, make_build, neighbor_ranks

__all__ = ["DESCRIPTOR", "program", "build"]

DESCRIPTOR = AppDescriptor(
    name="icon",
    full_name="ICON icosahedral nonhydrostatic weather/climate model",
    scaling="strong",
    domains="numerical weather prediction, climate",
)

#: total dynamical-core computation per model step across all ranks [µs]
_GLOBAL_COMPUTE_PER_STEP = 200_000.0


def program(
    nranks: int,
    *,
    steps: int = 24,
    halo_bytes: int = 32_768,
    global_compute_per_step: float = _GLOBAL_COMPUTE_PER_STEP,
    reduction_interval: int = 2,
    substeps: int = 2,
) -> Program:
    """Record the ICON skeleton.

    ``global_compute_per_step`` is divided among the ranks (strong scaling).
    ``reduction_interval`` sets how many steps pass between the global
    diagnostic reductions; ``substeps`` is the number of dynamics sub-steps
    (each with its own halo exchange) per model step.
    """
    if steps < 1 or substeps < 1 or reduction_interval < 1:
        raise ValueError("steps, substeps and reduction_interval must be >= 1")
    dims = cartesian_grid(nranks, 2)
    compute_per_step = global_compute_per_step / nranks
    compute_per_substep = compute_per_step / substeps

    def rank_fn(comm: VirtualComm) -> None:
        neighbors = neighbor_ranks(comm.rank, dims, periodic=True)
        tag = 0
        for step in range(steps):
            for _sub in range(substeps):
                halo_exchange(
                    comm,
                    neighbors,
                    halo_bytes,
                    tag=tag,
                    overlap_compute=compute_per_substep * 0.7,
                )
                comm.compute(compute_per_substep * 0.3)
                tag += 1
            if (step + 1) % reduction_interval == 0:
                comm.allreduce(8)  # stability / diagnostic reduction

    return run_program(rank_fn, nranks, app="icon", scaling=DESCRIPTOR.scaling)


build = make_build(program)
