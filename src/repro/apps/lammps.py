"""LAMMPS skeleton (EAM metallic-solid molecular dynamics benchmark).

The EAM benchmark integrates Newton's equations for a block of copper atoms.
Per MD time step the skeleton

1. exchanges ghost atoms with the six face neighbours (forward
   communication), partially overlapped with the pair/EAM force computation,
2. returns ghost forces (reverse communication),
3. every ``neighbor_every`` steps rebuilds the neighbour lists, which
   involves an extra border exchange,
4. every ``thermo_every`` steps reduces thermodynamic output with an
   ``MPI_Allreduce``.

The paper runs LAMMPS under weak scaling with 256 000 atoms per rank; this
skeleton keeps the per-rank atom count fixed, too.
"""

from __future__ import annotations

from ..mpi.api import VirtualComm, run_program
from ..mpi.program import Program
from ._base import AppDescriptor, cartesian_grid, halo_exchange, make_build, neighbor_ranks

__all__ = ["DESCRIPTOR", "program", "build"]

DESCRIPTOR = AppDescriptor(
    name="lammps",
    full_name="LAMMPS EAM metallic solid benchmark",
    scaling="weak",
    domains="molecular dynamics",
)

#: microseconds of force computation per atom and step (scaled-down skeleton)
_COMPUTE_PER_ATOM = 0.012
#: bytes exchanged per ghost atom (position + type)
_BYTES_PER_GHOST_ATOM = 32


def program(
    nranks: int,
    *,
    steps: int = 60,
    atoms_per_rank: int = 256_000,
    neighbor_every: int = 10,
    thermo_every: int = 5,
    compute_per_atom: float = _COMPUTE_PER_ATOM,
) -> Program:
    """Record the LAMMPS EAM skeleton (weak scaling, fixed atoms per rank)."""
    if steps < 1:
        raise ValueError("steps must be >= 1")
    dims = cartesian_grid(nranks, 3)
    # ghost shell holds roughly the atoms within one cutoff of a face
    ghost_atoms = max(int(round(atoms_per_rank ** (2.0 / 3.0))), 1)
    halo_bytes = ghost_atoms * _BYTES_PER_GHOST_ATOM
    force_compute = atoms_per_rank * compute_per_atom

    def rank_fn(comm: VirtualComm) -> None:
        neighbors = neighbor_ranks(comm.rank, dims, periodic=True)
        tag = 0
        for step in range(steps):
            # forward communication of ghost positions, overlapped with the
            # local (owned-owned) force computation
            halo_exchange(
                comm,
                neighbors,
                halo_bytes,
                tag=tag,
                overlap_compute=force_compute * 0.55,
            )
            comm.compute(force_compute * 0.35)
            # reverse communication of ghost forces
            halo_exchange(comm, neighbors, halo_bytes, tag=tag + 1, overlap_compute=0.0)
            comm.compute(force_compute * 0.10)
            tag += 2
            if (step + 1) % neighbor_every == 0:
                halo_exchange(comm, neighbors, halo_bytes // 2, tag=tag, overlap_compute=0.0)
                tag += 1
            if (step + 1) % thermo_every == 0:
                comm.allreduce(48)  # energies / pressure

    return run_program(rank_fn, nranks, app="lammps", scaling=DESCRIPTOR.scaling)


build = make_build(program)
