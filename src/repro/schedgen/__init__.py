"""Schedgen reproduction: execution graphs, collective expansion, GOAL format."""

from .builder import (
    ProtocolConfig,
    ScheduleGenerator,
    UnmatchedMessageError,
    build_graph,
    resolve_builder_engine,
)
from .collectives import (
    COLLECTIVE_TAG_BASE,
    RENDEZVOUS_TAG_BASE,
    USER_TAG_LIMIT,
    CollectiveAlgorithms,
)
from .columnar import RankOpBatch, batches_from_program, batches_from_trace
from .goal import GoalFormatError, dump_goal, dumps_goal, load_goal, loads_goal
from .streaming import (
    DEFAULT_CHUNK_RECORDS,
    ChunkedBatches,
    batches_from_trace_chunked,
    load_goal_chunked,
)
from .graph import (
    EdgeKind,
    ExecutionGraph,
    GraphBuilder,
    GraphValidationError,
    VertexKind,
)

__all__ = [
    "VertexKind",
    "EdgeKind",
    "GraphBuilder",
    "ExecutionGraph",
    "GraphValidationError",
    "CollectiveAlgorithms",
    "COLLECTIVE_TAG_BASE",
    "RENDEZVOUS_TAG_BASE",
    "USER_TAG_LIMIT",
    "ScheduleGenerator",
    "ProtocolConfig",
    "build_graph",
    "resolve_builder_engine",
    "RankOpBatch",
    "batches_from_program",
    "batches_from_trace",
    "UnmatchedMessageError",
    "dump_goal",
    "dumps_goal",
    "load_goal",
    "loads_goal",
    "GoalFormatError",
    "ChunkedBatches",
    "batches_from_trace_chunked",
    "load_goal_chunked",
    "DEFAULT_CHUNK_RECORDS",
]
