"""Schedgen reproduction: execution graphs, collective expansion, GOAL format."""

from .builder import (
    ProtocolConfig,
    ScheduleGenerator,
    UnmatchedMessageError,
    build_graph,
)
from .collectives import COLLECTIVE_TAG_BASE, CollectiveAlgorithms
from .goal import GoalFormatError, dump_goal, dumps_goal, load_goal, loads_goal
from .graph import (
    EdgeKind,
    ExecutionGraph,
    GraphBuilder,
    GraphValidationError,
    VertexKind,
)

__all__ = [
    "VertexKind",
    "EdgeKind",
    "GraphBuilder",
    "ExecutionGraph",
    "GraphValidationError",
    "CollectiveAlgorithms",
    "COLLECTIVE_TAG_BASE",
    "ScheduleGenerator",
    "ProtocolConfig",
    "build_graph",
    "UnmatchedMessageError",
    "dump_goal",
    "dumps_goal",
    "load_goal",
    "loads_goal",
    "GoalFormatError",
]
