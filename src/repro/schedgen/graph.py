"""MPI execution graphs (the GOAL-like DAG used by LLAMP).

An execution graph is a directed acyclic graph with three vertex types
(Section II-A of the paper):

``CALC``
    a computation interval on one rank, with a fixed cost in microseconds;
``SEND``
    the CPU-side posting of a point-to-point send (costs ``o``);
``RECV``
    the CPU-side completion of a point-to-point receive (costs ``o``).

Edges come in two flavours:

``DEP``
    an intra-rank happens-before edge (program order, or a wait-for-request
    dependency);
``COMM``
    a communication edge from a ``SEND`` vertex to the matching ``RECV``
    vertex; its cost under LogGPS is ``L + (s - 1) G`` for eager messages and
    the rendezvous hand-shake for large ones.

The graph is built incrementally with :class:`GraphBuilder` and then frozen
into an :class:`ExecutionGraph` (NumPy arrays + CSR adjacency) for analysis,
simulation and LP generation.  The builder itself is *columnar*: vertex and
edge attributes live in growable NumPy buffers, and besides the classic
scalar ``add_calc``/``add_send``/``add_recv``/``add_dependency`` calls it
exposes bulk APIs (:meth:`GraphBuilder.add_vertices`,
:meth:`GraphBuilder.add_dependencies`, :meth:`GraphBuilder.add_comm_edges`)
that append whole rounds of a collective or a whole trace segment in one
call — the foundation of the columnar schedule-generation engine
(:mod:`repro.schedgen.columnar`).
"""

from __future__ import annotations

import enum
import hashlib
import os
import tempfile
from typing import Iterable, Iterator, Sequence

import numpy as np

__all__ = [
    "VertexKind",
    "EdgeKind",
    "GraphBuilder",
    "ExecutionGraph",
    "GraphValidationError",
]


class VertexKind(enum.IntEnum):
    """Vertex types of the execution DAG."""

    CALC = 0
    SEND = 1
    RECV = 2


class EdgeKind(enum.IntEnum):
    """Edge types of the execution DAG."""

    DEP = 0
    COMM = 1


class GraphValidationError(ValueError):
    """Raised when an execution graph violates a structural invariant."""


#: initial capacity of the builder's growable columns
_INITIAL_CAPACITY = 64


class GraphBuilder:
    """Incrementally build an execution graph on growable NumPy columns.

    Vertex attributes (kind, rank, cost, size, peer, tag) and edge triples
    (src, dst, kind) are stored as preallocated NumPy buffers that double in
    capacity when full, so both the scalar ``add_*`` methods and the bulk
    ``add_vertices``/``add_dependencies``/``add_comm_edges`` APIs append in
    amortised O(1) per element without any Python-list intermediary.  Call
    :meth:`freeze` to obtain an immutable :class:`ExecutionGraph`.

    Vertex ids are assigned densely in emission order; the frozen graph's
    vertex and edge arrays preserve exactly the order in which vertices and
    edges were added (see ``src/repro/schedgen/README.md`` for the ordering
    guarantee the schedule generators build on).

    With ``mmap_dir`` set, the growable columns live in disk-backed
    ``np.memmap`` buffers (one file per column inside a unique subdirectory
    of ``mmap_dir``) instead of anonymous RAM: growth re-maps the same file
    at a larger size with no copy, and the OS may write dirty column pages
    back and evict them under memory pressure, so schedules larger than RAM
    can be assembled.  The produced values are bit-identical either way;
    the caller owns ``mmap_dir`` and removes it once the builder *and any
    graph attached zero-copy over its columns* are done (on POSIX the files
    may be unlinked while still mapped).
    """

    __slots__ = (
        "nranks",
        "_nv",
        "_ne",
        "_vkind",
        "_vrank",
        "_vcost",
        "_vsize",
        "_vpeer",
        "_vtag",
        "_esrc",
        "_edst",
        "_ekind",
        "_label",
        "_mmap_dir",
    )

    def __init__(self, nranks: int, *, mmap_dir: str | os.PathLike | None = None) -> None:
        if nranks < 1:
            raise ValueError(f"nranks must be >= 1, got {nranks}")
        self.nranks = int(nranks)
        self._nv = 0
        self._ne = 0
        self._mmap_dir = (
            tempfile.mkdtemp(prefix="graphbuilder-", dir=os.fspath(mmap_dir))
            if mmap_dir is not None
            else None
        )
        self._vkind = self._alloc("_vkind", np.int8, _INITIAL_CAPACITY)
        self._vrank = self._alloc("_vrank", np.int32, _INITIAL_CAPACITY)
        self._vcost = self._alloc("_vcost", np.float64, _INITIAL_CAPACITY)
        self._vsize = self._alloc("_vsize", np.int64, _INITIAL_CAPACITY)
        self._vpeer = self._alloc("_vpeer", np.int32, _INITIAL_CAPACITY)
        self._vtag = self._alloc("_vtag", np.int64, _INITIAL_CAPACITY)
        self._esrc = self._alloc("_esrc", np.int64, _INITIAL_CAPACITY)
        self._edst = self._alloc("_edst", np.int64, _INITIAL_CAPACITY)
        self._ekind = self._alloc("_ekind", np.int8, _INITIAL_CAPACITY)
        self._label: dict[int, str] = {}

    # -- buffer management ---------------------------------------------------

    def _alloc(self, name: str, dtype, capacity: int, *, grow: bool = False) -> np.ndarray:
        if self._mmap_dir is None:
            return np.empty(capacity, dtype=dtype)
        # np.memmap with mode "r+" extends the file when the requested shape
        # is larger, and the new mapping sees the bytes already written
        # through the old one (same pages), so growth needs no copy
        path = os.path.join(self._mmap_dir, f"{name.lstrip('_')}.bin")
        return np.memmap(path, dtype=dtype, mode="r+" if grow else "w+",
                         shape=(capacity,))

    def _reserve_vertices(self, needed: int) -> None:
        capacity = len(self._vkind)
        if needed <= capacity:
            return
        new_capacity = max(needed, 2 * capacity)
        live = self._nv
        for name in ("_vkind", "_vrank", "_vcost", "_vsize", "_vpeer", "_vtag"):
            old = getattr(self, name)
            new = self._alloc(name, old.dtype, new_capacity, grow=True)
            if self._mmap_dir is None:
                new[:live] = old[:live]
            setattr(self, name, new)

    def _reserve_edges(self, needed: int) -> None:
        capacity = len(self._esrc)
        if needed <= capacity:
            return
        new_capacity = max(needed, 2 * capacity)
        live = self._ne
        for name in ("_esrc", "_edst", "_ekind"):
            old = getattr(self, name)
            new = self._alloc(name, old.dtype, new_capacity, grow=True)
            if self._mmap_dir is None:
                new[:live] = old[:live]
            setattr(self, name, new)

    # -- vertices -----------------------------------------------------------

    def _add_vertex(
        self,
        kind: VertexKind,
        rank: int,
        cost: float,
        size: int,
        peer: int,
        tag: int,
        label: str | None,
    ) -> int:
        if not 0 <= rank < self.nranks:
            raise ValueError(f"rank {rank} out of range [0, {self.nranks})")
        vid = self._nv
        self._reserve_vertices(vid + 1)
        self._vkind[vid] = int(kind)
        self._vrank[vid] = rank
        self._vcost[vid] = float(cost)
        self._vsize[vid] = int(size)
        self._vpeer[vid] = int(peer)
        self._vtag[vid] = int(tag)
        if label is not None:
            self._label[vid] = label
        self._nv = vid + 1
        return vid

    def add_calc(self, rank: int, cost: float, *, label: str | None = None) -> int:
        """Add a computation vertex with ``cost`` microseconds of work."""
        if cost < 0:
            raise ValueError(f"calc cost must be non-negative, got {cost}")
        return self._add_vertex(VertexKind.CALC, rank, cost, 0, -1, 0, label)

    def add_send(
        self, rank: int, peer: int, size: int, *, tag: int = 0, label: str | None = None
    ) -> int:
        """Add a send vertex (message of ``size`` bytes to ``peer``)."""
        if size < 0:
            raise ValueError(f"message size must be non-negative, got {size}")
        if not 0 <= peer < self.nranks:
            raise ValueError(f"send peer {peer} out of range [0, {self.nranks})")
        return self._add_vertex(VertexKind.SEND, rank, 0.0, size, peer, tag, label)

    def add_recv(
        self, rank: int, peer: int, size: int, *, tag: int = 0, label: str | None = None
    ) -> int:
        """Add a receive vertex (message of ``size`` bytes from ``peer``)."""
        if size < 0:
            raise ValueError(f"message size must be non-negative, got {size}")
        if not 0 <= peer < self.nranks:
            raise ValueError(f"recv peer {peer} out of range [0, {self.nranks})")
        return self._add_vertex(VertexKind.RECV, rank, 0.0, size, peer, tag, label)

    def add_vertices(
        self,
        kind,
        rank,
        *,
        cost=0.0,
        size=0,
        peer=-1,
        tag=0,
        count: int | None = None,
    ) -> np.ndarray:
        """Append a batch of vertices in one call; return their ids.

        Every argument may be a scalar (broadcast) or an array of one common
        length; ``count`` pins the batch size when all arguments are scalars.
        Vertex ids are assigned in array order, so the batch occupies the
        contiguous id range ``[num_vertices_before, num_vertices_before + n)``
        — the property the columnar emitters rely on.  Validation (rank and
        peer ranges, non-negative costs and sizes) runs vectorised over the
        whole batch; ``peer`` is only range-checked for non-``CALC`` rows.
        """
        n = count
        if n is None:
            for value in (kind, rank, cost, size, peer, tag):
                if np.ndim(value) == 1:
                    n = len(value)
                    break
        if n is None:
            raise ValueError(
                "add_vertices needs at least one array-valued column or count="
            )

        def column(value, dtype) -> np.ndarray:
            array = np.asarray(value, dtype=dtype)
            if array.ndim == 0:
                return np.broadcast_to(array, n)
            if array.ndim != 1 or len(array) != n:
                raise ValueError(
                    f"column length mismatch: expected {n}, got shape {array.shape}"
                )
            return array

        kinds = column(kind, np.int8)
        ranks = column(rank, np.int32)
        costs = column(cost, np.float64)
        sizes = column(size, np.int64)
        peers = column(peer, np.int32)
        tags = column(tag, np.int64)
        if n == 0:
            return np.empty(0, dtype=np.int64)
        if np.any((ranks < 0) | (ranks >= self.nranks)):
            raise ValueError(f"rank out of range [0, {self.nranks})")
        if np.any(costs < 0):
            raise ValueError("calc cost must be non-negative")
        if np.any(sizes < 0):
            raise ValueError("message size must be non-negative")
        p2p = kinds != int(VertexKind.CALC)
        if np.any(p2p & ((peers < 0) | (peers >= self.nranks))):
            raise ValueError(f"peer out of range [0, {self.nranks})")

        start = self._nv
        self._reserve_vertices(start + n)
        span = slice(start, start + n)
        self._vkind[span] = kinds
        self._vrank[span] = ranks
        self._vcost[span] = costs
        self._vsize[span] = sizes
        self._vpeer[span] = peers
        self._vtag[span] = tags
        self._nv = start + n
        return np.arange(start, start + n, dtype=np.int64)

    def set_label(self, vid: int, label: str) -> None:
        """Attach a label to an existing vertex (bulk-emit counterpart of
        the ``label=`` keyword of the scalar ``add_*`` methods)."""
        self._check_vertex(vid)
        self._label[int(vid)] = label

    # -- edges --------------------------------------------------------------

    def _append_edge(self, src: int, dst: int, kind: EdgeKind) -> None:
        eid = self._ne
        self._reserve_edges(eid + 1)
        self._esrc[eid] = src
        self._edst[eid] = dst
        self._ekind[eid] = int(kind)
        self._ne = eid + 1

    def add_dependency(self, src: int, dst: int) -> None:
        """Add an intra-rank happens-before edge ``src -> dst``."""
        self._check_vertex(src)
        self._check_vertex(dst)
        if src == dst:
            raise ValueError("self-dependency is not allowed")
        self._append_edge(src, dst, EdgeKind.DEP)

    def add_comm_edge(self, send: int, recv: int) -> None:
        """Add a communication edge from a ``SEND`` vertex to a ``RECV`` vertex."""
        self._check_vertex(send)
        self._check_vertex(recv)
        if self._vkind[send] != VertexKind.SEND:
            raise ValueError(f"vertex {send} is not a SEND vertex")
        if self._vkind[recv] != VertexKind.RECV:
            raise ValueError(f"vertex {recv} is not a RECV vertex")
        self._append_edge(send, recv, EdgeKind.COMM)

    def add_dependencies(self, src, dst) -> None:
        """Append a batch of ``DEP`` edges (``src[i] -> dst[i]``) in order."""
        src = np.asarray(src, dtype=np.int64).ravel()
        dst = np.asarray(dst, dtype=np.int64).ravel()
        if src.shape != dst.shape:
            raise ValueError(
                f"add_dependencies column length mismatch: {src.shape} vs {dst.shape}"
            )
        n = len(src)
        if n == 0:
            return
        if np.any((src < 0) | (src >= self._nv) | (dst < 0) | (dst >= self._nv)):
            raise ValueError("vertex id out of range")
        if np.any(src == dst):
            raise ValueError("self-dependency is not allowed")
        start = self._ne
        self._reserve_edges(start + n)
        span = slice(start, start + n)
        self._esrc[span] = src
        self._edst[span] = dst
        self._ekind[span] = int(EdgeKind.DEP)
        self._ne = start + n

    def add_comm_edges(self, send, recv) -> None:
        """Append a batch of ``COMM`` edges (``send[i] -> recv[i]``) in order."""
        send = np.asarray(send, dtype=np.int64).ravel()
        recv = np.asarray(recv, dtype=np.int64).ravel()
        if send.shape != recv.shape:
            raise ValueError(
                f"add_comm_edges column length mismatch: {send.shape} vs {recv.shape}"
            )
        n = len(send)
        if n == 0:
            return
        if np.any((send < 0) | (send >= self._nv) | (recv < 0) | (recv >= self._nv)):
            raise ValueError("vertex id out of range")
        bad_send = self._vkind[send] != int(VertexKind.SEND)
        if np.any(bad_send):
            offender = int(send[int(np.argmax(bad_send))])
            raise ValueError(f"vertex {offender} is not a SEND vertex")
        bad_recv = self._vkind[recv] != int(VertexKind.RECV)
        if np.any(bad_recv):
            offender = int(recv[int(np.argmax(bad_recv))])
            raise ValueError(f"vertex {offender} is not a RECV vertex")
        start = self._ne
        self._reserve_edges(start + n)
        span = slice(start, start + n)
        self._esrc[span] = send
        self._edst[span] = recv
        self._ekind[span] = int(EdgeKind.COMM)
        self._ne = start + n

    def chain(self, vertices: Sequence[int]) -> None:
        """Add dependency edges connecting ``vertices`` in order."""
        for u, v in zip(vertices, vertices[1:]):
            self.add_dependency(u, v)

    def _check_vertex(self, vid: int) -> None:
        if not 0 <= vid < self._nv:
            raise ValueError(f"vertex id {vid} out of range")

    # -- introspection ------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        return self._nv

    @property
    def num_edges(self) -> int:
        return self._ne

    def kind_column(self) -> np.ndarray:
        """View of the vertex-kind column (read-only; valid until the next append,
        which may reallocate the buffer — copy or consume immediately)."""
        return self._vkind[: self._nv]

    def rank_column(self) -> np.ndarray:
        """View of the vertex-rank column (read-only; valid until the next append,
        which may reallocate the buffer — copy or consume immediately)."""
        return self._vrank[: self._nv]

    def peer_column(self) -> np.ndarray:
        """View of the vertex-peer column (read-only; valid until the next append,
        which may reallocate the buffer — copy or consume immediately)."""
        return self._vpeer[: self._nv]

    def tag_column(self) -> np.ndarray:
        """View of the vertex-tag column (read-only; valid until the next append,
        which may reallocate the buffer — copy or consume immediately)."""
        return self._vtag[: self._nv]

    def size_column(self) -> np.ndarray:
        """View of the vertex-size column (read-only; valid until the next append,
        which may reallocate the buffer — copy or consume immediately)."""
        return self._vsize[: self._nv]

    def freeze(self, *, validate: bool = True) -> "ExecutionGraph":
        """Produce an immutable :class:`ExecutionGraph`."""
        nv, ne = self._nv, self._ne
        graph = ExecutionGraph(
            nranks=self.nranks,
            kind=self._vkind[:nv].copy(),
            rank=self._vrank[:nv].copy(),
            cost=self._vcost[:nv].copy(),
            size=self._vsize[:nv].copy(),
            peer=self._vpeer[:nv].copy(),
            tag=self._vtag[:nv].copy(),
            edge_src=self._esrc[:ne].copy(),
            edge_dst=self._edst[:ne].copy(),
            edge_kind=self._ekind[:ne].copy(),
            labels=dict(self._label),
        )
        if validate:
            graph.validate()
        return graph


class ExecutionGraph:
    """Immutable execution DAG with CSR adjacency and a cached topological order."""

    def __init__(
        self,
        nranks: int,
        kind: np.ndarray,
        rank: np.ndarray,
        cost: np.ndarray,
        size: np.ndarray,
        peer: np.ndarray,
        tag: np.ndarray,
        edge_src: np.ndarray,
        edge_dst: np.ndarray,
        edge_kind: np.ndarray,
        labels: dict[int, str] | None = None,
    ) -> None:
        self.nranks = int(nranks)
        self.kind = kind
        self.rank = rank
        self.cost = cost
        self.size = size
        self.peer = peer
        self.tag = tag
        self.edge_src = edge_src
        self.edge_dst = edge_dst
        self.edge_kind = edge_kind
        self.labels = labels or {}

        m = len(edge_src)
        # CSR adjacency is derived lazily (see the ``_succ_*``/``_pred_*``
        # properties): digest-only and analyze-only consumers never touch
        # the successor CSR, and skipping it keeps those paths free of the
        # O(E) indptr/indices/edge-id triple
        self._succ_csr: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None
        self._pred_csr: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None
        self._topo_order: np.ndarray | None = None
        self._topo_positions: np.ndarray | None = None
        self._level_indptr: np.ndarray | None = None
        self._level_of: np.ndarray | None = None
        self._chain_parent: np.ndarray | None = None
        self._chain_in_edge: np.ndarray | None = None
        self._content_digest: str | None = None
        self._level_plan_cache: dict[str, object] = {}
        self._num_edges = m

    # -- lazy CSR adjacency --------------------------------------------------
    # The six ``_succ_*``/``_pred_*`` names are the long-standing internal
    # API (the LP compiler and the simulators read them directly); they are
    # served as properties so the triples are only built on first use.

    def _succ(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        if self._succ_csr is None:
            self._succ_csr = _build_csr(self.edge_src, self.edge_dst, len(self.kind))
        return self._succ_csr

    def _pred(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        if self._pred_csr is None:
            self._pred_csr = _build_csr(self.edge_dst, self.edge_src, len(self.kind))
        return self._pred_csr

    @property
    def _succ_indptr(self) -> np.ndarray:
        return self._succ()[0]

    @property
    def _succ_indices(self) -> np.ndarray:
        return self._succ()[1]

    @property
    def _succ_edges(self) -> np.ndarray:
        return self._succ()[2]

    @property
    def _pred_indptr(self) -> np.ndarray:
        return self._pred()[0]

    @property
    def _pred_indices(self) -> np.ndarray:
        return self._pred()[1]

    @property
    def _pred_edges(self) -> np.ndarray:
        return self._pred()[2]

    # -- basic accessors ----------------------------------------------------

    @property
    def num_vertices(self) -> int:
        return len(self.kind)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    @property
    def num_events(self) -> int:
        """Total number of vertices, the "events" count reported in the paper."""
        return self.num_vertices

    @property
    def num_messages(self) -> int:
        """Number of communication edges (point-to-point messages)."""
        return int(np.count_nonzero(self.edge_kind == EdgeKind.COMM))

    def successors(self, vid: int) -> np.ndarray:
        """Vertex ids of the successors of ``vid``."""
        return self._succ_indices[self._succ_indptr[vid]: self._succ_indptr[vid + 1]]

    def predecessors(self, vid: int) -> np.ndarray:
        """Vertex ids of the predecessors of ``vid``."""
        return self._pred_indices[self._pred_indptr[vid]: self._pred_indptr[vid + 1]]

    def out_degree(self, vid: int) -> int:
        return int(self._succ_indptr[vid + 1] - self._succ_indptr[vid])

    def in_degree(self, vid: int) -> int:
        return int(self._pred_indptr[vid + 1] - self._pred_indptr[vid])

    def in_edges(self, vid: int) -> Iterator[tuple[int, int, EdgeKind]]:
        """Yield ``(src, dst, kind)`` for every incoming edge of ``vid``.

        Convenience iterator for small graphs and reference implementations;
        hot paths should use :meth:`edge_arrays` / the CSR views instead.
        """
        start, stop = self._pred_indptr[vid], self._pred_indptr[vid + 1]
        for pos in range(start, stop):
            eid = self._pred_edges[pos]
            yield (
                int(self.edge_src[eid]),
                vid,
                EdgeKind(int(self.edge_kind[eid])),
            )

    def edges(self) -> Iterator[tuple[int, int, EdgeKind]]:
        """Yield every edge as ``(src, dst, kind)`` (see :meth:`edge_arrays`
        for the array-native view used on hot paths)."""
        for eid in range(self._num_edges):
            yield (
                int(self.edge_src[eid]),
                int(self.edge_dst[eid]),
                EdgeKind(int(self.edge_kind[eid])),
            )

    def edge_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The raw ``(edge_src, edge_dst, edge_kind)`` columns, in edge order.

        This is the array-native alternative to the per-edge :meth:`edges` /
        :meth:`in_edges` tuple iterators: one call, zero copies (the arrays
        are the graph's own columns — treat them as read-only).  Edge ids used
        by the CSR views (``_pred_edges``/``_succ_edges``) index into these
        arrays.
        """
        return self.edge_src, self.edge_dst, self.edge_kind

    # -- content identity ----------------------------------------------------

    #: canonical (name, attribute, little-endian dtype) of every column that
    #: defines the graph's identity, in digest/serialisation order.  The CSR
    #: adjacency and all cached views are derived data and excluded.
    CONTENT_COLUMNS: tuple[tuple[str, str], ...] = (
        ("kind", "<i1"),
        ("rank", "<i4"),
        ("cost", "<f8"),
        ("size", "<i8"),
        ("peer", "<i4"),
        ("tag", "<i8"),
        ("edge_src", "<i8"),
        ("edge_dst", "<i8"),
        ("edge_kind", "<i1"),
    )

    def identity_columns(self) -> dict[str, np.ndarray]:
        """Every identity column as a canonical little-endian array, keyed by
        name in :attr:`CONTENT_COLUMNS` order.

        This is the array set that defines :meth:`content_digest`; columns
        already in canonical form are returned as-is (no copy), so the dict
        can feed serialisation and shared-memory export without duplicating
        the graph.  Treat the arrays as read-only.
        """
        return {
            name: np.ascontiguousarray(getattr(self, name), dtype=dtype)
            for name, dtype in self.CONTENT_COLUMNS
        }

    @classmethod
    def from_columns(
        cls,
        nranks: int,
        columns: "dict[str, np.ndarray]",
        labels: dict[int, str] | None = None,
        *,
        topo_order: np.ndarray | None = None,
        level_indptr: np.ndarray | None = None,
        content_digest: str | None = None,
        validate: bool = False,
    ) -> "ExecutionGraph":
        """Attach a graph directly over pre-frozen identity columns.

        The inverse of :meth:`identity_columns`: ``columns`` maps every
        :attr:`CONTENT_COLUMNS` name to its array, which is adopted
        **without copying** — zero-copy attach over shared-memory or
        memory-mapped views is the intended use (the columns should be
        read-only in that case).  An already-known level structure and
        content digest can be re-attached so neither is re-derived; pass
        ``validate=True`` only for untrusted columns (frozen graphs were
        validated when first built).
        """
        missing = [name for name, _ in cls.CONTENT_COLUMNS if name not in columns]
        if missing:
            raise ValueError(f"from_columns is missing identity columns: {missing}")
        graph = cls(
            nranks=nranks,
            labels=dict(labels or {}),
            **{name: columns[name] for name, _ in cls.CONTENT_COLUMNS},
        )
        if topo_order is not None and level_indptr is not None:
            graph._topo_order = np.asarray(topo_order, dtype=np.int64)
            graph._level_indptr = np.asarray(level_indptr, dtype=np.int64)
        if content_digest is not None:
            graph._content_digest = content_digest
        if validate:
            graph.validate()
        return graph

    def content_digest(self) -> str:
        """A stable sha256 hex digest of the graph's defining content.

        The digest covers ``nranks``, every column of
        :attr:`CONTENT_COLUMNS` as canonical little-endian bytes, and the
        labels in ascending vertex order, behind a versioned domain prefix.
        Because the legacy and columnar schedule-generation engines produce
        bit-identical frozen graphs (the deterministic order contract), the
        same schedule hashes identically regardless of how it was built —
        which makes the digest a sound :mod:`repro.artifacts` cache key.
        Cached after the first call (the graph is immutable).
        """
        if self._content_digest is None:
            h = hashlib.sha256()
            h.update(b"repro:execution-graph:v1\0")
            h.update(int(self.nranks).to_bytes(8, "little"))
            for name, dtype in self.CONTENT_COLUMNS:
                h.update(name.encode("ascii") + b"\0")
                # hash through the buffer protocol: a column already in
                # canonical layout (including a read-only memmap) is fed to
                # sha256 without the tobytes() copy
                column = np.ascontiguousarray(getattr(self, name), dtype=dtype)
                h.update(column.data)
            for vid in sorted(self.labels):
                h.update(int(vid).to_bytes(8, "little", signed=True))
                h.update(self.labels[vid].encode("utf-8") + b"\0")
            self._content_digest = h.hexdigest()
        return self._content_digest

    def vertices_of_rank(self, rank: int) -> np.ndarray:
        """Vertex ids that belong to ``rank``."""
        return np.flatnonzero(self.rank == rank)

    def sources(self) -> np.ndarray:
        """Vertices with no predecessors."""
        return np.flatnonzero(self.in_degrees() == 0)

    def sinks(self) -> np.ndarray:
        """Vertices with no successors."""
        return np.flatnonzero(self.out_degrees() == 0)

    # -- precomputed structural views (consumed by the LP compiler) ----------

    def in_degrees(self) -> np.ndarray:
        """In-degree of every vertex as one array (no per-vertex calls)."""
        return np.diff(self._pred_indptr)

    def out_degrees(self) -> np.ndarray:
        """Out-degree of every vertex as one array."""
        return np.diff(self._succ_indptr)

    def merge_points(self) -> np.ndarray:
        """Vertices with two or more predecessors (LP merge variables)."""
        return np.flatnonzero(self.in_degrees() >= 2)

    def chain_parent(self) -> np.ndarray:
        """The unique predecessor of every single-predecessor vertex, else -1.

        Together with :meth:`chain_in_edge` this describes the in-forest of
        single-predecessor chain segments whose roots are the sources and
        merge points; the LP compiler path-compresses costs along it.
        """
        if self._chain_parent is None:
            self._build_chain_views()
        return self._chain_parent

    def chain_in_edge(self) -> np.ndarray:
        """Edge id of the unique incoming edge of chain vertices, else -1."""
        if self._chain_in_edge is None:
            self._build_chain_views()
        return self._chain_in_edge

    def _build_chain_views(self) -> None:
        n = self.num_vertices
        parent = np.full(n, -1, dtype=np.int64)
        in_edge = np.full(n, -1, dtype=np.int64)
        single = np.flatnonzero(self.in_degrees() == 1)
        if single.size:
            eids = self._pred_edges[self._pred_indptr[single]]
            parent[single] = self.edge_src[eids]
            in_edge[single] = eids
        self._chain_parent = parent
        self._chain_in_edge = in_edge

    def topo_positions(self) -> np.ndarray:
        """Position of every vertex inside :meth:`topological_order` (cached)."""
        if self._topo_positions is None:
            order = self.topological_order()
            positions = np.empty(self.num_vertices, dtype=np.int64)
            positions[order] = np.arange(self.num_vertices, dtype=np.int64)
            self._topo_positions = positions
        return self._topo_positions

    # -- algorithms ----------------------------------------------------------

    def topological_order(self) -> np.ndarray:
        """Return *the* canonical topological ordering of the vertex ids (cached).

        The order follows the **deterministic order contract** shared by the
        LP compiler's variable ordering, the simulators and the symbolic
        Algorithm 1 sweep: vertices are sorted **level-major** (by longest-path
        depth, see :meth:`topo_levels`) and **vertex-id-minor** within a
        level.  It is served from the vectorised level structure — there is no
        per-vertex Kahn loop.
        """
        if self._topo_order is None:
            self._compute_levels()
        return self._topo_order

    def topo_levels(self) -> tuple[np.ndarray, np.ndarray]:
        """The topological *level* structure ``(indptr, order)`` (cached).

        ``order`` is :meth:`topological_order`; level ``k`` consists of the
        vertices ``order[indptr[k]:indptr[k + 1]]``, in ascending vertex id.
        Level ``k`` contains exactly the vertices whose longest incoming path
        has ``k`` edges, so all predecessors of a level-``k`` vertex live in
        levels ``< k`` — whole levels can be processed at once (the
        foundation of the level-synchronous simulation engine,
        :mod:`repro.simulator.columnar`).

        Computed by vectorised CSR frontier peeling: repeatedly emit the
        in-degree-zero frontier and decrement the in-degrees of its
        successors with one ``np.unique`` pass per level.
        """
        if self._level_indptr is None:
            self._compute_levels()
        return self._level_indptr, self._topo_order

    def level_of(self) -> np.ndarray:
        """The topological level of every vertex as one array (cached)."""
        if self._level_of is None:
            indptr, order = self.topo_levels()
            widths = np.diff(indptr)
            level = np.empty(self.num_vertices, dtype=np.int64)
            level[order] = np.repeat(
                np.arange(len(widths), dtype=np.int64), widths
            )
            self._level_of = level
        return self._level_of

    @property
    def num_levels(self) -> int:
        """Number of topological levels (the graph's longest-path depth + 1)."""
        return len(self.topo_levels()[0]) - 1

    #: frontier width below which the peeling loop leaves NumPy: each level
    #: costs a fixed ~20 array operations, so narrow-deep graphs (per-rank
    #: chains) are cheaper to finish with plain list arithmetic
    _LIST_PEEL_WIDTH = 32

    def _compute_levels(self) -> None:
        n = self.num_vertices
        indeg = np.diff(self._pred_indptr)
        succ_indptr = self._succ_indptr
        succ_indices = self._succ_indices
        frontier = np.flatnonzero(indeg == 0)
        indeg = indeg.copy()
        parts: list[np.ndarray] = []
        bounds: list[int] = [0]
        done = 0
        while frontier.size >= self._LIST_PEEL_WIDTH:
            parts.append(frontier)
            done += len(frontier)
            bounds.append(done)
            starts = succ_indptr[frontier]
            counts = succ_indptr[frontier + 1] - starts
            total = int(counts.sum())
            if not total:
                frontier = np.empty(0, dtype=np.int64)
                break
            shift = np.cumsum(counts) - counts
            targets = succ_indices[
                np.repeat(starts - shift, counts) + np.arange(total, dtype=np.int64)
            ]
            uniq, dec = np.unique(targets, return_counts=True)
            remaining = indeg[uniq] - dec
            indeg[uniq] = remaining
            frontier = uniq[remaining == 0]
        if frontier.size:
            # narrow frontier: finish in list space (one-way hand-off) — the
            # per-level NumPy overhead dominates once levels hold only a few
            # vertices, e.g. deep per-rank op chains
            indeg_list = indeg.tolist()
            indptr_list = succ_indptr.tolist()
            succ_list = succ_indices.tolist()
            wave = sorted(frontier.tolist())
            while wave:
                parts.append(np.asarray(wave, dtype=np.int64))
                done += len(wave)
                bounds.append(done)
                nxt: list[int] = []
                for v in wave:
                    for u in succ_list[indptr_list[v]: indptr_list[v + 1]]:
                        remaining = indeg_list[u] - 1
                        indeg_list[u] = remaining
                        if not remaining:
                            nxt.append(u)
                nxt.sort()
                wave = nxt
        if done != n:
            raise GraphValidationError(
                f"graph contains a cycle: only {done} of {n} vertices were ordered"
            )
        order = (
            np.concatenate(parts).astype(np.int64, copy=False)
            if parts
            else np.empty(0, dtype=np.int64)
        )
        self._topo_order = order
        self._level_indptr = np.asarray(bounds, dtype=np.int64)

    def validate(self) -> None:
        """Check structural invariants; raise :class:`GraphValidationError` otherwise.

        All checks run vectorised over the vertex/edge columns — there is no
        per-edge Python loop, so validating a trace-scale graph costs a few
        array passes plus the (cached) topological sort.
        """
        n = self.num_vertices
        if n == 0:
            raise GraphValidationError("execution graph has no vertices")
        if np.any((self.rank < 0) | (self.rank >= self.nranks)):
            raise GraphValidationError("vertex with rank outside [0, nranks)")
        if np.any(self.cost < 0):
            raise GraphValidationError("vertex with negative cost")
        if self._num_edges:
            if np.any((self.edge_src < 0) | (self.edge_src >= n)):
                raise GraphValidationError("edge source out of range")
            if np.any((self.edge_dst < 0) | (self.edge_dst >= n)):
                raise GraphValidationError("edge destination out of range")
        # communication edges must connect SEND -> RECV across matching ranks
        comm = self.edge_kind == EdgeKind.COMM
        comm_ids = np.flatnonzero(comm)
        if comm_ids.size:
            src = self.edge_src[comm_ids]
            dst = self.edge_dst[comm_ids]
            bad_src = self.kind[src] != int(VertexKind.SEND)
            bad_dst = self.kind[dst] != int(VertexKind.RECV)
            bad_peer = (self.peer[src] != self.rank[dst]) | (
                self.peer[dst] != self.rank[src]
            )
            bad_size = self.size[src] != self.size[dst]
            bad_any = bad_src | bad_dst | bad_peer | bad_size
            if np.any(bad_any):
                at = int(np.argmax(bad_any))
                eid, s, d = int(comm_ids[at]), int(src[at]), int(dst[at])
                if bad_src[at]:
                    raise GraphValidationError(f"comm edge {eid} source {s} is not SEND")
                if bad_dst[at]:
                    raise GraphValidationError(f"comm edge {eid} target {d} is not RECV")
                if bad_peer[at]:
                    raise GraphValidationError(
                        f"comm edge {eid}: peer/rank mismatch between send {s} and recv {d}"
                    )
                raise GraphValidationError(
                    f"comm edge {eid}: size mismatch ({int(self.size[s])} != {int(self.size[d])})"
                )
        # every SEND/RECV must participate in exactly one comm edge
        send_count = np.zeros(n, dtype=np.int64)
        recv_count = np.zeros(n, dtype=np.int64)
        np.add.at(send_count, self.edge_src[comm], 1)
        np.add.at(recv_count, self.edge_dst[comm], 1)
        sends = np.flatnonzero(self.kind == VertexKind.SEND)
        recvs = np.flatnonzero(self.kind == VertexKind.RECV)
        if np.any(send_count[sends] != 1):
            bad = sends[send_count[sends] != 1]
            raise GraphValidationError(f"unmatched SEND vertices: {bad[:10].tolist()}")
        if np.any(recv_count[recvs] != 1):
            bad = recvs[recv_count[recvs] != 1]
            raise GraphValidationError(f"unmatched RECV vertices: {bad[:10].tolist()}")
        # acyclicity (computes and caches the topological order)
        self.topological_order()

    def message_edges(self) -> np.ndarray:
        """Edge indices of all communication edges."""
        return np.flatnonzero(self.edge_kind == EdgeKind.COMM)

    def longest_message_chain(self) -> int:
        """Length (in messages) of the longest chain of dependent messages.

        This bounds the latency sensitivity ``λ_L`` (Equation 3 of the
        paper): no path can cross more communication edges than this.
        """
        n = self.num_vertices
        if not n:
            return 0
        depth = [0] * n
        indptr = self._pred_indptr.tolist()
        pred_edges = self._pred_edges.tolist()
        edge_src = self.edge_src.tolist()
        is_comm = (self.edge_kind == EdgeKind.COMM).tolist()
        for v in self.topological_order().tolist():
            start, stop = indptr[v], indptr[v + 1]
            best = 0
            for pos in range(start, stop):
                eid = pred_edges[pos]
                candidate = depth[edge_src[eid]] + (1 if is_comm[eid] else 0)
                if candidate > best:
                    best = candidate
            depth[v] = best
        return max(depth)

    # -- export --------------------------------------------------------------

    def to_networkx(self):
        """Export to a :class:`networkx.DiGraph` (vertex/edge attributes preserved)."""
        import networkx as nx

        g = nx.DiGraph(nranks=self.nranks)
        for vid in range(self.num_vertices):
            g.add_node(
                vid,
                kind=VertexKind(int(self.kind[vid])).name,
                rank=int(self.rank[vid]),
                cost=float(self.cost[vid]),
                size=int(self.size[vid]),
                peer=int(self.peer[vid]),
                tag=int(self.tag[vid]),
                label=self.labels.get(vid, ""),
            )
        for src, dst, ekind in self.edges():
            g.add_edge(src, dst, kind=ekind.name)
        return g

    def stats(self) -> dict[str, int]:
        """Vertex/edge counts by type, used in reports and tests."""
        return {
            "vertices": self.num_vertices,
            "edges": self.num_edges,
            "calc": int(np.count_nonzero(self.kind == VertexKind.CALC)),
            "send": int(np.count_nonzero(self.kind == VertexKind.SEND)),
            "recv": int(np.count_nonzero(self.kind == VertexKind.RECV)),
            "comm_edges": self.num_messages,
            "dep_edges": self.num_edges - self.num_messages,
            "nranks": self.nranks,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        s = self.stats()
        return (
            f"ExecutionGraph(nranks={self.nranks}, vertices={s['vertices']}, "
            f"messages={s['comm_edges']})"
        )


def chain_condensed_levels(graph: "ExecutionGraph") -> tuple[np.ndarray, np.ndarray]:
    """Compute ``(level_indptr, order)`` via the chain-condensed DAG.

    Produces exactly the level structure of
    :meth:`ExecutionGraph.topo_levels` — longest-path levels, vertices sorted
    level-major / vertex-id-minor — but without the per-level frontier peel.
    Single-predecessor chain vertices have ``level(v) = level(anchor) +
    depth`` where ``anchor`` is the nearest source/merge ancestor, so only
    the condensed DAG over sources and merge points needs relaxation:

    1. anchor/depth for every chain vertex by pointer jumping (O(log chain)),
    2. wave relaxation of merge levels over the condensed edges
       (one condensed edge per merge in-edge, weight ``depth(src) + 1``),
    3. ``level = level[anchor] + depth`` and one stable argsort.

    Longest-path levels are unique, and a stable sort by level reproduces the
    deterministic order contract bit-for-bit, so the result is
    interchangeable with the peeled structure.  Intended for graphs whose
    construction is trusted (the fused analyze-only path); unlike the peel it
    is not a general cycle detector, though an undrained condensed DAG — a
    cycle through merge points — still raises.
    """
    n = graph.num_vertices
    if n == 0:
        return np.zeros(1, dtype=np.int64), np.empty(0, dtype=np.int64)
    indeg = graph.in_degrees()
    parent = graph.chain_parent()

    # -- 1. anchor + depth of every vertex (pointer jumping) -----------------
    is_chain = indeg == 1
    ids = np.arange(n, dtype=np.int64)
    anchor = np.where(is_chain, parent, ids)
    depth = is_chain.astype(np.int64)
    # Vertex ids are emission-ordered, so the dominant chain shape — a rank's
    # consecutive compute ops — is a contiguous id run whose links satisfy
    # parent == id - 1.  Collapse those runs in one O(n) pass (anchor = the
    # last non-run vertex at or before each position, depth = the distance),
    # which leaves the pointer-jumping loop only the sparse non-contiguous
    # links (cross-segment continuations): O(log #segments) iterations
    # instead of O(log chain-length).  The seed is a valid partial
    # compression, so the fixpoint — and the final levels — are unchanged.
    run = is_chain & (parent == ids - 1)
    if run.any():
        base = np.maximum.accumulate(np.where(run, np.int64(-1), ids))
        anchor = np.where(run, base, anchor)
        depth = np.where(run, ids - base, depth)
    # After the seed only the sparse cross-segment links remain unresolved,
    # so jump on that index subset instead of re-scanning the full arrays.
    active = np.flatnonzero(is_chain[anchor])
    while active.size:
        a = anchor[active]
        depth[active] += depth[a]
        anchor[active] = anchor[a]
        active = active[is_chain[anchor[active]]]

    # -- 2. wave relaxation of merge levels over the condensed DAG -----------
    level = np.zeros(n, dtype=np.int64)
    merges = np.flatnonzero(indeg >= 2)
    num_final = 0
    if merges.size:
        # one condensed edge per merge in-edge: anchor(src) -> merge,
        # weight depth(src) + 1
        starts = graph._pred_indptr[merges]
        counts = indeg[merges]
        total = int(counts.sum())
        shift = np.cumsum(counts) - counts
        eids = graph._pred_edges[
            np.repeat(starts - shift, counts) + np.arange(total, dtype=np.int64)
        ]
        src = graph.edge_src[eids]
        e_anchor = anchor[src]
        e_weight = depth[src] + 1
        e_target = np.repeat(merges, counts)
        # group condensed edges by anchor (CSR) for per-wave gathering
        a_counts = np.bincount(e_anchor, minlength=n)
        a_indptr = np.zeros(n + 1, dtype=np.int64)
        a_indptr[1:] = np.cumsum(a_counts)
        a_order = np.argsort(e_anchor, kind="stable")
        w_sorted = e_weight[a_order]
        t_sorted = e_target[a_order]
        remaining = np.zeros(n, dtype=np.int64)
        remaining[merges] = counts
        wave = np.flatnonzero(indeg == 0)
        while wave.size:
            w_starts = a_indptr[wave]
            w_counts = a_counts[wave]
            w_total = int(w_counts.sum())
            if not w_total:
                break
            w_shift = np.cumsum(w_counts) - w_counts
            idx = np.repeat(w_starts - w_shift, w_counts) + np.arange(
                w_total, dtype=np.int64
            )
            tgt = t_sorted[idx]
            cand = np.repeat(level[wave], w_counts) + w_sorted[idx]
            np.maximum.at(level, tgt, cand)
            uniq, dec = np.unique(tgt, return_counts=True)
            rem = remaining[uniq] - dec
            remaining[uniq] = rem
            wave = uniq[rem == 0]
            num_final += len(wave)
        if num_final != merges.size:
            raise GraphValidationError(
                "graph contains a cycle: only "
                f"{num_final} of {merges.size} merge points were levelled"
            )

    # -- 3. full levels + one stable sort ------------------------------------
    level = level[anchor] + depth
    order = np.argsort(level, kind="stable")
    widths = np.bincount(level)
    indptr = np.zeros(len(widths) + 1, dtype=np.int64)
    indptr[1:] = np.cumsum(widths)
    return indptr, order


def _build_csr(
    src: np.ndarray, dst: np.ndarray, n: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Build a CSR adjacency (indptr, indices, edge ids) keyed by ``src``."""
    m = len(src)
    indptr = np.zeros(n + 1, dtype=np.int64)
    if m == 0:
        return indptr, np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    counts = np.bincount(src, minlength=n)
    indptr[1:] = np.cumsum(counts)
    order = np.argsort(src, kind="stable")
    indices = dst[order].astype(np.int64, copy=False)
    edge_ids = order.astype(np.int64, copy=False)
    return indptr, indices, edge_ids
