"""MPI execution graphs (the GOAL-like DAG used by LLAMP).

An execution graph is a directed acyclic graph with three vertex types
(Section II-A of the paper):

``CALC``
    a computation interval on one rank, with a fixed cost in microseconds;
``SEND``
    the CPU-side posting of a point-to-point send (costs ``o``);
``RECV``
    the CPU-side completion of a point-to-point receive (costs ``o``).

Edges come in two flavours:

``DEP``
    an intra-rank happens-before edge (program order, or a wait-for-request
    dependency);
``COMM``
    a communication edge from a ``SEND`` vertex to the matching ``RECV``
    vertex; its cost under LogGPS is ``L + (s - 1) G`` for eager messages and
    the rendezvous hand-shake for large ones.

The graph is built incrementally with :class:`GraphBuilder` (plain Python
lists, cheap appends) and then frozen into an :class:`ExecutionGraph`
(NumPy arrays + CSR adjacency) for analysis, simulation and LP generation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

import numpy as np

__all__ = [
    "VertexKind",
    "EdgeKind",
    "GraphBuilder",
    "ExecutionGraph",
    "GraphValidationError",
]


class VertexKind(enum.IntEnum):
    """Vertex types of the execution DAG."""

    CALC = 0
    SEND = 1
    RECV = 2


class EdgeKind(enum.IntEnum):
    """Edge types of the execution DAG."""

    DEP = 0
    COMM = 1


class GraphValidationError(ValueError):
    """Raised when an execution graph violates a structural invariant."""


@dataclass
class GraphBuilder:
    """Incrementally build an execution graph.

    The builder stores vertices and edges in Python lists; call
    :meth:`freeze` to obtain an immutable :class:`ExecutionGraph` backed by
    NumPy arrays.
    """

    nranks: int
    # vertex attribute columns
    _kind: list[int] = field(default_factory=list)
    _rank: list[int] = field(default_factory=list)
    _cost: list[float] = field(default_factory=list)
    _size: list[int] = field(default_factory=list)
    _peer: list[int] = field(default_factory=list)
    _tag: list[int] = field(default_factory=list)
    _label: dict[int, str] = field(default_factory=dict)
    # edges
    _edge_src: list[int] = field(default_factory=list)
    _edge_dst: list[int] = field(default_factory=list)
    _edge_kind: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.nranks < 1:
            raise ValueError(f"nranks must be >= 1, got {self.nranks}")

    # -- vertices -----------------------------------------------------------

    def _add_vertex(
        self,
        kind: VertexKind,
        rank: int,
        cost: float,
        size: int,
        peer: int,
        tag: int,
        label: str | None,
    ) -> int:
        if not 0 <= rank < self.nranks:
            raise ValueError(f"rank {rank} out of range [0, {self.nranks})")
        vid = len(self._kind)
        self._kind.append(int(kind))
        self._rank.append(rank)
        self._cost.append(float(cost))
        self._size.append(int(size))
        self._peer.append(int(peer))
        self._tag.append(int(tag))
        if label is not None:
            self._label[vid] = label
        return vid

    def add_calc(self, rank: int, cost: float, *, label: str | None = None) -> int:
        """Add a computation vertex with ``cost`` microseconds of work."""
        if cost < 0:
            raise ValueError(f"calc cost must be non-negative, got {cost}")
        return self._add_vertex(VertexKind.CALC, rank, cost, 0, -1, 0, label)

    def add_send(
        self, rank: int, peer: int, size: int, *, tag: int = 0, label: str | None = None
    ) -> int:
        """Add a send vertex (message of ``size`` bytes to ``peer``)."""
        if size < 0:
            raise ValueError(f"message size must be non-negative, got {size}")
        if not 0 <= peer < self.nranks:
            raise ValueError(f"send peer {peer} out of range [0, {self.nranks})")
        return self._add_vertex(VertexKind.SEND, rank, 0.0, size, peer, tag, label)

    def add_recv(
        self, rank: int, peer: int, size: int, *, tag: int = 0, label: str | None = None
    ) -> int:
        """Add a receive vertex (message of ``size`` bytes from ``peer``)."""
        if size < 0:
            raise ValueError(f"message size must be non-negative, got {size}")
        if not 0 <= peer < self.nranks:
            raise ValueError(f"recv peer {peer} out of range [0, {self.nranks})")
        return self._add_vertex(VertexKind.RECV, rank, 0.0, size, peer, tag, label)

    # -- edges --------------------------------------------------------------

    def add_dependency(self, src: int, dst: int) -> None:
        """Add an intra-rank happens-before edge ``src -> dst``."""
        self._check_vertex(src)
        self._check_vertex(dst)
        if src == dst:
            raise ValueError("self-dependency is not allowed")
        self._edge_src.append(src)
        self._edge_dst.append(dst)
        self._edge_kind.append(int(EdgeKind.DEP))

    def add_comm_edge(self, send: int, recv: int) -> None:
        """Add a communication edge from a ``SEND`` vertex to a ``RECV`` vertex."""
        self._check_vertex(send)
        self._check_vertex(recv)
        if self._kind[send] != VertexKind.SEND:
            raise ValueError(f"vertex {send} is not a SEND vertex")
        if self._kind[recv] != VertexKind.RECV:
            raise ValueError(f"vertex {recv} is not a RECV vertex")
        self._edge_src.append(send)
        self._edge_dst.append(recv)
        self._edge_kind.append(int(EdgeKind.COMM))

    def chain(self, vertices: Sequence[int]) -> None:
        """Add dependency edges connecting ``vertices`` in order."""
        for u, v in zip(vertices, vertices[1:]):
            self.add_dependency(u, v)

    def _check_vertex(self, vid: int) -> None:
        if not 0 <= vid < len(self._kind):
            raise ValueError(f"vertex id {vid} out of range")

    # -- introspection ------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        return len(self._kind)

    @property
    def num_edges(self) -> int:
        return len(self._edge_src)

    def freeze(self, *, validate: bool = True) -> "ExecutionGraph":
        """Produce an immutable :class:`ExecutionGraph`."""
        graph = ExecutionGraph(
            nranks=self.nranks,
            kind=np.asarray(self._kind, dtype=np.int8),
            rank=np.asarray(self._rank, dtype=np.int32),
            cost=np.asarray(self._cost, dtype=np.float64),
            size=np.asarray(self._size, dtype=np.int64),
            peer=np.asarray(self._peer, dtype=np.int32),
            tag=np.asarray(self._tag, dtype=np.int64),
            edge_src=np.asarray(self._edge_src, dtype=np.int64),
            edge_dst=np.asarray(self._edge_dst, dtype=np.int64),
            edge_kind=np.asarray(self._edge_kind, dtype=np.int8),
            labels=dict(self._label),
        )
        if validate:
            graph.validate()
        return graph


class ExecutionGraph:
    """Immutable execution DAG with CSR adjacency and a cached topological order."""

    def __init__(
        self,
        nranks: int,
        kind: np.ndarray,
        rank: np.ndarray,
        cost: np.ndarray,
        size: np.ndarray,
        peer: np.ndarray,
        tag: np.ndarray,
        edge_src: np.ndarray,
        edge_dst: np.ndarray,
        edge_kind: np.ndarray,
        labels: dict[int, str] | None = None,
    ) -> None:
        self.nranks = int(nranks)
        self.kind = kind
        self.rank = rank
        self.cost = cost
        self.size = size
        self.peer = peer
        self.tag = tag
        self.edge_src = edge_src
        self.edge_dst = edge_dst
        self.edge_kind = edge_kind
        self.labels = labels or {}

        n = len(kind)
        m = len(edge_src)
        # CSR for successors and predecessors
        self._succ_indptr, self._succ_indices, self._succ_edges = _build_csr(
            edge_src, edge_dst, n
        )
        self._pred_indptr, self._pred_indices, self._pred_edges = _build_csr(
            edge_dst, edge_src, n
        )
        self._topo_order: np.ndarray | None = None
        self._topo_positions: np.ndarray | None = None
        self._chain_parent: np.ndarray | None = None
        self._chain_in_edge: np.ndarray | None = None
        self._num_edges = m

    # -- basic accessors ----------------------------------------------------

    @property
    def num_vertices(self) -> int:
        return len(self.kind)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    @property
    def num_events(self) -> int:
        """Total number of vertices, the "events" count reported in the paper."""
        return self.num_vertices

    @property
    def num_messages(self) -> int:
        """Number of communication edges (point-to-point messages)."""
        return int(np.count_nonzero(self.edge_kind == EdgeKind.COMM))

    def successors(self, vid: int) -> np.ndarray:
        """Vertex ids of the successors of ``vid``."""
        return self._succ_indices[self._succ_indptr[vid]: self._succ_indptr[vid + 1]]

    def predecessors(self, vid: int) -> np.ndarray:
        """Vertex ids of the predecessors of ``vid``."""
        return self._pred_indices[self._pred_indptr[vid]: self._pred_indptr[vid + 1]]

    def out_degree(self, vid: int) -> int:
        return int(self._succ_indptr[vid + 1] - self._succ_indptr[vid])

    def in_degree(self, vid: int) -> int:
        return int(self._pred_indptr[vid + 1] - self._pred_indptr[vid])

    def in_edges(self, vid: int) -> Iterator[tuple[int, int, EdgeKind]]:
        """Yield ``(src, dst, kind)`` for every incoming edge of ``vid``."""
        start, stop = self._pred_indptr[vid], self._pred_indptr[vid + 1]
        for pos in range(start, stop):
            eid = self._pred_edges[pos]
            yield (
                int(self.edge_src[eid]),
                vid,
                EdgeKind(int(self.edge_kind[eid])),
            )

    def edges(self) -> Iterator[tuple[int, int, EdgeKind]]:
        """Yield every edge as ``(src, dst, kind)``."""
        for eid in range(self._num_edges):
            yield (
                int(self.edge_src[eid]),
                int(self.edge_dst[eid]),
                EdgeKind(int(self.edge_kind[eid])),
            )

    def vertices_of_rank(self, rank: int) -> np.ndarray:
        """Vertex ids that belong to ``rank``."""
        return np.flatnonzero(self.rank == rank)

    def sources(self) -> np.ndarray:
        """Vertices with no predecessors."""
        return np.flatnonzero(self.in_degrees() == 0)

    def sinks(self) -> np.ndarray:
        """Vertices with no successors."""
        return np.flatnonzero(self.out_degrees() == 0)

    # -- precomputed structural views (consumed by the LP compiler) ----------

    def in_degrees(self) -> np.ndarray:
        """In-degree of every vertex as one array (no per-vertex calls)."""
        return np.diff(self._pred_indptr)

    def out_degrees(self) -> np.ndarray:
        """Out-degree of every vertex as one array."""
        return np.diff(self._succ_indptr)

    def merge_points(self) -> np.ndarray:
        """Vertices with two or more predecessors (LP merge variables)."""
        return np.flatnonzero(self.in_degrees() >= 2)

    def chain_parent(self) -> np.ndarray:
        """The unique predecessor of every single-predecessor vertex, else -1.

        Together with :meth:`chain_in_edge` this describes the in-forest of
        single-predecessor chain segments whose roots are the sources and
        merge points; the LP compiler path-compresses costs along it.
        """
        if self._chain_parent is None:
            self._build_chain_views()
        return self._chain_parent

    def chain_in_edge(self) -> np.ndarray:
        """Edge id of the unique incoming edge of chain vertices, else -1."""
        if self._chain_in_edge is None:
            self._build_chain_views()
        return self._chain_in_edge

    def _build_chain_views(self) -> None:
        n = self.num_vertices
        parent = np.full(n, -1, dtype=np.int64)
        in_edge = np.full(n, -1, dtype=np.int64)
        single = np.flatnonzero(self.in_degrees() == 1)
        if single.size:
            eids = self._pred_edges[self._pred_indptr[single]]
            parent[single] = self.edge_src[eids]
            in_edge[single] = eids
        self._chain_parent = parent
        self._chain_in_edge = in_edge

    def topo_positions(self) -> np.ndarray:
        """Position of every vertex inside :meth:`topological_order` (cached)."""
        if self._topo_positions is None:
            order = self.topological_order()
            positions = np.empty(self.num_vertices, dtype=np.int64)
            positions[order] = np.arange(self.num_vertices, dtype=np.int64)
            self._topo_positions = positions
        return self._topo_positions

    # -- algorithms ----------------------------------------------------------

    def topological_order(self) -> np.ndarray:
        """Return a topological ordering of the vertex ids (cached)."""
        if self._topo_order is None:
            self._topo_order = self._compute_topological_order()
        return self._topo_order

    def _compute_topological_order(self) -> np.ndarray:
        n = self.num_vertices
        indeg = np.diff(self._pred_indptr).astype(np.int64)
        order = np.empty(n, dtype=np.int64)
        # Kahn's algorithm with an explicit stack (deterministic order).
        stack = list(np.flatnonzero(indeg == 0)[::-1])
        pos = 0
        succ_indptr, succ_indices = self._succ_indptr, self._succ_indices
        while stack:
            v = int(stack.pop())
            order[pos] = v
            pos += 1
            for u in succ_indices[succ_indptr[v]: succ_indptr[v + 1]]:
                indeg[u] -= 1
                if indeg[u] == 0:
                    stack.append(int(u))
        if pos != n:
            raise GraphValidationError(
                f"graph contains a cycle: only {pos} of {n} vertices were ordered"
            )
        return order

    def validate(self) -> None:
        """Check structural invariants; raise :class:`GraphValidationError` otherwise."""
        n = self.num_vertices
        if n == 0:
            raise GraphValidationError("execution graph has no vertices")
        if np.any((self.rank < 0) | (self.rank >= self.nranks)):
            raise GraphValidationError("vertex with rank outside [0, nranks)")
        if np.any(self.cost < 0):
            raise GraphValidationError("vertex with negative cost")
        if self._num_edges:
            if np.any((self.edge_src < 0) | (self.edge_src >= n)):
                raise GraphValidationError("edge source out of range")
            if np.any((self.edge_dst < 0) | (self.edge_dst >= n)):
                raise GraphValidationError("edge destination out of range")
        # communication edges must connect SEND -> RECV across matching ranks
        comm = self.edge_kind == EdgeKind.COMM
        for eid in np.flatnonzero(comm):
            src, dst = int(self.edge_src[eid]), int(self.edge_dst[eid])
            if self.kind[src] != VertexKind.SEND:
                raise GraphValidationError(f"comm edge {eid} source {src} is not SEND")
            if self.kind[dst] != VertexKind.RECV:
                raise GraphValidationError(f"comm edge {eid} target {dst} is not RECV")
            if self.peer[src] != self.rank[dst] or self.peer[dst] != self.rank[src]:
                raise GraphValidationError(
                    f"comm edge {eid}: peer/rank mismatch between send {src} and recv {dst}"
                )
            if self.size[src] != self.size[dst]:
                raise GraphValidationError(
                    f"comm edge {eid}: size mismatch ({self.size[src]} != {self.size[dst]})"
                )
        # every SEND/RECV must participate in exactly one comm edge
        send_count = np.zeros(n, dtype=np.int64)
        recv_count = np.zeros(n, dtype=np.int64)
        np.add.at(send_count, self.edge_src[comm], 1)
        np.add.at(recv_count, self.edge_dst[comm], 1)
        sends = np.flatnonzero(self.kind == VertexKind.SEND)
        recvs = np.flatnonzero(self.kind == VertexKind.RECV)
        if np.any(send_count[sends] != 1):
            bad = sends[send_count[sends] != 1]
            raise GraphValidationError(f"unmatched SEND vertices: {bad[:10].tolist()}")
        if np.any(recv_count[recvs] != 1):
            bad = recvs[recv_count[recvs] != 1]
            raise GraphValidationError(f"unmatched RECV vertices: {bad[:10].tolist()}")
        # acyclicity (computes and caches the topological order)
        self.topological_order()

    def message_edges(self) -> np.ndarray:
        """Edge indices of all communication edges."""
        return np.flatnonzero(self.edge_kind == EdgeKind.COMM)

    def longest_message_chain(self) -> int:
        """Length (in messages) of the longest chain of dependent messages.

        This bounds the latency sensitivity ``λ_L`` (Equation 3 of the
        paper): no path can cross more communication edges than this.
        """
        depth = np.zeros(self.num_vertices, dtype=np.int64)
        for v in self.topological_order():
            start, stop = self._pred_indptr[v], self._pred_indptr[v + 1]
            best = 0
            for pos in range(start, stop):
                eid = self._pred_edges[pos]
                u = int(self.edge_src[eid])
                add = 1 if self.edge_kind[eid] == EdgeKind.COMM else 0
                best = max(best, depth[u] + add)
            depth[v] = best
        return int(depth.max()) if len(depth) else 0

    # -- export --------------------------------------------------------------

    def to_networkx(self):
        """Export to a :class:`networkx.DiGraph` (vertex/edge attributes preserved)."""
        import networkx as nx

        g = nx.DiGraph(nranks=self.nranks)
        for vid in range(self.num_vertices):
            g.add_node(
                vid,
                kind=VertexKind(int(self.kind[vid])).name,
                rank=int(self.rank[vid]),
                cost=float(self.cost[vid]),
                size=int(self.size[vid]),
                peer=int(self.peer[vid]),
                tag=int(self.tag[vid]),
                label=self.labels.get(vid, ""),
            )
        for src, dst, ekind in self.edges():
            g.add_edge(src, dst, kind=ekind.name)
        return g

    def stats(self) -> dict[str, int]:
        """Vertex/edge counts by type, used in reports and tests."""
        return {
            "vertices": self.num_vertices,
            "edges": self.num_edges,
            "calc": int(np.count_nonzero(self.kind == VertexKind.CALC)),
            "send": int(np.count_nonzero(self.kind == VertexKind.SEND)),
            "recv": int(np.count_nonzero(self.kind == VertexKind.RECV)),
            "comm_edges": self.num_messages,
            "dep_edges": self.num_edges - self.num_messages,
            "nranks": self.nranks,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        s = self.stats()
        return (
            f"ExecutionGraph(nranks={self.nranks}, vertices={s['vertices']}, "
            f"messages={s['comm_edges']})"
        )


def _build_csr(
    src: np.ndarray, dst: np.ndarray, n: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Build a CSR adjacency (indptr, indices, edge ids) keyed by ``src``."""
    m = len(src)
    indptr = np.zeros(n + 1, dtype=np.int64)
    if m == 0:
        return indptr, np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    counts = np.bincount(src, minlength=n)
    indptr[1:] = np.cumsum(counts)
    order = np.argsort(src, kind="stable")
    indices = dst[order].astype(np.int64, copy=False)
    edge_ids = order.astype(np.int64, copy=False)
    return indptr, indices, edge_ids
