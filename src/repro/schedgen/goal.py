"""GOAL-style serialisation of execution graphs.

GOAL (Group Operation Assembly Language, Hoefler et al. 2009) is the textual
schedule format produced by Schedgen and consumed by LogGOPSim.  We implement
a faithful subset sufficient for round-tripping the execution graphs used in
this reproduction:

```
num_ranks 2

rank 0 {
  l1: calc 1000
  l2: send 8b to 1 tag 5
  l3: recv 8b from 1 tag 6
  l2 requires l1
  l3 requires l2
}

rank 1 {
  ...
}
```

Costs are written in whole nanoseconds (GOAL's convention), message sizes in
bytes.  Communication edges are not written explicitly — LogGOPSim re-derives
them from send/recv matching — and neither do we when parsing: the graph is
re-matched with the same FIFO rule used by the schedule builder.
"""

from __future__ import annotations

import io
import re
from collections import defaultdict, deque
from pathlib import Path
from typing import TextIO

from .graph import EdgeKind, ExecutionGraph, GraphBuilder, VertexKind

__all__ = ["dump_goal", "dumps_goal", "load_goal", "loads_goal", "GoalFormatError"]

_NS_PER_US = 1000.0

_CALC_RE = re.compile(r"^l(?P<id>\d+):\s*calc\s+(?P<cost>\d+)$")
_SEND_RE = re.compile(r"^l(?P<id>\d+):\s*send\s+(?P<size>\d+)b\s+to\s+(?P<peer>\d+)\s+tag\s+(?P<tag>-?\d+)$")
_RECV_RE = re.compile(r"^l(?P<id>\d+):\s*recv\s+(?P<size>\d+)b\s+from\s+(?P<peer>\d+)\s+tag\s+(?P<tag>-?\d+)$")
_REQ_RE = re.compile(r"^l(?P<dst>\d+)\s+requires\s+l(?P<src>\d+)$")


class GoalFormatError(ValueError):
    """Raised when a GOAL file cannot be parsed."""


def dumps_goal(graph: ExecutionGraph) -> str:
    """Serialise ``graph`` to a GOAL string."""
    buffer = io.StringIO()
    _write(graph, buffer)
    return buffer.getvalue()


def dump_goal(graph: ExecutionGraph, destination: str | Path | TextIO) -> None:
    """Write ``graph`` in GOAL format to a path or stream."""
    if isinstance(destination, (str, Path)):
        with open(destination, "w", encoding="utf-8") as handle:
            _write(graph, handle)
    else:
        _write(graph, destination)


def _write(graph: ExecutionGraph, handle: TextIO) -> None:
    handle.write(f"num_ranks {graph.nranks}\n")
    # per-rank local label numbering
    local_label: dict[int, int] = {}
    for rank in range(graph.nranks):
        vertices = graph.vertices_of_rank(rank)
        handle.write(f"\nrank {rank} {{\n")
        for local_id, vid in enumerate(vertices, start=1):
            local_label[int(vid)] = local_id
            kind = VertexKind(int(graph.kind[vid]))
            if kind is VertexKind.CALC:
                cost_ns = int(round(float(graph.cost[vid]) * _NS_PER_US))
                handle.write(f"  l{local_id}: calc {cost_ns}\n")
            elif kind is VertexKind.SEND:
                handle.write(
                    f"  l{local_id}: send {int(graph.size[vid])}b to "
                    f"{int(graph.peer[vid])} tag {int(graph.tag[vid])}\n"
                )
            else:
                handle.write(
                    f"  l{local_id}: recv {int(graph.size[vid])}b from "
                    f"{int(graph.peer[vid])} tag {int(graph.tag[vid])}\n"
                )
        # intra-rank dependency edges
        for src, dst, kind in graph.edges():
            if kind is not EdgeKind.DEP:
                continue
            if int(graph.rank[src]) != rank or int(graph.rank[dst]) != rank:
                continue
            handle.write(f"  l{local_label[dst]} requires l{local_label[src]}\n")
        handle.write("}\n")


def loads_goal(text: str) -> ExecutionGraph:
    """Parse a GOAL string produced by :func:`dumps_goal`."""
    return _read(io.StringIO(text))


def load_goal(source: str | Path | TextIO) -> ExecutionGraph:
    """Read a GOAL file from a path or stream."""
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as handle:
            return _read(handle)
    return _read(source)


def _read(handle: TextIO) -> ExecutionGraph:
    lines = [line.rstrip() for line in handle.read().splitlines()]
    if not lines or not lines[0].startswith("num_ranks"):
        raise GoalFormatError("GOAL file must start with 'num_ranks N'")
    try:
        nranks = int(lines[0].split()[1])
    except (IndexError, ValueError) as exc:
        raise GoalFormatError(f"malformed num_ranks line: {lines[0]!r}") from exc

    builder = GraphBuilder(nranks=nranks)
    current_rank: int | None = None
    local_to_global: dict[int, int] = {}
    pending_deps: list[tuple[int, int]] = []

    for lineno, raw in enumerate(lines[1:], start=2):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if line.startswith("rank "):
            if not line.endswith("{"):
                raise GoalFormatError(f"line {lineno}: expected 'rank N {{'")
            try:
                current_rank = int(line.split()[1])
            except (IndexError, ValueError) as exc:
                raise GoalFormatError(f"line {lineno}: malformed rank header") from exc
            local_to_global = {}
            continue
        if line == "}":
            current_rank = None
            for src, dst in pending_deps:
                builder.add_dependency(src, dst)
            pending_deps = []
            continue
        if current_rank is None:
            raise GoalFormatError(f"line {lineno}: statement outside a rank block")
        if (m := _CALC_RE.match(line)) is not None:
            vid = builder.add_calc(current_rank, int(m.group("cost")) / _NS_PER_US)
            local_to_global[int(m.group("id"))] = vid
        elif (m := _SEND_RE.match(line)) is not None:
            vid = builder.add_send(
                current_rank,
                int(m.group("peer")),
                int(m.group("size")),
                tag=int(m.group("tag")),
            )
            local_to_global[int(m.group("id"))] = vid
        elif (m := _RECV_RE.match(line)) is not None:
            vid = builder.add_recv(
                current_rank,
                int(m.group("peer")),
                int(m.group("size")),
                tag=int(m.group("tag")),
            )
            local_to_global[int(m.group("id"))] = vid
        elif (m := _REQ_RE.match(line)) is not None:
            src_local, dst_local = int(m.group("src")), int(m.group("dst"))
            if src_local not in local_to_global or dst_local not in local_to_global:
                raise GoalFormatError(f"line {lineno}: dependency on undefined label")
            pending_deps.append((local_to_global[src_local], local_to_global[dst_local]))
        else:
            raise GoalFormatError(f"line {lineno}: cannot parse {line!r}")

    _rematch(builder)
    return builder.freeze(validate=True)


def _rematch(builder: GraphBuilder) -> None:
    """Re-derive communication edges from send/recv FIFO matching."""
    sends: dict[tuple[int, int, int], deque[int]] = defaultdict(deque)
    recvs: dict[tuple[int, int, int], deque[int]] = defaultdict(deque)
    for vid in range(builder.num_vertices):
        kind = builder._kind[vid]
        if kind == VertexKind.SEND:
            key = (builder._rank[vid], builder._peer[vid], builder._tag[vid])
            if recvs[key]:
                builder.add_comm_edge(vid, recvs[key].popleft())
            else:
                sends[key].append(vid)
        elif kind == VertexKind.RECV:
            key = (builder._peer[vid], builder._rank[vid], builder._tag[vid])
            if sends[key]:
                builder.add_comm_edge(sends[key].popleft(), vid)
            else:
                recvs[key].append(vid)
    leftovers = sum(len(q) for q in sends.values()) + sum(len(q) for q in recvs.values())
    if leftovers:
        raise GoalFormatError(f"{leftovers} unmatched send/recv operations in GOAL file")
