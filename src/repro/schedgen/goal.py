"""GOAL-style serialisation of execution graphs.

GOAL (Group Operation Assembly Language, Hoefler et al. 2009) is the textual
schedule format produced by Schedgen and consumed by LogGOPSim.  We implement
a faithful subset sufficient for round-tripping the execution graphs used in
this reproduction:

```
num_ranks 2

rank 0 {
  l1: calc 1000
  l2: send 8b to 1 tag 5
  l3: recv 8b from 1 tag 6
  l2 requires l1
  l3 requires l2
}

rank 1 {
  ...
}
```

Costs are written in whole nanoseconds (GOAL's convention), message sizes in
bytes.  Communication edges are not written explicitly — LogGOPSim re-derives
them from send/recv matching — and neither do we when parsing: the graph is
re-matched with the same FIFO rule used by the schedule builder (via the
vectorised matcher of :mod:`repro.schedgen.columnar`).

Ingestion is columnar: each ``rank`` block is parsed into staging columns and
flushed through the bulk :meth:`~repro.schedgen.graph.GraphBuilder.add_vertices`
/ ``add_dependencies`` APIs at the closing brace, one call per block instead
of one per line; the writer reads the edge columns through
:meth:`~repro.schedgen.graph.ExecutionGraph.edge_arrays` instead of the
per-edge tuple iterator.
"""

from __future__ import annotations

import io
import re
from pathlib import Path
from typing import TextIO

import numpy as np

from .builder import UnmatchedMessageError
from .columnar import match_messages
from .graph import EdgeKind, ExecutionGraph, GraphBuilder, VertexKind

__all__ = ["dump_goal", "dumps_goal", "load_goal", "loads_goal", "GoalFormatError"]

_NS_PER_US = 1000.0

_CALC_RE = re.compile(r"^l(?P<id>\d+):\s*calc\s+(?P<cost>\d+)$")
_SEND_RE = re.compile(r"^l(?P<id>\d+):\s*send\s+(?P<size>\d+)b\s+to\s+(?P<peer>\d+)\s+tag\s+(?P<tag>-?\d+)$")
_RECV_RE = re.compile(r"^l(?P<id>\d+):\s*recv\s+(?P<size>\d+)b\s+from\s+(?P<peer>\d+)\s+tag\s+(?P<tag>-?\d+)$")
_REQ_RE = re.compile(r"^l(?P<dst>\d+)\s+requires\s+l(?P<src>\d+)$")


class GoalFormatError(ValueError):
    """Raised when a GOAL file cannot be parsed."""


def dumps_goal(graph: ExecutionGraph) -> str:
    """Serialise ``graph`` to a GOAL string."""
    buffer = io.StringIO()
    _write(graph, buffer)
    return buffer.getvalue()


def dump_goal(graph: ExecutionGraph, destination: str | Path | TextIO) -> None:
    """Write ``graph`` in GOAL format to a path or stream."""
    if isinstance(destination, (str, Path)):
        with open(destination, "w", encoding="utf-8") as handle:
            _write(graph, handle)
    else:
        _write(graph, destination)


def _write(graph: ExecutionGraph, handle: TextIO) -> None:
    handle.write(f"num_ranks {graph.nranks}\n")
    edge_src, edge_dst, edge_kind = graph.edge_arrays()
    dep_mask = edge_kind == int(EdgeKind.DEP)
    # an intra-rank dependency has both endpoints on the writer's rank; DEP
    # edges are intra-rank by construction, so grouping by the source rank
    # partitions them (one vectorised pass instead of a per-rank edge scan)
    dep_ids = np.flatnonzero(dep_mask)
    dep_rank = graph.rank[edge_src[dep_ids]]
    # per-rank local label numbering
    local_label: dict[int, int] = {}
    for rank in range(graph.nranks):
        vertices = graph.vertices_of_rank(rank)
        handle.write(f"\nrank {rank} {{\n")
        for local_id, vid in enumerate(vertices, start=1):
            local_label[int(vid)] = local_id
            kind = VertexKind(int(graph.kind[vid]))
            if kind is VertexKind.CALC:
                cost_ns = int(round(float(graph.cost[vid]) * _NS_PER_US))
                handle.write(f"  l{local_id}: calc {cost_ns}\n")
            elif kind is VertexKind.SEND:
                handle.write(
                    f"  l{local_id}: send {int(graph.size[vid])}b to "
                    f"{int(graph.peer[vid])} tag {int(graph.tag[vid])}\n"
                )
            else:
                handle.write(
                    f"  l{local_id}: recv {int(graph.size[vid])}b from "
                    f"{int(graph.peer[vid])} tag {int(graph.tag[vid])}\n"
                )
        # intra-rank dependency edges, in edge order
        for eid in dep_ids[dep_rank == rank]:
            src, dst = int(edge_src[eid]), int(edge_dst[eid])
            if int(graph.rank[dst]) != rank:  # pragma: no cover - defensive
                continue
            handle.write(f"  l{local_label[dst]} requires l{local_label[src]}\n")
        handle.write("}\n")


def loads_goal(text: str) -> ExecutionGraph:
    """Parse a GOAL string produced by :func:`dumps_goal`."""
    return _read(io.StringIO(text))


def load_goal(source: str | Path | TextIO) -> ExecutionGraph:
    """Read a GOAL file from a path or stream."""
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as handle:
            return _read(handle)
    return _read(source)


class _BlockStage:
    """Staging columns of one ``rank { ... }`` block (flushed in bulk)."""

    __slots__ = ("kind", "cost", "size", "peer", "tag", "local_index", "deps")

    def __init__(self) -> None:
        self.kind: list[int] = []
        self.cost: list[float] = []
        self.size: list[int] = []
        self.peer: list[int] = []
        self.tag: list[int] = []
        self.local_index: dict[int, int] = {}
        self.deps: list[tuple[int, int]] = []  # (src_index, dst_index)

    def flush(self, builder: GraphBuilder, rank: int) -> None:
        if not self.kind:
            return
        vids = builder.add_vertices(
            np.array(self.kind, dtype=np.int8),
            rank,
            cost=np.array(self.cost, dtype=np.float64),
            size=np.array(self.size, dtype=np.int64),
            peer=np.array(self.peer, dtype=np.int64),
            tag=np.array(self.tag, dtype=np.int64),
        )
        if self.deps:
            deps = np.array(self.deps, dtype=np.int64)
            builder.add_dependencies(vids[deps[:, 0]], vids[deps[:, 1]])


def _read(handle: TextIO) -> ExecutionGraph:
    lines = [line.rstrip() for line in handle.read().splitlines()]
    if not lines or not lines[0].startswith("num_ranks"):
        raise GoalFormatError("GOAL file must start with 'num_ranks N'")
    try:
        nranks = int(lines[0].split()[1])
    except (IndexError, ValueError) as exc:
        raise GoalFormatError(f"malformed num_ranks line: {lines[0]!r}") from exc

    builder = GraphBuilder(nranks=nranks)
    current_rank: int | None = None
    stage = _BlockStage()

    calc_kind = int(VertexKind.CALC)
    send_kind = int(VertexKind.SEND)
    recv_kind = int(VertexKind.RECV)

    for lineno, raw in enumerate(lines[1:], start=2):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if line.startswith("rank "):
            if current_rank is not None:
                raise GoalFormatError(
                    f"line {lineno}: rank {current_rank} block is not closed"
                )
            if not line.endswith("{"):
                raise GoalFormatError(f"line {lineno}: expected 'rank N {{'")
            try:
                current_rank = int(line.split()[1])
            except (IndexError, ValueError) as exc:
                raise GoalFormatError(f"line {lineno}: malformed rank header") from exc
            stage = _BlockStage()
            continue
        if line == "}":
            if current_rank is not None:
                stage.flush(builder, current_rank)
            current_rank = None
            continue
        if current_rank is None:
            raise GoalFormatError(f"line {lineno}: statement outside a rank block")
        if (m := _CALC_RE.match(line)) is not None:
            stage.local_index[int(m.group("id"))] = len(stage.kind)
            stage.kind.append(calc_kind)
            stage.cost.append(int(m.group("cost")) / _NS_PER_US)
            stage.size.append(0)
            stage.peer.append(-1)
            stage.tag.append(0)
        elif (m := _SEND_RE.match(line)) is not None:
            stage.local_index[int(m.group("id"))] = len(stage.kind)
            stage.kind.append(send_kind)
            stage.cost.append(0.0)
            stage.size.append(int(m.group("size")))
            stage.peer.append(int(m.group("peer")))
            stage.tag.append(int(m.group("tag")))
        elif (m := _RECV_RE.match(line)) is not None:
            stage.local_index[int(m.group("id"))] = len(stage.kind)
            stage.kind.append(recv_kind)
            stage.cost.append(0.0)
            stage.size.append(int(m.group("size")))
            stage.peer.append(int(m.group("peer")))
            stage.tag.append(int(m.group("tag")))
        elif (m := _REQ_RE.match(line)) is not None:
            src_local, dst_local = int(m.group("src")), int(m.group("dst"))
            if src_local not in stage.local_index or dst_local not in stage.local_index:
                raise GoalFormatError(f"line {lineno}: dependency on undefined label")
            stage.deps.append(
                (stage.local_index[src_local], stage.local_index[dst_local])
            )
        else:
            raise GoalFormatError(f"line {lineno}: cannot parse {line!r}")

    if current_rank is not None:
        raise GoalFormatError(f"unterminated rank {current_rank} block at end of file")

    try:
        match_messages(builder)
    except UnmatchedMessageError as exc:
        raise GoalFormatError(f"unmatched send/recv operations in GOAL file: {exc}") from exc
    return builder.freeze(validate=True)
