"""Columnar schedule-generation engine (array-native Schedgen front-end).

PRs 1–3 made everything downstream of a frozen
:class:`~repro.schedgen.graph.ExecutionGraph` array-native; this module does
the same for *constructing* the graph.  Instead of walking programs or
traces one operation at a time and emitting vertices through per-call
builder methods, the columnar engine

1. converts each rank's operation stream into a :class:`RankOpBatch` — one
   NumPy column per op field (:func:`batches_from_program`), or straight
   from the trace columns without materialising ``ProgramOp`` objects at
   all (:func:`batches_from_trace`);
2. splits the batches on collectives with one vectorised scan, emits every
   point-to-point segment of *all ranks* through a two-phase lowering
   (:func:`_emit_segment`): a thin Python staging pass that resolves the
   sequential semantics (request handles, sendrecv splitting, wait joins)
   into flat *eager rows*, followed by a fully vectorised post-pass that
   expands rendezvous rows into RTS/CTS/DATA triples, computes every
   program-order dependency edge with one segmented running-max scan, and
   flushes the whole segment through the bulk builder APIs;
3. expands collectives through the ``batch_*`` expanders of
   :mod:`repro.schedgen.collectives` (whole rounds as index arithmetic);
4. pairs sends and receives with a vectorised sort-based FIFO matcher
   (:func:`match_messages`) instead of the per-vertex queue scan.

The result is **bit-identical** to the legacy op-by-op engine — same vertex
ids, same vertex attribute columns, same edge order, same labels — which the
parity suite (``tests/test_schedgen_columnar.py``) asserts across every
collective algorithm, rendezvous on/off, random point-to-point programs and
trace-driven builds.  See ``src/repro/schedgen/README.md`` for the ordering
contract.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..mpi.program import COLLECTIVE_KINDS, MPI_TO_KIND, OpKind, Program
from ..trace.records import MPI_OP_CODE, MPIOp, Trace
from . import collectives as coll
from .graph import GraphBuilder, VertexKind

__all__ = [
    "OP_KINDS",
    "OP_CODE",
    "RankOpBatch",
    "ScheduleBatches",
    "batches_from_program",
    "batches_from_trace",
    "build_columnar",
    "build_columnar_fused",
    "match_messages",
]

#: stable integer codes for :class:`~repro.mpi.program.OpKind` (array form)
OP_KINDS: tuple[OpKind, ...] = tuple(OpKind)
OP_CODE: dict[OpKind, int] = {kind: index for index, kind in enumerate(OP_KINDS)}

_C_COMPUTE = OP_CODE[OpKind.COMPUTE]
_C_SEND = OP_CODE[OpKind.SEND]
_C_RECV = OP_CODE[OpKind.RECV]
# the blocking-only fast path (_emit_segment_simple) classifies segments with
# one max() over the kind column; that is only sound while these are the three
# lowest codes, so fail loudly if OpKind ever gains a member ahead of them
if (_C_COMPUTE, _C_SEND, _C_RECV) != (0, 1, 2):  # pragma: no cover - guard
    raise AssertionError("OpKind must start with COMPUTE, SEND, RECV")
_C_ISEND = OP_CODE[OpKind.ISEND]
_C_IRECV = OP_CODE[OpKind.IRECV]
_C_WAIT = OP_CODE[OpKind.WAIT]
_C_WAITALL = OP_CODE[OpKind.WAITALL]
_C_SENDRECV = OP_CODE[OpKind.SENDRECV]

_COLLECTIVE_CODES = np.array(
    sorted(OP_CODE[kind] for kind in COLLECTIVE_KINDS), dtype=np.int16
)
_P2P_CODES = np.array(
    sorted(OP_CODE[k] for k in (OpKind.SEND, OpKind.RECV, OpKind.ISEND,
                                OpKind.IRECV, OpKind.SENDRECV)),
    dtype=np.int16,
)

_V_CALC = int(VertexKind.CALC)
_V_SEND = int(VertexKind.SEND)
_V_RECV = int(VertexKind.RECV)

#: staging-row lowering modes (phase 1 → phase 2 protocol); every mode
#: ``>= _RDV_BLOCK`` expands into an RTS/CTS/DATA triple in phase 2
_PLAIN = 0       # advancing vertex, depends on the frontier
_POST = 1        # posted (non-blocking) vertex: frontier dep, no advance
_JOIN = 2        # wait join: frontier dep + extra request-target deps
_RDV_BLOCK = 3   # blocking rendezvous send/recv: 3-chain, all advance
_RDV_ISEND = 4   # non-blocking rendezvous send: RTS advances, CTS/DATA chain
_RDV_IRECV = 5   # non-blocking rendezvous recv: internal chain, no advance

# lookup (indexed by mode) of whether the *first* vertex of a row advances
_START_ADVANCES = np.array([True, False, True, True, True, False])

# MPIOp code → OpKind code (or -1 for records that never become program ops)
_MPI_CODE_TO_OP = np.full(len(MPIOp), -1, dtype=np.int16)
for _mpi_op, _kind in MPI_TO_KIND.items():
    _MPI_CODE_TO_OP[MPI_OP_CODE[_mpi_op]] = OP_CODE[_kind]
_SKIP_CODES = np.array(
    [MPI_OP_CODE[MPIOp.INIT], MPI_OP_CODE[MPIOp.COMM_SIZE], MPI_OP_CODE[MPIOp.COMM_RANK]],
    dtype=np.int16,
)
_FINALIZE_CODE = MPI_OP_CODE[MPIOp.FINALIZE]


@dataclass
class RankOpBatch:
    """One rank's operation stream as parallel columns.

    The columnar twin of :class:`~repro.mpi.program.RankProgram`: ``kind``
    holds :data:`OP_CODE` values and the remaining columns mirror the
    :class:`~repro.mpi.program.ProgramOp` fields (with the dataclass
    defaults for fields a given op kind does not use).  ``requests`` is a
    plain list (aligned with the columns) because ``MPI_Waitall`` consumes a
    variable number of handles per op.
    """

    kind: np.ndarray
    cost: np.ndarray
    peer: np.ndarray
    size: np.ndarray
    tag: np.ndarray
    root: np.ndarray
    request: np.ndarray
    recv_peer: np.ndarray
    recv_size: np.ndarray
    recv_tag: np.ndarray
    requests: list[tuple[int, ...]]

    def __len__(self) -> int:
        return len(self.kind)


def batches_from_program(program: Program) -> list[RankOpBatch]:
    """Columnarise a :class:`~repro.mpi.program.Program` (one batch per rank).

    Each column is gathered with its own list comprehension — a tight
    C-speed loop reading one attribute per op — instead of building and
    transposing one 11-tuple per op.  On long rank programs this is ~3×
    faster than the ``zip(*...)`` transpose: the per-op tuple allocation
    dominated, not the attribute reads.
    """
    code = OP_CODE
    batches = []
    for rank_program in program.ranks:
        ops = rank_program.ops
        if not ops:
            batches.append(_empty_batch())
            continue
        batches.append(RankOpBatch(
            kind=np.array([code[op.kind] for op in ops], dtype=np.int16),
            cost=np.array([op.cost for op in ops], dtype=np.float64),
            peer=np.array([op.peer for op in ops], dtype=np.int64),
            size=np.array([op.size for op in ops], dtype=np.int64),
            tag=np.array([op.tag for op in ops], dtype=np.int64),
            root=np.array([op.root for op in ops], dtype=np.int64),
            request=np.array([op.request for op in ops], dtype=np.int64),
            recv_peer=np.array([op.recv_peer for op in ops], dtype=np.int64),
            recv_size=np.array([op.recv_size for op in ops], dtype=np.int64),
            recv_tag=np.array([op.recv_tag for op in ops], dtype=np.int64),
            requests=[op.requests for op in ops],
        ))
    return batches


def batches_from_trace(trace: Trace, *, min_compute: float = 0.0) -> list[RankOpBatch]:
    """Columnarise a timestamped trace without building ``ProgramOp`` objects.

    Mirrors :meth:`repro.mpi.program.Program.from_trace` exactly — the same
    records are skipped (``MPI_Init``, bookkeeping no-ops, ``MPI_Finalize``)
    and a ``COMPUTE`` row is inserted before every remaining record whose
    gap to the previous call exceeds ``min_compute`` — but the whole
    transformation is a handful of array passes over the trace columns
    (:meth:`repro.trace.records.RankTrace.columns`).
    """
    batches = []
    for rank_trace in trace.ranks:
        columns = rank_trace.columns()
        code = columns.code
        n = len(code)
        if n == 0:
            batches.append(_empty_batch())
            continue
        skip = np.isin(code, _SKIP_CODES)
        finalize = code == _FINALIZE_CODE
        considered = ~skip
        emit_op = considered & ~finalize

        prev_end = np.empty(n, dtype=np.float64)
        prev_end[0] = np.inf  # no gap before the first record
        prev_end[1:] = columns.tend[:-1]
        gap = columns.tstart - prev_end
        has_compute = considered & (gap > min_compute)

        mapped = _MPI_CODE_TO_OP[code]
        if np.any(emit_op & (mapped < 0)):
            offender = int(code[int(np.argmax(emit_op & (mapped < 0)))])
            raise ValueError(
                f"cannot convert trace record {tuple(MPIOp)[offender]} to a program op"
            )

        counts = has_compute.astype(np.int64) + emit_op
        ends = np.cumsum(counts)
        offsets = ends - counts
        total = int(ends[-1])

        kind = np.empty(total, dtype=np.int16)
        cost = np.zeros(total, dtype=np.float64)
        peer = np.full(total, -1, dtype=np.int64)
        size = np.zeros(total, dtype=np.int64)
        tag = np.zeros(total, dtype=np.int64)
        root = np.zeros(total, dtype=np.int64)
        request = np.full(total, -1, dtype=np.int64)
        recv_peer = np.full(total, -1, dtype=np.int64)
        recv_size = np.zeros(total, dtype=np.int64)
        recv_tag = np.zeros(total, dtype=np.int64)
        requests: list[tuple[int, ...]] = [()] * total

        compute_pos = offsets[has_compute]
        kind[compute_pos] = _C_COMPUTE
        cost[compute_pos] = gap[has_compute]

        op_pos = offsets[emit_op] + has_compute[emit_op]
        op_mapped = mapped[emit_op]
        is_coll = np.isin(op_mapped, _COLLECTIVE_CODES)
        kind[op_pos] = op_mapped
        peer[op_pos] = np.where(is_coll, -1, columns.peer[emit_op])
        size[op_pos] = columns.size[emit_op]
        tag[op_pos] = columns.tag[emit_op]
        root[op_pos] = np.where(is_coll, np.maximum(columns.peer[emit_op], 0), 0)
        request[op_pos] = columns.request[emit_op]
        recv_peer[op_pos] = columns.recv_peer[emit_op]
        recv_size[op_pos] = columns.recv_size[emit_op]
        recv_tag[op_pos] = columns.recv_tag[emit_op]
        for record_index in np.flatnonzero(code == MPI_OP_CODE[MPIOp.WAITALL]).tolist():
            slot = int(offsets[record_index] + has_compute[record_index])
            requests[slot] = columns.requests[record_index]

        batches.append(RankOpBatch(
            kind=kind, cost=cost, peer=peer, size=size, tag=tag, root=root,
            request=request, recv_peer=recv_peer, recv_size=recv_size,
            recv_tag=recv_tag, requests=requests,
        ))
    return batches


def _empty_batch() -> RankOpBatch:
    return RankOpBatch(
        kind=np.empty(0, dtype=np.int16),
        cost=np.empty(0, dtype=np.float64),
        peer=np.empty(0, dtype=np.int64),
        size=np.empty(0, dtype=np.int64),
        tag=np.empty(0, dtype=np.int64),
        root=np.empty(0, dtype=np.int64),
        request=np.empty(0, dtype=np.int64),
        recv_peer=np.empty(0, dtype=np.int64),
        recv_size=np.empty(0, dtype=np.int64),
        recv_tag=np.empty(0, dtype=np.int64),
        requests=[],
    )


# ---------------------------------------------------------------------------
# build core
# ---------------------------------------------------------------------------

def build_columnar(
    batches: list[RankOpBatch],
    nranks: int,
    *,
    algorithms,
    protocol,
):
    """Build a frozen execution graph from per-rank op batches.

    The columnar twin of :meth:`repro.schedgen.builder.ScheduleGenerator.build`;
    ``algorithms`` is a :class:`~repro.schedgen.collectives.CollectiveAlgorithms`
    and ``protocol`` a :class:`~repro.schedgen.builder.ProtocolConfig`.
    """
    builder = _populate_builder(
        batches, nranks, algorithms=algorithms, protocol=protocol
    )
    return builder.freeze(validate=True)


def build_columnar_fused(
    batches: list[RankOpBatch],
    nranks: int,
    *,
    algorithms,
    protocol,
    mmap_dir=None,
):
    """Build an execution graph for the analyze-only path — never frozen.

    Emits exactly the same vertex/edge columns as :func:`build_columnar`
    (same builder machinery, same deterministic order contract) but attaches
    an :class:`~repro.schedgen.graph.ExecutionGraph` **zero-copy** over the
    builder's column views instead of freezing: no column copies, no
    structural validation pass, and the topological level structure is
    installed by the chain-condensed engine
    (:func:`~repro.schedgen.graph.chain_condensed_levels`) — the construction
    is trusted, so the cycle-detecting frontier peel is not needed.  The
    resulting graph is **column-bit-identical** to the frozen one: identical
    vertex/edge arrays, labels and therefore
    :meth:`~repro.schedgen.graph.ExecutionGraph.content_digest` — the
    artifact cache and the shared-memory sweep pool key fused and frozen
    requests to the same entries.

    ``mmap_dir`` (optional) backs the builder's growable columns with
    memory-mapped files (see :class:`~repro.schedgen.graph.GraphBuilder`) so
    the attached graph's columns are disk-backed too — the caller owns the
    directory for the graph's lifetime.  Column bytes are identical either
    way.
    """
    from .graph import ExecutionGraph, chain_condensed_levels

    builder = _populate_builder(
        batches, nranks, algorithms=algorithms, protocol=protocol,
        mmap_dir=mmap_dir,
    )
    nv, ne = builder.num_vertices, builder.num_edges
    columns = {
        "kind": builder._vkind[:nv],
        "rank": builder._vrank[:nv],
        "cost": builder._vcost[:nv],
        "size": builder._vsize[:nv],
        "peer": builder._vpeer[:nv],
        "tag": builder._vtag[:nv],
        "edge_src": builder._esrc[:ne],
        "edge_dst": builder._edst[:ne],
        "edge_kind": builder._ekind[:ne],
    }
    graph = ExecutionGraph.from_columns(
        nranks, columns, builder._label, validate=False
    )
    level_indptr, order = chain_condensed_levels(graph)
    graph._level_indptr = level_indptr
    graph._topo_order = order
    return graph


class ScheduleBatches:
    """Columnar schedule handle: per-rank op batches plus expansion config.

    The batch-level twin of a frozen :class:`~repro.schedgen.graph.
    ExecutionGraph` for the fused analyze-only pipeline:
    :func:`repro.core.lp_builder.build_lp`,
    :meth:`repro.core.analyzer.LatencyAnalyzer.from_batches` and the serial
    path of :func:`repro.core.parametric.batched_sweep_graphs` all accept it
    in place of a graph.  The execution graph is attached lazily through
    :func:`build_columnar_fused` (zero-copy, no freeze, condensed levels) and
    cached per protocol, and :meth:`content_digest` — served from that
    graph's byte-identical columns — equals the frozen graph's digest, so
    artifact caches and sweep pools key fused and frozen requests to the
    same entries.

    ``protocol`` may be left ``None`` and resolved later from the LogGPS
    parameters actually analysed (``ProtocolConfig.from_params``), so one
    spec can serve several parameter sets.
    """

    def __init__(
        self,
        batches: list[RankOpBatch],
        nranks: int,
        *,
        algorithms=None,
        protocol=None,
        mmap_dir=None,
    ) -> None:
        self.batches = batches
        self.nranks = int(nranks)
        self.algorithms = algorithms if algorithms is not None else coll.CollectiveAlgorithms()
        self.protocol = protocol
        self.mmap_dir = mmap_dir
        self._graphs: dict[object, object] = {}

    @classmethod
    def from_program(cls, program: Program, *, algorithms=None, protocol=None) -> "ScheduleBatches":
        """Columnarise ``program`` into a spec (one :func:`batches_from_program` pass)."""
        return cls(
            batches_from_program(program),
            program.nranks,
            algorithms=algorithms,
            protocol=protocol,
        )

    def resolve_protocol(self, params):
        """The protocol this spec expands under: its own, else derived from ``params``."""
        if self.protocol is not None:
            return self.protocol
        from .builder import ProtocolConfig

        return ProtocolConfig.from_params(params)

    def graph_for(self, params):
        """The analyze-only execution graph of this schedule under ``params``.

        Built once per protocol via :func:`build_columnar_fused` and cached
        on the spec — repeated LP builds, sweeps and digests share one graph.
        """
        protocol = self.resolve_protocol(params)
        graph = self._graphs.get(protocol)
        if graph is None:
            graph = build_columnar_fused(
                self.batches, self.nranks,
                algorithms=self.algorithms, protocol=protocol,
                mmap_dir=self.mmap_dir,
            )
            self._graphs[protocol] = graph
        return graph

    def content_digest(self, params) -> str:
        """The schedule's graph content digest under ``params`` — identical to
        the frozen graph's digest (fused columns are byte-identical)."""
        return self.graph_for(params).content_digest()


def _populate_builder(
    batches: list[RankOpBatch],
    nranks: int,
    *,
    algorithms,
    protocol,
    mmap_dir=None,
) -> GraphBuilder:
    """The shared build core: emit all vertices/edges into a fresh builder."""
    from .builder import _expand_collective

    if len(batches) != nranks:
        raise ValueError(f"expected {nranks} batches, got {len(batches)}")
    builder = GraphBuilder(nranks=nranks, mmap_dir=mmap_dir)
    for rank, batch in enumerate(batches):
        _check_batch(rank, nranks, batch)

    # split on collectives (vectorised) + cross-rank consistency checks
    collective_positions = [
        np.flatnonzero(np.isin(batch.kind, _COLLECTIVE_CODES)) for batch in batches
    ]
    n_collectives = len(collective_positions[0]) if batches else 0
    for rank, positions in enumerate(collective_positions):
        if len(positions) != n_collectives:
            raise ValueError(
                f"rank {rank} calls {len(positions)} collectives but rank 0 "
                f"calls {n_collectives}"
            )
    if n_collectives:
        kinds0 = batches[0].kind[collective_positions[0]]
        for rank in range(1, nranks):
            kinds_r = batches[rank].kind[collective_positions[rank]]
            mismatch = kinds_r != kinds0
            if np.any(mismatch):
                at = int(np.argmax(mismatch))
                raise ValueError(
                    f"collective #{at}: rank {rank} calls "
                    f"{OP_KINDS[int(kinds_r[at])]}, rank 0 calls "
                    f"{OP_KINDS[int(kinds0[at])]}"
                )
        sizes = np.stack(
            [batches[r].size[collective_positions[r]] for r in range(nranks)]
        ).max(axis=0)
        roots = batches[0].root[collective_positions[0]]

    frontier = np.full(nranks, -1, dtype=np.int64)
    request_state: list[dict[int, tuple[str, int]]] = [{} for _ in range(nranks)]
    tag_cursor = coll.COLLECTIVE_TAG_BASE

    for segment in range(n_collectives + 1):
        slices = []
        for rank in range(nranks):
            positions = collective_positions[rank]
            lo = int(positions[segment - 1]) + 1 if segment > 0 else 0
            hi = int(positions[segment]) if segment < n_collectives else len(batches[rank])
            slices.append((lo, hi))
        _emit_segment(builder, frontier, batches, slices, protocol, request_state)
        if segment < n_collectives:
            tag, tag_cursor = coll.next_collective_tag(tag_cursor, nranks)
            _expand_collective(
                builder,
                frontier,
                kind=OP_KINDS[int(kinds0[segment])],
                size=int(sizes[segment]),
                root=int(roots[segment]),
                algorithms=algorithms,
                tag=tag,
                expanders=coll.COLUMNAR_EXPANDERS,
            )

    for rank, pending in enumerate(request_state):
        if pending:
            raise ValueError(
                f"rank {rank}: requests never completed: {sorted(pending)}"
            )

    match_messages(builder)
    return builder


def _check_batch(rank: int, nranks: int, batch: RankOpBatch) -> None:
    """Vectorised per-batch hygiene: peer ranges and user-tag range."""
    p2p = np.isin(batch.kind, _P2P_CODES)
    if np.any(p2p & ((batch.peer < 0) | (batch.peer >= nranks))):
        offender = int(batch.peer[int(np.argmax(p2p & ((batch.peer < 0) | (batch.peer >= nranks))))])
        raise ValueError(f"rank {rank}: peer {offender} out of range")
    sendrecv = batch.kind == _C_SENDRECV
    if np.any(sendrecv & ((batch.recv_peer < 0) | (batch.recv_peer >= nranks))):
        raise ValueError(f"rank {rank}: sendrecv receive peer out of range")
    bad_main = p2p & ((batch.tag < 0) | (batch.tag >= coll.USER_TAG_LIMIT))
    bad_recv = sendrecv & ((batch.recv_tag < 0) | (batch.recv_tag >= coll.USER_TAG_LIMIT))
    if np.any(bad_main | bad_recv):
        at = int(np.argmax(bad_main | bad_recv))
        offender = int(batch.tag[at]) if bad_main[at] else int(batch.recv_tag[at])
        raise ValueError(
            f"rank {rank}: point-to-point tag {offender} outside the user tag "
            f"range [0, {coll.USER_TAG_LIMIT}) reserved from the collective/"
            f"rendezvous tag spaces"
        )


# ---------------------------------------------------------------------------
# point-to-point segment lowering
# ---------------------------------------------------------------------------

def _emit_segment(
    builder: GraphBuilder,
    frontier: np.ndarray,
    batches: list[RankOpBatch],
    slices: list[tuple[int, int]],
    protocol,
    request_state: list[dict[int, tuple[str, int]]],
) -> None:
    """Emit one point-to-point segment of *all ranks* in two phases.

    Phase 1 (staging, sequential semantics): walk each rank's op slice once,
    producing flat *eager rows* — one row per future send/recv/calc vertex,
    still unexpanded for rendezvous — plus the lowering mode of each row and
    the join lists of wait operations.  Request handles are resolved here
    (they may span segments: the dict values are ``("vid", v)`` for already
    materialised vertices or ``("row", i)`` for rows of this segment).

    Phase 2 (vectorised lowering): expand rendezvous rows into RTS/CTS/DATA
    triples with offset arithmetic, derive every program-order dependency
    edge from one segmented running-max scan over the advancing vertices,
    splice in the wait-join edges, and flush vertices + edges through the
    bulk builder APIs.  Vertex and edge order reproduce the legacy engine
    exactly (rank-major within the segment, each vertex's incoming edge in
    vertex order, join edges right after the join's frontier edge).

    Segments made of only blocking operations (compute/send/recv — the
    shape of collective-dominated schedules and simple traced phases) skip
    the staging loop entirely: phase 1 itself is a handful of array passes
    over the concatenated slices.
    """
    simple = _emit_segment_simple(builder, frontier, batches, slices, protocol)
    if simple:
        return
    row_parts: list[tuple[np.ndarray, ...]] = []
    block_ranks: list[int] = []
    block_lengths: list[int] = []
    joins: list[tuple[int, list[tuple[str, int]]]] = []
    row_base = 0

    for rank, (lo, hi) in enumerate(slices):
        if lo >= hi:
            continue
        stage = (
            _stage_rank
            if hi - lo >= _STAGE_VECTOR_THRESHOLD
            else _stage_rank_loop
        )
        columns, rank_joins, nrows = stage(
            rank, batches[rank], lo, hi, protocol, request_state[rank], row_base
        )
        joins.extend(rank_joins)
        if nrows:
            row_parts.append(columns)
            block_ranks.append(rank)
            block_lengths.append(nrows)
            row_base += nrows

    if not row_base:
        return
    _lower_rows(
        builder,
        frontier,
        np.concatenate([part[0] for part in row_parts]),
        np.concatenate([part[1] for part in row_parts]),
        np.concatenate([part[2] for part in row_parts]),
        np.concatenate([part[3] for part in row_parts]),
        np.concatenate([part[4] for part in row_parts]),
        np.concatenate([part[5] for part in row_parts]),
        np.array(block_ranks, dtype=np.int64),
        np.array(block_lengths, dtype=np.int64),
        joins,
        request_state,
    )


#: ops per rank slice above which phase 1 stages through the vectorised
#: sort-based matcher (:func:`_stage_rank`); below it the sequential loop
#: (:func:`_stage_rank_loop`) is cheaper — the vectorised path carries a
#: fixed cost of a few dozen array operations per slice, the loop a few
#: microseconds per op.  Both produce identical staging output.
_STAGE_VECTOR_THRESHOLD = 256


def _stage_rank_loop(
    rank: int,
    batch: RankOpBatch,
    lo: int,
    hi: int,
    protocol,
    requests: dict[int, tuple[str, int]],
    row_base: int,
):
    """Sequential phase 1 for one short rank slice (the reference staging).

    Same output contract as :func:`_stage_rank`; kept for slices below
    :data:`_STAGE_VECTOR_THRESHOLD`, where a Python loop beats the fixed
    overhead of the vectorised matcher.
    """
    row_kind: list[int] = []
    row_cost: list[float] = []
    row_size: list[int] = []
    row_peer: list[int] = []
    row_tag: list[int] = []
    row_mode: list[int] = []
    joins: list[tuple[int, list[tuple[str, int]]]] = []

    threshold = protocol.eager_threshold
    expand_rendezvous = protocol.expand_rendezvous
    kinds = batch.kind[lo:hi].tolist()
    costs = batch.cost[lo:hi].tolist()
    peers = batch.peer[lo:hi].tolist()
    sizes = batch.size[lo:hi].tolist()
    tags = batch.tag[lo:hi].tolist()
    handles = batch.request[lo:hi].tolist()
    recv_peers = batch.recv_peer[lo:hi].tolist()
    recv_sizes = batch.recv_size[lo:hi].tolist()
    recv_tags = batch.recv_tag[lo:hi].tolist()

    for i in range(hi - lo):
        op_code = kinds[i]
        if op_code == _C_COMPUTE:
            compute_cost = costs[i]
            if compute_cost > 0:
                row_kind.append(_V_CALC)
                row_cost.append(compute_cost)
                row_size.append(0)
                row_peer.append(-1)
                row_tag.append(0)
                row_mode.append(_PLAIN)
        elif op_code == _C_SEND or op_code == _C_ISEND:
            message_size = sizes[i]
            rendezvous = expand_rendezvous and message_size > threshold
            row_kind.append(_V_SEND)
            row_cost.append(0.0)
            row_size.append(message_size)
            row_peer.append(peers[i])
            row_tag.append(tags[i])
            if op_code == _C_SEND:
                row_mode.append(_RDV_BLOCK if rendezvous else _PLAIN)
            else:
                row_mode.append(_RDV_ISEND if rendezvous else _PLAIN)
                handle = handles[i]
                if handle < 0:
                    raise ValueError(f"rank {rank}: {OP_KINDS[op_code]} without request")
                if handle in requests:
                    raise ValueError(
                        f"rank {rank}: request {handle} reused before completion"
                    )
                requests[handle] = ("row", row_base + len(row_kind) - 1)
        elif op_code == _C_RECV:
            message_size = sizes[i]
            rendezvous = expand_rendezvous and message_size > threshold
            row_kind.append(_V_RECV)
            row_cost.append(0.0)
            row_size.append(message_size)
            row_peer.append(peers[i])
            row_tag.append(tags[i])
            row_mode.append(_RDV_BLOCK if rendezvous else _PLAIN)
        elif op_code == _C_IRECV:
            message_size = sizes[i]
            rendezvous = expand_rendezvous and message_size > threshold
            row_kind.append(_V_RECV)
            row_cost.append(0.0)
            row_size.append(message_size)
            row_peer.append(peers[i])
            row_tag.append(tags[i])
            row_mode.append(_RDV_IRECV if rendezvous else _POST)
            handle = handles[i]
            if handle < 0:
                raise ValueError(f"rank {rank}: {OP_KINDS[op_code]} without request")
            if handle in requests:
                raise ValueError(
                    f"rank {rank}: request {handle} reused before completion"
                )
            requests[handle] = ("row", row_base + len(row_kind) - 1)
        elif op_code == _C_SENDRECV:
            send_size = sizes[i]
            row_kind.append(_V_SEND)
            row_cost.append(0.0)
            row_size.append(send_size)
            row_peer.append(peers[i])
            row_tag.append(tags[i])
            row_mode.append(
                _RDV_BLOCK if expand_rendezvous and send_size > threshold else _PLAIN
            )
            recv_size = recv_sizes[i]
            row_kind.append(_V_RECV)
            row_cost.append(0.0)
            row_size.append(recv_size)
            row_peer.append(recv_peers[i])
            row_tag.append(recv_tags[i])
            row_mode.append(
                _RDV_BLOCK if expand_rendezvous and recv_size > threshold else _PLAIN
            )
        elif op_code == _C_WAIT or op_code == _C_WAITALL:
            wanted = [handles[i]] if op_code == _C_WAIT else list(batch.requests[lo + i])
            targets = []
            for handle in wanted:
                if handle not in requests:
                    raise ValueError(
                        f"rank {rank}: wait on unknown request {handle}"
                    )
                targets.append(requests.pop(handle))
            joins.append((row_base + len(row_kind), targets))
            row_kind.append(_V_CALC)
            row_cost.append(0.0)
            row_size.append(0)
            row_peer.append(-1)
            row_tag.append(0)
            row_mode.append(_JOIN)
        else:
            raise ValueError(
                f"unexpected operation {OP_KINDS[op_code]} in point-to-point segment"
            )

    columns = (
        np.array(row_kind, dtype=np.int8),
        np.array(row_cost, dtype=np.float64),
        np.array(row_size, dtype=np.int64),
        np.array(row_peer, dtype=np.int64),
        np.array(row_tag, dtype=np.int64),
        np.array(row_mode, dtype=np.int8),
    )
    return columns, joins, len(row_kind)


#: event codes of the sort-based request matcher (phase 1, vectorised)
_EV_POST = 0
_EV_CONSUME = 1

#: staging-error codes, raised in first-op-position order like the old
#: sequential staging loop would
_ERR_UNEXPECTED = 0
_ERR_NO_REQUEST = 1
_ERR_REUSED = 2
_ERR_UNKNOWN = 3


def _stage_rank(
    rank: int,
    batch: RankOpBatch,
    lo: int,
    hi: int,
    protocol,
    pending: dict[int, tuple[str, int]],
    row_base: int,
):
    """Vectorised phase 1 for one rank's op slice (any op mix).

    Lowers the slice to eager rows with a handful of array passes: row
    layout by per-op row counts, column scatter per op class, and
    **sort-based request matching by handle** — posts (``isend``/``irecv``)
    and consumptions (``wait``/``waitall``, one event per listed handle)
    are sorted by ``(handle, op position, slot)``; within one handle the
    events must alternate post/consume starting from the pending state
    carried over from earlier segments, which is exactly the sequential
    dict semantics.  Returns ``(columns, joins, nrows)`` with join row
    indices already offset by ``row_base``; ``pending`` is updated in place
    to the handles still open after this segment.
    """
    kinds = batch.kind[lo:hi]
    n_ops = len(kinds)
    sizes = batch.size[lo:hi]
    costs = batch.cost[lo:hi]

    violations: list[tuple[int, int, int]] = []  # (op position, error, payload)
    unexpected = kinds > _C_SENDRECV
    if np.any(unexpected):
        at = int(np.argmax(unexpected))
        violations.append((at, _ERR_UNEXPECTED, int(kinds[at])))

    # ------------------------------------------------------------------
    # row layout: per-op row counts -> row offsets
    # ------------------------------------------------------------------
    is_compute = kinds == _C_COMPUTE
    rows_per_op = np.ones(n_ops, dtype=np.int64)
    rows_per_op[is_compute] = (costs[is_compute] > 0).astype(np.int64)
    rows_per_op[kinds == _C_SENDRECV] = 2
    ends = np.cumsum(rows_per_op)
    offsets = ends - rows_per_op
    nrows = int(ends[-1]) if n_ops else 0

    row_kind = np.empty(nrows, dtype=np.int8)
    row_cost = np.zeros(nrows, dtype=np.float64)
    row_size = np.zeros(nrows, dtype=np.int64)
    row_peer = np.full(nrows, -1, dtype=np.int64)
    row_tag = np.zeros(nrows, dtype=np.int64)
    row_mode = np.zeros(nrows, dtype=np.int8)

    threshold = protocol.eager_threshold
    expand = protocol.expand_rendezvous
    rendezvous = (sizes > threshold) if expand else np.zeros(n_ops, dtype=bool)

    kept_compute = is_compute & (rows_per_op > 0)
    pos = offsets[kept_compute]
    row_kind[pos] = _V_CALC
    row_cost[pos] = costs[kept_compute]

    send_ops = (kinds == _C_SEND) | (kinds == _C_ISEND)
    pos = offsets[send_ops]
    row_kind[pos] = _V_SEND
    row_size[pos] = sizes[send_ops]
    row_peer[pos] = batch.peer[lo:hi][send_ops]
    row_tag[pos] = batch.tag[lo:hi][send_ops]
    row_mode[pos] = np.where(
        rendezvous[send_ops],
        np.where(kinds[send_ops] == _C_SEND, _RDV_BLOCK, _RDV_ISEND),
        _PLAIN,
    ).astype(np.int8)

    recv_ops = (kinds == _C_RECV) | (kinds == _C_IRECV)
    pos = offsets[recv_ops]
    row_kind[pos] = _V_RECV
    row_size[pos] = sizes[recv_ops]
    row_peer[pos] = batch.peer[lo:hi][recv_ops]
    row_tag[pos] = batch.tag[lo:hi][recv_ops]
    row_mode[pos] = np.where(
        rendezvous[recv_ops],
        np.where(kinds[recv_ops] == _C_RECV, _RDV_BLOCK, _RDV_IRECV),
        np.where(kinds[recv_ops] == _C_RECV, _PLAIN, _POST),
    ).astype(np.int8)

    sendrecv_ops = kinds == _C_SENDRECV
    if np.any(sendrecv_ops):
        pos = offsets[sendrecv_ops]
        row_kind[pos] = _V_SEND
        row_size[pos] = sizes[sendrecv_ops]
        row_peer[pos] = batch.peer[lo:hi][sendrecv_ops]
        row_tag[pos] = batch.tag[lo:hi][sendrecv_ops]
        row_mode[pos] = np.where(rendezvous[sendrecv_ops], _RDV_BLOCK, _PLAIN)
        recv_sizes = batch.recv_size[lo:hi][sendrecv_ops]
        row_kind[pos + 1] = _V_RECV
        row_size[pos + 1] = recv_sizes
        row_peer[pos + 1] = batch.recv_peer[lo:hi][sendrecv_ops]
        row_tag[pos + 1] = batch.recv_tag[lo:hi][sendrecv_ops]
        recv_rendezvous = (recv_sizes > threshold) if expand else np.zeros(
            int(sendrecv_ops.sum()), dtype=bool
        )
        row_mode[pos + 1] = np.where(recv_rendezvous, _RDV_BLOCK, _PLAIN)

    wait_ops = (kinds == _C_WAIT) | (kinds == _C_WAITALL)
    pos = offsets[wait_ops]
    row_kind[pos] = _V_CALC
    row_mode[pos] = _JOIN

    # ------------------------------------------------------------------
    # sort-based request matching by handle
    # ------------------------------------------------------------------
    post_ops = np.flatnonzero((kinds == _C_ISEND) | (kinds == _C_IRECV))
    post_handles = batch.request[lo:hi][post_ops]
    negative = post_handles < 0
    if np.any(negative):
        at = int(np.argmax(negative))
        violations.append(
            (int(post_ops[at]), _ERR_NO_REQUEST, int(kinds[post_ops[at]]))
        )

    wait_positions = np.flatnonzero(kinds == _C_WAIT)
    waitall_positions = np.flatnonzero(kinds == _C_WAITALL)
    waitall_requests = [batch.requests[lo + int(i)] for i in waitall_positions]
    waitall_counts = np.array(
        [len(req) for req in waitall_requests], dtype=np.int64
    )
    consume_ops = np.concatenate([
        wait_positions,
        np.repeat(waitall_positions, waitall_counts),
    ])
    consume_handles = np.concatenate([
        batch.request[lo:hi][wait_positions],
        np.fromiter(
            (h for req in waitall_requests for h in req),
            dtype=np.int64,
            count=int(waitall_counts.sum()),
        ),
    ])
    consume_slots = np.concatenate([
        np.zeros(len(wait_positions), dtype=np.int64),
        np.concatenate([np.arange(c, dtype=np.int64) for c in waitall_counts])
        if len(waitall_counts)
        else np.empty(0, dtype=np.int64),
    ])
    # (op position, slot) order: ``wait`` and ``waitall`` ops interleave
    consume_order = np.lexsort((consume_slots, consume_ops))
    consume_ops = consume_ops[consume_order]
    consume_handles = consume_handles[consume_order]
    consume_slots = consume_slots[consume_order]

    pending_handles = np.fromiter(pending.keys(), dtype=np.int64, count=len(pending))
    n_pend, n_post, n_cons = len(pending_handles), len(post_ops), len(consume_ops)

    joins: list[tuple[int, list[tuple[str, int]]]] = []
    leftovers: dict[int, tuple[str, int]] = {}
    if n_post or n_cons:
        ev_handle = np.concatenate([pending_handles, post_handles, consume_handles])
        ev_pos = np.concatenate([
            np.full(n_pend, -1, dtype=np.int64), post_ops, consume_ops,
        ])
        ev_slot = np.concatenate([
            np.zeros(n_pend, dtype=np.int64),
            np.zeros(n_post, dtype=np.int64),
            consume_slots,
        ])
        ev_type = np.concatenate([
            np.full(n_pend + n_post, _EV_POST, dtype=np.int64),
            np.full(n_cons, _EV_CONSUME, dtype=np.int64),
        ])
        order = np.lexsort((ev_slot, ev_pos, ev_handle))
        handle_sorted = ev_handle[order]
        type_sorted = ev_type[order]
        first = np.empty(len(order), dtype=bool)
        first[0] = True
        np.not_equal(handle_sorted[1:], handle_sorted[:-1], out=first[1:])
        prev_type = np.empty(len(order), dtype=np.int64)
        prev_type[0] = _EV_CONSUME
        prev_type[1:] = np.where(first[1:], _EV_CONSUME, type_sorted[:-1])
        bad = type_sorted == prev_type
        if np.any(bad):
            for at in np.flatnonzero(bad).tolist():
                position = int(ev_pos[order[at]])
                handle = int(handle_sorted[at])
                if type_sorted[at] == _EV_POST:
                    violations.append((position, _ERR_REUSED, handle))
                else:
                    violations.append((position, _ERR_UNKNOWN, handle))
        if not violations:
            # each consume matches the event right before it in its group (a
            # post, by the alternation just checked); resolve the payload
            matched = order[np.flatnonzero(type_sorted == _EV_CONSUME) - 1]
            targets: list[tuple[str, int]] = []
            for source in matched.tolist():
                if source < n_pend:
                    targets.append(pending[int(ev_handle[source])])
                else:
                    targets.append(
                        ("row", row_base + int(offsets[ev_pos[source]]))
                    )
            # ``targets`` is in sorted-event order; map it back to the
            # original consume order (op position, then slot)
            order_of_consume = np.empty(n_cons, dtype=np.int64)
            consume_sorted_positions = np.flatnonzero(type_sorted == _EV_CONSUME)
            order_of_consume[order[consume_sorted_positions] - n_pend - n_post] = (
                np.arange(n_cons, dtype=np.int64)
            )
            target_by_op: dict[int, list[tuple[str, int]]] = {
                int(p): [] for p in np.flatnonzero(wait_ops).tolist()
            }
            for orig in range(n_cons):
                target_by_op[int(consume_ops[orig])].append(
                    targets[int(order_of_consume[orig])]
                )
            # one join per wait/waitall op in op order (empty waitalls
            # included: they still emit a labelled join vertex)
            joins.extend(
                (row_base + int(offsets[p]), found)
                for p, found in target_by_op.items()
            )
            # handles whose last event is a post stay pending
            last = np.empty(len(order), dtype=bool)
            last[-1] = True
            np.not_equal(handle_sorted[1:], handle_sorted[:-1], out=last[:-1])
            open_events = order[last & (type_sorted == _EV_POST)]
            for source in open_events.tolist():
                handle = int(ev_handle[source])
                if source < n_pend:
                    leftovers[handle] = pending[handle]
                else:
                    leftovers[handle] = (
                        "row", row_base + int(offsets[ev_pos[source]])
                    )
    else:
        leftovers = dict(pending)
        for p in np.flatnonzero(wait_ops).tolist():
            joins.append((row_base + int(offsets[p]), []))

    if violations:
        position, error, payload = min(violations)
        if error == _ERR_UNEXPECTED:
            raise ValueError(
                f"unexpected operation {OP_KINDS[payload]} in point-to-point segment"
            )
        if error == _ERR_NO_REQUEST:
            raise ValueError(f"rank {rank}: {OP_KINDS[payload]} without request")
        if error == _ERR_REUSED:
            raise ValueError(
                f"rank {rank}: request {payload} reused before completion"
            )
        raise ValueError(f"rank {rank}: wait on unknown request {payload}")

    pending.clear()
    pending.update(leftovers)
    columns = (row_kind, row_cost, row_size, row_peer, row_tag, row_mode)
    return columns, joins, nrows


def _emit_segment_simple(
    builder: GraphBuilder,
    frontier: np.ndarray,
    batches: list[RankOpBatch],
    slices: list[tuple[int, int]],
    protocol,
) -> bool:
    """Loop-free phase 1 for segments of blocking ops only.

    Returns ``True`` when it handled the segment (every op is a
    compute/send/recv, so no request bookkeeping or sendrecv splitting is
    needed and the eager rows are a pure element-wise function of the op
    columns); ``False`` defers to the generic staging loop.  COMPUTE, SEND
    and RECV are the three lowest op codes, so the shape test is one
    ``max()`` over the segment's kind column.
    """
    kind_views = []
    view_ranks = []
    for rank, (lo, hi) in enumerate(slices):
        if lo >= hi:
            continue
        kind_views.append(batches[rank].kind[lo:hi])
        view_ranks.append(rank)
    if not kind_views:
        return True
    op_kind = kind_views[0] if len(kind_views) == 1 else np.concatenate(kind_views)
    if int(op_kind.max()) > _C_RECV:
        return False
    lengths = np.array([len(v) for v in kind_views], dtype=np.int64)
    op_cost = np.concatenate(
        [batches[r].cost[lo:hi] for r, (lo, hi) in zip_slices(view_ranks, slices)]
    )
    op_rank = np.repeat(np.array(view_ranks, dtype=np.int64), lengths)
    is_compute = op_kind == _C_COMPUTE
    if is_compute.all():
        # pure computation segment (the shape between two collectives of an
        # iterated-collective schedule): CALC rows only
        keep = op_cost > 0
        if not keep.any():
            return True
        n_rows = int(np.count_nonzero(keep))
        row_kind = np.full(n_rows, _V_CALC, dtype=np.int8)
        row_cost = op_cost[keep]
        row_size = np.zeros(n_rows, dtype=np.int64)
        row_peer = np.full(n_rows, -1, dtype=np.int64)
        row_tag = np.zeros(n_rows, dtype=np.int64)
        row_mode = np.zeros(n_rows, dtype=np.int8)  # _PLAIN
    else:
        op_size = np.concatenate(
            [batches[r].size[lo:hi] for r, (lo, hi) in zip_slices(view_ranks, slices)]
        )
        op_peer = np.concatenate(
            [batches[r].peer[lo:hi] for r, (lo, hi) in zip_slices(view_ranks, slices)]
        )
        op_tag = np.concatenate(
            [batches[r].tag[lo:hi] for r, (lo, hi) in zip_slices(view_ranks, slices)]
        )
        keep = ~is_compute | (op_cost > 0)
        if not keep.any():
            return True
        row_kind = np.where(
            op_kind == _C_SEND, _V_SEND, np.where(op_kind == _C_RECV, _V_RECV, _V_CALC)
        ).astype(np.int8)[keep]
        row_cost = np.where(is_compute, op_cost, 0.0)[keep]
        row_size = np.where(is_compute, 0, op_size)[keep]
        row_peer = np.where(is_compute, -1, op_peer)[keep]
        row_tag = np.where(is_compute, 0, op_tag)[keep]
        row_mode = np.zeros(len(row_kind), dtype=np.int8)  # _PLAIN
        if protocol.expand_rendezvous:
            rendezvous = (row_kind != _V_CALC) & (row_size > protocol.eager_threshold)
            row_mode[rendezvous] = _RDV_BLOCK
    kept_ranks = op_rank[keep]
    counts = np.bincount(kept_ranks, minlength=len(batches))
    block_ranks = np.flatnonzero(counts)
    _lower_rows(
        builder,
        frontier,
        row_kind,
        row_cost,
        row_size,
        row_peer,
        row_tag,
        row_mode,
        block_ranks.astype(np.int64),
        counts[block_ranks].astype(np.int64),
        [],
        None,
    )
    return True


def zip_slices(view_ranks: list[int], slices: list[tuple[int, int]]):
    """Pair each non-empty rank with its (lo, hi) slice, in rank order."""
    return ((rank, slices[rank]) for rank in view_ranks)


def _lower_rows(
    builder: GraphBuilder,
    frontier: np.ndarray,
    kinds: np.ndarray,
    costs: np.ndarray,
    sizes: np.ndarray,
    peers: np.ndarray,
    tags: np.ndarray,
    modes: np.ndarray,
    block_rank_arr: np.ndarray,
    block_length_arr: np.ndarray,
    joins: list[tuple[int, list[tuple[str, int]]]],
    request_state: list[dict[int, tuple[str, int]]] | None,
) -> None:
    """Phase 2: vectorised lowering of staged eager rows (see
    :func:`_emit_segment`)."""
    from .builder import _CTS_TAG, _DATA_TAG, _RENDEZVOUS_CTRL_BYTES, _RTS_TAG

    expand = modes >= _RDV_BLOCK
    counts = np.where(expand, 3, 1).astype(np.int64)
    ends = np.cumsum(counts)
    offsets = ends - counts
    total = int(ends[-1])
    base = builder.num_vertices
    # the vertex each row resolves to (DATA vertex for rendezvous rows):
    # request handles and wait joins reference rows through this array
    result_vid = base + offsets + np.where(expand, 2, 0)

    out_kind = np.empty(total, dtype=np.int8)
    out_cost = np.zeros(total, dtype=np.float64)
    out_size = np.zeros(total, dtype=np.int64)
    out_peer = np.full(total, -1, dtype=np.int64)
    out_tag = np.zeros(total, dtype=np.int64)

    plain = ~expand
    plain_pos = offsets[plain]
    out_kind[plain_pos] = kinds[plain]
    out_cost[plain_pos] = costs[plain]
    out_size[plain_pos] = sizes[plain]
    out_peer[plain_pos] = peers[plain]
    out_tag[plain_pos] = tags[plain]

    rendezvous_pos = offsets[expand]
    if rendezvous_pos.size:
        side = kinds[expand]                       # SEND or RECV (the local side)
        opposite = (_V_SEND + _V_RECV) - side
        out_kind[rendezvous_pos] = side            # RTS: posted by this side
        out_kind[rendezvous_pos + 1] = opposite    # CTS: flows the other way
        out_kind[rendezvous_pos + 2] = side        # DATA: payload, local side again
        out_size[rendezvous_pos] = _RENDEZVOUS_CTRL_BYTES
        out_size[rendezvous_pos + 1] = _RENDEZVOUS_CTRL_BYTES
        out_size[rendezvous_pos + 2] = sizes[expand]
        rendezvous_peer = peers[expand]
        out_peer[rendezvous_pos] = rendezvous_peer
        out_peer[rendezvous_pos + 1] = rendezvous_peer
        out_peer[rendezvous_pos + 2] = rendezvous_peer
        base_tag = coll.RENDEZVOUS_TAG_BASE + 4 * tags[expand]
        out_tag[rendezvous_pos] = base_tag + _RTS_TAG
        out_tag[rendezvous_pos + 1] = base_tag + _CTS_TAG
        out_tag[rendezvous_pos + 2] = base_tag + _DATA_TAG

    advancing = np.zeros(total, dtype=bool)
    advancing[offsets[_START_ADVANCES[modes]]] = True
    blocking_rendezvous_pos = offsets[modes == _RDV_BLOCK]
    advancing[blocking_rendezvous_pos + 1] = True
    advancing[blocking_rendezvous_pos + 2] = True
    internal = np.zeros(total, dtype=bool)
    internal[rendezvous_pos + 1] = True
    internal[rendezvous_pos + 2] = True

    # segmented running max of advancing vertex ids, seeded per rank block
    # with the incoming frontier: encode (block, local advancing offset + 1)
    # into one monotone key so a single maximum.accumulate never leaks a
    # previous block's vertices into the next block.
    row_block = np.repeat(np.arange(len(block_rank_arr)), block_length_arr)
    out_block = np.repeat(row_block, counts)
    out_counts = np.bincount(out_block, minlength=len(block_rank_arr))
    block_starts = np.concatenate([[0], np.cumsum(out_counts)[:-1]])
    vids = base + np.arange(total, dtype=np.int64)
    local = np.arange(total, dtype=np.int64) - block_starts[out_block]
    stride = total + 2
    encoded = out_block * stride + np.where(advancing, local + 1, 0)
    accumulated = np.maximum.accumulate(encoded)
    accumulated_before = np.empty(total, dtype=np.int64)
    accumulated_before[0] = -1
    accumulated_before[1:] = accumulated[:-1]
    block_base_key = out_block * stride
    has_advanced = accumulated_before >= block_base_key + 1
    seeds = frontier[block_rank_arr]
    previous = np.where(
        has_advanced,
        base + block_starts[out_block] + (accumulated_before - block_base_key - 1),
        seeds[out_block],
    )
    dependency_src = np.where(internal, vids - 1, previous)
    edge_mask = dependency_src >= 0
    edge_src = dependency_src[edge_mask]
    edge_dst = vids[edge_mask]

    if joins:
        edge_count_through = np.cumsum(edge_mask)
        insert_at: list[int] = []
        insert_src: list[int] = []
        insert_dst: list[int] = []
        for row_index, targets in joins:
            position = int(offsets[row_index])
            join_vid = int(base + position)
            frontier_dep = int(previous[position])
            for kind_tag, value in targets:
                target_vid = value if kind_tag == "vid" else int(result_vid[value])
                if target_vid != frontier_dep:
                    insert_at.append(int(edge_count_through[position]))
                    insert_src.append(target_vid)
                    insert_dst.append(join_vid)
        if insert_at:
            edge_src = np.insert(edge_src, insert_at, insert_src)
            edge_dst = np.insert(edge_dst, insert_at, insert_dst)

    out_rank = block_rank_arr[out_block]
    builder.add_vertices(
        out_kind, out_rank, cost=out_cost, size=out_size, peer=out_peer, tag=out_tag
    )
    builder.add_dependencies(edge_src, edge_dst)
    for row_index, _ in joins:
        builder.set_label(int(base + offsets[row_index]), "wait")

    # update the frontier to each block's last advancing vertex
    block_tail = block_starts + out_counts - 1
    tail_key = accumulated[block_tail]
    block_ids = np.arange(len(block_rank_arr), dtype=np.int64)
    block_has_advanced = tail_key >= block_ids * stride + 1
    last_vid = base + block_starts + (tail_key - block_ids * stride - 1)
    frontier[block_rank_arr] = np.where(
        block_has_advanced, last_vid, frontier[block_rank_arr]
    )

    # requests posted this segment now refer to materialised vertices
    if request_state is not None:
        for requests in request_state:
            for handle, (kind_tag, value) in list(requests.items()):
                if kind_tag == "row":
                    requests[handle] = ("vid", int(result_vid[value]))


# ---------------------------------------------------------------------------
# vectorised send/recv matching
# ---------------------------------------------------------------------------

def match_messages(builder: GraphBuilder) -> None:
    """Pair SEND and RECV vertices and append the COMM edges, vectorised.

    Matching follows MPI's non-overtaking rule — the *n*-th send from ``s``
    to ``d`` with tag ``t`` matches the *n*-th receive posted on ``d`` from
    ``s`` with tag ``t`` — implemented as two stable lexicographic sorts by
    ``(src, dst, tag, vertex id)``: within each key group the vertices stay
    in posting (vid) order, so zipping the two sorted sequences yields the
    FIFO pairing.  Edges are appended sorted by ``max(send, recv)``, which
    is exactly the order in which the legacy single-scan matcher discovers
    the pairs (an edge materialises when the *later* endpoint is scanned).
    """
    from .builder import UnmatchedMessageError, _summarise_unmatched

    kind = builder.kind_column()
    rank = builder.rank_column().astype(np.int64, copy=False)
    peer = builder.peer_column().astype(np.int64, copy=False)
    tag = builder.tag_column()

    send_vid = np.flatnonzero(kind == _V_SEND)
    recv_vid = np.flatnonzero(kind == _V_RECV)
    send_src, send_dst, send_tag = rank[send_vid], peer[send_vid], tag[send_vid]
    recv_src, recv_dst, recv_tag = peer[recv_vid], rank[recv_vid], tag[recv_vid]

    send_order = np.lexsort((send_vid, send_tag, send_dst, send_src))
    recv_order = np.lexsort((recv_vid, recv_tag, recv_dst, recv_src))
    matched = len(send_vid) == len(recv_vid)
    if matched:
        matched = bool(
            np.array_equal(send_src[send_order], recv_src[recv_order])
            and np.array_equal(send_dst[send_order], recv_dst[recv_order])
            and np.array_equal(send_tag[send_order], recv_tag[recv_order])
        )
    if not matched:
        from collections import Counter

        send_keys = Counter(zip(send_src.tolist(), send_dst.tolist(), send_tag.tolist()))
        recv_keys = Counter(zip(recv_src.tolist(), recv_dst.tolist(), recv_tag.tolist()))
        unmatched_sends = {
            key: count - recv_keys.get(key, 0)
            for key, count in send_keys.items()
            if count > recv_keys.get(key, 0)
        }
        unmatched_recvs = {
            key: count - send_keys.get(key, 0)
            for key, count in recv_keys.items()
            if count > send_keys.get(key, 0)
        }
        raise UnmatchedMessageError(
            "unmatched point-to-point messages: "
            f"sends={_summarise_unmatched(unmatched_sends)} "
            f"recvs={_summarise_unmatched(unmatched_recvs)}"
        )

    sends = send_vid[send_order]
    recvs = recv_vid[recv_order]
    discovery = np.argsort(np.maximum(sends, recvs))
    builder.add_comm_edges(sends[discovery], recvs[discovery])
