"""Schedgen: convert rank programs / traces into MPI execution graphs.

This is the reproduction of the *Schedgen* schedule generator of the
LogGOPSim toolchain that LLAMP builds on (Section II-A):

* every explicit computation becomes a ``CALC`` vertex;
* every point-to-point operation becomes a ``SEND``/``RECV`` vertex linked by
  intra-rank program-order (``DEP``) edges; matching sends and receives are
  connected with ``COMM`` edges following MPI's non-overtaking rule
  (per ``(source, destination, tag)`` FIFO order);
* non-blocking operations post their vertex without advancing the local
  program-order frontier; the corresponding ``MPI_Wait`` introduces the join;
* collectives are substituted with point-to-point algorithms chosen through
  :class:`repro.schedgen.collectives.CollectiveAlgorithms` — the knob the
  ICON case study turns to compare recursive doubling with the ring
  allreduce (Fig. 10);
* messages larger than the LogGPS threshold ``S`` are (optionally) expanded
  into an explicit rendezvous handshake (RTS / CTS / DATA), so that every
  communication edge left in the graph follows eager semantics.  This is a
  documented deviation from the paper's Appendix B, which folds the
  handshake into the LP constraints instead; the timing model is equivalent
  (three latencies plus the serialisation term before the payload is
  delivered) and it keeps the simulator, the LP generator and the parametric
  engine free of protocol special cases.

Two construction engines produce bit-identical graphs:

``legacy``
    the op-by-op reference path in this module — one builder call per
    vertex, a per-vertex queue scan for message matching;
``columnar``
    the array-native engine of :mod:`repro.schedgen.columnar` — bulk
    emission of whole segments/collective rounds, a vectorised rendezvous
    post-pass and sort-based message matching.

``build_graph(..., builder_engine="auto")`` (the default) picks the
columnar engine for workloads of at least
:data:`~repro.core.lp_builder.COMPILED_ENGINE_THRESHOLD` operations,
mirroring the LP-side ``engine="auto"`` policy.
"""

from __future__ import annotations

import math
from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..mpi.program import COLLECTIVE_KINDS, OpKind, Program, ProgramOp
from ..network.params import LogGPSParams
from ..trace.records import Trace
from . import collectives as coll
from .graph import ExecutionGraph, GraphBuilder

__all__ = [
    "ProtocolConfig",
    "ScheduleGenerator",
    "build_graph",
    "resolve_builder_engine",
    "UnmatchedMessageError",
]

#: valid values of the ``builder_engine`` knob
BUILDER_ENGINES = ("auto", "legacy", "columnar")

#: size of the control messages (RTS / CTS) used by the rendezvous expansion
_RENDEZVOUS_CTRL_BYTES = 1

#: tag offsets within one rendezvous handshake
_RTS_TAG, _CTS_TAG, _DATA_TAG = 0, 1, 2


class UnmatchedMessageError(ValueError):
    """Raised when sends and receives cannot be paired."""


@dataclass(frozen=True)
class ProtocolConfig:
    """Point-to-point protocol configuration used during graph construction.

    Attributes
    ----------
    eager_threshold:
        Messages strictly larger than this many bytes use the rendezvous
        protocol (the LogGPS ``S`` parameter).
    expand_rendezvous:
        When true (default), rendezvous messages are rewritten into an
        RTS/CTS/DATA handshake of eager messages.  When false, large messages
        are kept as single eager edges (useful for ablations).
    """

    eager_threshold: int = 256 * 1024
    expand_rendezvous: bool = True

    @classmethod
    def from_params(cls, params: LogGPSParams, *, expand_rendezvous: bool = True) -> "ProtocolConfig":
        return cls(eager_threshold=int(params.S), expand_rendezvous=expand_rendezvous)

    def uses_rendezvous(self, size: int) -> bool:
        return self.expand_rendezvous and size > self.eager_threshold


@dataclass
class _RankState:
    """Mutable per-rank build state."""

    frontier: int = -1
    requests: dict[int, int] = field(default_factory=dict)


def _validate_builder_engine(engine: str) -> str:
    if engine not in BUILDER_ENGINES:
        raise ValueError(
            f"unknown builder engine {engine!r}; expected one of {BUILDER_ENGINES}"
        )
    return engine


def resolve_builder_engine(engine: str, num_ops: int) -> str:
    """Resolve the ``auto`` engine policy for a workload of ``num_ops`` ops.

    Mirrors the LP-side ``engine="auto"`` choice: columnar at or above
    :data:`~repro.core.lp_builder.COMPILED_ENGINE_THRESHOLD` operations
    (collectives expand each op into many vertices, so the op count is a
    lower bound on the graph size), the simpler op-by-op path below it.
    """
    if _validate_builder_engine(engine) != "auto":
        return engine
    from ..core.lp_builder import COMPILED_ENGINE_THRESHOLD

    return "columnar" if num_ops >= COMPILED_ENGINE_THRESHOLD else "legacy"


class ScheduleGenerator:
    """Build :class:`ExecutionGraph` objects from programs or traces.

    ``builder_engine`` selects the construction path: ``"legacy"`` (the
    op-by-op reference), ``"columnar"`` (the array-native engine of
    :mod:`repro.schedgen.columnar`) or ``"auto"`` (columnar for workloads of
    at least :data:`~repro.core.lp_builder.COMPILED_ENGINE_THRESHOLD`
    operations/records).  Both engines produce bit-identical graphs.
    """

    def __init__(
        self,
        algorithms: coll.CollectiveAlgorithms | None = None,
        protocol: ProtocolConfig | None = None,
        builder_engine: str = "auto",
    ) -> None:
        self.algorithms = algorithms or coll.CollectiveAlgorithms()
        self.protocol = protocol or ProtocolConfig()
        self.builder_engine = _validate_builder_engine(builder_engine)

    # -- public entry points -------------------------------------------------

    def build(self, program: Program) -> ExecutionGraph:
        """Convert a :class:`Program` into an execution graph."""
        engine = resolve_builder_engine(self.builder_engine, program.num_ops)
        if engine == "columnar":
            from . import columnar

            batches = columnar.batches_from_program(program)
            return columnar.build_columnar(
                batches, program.nranks, algorithms=self.algorithms, protocol=self.protocol
            )
        return self._build_legacy(program)

    def _build_legacy(self, program: Program) -> ExecutionGraph:
        program.validate()
        builder = GraphBuilder(nranks=program.nranks)
        states = [_RankState() for _ in range(program.nranks)]
        self._tag_cursor = coll.COLLECTIVE_TAG_BASE

        segments, collectives_per_segment = _split_on_collectives(program)
        frontier = [-1] * program.nranks
        for seg_index, segment in enumerate(segments):
            for rank, ops in enumerate(segment):
                state = states[rank]
                state.frontier = frontier[rank]
                for op in ops:
                    self._emit_p2p_op(builder, state, rank, op)
                frontier[rank] = state.frontier
            if seg_index < len(collectives_per_segment):
                collective = collectives_per_segment[seg_index]
                self._emit_collective(builder, frontier, collective)

        _match_messages(builder, program.nranks)
        return builder.freeze(validate=True)

    def build_from_trace(self, trace: Trace, *, min_compute: float = 0.0) -> ExecutionGraph:
        """Convert a timestamped trace into an execution graph.

        Computation is inferred from the gap between consecutive MPI calls on
        the same rank, as Schedgen does with liballprof traces (Fig. 3).  The
        columnar engine ingests the trace columns directly
        (:func:`repro.schedgen.columnar.batches_from_trace`) without the
        ``ProgramOp``-object detour of the legacy path; the resulting graph
        is bit-identical either way.
        """
        engine = resolve_builder_engine(self.builder_engine, trace.num_records)
        if engine == "columnar":
            from . import columnar

            trace.validate()
            batches = columnar.batches_from_trace(trace, min_compute=min_compute)
            return columnar.build_columnar(
                batches, trace.nranks, algorithms=self.algorithms, protocol=self.protocol
            )
        program = Program.from_trace(trace, min_compute=min_compute)
        return self._build_legacy(program)

    # -- point-to-point ------------------------------------------------------

    def _emit_p2p_op(
        self, builder: GraphBuilder, state: _RankState, rank: int, op: ProgramOp
    ) -> None:
        kind = op.kind
        if kind is OpKind.COMPUTE:
            if op.cost > 0:
                vid = builder.add_calc(rank, op.cost)
                self._advance(builder, state, vid)
            return
        if op.is_p2p:
            _check_user_tag(rank, op.tag)
            if kind is OpKind.SENDRECV:
                _check_user_tag(rank, op.recv_tag)
        if kind is OpKind.SEND:
            self._emit_send_blocking(builder, state, rank, op.peer, op.size, op.tag)
            return
        if kind is OpKind.RECV:
            self._emit_recv_blocking(builder, state, rank, op.peer, op.size, op.tag)
            return
        if kind is OpKind.SENDRECV:
            self._emit_send_blocking(builder, state, rank, op.peer, op.size, op.tag)
            self._emit_recv_blocking(
                builder, state, rank, op.recv_peer, op.recv_size, op.recv_tag
            )
            return
        if kind is OpKind.ISEND:
            if self.protocol.uses_rendezvous(op.size):
                vid = self._emit_rendezvous_isend(builder, state, rank, op.peer, op.size, op.tag)
            else:
                vid = self._emit_send_blocking(builder, state, rank, op.peer, op.size, op.tag)
            state.requests[op.request] = vid
            return
        if kind is OpKind.IRECV:
            vid = self._emit_recv_posted(builder, state, rank, op.peer, op.size, op.tag)
            state.requests[op.request] = vid
            return
        if kind is OpKind.WAIT:
            self._emit_wait(builder, state, rank, [op.request])
            return
        if kind is OpKind.WAITALL:
            self._emit_wait(builder, state, rank, list(op.requests))
            return
        raise ValueError(f"unexpected operation {kind} in point-to-point segment")

    def _advance(self, builder: GraphBuilder, state: _RankState, vid: int) -> None:
        if state.frontier >= 0:
            builder.add_dependency(state.frontier, vid)
        state.frontier = vid

    def _emit_send_blocking(
        self, builder: GraphBuilder, state: _RankState, rank: int, peer: int, size: int, tag: int
    ) -> int:
        if self.protocol.uses_rendezvous(size):
            return self._emit_rendezvous_send(builder, state, rank, peer, size, tag)
        vid = builder.add_send(rank, peer, size, tag=tag)
        self._advance(builder, state, vid)
        return vid

    def _emit_recv_blocking(
        self, builder: GraphBuilder, state: _RankState, rank: int, peer: int, size: int, tag: int
    ) -> int:
        if self.protocol.uses_rendezvous(size):
            return self._emit_rendezvous_recv(builder, state, rank, peer, size, tag)
        vid = builder.add_recv(rank, peer, size, tag=tag)
        self._advance(builder, state, vid)
        return vid

    def _emit_recv_posted(
        self, builder: GraphBuilder, state: _RankState, rank: int, peer: int, size: int, tag: int
    ) -> int:
        """Post a non-blocking receive: the vertex depends on the frontier but
        does not advance it (later computation may overlap the transfer)."""
        if self.protocol.uses_rendezvous(size):
            # the handshake proceeds asynchronously (progress engine): none of
            # its vertices advance the program-order frontier; the matching
            # MPI_Wait joins on the final DATA receive.
            base = self._rendezvous_base_tag(peer, rank, tag)
            rts = builder.add_recv(rank, peer, _RENDEZVOUS_CTRL_BYTES, tag=base + _RTS_TAG)
            if state.frontier >= 0:
                builder.add_dependency(state.frontier, rts)
            cts = builder.add_send(rank, peer, _RENDEZVOUS_CTRL_BYTES, tag=base + _CTS_TAG)
            builder.add_dependency(rts, cts)
            data = builder.add_recv(rank, peer, size, tag=base + _DATA_TAG)
            builder.add_dependency(cts, data)
            return data
        vid = builder.add_recv(rank, peer, size, tag=tag)
        if state.frontier >= 0:
            builder.add_dependency(state.frontier, vid)
        return vid

    def _emit_rendezvous_isend(
        self, builder: GraphBuilder, state: _RankState, rank: int, peer: int, size: int, tag: int
    ) -> int:
        """Non-blocking rendezvous send: the RTS occupies the CPU, the CTS/DATA
        exchange runs asynchronously and is joined by the matching wait."""
        base = self._rendezvous_base_tag(rank, peer, tag)
        rts = builder.add_send(rank, peer, _RENDEZVOUS_CTRL_BYTES, tag=base + _RTS_TAG)
        self._advance(builder, state, rts)
        cts = builder.add_recv(rank, peer, _RENDEZVOUS_CTRL_BYTES, tag=base + _CTS_TAG)
        builder.add_dependency(rts, cts)
        data = builder.add_send(rank, peer, size, tag=base + _DATA_TAG)
        builder.add_dependency(cts, data)
        return data

    def _emit_wait(
        self, builder: GraphBuilder, state: _RankState, rank: int, requests: Sequence[int]
    ) -> None:
        targets = []
        for req in requests:
            if req not in state.requests:
                raise ValueError(f"rank {rank}: wait on unknown request {req}")
            targets.append(state.requests.pop(req))
        join = builder.add_calc(rank, 0.0, label="wait")
        if state.frontier >= 0:
            builder.add_dependency(state.frontier, join)
        for vid in targets:
            if vid != state.frontier:
                builder.add_dependency(vid, join)
        state.frontier = join

    # -- rendezvous expansion --------------------------------------------------

    def _emit_rendezvous_send(
        self, builder: GraphBuilder, state: _RankState, rank: int, peer: int, size: int, tag: int
    ) -> int:
        base = self._rendezvous_base_tag(rank, peer, tag)
        rts = builder.add_send(rank, peer, _RENDEZVOUS_CTRL_BYTES, tag=base + _RTS_TAG)
        self._advance(builder, state, rts)
        cts = builder.add_recv(rank, peer, _RENDEZVOUS_CTRL_BYTES, tag=base + _CTS_TAG)
        self._advance(builder, state, cts)
        data = builder.add_send(rank, peer, size, tag=base + _DATA_TAG)
        self._advance(builder, state, data)
        return data

    def _emit_rendezvous_recv(
        self, builder: GraphBuilder, state: _RankState, rank: int, peer: int, size: int, tag: int
    ) -> int:
        base = self._rendezvous_base_tag(peer, rank, tag)
        rts = builder.add_recv(rank, peer, _RENDEZVOUS_CTRL_BYTES, tag=base + _RTS_TAG)
        self._advance(builder, state, rts)
        cts = builder.add_send(rank, peer, _RENDEZVOUS_CTRL_BYTES, tag=base + _CTS_TAG)
        self._advance(builder, state, cts)
        data = builder.add_recv(rank, peer, size, tag=base + _DATA_TAG)
        self._advance(builder, state, data)
        return data

    @staticmethod
    def _rendezvous_base_tag(sender: int, receiver: int, tag: int) -> int:
        # Deterministic tag derived from the user tag: all three sub-messages
        # of a handshake share the base, and matching stays FIFO per
        # (sender, receiver, user tag) because the base is a pure function of
        # those three values.  User tags are range-checked against
        # USER_TAG_LIMIT on emission, so the derived base can never fall into
        # the user or collective regions.
        return coll.RENDEZVOUS_TAG_BASE + tag * 4

    # -- collectives -----------------------------------------------------------

    def _next_collective_tag(self, nranks: int) -> int:
        tag, self._tag_cursor = coll.next_collective_tag(self._tag_cursor, nranks)
        return tag

    def _emit_collective(
        self, builder: GraphBuilder, frontier: list[int], op: ProgramOp
    ) -> None:
        tag = self._next_collective_tag(builder.nranks)
        _expand_collective(
            builder,
            frontier,
            kind=op.kind,
            size=op.size,
            root=op.root,
            algorithms=self.algorithms,
            tag=tag,
            expanders=coll.LEGACY_EXPANDERS,
        )


def _expand_collective(
    builder: GraphBuilder,
    frontier,
    *,
    kind: OpKind,
    size: int,
    root: int,
    algorithms: coll.CollectiveAlgorithms,
    tag: int,
    expanders: dict,
) -> None:
    """Dispatch one collective to the selected algorithm implementation.

    Shared by both engines: ``expanders`` is either
    :data:`~repro.schedgen.collectives.LEGACY_EXPANDERS` (``frontier`` is a
    Python list) or :data:`~repro.schedgen.collectives.COLUMNAR_EXPANDERS`
    (``frontier`` is an int64 array).
    """
    if kind is OpKind.BARRIER:
        expanders["barrier_dissemination"](builder, frontier, tag=tag)
    elif kind is OpKind.BCAST:
        expanders[f"bcast_{algorithms.bcast}"](
            builder, frontier, root=root, size=size, tag=tag
        )
    elif kind is OpKind.REDUCE:
        expanders[f"reduce_{algorithms.reduce}"](
            builder, frontier, root=root, size=size, tag=tag
        )
    elif kind is OpKind.ALLREDUCE:
        kwargs = dict(size=size, tag=tag)
        if algorithms.allreduce == "reduce_bcast":
            kwargs["root"] = root
        expanders[f"allreduce_{algorithms.allreduce}"](builder, frontier, **kwargs)
    elif kind is OpKind.ALLGATHER:
        expanders[f"allgather_{algorithms.allgather}"](
            builder, frontier, size=size, tag=tag
        )
    elif kind is OpKind.ALLTOALL:
        expanders[f"alltoall_{algorithms.alltoall}"](
            builder, frontier, size=size, tag=tag
        )
    elif kind is OpKind.GATHER:
        expanders[f"gather_{algorithms.gather}"](
            builder, frontier, root=root, size=size, tag=tag
        )
    elif kind is OpKind.SCATTER:
        expanders[f"scatter_{algorithms.scatter}"](
            builder, frontier, root=root, size=size, tag=tag
        )
    else:  # pragma: no cover - defensive
        raise ValueError(f"unknown collective kind {kind}")


def _check_user_tag(rank: int, tag: int) -> None:
    """Reject point-to-point tags outside the user tag region.

    Synthetic tags (expanded collectives, rendezvous handshakes) live in
    dedicated regions above :data:`~repro.schedgen.collectives.USER_TAG_LIMIT`;
    letting a traced tag into those regions could silently cross-match user
    traffic with synthetic traffic.
    """
    if not 0 <= tag < coll.USER_TAG_LIMIT:
        raise ValueError(
            f"rank {rank}: point-to-point tag {tag} outside the user tag "
            f"range [0, {coll.USER_TAG_LIMIT}) reserved from the collective/"
            f"rendezvous tag spaces"
        )


def build_graph(
    program: Program,
    *,
    algorithms: coll.CollectiveAlgorithms | None = None,
    protocol: ProtocolConfig | None = None,
    params: LogGPSParams | None = None,
    builder_engine: str = "auto",
) -> ExecutionGraph:
    """Convenience wrapper: build an execution graph from a program.

    If ``params`` is given and ``protocol`` is not, the protocol threshold is
    taken from ``params.S``.  ``builder_engine`` selects the construction
    path (``"legacy"``, ``"columnar"`` or ``"auto"``; see
    :class:`ScheduleGenerator`) — the frozen graph is bit-identical either
    way.
    """
    if protocol is None and params is not None:
        protocol = ProtocolConfig.from_params(params)
    generator = ScheduleGenerator(
        algorithms=algorithms, protocol=protocol, builder_engine=builder_engine
    )
    return generator.build(program)


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------

def _split_on_collectives(
    program: Program,
) -> tuple[list[list[list[ProgramOp]]], list[ProgramOp]]:
    """Split every rank's op list into segments separated by collectives.

    Returns ``(segments, collectives)`` where ``segments[i][rank]`` is the list
    of point-to-point/compute ops of ``rank`` before collective ``i`` (the last
    segment follows the final collective), and ``collectives[i]`` is the
    representative collective op (taken from rank 0, sizes cross-checked).
    """
    per_rank_segments: list[list[list[ProgramOp]]] = []
    per_rank_collectives: list[list[ProgramOp]] = []
    for rp in program.ranks:
        segments: list[list[ProgramOp]] = [[]]
        collective_ops: list[ProgramOp] = []
        for op in rp:
            if op.is_collective:
                collective_ops.append(op)
                segments.append([])
            else:
                segments[-1].append(op)
        per_rank_segments.append(segments)
        per_rank_collectives.append(collective_ops)

    n_coll = len(per_rank_collectives[0]) if per_rank_collectives else 0
    for rank, ops in enumerate(per_rank_collectives):
        if len(ops) != n_coll:
            raise ValueError(
                f"rank {rank} calls {len(ops)} collectives but rank 0 calls {n_coll}"
            )
        for i, op in enumerate(ops):
            if op.kind is not per_rank_collectives[0][i].kind:
                raise ValueError(
                    f"collective #{i}: rank {rank} calls {op.kind}, rank 0 calls "
                    f"{per_rank_collectives[0][i].kind}"
                )

    # segments indexed [segment][rank]
    n_segments = n_coll + 1
    segments_by_index: list[list[list[ProgramOp]]] = []
    for seg in range(n_segments):
        segments_by_index.append([per_rank_segments[rank][seg] for rank in range(program.nranks)])
    # the representative collective: take rank 0's op but use the maximum size
    # observed across ranks (they should agree; be permissive about zero sizes)
    representatives: list[ProgramOp] = []
    for i in range(n_coll):
        rep = per_rank_collectives[0][i]
        max_size = max(per_rank_collectives[rank][i].size for rank in range(program.nranks))
        if max_size != rep.size:
            from dataclasses import replace

            rep = replace(rep, size=max_size)
        representatives.append(rep)
    return segments_by_index, representatives


def _match_messages(builder: GraphBuilder, nranks: int) -> None:
    """Pair SEND and RECV vertices and add the COMM edges.

    Matching follows MPI's non-overtaking rule: the *n*-th send from rank
    ``s`` to rank ``d`` with tag ``t`` matches the *n*-th receive posted on
    ``d`` from ``s`` with tag ``t``.  Vertex ids increase in per-rank posting
    order, so a single scan in id order yields the right FIFO queues.
    """
    from .graph import VertexKind

    sends: dict[tuple[int, int, int], deque[int]] = defaultdict(deque)
    recvs: dict[tuple[int, int, int], deque[int]] = defaultdict(deque)

    kinds = builder.kind_column().tolist()
    ranks = builder.rank_column().tolist()
    peers = builder.peer_column().tolist()
    tags = builder.tag_column().tolist()

    for vid in range(builder.num_vertices):
        kind = kinds[vid]
        if kind == VertexKind.SEND:
            key = (ranks[vid], peers[vid], tags[vid])
            if recvs[key]:
                builder.add_comm_edge(vid, recvs[key].popleft())
            else:
                sends[key].append(vid)
        elif kind == VertexKind.RECV:
            key = (peers[vid], ranks[vid], tags[vid])
            if sends[key]:
                builder.add_comm_edge(sends[key].popleft(), vid)
            else:
                recvs[key].append(vid)

    unmatched_sends = {k: list(v) for k, v in sends.items() if v}
    unmatched_recvs = {k: list(v) for k, v in recvs.items() if v}
    if unmatched_sends or unmatched_recvs:
        raise UnmatchedMessageError(
            "unmatched point-to-point messages: "
            f"sends={_summarise_unmatched(unmatched_sends)} "
            f"recvs={_summarise_unmatched(unmatched_recvs)}"
        )


def _summarise_unmatched(unmatched: dict[tuple[int, int, int], object]) -> str:
    items = []
    for (src, dst, tag), entry in list(unmatched.items())[:5]:
        count = entry if isinstance(entry, int) else len(entry)
        items.append(f"(src={src}, dst={dst}, tag={tag}, count={count})")
    more = len(unmatched) - len(items)
    if more > 0:
        items.append(f"... and {more} more keys")
    return "[" + ", ".join(items) + "]"
