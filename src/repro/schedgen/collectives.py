"""Collective-to-point-to-point expansion (Schedgen's collective substitution).

Schedgen replaces every collective operation in a trace with a concrete
point-to-point algorithm chosen by the user (Section II-A, and the ICON case
study of Section IV switches ``MPI_Allreduce`` between *recursive doubling*
and the *ring* algorithm).  This module implements that expansion directly on
a :class:`repro.schedgen.graph.GraphBuilder`.

Each expansion function receives the builder, the per-rank local frontier
vertex (the last vertex of each rank's program-order chain, or ``-1`` when a
rank has no vertex yet) and returns the new per-rank frontier after the
collective.  Internally every emitted message uses a tag from a dedicated
collective tag space so that point-to-point matching can never confuse
user messages with collective traffic.

Every algorithm exists in two bit-identical implementations:

* the *legacy* op-by-op expanders (``expand_*``) that emit one vertex per
  ``add_send``/``add_recv`` call — the reference the parity suite tests
  against;
* the *columnar* expanders (``batch_*``) that compute the whole collective
  as index arithmetic (one ``kind``/``rank``/``peer``/``size``/``tag``
  array per emission, all ranks at once) and flush it through the bulk
  :meth:`~repro.schedgen.graph.GraphBuilder.add_vertices` /
  ``add_dependencies`` APIs via :func:`_emit_chunks`, which threads the
  per-rank program-order frontier through the batch with one segmented
  scan instead of a Python loop.

Both are reachable through the ``LEGACY_EXPANDERS`` / ``COLUMNAR_EXPANDERS``
registries keyed by ``"<collective>_<algorithm>"``.

Tag-space layout
----------------
The int64 tag space is partitioned so synthetic tags can never collide with
traced ones (and the schedule generators range-check user tags against it):

* ``[0, USER_TAG_LIMIT)`` — user point-to-point tags;
* ``[COLLECTIVE_TAG_BASE, COLLECTIVE_TAG_LIMIT)`` — expanded collectives
  (the cursor advances by ``4 * nranks + 16`` per collective, see
  :func:`next_collective_tag`);
* ``[RENDEZVOUS_TAG_BASE, RENDEZVOUS_TAG_BASE + 4 * USER_TAG_LIMIT)`` —
  rendezvous handshakes (base tag ``RENDEZVOUS_TAG_BASE + 4 * user_tag``).

Conventions
-----------
* A send vertex depends on the rank's current frontier; a receive that the
  algorithm requires before progressing is chained after the send of the same
  round (sendrecv-style), which is how LogGOPSim schedules these algorithms.
* Message sizes follow the textbook algorithms: recursive doubling exchanges
  the full vector every round, the ring algorithm moves ``size / P`` chunks,
  binomial trees move the full vector per tree edge, the dissemination
  barrier moves 1-byte tokens.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from .graph import GraphBuilder, VertexKind

__all__ = [
    "CollectiveAlgorithms",
    "COLLECTIVE_TAG_BASE",
    "COLLECTIVE_TAG_LIMIT",
    "RENDEZVOUS_TAG_BASE",
    "USER_TAG_LIMIT",
    "next_collective_tag",
    "LEGACY_EXPANDERS",
    "COLUMNAR_EXPANDERS",
    "expand_barrier_dissemination",
    "expand_bcast_binomial",
    "expand_bcast_linear",
    "expand_reduce_binomial",
    "expand_allreduce_recursive_doubling",
    "expand_allreduce_ring",
    "expand_allreduce_reduce_bcast",
    "expand_allgather_ring",
    "expand_allgather_recursive_doubling",
    "expand_alltoall_pairwise",
    "expand_gather_linear",
    "expand_scatter_linear",
    "reduce_time_per_byte",
]

#: base of the tag space reserved for expanded collectives
COLLECTIVE_TAG_BASE = 1 << 30

#: exclusive upper bound of the collective tag region (the rendezvous region
#: starts here; :func:`next_collective_tag` refuses to cross it)
COLLECTIVE_TAG_LIMIT = COLLECTIVE_TAG_BASE + (COLLECTIVE_TAG_BASE >> 1)

#: base of the tag space reserved for rendezvous handshakes: the base tag of
#: one handshake is ``RENDEZVOUS_TAG_BASE + 4 * user_tag`` (three consecutive
#: offsets for RTS/CTS/DATA, one slot spare)
RENDEZVOUS_TAG_BASE = COLLECTIVE_TAG_LIMIT

#: exclusive upper bound on user point-to-point tags.  Chosen so that the
#: rendezvous region ``[RENDEZVOUS_TAG_BASE, RENDEZVOUS_TAG_BASE + 4 *
#: USER_TAG_LIMIT)`` ends exactly at ``2 * COLLECTIVE_TAG_BASE`` and the
#: three synthetic regions stay pairwise disjoint.
USER_TAG_LIMIT = COLLECTIVE_TAG_BASE >> 3


def next_collective_tag(cursor: int, nranks: int) -> tuple[int, int]:
    """Reserve a tag block for one expanded collective.

    Returns ``(tag, next_cursor)``; the block spans ``4 * nranks + 16`` tags,
    enough for every per-round tag any implemented algorithm derives from the
    base.  Raises :class:`ValueError` when the collective region
    ``[COLLECTIVE_TAG_BASE, COLLECTIVE_TAG_LIMIT)`` would overflow into the
    rendezvous region (≈ 2^29 tags ≈ millions of collectives — a schedule
    that large is a bug upstream).
    """
    span = 4 * nranks + 16
    if cursor + span > COLLECTIVE_TAG_LIMIT:
        raise ValueError(
            "collective tag space exhausted: "
            f"cursor {cursor} + {span} exceeds {COLLECTIVE_TAG_LIMIT}"
        )
    return cursor, cursor + span


#: default local reduction cost per byte (microseconds); kept small so that
#: collective timing is communication-dominated, as in the paper's model.
_DEFAULT_REDUCE_TIME_PER_BYTE = 0.0


def reduce_time_per_byte() -> float:
    """Per-byte local reduction cost used by reduction collectives."""
    return _DEFAULT_REDUCE_TIME_PER_BYTE


Frontier = list[int]


def _chunk_size(size: int, nranks: int) -> int:
    """Per-rank chunk size for ring/reduce-scatter style algorithms."""
    return max(1, math.ceil(size / max(nranks, 1)))


def _emit_send(
    builder: GraphBuilder,
    frontier: Frontier,
    rank: int,
    peer: int,
    size: int,
    tag: int,
) -> int:
    vid = builder.add_send(rank, peer, size, tag=tag)
    if frontier[rank] >= 0:
        builder.add_dependency(frontier[rank], vid)
    frontier[rank] = vid
    return vid


def _emit_recv(
    builder: GraphBuilder,
    frontier: Frontier,
    rank: int,
    peer: int,
    size: int,
    tag: int,
) -> int:
    vid = builder.add_recv(rank, peer, size, tag=tag)
    if frontier[rank] >= 0:
        builder.add_dependency(frontier[rank], vid)
    frontier[rank] = vid
    return vid


def _emit_calc(builder: GraphBuilder, frontier: Frontier, rank: int, cost: float) -> int:
    if cost <= 0:
        return frontier[rank]
    vid = builder.add_calc(rank, cost)
    if frontier[rank] >= 0:
        builder.add_dependency(frontier[rank], vid)
    frontier[rank] = vid
    return vid


# ---------------------------------------------------------------------------
# barrier
# ---------------------------------------------------------------------------

def expand_barrier_dissemination(
    builder: GraphBuilder, frontier: Frontier, *, tag: int, size: int = 1
) -> None:
    """Dissemination barrier: ``ceil(log2 P)`` rounds of 1-byte tokens."""
    nranks = builder.nranks
    if nranks < 2:
        return
    rounds = math.ceil(math.log2(nranks))
    for k in range(rounds):
        dist = 1 << k
        round_tag = tag + k
        for rank in range(nranks):
            _emit_send(builder, frontier, rank, (rank + dist) % nranks, size, round_tag)
        for rank in range(nranks):
            _emit_recv(builder, frontier, rank, (rank - dist) % nranks, size, round_tag)


# ---------------------------------------------------------------------------
# broadcast / reduce (binomial trees)
# ---------------------------------------------------------------------------

def expand_bcast_binomial(
    builder: GraphBuilder, frontier: Frontier, *, root: int, size: int, tag: int
) -> None:
    """Binomial-tree broadcast rooted at ``root``.

    Ranks are renumbered relative to the root; in round ``k`` every rank whose
    relative id is below ``2^k`` and has a partner ``rel + 2^k < P`` forwards
    the message.
    """
    nranks = builder.nranks
    if nranks < 2:
        return
    rounds = math.ceil(math.log2(nranks))
    for k in range(rounds):
        dist = 1 << k
        round_tag = tag + k
        for rel in range(dist):
            partner_rel = rel + dist
            if partner_rel >= nranks:
                continue
            src = (rel + root) % nranks
            dst = (partner_rel + root) % nranks
            _emit_send(builder, frontier, src, dst, size, round_tag)
            _emit_recv(builder, frontier, dst, src, size, round_tag)


def expand_bcast_linear(
    builder: GraphBuilder, frontier: Frontier, *, root: int, size: int, tag: int
) -> None:
    """Linear broadcast: the root sends to every other rank in turn."""
    nranks = builder.nranks
    for offset in range(1, nranks):
        dst = (root + offset) % nranks
        _emit_send(builder, frontier, root, dst, size, tag)
        _emit_recv(builder, frontier, dst, root, size, tag)


def expand_reduce_binomial(
    builder: GraphBuilder,
    frontier: Frontier,
    *,
    root: int,
    size: int,
    tag: int,
    reduce_cost_per_byte: float = _DEFAULT_REDUCE_TIME_PER_BYTE,
) -> None:
    """Binomial-tree reduction to ``root`` (mirror image of the broadcast)."""
    nranks = builder.nranks
    if nranks < 2:
        return
    rounds = math.ceil(math.log2(nranks))
    for k in reversed(range(rounds)):
        dist = 1 << k
        round_tag = tag + k
        for rel in range(dist):
            partner_rel = rel + dist
            if partner_rel >= nranks:
                continue
            receiver = (rel + root) % nranks
            sender = (partner_rel + root) % nranks
            _emit_send(builder, frontier, sender, receiver, size, round_tag)
            _emit_recv(builder, frontier, receiver, sender, size, round_tag)
            _emit_calc(builder, frontier, receiver, reduce_cost_per_byte * size)


# ---------------------------------------------------------------------------
# allreduce
# ---------------------------------------------------------------------------

def expand_allreduce_recursive_doubling(
    builder: GraphBuilder,
    frontier: Frontier,
    *,
    size: int,
    tag: int,
    reduce_cost_per_byte: float = _DEFAULT_REDUCE_TIME_PER_BYTE,
) -> None:
    """Recursive-doubling allreduce.

    For a power-of-two number of ranks this is ``log2 P`` rounds in which rank
    ``r`` exchanges the full vector with ``r XOR 2^k``.  For non-powers of two
    the standard fold/unfold scheme is used: the first ``2 * rem`` ranks are
    folded pairwise onto ``P' = 2^floor(log2 P)`` participants, which run the
    power-of-two exchange, and the result is unfolded back.
    """
    nranks = builder.nranks
    if nranks < 2:
        return
    pof2 = 1 << (nranks.bit_length() - 1)
    rem = nranks - pof2
    tag_cursor = tag

    # fold: ranks [0, 2*rem) pair up; odd members send their vector to the even
    # partner and drop out of the exchange phase.
    participants: list[int] = []
    for rank in range(nranks):
        if rank < 2 * rem:
            if rank % 2 == 1:
                partner = rank - 1
                _emit_send(builder, frontier, rank, partner, size, tag_cursor)
                _emit_recv(builder, frontier, partner, rank, size, tag_cursor)
                _emit_calc(builder, frontier, partner, reduce_cost_per_byte * size)
            else:
                participants.append(rank)
        else:
            participants.append(rank)
    tag_cursor += 1

    # recursive doubling among `pof2` participants (indexed by their position)
    rounds = int(math.log2(pof2)) if pof2 > 1 else 0
    for k in range(rounds):
        dist = 1 << k
        round_tag = tag_cursor + k
        for idx, rank in enumerate(participants):
            partner = participants[idx ^ dist]
            _emit_send(builder, frontier, rank, partner, size, round_tag)
        for idx, rank in enumerate(participants):
            partner = participants[idx ^ dist]
            _emit_recv(builder, frontier, rank, partner, size, round_tag)
            _emit_calc(builder, frontier, rank, reduce_cost_per_byte * size)
    tag_cursor += max(rounds, 1)

    # unfold: even partners send the result back to the folded odd ranks.
    for rank in range(nranks):
        if rank < 2 * rem and rank % 2 == 1:
            partner = rank - 1
            _emit_send(builder, frontier, partner, rank, size, tag_cursor)
            _emit_recv(builder, frontier, rank, partner, size, tag_cursor)


def expand_allreduce_ring(
    builder: GraphBuilder,
    frontier: Frontier,
    *,
    size: int,
    tag: int,
    reduce_cost_per_byte: float = _DEFAULT_REDUCE_TIME_PER_BYTE,
) -> None:
    """Ring allreduce: reduce-scatter followed by allgather, ``2(P-1)`` steps.

    Every step moves a ``size / P`` chunk to the next rank on the ring, which
    creates a chain of ``2(P-1)`` dependent messages — exactly the property
    that makes ICON much more latency sensitive under this algorithm
    (Section IV-1).
    """
    nranks = builder.nranks
    if nranks < 2:
        return
    chunk = _chunk_size(size, nranks)
    steps = 2 * (nranks - 1)
    for step in range(steps):
        step_tag = tag + step
        reducing = step < nranks - 1
        for rank in range(nranks):
            dst = (rank + 1) % nranks
            _emit_send(builder, frontier, rank, dst, chunk, step_tag)
        for rank in range(nranks):
            src = (rank - 1) % nranks
            _emit_recv(builder, frontier, rank, src, chunk, step_tag)
            if reducing:
                _emit_calc(builder, frontier, rank, reduce_cost_per_byte * chunk)


def expand_allreduce_reduce_bcast(
    builder: GraphBuilder,
    frontier: Frontier,
    *,
    size: int,
    tag: int,
    root: int = 0,
    reduce_cost_per_byte: float = _DEFAULT_REDUCE_TIME_PER_BYTE,
) -> None:
    """Allreduce implemented as a binomial reduce followed by a binomial bcast."""
    nranks = builder.nranks
    if nranks < 2:
        return
    rounds = math.ceil(math.log2(nranks))
    expand_reduce_binomial(
        builder,
        frontier,
        root=root,
        size=size,
        tag=tag,
        reduce_cost_per_byte=reduce_cost_per_byte,
    )
    expand_bcast_binomial(builder, frontier, root=root, size=size, tag=tag + rounds + 1)


# ---------------------------------------------------------------------------
# allgather / alltoall / gather / scatter
# ---------------------------------------------------------------------------

def expand_allgather_ring(
    builder: GraphBuilder, frontier: Frontier, *, size: int, tag: int
) -> None:
    """Ring allgather: ``P - 1`` steps, each moving one rank's contribution."""
    nranks = builder.nranks
    if nranks < 2:
        return
    for step in range(nranks - 1):
        step_tag = tag + step
        for rank in range(nranks):
            dst = (rank + 1) % nranks
            _emit_send(builder, frontier, rank, dst, size, step_tag)
        for rank in range(nranks):
            src = (rank - 1) % nranks
            _emit_recv(builder, frontier, rank, src, size, step_tag)


def expand_allgather_recursive_doubling(
    builder: GraphBuilder, frontier: Frontier, *, size: int, tag: int
) -> None:
    """Recursive-doubling allgather; the exchanged volume doubles each round.

    Non-power-of-two rank counts fall back to the ring algorithm, matching the
    behaviour of common MPI implementations.
    """
    nranks = builder.nranks
    if nranks < 2:
        return
    if nranks & (nranks - 1):
        expand_allgather_ring(builder, frontier, size=size, tag=tag)
        return
    rounds = int(math.log2(nranks))
    for k in range(rounds):
        dist = 1 << k
        round_tag = tag + k
        volume = size * dist
        for rank in range(nranks):
            partner = rank ^ dist
            _emit_send(builder, frontier, rank, partner, volume, round_tag)
        for rank in range(nranks):
            partner = rank ^ dist
            _emit_recv(builder, frontier, rank, partner, volume, round_tag)


def expand_alltoall_pairwise(
    builder: GraphBuilder, frontier: Frontier, *, size: int, tag: int
) -> None:
    """Pairwise-exchange alltoall: ``P - 1`` rounds, partner ``(r + k) mod P``.

    ``size`` is the per-peer payload (what each rank sends to each other
    rank), matching ``MPI_Alltoall`` semantics.
    """
    nranks = builder.nranks
    if nranks < 2:
        return
    for step in range(1, nranks):
        step_tag = tag + step
        for rank in range(nranks):
            dst = (rank + step) % nranks
            _emit_send(builder, frontier, rank, dst, size, step_tag)
        for rank in range(nranks):
            src = (rank - step) % nranks
            _emit_recv(builder, frontier, rank, src, size, step_tag)


def expand_gather_linear(
    builder: GraphBuilder, frontier: Frontier, *, root: int, size: int, tag: int
) -> None:
    """Linear gather: every non-root rank sends its contribution to the root."""
    nranks = builder.nranks
    for offset in range(1, nranks):
        src = (root + offset) % nranks
        _emit_send(builder, frontier, src, root, size, tag)
        _emit_recv(builder, frontier, root, src, size, tag)


def expand_scatter_linear(
    builder: GraphBuilder, frontier: Frontier, *, root: int, size: int, tag: int
) -> None:
    """Linear scatter: the root sends each rank its chunk."""
    nranks = builder.nranks
    for offset in range(1, nranks):
        dst = (root + offset) % nranks
        _emit_send(builder, frontier, root, dst, size, tag)
        _emit_recv(builder, frontier, dst, root, size, tag)


# ---------------------------------------------------------------------------
# columnar expansion engine
# ---------------------------------------------------------------------------
#
# A *chunk* is one tuple of equal-length columns ``(kind, rank, peer, size,
# tag, cost)`` describing consecutive vertices in emission order.  Each
# ``batch_*`` expander assembles the whole collective as a list of chunks
# (rounds, folds, interleaved pairs) with pure index arithmetic and flushes
# them through :func:`_emit_chunks`, which reproduces — bit for bit — the
# vertex order, dependency-edge order and frontier evolution of the legacy
# op-by-op expanders.

_V_CALC = int(VertexKind.CALC)
_V_SEND = int(VertexKind.SEND)
_V_RECV = int(VertexKind.RECV)

_Chunk = tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]


def _chunk(kind: int, rank, peer, size: int, tag: int, cost: float = 0.0) -> _Chunk:
    rank = np.asarray(rank, dtype=np.int64)
    n = len(rank)
    peer = np.broadcast_to(np.asarray(peer, dtype=np.int64), n)
    return (
        np.full(n, kind, dtype=np.int8),
        rank,
        peer,
        np.full(n, size, dtype=np.int64),
        np.full(n, tag, dtype=np.int64),
        np.full(n, cost, dtype=np.float64),
    )


def _chunk_send(ranks, peers, size: int, tag: int) -> _Chunk:
    return _chunk(_V_SEND, ranks, peers, size, tag)


def _chunk_recv(ranks, peers, size: int, tag: int) -> _Chunk:
    return _chunk(_V_RECV, ranks, peers, size, tag)


def _chunk_calc(ranks, cost: float) -> _Chunk:
    return _chunk(_V_CALC, ranks, -1, 0, 0, cost)


def _uniform_rounds_chunk(
    send_ranks: np.ndarray,
    send_peers: np.ndarray,
    recv_ranks: np.ndarray,
    recv_peers: np.ndarray,
    sizes,
    tags: np.ndarray,
) -> _Chunk:
    """All rounds of a send-block/recv-block algorithm as one chunk.

    ``send_peers``/``recv_peers`` are ``(rounds, P)`` matrices; ``sizes`` is
    a scalar or per-round vector; ``tags`` is the per-round tag vector.  The
    emission order of every round is the legacy one — all P sends, then all
    P recvs — so flattening round-major reproduces the op-by-op order with a
    handful of ``tile``/``repeat`` calls instead of per-round chunk lists.
    """
    rounds, width = send_peers.shape
    per_round = 2 * width
    kind = np.tile(
        np.concatenate([
            np.full(width, _V_SEND, dtype=np.int8),
            np.full(width, _V_RECV, dtype=np.int8),
        ]),
        rounds,
    )
    rank = np.tile(np.concatenate([send_ranks, recv_ranks]), rounds)
    peer = np.concatenate([send_peers, recv_peers], axis=1).ravel()
    if np.ndim(sizes) == 0:
        size = np.full(rounds * per_round, sizes, dtype=np.int64)
    else:
        size = np.repeat(np.asarray(sizes, dtype=np.int64), per_round)
    tag = np.repeat(np.asarray(tags, dtype=np.int64), per_round)
    cost = np.zeros(rounds * per_round, dtype=np.float64)
    return kind, rank, peer, size, tag, cost


def _interleave(parts: Sequence[_Chunk]) -> _Chunk:
    """Merge k equal-length chunks round-robin: row i is ``parts[i % k][i // k]``.

    This reproduces the legacy per-pair emission order (send, recv[, calc])
    as one flat chunk.
    """
    k = len(parts)
    if k == 1:
        return parts[0]
    m = len(parts[0][0])
    merged = []
    for field in range(6):
        out = np.empty(k * m, dtype=parts[0][field].dtype)
        for j, part in enumerate(parts):
            out[j::k] = part[field]
        merged.append(out)
    return tuple(merged)


def _emit_chunks(builder: GraphBuilder, frontier: np.ndarray, chunks: list[_Chunk]) -> None:
    """Bulk-append the chunks and wire program-order dependency edges.

    The per-rank frontier chain is threaded through the whole batch in one
    vectorised pass: for every emitted vertex the dependency source is the
    previous vertex of the same rank *within the batch*, or the incoming
    ``frontier`` entry for the rank's first vertex (no edge when that is
    ``-1``).  Dependency edges are appended in emission order — identical to
    the legacy expanders, which add each vertex's incoming edge right after
    the vertex itself.  ``frontier`` is updated in place to the last vertex
    of each participating rank.
    """
    chunks = [c for c in chunks if len(c[0])]
    if not chunks:
        return
    if len(chunks) == 1:
        kind, rank, peer, size, tag, cost = chunks[0]
    else:
        kind = np.concatenate([c[0] for c in chunks])
        rank = np.concatenate([c[1] for c in chunks])
        peer = np.concatenate([c[2] for c in chunks])
        size = np.concatenate([c[3] for c in chunks])
        tag = np.concatenate([c[4] for c in chunks])
        cost = np.concatenate([c[5] for c in chunks])
    vids = builder.add_vertices(kind, rank, cost=cost, size=size, peer=peer, tag=tag)
    n = len(vids)
    order = np.argsort(rank, kind="stable")
    rank_sorted = rank[order]
    vids_sorted = vids[order]
    first = np.empty(n, dtype=bool)
    first[0] = True
    first[1:] = rank_sorted[1:] != rank_sorted[:-1]
    dep_sorted = np.empty(n, dtype=np.int64)
    dep_sorted[first] = frontier[rank_sorted[first]]
    not_first = ~first
    dep_sorted[not_first] = vids_sorted[:-1][not_first[1:]]
    dep = np.empty(n, dtype=np.int64)
    dep[order] = dep_sorted
    mask = dep >= 0
    builder.add_dependencies(dep[mask], vids[mask])
    np.maximum.at(frontier, rank, vids)


# -- columnar counterparts of the expand_* functions -------------------------

def batch_barrier_dissemination(
    builder: GraphBuilder, frontier: np.ndarray, *, tag: int, size: int = 1
) -> None:
    """Columnar dissemination barrier (see :func:`expand_barrier_dissemination`)."""
    nranks = builder.nranks
    if nranks < 2:
        return
    rounds = math.ceil(math.log2(nranks))
    ranks = np.arange(nranks, dtype=np.int64)
    dists = (1 << np.arange(rounds, dtype=np.int64))[:, None]
    _emit_chunks(builder, frontier, [_uniform_rounds_chunk(
        ranks, (ranks[None, :] + dists) % nranks,
        ranks, (ranks[None, :] - dists) % nranks,
        size, tag + np.arange(rounds),
    )])


def _binomial_pairs(nranks: int, root: int, dist: int) -> tuple[np.ndarray, np.ndarray]:
    """(lower, upper) ranks of the binomial-tree pairs of one round."""
    rel = np.arange(min(dist, nranks - dist), dtype=np.int64)
    lower = (rel + root) % nranks
    upper = (rel + dist + root) % nranks
    return lower, upper


def batch_bcast_binomial(
    builder: GraphBuilder, frontier: np.ndarray, *, root: int, size: int, tag: int
) -> None:
    """Columnar binomial-tree broadcast (see :func:`expand_bcast_binomial`)."""
    nranks = builder.nranks
    if nranks < 2:
        return
    rounds = math.ceil(math.log2(nranks))
    chunks: list[_Chunk] = []
    for k in range(rounds):
        dist = 1 << k
        round_tag = tag + k
        src, dst = _binomial_pairs(nranks, root, dist)
        chunks.append(_interleave([
            _chunk_send(src, dst, size, round_tag),
            _chunk_recv(dst, src, size, round_tag),
        ]))
    _emit_chunks(builder, frontier, chunks)


def batch_bcast_linear(
    builder: GraphBuilder, frontier: np.ndarray, *, root: int, size: int, tag: int
) -> None:
    """Columnar linear broadcast (see :func:`expand_bcast_linear`)."""
    nranks = builder.nranks
    if nranks < 2:
        return
    dst = (root + np.arange(1, nranks, dtype=np.int64)) % nranks
    _emit_chunks(builder, frontier, [_interleave([
        _chunk_send(np.full(nranks - 1, root, dtype=np.int64), dst, size, tag),
        _chunk_recv(dst, root, size, tag),
    ])])


def batch_reduce_binomial(
    builder: GraphBuilder,
    frontier: np.ndarray,
    *,
    root: int,
    size: int,
    tag: int,
    reduce_cost_per_byte: float = _DEFAULT_REDUCE_TIME_PER_BYTE,
) -> None:
    """Columnar binomial-tree reduction (see :func:`expand_reduce_binomial`)."""
    nranks = builder.nranks
    if nranks < 2:
        return
    rounds = math.ceil(math.log2(nranks))
    reduce_cost = reduce_cost_per_byte * size
    chunks: list[_Chunk] = []
    for k in reversed(range(rounds)):
        dist = 1 << k
        round_tag = tag + k
        receiver, sender = _binomial_pairs(nranks, root, dist)
        parts = [
            _chunk_send(sender, receiver, size, round_tag),
            _chunk_recv(receiver, sender, size, round_tag),
        ]
        if reduce_cost > 0:
            parts.append(_chunk_calc(receiver, reduce_cost))
        chunks.append(_interleave(parts))
    _emit_chunks(builder, frontier, chunks)


def batch_allreduce_recursive_doubling(
    builder: GraphBuilder,
    frontier: np.ndarray,
    *,
    size: int,
    tag: int,
    reduce_cost_per_byte: float = _DEFAULT_REDUCE_TIME_PER_BYTE,
) -> None:
    """Columnar recursive-doubling allreduce (see
    :func:`expand_allreduce_recursive_doubling`)."""
    nranks = builder.nranks
    if nranks < 2:
        return
    pof2 = 1 << (nranks.bit_length() - 1)
    rem = nranks - pof2
    reduce_cost = reduce_cost_per_byte * size
    tag_cursor = tag
    chunks: list[_Chunk] = []

    odd = np.arange(1, 2 * rem, 2, dtype=np.int64)
    even = odd - 1
    if rem:
        parts = [
            _chunk_send(odd, even, size, tag_cursor),
            _chunk_recv(even, odd, size, tag_cursor),
        ]
        if reduce_cost > 0:
            parts.append(_chunk_calc(even, reduce_cost))
        chunks.append(_interleave(parts))
    tag_cursor += 1

    participants = np.concatenate(
        [np.arange(0, 2 * rem, 2, dtype=np.int64), np.arange(2 * rem, nranks, dtype=np.int64)]
    )
    rounds = int(math.log2(pof2)) if pof2 > 1 else 0
    idx = np.arange(pof2, dtype=np.int64)
    if rounds and reduce_cost <= 0:
        dists = (1 << np.arange(rounds, dtype=np.int64))[:, None]
        partners = participants[idx[None, :] ^ dists]
        chunks.append(_uniform_rounds_chunk(
            participants, partners, participants, partners,
            size, tag_cursor + np.arange(rounds),
        ))
    else:
        for k in range(rounds):
            dist = 1 << k
            round_tag = tag_cursor + k
            partner = participants[idx ^ dist]
            chunks.append(_chunk_send(participants, partner, size, round_tag))
            parts = [_chunk_recv(participants, partner, size, round_tag)]
            if reduce_cost > 0:
                parts.append(_chunk_calc(participants, reduce_cost))
            chunks.append(_interleave(parts))
    tag_cursor += max(rounds, 1)

    if rem:
        chunks.append(_interleave([
            _chunk_send(even, odd, size, tag_cursor),
            _chunk_recv(odd, even, size, tag_cursor),
        ]))
    _emit_chunks(builder, frontier, chunks)


def batch_allreduce_ring(
    builder: GraphBuilder,
    frontier: np.ndarray,
    *,
    size: int,
    tag: int,
    reduce_cost_per_byte: float = _DEFAULT_REDUCE_TIME_PER_BYTE,
) -> None:
    """Columnar ring allreduce (see :func:`expand_allreduce_ring`)."""
    nranks = builder.nranks
    if nranks < 2:
        return
    chunk_bytes = _chunk_size(size, nranks)
    reduce_cost = reduce_cost_per_byte * chunk_bytes
    ranks = np.arange(nranks, dtype=np.int64)
    nxt = (ranks + 1) % nranks
    prv = (ranks - 1) % nranks
    steps = 2 * (nranks - 1)
    if reduce_cost <= 0:
        _emit_chunks(builder, frontier, [_uniform_rounds_chunk(
            ranks, np.tile(nxt, (steps, 1)), ranks, np.tile(prv, (steps, 1)),
            chunk_bytes, tag + np.arange(steps),
        )])
        return
    chunks: list[_Chunk] = []
    for step in range(steps):
        step_tag = tag + step
        reducing = step < nranks - 1
        chunks.append(_chunk_send(ranks, nxt, chunk_bytes, step_tag))
        parts = [_chunk_recv(ranks, prv, chunk_bytes, step_tag)]
        if reducing and reduce_cost > 0:
            parts.append(_chunk_calc(ranks, reduce_cost))
        chunks.append(_interleave(parts))
    _emit_chunks(builder, frontier, chunks)


def batch_allreduce_reduce_bcast(
    builder: GraphBuilder,
    frontier: np.ndarray,
    *,
    size: int,
    tag: int,
    root: int = 0,
    reduce_cost_per_byte: float = _DEFAULT_REDUCE_TIME_PER_BYTE,
) -> None:
    """Columnar reduce+bcast allreduce (see :func:`expand_allreduce_reduce_bcast`)."""
    nranks = builder.nranks
    if nranks < 2:
        return
    rounds = math.ceil(math.log2(nranks))
    batch_reduce_binomial(
        builder,
        frontier,
        root=root,
        size=size,
        tag=tag,
        reduce_cost_per_byte=reduce_cost_per_byte,
    )
    batch_bcast_binomial(builder, frontier, root=root, size=size, tag=tag + rounds + 1)


def batch_allgather_ring(
    builder: GraphBuilder, frontier: np.ndarray, *, size: int, tag: int
) -> None:
    """Columnar ring allgather (see :func:`expand_allgather_ring`)."""
    nranks = builder.nranks
    if nranks < 2:
        return
    ranks = np.arange(nranks, dtype=np.int64)
    nxt = (ranks + 1) % nranks
    prv = (ranks - 1) % nranks
    steps = nranks - 1
    _emit_chunks(builder, frontier, [_uniform_rounds_chunk(
        ranks, np.tile(nxt, (steps, 1)), ranks, np.tile(prv, (steps, 1)),
        size, tag + np.arange(steps),
    )])


def batch_allgather_recursive_doubling(
    builder: GraphBuilder, frontier: np.ndarray, *, size: int, tag: int
) -> None:
    """Columnar recursive-doubling allgather (see
    :func:`expand_allgather_recursive_doubling`)."""
    nranks = builder.nranks
    if nranks < 2:
        return
    if nranks & (nranks - 1):
        batch_allgather_ring(builder, frontier, size=size, tag=tag)
        return
    rounds = int(math.log2(nranks))
    ranks = np.arange(nranks, dtype=np.int64)
    dists = 1 << np.arange(rounds, dtype=np.int64)
    partners = ranks[None, :] ^ dists[:, None]
    _emit_chunks(builder, frontier, [_uniform_rounds_chunk(
        ranks, partners, ranks, partners,
        size * dists, tag + np.arange(rounds),
    )])


def batch_alltoall_pairwise(
    builder: GraphBuilder, frontier: np.ndarray, *, size: int, tag: int
) -> None:
    """Columnar pairwise-exchange alltoall (see :func:`expand_alltoall_pairwise`)."""
    nranks = builder.nranks
    if nranks < 2:
        return
    ranks = np.arange(nranks, dtype=np.int64)
    steps = np.arange(1, nranks, dtype=np.int64)[:, None]
    _emit_chunks(builder, frontier, [_uniform_rounds_chunk(
        ranks, (ranks[None, :] + steps) % nranks,
        ranks, (ranks[None, :] - steps) % nranks,
        size, tag + steps.ravel(),
    )])


def batch_gather_linear(
    builder: GraphBuilder, frontier: np.ndarray, *, root: int, size: int, tag: int
) -> None:
    """Columnar linear gather (see :func:`expand_gather_linear`)."""
    nranks = builder.nranks
    if nranks < 2:
        return
    src = (root + np.arange(1, nranks, dtype=np.int64)) % nranks
    _emit_chunks(builder, frontier, [_interleave([
        _chunk_send(src, root, size, tag),
        _chunk_recv(np.full(nranks - 1, root, dtype=np.int64), src, size, tag),
    ])])


def batch_scatter_linear(
    builder: GraphBuilder, frontier: np.ndarray, *, root: int, size: int, tag: int
) -> None:
    """Columnar linear scatter (see :func:`expand_scatter_linear`)."""
    nranks = builder.nranks
    if nranks < 2:
        return
    dst = (root + np.arange(1, nranks, dtype=np.int64)) % nranks
    _emit_chunks(builder, frontier, [_interleave([
        _chunk_send(np.full(nranks - 1, root, dtype=np.int64), dst, size, tag),
        _chunk_recv(dst, root, size, tag),
    ])])


#: op-by-op reference expanders, keyed by ``"<collective>_<algorithm>"``
LEGACY_EXPANDERS: dict[str, Callable] = {
    "barrier_dissemination": expand_barrier_dissemination,
    "bcast_binomial": expand_bcast_binomial,
    "bcast_linear": expand_bcast_linear,
    "reduce_binomial": expand_reduce_binomial,
    "allreduce_recursive_doubling": expand_allreduce_recursive_doubling,
    "allreduce_ring": expand_allreduce_ring,
    "allreduce_reduce_bcast": expand_allreduce_reduce_bcast,
    "allgather_ring": expand_allgather_ring,
    "allgather_recursive_doubling": expand_allgather_recursive_doubling,
    "alltoall_pairwise": expand_alltoall_pairwise,
    "gather_linear": expand_gather_linear,
    "scatter_linear": expand_scatter_linear,
}

#: vectorised expanders, bit-identical to their legacy counterparts
COLUMNAR_EXPANDERS: dict[str, Callable] = {
    "barrier_dissemination": batch_barrier_dissemination,
    "bcast_binomial": batch_bcast_binomial,
    "bcast_linear": batch_bcast_linear,
    "reduce_binomial": batch_reduce_binomial,
    "allreduce_recursive_doubling": batch_allreduce_recursive_doubling,
    "allreduce_ring": batch_allreduce_ring,
    "allreduce_reduce_bcast": batch_allreduce_reduce_bcast,
    "allgather_ring": batch_allgather_ring,
    "allgather_recursive_doubling": batch_allgather_recursive_doubling,
    "alltoall_pairwise": batch_alltoall_pairwise,
    "gather_linear": batch_gather_linear,
    "scatter_linear": batch_scatter_linear,
}


# ---------------------------------------------------------------------------
# algorithm selection
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CollectiveAlgorithms:
    """Which point-to-point algorithm Schedgen uses for each collective.

    The defaults match common MPI implementations (and the paper's baseline
    configuration): recursive doubling for allreduce, binomial trees for
    rooted collectives, dissemination for barrier, ring for allgather and
    pairwise exchange for alltoall.
    """

    allreduce: str = "recursive_doubling"
    bcast: str = "binomial"
    reduce: str = "binomial"
    barrier: str = "dissemination"
    allgather: str = "ring"
    alltoall: str = "pairwise"
    gather: str = "linear"
    scatter: str = "linear"

    _ALLREDUCE = ("recursive_doubling", "ring", "reduce_bcast")
    _BCAST = ("binomial", "linear")
    _REDUCE = ("binomial",)
    _BARRIER = ("dissemination",)
    _ALLGATHER = ("ring", "recursive_doubling")
    _ALLTOALL = ("pairwise",)
    _GATHER = ("linear",)
    _SCATTER = ("linear",)

    def __post_init__(self) -> None:
        checks = {
            "allreduce": self._ALLREDUCE,
            "bcast": self._BCAST,
            "reduce": self._REDUCE,
            "barrier": self._BARRIER,
            "allgather": self._ALLGATHER,
            "alltoall": self._ALLTOALL,
            "gather": self._GATHER,
            "scatter": self._SCATTER,
        }
        for name, allowed in checks.items():
            value = getattr(self, name)
            if value not in allowed:
                raise ValueError(
                    f"unknown {name} algorithm {value!r}; expected one of {allowed}"
                )

    def with_allreduce(self, algorithm: str) -> "CollectiveAlgorithms":
        """Convenience used by the ICON case study (Fig. 10)."""
        from dataclasses import replace

        return replace(self, allreduce=algorithm)
