"""Collective-to-point-to-point expansion (Schedgen's collective substitution).

Schedgen replaces every collective operation in a trace with a concrete
point-to-point algorithm chosen by the user (Section II-A, and the ICON case
study of Section IV switches ``MPI_Allreduce`` between *recursive doubling*
and the *ring* algorithm).  This module implements that expansion directly on
a :class:`repro.schedgen.graph.GraphBuilder`.

Each expansion function receives the builder, the per-rank local frontier
vertex (the last vertex of each rank's program-order chain, or ``-1`` when a
rank has no vertex yet) and returns the new per-rank frontier after the
collective.  Internally every emitted message uses a tag from a dedicated
collective tag space so that point-to-point matching can never confuse
user messages with collective traffic.

Conventions
-----------
* A send vertex depends on the rank's current frontier; a receive that the
  algorithm requires before progressing is chained after the send of the same
  round (sendrecv-style), which is how LogGOPSim schedules these algorithms.
* Message sizes follow the textbook algorithms: recursive doubling exchanges
  the full vector every round, the ring algorithm moves ``size / P`` chunks,
  binomial trees move the full vector per tree edge, the dissemination
  barrier moves 1-byte tokens.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

from .graph import GraphBuilder

__all__ = [
    "CollectiveAlgorithms",
    "COLLECTIVE_TAG_BASE",
    "expand_barrier_dissemination",
    "expand_bcast_binomial",
    "expand_bcast_linear",
    "expand_reduce_binomial",
    "expand_allreduce_recursive_doubling",
    "expand_allreduce_ring",
    "expand_allreduce_reduce_bcast",
    "expand_allgather_ring",
    "expand_allgather_recursive_doubling",
    "expand_alltoall_pairwise",
    "expand_gather_linear",
    "expand_scatter_linear",
    "reduce_time_per_byte",
]

#: base of the tag space reserved for expanded collectives
COLLECTIVE_TAG_BASE = 1 << 30

#: default local reduction cost per byte (microseconds); kept small so that
#: collective timing is communication-dominated, as in the paper's model.
_DEFAULT_REDUCE_TIME_PER_BYTE = 0.0


def reduce_time_per_byte() -> float:
    """Per-byte local reduction cost used by reduction collectives."""
    return _DEFAULT_REDUCE_TIME_PER_BYTE


Frontier = list[int]


def _chunk_size(size: int, nranks: int) -> int:
    """Per-rank chunk size for ring/reduce-scatter style algorithms."""
    return max(1, math.ceil(size / max(nranks, 1)))


def _emit_send(
    builder: GraphBuilder,
    frontier: Frontier,
    rank: int,
    peer: int,
    size: int,
    tag: int,
) -> int:
    vid = builder.add_send(rank, peer, size, tag=tag)
    if frontier[rank] >= 0:
        builder.add_dependency(frontier[rank], vid)
    frontier[rank] = vid
    return vid


def _emit_recv(
    builder: GraphBuilder,
    frontier: Frontier,
    rank: int,
    peer: int,
    size: int,
    tag: int,
) -> int:
    vid = builder.add_recv(rank, peer, size, tag=tag)
    if frontier[rank] >= 0:
        builder.add_dependency(frontier[rank], vid)
    frontier[rank] = vid
    return vid


def _emit_calc(builder: GraphBuilder, frontier: Frontier, rank: int, cost: float) -> int:
    if cost <= 0:
        return frontier[rank]
    vid = builder.add_calc(rank, cost)
    if frontier[rank] >= 0:
        builder.add_dependency(frontier[rank], vid)
    frontier[rank] = vid
    return vid


# ---------------------------------------------------------------------------
# barrier
# ---------------------------------------------------------------------------

def expand_barrier_dissemination(
    builder: GraphBuilder, frontier: Frontier, *, tag: int, size: int = 1
) -> None:
    """Dissemination barrier: ``ceil(log2 P)`` rounds of 1-byte tokens."""
    nranks = builder.nranks
    if nranks < 2:
        return
    rounds = math.ceil(math.log2(nranks))
    for k in range(rounds):
        dist = 1 << k
        round_tag = tag + k
        for rank in range(nranks):
            _emit_send(builder, frontier, rank, (rank + dist) % nranks, size, round_tag)
        for rank in range(nranks):
            _emit_recv(builder, frontier, rank, (rank - dist) % nranks, size, round_tag)


# ---------------------------------------------------------------------------
# broadcast / reduce (binomial trees)
# ---------------------------------------------------------------------------

def expand_bcast_binomial(
    builder: GraphBuilder, frontier: Frontier, *, root: int, size: int, tag: int
) -> None:
    """Binomial-tree broadcast rooted at ``root``.

    Ranks are renumbered relative to the root; in round ``k`` every rank whose
    relative id is below ``2^k`` and has a partner ``rel + 2^k < P`` forwards
    the message.
    """
    nranks = builder.nranks
    if nranks < 2:
        return
    rounds = math.ceil(math.log2(nranks))
    for k in range(rounds):
        dist = 1 << k
        round_tag = tag + k
        for rel in range(dist):
            partner_rel = rel + dist
            if partner_rel >= nranks:
                continue
            src = (rel + root) % nranks
            dst = (partner_rel + root) % nranks
            _emit_send(builder, frontier, src, dst, size, round_tag)
            _emit_recv(builder, frontier, dst, src, size, round_tag)


def expand_bcast_linear(
    builder: GraphBuilder, frontier: Frontier, *, root: int, size: int, tag: int
) -> None:
    """Linear broadcast: the root sends to every other rank in turn."""
    nranks = builder.nranks
    for offset in range(1, nranks):
        dst = (root + offset) % nranks
        _emit_send(builder, frontier, root, dst, size, tag)
        _emit_recv(builder, frontier, dst, root, size, tag)


def expand_reduce_binomial(
    builder: GraphBuilder,
    frontier: Frontier,
    *,
    root: int,
    size: int,
    tag: int,
    reduce_cost_per_byte: float = _DEFAULT_REDUCE_TIME_PER_BYTE,
) -> None:
    """Binomial-tree reduction to ``root`` (mirror image of the broadcast)."""
    nranks = builder.nranks
    if nranks < 2:
        return
    rounds = math.ceil(math.log2(nranks))
    for k in reversed(range(rounds)):
        dist = 1 << k
        round_tag = tag + k
        for rel in range(dist):
            partner_rel = rel + dist
            if partner_rel >= nranks:
                continue
            receiver = (rel + root) % nranks
            sender = (partner_rel + root) % nranks
            _emit_send(builder, frontier, sender, receiver, size, round_tag)
            _emit_recv(builder, frontier, receiver, sender, size, round_tag)
            _emit_calc(builder, frontier, receiver, reduce_cost_per_byte * size)


# ---------------------------------------------------------------------------
# allreduce
# ---------------------------------------------------------------------------

def expand_allreduce_recursive_doubling(
    builder: GraphBuilder,
    frontier: Frontier,
    *,
    size: int,
    tag: int,
    reduce_cost_per_byte: float = _DEFAULT_REDUCE_TIME_PER_BYTE,
) -> None:
    """Recursive-doubling allreduce.

    For a power-of-two number of ranks this is ``log2 P`` rounds in which rank
    ``r`` exchanges the full vector with ``r XOR 2^k``.  For non-powers of two
    the standard fold/unfold scheme is used: the first ``2 * rem`` ranks are
    folded pairwise onto ``P' = 2^floor(log2 P)`` participants, which run the
    power-of-two exchange, and the result is unfolded back.
    """
    nranks = builder.nranks
    if nranks < 2:
        return
    pof2 = 1 << (nranks.bit_length() - 1)
    rem = nranks - pof2
    tag_cursor = tag

    # fold: ranks [0, 2*rem) pair up; odd members send their vector to the even
    # partner and drop out of the exchange phase.
    participants: list[int] = []
    for rank in range(nranks):
        if rank < 2 * rem:
            if rank % 2 == 1:
                partner = rank - 1
                _emit_send(builder, frontier, rank, partner, size, tag_cursor)
                _emit_recv(builder, frontier, partner, rank, size, tag_cursor)
                _emit_calc(builder, frontier, partner, reduce_cost_per_byte * size)
            else:
                participants.append(rank)
        else:
            participants.append(rank)
    tag_cursor += 1

    # recursive doubling among `pof2` participants (indexed by their position)
    rounds = int(math.log2(pof2)) if pof2 > 1 else 0
    for k in range(rounds):
        dist = 1 << k
        round_tag = tag_cursor + k
        for idx, rank in enumerate(participants):
            partner = participants[idx ^ dist]
            _emit_send(builder, frontier, rank, partner, size, round_tag)
        for idx, rank in enumerate(participants):
            partner = participants[idx ^ dist]
            _emit_recv(builder, frontier, rank, partner, size, round_tag)
            _emit_calc(builder, frontier, rank, reduce_cost_per_byte * size)
    tag_cursor += max(rounds, 1)

    # unfold: even partners send the result back to the folded odd ranks.
    for rank in range(nranks):
        if rank < 2 * rem and rank % 2 == 1:
            partner = rank - 1
            _emit_send(builder, frontier, partner, rank, size, tag_cursor)
            _emit_recv(builder, frontier, rank, partner, size, tag_cursor)


def expand_allreduce_ring(
    builder: GraphBuilder,
    frontier: Frontier,
    *,
    size: int,
    tag: int,
    reduce_cost_per_byte: float = _DEFAULT_REDUCE_TIME_PER_BYTE,
) -> None:
    """Ring allreduce: reduce-scatter followed by allgather, ``2(P-1)`` steps.

    Every step moves a ``size / P`` chunk to the next rank on the ring, which
    creates a chain of ``2(P-1)`` dependent messages — exactly the property
    that makes ICON much more latency sensitive under this algorithm
    (Section IV-1).
    """
    nranks = builder.nranks
    if nranks < 2:
        return
    chunk = _chunk_size(size, nranks)
    steps = 2 * (nranks - 1)
    for step in range(steps):
        step_tag = tag + step
        reducing = step < nranks - 1
        for rank in range(nranks):
            dst = (rank + 1) % nranks
            _emit_send(builder, frontier, rank, dst, chunk, step_tag)
        for rank in range(nranks):
            src = (rank - 1) % nranks
            _emit_recv(builder, frontier, rank, src, chunk, step_tag)
            if reducing:
                _emit_calc(builder, frontier, rank, reduce_cost_per_byte * chunk)


def expand_allreduce_reduce_bcast(
    builder: GraphBuilder,
    frontier: Frontier,
    *,
    size: int,
    tag: int,
    root: int = 0,
    reduce_cost_per_byte: float = _DEFAULT_REDUCE_TIME_PER_BYTE,
) -> None:
    """Allreduce implemented as a binomial reduce followed by a binomial bcast."""
    nranks = builder.nranks
    if nranks < 2:
        return
    rounds = math.ceil(math.log2(nranks))
    expand_reduce_binomial(
        builder,
        frontier,
        root=root,
        size=size,
        tag=tag,
        reduce_cost_per_byte=reduce_cost_per_byte,
    )
    expand_bcast_binomial(builder, frontier, root=root, size=size, tag=tag + rounds + 1)


# ---------------------------------------------------------------------------
# allgather / alltoall / gather / scatter
# ---------------------------------------------------------------------------

def expand_allgather_ring(
    builder: GraphBuilder, frontier: Frontier, *, size: int, tag: int
) -> None:
    """Ring allgather: ``P - 1`` steps, each moving one rank's contribution."""
    nranks = builder.nranks
    if nranks < 2:
        return
    for step in range(nranks - 1):
        step_tag = tag + step
        for rank in range(nranks):
            dst = (rank + 1) % nranks
            _emit_send(builder, frontier, rank, dst, size, step_tag)
        for rank in range(nranks):
            src = (rank - 1) % nranks
            _emit_recv(builder, frontier, rank, src, size, step_tag)


def expand_allgather_recursive_doubling(
    builder: GraphBuilder, frontier: Frontier, *, size: int, tag: int
) -> None:
    """Recursive-doubling allgather; the exchanged volume doubles each round.

    Non-power-of-two rank counts fall back to the ring algorithm, matching the
    behaviour of common MPI implementations.
    """
    nranks = builder.nranks
    if nranks < 2:
        return
    if nranks & (nranks - 1):
        expand_allgather_ring(builder, frontier, size=size, tag=tag)
        return
    rounds = int(math.log2(nranks))
    for k in range(rounds):
        dist = 1 << k
        round_tag = tag + k
        volume = size * dist
        for rank in range(nranks):
            partner = rank ^ dist
            _emit_send(builder, frontier, rank, partner, volume, round_tag)
        for rank in range(nranks):
            partner = rank ^ dist
            _emit_recv(builder, frontier, rank, partner, volume, round_tag)


def expand_alltoall_pairwise(
    builder: GraphBuilder, frontier: Frontier, *, size: int, tag: int
) -> None:
    """Pairwise-exchange alltoall: ``P - 1`` rounds, partner ``(r + k) mod P``.

    ``size`` is the per-peer payload (what each rank sends to each other
    rank), matching ``MPI_Alltoall`` semantics.
    """
    nranks = builder.nranks
    if nranks < 2:
        return
    for step in range(1, nranks):
        step_tag = tag + step
        for rank in range(nranks):
            dst = (rank + step) % nranks
            _emit_send(builder, frontier, rank, dst, size, step_tag)
        for rank in range(nranks):
            src = (rank - step) % nranks
            _emit_recv(builder, frontier, rank, src, size, step_tag)


def expand_gather_linear(
    builder: GraphBuilder, frontier: Frontier, *, root: int, size: int, tag: int
) -> None:
    """Linear gather: every non-root rank sends its contribution to the root."""
    nranks = builder.nranks
    for offset in range(1, nranks):
        src = (root + offset) % nranks
        _emit_send(builder, frontier, src, root, size, tag)
        _emit_recv(builder, frontier, root, src, size, tag)


def expand_scatter_linear(
    builder: GraphBuilder, frontier: Frontier, *, root: int, size: int, tag: int
) -> None:
    """Linear scatter: the root sends each rank its chunk."""
    nranks = builder.nranks
    for offset in range(1, nranks):
        dst = (root + offset) % nranks
        _emit_send(builder, frontier, root, dst, size, tag)
        _emit_recv(builder, frontier, dst, root, size, tag)


# ---------------------------------------------------------------------------
# algorithm selection
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CollectiveAlgorithms:
    """Which point-to-point algorithm Schedgen uses for each collective.

    The defaults match common MPI implementations (and the paper's baseline
    configuration): recursive doubling for allreduce, binomial trees for
    rooted collectives, dissemination for barrier, ring for allgather and
    pairwise exchange for alltoall.
    """

    allreduce: str = "recursive_doubling"
    bcast: str = "binomial"
    reduce: str = "binomial"
    barrier: str = "dissemination"
    allgather: str = "ring"
    alltoall: str = "pairwise"
    gather: str = "linear"
    scatter: str = "linear"

    _ALLREDUCE = ("recursive_doubling", "ring", "reduce_bcast")
    _BCAST = ("binomial", "linear")
    _REDUCE = ("binomial",)
    _BARRIER = ("dissemination",)
    _ALLGATHER = ("ring", "recursive_doubling")
    _ALLTOALL = ("pairwise",)
    _GATHER = ("linear",)
    _SCATTER = ("linear",)

    def __post_init__(self) -> None:
        checks = {
            "allreduce": self._ALLREDUCE,
            "bcast": self._BCAST,
            "reduce": self._REDUCE,
            "barrier": self._BARRIER,
            "allgather": self._ALLGATHER,
            "alltoall": self._ALLTOALL,
            "gather": self._GATHER,
            "scatter": self._SCATTER,
        }
        for name, allowed in checks.items():
            value = getattr(self, name)
            if value not in allowed:
                raise ValueError(
                    f"unknown {name} algorithm {value!r}; expected one of {allowed}"
                )

    def with_allreduce(self, algorithm: str) -> "CollectiveAlgorithms":
        """Convenience used by the ICON case study (Fig. 10)."""
        from dataclasses import replace

        return replace(self, allreduce=algorithm)
